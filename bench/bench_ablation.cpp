// Ablations called out by the paper:
//
//  E6 (footnote 6): the customized attack re-connects key-gates that were
//     falsely paired with regular drivers to random TIE cells; without
//     this post-processing the logical CCR drops well below 50% (paper:
//     29.3% at M6, 17.6% at M4) — which *over*-states security, so the
//     paper reports the stronger attack.
//  E7 (Fig. 2 motivation): naive TIE placement and unlifted key-nets leak
//     the key; each secure-flow ingredient (randomize+fix TIE cells, lift
//     key-nets) is required.
#include "bench_common.hpp"

#include "phys/router.hpp"

namespace splitlock::bench {
namespace {

constexpr const char* kBenchName = "b14";

// --- E6: attack post-processing --------------------------------------------

struct PostprocRow {
  double with_pp_logical = 0.0;
  double without_pp_logical = 0.0;
};

const PostprocRow& RunPostprocCached(int split_layer) {
  static std::map<int, PostprocRow> cache;
  auto it = cache.find(split_layer);
  if (it != cache.end()) return it->second;

  const FlowScore& base = RunItcFlowCached(kBenchName, split_layer);
  const attack::AttackReport raw =
      RunEngineOnFeol(base.flow.feol, "proximity:postprocess=false");
  PostprocRow row;
  row.with_pp_logical = base.score.ccr.key_logical_ccr_percent;
  row.without_pp_logical =
      attack::ComputeCcr(base.flow.feol, raw.assignment)
          .key_logical_ccr_percent;
  return cache.emplace(split_layer, row).first->second;
}

// --- E7: layout policy ------------------------------------------------------

struct PolicyRow {
  size_t key_nets = 0;
  size_t exposed_in_feol = 0;   // unbroken key-nets, read directly
  double logical_ccr = 0.0;     // over the broken remainder
  double physical_ccr = 0.0;
};

PolicyRow RunPolicy(bool randomize_ties, bool lift) {
  const Netlist original =
      circuits::MakeItc99(kBenchName, ReproScale());
  core::FlowOptions options = DefaultFlowOptions(4, 2019);
  options.randomize_tie_placement = randomize_ties;
  options.lift_key_nets = lift;
  const core::FlowResult flow = core::RunSecureFlow(original, options);
  PolicyRow row;
  const std::vector<NetId> key_nets =
      phys::KeyNetsOf(*flow.physical.netlist);
  row.key_nets = key_nets.size();
  for (NetId kn : key_nets) {
    if (!flow.feol.net_broken[kn]) ++row.exposed_in_feol;
  }
  const attack::AttackReport atk = RunEngineOnFeol(flow.feol, "proximity");
  const attack::CcrReport ccr =
      attack::ComputeCcr(flow.feol, atk.assignment);
  row.logical_ccr = ccr.key_logical_ccr_percent;
  row.physical_ccr = ccr.key_physical_ccr_percent;
  return row;
}

const PolicyRow& RunPolicyCached(int which) {
  static std::map<int, PolicyRow> cache;
  auto it = cache.find(which);
  if (it != cache.end()) return it->second;
  PolicyRow row;
  switch (which) {
    case 0: row = RunPolicy(false, false); break;  // naive (Fig. 2a)
    case 1: row = RunPolicy(true, false); break;   // scattered (Fig. 2b)
    default: row = RunPolicy(true, true); break;   // secure (Fig. 2c)
  }
  return cache.emplace(which, row).first->second;
}

void PrintTables() {
  PrintHeader("Ablation E6 (footnote 6): key-gate post-processing in the "
              "attack, b14");
  std::printf("%-10s | %26s | %29s\n", "split", "logical CCR with postproc",
              "logical CCR without postproc");
  PrintRule(74);
  for (int split : {4, 6}) {
    const PostprocRow& row = RunPostprocCached(split);
    std::printf("M%-9d | %26.1f | %29.1f\n", split, row.with_pp_logical,
                row.without_pp_logical);
  }
  std::printf("(paper: without post-processing logical CCR drops to 17.6%% "
              "at M4 and 29.3%% at M6)\n");

  PrintHeader("Ablation E7 (Fig. 2): which ingredient hides the key, b14 "
              "at M4");
  std::printf("%-22s | %10s | %14s | %13s | %14s\n", "layout policy",
              "key nets", "read in FEOL", "logical CCR", "physical CCR");
  PrintRule(86);
  const char* names[3] = {"naive (Fig. 2a)", "scattered (Fig. 2b)",
                          "secure (Fig. 2c)"};
  for (int p = 0; p < 3; ++p) {
    const PolicyRow& row = RunPolicyCached(p);
    std::printf("%-22s | %10zu | %14zu | %13.1f | %14.1f\n", names[p],
                row.key_nets, row.exposed_in_feol, row.logical_ccr,
                row.physical_ccr);
  }
  std::printf(
      "\nexpected shape: the naive layout leaves most key-nets readable in\n"
      "the FEOL; randomization alone still leaks routing hints; the full\n"
      "secure flow reduces the attacker to ~50%% logical / ~0%% physical.\n");
}

}  // namespace
}  // namespace splitlock::bench

int main(int argc, char** argv) {
  using namespace splitlock::bench;
  for (int split : {4, 6}) {
    benchmark::RegisterBenchmark(
        ("AblationPostproc/M" + std::to_string(split)).c_str(),
        [split](benchmark::State& st) {
          for (auto _ : st) {
            const PostprocRow& row = RunPostprocCached(split);
            st.counters["with_pp"] = row.with_pp_logical;
            st.counters["without_pp"] = row.without_pp_logical;
          }
        })
        ->Iterations(1)
        ->Unit(benchmark::kSecond);
  }
  for (int p = 0; p < 3; ++p) {
    benchmark::RegisterBenchmark(
        ("AblationTiePolicy/" + std::to_string(p)).c_str(),
        [p](benchmark::State& st) {
          for (auto _ : st) {
            const PolicyRow& row = RunPolicyCached(p);
            st.counters["exposed"] =
                static_cast<double>(row.exposed_in_feol);
            st.counters["logical_ccr"] = row.logical_ccr;
          }
        })
        ->Iterations(1)
        ->Unit(benchmark::kSecond);
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  PrintTables();
  return 0;
}
