// Beyond-the-tables claims of the paper, made executable:
//
//  A. ML attack (footnote 3 / Sec. V): a learning-based matcher trained on
//     the attacker's own FEOL recovers regular nets better than naive
//     proximity but stays at coin flipping on the key-nets — "any proximity
//     attack has to rely on FEOL-level hints, and such hints are inherently
//     avoided for the secret key".
//  B. Oracle-less SAT reasoning (Sec. II-C): without a functional oracle
//     the key space cannot be pruned (many sampled keys, many distinct
//     behaviours, nothing to rank them by); WITH an oracle — which the
//     split-manufacturing threat model excludes — the classical SAT attack
//     extracts a functionally correct key quickly. The missing oracle is
//     the security. The same instance also races the sat-portfolio engine
//     against the sequential DIP loop and records the speedup.
//  C. Package-mode future work (Sec. V): key-nets to I/O pads tied in the
//     trusted package; security metrics match the BEOL variant.
//
// All attacks dispatch through the attack-engine registry (the shared
// adapters); per-round SAT telemetry (conflicts, encode/solve/oracle
// wall-ms) lands in the JSON record emitted to stdout and, with
// --json=PATH or $BENCH_ADVANCED_JSON, to a file.
#include "bench_common.hpp"

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <fstream>

#include "lock/atpg_lock.hpp"
#include "phys/router.hpp"

namespace splitlock::bench {
namespace {

constexpr const char* kBenchName = "b14";

// --- A: ML attack vs proximity attack --------------------------------------

struct MlRow {
  attack::CcrReport proximity;
  attack::CcrReport ml;
  double ml_training_accuracy = 0.0;
};

const MlRow& RunMlCached(int split_layer) {
  static std::map<int, MlRow> cache;
  auto it = cache.find(split_layer);
  if (it != cache.end()) return it->second;
  const FlowScore& base = RunItcFlowCached(kBenchName, split_layer);
  MlRow row;
  row.proximity = base.score.ccr;
  const attack::AttackReport ml = RunEngineOnFeol(base.flow.feol, "ml");
  row.ml = attack::ComputeCcr(base.flow.feol, ml.assignment);
  row.ml_training_accuracy = ml.counters.at("training_accuracy_percent");
  return cache.emplace(split_layer, row).first->second;
}

// --- B: SAT attack with/without oracle, sequential vs portfolio -------------

struct SatRow {
  attack::AttackReport oracle_less;
  attack::AttackReport sequential;  // "sat" engine
  attack::AttackReport portfolio;   // "sat-portfolio" engine
  size_t key_bits = 0;
  double portfolio_speedup = 0.0;  // sequential elapsed / portfolio elapsed
};

const SatRow& RunSatCached() {
  static SatRow row;
  static bool done = false;
  if (done) return row;
  // A moderate design keeps the with-oracle SAT attack fast enough to
  // demonstrate the contrast.
  const Netlist original = circuits::MakeItc99(kBenchName, 0.05);
  lock::AtpgLockOptions opts;
  opts.key_bits = 48;
  opts.seed = 2019;
  opts.verify_lec = false;
  const lock::AtpgLockResult lock = lock::LockWithAtpg(original, opts);
  row.key_bits = lock.key.size();

  attack::AttackContext ctx;
  ctx.locked = &lock.locked;
  ctx.oracle = &original;
  ctx.seed = 2019;
  const auto run = [&](const char* spec) {
    attack::AttackReport report = attack::RunAttack(ctx, spec);
    if (!report.ok) {
      throw std::runtime_error(std::string("attack engine ") + spec + ": " +
                               report.error);
    }
    return report;
  };
  row.oracle_less = run("oracle-less:samples=512,patterns=4096");
  row.sequential = run("sat");
  row.portfolio = run("sat-portfolio");
  row.portfolio_speedup = row.portfolio.elapsed_s > 0.0
                              ? row.sequential.elapsed_s /
                                    row.portfolio.elapsed_s
                              : 0.0;
  done = true;
  return row;
}

// --- C: package mode --------------------------------------------------------

struct PackageRow {
  attack::CcrReport ccr;
  double ideal_oer = 0.0;
  size_t key_pads = 0;
};

const PackageRow& RunPackageCached() {
  static PackageRow row;
  static bool done = false;
  if (done) return row;
  const Netlist original = circuits::MakeItc99(kBenchName, ReproScale());
  core::FlowOptions opts = DefaultFlowOptions(4, 2019);
  opts.package_mode = true;
  const core::FlowResult flow = core::RunSecureFlow(original, opts);
  row.key_pads = flow.physical.netlist->KeyInputs().size();
  const attack::AttackReport atk = RunEngineOnFeol(flow.feol, "proximity");
  row.ccr = attack::ComputeCcr(flow.feol, atk.assignment);
  attack::AttackContext ctx;
  ctx.locked = &flow.lock.locked;
  ctx.oracle = &original;
  ctx.correct_key = flow.lock.key;
  ctx.seed = 2019;
  const attack::AttackReport ideal = attack::RunAttack(
      ctx, "ideal:guesses=" +
               std::to_string(std::min<uint64_t>(ReproGuesses(), 20000)) +
               ",patterns_per_guess=64");
  row.ideal_oer = ideal.ok ? ideal.counters.at("oer_percent") : 0.0;
  done = true;
  return row;
}

// --- JSON record ------------------------------------------------------------

std::string CcrJson(const attack::CcrReport& ccr) {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "{\"regular\":%.4f,\"key_logical\":%.4f,"
                "\"key_physical\":%.4f}",
                ccr.regular_ccr_percent, ccr.key_logical_ccr_percent,
                ccr.key_physical_ccr_percent);
  return buf;
}

std::string ToJson() {
  std::string json = "{\"bench\":\"bench_advanced_attacks\",\"schema_version\":" +
                     std::to_string(store::kResultSchemaVersion) + ",";
  char buf[256];
  std::snprintf(buf, sizeof(buf), "\"repro_scale\":%.4f,\"design\":\"%s\",",
                ReproScale(), kBenchName);
  json += buf;
  json += "\"ml\":[";
  bool first = true;
  for (int split : {4, 6}) {
    const MlRow& row = RunMlCached(split);
    if (!first) json += ',';
    first = false;
    std::snprintf(buf, sizeof(buf),
                  "{\"split_layer\":%d,\"training_accuracy\":%.4f,"
                  "\"proximity\":",
                  split, row.ml_training_accuracy);
    json += buf;
    json += CcrJson(row.proximity);
    json += ",\"ml\":";
    json += CcrJson(row.ml);
    json += '}';
  }
  json += "],";
  const SatRow& sat = RunSatCached();
  std::snprintf(buf, sizeof(buf),
                "\"sat_contrast\":{\"key_bits\":%zu,"
                "\"portfolio_speedup\":%.4f,\"oracle_less\":",
                sat.key_bits, sat.portfolio_speedup);
  json += buf;
  // The full per-round telemetry rides in each report's "rounds" array —
  // conflicts, encode/solve/oracle wall-ms per DIP round — replacing the
  // opaque totals this bench used to print.
  json += sat.oracle_less.ToJson();
  json += ",\"sequential\":";
  json += sat.sequential.ToJson();
  json += ",\"portfolio\":";
  json += sat.portfolio.ToJson();
  json += "},";
  const PackageRow& pkg = RunPackageCached();
  std::snprintf(buf, sizeof(buf),
                "\"package_mode\":{\"key_pads\":%zu,\"ideal_oer\":%.4f,"
                "\"proximity_ccr\":",
                pkg.key_pads, pkg.ideal_oer);
  json += buf;
  json += CcrJson(pkg.ccr);
  json += "}}";
  return json;
}

void PrintTables() {
  PrintHeader("A. Learning-based attack vs proximity attack (b14)");
  std::printf("%-10s | %28s | %28s\n", "split",
              "proximity: reg / keylog / keyphys",
              "ML: reg / keylog / keyphys");
  PrintRule(76);
  for (int split : {4, 6}) {
    const MlRow& row = RunMlCached(split);
    std::printf("M%-9d | %8.1f / %6.1f / %7.1f | %8.1f / %6.1f / %7.1f\n",
                split, row.proximity.regular_ccr_percent,
                row.proximity.key_logical_ccr_percent,
                row.proximity.key_physical_ccr_percent,
                row.ml.regular_ccr_percent, row.ml.key_logical_ccr_percent,
                row.ml.key_physical_ccr_percent);
  }
  std::printf("(ML training accuracy on intact connections: %.1f%%)\n",
              RunMlCached(4).ml_training_accuracy);
  std::printf("claim: no attack family beats coin flipping on the key "
              "(logical CCR ~50, physical ~0).\n");

  PrintHeader("B. The worth of the missing oracle (b14 @ 0.05 scale, 48 "
              "key bits)");
  const SatRow& sat = RunSatCached();
  std::printf("oracle-less probe: %.0f sampled keys -> %.0f distinct "
              "behaviours; nothing ranks them.\n",
              sat.oracle_less.counters.at("sampled_keys"),
              sat.oracle_less.counters.at("distinct_functions"));
  std::printf("with an oracle (threat model violated): SAT attack %s after "
              "%.0f DIPs; recovered key functionally correct: %s\n",
              sat.sequential.counters.at("finished") > 0 ? "finished"
                                                         : "budget-limited",
              sat.sequential.counters.at("dips_used"),
              sat.sequential.functionally_correct ? "YES" : "no");
  std::printf("sat-portfolio (%d configs): %.0f DIPs, key correct: %s, "
              "%.3f s vs %.3f s sequential (speedup %.2fx)\n",
              static_cast<int>(sat.portfolio.counters.at("configs")),
              sat.portfolio.counters.at("dips_used"),
              sat.portfolio.functionally_correct ? "YES" : "no",
              sat.portfolio.elapsed_s, sat.sequential.elapsed_s,
              sat.portfolio_speedup);

  PrintHeader("C. Future work (Sec. V): key via I/O pads + trusted package");
  const PackageRow& pkg = RunPackageCached();
  std::printf("key pads on boundary: %zu\n", pkg.key_pads);
  std::printf("proximity attack, key physical CCR: %.1f %% (pads carry no "
              "on-die value)\n",
              pkg.ccr.key_physical_ccr_percent);
  std::printf("random pad-value guessing, OER: %.2f %%\n", pkg.ideal_oer);
  std::printf("claim: security equals the BEOL variant — the bit "
              "assignment is simply hidden one level higher.\n");
}

}  // namespace
}  // namespace splitlock::bench

int main(int argc, char** argv) {
  using namespace splitlock::bench;
  // Strip our flags before google-benchmark sees (and rejects) them.
  std::string json_path;
  if (const char* env = std::getenv("BENCH_ADVANCED_JSON")) json_path = env;
  int out_argc = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--json=", 7) == 0) {
      json_path = argv[i] + 7;
    } else {
      argv[out_argc++] = argv[i];
    }
  }
  argc = out_argc;

  for (int split : {4, 6}) {
    benchmark::RegisterBenchmark(
        ("MlAttack/M" + std::to_string(split)).c_str(),
        [split](benchmark::State& st) {
          for (auto _ : st) {
            const MlRow& row = RunMlCached(split);
            st.counters["ml_key_logical"] =
                row.ml.key_logical_ccr_percent;
            st.counters["ml_regular"] = row.ml.regular_ccr_percent;
          }
        })
        ->Iterations(1)
        ->Unit(benchmark::kSecond);
  }
  benchmark::RegisterBenchmark("SatContrast", [](benchmark::State& st) {
    for (auto _ : st) {
      const SatRow& row = RunSatCached();
      st.counters["dips"] = row.sequential.counters.at("dips_used");
      st.counters["distinct_behaviours"] =
          row.oracle_less.counters.at("distinct_functions");
      st.counters["portfolio_speedup"] = row.portfolio_speedup;
    }
  })->Iterations(1)->Unit(benchmark::kSecond);
  benchmark::RegisterBenchmark("PackageMode", [](benchmark::State& st) {
    for (auto _ : st) {
      const PackageRow& row = RunPackageCached();
      st.counters["key_physical_ccr"] = row.ccr.key_physical_ccr_percent;
      st.counters["ideal_oer"] = row.ideal_oer;
    }
  })->Iterations(1)->Unit(benchmark::kSecond);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  PrintTables();
  const std::string json = splitlock::bench::ToJson();
  std::printf("%s\n", json.c_str());
  if (!json_path.empty()) {
    std::ofstream out(json_path);
    out << json << "\n";
    std::printf("perf record written to %s\n", json_path.c_str());
  }
  return 0;
}
