// Beyond-the-tables claims of the paper, made executable:
//
//  A. ML attack (footnote 3 / Sec. V): a learning-based matcher trained on
//     the attacker's own FEOL recovers regular nets better than naive
//     proximity but stays at coin flipping on the key-nets — "any proximity
//     attack has to rely on FEOL-level hints, and such hints are inherently
//     avoided for the secret key".
//  B. Oracle-less SAT reasoning (Sec. II-C): without a functional oracle
//     the key space cannot be pruned (many sampled keys, many distinct
//     behaviours, nothing to rank them by); WITH an oracle — which the
//     split-manufacturing threat model excludes — the classical SAT attack
//     extracts a functionally correct key quickly. The missing oracle is
//     the security.
//  C. Package-mode future work (Sec. V): key-nets to I/O pads tied in the
//     trusted package; security metrics match the BEOL variant.
#include "bench_common.hpp"

#include "attack/ideal.hpp"
#include "attack/ml_attack.hpp"
#include "attack/sat_attack.hpp"
#include "lock/atpg_lock.hpp"
#include "phys/router.hpp"

namespace splitlock::bench {
namespace {

constexpr const char* kBenchName = "b14";

// --- A: ML attack vs proximity attack --------------------------------------

struct MlRow {
  attack::CcrReport proximity;
  attack::CcrReport ml;
  double ml_training_accuracy = 0.0;
};

const MlRow& RunMlCached(int split_layer) {
  static std::map<int, MlRow> cache;
  auto it = cache.find(split_layer);
  if (it != cache.end()) return it->second;
  const FlowScore& base = RunItcFlowCached(kBenchName, split_layer);
  MlRow row;
  row.proximity = base.score.ccr;
  const attack::MlAttackResult ml = attack::RunMlAttack(base.flow.feol);
  row.ml = attack::ComputeCcr(base.flow.feol, ml.assignment);
  row.ml_training_accuracy = ml.training_accuracy_percent;
  return cache.emplace(split_layer, row).first->second;
}

// --- B: SAT attack with/without oracle -------------------------------------

struct SatRow {
  attack::OracleLessProbe oracle_less;
  attack::SatAttackResult with_oracle;
  size_t key_bits = 0;
};

const SatRow& RunSatCached() {
  static SatRow row;
  static bool done = false;
  if (done) return row;
  // A moderate design keeps the with-oracle SAT attack fast enough to
  // demonstrate the contrast.
  const Netlist original = circuits::MakeItc99(kBenchName, 0.05);
  lock::AtpgLockOptions opts;
  opts.key_bits = 48;
  opts.seed = 2019;
  opts.verify_lec = false;
  const lock::AtpgLockResult lock = lock::LockWithAtpg(original, opts);
  row.key_bits = lock.key.size();
  row.oracle_less =
      attack::ProbeOracleLessKeySpace(lock.locked, 512, 4096, 2019);
  row.with_oracle = attack::RunSatAttack(lock.locked, original);
  done = true;
  return row;
}

// --- C: package mode --------------------------------------------------------

struct PackageRow {
  attack::CcrReport ccr;
  double ideal_oer = 0.0;
  size_t key_pads = 0;
};

const PackageRow& RunPackageCached() {
  static PackageRow row;
  static bool done = false;
  if (done) return row;
  const Netlist original = circuits::MakeItc99(kBenchName, ReproScale());
  core::FlowOptions opts = DefaultFlowOptions(4, 2019);
  opts.package_mode = true;
  const core::FlowResult flow = core::RunSecureFlow(original, opts);
  row.key_pads = flow.physical.netlist->KeyInputs().size();
  const attack::ProximityResult atk = attack::RunProximityAttack(flow.feol);
  row.ccr = attack::ComputeCcr(flow.feol, atk.assignment);
  const attack::IdealAttackResult ideal = attack::RunIdealAttack(
      original, flow.lock.locked, flow.lock.key,
      std::min<uint64_t>(ReproGuesses(), 20000), 64, 2019);
  row.ideal_oer = ideal.OerPercent();
  done = true;
  return row;
}

void PrintTables() {
  PrintHeader("A. Learning-based attack vs proximity attack (b14)");
  std::printf("%-10s | %28s | %28s\n", "split",
              "proximity: reg / keylog / keyphys",
              "ML: reg / keylog / keyphys");
  PrintRule(76);
  for (int split : {4, 6}) {
    const MlRow& row = RunMlCached(split);
    std::printf("M%-9d | %8.1f / %6.1f / %7.1f | %8.1f / %6.1f / %7.1f\n",
                split, row.proximity.regular_ccr_percent,
                row.proximity.key_logical_ccr_percent,
                row.proximity.key_physical_ccr_percent,
                row.ml.regular_ccr_percent, row.ml.key_logical_ccr_percent,
                row.ml.key_physical_ccr_percent);
  }
  std::printf("(ML training accuracy on intact connections: %.1f%%)\n",
              RunMlCached(4).ml_training_accuracy);
  std::printf("claim: no attack family beats coin flipping on the key "
              "(logical CCR ~50, physical ~0).\n");

  PrintHeader("B. The worth of the missing oracle (b14 @ 0.05 scale, 48 "
              "key bits)");
  const SatRow& sat = RunSatCached();
  std::printf("oracle-less probe: %zu sampled keys -> %zu distinct "
              "behaviours; nothing ranks them.\n",
              sat.oracle_less.sampled_keys,
              sat.oracle_less.distinct_functions);
  std::printf("with an oracle (threat model violated): SAT attack %s after "
              "%zu DIPs; recovered key functionally correct: %s\n",
              sat.with_oracle.finished ? "finished" : "budget-limited",
              sat.with_oracle.dips_used,
              sat.with_oracle.functionally_correct ? "YES" : "no");

  PrintHeader("C. Future work (Sec. V): key via I/O pads + trusted package");
  const PackageRow& pkg = RunPackageCached();
  std::printf("key pads on boundary: %zu\n", pkg.key_pads);
  std::printf("proximity attack, key physical CCR: %.1f %% (pads carry no "
              "on-die value)\n",
              pkg.ccr.key_physical_ccr_percent);
  std::printf("random pad-value guessing, OER: %.2f %%\n", pkg.ideal_oer);
  std::printf("claim: security equals the BEOL variant — the bit "
              "assignment is simply hidden one level higher.\n");
}

}  // namespace
}  // namespace splitlock::bench

int main(int argc, char** argv) {
  using namespace splitlock::bench;
  for (int split : {4, 6}) {
    benchmark::RegisterBenchmark(
        ("MlAttack/M" + std::to_string(split)).c_str(),
        [split](benchmark::State& st) {
          for (auto _ : st) {
            const MlRow& row = RunMlCached(split);
            st.counters["ml_key_logical"] =
                row.ml.key_logical_ccr_percent;
            st.counters["ml_regular"] = row.ml.regular_ccr_percent;
          }
        })
        ->Iterations(1)
        ->Unit(benchmark::kSecond);
  }
  benchmark::RegisterBenchmark("SatContrast", [](benchmark::State& st) {
    for (auto _ : st) {
      const SatRow& row = RunSatCached();
      st.counters["dips"] = static_cast<double>(row.with_oracle.dips_used);
      st.counters["distinct_behaviours"] =
          static_cast<double>(row.oracle_less.distinct_functions);
    }
  })->Iterations(1)->Unit(benchmark::kSecond);
  benchmark::RegisterBenchmark("PackageMode", [](benchmark::State& st) {
    for (auto _ : st) {
      const PackageRow& row = RunPackageCached();
      st.counters["key_physical_ccr"] = row.ccr.key_physical_ccr_percent;
      st.counters["ideal_oer"] = row.ideal_oer;
    }
  })->Iterations(1)->Unit(benchmark::kSecond);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  PrintTables();
  return 0;
}
