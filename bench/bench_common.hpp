// Shared helpers for the table/figure regeneration harnesses.
//
// Each bench binary regenerates one table or figure from the paper: it runs
// the real flow (lock -> layout -> split -> attack) on the benchmark suite,
// prints the paper-formatted table with measured numbers next to the
// paper's published reference values, and registers one single-iteration
// google-benchmark per row so the numbers also surface as benchmark
// counters. Design sizes follow REPRO_SCALE (see util/env.hpp).
#pragma once

#include <benchmark/benchmark.h>

#include <cstdio>
#include <map>
#include <stdexcept>
#include <string>
#include <vector>

#include "attack/engine.hpp"
#include "attack/metrics.hpp"
#include "attack/proximity.hpp"
#include "circuits/suites.hpp"
#include "core/campaign.hpp"
#include "core/flow.hpp"
#include "util/env.hpp"

namespace splitlock::bench {

// Shared engine-adapter entry for layout-level attacks: dispatches `spec`
// through the attack-engine registry against an FEOL view. The default
// seed 1 matches the legacy free functions' option defaults, so tables
// stay comparable across the API migration. Throws when the engine fails.
inline attack::AttackReport RunEngineOnFeol(const split::FeolView& feol,
                                            const std::string& spec,
                                            uint64_t seed = 1) {
  attack::AttackContext ctx;
  ctx.feol = &feol;
  ctx.seed = seed;
  attack::AttackReport report = attack::RunAttack(ctx, spec);
  if (!report.ok) {
    throw std::runtime_error("attack engine " + spec + ": " + report.error);
  }
  return report;
}

// One secure-flow run plus its attack scorecard.
struct FlowScore {
  core::FlowResult flow;
  attack::AttackScore score;
};

inline core::FlowOptions DefaultFlowOptions(int split_layer, uint64_t seed) {
  core::FlowOptions options;
  options.key_bits = 128;
  options.split_layer = split_layer;
  options.seed = seed;
  return options;
}

namespace internal {

inline std::map<std::pair<std::string, int>, FlowScore>& FlowCache() {
  static std::map<std::pair<std::string, int>, FlowScore> cache;
  return cache;
}

inline core::CampaignRunner ItcCampaignRunner() {
  core::CampaignOptions campaign_options;
  campaign_options.score_patterns = ReproPatterns();
  return core::CampaignRunner(campaign_options);
}

inline void CacheOutcome(core::CampaignOutcome&& outcome, int split_layer) {
  if (!outcome.ok) {
    throw std::runtime_error("campaign job " + outcome.name +
                             " failed: " + outcome.error);
  }
  FlowCache().emplace(std::make_pair(outcome.name, split_layer),
                      FlowScore{std::move(outcome.flow), outcome.score});
}

}  // namespace internal

// Runs every ITC'99 benchmark for `split_layer` as one concurrent campaign
// on the exec thread pool and memoizes the results. Table harnesses that
// touch the whole suite call this up front; single-benchmark harnesses
// (ablations) skip it and pay only for the rows they read.
inline void WarmItcSuiteCache(int split_layer) {
  const core::FlowOptions options = DefaultFlowOptions(split_layer, 2019);
  std::vector<core::CampaignJob> jobs;
  for (core::CampaignJob& job :
       core::Itc99CampaignJobs(options, ReproScale())) {
    if (!internal::FlowCache().count({job.name, split_layer})) {
      jobs.push_back(std::move(job));
    }
  }
  std::vector<core::CampaignOutcome> outcomes =
      internal::ItcCampaignRunner().Run(jobs);
  for (core::CampaignOutcome& outcome : outcomes) {
    internal::CacheOutcome(std::move(outcome), split_layer);
  }
}

// Runs the secure flow + proximity attack on an ITC'99 benchmark at the
// configured scale. Results are memoized per (name, split); a miss runs
// just that benchmark (see WarmItcSuiteCache for concurrent suite warming).
inline const FlowScore& RunItcFlowCached(const std::string& name,
                                         int split_layer) {
  const auto key = std::make_pair(name, split_layer);
  auto it = internal::FlowCache().find(key);
  if (it != internal::FlowCache().end()) return it->second;

  const core::FlowOptions options = DefaultFlowOptions(split_layer, 2019);
  core::CampaignJob job;
  job.name = name;
  job.make_netlist = [name] { return circuits::MakeItc99(name, ReproScale()); };
  job.flow = options;
  internal::CacheOutcome(internal::ItcCampaignRunner().RunOne(job),
                         split_layer);
  return internal::FlowCache().at(key);
}

// Table printing -----------------------------------------------------------

inline void PrintRule(int width) {
  for (int i = 0; i < width; ++i) std::putchar('-');
  std::putchar('\n');
}

inline void PrintHeader(const char* title) {
  std::printf("\n");
  PrintRule(78);
  std::printf("%s\n", title);
  std::printf("(design scale %.2f of published gate counts; set "
              "REPRO_SCALE=1.0 for full size)\n",
              ReproScale());
  PrintRule(78);
}

// A "measured vs paper" cell: 51.3 (52) — measured first, reference in
// parentheses. Reference < 0 means the paper did not report the value.
inline std::string Cell(double measured, double paper) {
  char buf[64];
  if (paper < 0) {
    std::snprintf(buf, sizeof(buf), "%6.1f (  na)", measured);
  } else {
    std::snprintf(buf, sizeof(buf), "%6.1f (%4.0f)", measured, paper);
  }
  return buf;
}

}  // namespace splitlock::bench
