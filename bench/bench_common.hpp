// Shared helpers for the table/figure regeneration harnesses.
//
// Each bench binary regenerates one table or figure from the paper: it runs
// the real flow (lock -> layout -> split -> attack) on the benchmark suite,
// prints the paper-formatted table with measured numbers next to the
// paper's published reference values, and registers one single-iteration
// google-benchmark per row so the numbers also surface as benchmark
// counters. Design sizes follow REPRO_SCALE (see util/env.hpp).
#pragma once

#include <benchmark/benchmark.h>

#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "attack/metrics.hpp"
#include "attack/proximity.hpp"
#include "circuits/suites.hpp"
#include "core/flow.hpp"
#include "util/env.hpp"

namespace splitlock::bench {

// One secure-flow run plus its attack scorecard.
struct FlowScore {
  core::FlowResult flow;
  attack::AttackScore score;
};

inline core::FlowOptions DefaultFlowOptions(int split_layer, uint64_t seed) {
  core::FlowOptions options;
  options.key_bits = 128;
  options.split_layer = split_layer;
  options.seed = seed;
  return options;
}

// Runs the secure flow + proximity attack on an ITC'99 benchmark at the
// configured scale. Results are memoized per (name, split) so that bench
// binaries can reference the same run from several rows.
inline const FlowScore& RunItcFlowCached(const std::string& name,
                                         int split_layer) {
  static std::map<std::pair<std::string, int>, FlowScore> cache;
  const auto key = std::make_pair(name, split_layer);
  auto it = cache.find(key);
  if (it != cache.end()) return it->second;

  const Netlist original = circuits::MakeItc99(name, ReproScale());
  const core::FlowOptions options = DefaultFlowOptions(split_layer, 2019);
  FlowScore entry{core::RunSecureFlow(original, options), {}};
  const attack::ProximityResult atk =
      attack::RunProximityAttack(entry.flow.feol);
  entry.score = attack::ScoreAttack(entry.flow.feol, atk.assignment,
                                    ReproPatterns(), options.seed);
  return cache.emplace(key, std::move(entry)).first->second;
}

// Table printing -----------------------------------------------------------

inline void PrintRule(int width) {
  for (int i = 0; i < width; ++i) std::putchar('-');
  std::putchar('\n');
}

inline void PrintHeader(const char* title) {
  std::printf("\n");
  PrintRule(78);
  std::printf("%s\n", title);
  std::printf("(design scale %.2f of published gate counts; set "
              "REPRO_SCALE=1.0 for full size)\n",
              ReproScale());
  PrintRule(78);
}

// A "measured vs paper" cell: 51.3 (52) — measured first, reference in
// parentheses. Reference < 0 means the paper did not report the value.
inline std::string Cell(double measured, double paper) {
  char buf[64];
  if (paper < 0) {
    std::snprintf(buf, sizeof(buf), "%6.1f (  na)", measured);
  } else {
    std::snprintf(buf, sizeof(buf), "%6.1f (%4.0f)", measured, paper);
  }
  return buf;
}

}  // namespace splitlock::bench
