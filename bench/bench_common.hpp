// Shared helpers for the table/figure regeneration harnesses.
//
// Each bench binary regenerates one table or figure from the paper: it runs
// the real flow (lock -> layout -> split -> attack) on the benchmark suite,
// prints the paper-formatted table with measured numbers next to the
// paper's published reference values, and registers one single-iteration
// google-benchmark per row so the numbers also surface as benchmark
// counters. Design sizes follow REPRO_SCALE (see util/env.hpp).
#pragma once

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>
#include <map>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "attack/engine.hpp"
#include "attack/metrics.hpp"
#include "attack/proximity.hpp"
#include "circuits/suites.hpp"
#include "core/campaign.hpp"
#include "core/flow.hpp"
#include "store/result_store.hpp"
#include "util/env.hpp"
#include "util/json.hpp"

namespace splitlock::bench {

// Shared engine-adapter entry for layout-level attacks: dispatches `spec`
// through the attack-engine registry against an FEOL view. The default
// seed 1 matches the legacy free functions' option defaults, so tables
// stay comparable across the API migration. Throws when the engine fails.
inline attack::AttackReport RunEngineOnFeol(const split::FeolView& feol,
                                            const std::string& spec,
                                            uint64_t seed = 1) {
  attack::AttackContext ctx;
  ctx.feol = &feol;
  ctx.seed = seed;
  attack::AttackReport report = attack::RunAttack(ctx, spec);
  if (!report.ok) {
    throw std::runtime_error("attack engine " + spec + ": " + report.error);
  }
  return report;
}

// One secure-flow run plus its attack scorecard and serializable record.
struct FlowScore {
  core::FlowResult flow;
  attack::AttackScore score;
  store::CampaignRecord record;
};

inline core::FlowOptions DefaultFlowOptions(int split_layer, uint64_t seed) {
  core::FlowOptions options;
  options.key_bits = 128;
  options.split_layer = split_layer;
  options.seed = seed;
  return options;
}

namespace internal {

// Process-global persistent store, enabled by SPLITLOCK_STORE=<dir>.
// When set, every computed flow's record is persisted, and record-only
// consumers (RunItcRecordCached) are served from disk on later runs —
// that is what makes repeated table-bench invocations near-instant.
inline store::ResultStore* PersistentStore() {
  static store::ResultStore* store_ptr = []() -> store::ResultStore* {
    const char* dir = std::getenv("SPLITLOCK_STORE");
    if (!dir || !*dir) return nullptr;
    static store::ResultStore instance{std::string(dir)};
    return &instance;
  }();
  return store_ptr;
}

// Single-flight memo entry: the first caller computes under `mu`, every
// concurrent caller for the same key blocks on it instead of racing a
// duplicate multi-second flow.
struct FlowEntry {
  std::mutex mu;
  bool ready = false;
  FlowScore score;
};

inline std::mutex& FlowCacheMu() {
  static std::mutex mu;
  return mu;
}

// Both in-process memo maps are keyed the way the persistent store is:
// the flow cache by the flow-level store stem (suite/scale/flow-options
// hash), the record cache by that stem plus the portfolio identity. The
// two-level split matters for the same reason it does on disk — harnesses
// running different attack portfolios over one flow share the
// single-flight FlowEntry (the expensive part) while memoizing their
// records separately.
inline std::map<std::string, std::unique_ptr<FlowEntry>>& FlowCache() {
  static std::map<std::string, std::unique_ptr<FlowEntry>> cache;
  return cache;
}

inline FlowEntry& FlowEntryFor(const std::string& flow_key) {
  std::lock_guard<std::mutex> lock(FlowCacheMu());
  std::unique_ptr<FlowEntry>& slot = FlowCache()[flow_key];
  if (!slot) slot = std::make_unique<FlowEntry>();
  return *slot;
}

// In-memory record cache (separate from FlowCache: store hits have records
// but no in-memory FlowResult). Entries are write-once — inserted with
// emplace, never overwritten — so the const references RunItcRecordCached
// hands out stay valid and race-free while other keys are inserted
// (std::map never invalidates node references).
inline std::map<std::string, store::CampaignRecord>& RecordCache() {
  static std::map<std::string, store::CampaignRecord> cache;
  return cache;
}

inline core::CampaignRunner ItcCampaignRunner() {
  core::CampaignOptions campaign_options;
  campaign_options.score_patterns = ReproPatterns();
  campaign_options.store = PersistentStore();
  return core::CampaignRunner(campaign_options);
}

inline core::CampaignJob ItcJob(const std::string& name, int split_layer,
                                bool force_compute) {
  core::CampaignJob job;
  job.name = name;
  job.make_netlist = [name] { return circuits::MakeItc99(name, ReproScale()); };
  job.flow = DefaultFlowOptions(split_layer, 2019);
  job.cache_id = "itc/" + name;
  job.cache_scale = store::CanonicalDouble(ReproScale());
  job.force_compute = force_compute;
  return job;
}

// The flow-level memo key for `job`: exactly the persistent store's stem,
// so the in-process and on-disk caches partition identically.
inline std::string ItcFlowKey(const core::CampaignJob& job) {
  return ItcCampaignRunner().KeyFor(job).Stem();
}

// The record-level memo key: flow stem + portfolio identity (the same
// PortfolioHash shard tables carry). force_compute does not participate —
// it changes where a record comes from, never what it contains.
inline std::string ItcRecordKey(const core::CampaignJob& job) {
  std::vector<std::string> configs;
  configs.reserve(job.attacks.size());
  for (const attack::AttackConfig& config : job.attacks) {
    configs.push_back(config.ToString());
  }
  return ItcFlowKey(job) + "-p" +
         util::HexU64(store::PortfolioHash(configs, ReproPatterns(),
                                           /*run_attack=*/true));
}

inline FlowScore OutcomeToFlowScore(core::CampaignOutcome&& outcome) {
  if (!outcome.ok) {
    throw std::runtime_error("campaign job " + outcome.name +
                             " failed: " + outcome.error);
  }
  return FlowScore{std::move(outcome.flow), outcome.score,
                   std::move(outcome.record)};
}

}  // namespace internal

// Runs every ITC'99 benchmark for `split_layer` as one concurrent campaign
// on the exec thread pool and memoizes the results. Members already in the
// persistent store come back as records without recomputing the flow (the
// record cache serves the table harnesses); members that do compute land
// in both caches. Table harnesses that touch the whole suite call this up
// front; single-benchmark harnesses (ablations) skip it and pay only for
// the rows they read.
inline void WarmItcSuiteCache(int split_layer) {
  const core::FlowOptions options = DefaultFlowOptions(split_layer, 2019);
  std::vector<core::CampaignJob> jobs;
  // Claim each missing entry's lock up front so concurrent warmers (or a
  // racing RunItcFlowCached) never duplicate a flow; locks are held for
  // the duration of the campaign and released with the results filled.
  std::vector<std::pair<internal::FlowEntry*, std::unique_lock<std::mutex>>>
      claimed;
  std::vector<std::string> record_keys;
  for (core::CampaignJob& job :
       core::Itc99CampaignJobs(options, ReproScale())) {
    internal::FlowEntry& entry =
        internal::FlowEntryFor(internal::ItcFlowKey(job));
    std::unique_lock<std::mutex> entry_lock(entry.mu, std::try_to_lock);
    if (!entry_lock.owns_lock() || entry.ready) continue;
    record_keys.push_back(internal::ItcRecordKey(job));
    jobs.push_back(std::move(job));
    claimed.emplace_back(&entry, std::move(entry_lock));
  }
  std::vector<core::CampaignOutcome> outcomes =
      internal::ItcCampaignRunner().Run(jobs);
  for (size_t i = 0; i < outcomes.size(); ++i) {
    core::CampaignOutcome& outcome = outcomes[i];
    if (!outcome.ok) {
      throw std::runtime_error("campaign job " + outcome.name +
                               " failed: " + outcome.error);
    }
    {
      std::lock_guard<std::mutex> lock(internal::FlowCacheMu());
      internal::RecordCache().emplace(record_keys[i], outcome.record);
    }
    if (!outcome.from_store) {
      internal::FlowEntry& entry = *claimed[i].first;
      entry.score = internal::OutcomeToFlowScore(std::move(outcome));
      entry.ready = true;
    }
    // Store hits leave the FlowEntry unfilled; a later RunItcFlowCached
    // (which needs the in-memory artifacts) recomputes it.
  }
}

// Runs the secure flow + proximity attack on an ITC'99 benchmark at the
// configured scale and returns the full in-memory result. Memoized per
// (name, split) with single-flight semantics: concurrent first calls for
// the same key run the flow exactly once. force_compute skips the
// summary-record shortcut because this caller needs the in-memory FEOL
// view — but a warm persistent store still serves the *artifact tier*
// (store/artifact_io), so the flow is rebuilt by deserializing the layout
// and replaying the cheap analysis stages instead of re-running
// place/route/lift. Both paths persist record and artifacts for later
// consumers.
inline const FlowScore& RunItcFlowCached(const std::string& name,
                                         int split_layer) {
  const core::CampaignJob job =
      internal::ItcJob(name, split_layer, /*force_compute=*/true);
  internal::FlowEntry& entry =
      internal::FlowEntryFor(internal::ItcFlowKey(job));
  std::lock_guard<std::mutex> entry_lock(entry.mu);
  if (entry.ready) return entry.score;
  entry.score =
      internal::OutcomeToFlowScore(internal::ItcCampaignRunner().RunOne(job));
  entry.ready = true;
  {
    std::lock_guard<std::mutex> lock(internal::FlowCacheMu());
    internal::RecordCache().emplace(internal::ItcRecordKey(job),
                                    entry.score.record);
  }
  return entry.score;
}

// Record-only variant for harnesses that read numbers, not netlists: the
// scorecard, layout cost, gate/stub counts and stage times. Served in
// order from the in-memory record cache, the persistent store
// (SPLITLOCK_STORE), and finally a real flow run. Returns a reference to
// the write-once cache entry — benchmark loops repeat this call, so it
// must not deep-copy the record per iteration.
inline const store::CampaignRecord& RunItcRecordCached(const std::string& name,
                                                       int split_layer) {
  const core::CampaignJob job =
      internal::ItcJob(name, split_layer, /*force_compute=*/false);
  const std::string key = internal::ItcRecordKey(job);
  {
    std::lock_guard<std::mutex> lock(internal::FlowCacheMu());
    auto it = internal::RecordCache().find(key);
    if (it != internal::RecordCache().end()) return it->second;
  }
  if (internal::PersistentStore()) {
    // Two-level assembly: flow record + one record per portfolio attack.
    // Rejects assembled failures (only a foreign/stale store can contain
    // one) so zeroed table rows are never served; fall through and
    // recompute, which throws loudly on failure like the cold path.
    std::optional<store::CampaignRecord> record =
        internal::ItcCampaignRunner().LookupAssembled(job);
    if (record && record->ok) {
      std::lock_guard<std::mutex> lock(internal::FlowCacheMu());
      return internal::RecordCache()
          .emplace(key, std::move(*record))
          .first->second;
    }
  }
  RunItcFlowCached(name, split_layer);  // fills RecordCache on completion
  std::lock_guard<std::mutex> lock(internal::FlowCacheMu());
  return internal::RecordCache().at(key);
}

// Table printing -----------------------------------------------------------

inline void PrintRule(int width) {
  for (int i = 0; i < width; ++i) std::putchar('-');
  std::putchar('\n');
}

inline void PrintHeader(const char* title) {
  std::printf("\n");
  PrintRule(78);
  std::printf("%s\n", title);
  std::printf("(design scale %.2f of published gate counts; set "
              "REPRO_SCALE=1.0 for full size)\n",
              ReproScale());
  PrintRule(78);
}

// A "measured vs paper" cell: 51.3 (52) — measured first, reference in
// parentheses. Reference < 0 means the paper did not report the value.
inline std::string Cell(double measured, double paper) {
  char buf[64];
  if (paper < 0) {
    std::snprintf(buf, sizeof(buf), "%6.1f (  na)", measured);
  } else {
    std::snprintf(buf, sizeof(buf), "%6.1f (%4.0f)", measured, paper);
  }
  return buf;
}

}  // namespace splitlock::bench
