// Fig. 5: layout cost (%) of the secure flow across ITC'99 benchmarks.
//
// Three series against the unprotected baseline layouts:
//   Prelift - locked netlist through a regular PD flow (dont-touch TIE
//             cells, no randomization, no lifting),
//   M4      - secure flow split at M4 (key-nets lifted to M5),
//   M6      - secure flow split at M6 (key-nets lifted to M7).
// The paper reports boxplots; this harness prints min / Q1 / median / Q3 /
// max over the benchmark suite for area, power and timing deltas.
// Paper averages: area -12.75% (prelift), -10.05% (M4), -8.83% (M6);
// power +7.66 / +20.34 / +15.46; timing +6.40 / +6.25 / +6.53.
#include <algorithm>

#include "bench_common.hpp"
#include "lock/atpg_lock.hpp"
#include "lock/key.hpp"

namespace splitlock::bench {
namespace {

struct CostRow {
  core::CostDelta prelift;
  core::CostDelta m4;
  core::CostDelta m6;
};

const CostRow& RunCostCached(const std::string& name) {
  static std::map<std::string, CostRow> cache;
  auto it = cache.find(name);
  if (it != cache.end()) return it->second;

  const Netlist original = circuits::MakeItc99(name, ReproScale());
  core::FlowOptions options = DefaultFlowOptions(4, 2019);

  // Unprotected baseline.
  const core::PhysicalBundle baseline =
      core::BuildPhysical(original, options);

  // One lock run shared by all three protected layouts.
  lock::AtpgLockOptions lock_opts = options.lock;
  lock_opts.key_bits = options.key_bits;
  lock_opts.seed = options.seed;
  const lock::AtpgLockResult lock = lock::LockWithAtpg(original, lock_opts);
  const Netlist realized = lock::RealizeKeyAsTies(lock.locked, lock.key);

  CostRow row;
  {
    core::FlowOptions prelift = options;
    prelift.randomize_tie_placement = false;
    prelift.lift_key_nets = false;
    const core::PhysicalBundle b = core::BuildPhysical(realized, prelift);
    row.prelift = core::CompareCost(baseline.cost, b.cost);
  }
  {
    core::FlowOptions m4 = options;
    m4.split_layer = 4;
    // Lifting consumes routing resources; the paper "reduces the
    // utilization rates as needed" for the lifted layouts.
    m4.utilization = options.utilization - 0.015;
    const core::PhysicalBundle b = core::BuildPhysical(realized, m4);
    row.m4 = core::CompareCost(baseline.cost, b.cost);
  }
  {
    core::FlowOptions m6 = options;
    m6.split_layer = 6;
    // The M7/M8 pair has coarser pitch (fewer tracks): utilization drops
    // slightly more than for the M5/M6 lift.
    m6.utilization = options.utilization - 0.025;
    const core::PhysicalBundle b = core::BuildPhysical(realized, m6);
    row.m6 = core::CompareCost(baseline.cost, b.cost);
  }
  return cache.emplace(name, row).first->second;
}

struct BoxStats {
  double min, q1, median, q3, max, mean;
};

BoxStats Box(std::vector<double> v) {
  std::sort(v.begin(), v.end());
  auto at = [&](double q) {
    const double idx = q * (v.size() - 1);
    const size_t lo = static_cast<size_t>(idx);
    const size_t hi = std::min(lo + 1, v.size() - 1);
    const double frac = idx - lo;
    return v[lo] * (1 - frac) + v[hi] * frac;
  };
  double mean = 0;
  for (double x : v) mean += x;
  mean /= v.size();
  return BoxStats{v.front(), at(0.25), at(0.5), at(0.75), v.back(), mean};
}

void PrintSeries(const char* label, const std::vector<double>& values,
                 double paper_mean) {
  const BoxStats b = Box(values);
  std::printf("  %-18s min %+7.2f  Q1 %+7.2f  med %+7.2f  Q3 %+7.2f  "
              "max %+7.2f | mean %+7.2f (paper avg %+6.2f)\n",
              label, b.min, b.q1, b.median, b.q3, b.max, b.mean, paper_mean);
}

void PrintTable() {
  PrintHeader("Fig. 5 - layout cost (%) vs unprotected baseline (boxplot "
              "stats over the ITC'99 suite)");
  std::vector<double> area[3];
  std::vector<double> power[3];
  std::vector<double> timing[3];
  for (const auto& info : circuits::Itc99Suite()) {
    const CostRow& row = RunCostCached(info.name);
    const core::CostDelta* deltas[3] = {&row.prelift, &row.m4, &row.m6};
    for (int s = 0; s < 3; ++s) {
      area[s].push_back(deltas[s]->area_percent);
      power[s].push_back(deltas[s]->power_percent);
      timing[s].push_back(deltas[s]->timing_percent);
    }
    std::printf("%-5s  prelift a/p/t %+6.1f/%+6.1f/%+6.1f   "
                "M4 %+6.1f/%+6.1f/%+6.1f   M6 %+6.1f/%+6.1f/%+6.1f\n",
                info.name.c_str(), row.prelift.area_percent,
                row.prelift.power_percent, row.prelift.timing_percent,
                row.m4.area_percent, row.m4.power_percent,
                row.m4.timing_percent, row.m6.area_percent,
                row.m6.power_percent, row.m6.timing_percent);
  }
  std::printf("\nArea delta (%%):\n");
  PrintSeries("Prelift", area[0], -12.75);
  PrintSeries("M4", area[1], -10.05);
  PrintSeries("M6", area[2], -8.83);
  std::printf("Power delta (%%):\n");
  PrintSeries("Prelift", power[0], 7.66);
  PrintSeries("M4", power[1], 20.34);
  PrintSeries("M6", power[2], 15.46);
  std::printf("Timing delta (%%):\n");
  PrintSeries("Prelift", timing[0], 6.40);
  PrintSeries("M4", timing[1], 6.25);
  PrintSeries("M6", timing[2], 6.53);
  std::printf(
      "\nexpected shape: area *savings* in all three series (removed cones\n"
      "outweigh restore circuitry), power and timing modest increases,\n"
      "with lifting costing more power at M4 than at M6.\n");
}

void RunRow(benchmark::State& state, const std::string& name) {
  for (auto _ : state) {
    const CostRow& row = RunCostCached(name);
    state.counters["prelift_area"] = row.prelift.area_percent;
    state.counters["m4_area"] = row.m4.area_percent;
    state.counters["m6_area"] = row.m6.area_percent;
    state.counters["m4_power"] = row.m4.power_percent;
    state.counters["m6_power"] = row.m6.power_percent;
    state.counters["m4_timing"] = row.m4.timing_percent;
  }
}

}  // namespace
}  // namespace splitlock::bench

int main(int argc, char** argv) {
  using namespace splitlock::bench;
  for (const auto& info : splitlock::circuits::Itc99Suite()) {
    benchmark::RegisterBenchmark(
        ("Fig5/" + info.name).c_str(),
        [name = info.name](benchmark::State& st) { RunRow(st, name); })
        ->Iterations(1)
        ->Unit(benchmark::kSecond);
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  PrintTable();
  return 0;
}
