// Sec. IV-A "ideal proximity attack": grant the attacker every regular net
// and let them guess the key-nets randomly; the OER must stay at 100%.
//
// The paper ran 1,000,000 random key guesses per benchmark; REPRO_GUESSES
// controls the count here (default 100k). Each guess is validated against
// the original function on a batch of random patterns, 64 guesses per
// simulation pass.
#include "bench_common.hpp"

#include "lock/atpg_lock.hpp"

namespace splitlock::bench {
namespace {

struct IdealRow {
  uint64_t guesses = 0;
  uint64_t exact_guesses = 0;
  double oer_percent = 0.0;
  size_t key_bits = 0;
};

const IdealRow& RunIdealCached(const std::string& name) {
  static std::map<std::string, IdealRow> cache;
  auto it = cache.find(name);
  if (it != cache.end()) return it->second;

  const Netlist original = circuits::MakeItc99(name, ReproScale());
  lock::AtpgLockOptions opts;
  opts.key_bits = 128;
  opts.seed = 2019;
  opts.verify_lec = false;  // LEC exercised by the flow benches/tests
  const lock::AtpgLockResult lock = lock::LockWithAtpg(original, opts);

  // Guess-sweep mode of the shared "ideal" engine adapter: the context
  // carries locked+oracle+key, no FEOL view.
  attack::AttackContext ctx;
  ctx.locked = &lock.locked;
  ctx.oracle = &original;
  ctx.correct_key = lock.key;
  ctx.seed = 2019;
  const attack::AttackReport report = attack::RunAttack(
      ctx, "ideal:guesses=" + std::to_string(ReproGuesses()) +
               ",patterns_per_guess=48");
  if (!report.ok) throw std::runtime_error(report.error);

  IdealRow row;
  row.key_bits = lock.key.size();
  row.guesses = static_cast<uint64_t>(report.counters.at("guesses"));
  row.exact_guesses =
      static_cast<uint64_t>(report.counters.at("exact_guesses"));
  row.oer_percent = report.counters.at("oer_percent");
  return cache.emplace(name, std::move(row)).first->second;
}

void PrintTable() {
  PrintHeader("Ideal proximity attack (Sec. IV-A): all regular nets "
              "granted, key-nets guessed at random");
  std::printf("%-6s | %12s | %16s | %12s | %10s\n", "", "key bits",
              "random guesses", "exact hits", "OER (%)");
  PrintRule(72);
  for (const auto& info : circuits::Itc99Suite()) {
    const IdealRow& row = RunIdealCached(info.name);
    std::printf("%-6s | %12zu | %16llu | %12llu | %10.3f\n",
                info.name.c_str(), row.key_bits,
                (unsigned long long)row.guesses,
                (unsigned long long)row.exact_guesses, row.oer_percent);
  }
  PrintRule(72);
  std::printf(
      "\npaper: OER remains at 100%% across all benchmarks for 1M guesses\n"
      "(with 128 key bits a random guess is never exactly correct, and\n"
      "every wrong key produces output errors).\n");
}

void RunRow(benchmark::State& state, const std::string& name) {
  for (auto _ : state) {
    const IdealRow& row = RunIdealCached(name);
    state.counters["oer_percent"] = row.oer_percent;
    state.counters["guesses"] = static_cast<double>(row.guesses);
    state.counters["exact_hits"] = static_cast<double>(row.exact_guesses);
  }
}

}  // namespace
}  // namespace splitlock::bench

int main(int argc, char** argv) {
  using namespace splitlock::bench;
  for (const auto& info : splitlock::circuits::Itc99Suite()) {
    benchmark::RegisterBenchmark(
        ("IdealAttack/" + info.name).c_str(),
        [name = info.name](benchmark::State& st) { RunRow(st, name); })
        ->Iterations(1)
        ->Unit(benchmark::kSecond);
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  PrintTable();
  return 0;
}
