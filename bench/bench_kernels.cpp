// Kernel micro-benchmarks: old-vs-new hot paths, with a JSON perf record.
//
// Times the two kernels this library's campaigns hammer hardest, reference
// implementation against event-driven/incremental rewrite, across the
// ISCAS-85 and ITC'99 suites:
//
//  * DetectMask sweeps — FaultSimulator::DetectMaskFull (linear
//    re-simulation of the topological suffix) vs DetectMask (levelized
//    event-driven fanout-cone propagation).
//  * DIP-round constraint encoding — StructuralEncoder::EncodeNetlist under
//    constant inputs (full netlist walk, twice per round like the SAT
//    attack's two key hypotheses) vs IncrementalDipEncoder (one constant
//    simulation + two key-cone walks).
//
// Every timed pair is also cross-checked (masks / output literals must be
// bit-identical) and mismatch counts land in the record. The JSON record
// goes to stdout (and to $BENCH_KERNELS_JSON when set) so CI and future
// PRs can track the perf trajectory.
//
// Unlike the table harnesses this binary does not use google-benchmark, so
// it builds everywhere; `--smoke` (or BENCH_KERNELS_SMOKE=1) shrinks the
// workload to a compile-and-run sanity check for CI.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "atpg/fault.hpp"
#include "atpg/fault_sim.hpp"
#include "circuits/suites.hpp"
#include "lock/epic.hpp"
#include "sat/solver.hpp"
#include "sat/tseitin.hpp"
#include "store/result_store.hpp"
#include "util/env.hpp"
#include "util/rng.hpp"

namespace splitlock::bench {
namespace {

double Now() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

struct KernelRecord {
  std::string name;
  size_t gates = 0;
  size_t faults = 0;
  size_t words = 0;
  double detect_full_s = 0;
  double detect_event_s = 0;
  size_t detect_mismatches = 0;
  size_t dip_rounds = 0;
  size_t key_bits = 0;
  size_t cone_gates = 0;
  double dip_full_s = 0;
  double dip_incremental_s = 0;
  size_t dip_mismatches = 0;

  double DetectSpeedup() const {
    return detect_event_s > 0 ? detect_full_s / detect_event_s : 0;
  }
  double DipSpeedup() const {
    return dip_incremental_s > 0 ? dip_full_s / dip_incremental_s : 0;
  }
};

struct BenchConfig {
  bool smoke = false;
  size_t max_faults = 2048;
  size_t words = 4;
  size_t dip_rounds = 6;
  size_t key_bits = 32;
};

// The sweep shape mirrors ShardedFaultSweep's inner tile: per word, load
// stimulus once and run every fault. One stimulus stream per variant so
// both see identical patterns.
double TimeDetectSweep(atpg::FaultSimulator& sim,
                       const std::vector<atpg::Fault>& faults, size_t words,
                       uint64_t seed, bool full, uint64_t* acc) {
  Rng rng(seed);
  const double start = Now();
  for (size_t w = 0; w < words; ++w) {
    sim.LoadRandomPatterns(rng);
    for (const atpg::Fault& f : faults) {
      *acc ^= full ? sim.DetectMaskFull(f) : sim.DetectMask(f);
    }
  }
  return Now() - start;
}

KernelRecord RunCircuit(const std::string& name, Netlist nl,
                        const BenchConfig& cfg) {
  KernelRecord rec;
  rec.name = name;
  rec.gates = nl.NumLogicGates();
  rec.words = cfg.words;
  rec.dip_rounds = cfg.dip_rounds;

  // --- DetectMask: full resim vs event-driven ---
  std::vector<atpg::Fault> faults =
      atpg::CollapseFaults(nl, atpg::EnumerateStemFaults(nl));
  if (faults.size() > cfg.max_faults) faults.resize(cfg.max_faults);
  rec.faults = faults.size();

  const atpg::SimTopology topo(nl);
  atpg::FaultSimulator sim(nl, topo);
  uint64_t acc = 0;
  // Correctness cross-check outside the timed region.
  {
    Rng rng(99);
    sim.LoadRandomPatterns(rng);
    for (const atpg::Fault& f : faults) {
      if (sim.DetectMask(f) != sim.DetectMaskFull(f)) ++rec.detect_mismatches;
    }
  }
  rec.detect_full_s =
      TimeDetectSweep(sim, faults, cfg.words, 2026, /*full=*/true, &acc);
  rec.detect_event_s =
      TimeDetectSweep(sim, faults, cfg.words, 2026, /*full=*/false, &acc);

  // --- DIP-round encoding: full EncodeNetlist vs incremental ---
  Rng lock_rng(4242);
  const size_t key_bits = std::min(cfg.key_bits, nl.NumLogicGates() / 2);
  const lock::EpicResult locked = lock::LockWithEpic(nl, key_bits, lock_rng);
  const Netlist& lk = locked.locked;
  rec.key_bits = lk.KeyInputs().size();
  const size_t num_pis = lk.inputs().size();

  sat::Solver full_solver, inc_solver;
  sat::StructuralEncoder full_enc(full_solver), inc_enc(inc_solver);
  std::vector<sat::Lit> fk1(rec.key_bits), fk2(rec.key_bits);
  std::vector<sat::Lit> ik1(rec.key_bits), ik2(rec.key_bits);
  for (auto& l : fk1) l = full_enc.FreshLit();
  for (auto& l : fk2) l = full_enc.FreshLit();
  for (auto& l : ik1) l = inc_enc.FreshLit();
  for (auto& l : ik2) l = inc_enc.FreshLit();
  sat::IncrementalDipEncoder dip_enc(inc_enc, lk);
  rec.cone_gates = dip_enc.ConeSize();

  std::vector<std::vector<uint8_t>> dips(cfg.dip_rounds);
  Rng dip_rng(7);
  for (auto& dip : dips) {
    dip.resize(num_pis);
    for (auto& b : dip) b = dip_rng.NextBool() ? 1 : 0;
  }

  std::vector<std::vector<sat::Lit>> full_outs, inc_outs;
  const double full_start = Now();
  for (const auto& dip : dips) {
    std::vector<sat::Lit> const_in(num_pis);
    for (size_t i = 0; i < num_pis; ++i) {
      const_in[i] = dip[i] ? full_enc.TrueLit() : full_enc.FalseLit();
    }
    full_outs.push_back(full_enc.EncodeNetlist(lk, const_in, fk1));
    full_outs.push_back(full_enc.EncodeNetlist(lk, const_in, fk2));
  }
  rec.dip_full_s = Now() - full_start;

  const double inc_start = Now();
  for (const auto& dip : dips) {
    dip_enc.SetDip(dip);
    inc_outs.push_back(dip_enc.Encode(ik1));
    inc_outs.push_back(dip_enc.Encode(ik2));
  }
  rec.dip_incremental_s = Now() - inc_start;

  for (size_t i = 0; i < full_outs.size(); ++i) {
    if (full_outs[i] != inc_outs[i]) ++rec.dip_mismatches;
  }

  if (acc == 0x5a5a5a5a5a5a5a5aULL) std::printf("(unlikely)\n");  // keep acc
  return rec;
}

std::string ToJson(const std::vector<KernelRecord>& records, bool smoke) {
  char buf[512];
  std::string json = "{\"bench\":\"bench_kernels\",\"schema_version\":" +
                     std::to_string(store::kResultSchemaVersion) + ",";
  std::snprintf(buf, sizeof(buf), "\"smoke\":%s,\"repro_scale\":%.3f,",
                smoke ? "true" : "false", ReproScale());
  json += buf;
  json += "\"circuits\":[";
  for (size_t i = 0; i < records.size(); ++i) {
    const KernelRecord& r = records[i];
    std::snprintf(
        buf, sizeof(buf),
        "%s{\"name\":\"%s\",\"gates\":%zu,\"faults\":%zu,\"words\":%zu,"
        "\"detect_full_s\":%.6f,\"detect_event_s\":%.6f,"
        "\"detect_speedup\":%.2f,\"detect_mismatches\":%zu,"
        "\"dip_rounds\":%zu,\"key_bits\":%zu,\"cone_gates\":%zu,"
        "\"dip_full_s\":%.6f,\"dip_incremental_s\":%.6f,"
        "\"dip_speedup\":%.2f,\"dip_mismatches\":%zu}",
        i == 0 ? "" : ",", r.name.c_str(), r.gates, r.faults, r.words,
        r.detect_full_s, r.detect_event_s, r.DetectSpeedup(),
        r.detect_mismatches, r.dip_rounds, r.key_bits, r.cone_gates,
        r.dip_full_s, r.dip_incremental_s, r.DipSpeedup(), r.dip_mismatches);
    json += buf;
  }
  json += "]}";
  return json;
}

int Main(int argc, char** argv) {
  BenchConfig cfg;
  std::string json_path;
  if (const char* env = std::getenv("BENCH_KERNELS_SMOKE")) {
    cfg.smoke = std::strcmp(env, "0") != 0;
  }
  if (const char* env = std::getenv("BENCH_KERNELS_JSON")) json_path = env;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) cfg.smoke = true;
    if (std::strncmp(argv[i], "--json=", 7) == 0) json_path = argv[i] + 7;
  }
  if (cfg.smoke) {
    cfg.max_faults = 256;
    cfg.words = 1;
    cfg.dip_rounds = 2;
    cfg.key_bits = 16;
  }

  std::vector<KernelRecord> records;
  const double itc_scale = cfg.smoke ? 0.05 : ReproScale();
  std::vector<std::pair<std::string, Netlist>> circuits;
  for (const auto& info : circuits::IscasSuite()) {
    if (cfg.smoke && info.name != "c432" && info.name != "c880") continue;
    circuits.emplace_back(info.name, circuits::MakeIscas(info.name));
  }
  for (const auto& info : circuits::Itc99Suite()) {
    if (cfg.smoke && info.name != "b14") continue;
    circuits.emplace_back(info.name, circuits::MakeItc99(info.name, itc_scale));
  }

  std::printf(
      "%-6s | %8s | %7s | %12s | %13s | %8s | %12s | %12s | %8s\n", "name",
      "gates", "faults", "detect full", "detect event", "speedup",
      "dip full", "dip incr", "speedup");
  for (auto& [name, nl] : circuits) {
    KernelRecord rec = RunCircuit(name, std::move(nl), cfg);
    std::printf(
        "%-6s | %8zu | %7zu | %10.4fs | %11.4fs | %7.1fx | %10.4fs | "
        "%10.4fs | %7.1fx\n",
        rec.name.c_str(), rec.gates, rec.faults, rec.detect_full_s,
        rec.detect_event_s, rec.DetectSpeedup(), rec.dip_full_s,
        rec.dip_incremental_s, rec.DipSpeedup());
    records.push_back(std::move(rec));
  }

  size_t mismatches = 0;
  for (const KernelRecord& r : records) {
    mismatches += r.detect_mismatches + r.dip_mismatches;
  }
  std::printf("cross-check: %zu mismatches %s\n", mismatches,
              mismatches == 0 ? "(all kernels bit-identical)"
                              : "(BUG: kernels diverge!)");

  const std::string json = ToJson(records, cfg.smoke);
  std::printf("%s\n", json.c_str());
  if (!json_path.empty()) {
    std::ofstream out(json_path);
    out << json << "\n";
    std::printf("perf record written to %s\n", json_path.c_str());
  }
  return mismatches == 0 ? 0 : 1;
}

}  // namespace
}  // namespace splitlock::bench

int main(int argc, char** argv) { return splitlock::bench::Main(argc, argv); }
