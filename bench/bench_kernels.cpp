// Kernel micro-benchmarks: old-vs-new hot paths, with a JSON perf record.
//
// Times the two kernels this library's campaigns hammer hardest, reference
// implementation against event-driven/incremental rewrite, across the
// ISCAS-85 and ITC'99 suites:
//
//  * DetectMask sweeps — FaultSimulator::DetectMaskFull (linear
//    re-simulation of the topological suffix) vs DetectMask (levelized
//    event-driven fanout-cone propagation).
//  * DIP-round constraint encoding — StructuralEncoder::EncodeNetlist under
//    constant inputs (full netlist walk, twice per round like the SAT
//    attack's two key hypotheses) vs IncrementalDipEncoder (one constant
//    simulation + two key-cone walks).
//  * Multi-word fault sweeps — W independent one-word event sweeps
//    (LoadRandomPatterns + DetectMask) vs one W-word sweep
//    (LoadPatternsWide + DetectMasks) over the same stimulus.
//  * Wide-DIP rounds — RunSatAttack at dips_per_round 1 vs 4 on the
//    EPIC-locked circuit; records wall time and the mean/max DipOracle
//    batch width (capped at sat_max_gates — larger circuits log a skip).
//  * Cold-vs-warm flow — full RunSecureFlow vs artifact deserialize +
//    replayed analysis (store/artifact_io), with round-trip and replay
//    equivalence cross-checks; plus serial-vs-parallel RunSta timing on
//    the resulting layout (bit-identical TimingReport asserted).
//
// Every timed pair is also cross-checked (masks / output literals must be
// bit-identical) and mismatch counts land in the record. The JSON record
// goes to stdout (and to $BENCH_KERNELS_JSON when set) so CI and future
// PRs can track the perf trajectory.
//
// Unlike the table harnesses this binary does not use google-benchmark, so
// it builds everywhere; `--smoke` (or BENCH_KERNELS_SMOKE=1) shrinks the
// workload to a compile-and-run sanity check for CI.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <optional>
#include <string>
#include <vector>

#include "atpg/fault.hpp"
#include "atpg/fault_sim.hpp"
#include "attack/sat_attack.hpp"
#include "circuits/suites.hpp"
#include "core/flow.hpp"
#include "lock/epic.hpp"
#include "obs/metrics.hpp"
#include "phys/timing.hpp"
#include "sat/solver.hpp"
#include "sat/tseitin.hpp"
#include "store/artifact_io.hpp"
#include "store/result_store.hpp"
#include "util/env.hpp"
#include "util/rng.hpp"
#include "util/stopwatch.hpp"

namespace splitlock::bench {
namespace {

// Monotonic seconds since first call; every consumer takes differences.
double Now() {
  static const Stopwatch epoch;
  return epoch.Seconds();
}

struct KernelRecord {
  std::string name;
  size_t gates = 0;
  size_t faults = 0;
  size_t words = 0;
  double detect_full_s = 0;
  double detect_event_s = 0;
  size_t detect_mismatches = 0;
  size_t dip_rounds = 0;
  size_t key_bits = 0;
  size_t cone_gates = 0;
  double dip_full_s = 0;
  double dip_incremental_s = 0;
  size_t dip_mismatches = 0;
  size_t wide_width = 0;
  double sweep_narrow_s = 0;  // wide_width separate one-word event sweeps
  double sweep_wide_s = 0;    // one wide_width-word DetectMasks sweep
  size_t wide_mismatches = 0;
  bool sat_ran = false;
  bool sat_single_finished = false;
  bool sat_multi_finished = false;
  double sat_single_s = 0;       // RunSatAttack, dips_per_round = 1
  double sat_multi_s = 0;        // RunSatAttack, dips_per_round = 4
  size_t sat_dips_single = 0;
  size_t sat_dips_multi = 0;
  double dip_batch_mean = 0;     // mean DipOracle batch of the multi run
  size_t dip_batch_max = 0;
  size_t sat_mismatches = 0;     // key-equivalence cross-check failures
  bool flow_ran = false;
  double flow_cold_s = 0;        // full RunSecureFlow
  double flow_warm_s = 0;        // artifact decode + replayed analysis
  size_t artifact_bytes = 0;     // EncodeFlowArtifact payload size
  size_t flow_mismatches = 0;    // round-trip / replay equivalence failures
  size_t sta_reps = 0;
  double sta_serial_s = 0;       // RunStaSerial over sta_reps
  double sta_parallel_s = 0;     // RunSta (levelized parallel) over sta_reps
  size_t sta_mismatches = 0;     // serial-vs-parallel TimingReport divergence

  double DetectSpeedup() const {
    return detect_event_s > 0 ? detect_full_s / detect_event_s : 0;
  }
  double DipSpeedup() const {
    return dip_incremental_s > 0 ? dip_full_s / dip_incremental_s : 0;
  }
  double WideSpeedup() const {
    return sweep_wide_s > 0 ? sweep_narrow_s / sweep_wide_s : 0;
  }
  double FlowWarmSpeedup() const {
    return flow_warm_s > 0 ? flow_cold_s / flow_warm_s : 0;
  }
  double StaSpeedup() const {
    return sta_parallel_s > 0 ? sta_serial_s / sta_parallel_s : 0;
  }
};

struct BenchConfig {
  bool smoke = false;
  size_t max_faults = 2048;
  size_t words = 4;
  size_t dip_rounds = 6;
  size_t key_bits = 32;
  size_t wide_width = atpg::kMaxSweepWords;
  size_t wide_groups = 4;       // timed wide-sweep repetitions
  size_t sat_max_gates = 4000;  // wide-DIP attack runs only below this
  size_t sat_max_dips = 64;
  // Cumulative master-solver conflict ceiling per attack. SAT-hard
  // instances (c6288's multiplier cones, notably) would otherwise run
  // unbounded; a capped attack reports finished=false identically in both
  // variants, and batch widths are still measured on the rounds that ran.
  uint64_t sat_conflict_budget = 300000;
  // Cold-vs-warm flow + serial-vs-parallel STA section. The secure flow is
  // the costliest kernel here, so it shares the attack section's gate cap.
  size_t flow_max_gates = 4000;
  size_t flow_key_bits = 32;
  size_t sta_reps = 5;
};

// The sweep shape mirrors ShardedFaultSweep's inner tile: per word, load
// stimulus once and run every fault. One stimulus stream per variant so
// both see identical patterns.
double TimeDetectSweep(atpg::FaultSimulator& sim,
                       const std::vector<atpg::Fault>& faults, size_t words,
                       uint64_t seed, bool full, uint64_t* acc) {
  Rng rng(seed);
  const double start = Now();
  for (size_t w = 0; w < words; ++w) {
    sim.LoadRandomPatterns(rng);
    for (const atpg::Fault& f : faults) {
      *acc ^= full ? sim.DetectMaskFull(f) : sim.DetectMask(f);
    }
  }
  return Now() - start;
}

// Old-vs-new multi-word sweep over the same stimulus: both variants draw
// `groups * width` words from a fresh Rng(seed) in matching order, so the
// per-word masks are comparable lane for lane.
double TimeWideSweep(atpg::FaultSimulator& sim,
                     const std::vector<atpg::Fault>& faults, size_t groups,
                     size_t width, uint64_t seed, bool wide, uint64_t* acc) {
  Rng rng(seed);
  const double start = Now();
  if (wide) {
    std::vector<uint64_t> masks(width);
    for (size_t g = 0; g < groups; ++g) {
      sim.LoadRandomPatternsWide(rng, width);
      for (const atpg::Fault& f : faults) {
        sim.DetectMasks(f, masks);
        for (const uint64_t m : masks) *acc ^= m;
      }
    }
  } else {
    for (size_t g = 0; g < groups; ++g) {
      for (size_t w = 0; w < width; ++w) {
        sim.LoadRandomPatterns(rng);
        for (const atpg::Fault& f : faults) *acc ^= sim.DetectMask(f);
      }
    }
  }
  return Now() - start;
}

KernelRecord RunCircuit(const std::string& name, Netlist nl,
                        const BenchConfig& cfg) {
  KernelRecord rec;
  rec.name = name;
  rec.gates = nl.NumLogicGates();
  rec.words = cfg.words;
  rec.dip_rounds = cfg.dip_rounds;

  // --- DetectMask: full resim vs event-driven ---
  std::vector<atpg::Fault> faults =
      atpg::CollapseFaults(nl, atpg::EnumerateStemFaults(nl));
  if (faults.size() > cfg.max_faults) faults.resize(cfg.max_faults);
  rec.faults = faults.size();

  const atpg::SimTopology topo(nl);
  atpg::FaultSimulator sim(nl, topo);
  uint64_t acc = 0;
  // Correctness cross-check outside the timed region.
  {
    Rng rng(99);
    sim.LoadRandomPatterns(rng);
    for (const atpg::Fault& f : faults) {
      if (sim.DetectMask(f) != sim.DetectMaskFull(f)) ++rec.detect_mismatches;
    }
  }
  rec.detect_full_s =
      TimeDetectSweep(sim, faults, cfg.words, 2026, /*full=*/true, &acc);
  rec.detect_event_s =
      TimeDetectSweep(sim, faults, cfg.words, 2026, /*full=*/false, &acc);

  // --- Multi-word sweep: W one-word sweeps vs one W-word sweep ---
  rec.wide_width = cfg.wide_width;
  {
    // Cross-check outside the timed region: per-word masks bit-identical.
    Rng wide_rng(77), narrow_rng(77);
    sim.LoadRandomPatternsWide(wide_rng, cfg.wide_width);
    std::vector<std::vector<uint64_t>> expected(
        faults.size(), std::vector<uint64_t>(cfg.wide_width));
    for (size_t w = 0; w < cfg.wide_width; ++w) {
      sim.LoadRandomPatterns(narrow_rng);
      for (size_t f = 0; f < faults.size(); ++f) {
        expected[f][w] = sim.DetectMask(faults[f]);
      }
    }
    std::vector<uint64_t> masks(cfg.wide_width);
    for (size_t f = 0; f < faults.size(); ++f) {
      sim.DetectMasks(faults[f], masks);
      if (masks != expected[f]) ++rec.wide_mismatches;
    }
  }
  rec.sweep_narrow_s = TimeWideSweep(sim, faults, cfg.wide_groups,
                                     cfg.wide_width, 2027, false, &acc);
  rec.sweep_wide_s = TimeWideSweep(sim, faults, cfg.wide_groups,
                                   cfg.wide_width, 2027, true, &acc);

  // --- DIP-round encoding: full EncodeNetlist vs incremental ---
  Rng lock_rng(4242);
  const size_t key_bits = std::min(cfg.key_bits, nl.NumLogicGates() / 2);
  const lock::EpicResult locked = lock::LockWithEpic(nl, key_bits, lock_rng);
  const Netlist& lk = locked.locked;
  rec.key_bits = lk.KeyInputs().size();
  const size_t num_pis = lk.inputs().size();

  sat::Solver full_solver, inc_solver;
  sat::StructuralEncoder full_enc(full_solver), inc_enc(inc_solver);
  std::vector<sat::Lit> fk1(rec.key_bits), fk2(rec.key_bits);
  std::vector<sat::Lit> ik1(rec.key_bits), ik2(rec.key_bits);
  for (auto& l : fk1) l = full_enc.FreshLit();
  for (auto& l : fk2) l = full_enc.FreshLit();
  for (auto& l : ik1) l = inc_enc.FreshLit();
  for (auto& l : ik2) l = inc_enc.FreshLit();
  sat::IncrementalDipEncoder dip_enc(inc_enc, lk);
  rec.cone_gates = dip_enc.ConeSize();

  std::vector<std::vector<uint8_t>> dips(cfg.dip_rounds);
  Rng dip_rng(7);
  for (auto& dip : dips) {
    dip.resize(num_pis);
    for (auto& b : dip) b = dip_rng.NextBool() ? 1 : 0;
  }

  std::vector<std::vector<sat::Lit>> full_outs, inc_outs;
  const double full_start = Now();
  for (const auto& dip : dips) {
    std::vector<sat::Lit> const_in(num_pis);
    for (size_t i = 0; i < num_pis; ++i) {
      const_in[i] = dip[i] ? full_enc.TrueLit() : full_enc.FalseLit();
    }
    full_outs.push_back(full_enc.EncodeNetlist(lk, const_in, fk1));
    full_outs.push_back(full_enc.EncodeNetlist(lk, const_in, fk2));
  }
  rec.dip_full_s = Now() - full_start;

  const double inc_start = Now();
  for (const auto& dip : dips) {
    dip_enc.SetDip(dip);
    inc_outs.push_back(dip_enc.Encode(ik1));
    inc_outs.push_back(dip_enc.Encode(ik2));
  }
  rec.dip_incremental_s = Now() - inc_start;

  for (size_t i = 0; i < full_outs.size(); ++i) {
    if (full_outs[i] != inc_outs[i]) ++rec.dip_mismatches;
  }

  // --- Wide-DIP rounds: dips_per_round 1 vs 4 against the same oracle ---
  if (nl.NumLogicGates() <= cfg.sat_max_gates) {
    rec.sat_ran = true;
    attack::SatAttackOptions single, multi;
    single.dips_per_round = 1;
    multi.dips_per_round = 4;
    single.max_dips = multi.max_dips = cfg.sat_max_dips;
    single.conflict_limit_per_solve = multi.conflict_limit_per_solve =
        cfg.sat_conflict_budget;
    double start = Now();
    const attack::SatAttackResult rs = attack::RunSatAttack(lk, nl, single);
    rec.sat_single_s = Now() - start;
    start = Now();
    const attack::SatAttackResult rm = attack::RunSatAttack(lk, nl, multi);
    rec.sat_multi_s = Now() - start;
    rec.sat_dips_single = rs.dips_used;
    rec.sat_dips_multi = rm.dips_used;
    rec.dip_batch_mean = rm.telemetry.MeanDipBatch();
    for (const attack::SatRoundTelemetry& round : rm.telemetry.rounds) {
      rec.dip_batch_max = std::max(rec.dip_batch_max, round.dip_batch);
    }
    rec.sat_single_finished = rs.finished;
    rec.sat_multi_finished = rm.finished;
    // Key-equivalence cross-check: every finished attack must have
    // recovered a functionally correct key (each verified independently
    // against the oracle). The finished flags may legitimately differ
    // under the shared conflict budget — wide rounds spend extra
    // conflicts on the intra-round re-solves.
    if (rs.finished && !(rs.key_found && rs.functionally_correct)) {
      ++rec.sat_mismatches;
    }
    if (rm.finished && !(rm.key_found && rm.functionally_correct)) {
      ++rec.sat_mismatches;
    }
  } else {
    std::printf("%s: wide-DIP attack skipped (%zu gates > cap %zu)\n",
                name.c_str(), nl.NumLogicGates(), cfg.sat_max_gates);
  }

  // --- Cold-vs-warm flow (artifact tier) + serial-vs-parallel STA ---
  if (nl.NumLogicGates() <= cfg.flow_max_gates) {
    try {
      core::FlowOptions fopt;
      // Small ISCAS members cannot pay for 32 restore comparators; scale
      // the key down and relax the gates that exist to reject tiny runs.
      fopt.key_bits = std::max<size_t>(
          4, std::min(cfg.flow_key_bits, nl.NumLogicGates() / 8));
      fopt.seed = 2019;
      fopt.lock.verify_lec = false;
      fopt.lock.require_area_gain = false;

      double start = Now();
      const core::FlowResult cold = core::RunSecureFlow(nl, fopt);
      rec.flow_cold_s = Now() - start;
      rec.flow_ran = true;

      const std::string payload = store::EncodeFlowArtifact(
          cold.lock, *cold.physical.netlist, *cold.physical.layout,
          cold.physical.lift);
      rec.artifact_bytes = payload.size();

      // Warm path: deserialize + replay the analysis tail.
      start = Now();
      std::optional<store::FlowArtifact> art =
          store::DecodeFlowArtifact(payload);
      core::FlowResult warm;
      if (art) {
        warm = core::ReplayFlowFromArtifacts(
            std::move(art->lock), std::move(art->netlist),
            std::move(art->layout), art->lift, fopt);
      }
      rec.flow_warm_s = Now() - start;

      // Equivalence cross-checks, outside the timed regions: the replayed
      // flow must be indistinguishable from the computed one.
      if (!art) {
        ++rec.flow_mismatches;
      } else {
        const std::string reencoded = store::EncodeFlowArtifact(
            warm.lock, *warm.physical.netlist, *warm.physical.layout,
            warm.physical.lift);
        if (reencoded != payload) ++rec.flow_mismatches;
        if (warm.physical.timing.net_arrival_ps !=
            cold.physical.timing.net_arrival_ps) {
          ++rec.flow_mismatches;
        }
        if (warm.physical.cost.die_area_um2 !=
                cold.physical.cost.die_area_um2 ||
            warm.physical.cost.power_uw != cold.physical.cost.power_uw ||
            warm.physical.cost.critical_path_ps !=
                cold.physical.cost.critical_path_ps) {
          ++rec.flow_mismatches;
        }
        if (phys::LayoutFingerprint(*warm.physical.layout) !=
            phys::LayoutFingerprint(*cold.physical.layout)) {
          ++rec.flow_mismatches;
        }
        if (warm.feol.sink_stubs.size() != cold.feol.sink_stubs.size()) {
          ++rec.flow_mismatches;
        }
      }

      // Serial vs parallel STA on the cold layout, cross-checked first.
      rec.sta_reps = cfg.sta_reps;
      const phys::TimingReport serial_ref =
          phys::RunStaSerial(*cold.physical.layout);
      const phys::TimingReport parallel_ref =
          phys::RunSta(*cold.physical.layout);
      if (serial_ref.net_arrival_ps != parallel_ref.net_arrival_ps ||
          serial_ref.critical_path_ps != parallel_ref.critical_path_ps) {
        ++rec.sta_mismatches;
      }
      double sink = 0.0;
      start = Now();
      for (size_t i = 0; i < cfg.sta_reps; ++i) {
        sink += phys::RunStaSerial(*cold.physical.layout).critical_path_ps;
      }
      rec.sta_serial_s = Now() - start;
      start = Now();
      for (size_t i = 0; i < cfg.sta_reps; ++i) {
        sink += phys::RunSta(*cold.physical.layout).critical_path_ps;
      }
      rec.sta_parallel_s = Now() - start;
      if (sink < 0) std::printf("(unlikely)\n");  // keep sink live
    } catch (const std::exception& e) {
      std::printf("%s: flow section skipped (%s)\n", name.c_str(), e.what());
    }
  } else {
    std::printf("%s: flow section skipped (%zu gates > cap %zu)\n",
                name.c_str(), nl.NumLogicGates(), cfg.flow_max_gates);
  }

  if (acc == 0x5a5a5a5a5a5a5a5aULL) std::printf("(unlikely)\n");  // keep acc
  return rec;
}

std::string ToJson(const std::vector<KernelRecord>& records, bool smoke) {
  char buf[2048];
  std::string json = "{\"bench\":\"bench_kernels\",\"schema_version\":" +
                     std::to_string(store::kResultSchemaVersion) + ",";
  std::snprintf(buf, sizeof(buf), "\"smoke\":%s,\"repro_scale\":%.3f,",
                smoke ? "true" : "false", ReproScale());
  json += buf;
  json += "\"circuits\":[";
  for (size_t i = 0; i < records.size(); ++i) {
    const KernelRecord& r = records[i];
    std::snprintf(
        buf, sizeof(buf),
        "%s{\"name\":\"%s\",\"gates\":%zu,\"faults\":%zu,\"words\":%zu,"
        "\"detect_full_s\":%.6f,\"detect_event_s\":%.6f,"
        "\"detect_speedup\":%.2f,\"detect_mismatches\":%zu,"
        "\"dip_rounds\":%zu,\"key_bits\":%zu,\"cone_gates\":%zu,"
        "\"dip_full_s\":%.6f,\"dip_incremental_s\":%.6f,"
        "\"dip_speedup\":%.2f,\"dip_mismatches\":%zu,"
        "\"wide_width\":%zu,\"sweep_narrow_s\":%.6f,\"sweep_wide_s\":%.6f,"
        "\"wide_speedup\":%.2f,\"wide_mismatches\":%zu,"
        "\"sat_ran\":%s,\"sat_single_finished\":%s,"
        "\"sat_multi_finished\":%s,"
        "\"sat_single_s\":%.6f,\"sat_multi_s\":%.6f,"
        "\"sat_dips_single\":%zu,\"sat_dips_multi\":%zu,"
        "\"dip_batch_mean\":%.3f,\"dip_batch_max\":%zu,"
        "\"sat_mismatches\":%zu,"
        "\"flow_ran\":%s,\"flow_cold_s\":%.6f,\"flow_warm_s\":%.6f,"
        "\"flow_warm_speedup\":%.2f,\"artifact_bytes\":%zu,"
        "\"flow_mismatches\":%zu,"
        "\"sta_reps\":%zu,\"sta_serial_s\":%.6f,\"sta_parallel_s\":%.6f,"
        "\"sta_speedup\":%.2f,\"sta_mismatches\":%zu}",
        i == 0 ? "" : ",", r.name.c_str(), r.gates, r.faults, r.words,
        r.detect_full_s, r.detect_event_s, r.DetectSpeedup(),
        r.detect_mismatches, r.dip_rounds, r.key_bits, r.cone_gates,
        r.dip_full_s, r.dip_incremental_s, r.DipSpeedup(), r.dip_mismatches,
        r.wide_width, r.sweep_narrow_s, r.sweep_wide_s, r.WideSpeedup(),
        r.wide_mismatches, r.sat_ran ? "true" : "false",
        r.sat_single_finished ? "true" : "false",
        r.sat_multi_finished ? "true" : "false", r.sat_single_s,
        r.sat_multi_s, r.sat_dips_single, r.sat_dips_multi, r.dip_batch_mean,
        r.dip_batch_max, r.sat_mismatches, r.flow_ran ? "true" : "false",
        r.flow_cold_s, r.flow_warm_s, r.FlowWarmSpeedup(), r.artifact_bytes,
        r.flow_mismatches, r.sta_reps, r.sta_serial_s, r.sta_parallel_s,
        r.StaSpeedup(), r.sta_mismatches);
    json += buf;
  }
  json += "],\"metrics\":";
  // Process-wide metrics snapshot (counts + histograms only: times are
  // wall-clock and would churn the record diff run to run).
  json += obs::Registry::Instance().Snapshot().CountsJson();
  json += '}';
  return json;
}

int Main(int argc, char** argv) {
  BenchConfig cfg;
  std::string json_path;
  if (const char* env = std::getenv("BENCH_KERNELS_SMOKE")) {
    cfg.smoke = std::strcmp(env, "0") != 0;
  }
  if (const char* env = std::getenv("BENCH_KERNELS_JSON")) json_path = env;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) cfg.smoke = true;
    if (std::strncmp(argv[i], "--json=", 7) == 0) json_path = argv[i] + 7;
  }
  if (cfg.smoke) {
    cfg.max_faults = 256;
    cfg.words = 1;
    cfg.dip_rounds = 2;
    cfg.key_bits = 16;
    cfg.wide_groups = 1;
    cfg.flow_key_bits = 8;
    cfg.sta_reps = 2;
  }

  std::vector<KernelRecord> records;
  const double itc_scale = cfg.smoke ? 0.05 : ReproScale();
  std::vector<std::pair<std::string, Netlist>> circuits;
  for (const auto& info : circuits::IscasSuite()) {
    if (cfg.smoke && info.name != "c432" && info.name != "c880") continue;
    circuits.emplace_back(info.name, circuits::MakeIscas(info.name));
  }
  for (const auto& info : circuits::Itc99Suite()) {
    if (cfg.smoke && info.name != "b14") continue;
    circuits.emplace_back(info.name, circuits::MakeItc99(info.name, itc_scale));
  }

  std::printf(
      "%-6s | %8s | %7s | %12s | %13s | %8s | %12s | %12s | %8s | %8s | "
      "%6s\n",
      "name", "gates", "faults", "detect full", "detect event", "speedup",
      "dip full", "dip incr", "speedup", "W8 sweep", "batchw");
  for (auto& [name, nl] : circuits) {
    KernelRecord rec = RunCircuit(name, std::move(nl), cfg);
    std::printf(
        "%-6s | %8zu | %7zu | %10.4fs | %11.4fs | %7.1fx | %10.4fs | "
        "%10.4fs | %7.1fx | %7.1fx | %6.2f\n",
        rec.name.c_str(), rec.gates, rec.faults, rec.detect_full_s,
        rec.detect_event_s, rec.DetectSpeedup(), rec.dip_full_s,
        rec.dip_incremental_s, rec.DipSpeedup(), rec.WideSpeedup(),
        rec.dip_batch_mean);
    records.push_back(std::move(rec));
  }

  std::printf("\n%-6s | %10s | %10s | %8s | %10s | %10s | %10s | %8s\n",
              "name", "cold flow", "warm flow", "speedup", "blob (KB)",
              "sta serial", "sta par", "speedup");
  for (const KernelRecord& r : records) {
    if (!r.flow_ran) continue;
    std::printf(
        "%-6s | %9.3fs | %9.3fs | %7.1fx | %10.1f | %9.4fs | %9.4fs | "
        "%7.1fx\n",
        r.name.c_str(), r.flow_cold_s, r.flow_warm_s, r.FlowWarmSpeedup(),
        r.artifact_bytes / 1024.0, r.sta_serial_s, r.sta_parallel_s,
        r.StaSpeedup());
  }

  size_t mismatches = 0;
  for (const KernelRecord& r : records) {
    mismatches += r.detect_mismatches + r.dip_mismatches +
                  r.wide_mismatches + r.sat_mismatches +
                  r.flow_mismatches + r.sta_mismatches;
  }
  std::printf("cross-check: %zu mismatches %s\n", mismatches,
              mismatches == 0 ? "(all kernels bit-identical)"
                              : "(BUG: kernels diverge!)");

  const std::string json = ToJson(records, cfg.smoke);
  std::printf("%s\n", json.c_str());
  if (!json_path.empty()) {
    std::ofstream out(json_path);
    out << json << "\n";
    std::printf("perf record written to %s\n", json_path.c_str());
  }
  return mismatches == 0 ? 0 : 1;
}

}  // namespace
}  // namespace splitlock::bench

int main(int argc, char** argv) { return splitlock::bench::Main(argc, argv); }
