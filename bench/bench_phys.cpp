// Physical-design kernel benchmark: sequential vs parallel place & route,
// with a JSON perf record.
//
// bench_runtime showed the annealing placer and the router as the dominant
// *sequential* cost of a campaign job once simulation, SAT and campaign
// orchestration went parallel (PRs 1-3). This harness times the phys layer
// both ways across the suites:
//
//  * PlaceDesign — sequential reference annealer vs speculative batched
//    moves on the exec pool (PlacerOptions.parallel_moves).
//  * RouteDesign + LiftKeyNets — the per-net-stream router at one thread
//    vs the full pool width.
//
// Every timed pair is cross-checked: the speculative placer must produce a
// layout bit-identical to the sequential reference (same contract as
// DetectMask vs DetectMaskFull in bench_kernels), and the routed layouts
// must be bit-identical across widths. Mismatch counts land in the record
// and fail the run.
//
// Like bench_kernels this binary avoids google-benchmark so it builds
// everywhere; `--smoke` (or BENCH_PHYS_SMOKE=1) shrinks the workload for
// CI, and the JSON record goes to stdout (and --json=PATH / $BENCH_PHYS_JSON).
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "circuits/suites.hpp"
#include "exec/thread_pool.hpp"
#include "lock/atpg_lock.hpp"
#include "lock/key.hpp"
#include "obs/metrics.hpp"
#include "phys/placer.hpp"
#include "phys/router.hpp"
#include "store/result_store.hpp"
#include "util/env.hpp"
#include "util/stopwatch.hpp"

namespace splitlock::bench {
namespace {

// Monotonic seconds since first call; every consumer takes differences.
double Now() {
  static const Stopwatch epoch;
  return epoch.Seconds();
}

struct PhysRecord {
  std::string name;
  size_t gates = 0;
  size_t nets = 0;
  size_t key_bits = 0;
  double place_seq_s = 0;
  double place_par_s = 0;
  double route_1t_s = 0;
  double route_nt_s = 0;
  double hpwl_um = 0;
  size_t place_mismatches = 0;  // parallel layout != sequential reference
  size_t route_mismatches = 0;  // routed layout diverged across widths

  double PlaceSpeedup() const {
    return place_par_s > 0 ? place_seq_s / place_par_s : 0;
  }
  double RouteSpeedup() const {
    return route_nt_s > 0 ? route_1t_s / route_nt_s : 0;
  }
  // The acceptance metric: place+route wall-clock, sequential vs parallel.
  double PlaceRouteSpeedup() const {
    const double par = place_par_s + route_nt_s;
    return par > 0 ? (place_seq_s + route_1t_s) / par : 0;
  }
};

struct BenchConfig {
  bool smoke = false;
  int moves_per_cell = 30;
  size_t key_bits = 32;
};

// One routed flow at the current pool width on a fresh netlist copy (the
// lift pass writes upsized drives back into the netlist).
double TimedRouteAndLift(const phys::Layout& placed, const Netlist& nl,
                         uint64_t seed, phys::Layout* out, Netlist* scratch) {
  *scratch = nl;
  *out = placed;
  out->netlist = scratch;
  phys::RouterOptions ropts;
  ropts.seed = seed;
  const double start = Now();
  phys::RouteDesign(*out, ropts);
  phys::LiftKeyNets(*out, *scratch, 5, seed);
  return Now() - start;
}

PhysRecord RunCircuit(const std::string& name, const Netlist& original,
                      const BenchConfig& cfg) {
  PhysRecord rec;
  rec.name = name;

  lock::AtpgLockOptions lopts;
  lopts.key_bits = cfg.key_bits;
  lopts.seed = 2026;
  lopts.verify_lec = false;
  const lock::AtpgLockResult locked = lock::LockWithAtpg(original, lopts);
  const Netlist nl = lock::RealizeKeyAsTies(locked.locked, locked.key);
  rec.gates = nl.NumLogicGates();
  rec.nets = nl.NumNets();
  rec.key_bits = locked.key.size();

  phys::PlacerOptions popts;
  popts.seed = 2026;
  popts.moves_per_cell = cfg.moves_per_cell;

  // --- Placement: sequential reference vs speculative parallel ---
  popts.parallel_moves = false;
  double start = Now();
  const phys::Layout seq_layout =
      phys::PlaceDesign(nl, phys::Tech::Nangate45Like(), popts);
  rec.place_seq_s = Now() - start;

  popts.parallel_moves = true;
  start = Now();
  const phys::Layout par_layout =
      phys::PlaceDesign(nl, phys::Tech::Nangate45Like(), popts);
  rec.place_par_s = Now() - start;

  if (phys::LayoutFingerprint(seq_layout) !=
      phys::LayoutFingerprint(par_layout)) {
    ++rec.place_mismatches;
  }
  rec.hpwl_um = par_layout.TotalHpwl();

  // --- Routing + lift: one thread vs pool width ---
  const size_t width = exec::ThreadPool::DefaultThreadCount();
  phys::Layout routed_1t, routed_nt;
  Netlist scratch_1t, scratch_nt;
  exec::ThreadPool::SetDefaultThreadCount(1);
  rec.route_1t_s =
      TimedRouteAndLift(par_layout, nl, 2026, &routed_1t, &scratch_1t);
  exec::ThreadPool::SetDefaultThreadCount(width);
  rec.route_nt_s =
      TimedRouteAndLift(par_layout, nl, 2026, &routed_nt, &scratch_nt);
  exec::ThreadPool::SetDefaultThreadCount(0);
  if (phys::LayoutFingerprint(routed_1t) !=
      phys::LayoutFingerprint(routed_nt)) {
    ++rec.route_mismatches;
  }
  return rec;
}

std::string ToJson(const std::vector<PhysRecord>& records, bool smoke,
                   size_t threads) {
  char buf[512];
  std::string json = "{\"bench\":\"bench_phys\",\"schema_version\":" +
                     std::to_string(store::kResultSchemaVersion) + ",";
  std::snprintf(buf, sizeof(buf),
                "\"smoke\":%s,\"threads\":%zu,\"repro_scale\":%.3f,",
                smoke ? "true" : "false", threads, ReproScale());
  json += buf;
  json += "\"circuits\":[";
  for (size_t i = 0; i < records.size(); ++i) {
    const PhysRecord& r = records[i];
    std::snprintf(
        buf, sizeof(buf),
        "%s{\"name\":\"%s\",\"gates\":%zu,\"nets\":%zu,\"key_bits\":%zu,"
        "\"place_seq_s\":%.6f,\"place_par_s\":%.6f,\"place_speedup\":%.2f,"
        "\"route_1t_s\":%.6f,\"route_nt_s\":%.6f,\"route_speedup\":%.2f,"
        "\"place_route_speedup\":%.2f,\"hpwl_um\":%.1f,"
        "\"place_mismatches\":%zu,\"route_mismatches\":%zu}",
        i == 0 ? "" : ",", r.name.c_str(), r.gates, r.nets, r.key_bits,
        r.place_seq_s, r.place_par_s, r.PlaceSpeedup(), r.route_1t_s,
        r.route_nt_s, r.RouteSpeedup(), r.PlaceRouteSpeedup(), r.hpwl_um,
        r.place_mismatches, r.route_mismatches);
    json += buf;
  }
  json += "],\"metrics\":";
  // Process-wide metrics snapshot (counts + histograms only: times are
  // wall-clock and would churn the record diff run to run).
  json += obs::Registry::Instance().Snapshot().CountsJson();
  json += '}';
  return json;
}

int Main(int argc, char** argv) {
  BenchConfig cfg;
  std::string json_path;
  if (const char* env = std::getenv("BENCH_PHYS_SMOKE")) {
    cfg.smoke = std::strcmp(env, "0") != 0;
  }
  if (const char* env = std::getenv("BENCH_PHYS_JSON")) json_path = env;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) cfg.smoke = true;
    if (std::strncmp(argv[i], "--json=", 7) == 0) json_path = argv[i] + 7;
  }
  if (cfg.smoke) {
    cfg.moves_per_cell = 6;
    cfg.key_bits = 16;
  }

  const double itc_scale = cfg.smoke ? 0.05 : ReproScale();
  std::vector<std::pair<std::string, Netlist>> circuits;
  for (const auto& info : circuits::IscasSuite()) {
    if (cfg.smoke && info.name != "c432" && info.name != "c880") continue;
    circuits.emplace_back(info.name, circuits::MakeIscas(info.name));
  }
  for (const auto& info : circuits::Itc99Suite()) {
    if (cfg.smoke && info.name != "b14") continue;
    circuits.emplace_back(info.name, circuits::MakeItc99(info.name, itc_scale));
  }

  const size_t width = exec::ThreadPool::DefaultThreadCount();
  std::printf("pool width: %zu threads\n", width);
  std::printf("%-6s | %8s | %11s | %11s | %8s | %11s | %11s | %8s | %8s\n",
              "name", "gates", "place seq", "place par", "speedup",
              "route 1t", "route Nt", "speedup", "p+r");
  std::vector<PhysRecord> records;
  for (const auto& [name, nl] : circuits) {
    PhysRecord rec = RunCircuit(name, nl, cfg);
    std::printf(
        "%-6s | %8zu | %9.4fs | %9.4fs | %7.2fx | %9.4fs | %9.4fs | "
        "%7.2fx | %7.2fx\n",
        rec.name.c_str(), rec.gates, rec.place_seq_s, rec.place_par_s,
        rec.PlaceSpeedup(), rec.route_1t_s, rec.route_nt_s,
        rec.RouteSpeedup(), rec.PlaceRouteSpeedup());
    records.push_back(std::move(rec));
  }

  size_t mismatches = 0;
  for (const PhysRecord& r : records) {
    mismatches += r.place_mismatches + r.route_mismatches;
  }
  std::printf("cross-check: %zu mismatches %s\n", mismatches,
              mismatches == 0
                  ? "(speculative placer and router bit-identical)"
                  : "(BUG: parallel phys diverges!)");

  const std::string json = ToJson(records, cfg.smoke, width);
  std::printf("%s\n", json.c_str());
  if (!json_path.empty()) {
    std::ofstream out(json_path);
    out << json << "\n";
    std::printf("perf record written to %s\n", json_path.c_str());
  }
  return mismatches == 0 ? 0 : 1;
}

}  // namespace
}  // namespace splitlock::bench

int main(int argc, char** argv) { return splitlock::bench::Main(argc, argv); }
