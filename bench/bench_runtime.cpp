// Sec. IV runtime discussion: per-stage flow runtimes across the suite.
//
// The paper reports 5-18h per ITC'99 benchmark dominated by the DC
// re-synthesis runs (their flow is parallel over partitions but bounded by
// license count). This harness reports the equivalent breakdown for this
// library's flow: lock (synthesis stage) vs physical design (layout stage),
// at the configured REPRO_SCALE — plus the exec-layer scaling check: a
// suite-level random-pattern fault-coverage sweep timed single-threaded and
// at full pool width, with the determinism contract asserted (identical
// coverage at every width).
#include "atpg/fault.hpp"
#include "atpg/fault_sim.hpp"
#include "exec/thread_pool.hpp"
#include "util/stopwatch.hpp"

#include "bench_common.hpp"

namespace splitlock::bench {
namespace {

void PrintTable() {
  PrintHeader("Flow runtime per benchmark (seconds)");
  std::printf("%-6s | %10s | %9s | %9s | %9s | %9s | %9s | %9s | %9s\n", "",
              "gates", "lock (s)", "place (s)", "route (s)", "lift (s)",
              "sta (s)", "pwr (s)", "total (s)");
  PrintRule(104);
  double total = 0.0;
  for (const auto& info : circuits::Itc99Suite()) {
    // Records only: a warm persistent store (SPLITLOCK_STORE) serves the
    // recorded stage times of the run that produced the entry.
    const store::CampaignRecord r = RunItcRecordCached(info.name, 4);
    const double row = r.lock_s + r.place_s + r.route_s + r.lift_s + r.sta_s +
                       r.analyze_s;
    std::printf("%-6s | %10llu | %9.2f | %9.2f | %9.2f | %9.2f | %9.2f | "
                "%9.2f | %9.2f\n",
                info.name.c_str(),
                static_cast<unsigned long long>(r.logic_gates), r.lock_s,
                r.place_s, r.route_s, r.lift_s, r.sta_s, r.analyze_s, row);
    total += row;
  }
  PrintRule(104);
  std::printf("suite total: %.1f s (paper: 5-18 h per benchmark on a\n"
              "128-core Xeon, dominated by Design Compiler re-synthesis)\n",
              total);
}

void RunRow(benchmark::State& state, const std::string& name) {
  for (auto _ : state) {
    const store::CampaignRecord r = RunItcRecordCached(name, 4);
    state.counters["lock_s"] = r.lock_s;
    state.counters["place_s"] = r.place_s;
    state.counters["route_s"] = r.route_s;
    state.counters["lift_s"] = r.lift_s;
    state.counters["sta_s"] = r.sta_s;
    state.counters["analyze_s"] = r.analyze_s;
  }
}

// Suite-level fault-coverage sweep at a given pool width over prebuilt
// (netlist, fault list) inputs; only the sweep itself is timed, so the
// reported speedup is the exec layer's, not circuit construction's.
struct FaultSweepInput {
  Netlist netlist;
  std::vector<atpg::Fault> faults;
};

double TimedSuiteFaultSweep(const std::vector<FaultSweepInput>& inputs,
                            size_t threads, uint64_t patterns,
                            std::vector<double>* coverages) {
  using exec::ThreadPool;
  ThreadPool::SetDefaultThreadCount(threads);
  const Stopwatch timer;
  coverages->clear();
  for (const FaultSweepInput& input : inputs) {
    const atpg::CoverageResult cov =
        atpg::FaultCoverage(input.netlist, input.faults, patterns, 2019);
    coverages->push_back(cov.CoveragePercent());
  }
  const double elapsed = timer.Seconds();
  ThreadPool::SetDefaultThreadCount(0);  // restore the configured default
  return elapsed;
}

void PrintParallelSweepTable() {
  const size_t width = exec::ThreadPool::DefaultThreadCount();
  const uint64_t patterns = 16384;
  std::vector<FaultSweepInput> inputs;
  for (const auto& info : circuits::Itc99Suite()) {
    FaultSweepInput input{circuits::MakeItc99(info.name, ReproScale()), {}};
    input.faults = atpg::CollapseFaults(
        input.netlist, atpg::EnumerateStemFaults(input.netlist));
    inputs.push_back(std::move(input));
  }
  std::vector<double> cov_serial, cov_parallel;
  const double serial_s =
      TimedSuiteFaultSweep(inputs, 1, patterns, &cov_serial);
  const double parallel_s =
      TimedSuiteFaultSweep(inputs, width, patterns, &cov_parallel);
  PrintHeader("Suite fault-coverage sweep: exec-layer scaling");
  std::printf("1 thread: %.2f s   %zu threads: %.2f s   speedup: %.2fx\n",
              serial_s, width, parallel_s,
              parallel_s > 0 ? serial_s / parallel_s : 0.0);
  std::printf("determinism: coverages %s across widths\n",
              cov_serial == cov_parallel ? "IDENTICAL" : "DIVERGED (BUG!)");
}

}  // namespace
}  // namespace splitlock::bench

int main(int argc, char** argv) {
  using namespace splitlock::bench;
  // NO concurrent suite warm-up here, deliberately: this harness reports
  // per-benchmark wall-clock stage times, which running the flows
  // side-by-side would inflate with scheduler contention. Rows fill the
  // cache sequentially via RunItcRecordCached (store-served when warm).
  for (const auto& info : splitlock::circuits::Itc99Suite()) {
    benchmark::RegisterBenchmark(
        ("Runtime/" + info.name).c_str(),
        [name = info.name](benchmark::State& st) { RunRow(st, name); })
        ->Iterations(1)
        ->Unit(benchmark::kSecond);
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  PrintTable();
  PrintParallelSweepTable();
  return 0;
}
