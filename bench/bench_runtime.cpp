// Sec. IV runtime discussion: per-stage flow runtimes across the suite.
//
// The paper reports 5-18h per ITC'99 benchmark dominated by the DC
// re-synthesis runs (their flow is parallel over partitions but bounded by
// license count). This harness reports the equivalent breakdown for this
// library's flow: lock (synthesis stage) vs physical design (layout stage),
// at the configured REPRO_SCALE.
#include "bench_common.hpp"

namespace splitlock::bench {
namespace {

void PrintTable() {
  PrintHeader("Flow runtime per benchmark (seconds)");
  std::printf("%-6s | %10s | %12s | %14s | %12s\n", "", "gates",
              "lock (s)", "layout+split (s)", "total (s)");
  PrintRule(68);
  double total = 0.0;
  for (const auto& info : circuits::Itc99Suite()) {
    const FlowScore& r = RunItcFlowCached(info.name, 4);
    const double lock_s = r.flow.times.lock_s;
    const double layout_s = r.flow.times.place_s;
    std::printf("%-6s | %10zu | %12.2f | %14.2f | %12.2f\n",
                info.name.c_str(),
                r.flow.physical.netlist->NumLogicGates(), lock_s, layout_s,
                lock_s + layout_s);
    total += lock_s + layout_s;
  }
  PrintRule(68);
  std::printf("suite total: %.1f s (paper: 5-18 h per benchmark on a\n"
              "128-core Xeon, dominated by Design Compiler re-synthesis)\n",
              total);
}

void RunRow(benchmark::State& state, const std::string& name) {
  for (auto _ : state) {
    const FlowScore& r = RunItcFlowCached(name, 4);
    state.counters["lock_s"] = r.flow.times.lock_s;
    state.counters["layout_s"] = r.flow.times.place_s;
  }
}

}  // namespace
}  // namespace splitlock::bench

int main(int argc, char** argv) {
  using namespace splitlock::bench;
  for (const auto& info : splitlock::circuits::Itc99Suite()) {
    benchmark::RegisterBenchmark(
        ("Runtime/" + info.name).c_str(),
        [name = info.name](benchmark::State& st) { RunRow(st, name); })
        ->Iterations(1)
        ->Unit(benchmark::kSecond);
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  PrintTable();
  return 0;
}
