// Table I: CCR (%) for ITC'99 benchmarks when split at M4 and M6.
//
// Paper reference (Sengupta et al., DATE'19, Table I): key-net logical CCR
// ~50% (random guessing), key-net physical CCR ~0%, regular-net CCR rising
// with the split layer (15% at M4 -> 32% at M6 on average). The attack is
// the customized proximity attack with key-gate post-processing.
#include "bench_common.hpp"

namespace splitlock::bench {
namespace {

struct PaperRow {
  double key_logical;
  double key_physical;
  double regular;
};

// Published Table I values, [benchmark][split] with split 0 = M4, 1 = M6.
// -1 marks the b17/M4 attack time-out ("NA").
const std::map<std::string, std::array<PaperRow, 2>> kPaper = {
    {"b14", {{{52, 1, 17}, {54, 2, 47}}}},
    {"b15", {{{49, 0, 15}, {49, 0, 25}}}},
    {"b17", {{{-1, -1, -1}, {51, 1, 21}}}},
    {"b20", {{{54, 0, 17}, {60, 0, 36}}}},
    {"b21", {{{50, 0, 14}, {54, 0, 36}}}},
    {"b22", {{{52, 0, 14}, {55, 0, 25}}}},
};

void RunRow(benchmark::State& state, const std::string& name,
            int split_layer) {
  for (auto _ : state) {
    const store::CampaignRecord r = RunItcRecordCached(name, split_layer);
    state.counters["key_logical_ccr"] = r.key_logical_ccr_percent;
    state.counters["key_physical_ccr"] = r.key_physical_ccr_percent;
    state.counters["regular_ccr"] = r.regular_ccr_percent;
    state.counters["broken_conns"] = static_cast<double>(r.broken_connections);
  }
}

void PrintTable() {
  PrintHeader(
      "Table I - CCR (%) for ITC'99 when split at M4 and M6; measured "
      "(paper)");
  std::printf("%-6s | %-42s | %-42s\n", "", "M4: key logical / key physical "
              "/ regular", "M6: key logical / key physical / regular");
  PrintRule(98);
  double sums[6] = {0, 0, 0, 0, 0, 0};
  int count = 0;
  for (const auto& info : circuits::Itc99Suite()) {
    const auto& paper = kPaper.at(info.name);
    std::string cells[2][3];
    double measured[6];
    for (int s = 0; s < 2; ++s) {
      const store::CampaignRecord r =
          RunItcRecordCached(info.name, s == 0 ? 4 : 6);
      measured[s * 3 + 0] = r.key_logical_ccr_percent;
      measured[s * 3 + 1] = r.key_physical_ccr_percent;
      measured[s * 3 + 2] = r.regular_ccr_percent;
      cells[s][0] = Cell(measured[s * 3 + 0], paper[s].key_logical);
      cells[s][1] = Cell(measured[s * 3 + 1], paper[s].key_physical);
      cells[s][2] = Cell(measured[s * 3 + 2], paper[s].regular);
    }
    std::printf("%-6s | %s %s %s | %s %s %s\n", info.name.c_str(),
                cells[0][0].c_str(), cells[0][1].c_str(), cells[0][2].c_str(),
                cells[1][0].c_str(), cells[1][1].c_str(),
                cells[1][2].c_str());
    for (int i = 0; i < 6; ++i) sums[i] += measured[i];
    ++count;
  }
  PrintRule(98);
  std::printf("%-6s | %s %s %s | %s %s %s\n", "avg",
              Cell(sums[0] / count, 51).c_str(),
              Cell(sums[1] / count, 0).c_str(),
              Cell(sums[2] / count, 15).c_str(),
              Cell(sums[3] / count, 54).c_str(),
              Cell(sums[4] / count, 1).c_str(),
              Cell(sums[5] / count, 32).c_str());
  std::printf(
      "\nexpected shape: key logical CCR ~50%% (random guessing), key\n"
      "physical CCR ~0%%, regular CCR higher at M6 than at M4.\n");
}

}  // namespace
}  // namespace splitlock::bench

int main(int argc, char** argv) {
  using namespace splitlock::bench;
  // Every row of both split layers is needed: warm the cache as two
  // concurrent suite campaigns.
  WarmItcSuiteCache(4);
  WarmItcSuiteCache(6);
  for (const auto& info : splitlock::circuits::Itc99Suite()) {
    for (int split : {4, 6}) {
      benchmark::RegisterBenchmark(
          ("Table1/" + info.name + "/M" + std::to_string(split)).c_str(),
          [name = info.name, split](benchmark::State& st) {
            RunRow(st, name, split);
          })
          ->Iterations(1)
          ->Unit(benchmark::kSecond);
    }
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  PrintTable();
  return 0;
}
