// Table II: HD and OER (%) for ITC'99 benchmarks when split at M4/M6.
//
// Paper reference: HD ~53% at M4 dropping to ~25% at M6 (an attacker
// recovers more of the design from the FEOL at a higher split), while the
// OER stays at 100% everywhere — no recovered netlist is ever functionally
// correct. The paper used 1M simulation runs; REPRO_PATTERNS controls the
// pattern count here.
#include "bench_common.hpp"

namespace splitlock::bench {
namespace {

struct PaperRow {
  double hd;
  double oer;
};

const std::map<std::string, std::array<PaperRow, 2>> kPaper = {
    {"b14", {{{46, 100}, {25, 100}}}},
    {"b15", {{{52, 100}, {20, 100}}}},
    {"b17", {{{-1, -1}, {31, 100}}}},
    {"b20", {{{57, 100}, {19, 100}}}},
    {"b21", {{{56, 100}, {26, 100}}}},
    {"b22", {{{57, 100}, {27, 100}}}},
};

void RunRow(benchmark::State& state, const std::string& name,
            int split_layer) {
  for (auto _ : state) {
    const store::CampaignRecord r = RunItcRecordCached(name, split_layer);
    state.counters["hd_percent"] = r.hd_percent;
    state.counters["oer_percent"] = r.oer_percent;
    state.counters["patterns"] = static_cast<double>(r.score_patterns);
  }
}

void PrintTable() {
  PrintHeader("Table II - HD and OER (%) for ITC'99 at M4/M6; measured "
              "(paper)");
  std::printf("%-6s | %-28s | %-28s\n", "", "M4: HD / OER", "M6: HD / OER");
  PrintRule(72);
  double sums[4] = {0, 0, 0, 0};
  int count = 0;
  for (const auto& info : circuits::Itc99Suite()) {
    const auto& paper = kPaper.at(info.name);
    std::string cells[2][2];
    for (int s = 0; s < 2; ++s) {
      const store::CampaignRecord r =
          RunItcRecordCached(info.name, s == 0 ? 4 : 6);
      sums[s * 2 + 0] += r.hd_percent;
      sums[s * 2 + 1] += r.oer_percent;
      cells[s][0] = Cell(r.hd_percent, paper[s].hd);
      cells[s][1] = Cell(r.oer_percent, paper[s].oer);
    }
    std::printf("%-6s | %s %s | %s %s\n", info.name.c_str(),
                cells[0][0].c_str(), cells[0][1].c_str(),
                cells[1][0].c_str(), cells[1][1].c_str());
    ++count;
  }
  PrintRule(72);
  std::printf("%-6s | %s %s | %s %s\n", "avg",
              Cell(sums[0] / count, 53).c_str(),
              Cell(sums[1] / count, 100).c_str(),
              Cell(sums[2] / count, 25).c_str(),
              Cell(sums[3] / count, 100).c_str());
  std::printf("\nexpected shape: OER pinned at 100%% for both split layers;\n"
              "HD near 50%% at M4 and lower at M6 (more of the design is\n"
              "recovered from the FEOL at a higher split).\n");
}

}  // namespace
}  // namespace splitlock::bench

int main(int argc, char** argv) {
  using namespace splitlock::bench;
  WarmItcSuiteCache(4);
  WarmItcSuiteCache(6);
  for (const auto& info : splitlock::circuits::Itc99Suite()) {
    for (int split : {4, 6}) {
      benchmark::RegisterBenchmark(
          ("Table2/" + info.name + "/M" + std::to_string(split)).c_str(),
          [name = info.name, split](benchmark::State& st) {
            RunRow(st, name, split);
          })
          ->Iterations(1)
          ->Unit(benchmark::kSecond);
    }
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  PrintTable();
  return 0;
}
