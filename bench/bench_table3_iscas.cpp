// Table III: PNR, CCR, HD, OER (%) for ISCAS benchmarks split at M4 —
// prior art [22] (routing perturbation), [12] (concerted wire lifting),
// [13] (BEOL restore) versus the proposed keyed scheme.
//
// Paper reference averages: [22] PNR 88.3 / CCR 73.3 / HD 29.1 / OER 99.9;
// [12] PNR 30.3 / CCR 0 / HD 41.1 / OER 100; [13] CCR 0 / HD 41.7 /
// OER 99.9; Proposed PNR 27.5 / CCR 1.1 (physical, key-nets) / HD 42.8 /
// OER 99.8. All four defenses are attacked with the same proximity attack.
#include "bench_common.hpp"

#include "defense/defenses.hpp"
#include "sim/metrics.hpp"

namespace splitlock::bench {
namespace {

struct Row {
  double pnr = 0.0;
  double ccr = 0.0;
  double hd = 0.0;
  double oer = 0.0;
};

// Published per-benchmark "Proposed" reference values (Table III).
const std::map<std::string, Row> kPaperProposed = {
    {"c432", {28, 2, 42.5, 98.3}},  {"c880", {29, 1, 35.7, 100}},
    {"c1355", {31, 0, 32.3, 100}},  {"c1908", {26, 1, 34.4, 100}},
    {"c3540", {16, 2, 37.8, 100}},  {"c5315", {31, 1, 45.2, 100}},
    {"c7552", {31, 1, 71.7, 100}},
};

Row ScoreDefense(const defense::DefenseResult& d, uint64_t seed) {
  const attack::AttackReport atk = RunEngineOnFeol(d.feol, "proximity");
  Row row;
  row.pnr = attack::ComputePnrPercent(d.feol, atk.assignment);
  row.ccr = attack::ComputeCcr(d.feol, atk.assignment).regular_ccr_percent;
  const Netlist recovered =
      split::BuildRecoveredNetlist(d.feol, atk.assignment);
  const FunctionalDiff diff =
      CompareFunctional(d.Reference(), recovered, ReproPatterns(), seed);
  row.hd = diff.hd_percent;
  row.oer = diff.oer_percent;
  return row;
}

// Memoized per-benchmark results for all four defenses.
struct AllRows {
  Row wang22;
  Row patnaik12;
  Row patnaik13;
  Row proposed;
};

const AllRows& RunBenchmarkCached(const std::string& name) {
  static std::map<std::string, AllRows> cache;
  auto it = cache.find(name);
  if (it != cache.end()) return it->second;

  const Netlist original = circuits::MakeIscas(name);
  core::FlowOptions options = DefaultFlowOptions(4, 2019);
  AllRows rows;
  rows.wang22 =
      ScoreDefense(defense::ApplyRoutingPerturbation(original, options), 1);
  rows.patnaik12 =
      ScoreDefense(defense::ApplyConcertedWireLifting(original, options), 2);
  rows.patnaik13 =
      ScoreDefense(defense::ApplyBeolRestore(original, options), 3);

  // Proposed: the full keyed secure flow. ISCAS designs are small, so the
  // paper's cost amortization argument does not apply (footnote 7); the
  // lock still embeds all 128 bits.
  core::FlowOptions ours = options;
  ours.lock.require_area_gain = false;
  const core::FlowResult flow = core::RunSecureFlow(original, ours);
  const attack::AttackReport atk = RunEngineOnFeol(flow.feol, "proximity");
  const attack::AttackScore score = attack::ScoreAttack(
      flow.feol, atk.assignment, ReproPatterns(), ours.seed);
  rows.proposed.pnr = score.pnr_percent;
  // CCR for "proposed" refers to the *physical* key-net CCR (Sec. IV-A).
  rows.proposed.ccr = score.ccr.key_physical_ccr_percent;
  rows.proposed.hd = score.functional.hd_percent;
  rows.proposed.oer = score.functional.oer_percent;
  return cache.emplace(name, rows).first->second;
}

void PrintTable() {
  PrintHeader(
      "Table III - PNR/CCR/HD/OER (%) for ISCAS split at M4: [22] vs [12] "
      "vs [13] vs Proposed");
  std::printf("%-6s | %-27s | %-27s | %-27s | %-27s\n", "",
              "[22] PNR/CCR/HD/OER", "[12] PNR/CCR/HD/OER",
              "[13] PNR/CCR/HD/OER", "ours PNR/CCR/HD/OER");
  PrintRule(126);
  Row sums[4];
  int count = 0;
  for (const auto& info : circuits::IscasSuite()) {
    const AllRows& rows = RunBenchmarkCached(info.name);
    const Row* all[4] = {&rows.wang22, &rows.patnaik12, &rows.patnaik13,
                         &rows.proposed};
    std::printf("%-6s |", info.name.c_str());
    for (int d = 0; d < 4; ++d) {
      std::printf(" %5.1f %5.1f %5.1f %5.1f %s", all[d]->pnr, all[d]->ccr,
                  all[d]->hd, all[d]->oer, d == 3 ? "\n" : "|");
      sums[d].pnr += all[d]->pnr;
      sums[d].ccr += all[d]->ccr;
      sums[d].hd += all[d]->hd;
      sums[d].oer += all[d]->oer;
    }
    ++count;
  }
  PrintRule(126);
  std::printf("%-6s |", "avg");
  const double paper_avgs[4][4] = {{88.3, 73.3, 29.1, 99.9},
                                   {30.3, 0.0, 41.1, 100},
                                   {-1, 0.0, 41.7, 99.9},
                                   {27.5, 1.1, 42.8, 99.8}};
  for (int d = 0; d < 4; ++d) {
    std::printf(" %5.1f %5.1f %5.1f %5.1f %s", sums[d].pnr / count,
                sums[d].ccr / count, sums[d].hd / count, sums[d].oer / count,
                d == 3 ? "\n" : "|");
  }
  std::printf("%-6s |", "paper");
  for (int d = 0; d < 4; ++d) {
    std::printf(" %5.1f %5.1f %5.1f %5.1f %s", paper_avgs[d][0],
                paper_avgs[d][1], paper_avgs[d][2], paper_avgs[d][3],
                d == 3 ? "\n" : "|");
  }
  std::printf(
      "\nnotes: CCR for [22]/[12]/[13] is the regular-net CCR of broken\n"
      "connections; CCR for 'ours' is the physical key-net CCR. expected\n"
      "shape: [22] leaves high structural recovery (PNR/CCR); lifting-based\n"
      "schemes and ours push CCR to ~0 and PNR to ~30 with OER ~100.\n");
}

void RunRow(benchmark::State& state, const std::string& name) {
  for (auto _ : state) {
    const AllRows& rows = RunBenchmarkCached(name);
    state.counters["ours_pnr"] = rows.proposed.pnr;
    state.counters["ours_key_physical_ccr"] = rows.proposed.ccr;
    state.counters["ours_hd"] = rows.proposed.hd;
    state.counters["ours_oer"] = rows.proposed.oer;
  }
}

}  // namespace
}  // namespace splitlock::bench

int main(int argc, char** argv) {
  using namespace splitlock::bench;
  for (const auto& info : splitlock::circuits::IscasSuite()) {
    benchmark::RegisterBenchmark(
        ("Table3/" + info.name).c_str(),
        [name = info.name](benchmark::State& st) { RunRow(st, name); })
        ->Iterations(1)
        ->Unit(benchmark::kSecond);
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  PrintTable();
  return 0;
}
