file(REMOVE_RECURSE
  "CMakeFiles/bench_advanced_attacks.dir/bench/bench_advanced_attacks.cpp.o"
  "CMakeFiles/bench_advanced_attacks.dir/bench/bench_advanced_attacks.cpp.o.d"
  "bench_advanced_attacks"
  "bench_advanced_attacks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_advanced_attacks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
