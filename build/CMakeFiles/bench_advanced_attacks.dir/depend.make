# Empty dependencies file for bench_advanced_attacks.
# This may be replaced when dependencies are built.
