# Empty dependencies file for bench_fig5_layout_cost.
# This may be replaced when dependencies are built.
