file(REMOVE_RECURSE
  "CMakeFiles/bench_ideal_attack.dir/bench/bench_ideal_attack.cpp.o"
  "CMakeFiles/bench_ideal_attack.dir/bench/bench_ideal_attack.cpp.o.d"
  "bench_ideal_attack"
  "bench_ideal_attack.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ideal_attack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
