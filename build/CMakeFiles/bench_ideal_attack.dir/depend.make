# Empty dependencies file for bench_ideal_attack.
# This may be replaced when dependencies are built.
