file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_ccr.dir/bench/bench_table1_ccr.cpp.o"
  "CMakeFiles/bench_table1_ccr.dir/bench/bench_table1_ccr.cpp.o.d"
  "bench_table1_ccr"
  "bench_table1_ccr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_ccr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
