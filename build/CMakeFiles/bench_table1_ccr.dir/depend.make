# Empty dependencies file for bench_table1_ccr.
# This may be replaced when dependencies are built.
