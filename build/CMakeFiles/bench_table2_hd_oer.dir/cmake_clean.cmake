file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_hd_oer.dir/bench/bench_table2_hd_oer.cpp.o"
  "CMakeFiles/bench_table2_hd_oer.dir/bench/bench_table2_hd_oer.cpp.o.d"
  "bench_table2_hd_oer"
  "bench_table2_hd_oer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_hd_oer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
