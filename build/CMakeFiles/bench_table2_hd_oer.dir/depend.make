# Empty dependencies file for bench_table2_hd_oer.
# This may be replaced when dependencies are built.
