file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_iscas.dir/bench/bench_table3_iscas.cpp.o"
  "CMakeFiles/bench_table3_iscas.dir/bench/bench_table3_iscas.cpp.o.d"
  "bench_table3_iscas"
  "bench_table3_iscas.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_iscas.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
