# Empty dependencies file for bench_table3_iscas.
# This may be replaced when dependencies are built.
