file(REMOVE_RECURSE
  "CMakeFiles/c17_walkthrough.dir/examples/c17_walkthrough.cpp.o"
  "CMakeFiles/c17_walkthrough.dir/examples/c17_walkthrough.cpp.o.d"
  "c17_walkthrough"
  "c17_walkthrough.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/c17_walkthrough.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
