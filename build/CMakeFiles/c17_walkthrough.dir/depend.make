# Empty dependencies file for c17_walkthrough.
# This may be replaced when dependencies are built.
