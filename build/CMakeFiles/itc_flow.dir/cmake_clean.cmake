file(REMOVE_RECURSE
  "CMakeFiles/itc_flow.dir/examples/itc_flow.cpp.o"
  "CMakeFiles/itc_flow.dir/examples/itc_flow.cpp.o.d"
  "itc_flow"
  "itc_flow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/itc_flow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
