# Empty dependencies file for itc_flow.
# This may be replaced when dependencies are built.
