
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/atpg/cube.cpp" "CMakeFiles/splitlock.dir/src/atpg/cube.cpp.o" "gcc" "CMakeFiles/splitlock.dir/src/atpg/cube.cpp.o.d"
  "/root/repo/src/atpg/cut.cpp" "CMakeFiles/splitlock.dir/src/atpg/cut.cpp.o" "gcc" "CMakeFiles/splitlock.dir/src/atpg/cut.cpp.o.d"
  "/root/repo/src/atpg/fault.cpp" "CMakeFiles/splitlock.dir/src/atpg/fault.cpp.o" "gcc" "CMakeFiles/splitlock.dir/src/atpg/fault.cpp.o.d"
  "/root/repo/src/atpg/fault_sim.cpp" "CMakeFiles/splitlock.dir/src/atpg/fault_sim.cpp.o" "gcc" "CMakeFiles/splitlock.dir/src/atpg/fault_sim.cpp.o.d"
  "/root/repo/src/atpg/podem.cpp" "CMakeFiles/splitlock.dir/src/atpg/podem.cpp.o" "gcc" "CMakeFiles/splitlock.dir/src/atpg/podem.cpp.o.d"
  "/root/repo/src/attack/ideal.cpp" "CMakeFiles/splitlock.dir/src/attack/ideal.cpp.o" "gcc" "CMakeFiles/splitlock.dir/src/attack/ideal.cpp.o.d"
  "/root/repo/src/attack/metrics.cpp" "CMakeFiles/splitlock.dir/src/attack/metrics.cpp.o" "gcc" "CMakeFiles/splitlock.dir/src/attack/metrics.cpp.o.d"
  "/root/repo/src/attack/ml_attack.cpp" "CMakeFiles/splitlock.dir/src/attack/ml_attack.cpp.o" "gcc" "CMakeFiles/splitlock.dir/src/attack/ml_attack.cpp.o.d"
  "/root/repo/src/attack/proximity.cpp" "CMakeFiles/splitlock.dir/src/attack/proximity.cpp.o" "gcc" "CMakeFiles/splitlock.dir/src/attack/proximity.cpp.o.d"
  "/root/repo/src/attack/sat_attack.cpp" "CMakeFiles/splitlock.dir/src/attack/sat_attack.cpp.o" "gcc" "CMakeFiles/splitlock.dir/src/attack/sat_attack.cpp.o.d"
  "/root/repo/src/circuits/c17.cpp" "CMakeFiles/splitlock.dir/src/circuits/c17.cpp.o" "gcc" "CMakeFiles/splitlock.dir/src/circuits/c17.cpp.o.d"
  "/root/repo/src/circuits/random_circuit.cpp" "CMakeFiles/splitlock.dir/src/circuits/random_circuit.cpp.o" "gcc" "CMakeFiles/splitlock.dir/src/circuits/random_circuit.cpp.o.d"
  "/root/repo/src/circuits/suites.cpp" "CMakeFiles/splitlock.dir/src/circuits/suites.cpp.o" "gcc" "CMakeFiles/splitlock.dir/src/circuits/suites.cpp.o.d"
  "/root/repo/src/core/campaign.cpp" "CMakeFiles/splitlock.dir/src/core/campaign.cpp.o" "gcc" "CMakeFiles/splitlock.dir/src/core/campaign.cpp.o.d"
  "/root/repo/src/core/flow.cpp" "CMakeFiles/splitlock.dir/src/core/flow.cpp.o" "gcc" "CMakeFiles/splitlock.dir/src/core/flow.cpp.o.d"
  "/root/repo/src/defense/beol_restore.cpp" "CMakeFiles/splitlock.dir/src/defense/beol_restore.cpp.o" "gcc" "CMakeFiles/splitlock.dir/src/defense/beol_restore.cpp.o.d"
  "/root/repo/src/defense/routing_perturbation.cpp" "CMakeFiles/splitlock.dir/src/defense/routing_perturbation.cpp.o" "gcc" "CMakeFiles/splitlock.dir/src/defense/routing_perturbation.cpp.o.d"
  "/root/repo/src/defense/wire_lifting.cpp" "CMakeFiles/splitlock.dir/src/defense/wire_lifting.cpp.o" "gcc" "CMakeFiles/splitlock.dir/src/defense/wire_lifting.cpp.o.d"
  "/root/repo/src/exec/parallel.cpp" "CMakeFiles/splitlock.dir/src/exec/parallel.cpp.o" "gcc" "CMakeFiles/splitlock.dir/src/exec/parallel.cpp.o.d"
  "/root/repo/src/exec/thread_pool.cpp" "CMakeFiles/splitlock.dir/src/exec/thread_pool.cpp.o" "gcc" "CMakeFiles/splitlock.dir/src/exec/thread_pool.cpp.o.d"
  "/root/repo/src/lec/lec.cpp" "CMakeFiles/splitlock.dir/src/lec/lec.cpp.o" "gcc" "CMakeFiles/splitlock.dir/src/lec/lec.cpp.o.d"
  "/root/repo/src/lock/atpg_lock.cpp" "CMakeFiles/splitlock.dir/src/lock/atpg_lock.cpp.o" "gcc" "CMakeFiles/splitlock.dir/src/lock/atpg_lock.cpp.o.d"
  "/root/repo/src/lock/epic.cpp" "CMakeFiles/splitlock.dir/src/lock/epic.cpp.o" "gcc" "CMakeFiles/splitlock.dir/src/lock/epic.cpp.o.d"
  "/root/repo/src/lock/restore.cpp" "CMakeFiles/splitlock.dir/src/lock/restore.cpp.o" "gcc" "CMakeFiles/splitlock.dir/src/lock/restore.cpp.o.d"
  "/root/repo/src/netlist/bench_io.cpp" "CMakeFiles/splitlock.dir/src/netlist/bench_io.cpp.o" "gcc" "CMakeFiles/splitlock.dir/src/netlist/bench_io.cpp.o.d"
  "/root/repo/src/netlist/libcell.cpp" "CMakeFiles/splitlock.dir/src/netlist/libcell.cpp.o" "gcc" "CMakeFiles/splitlock.dir/src/netlist/libcell.cpp.o.d"
  "/root/repo/src/netlist/netlist.cpp" "CMakeFiles/splitlock.dir/src/netlist/netlist.cpp.o" "gcc" "CMakeFiles/splitlock.dir/src/netlist/netlist.cpp.o.d"
  "/root/repo/src/opt/mffc.cpp" "CMakeFiles/splitlock.dir/src/opt/mffc.cpp.o" "gcc" "CMakeFiles/splitlock.dir/src/opt/mffc.cpp.o.d"
  "/root/repo/src/opt/optimizer.cpp" "CMakeFiles/splitlock.dir/src/opt/optimizer.cpp.o" "gcc" "CMakeFiles/splitlock.dir/src/opt/optimizer.cpp.o.d"
  "/root/repo/src/phys/floorplan.cpp" "CMakeFiles/splitlock.dir/src/phys/floorplan.cpp.o" "gcc" "CMakeFiles/splitlock.dir/src/phys/floorplan.cpp.o.d"
  "/root/repo/src/phys/layout.cpp" "CMakeFiles/splitlock.dir/src/phys/layout.cpp.o" "gcc" "CMakeFiles/splitlock.dir/src/phys/layout.cpp.o.d"
  "/root/repo/src/phys/placer.cpp" "CMakeFiles/splitlock.dir/src/phys/placer.cpp.o" "gcc" "CMakeFiles/splitlock.dir/src/phys/placer.cpp.o.d"
  "/root/repo/src/phys/power.cpp" "CMakeFiles/splitlock.dir/src/phys/power.cpp.o" "gcc" "CMakeFiles/splitlock.dir/src/phys/power.cpp.o.d"
  "/root/repo/src/phys/router.cpp" "CMakeFiles/splitlock.dir/src/phys/router.cpp.o" "gcc" "CMakeFiles/splitlock.dir/src/phys/router.cpp.o.d"
  "/root/repo/src/phys/tech.cpp" "CMakeFiles/splitlock.dir/src/phys/tech.cpp.o" "gcc" "CMakeFiles/splitlock.dir/src/phys/tech.cpp.o.d"
  "/root/repo/src/phys/timing.cpp" "CMakeFiles/splitlock.dir/src/phys/timing.cpp.o" "gcc" "CMakeFiles/splitlock.dir/src/phys/timing.cpp.o.d"
  "/root/repo/src/sat/solver.cpp" "CMakeFiles/splitlock.dir/src/sat/solver.cpp.o" "gcc" "CMakeFiles/splitlock.dir/src/sat/solver.cpp.o.d"
  "/root/repo/src/sat/tseitin.cpp" "CMakeFiles/splitlock.dir/src/sat/tseitin.cpp.o" "gcc" "CMakeFiles/splitlock.dir/src/sat/tseitin.cpp.o.d"
  "/root/repo/src/sim/metrics.cpp" "CMakeFiles/splitlock.dir/src/sim/metrics.cpp.o" "gcc" "CMakeFiles/splitlock.dir/src/sim/metrics.cpp.o.d"
  "/root/repo/src/sim/simulator.cpp" "CMakeFiles/splitlock.dir/src/sim/simulator.cpp.o" "gcc" "CMakeFiles/splitlock.dir/src/sim/simulator.cpp.o.d"
  "/root/repo/src/split/split.cpp" "CMakeFiles/splitlock.dir/src/split/split.cpp.o" "gcc" "CMakeFiles/splitlock.dir/src/split/split.cpp.o.d"
  "/root/repo/src/util/env.cpp" "CMakeFiles/splitlock.dir/src/util/env.cpp.o" "gcc" "CMakeFiles/splitlock.dir/src/util/env.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
