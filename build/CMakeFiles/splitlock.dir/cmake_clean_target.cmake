file(REMOVE_RECURSE
  "libsplitlock.a"
)
