# Empty dependencies file for splitlock.
# This may be replaced when dependencies are built.
