file(REMOVE_RECURSE
  "CMakeFiles/splitlock_cli.dir/tools/splitlock_cli.cpp.o"
  "CMakeFiles/splitlock_cli.dir/tools/splitlock_cli.cpp.o.d"
  "splitlock_cli"
  "splitlock_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/splitlock_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
