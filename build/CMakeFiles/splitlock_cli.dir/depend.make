# Empty dependencies file for splitlock_cli.
# This may be replaced when dependencies are built.
