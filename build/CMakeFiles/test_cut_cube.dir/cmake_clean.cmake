file(REMOVE_RECURSE
  "CMakeFiles/test_cut_cube.dir/tests/test_cut_cube.cpp.o"
  "CMakeFiles/test_cut_cube.dir/tests/test_cut_cube.cpp.o.d"
  "test_cut_cube"
  "test_cut_cube.pdb"
  "test_cut_cube[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cut_cube.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
