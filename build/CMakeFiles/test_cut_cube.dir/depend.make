# Empty dependencies file for test_cut_cube.
# This may be replaced when dependencies are built.
