file(REMOVE_RECURSE
  "CMakeFiles/test_integration_roundtrip.dir/tests/test_integration_roundtrip.cpp.o"
  "CMakeFiles/test_integration_roundtrip.dir/tests/test_integration_roundtrip.cpp.o.d"
  "test_integration_roundtrip"
  "test_integration_roundtrip.pdb"
  "test_integration_roundtrip[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_integration_roundtrip.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
