# Empty dependencies file for test_integration_roundtrip.
# This may be replaced when dependencies are built.
