file(REMOVE_RECURSE
  "CMakeFiles/test_lock_atpg.dir/tests/test_lock_atpg.cpp.o"
  "CMakeFiles/test_lock_atpg.dir/tests/test_lock_atpg.cpp.o.d"
  "test_lock_atpg"
  "test_lock_atpg.pdb"
  "test_lock_atpg[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_lock_atpg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
