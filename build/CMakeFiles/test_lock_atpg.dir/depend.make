# Empty dependencies file for test_lock_atpg.
# This may be replaced when dependencies are built.
