file(REMOVE_RECURSE
  "CMakeFiles/test_lock_epic.dir/tests/test_lock_epic.cpp.o"
  "CMakeFiles/test_lock_epic.dir/tests/test_lock_epic.cpp.o.d"
  "test_lock_epic"
  "test_lock_epic.pdb"
  "test_lock_epic[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_lock_epic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
