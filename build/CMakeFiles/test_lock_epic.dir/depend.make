# Empty dependencies file for test_lock_epic.
# This may be replaced when dependencies are built.
