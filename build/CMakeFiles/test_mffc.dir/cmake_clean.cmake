file(REMOVE_RECURSE
  "CMakeFiles/test_mffc.dir/tests/test_mffc.cpp.o"
  "CMakeFiles/test_mffc.dir/tests/test_mffc.cpp.o.d"
  "test_mffc"
  "test_mffc.pdb"
  "test_mffc[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mffc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
