# Empty dependencies file for test_mffc.
# This may be replaced when dependencies are built.
