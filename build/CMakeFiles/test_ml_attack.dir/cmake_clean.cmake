file(REMOVE_RECURSE
  "CMakeFiles/test_ml_attack.dir/tests/test_ml_attack.cpp.o"
  "CMakeFiles/test_ml_attack.dir/tests/test_ml_attack.cpp.o.d"
  "test_ml_attack"
  "test_ml_attack.pdb"
  "test_ml_attack[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ml_attack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
