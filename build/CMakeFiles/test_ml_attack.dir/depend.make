# Empty dependencies file for test_ml_attack.
# This may be replaced when dependencies are built.
