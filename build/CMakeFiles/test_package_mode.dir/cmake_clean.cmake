file(REMOVE_RECURSE
  "CMakeFiles/test_package_mode.dir/tests/test_package_mode.cpp.o"
  "CMakeFiles/test_package_mode.dir/tests/test_package_mode.cpp.o.d"
  "test_package_mode"
  "test_package_mode.pdb"
  "test_package_mode[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_package_mode.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
