# Empty dependencies file for test_package_mode.
# This may be replaced when dependencies are built.
