file(REMOVE_RECURSE
  "CMakeFiles/test_phys.dir/tests/test_phys.cpp.o"
  "CMakeFiles/test_phys.dir/tests/test_phys.cpp.o.d"
  "test_phys"
  "test_phys.pdb"
  "test_phys[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_phys.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
