file(REMOVE_RECURSE
  "CMakeFiles/test_phys_extra.dir/tests/test_phys_extra.cpp.o"
  "CMakeFiles/test_phys_extra.dir/tests/test_phys_extra.cpp.o.d"
  "test_phys_extra"
  "test_phys_extra.pdb"
  "test_phys_extra[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_phys_extra.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
