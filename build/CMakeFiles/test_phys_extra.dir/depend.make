# Empty dependencies file for test_phys_extra.
# This may be replaced when dependencies are built.
