file(REMOVE_RECURSE
  "CMakeFiles/test_sat_extra.dir/tests/test_sat_extra.cpp.o"
  "CMakeFiles/test_sat_extra.dir/tests/test_sat_extra.cpp.o.d"
  "test_sat_extra"
  "test_sat_extra.pdb"
  "test_sat_extra[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sat_extra.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
