# Empty dependencies file for test_sat_extra.
# This may be replaced when dependencies are built.
