file(REMOVE_RECURSE
  "CMakeFiles/test_tseitin_lec.dir/tests/test_tseitin_lec.cpp.o"
  "CMakeFiles/test_tseitin_lec.dir/tests/test_tseitin_lec.cpp.o.d"
  "test_tseitin_lec"
  "test_tseitin_lec.pdb"
  "test_tseitin_lec[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_tseitin_lec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
