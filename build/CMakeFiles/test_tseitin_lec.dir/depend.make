# Empty dependencies file for test_tseitin_lec.
# This may be replaced when dependencies are built.
