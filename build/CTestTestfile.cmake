# CMake generated Testfile for 
# Source directory: /root/repo
# Build directory: /root/repo/build
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/test_atpg[1]_include.cmake")
include("/root/repo/build/test_attack[1]_include.cmake")
include("/root/repo/build/test_bench_io[1]_include.cmake")
include("/root/repo/build/test_circuits[1]_include.cmake")
include("/root/repo/build/test_cut_cube[1]_include.cmake")
include("/root/repo/build/test_defense[1]_include.cmake")
include("/root/repo/build/test_exec[1]_include.cmake")
include("/root/repo/build/test_flow[1]_include.cmake")
include("/root/repo/build/test_integration_roundtrip[1]_include.cmake")
include("/root/repo/build/test_lock_atpg[1]_include.cmake")
include("/root/repo/build/test_lock_epic[1]_include.cmake")
include("/root/repo/build/test_mffc[1]_include.cmake")
include("/root/repo/build/test_ml_attack[1]_include.cmake")
include("/root/repo/build/test_netlist[1]_include.cmake")
include("/root/repo/build/test_opt[1]_include.cmake")
include("/root/repo/build/test_package_mode[1]_include.cmake")
include("/root/repo/build/test_phys[1]_include.cmake")
include("/root/repo/build/test_phys_extra[1]_include.cmake")
include("/root/repo/build/test_properties[1]_include.cmake")
include("/root/repo/build/test_sat[1]_include.cmake")
include("/root/repo/build/test_sat_attack[1]_include.cmake")
include("/root/repo/build/test_sat_extra[1]_include.cmake")
include("/root/repo/build/test_sim[1]_include.cmake")
include("/root/repo/build/test_sim_metrics[1]_include.cmake")
include("/root/repo/build/test_split[1]_include.cmake")
include("/root/repo/build/test_tseitin_lec[1]_include.cmake")
include("/root/repo/build/test_util[1]_include.cmake")
