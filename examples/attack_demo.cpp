// Why each defense ingredient matters (the Fig. 2 progression).
//
// Attacks the same locked design under three layout policies:
//   (a) naive     — TIE cells placed next to their key-gates, key-nets
//                   routed like regular nets (Fig. 2(a));
//   (b) scattered — TIE cells randomized + fixed, key-nets still routed
//                   in/through the FEOL (Fig. 2(b));
//   (c) secure    — randomized TIE cells AND key-nets lifted to the BEOL
//                   through stacked vias (Fig. 2(c)/(d)).
// For each, reports how much of the key an FEOL attacker learns. Attacks
// dispatch through the attack-engine registry (attack/engine.hpp) — swap
// the engine spec below for "ml" or "ideal" to pit a different attacker
// model against the same layouts.
#include <cstdio>

#include "attack/engine.hpp"
#include "attack/metrics.hpp"
#include "circuits/random_circuit.hpp"
#include "core/flow.hpp"
#include "phys/router.hpp"

namespace {

struct PolicyResult {
  const char* name;
  size_t key_bits_exposed_in_feol;  // unbroken key-nets: read directly
  size_t key_connections_attacked;
  double logical_ccr;
  double physical_ccr;
};

PolicyResult RunPolicy(const char* name, const splitlock::Netlist& original,
                       bool randomize_ties, bool lift) {
  using namespace splitlock;
  core::FlowOptions options;
  options.key_bits = 64;
  options.split_layer = 4;
  options.seed = 7;
  options.randomize_tie_placement = randomize_ties;
  options.lift_key_nets = lift;
  const core::FlowResult flow = core::RunSecureFlow(original, options);

  // Key-nets fully routed in the FEOL are read off directly.
  size_t exposed = 0;
  for (NetId kn : phys::KeyNetsOf(*flow.physical.netlist)) {
    if (!flow.feol.net_broken[kn]) ++exposed;
  }
  attack::AttackContext ctx;
  ctx.feol = &flow.feol;
  const attack::AttackReport atk = attack::RunAttack(ctx, "proximity");
  const attack::CcrReport ccr = attack::ComputeCcr(flow.feol, atk.assignment);
  return PolicyResult{name, exposed, ccr.key_connections,
                      ccr.key_logical_ccr_percent,
                      ccr.key_physical_ccr_percent};
}

}  // namespace

int main() {
  using namespace splitlock;
  circuits::CircuitSpec spec;
  spec.name = "attack_demo";
  spec.num_inputs = 48;
  spec.num_outputs = 24;
  spec.num_gates = 1500;
  spec.seed = 7;
  const Netlist original = circuits::GenerateCircuit(spec);
  std::printf("design: %zu gates, 64 key bits, split at M4\n\n",
              original.NumLogicGates());

  const PolicyResult results[] = {
      RunPolicy("naive (Fig. 2a)", original, false, false),
      RunPolicy("scattered (Fig. 2b)", original, true, false),
      RunPolicy("secure (Fig. 2c)", original, true, true),
  };

  std::printf("%-22s %18s %14s %15s %16s\n", "layout policy",
              "key bits in FEOL", "key stubs", "logical CCR %",
              "physical CCR %");
  for (const PolicyResult& r : results) {
    std::printf("%-22s %18zu %14zu %15.1f %16.1f\n", r.name,
                r.key_bits_exposed_in_feol, r.key_connections_attacked,
                r.logical_ccr, r.physical_ccr);
  }
  std::printf(
      "\nreading: the naive layout leaks most key bits outright (key-nets\n"
      "never leave the FEOL); scattering the TIE cells forces the nets to\n"
      "break but routing fragments still help the attacker; only lifting\n"
      "whole key-nets to the BEOL reduces the attack to coin flipping.\n");
  return 0;
}
