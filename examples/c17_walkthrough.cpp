// Fig. 4 walkthrough on the exact ISCAS-85 c17 netlist.
//
// The paper illustrates its fault-injection locking on c17: inject a
// stuck-at fault, enumerate the failing patterns with ATPG, re-synthesize
// the faulty circuit (removing logic), and add key-configured restore
// circuitry. This example performs each step explicitly with the library's
// low-level APIs and prints what happens, ending with the formal LEC check
// the flow uses to accept or reject a fault (Fig. 3).
#include <cstdio>

#include "atpg/cube.hpp"
#include "atpg/cut.hpp"
#include "atpg/fault.hpp"
#include "atpg/fault_sim.hpp"
#include "atpg/podem.hpp"
#include "circuits/c17.hpp"
#include "lec/lec.hpp"
#include "lock/atpg_lock.hpp"
#include "netlist/bench_io.hpp"

int main() {
  using namespace splitlock;

  const Netlist c17 = circuits::MakeC17();
  std::printf("=== c17 (exact ISCAS-85 netlist) ===\n%s\n",
              WriteBench(c17).c_str());

  // --- Step 1: the classical ATPG view ------------------------------------
  const std::vector<atpg::Fault> faults =
      atpg::CollapseFaults(c17, atpg::EnumerateStemFaults(c17));
  std::printf("stuck-at faults after collapsing: %zu\n", faults.size());
  for (const atpg::Fault& f : faults) {
    const auto test = atpg::GenerateTest(c17, f);
    if (!test) continue;
    std::printf("  %-10s test:", atpg::FaultName(c17, f).c_str());
    for (uint8_t v : test->pi_values) {
      std::printf(" %c", v == atpg::kVX ? 'x' : ('0' + v));
    }
    std::printf("\n");
  }

  // --- Step 2: failing patterns of one fault over its cut -----------------
  // Pick G16 (the paper faults an internal NAND output).
  NetId g16 = kNullId;
  for (NetId n = 0; n < c17.NumNets(); ++n) {
    if (c17.net(n).name == "G16") g16 = n;
  }
  const atpg::Cut cut = atpg::ExtractCut(c17, g16, 8);
  std::printf("\nfault site G16, cut leaves:");
  for (NetId leaf : cut.leaves) std::printf(" %s", c17.net(leaf).name.c_str());
  std::printf("\n");
  const auto failing = atpg::EnumerateConeMinterms(c17, cut, false, 64);
  // G16 stuck-at-1: failing patterns are where the cone computes 0.
  std::printf("failing patterns (G16/sa1), as cut minterms:");
  for (uint64_t m : *failing) std::printf(" %llu", (unsigned long long)m);
  const auto cubes = atpg::MintermsToCubes(*failing, cut.leaves.size());
  std::printf("\ncompacted to %zu comparator cube(s):\n", cubes.size());
  for (const atpg::Cube& c : cubes) {
    std::printf("  ");
    for (size_t i = 0; i < cut.leaves.size(); ++i) {
      if ((c.care >> i) & 1) {
        std::printf("%s=%d ", c17.net(cut.leaves[i]).name.c_str(),
                    (int)((c.value >> i) & 1));
      }
    }
    std::printf("(%d key bits)\n", c.CareCount());
  }

  // --- Step 3: the full locking flow on c17 -------------------------------
  lock::AtpgLockOptions options;
  options.key_bits = 8;  // tiny design, tiny key
  options.seed = 17;
  options.min_bias = 0.6;
  // c17 is an illustration: no 6-gate circuit can pay for a comparator.
  options.require_area_gain = false;
  const lock::AtpgLockResult locked = lock::LockWithAtpg(c17, options);
  std::printf("\n=== locked c17 ===\n%s\n",
              WriteBench(locked.locked).c_str());
  std::printf("key bits: %zu (%zu from failing patterns, %zu padded)\n",
              locked.key.size(), locked.pattern_bits, locked.padding_bits);
  std::printf("correct key: ");
  for (uint8_t b : locked.key) std::printf("%d", b);
  std::printf("\nfaults injected: %zu\n", locked.faults.size());
  for (const auto& f : locked.faults) {
    std::printf("  net %s stuck-at-%d, %zu cubes, %zu key bits, "
                "%.2f um^2 cone removed\n",
                f.net_name.c_str(), f.stuck_value ? 1 : 0, f.cubes,
                f.key_bits, f.cone_area_removed);
  }

  // --- Step 4: the LEC accept/reject gate ----------------------------------
  const LecResult lec =
      CheckEquivalence(c17, locked.locked, {}, locked.key);
  std::printf("\nLEC (correct key): %s\n",
              lec.equivalent ? "EQUIVALENT — accept" : "DIFFERS — reject");
  std::vector<uint8_t> wrong = locked.key;
  wrong[0] ^= 1;
  const LecResult bad = CheckEquivalence(c17, locked.locked, {}, wrong);
  std::printf("LEC (one key bit flipped): %s\n",
              bad.equivalent ? "EQUIVALENT (!!)" : "DIFFERS — locked");
  return lec.equivalent && !bad.equivalent ? 0 : 1;
}
