// Full secure flow on an ITC'99-scale design (b14 equivalent).
//
// Reproduces the paper's headline experiment on one benchmark: lock with
// 128 key bits, generate the secure layout, split at M4 and M6, attack
// both, and report Table I / Table II style numbers plus the Fig. 5 style
// layout cost against the unprotected baseline.
//
// Usage: itc_flow [benchmark] [scale]
//   benchmark: b14 | b15 | b17 | b20 | b21 | b22   (default b14)
//   scale:     gate-count multiplier                (default REPRO_SCALE/2)
#include <cstdio>
#include <cstdlib>
#include <string>

#include "attack/metrics.hpp"
#include "attack/proximity.hpp"
#include "circuits/suites.hpp"
#include "core/flow.hpp"
#include "util/env.hpp"

int main(int argc, char** argv) {
  using namespace splitlock;

  const std::string name = argc > 1 ? argv[1] : "b14";
  const double scale =
      argc > 2 ? std::atof(argv[2]) : ReproScale() / 2.0;
  const Netlist original = circuits::MakeItc99(name, scale);
  std::printf("%s (scale %.2f): %zu gates, %zu PIs, %zu POs\n", name.c_str(),
              scale, original.NumLogicGates(), original.inputs().size(),
              original.outputs().size());

  for (const int split_layer : {4, 6}) {
    core::FlowOptions options;
    options.key_bits = 128;
    options.split_layer = split_layer;
    options.seed = 2019;
    const core::FlowResult flow = core::RunSecureFlow(original, options);

    // Unprotected baseline for the cost comparison.
    const core::PhysicalBundle baseline =
        core::BuildPhysical(original, options);
    const core::CostDelta delta =
        core::CompareCost(baseline.cost, flow.physical.cost);

    const attack::ProximityResult atk =
        attack::RunProximityAttack(flow.feol);
    const attack::AttackScore score = attack::ScoreAttack(
        flow.feol, atk.assignment, ReproPatterns(), options.seed);

    std::printf("\n--- split at M%d (key-nets lifted to M%d) ---\n",
                split_layer, options.EffectiveLiftLayer());
    std::printf("broken connections: %zu (of which %zu key)\n",
                flow.feol.sink_stubs.size(), score.ccr.key_connections);
    std::printf("CCR  key logical %5.1f %%  key physical %5.1f %%  "
                "regular %5.1f %%\n",
                score.ccr.key_logical_ccr_percent,
                score.ccr.key_physical_ccr_percent,
                score.ccr.regular_ccr_percent);
    std::printf("HD   %5.1f %%   OER %5.1f %%   PNR %5.1f %%\n",
                score.functional.hd_percent, score.functional.oer_percent,
                score.pnr_percent);
    std::printf("cost vs unprotected: area %+5.1f %%  power %+5.1f %%  "
                "timing %+5.1f %%\n",
                delta.area_percent, delta.power_percent,
                delta.timing_percent);
    std::printf("flow runtime: lock %.1f s, place %.1f s, route %.1f s, "
                "lift %.1f s\n",
                flow.times.lock_s, flow.times.place_s, flow.times.route_s,
                flow.times.lift_s);
  }
  return 0;
}
