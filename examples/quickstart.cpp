// Quickstart: lock a design, lay it out securely, split it, attack it.
//
// This walks the library's public API end to end on a mid-size synthetic
// circuit:
//   1. generate a circuit,
//   2. run the secure split-manufacturing flow (ATPG-based locking with a
//      128-bit key, randomized TIE cells, key-nets lifted to the BEOL),
//   3. split at M4,
//   4. run the state-of-the-art proximity attack against the FEOL,
//   5. print the security scorecard (CCR / HD / OER / PNR).
#include <cstdio>

#include "attack/metrics.hpp"
#include "attack/proximity.hpp"
#include "circuits/random_circuit.hpp"
#include "core/flow.hpp"

int main() {
  using namespace splitlock;

  // 1. A 2000-gate synthetic design (deterministic in the seed).
  circuits::CircuitSpec spec;
  spec.name = "quickstart";
  spec.num_inputs = 64;
  spec.num_outputs = 32;
  spec.num_gates = 2000;
  spec.seed = 2019;
  const Netlist original = circuits::GenerateCircuit(spec);
  std::printf("design: %zu gates, %zu PIs, %zu POs\n",
              original.NumLogicGates(), original.inputs().size(),
              original.outputs().size());

  // 2. Secure flow: lock the FEOL, unlock at the BEOL.
  core::FlowOptions options;
  options.key_bits = 128;
  options.split_layer = 4;  // FEOL keeps M1..M4; key-nets lifted to M5/M6
  options.seed = 2019;
  const core::FlowResult flow = core::RunSecureFlow(original, options);
  std::printf(
      "locked:  %zu key bits (%zu from failing patterns, %zu padded), "
      "LEC %s\n",
      flow.lock.key.size(), flow.lock.pattern_bits, flow.lock.padding_bits,
      flow.lock.lec_equivalent ? "equivalent" : "FAILED");
  std::printf("layout:  die %.0f um^2, power %.1f uW, critical path %.0f ps\n",
              flow.physical.cost.die_area_um2, flow.physical.cost.power_uw,
              flow.physical.cost.critical_path_ps);
  std::printf("lifted:  %zu key-nets through %zu stacked vias\n",
              flow.physical.lift.key_nets_lifted,
              flow.physical.lift.stacked_vias);

  // 3. The split handed to the untrusted FEOL foundry.
  std::printf("split:   M%d, %zu broken connections (%zu broken nets)\n",
              flow.feol.split_layer, flow.feol.sink_stubs.size(),
              flow.feol.driver_stubs.size());

  // 4. Proximity attack (Wang et al. style, with key-gate post-processing).
  const attack::ProximityResult attack_result =
      attack::RunProximityAttack(flow.feol);

  // 5. Scorecard.
  const attack::AttackScore score =
      attack::ScoreAttack(flow.feol, attack_result.assignment, 100000, 1);
  std::printf("\nattack scorecard (lower CCR / higher OER = stronger defense)\n");
  std::printf("  regular nets CCR:   %5.1f %%\n",
              score.ccr.regular_ccr_percent);
  std::printf("  key-nets CCR:       logical %5.1f %%  physical %5.1f %%\n",
              score.ccr.key_logical_ccr_percent,
              score.ccr.key_physical_ccr_percent);
  std::printf("  netlist recovery:   PNR %5.1f %%\n", score.pnr_percent);
  std::printf("  functional damage:  HD %5.1f %%   OER %5.1f %%\n",
              score.functional.hd_percent, score.functional.oer_percent);
  std::printf("\nthe key stays indistinguishable from random guessing: the\n"
              "attacker's logical CCR sits near 50%% and the recovered "
              "netlist is wrong on essentially every pattern.\n");
  return flow.lock.lec_equivalent ? 0 : 1;
}
