#include "atpg/cube.hpp"

#include <algorithm>
#include <bit>
#include <set>
#include <unordered_set>

namespace splitlock::atpg {

int Cube::CareCount() const { return std::popcount(care); }

std::optional<std::vector<uint64_t>> EnumerateConeMinterms(const Netlist& nl,
                                                           const Cut& cut,
                                                           bool polarity,
                                                           size_t limit) {
  const size_t k = cut.leaves.size();
  if (k > 20) return std::nullopt;
  const uint64_t total = 1ULL << k;

  // Lane patterns: leaf i takes bit i of the global pattern index. The low
  // six index bits vary within a word; higher bits select the word.
  static constexpr uint64_t kLaneMasks[6] = {
      0xAAAAAAAAAAAAAAAAULL, 0xCCCCCCCCCCCCCCCCULL, 0xF0F0F0F0F0F0F0F0ULL,
      0xFF00FF00FF00FF00ULL, 0xFFFF0000FFFF0000ULL, 0xFFFFFFFF00000000ULL};

  std::vector<uint64_t> values(nl.NumNets(), 0);
  std::vector<uint64_t> minterms;
  const uint64_t words = (total + 63) / 64;
  uint64_t fanin_words[kMaxFanin];
  for (uint64_t w = 0; w < words; ++w) {
    for (size_t i = 0; i < k; ++i) {
      const uint64_t word =
          i < 6 ? kLaneMasks[i]
                : (((w >> (i - 6)) & 1) != 0 ? ~0ULL : 0ULL);
      values[cut.leaves[i]] = word;
    }
    for (GateId g : cut.cone) {
      const Gate& gate = nl.gate(g);
      const size_t n = gate.fanins.size();
      for (size_t i = 0; i < n; ++i) fanin_words[i] = values[gate.fanins[i]];
      values[gate.out] =
          EvalGateWord(gate.op, std::span<const uint64_t>(fanin_words, n));
    }
    uint64_t hits = values[cut.root];
    if (!polarity) hits = ~hits;
    const uint64_t lanes = total - w * 64 >= 64 ? 64 : total - w * 64;
    if (lanes < 64) hits &= (1ULL << lanes) - 1;
    while (hits != 0) {
      const int lane = std::countr_zero(hits);
      hits &= hits - 1;
      minterms.push_back(w * 64 + static_cast<uint64_t>(lane));
      if (minterms.size() > limit) return std::nullopt;
    }
  }
  return minterms;
}

std::vector<Cube> MintermsToCubes(const std::vector<uint64_t>& minterms,
                                  size_t num_vars) {
  if (minterms.empty()) return {};
  const uint64_t full_care =
      num_vars >= 64 ? ~0ULL : ((1ULL << num_vars) - 1);

  struct CubeLess {
    bool operator()(const Cube& a, const Cube& b) const {
      return a.care != b.care ? a.care < b.care : a.value < b.value;
    }
  };

  // Iterative Quine-McCluskey merge: combine cube pairs with identical care
  // masks whose values differ in exactly one care bit.
  std::set<Cube, CubeLess> current;
  for (uint64_t m : minterms) current.insert(Cube{full_care, m & full_care});
  std::vector<Cube> primes;
  while (!current.empty()) {
    std::set<Cube, CubeLess> next;
    std::set<Cube, CubeLess> merged;
    std::vector<Cube> list(current.begin(), current.end());
    for (size_t i = 0; i < list.size(); ++i) {
      for (size_t j = i + 1; j < list.size(); ++j) {
        if (list[i].care != list[j].care) continue;
        const uint64_t diff = list[i].value ^ list[j].value;
        if (std::popcount(diff) != 1) continue;
        next.insert(Cube{list[i].care & ~diff, list[i].value & ~diff});
        merged.insert(list[i]);
        merged.insert(list[j]);
      }
    }
    for (const Cube& c : list) {
      if (merged.count(c) == 0) primes.push_back(c);
    }
    current = std::move(next);
  }

  // Greedy cover of the minterms by prime cubes.
  std::unordered_set<uint64_t> uncovered(minterms.begin(), minterms.end());
  std::vector<Cube> cover;
  while (!uncovered.empty()) {
    size_t best_i = 0;
    size_t best_count = 0;
    for (size_t i = 0; i < primes.size(); ++i) {
      size_t count = 0;
      // lint:ordered-reduction counts set membership into a scalar; the
      // winner is picked by lowest prime index, never by visit order
      for (uint64_t m : uncovered) {
        if (primes[i].Covers(m)) ++count;
      }
      if (count > best_count) {
        best_count = count;
        best_i = i;
      }
    }
    // Every uncovered minterm is itself a prime or covered by one.
    if (best_count == 0) break;
    cover.push_back(primes[best_i]);
    // lint:ordered-reduction unconditional erase filter; the surviving set
    // is the same whatever order elements are visited in
    for (auto it = uncovered.begin(); it != uncovered.end();) {
      it = primes[best_i].Covers(*it) ? uncovered.erase(it) : ++it;
    }
  }
  return cover;
}

bool CubesCoverExactly(const std::vector<Cube>& cubes,
                       const std::vector<uint64_t>& minterms,
                       size_t num_vars) {
  const uint64_t total = 1ULL << num_vars;
  std::unordered_set<uint64_t> want(minterms.begin(), minterms.end());
  for (uint64_t m = 0; m < total; ++m) {
    bool covered = false;
    for (const Cube& c : cubes) {
      if (c.Covers(m)) {
        covered = true;
        break;
      }
    }
    if (covered != (want.count(m) != 0)) return false;
  }
  return true;
}

}  // namespace splitlock::atpg
