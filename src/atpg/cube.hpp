// Failing-pattern enumeration and cube compaction.
//
// For a stuck-at-v fault at the root of a cut, the *failing patterns* are
// exactly the cut-input assignments under which the cone computes !v (the
// fault is excited and, because the restore circuitry re-creates the value
// at the fault site, excitation is equivalent to failure). This module
// enumerates that on-set exhaustively (64 patterns per simulation word) and
// compacts it into prime cubes via Quine-McCluskey-style merging plus a
// greedy cover. The resulting cubes are the comparator patterns of the
// restore circuitry (Fig. 4(b): failing patterns with don't-cares).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "atpg/cut.hpp"
#include "netlist/netlist.hpp"

namespace splitlock::atpg {

// A cube over the cut leaves: bit i of `care` set means leaf i is a care
// literal with required value bit i of `value`. Supports up to 64 leaves.
struct Cube {
  uint64_t care = 0;
  uint64_t value = 0;

  bool Covers(uint64_t minterm) const {
    return ((minterm ^ value) & care) == 0;
  }
  int CareCount() const;

  friend bool operator==(const Cube&, const Cube&) = default;
};

// Exhaustively evaluates the cone over its cut leaves and returns the
// minterms (as leaf-indexed bit vectors) on which the cone output equals
// `polarity`. Returns nullopt when the on-set exceeds `limit` (the fault is
// then too expensive to restore) or the cut has more than 20 leaves.
std::optional<std::vector<uint64_t>> EnumerateConeMinterms(const Netlist& nl,
                                                           const Cut& cut,
                                                           bool polarity,
                                                           size_t limit);

// Compacts minterms into a small prime-cube cover (exact cover of exactly
// the given minterm set; cubes never cover anything outside it).
std::vector<Cube> MintermsToCubes(const std::vector<uint64_t>& minterms,
                                  size_t num_vars);

// Verification helper: true iff the cube list covers exactly `minterms`
// over a space of `num_vars` variables.
bool CubesCoverExactly(const std::vector<Cube>& cubes,
                       const std::vector<uint64_t>& minterms, size_t num_vars);

}  // namespace splitlock::atpg
