#include "atpg/cut.hpp"

#include <limits>
#include <set>
#include <unordered_set>

namespace splitlock::atpg {
namespace {

// A net can be expanded (replaced by its driver's fanins) when its driver
// is plain logic. Constants expand to zero leaves.
bool Expandable(const Netlist& nl, NetId n) {
  const GateId d = nl.DriverOf(n);
  if (d == kNullId) return false;
  const Gate& g = nl.gate(d);
  if (g.HasFlag(kFlagDontTouch)) return false;
  switch (g.op) {
    case GateOp::kInput:
    case GateOp::kKeyIn:
    case GateOp::kDeleted:
      return false;
    default:
      return true;
  }
}

}  // namespace

Cut ExtractCut(const Netlist& nl, NetId root, size_t max_leaves) {
  Cut failed;
  if (!Expandable(nl, root)) return failed;

  // Seed the frontier with the root driver's fanins (the trivial cut), then
  // greedily expand the leaf whose expansion grows the frontier least,
  // while the bound holds. std::set keeps iteration deterministic.
  std::set<NetId> frontier;
  for (NetId f : nl.gate(nl.DriverOf(root)).fanins) frontier.insert(f);
  if (frontier.size() > max_leaves) return failed;

  for (;;) {
    NetId best = kNullId;
    int best_growth = std::numeric_limits<int>::max();
    for (NetId n : frontier) {
      if (!Expandable(nl, n)) continue;
      const Gate& d = nl.gate(nl.DriverOf(n));
      int growth = -1;  // n itself leaves the frontier
      for (NetId f : d.fanins) {
        if (frontier.count(f) == 0 && f != n) ++growth;
      }
      if (growth < best_growth) {
        best_growth = growth;
        best = n;
      }
    }
    if (best == kNullId) break;
    if (frontier.size() + best_growth > max_leaves) break;
    const Gate& d = nl.gate(nl.DriverOf(best));
    frontier.erase(best);
    for (NetId f : d.fanins) frontier.insert(f);
  }
  if (frontier.size() > max_leaves) return failed;

  Cut cut;
  cut.root = root;
  cut.leaves.assign(frontier.begin(), frontier.end());

  // Collect cone gates: DFS from the root's driver, stopping at leaves.
  std::unordered_set<NetId> leaf_set(cut.leaves.begin(), cut.leaves.end());
  std::unordered_set<GateId> cone_set;
  std::vector<GateId> stack{nl.DriverOf(root)};
  while (!stack.empty()) {
    const GateId g = stack.back();
    stack.pop_back();
    if (cone_set.count(g) != 0) continue;
    cone_set.insert(g);
    for (NetId n : nl.gate(g).fanins) {
      if (leaf_set.count(n) != 0) continue;
      const GateId d = nl.DriverOf(n);
      if (d != kNullId) stack.push_back(d);
    }
  }
  // Topo-sort the cone using the global order.
  cut.cone.reserve(cone_set.size());
  for (GateId g : nl.TopoOrder()) {
    if (cone_set.count(g) != 0) cut.cone.push_back(g);
  }
  return cut;
}

Cut CutFromCone(const Netlist& nl, NetId root,
                std::span<const GateId> cone_gates, size_t max_leaves) {
  Cut failed;
  if (cone_gates.empty()) return failed;
  std::unordered_set<GateId> cone_set(cone_gates.begin(), cone_gates.end());
  if (cone_set.count(nl.DriverOf(root)) == 0) return failed;

  std::set<NetId> leaves;
  for (GateId g : cone_gates) {
    for (NetId n : nl.gate(g).fanins) {
      const GateId d = nl.DriverOf(n);
      if (d == kNullId || cone_set.count(d) == 0) leaves.insert(n);
    }
  }
  if (leaves.empty() || leaves.size() > max_leaves) return failed;

  Cut cut;
  cut.root = root;
  cut.leaves.assign(leaves.begin(), leaves.end());
  cut.cone.reserve(cone_gates.size());
  for (GateId g : nl.TopoOrder()) {
    if (cone_set.count(g) != 0) cut.cone.push_back(g);
  }
  return cut;
}

}  // namespace splitlock::atpg
