// K-feasible cut extraction.
//
// For a target net n, finds a small set of support nets (the *cut*) such
// that the logic between the cut and n (the *cone*) computes n as a function
// of only the cut nets. The locking flow uses the cut as the "module inputs"
// against which failing patterns are enumerated (Sec. III-A / Fig. 4), and
// the cone to bound where fault effects must be analyzed.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "netlist/netlist.hpp"

namespace splitlock::atpg {

struct Cut {
  NetId root = kNullId;
  std::vector<NetId> leaves;   // support nets, deterministic order
  std::vector<GateId> cone;    // gates strictly between leaves and root
                               // (including the root's driver), topo order
};

// Attempts to find a cut of `root` with at most `max_leaves` leaves by
// frontier expansion (expanding the leaf whose driver reduces or least
// increases the frontier). Returns a cut with leaves.size() <= max_leaves,
// or an empty optional-like cut (leaves empty, root == kNullId) on failure.
Cut ExtractCut(const Netlist& nl, NetId root, size_t max_leaves);

// Builds the cut whose cone is exactly the given gate set (e.g. an MFFC):
// the leaves are the nets feeding the cone from outside. This is the
// natural module boundary for fault-injection locking — the removed logic
// and the comparator support coincide, keeping failing-pattern sets
// compact. Fails (root == kNullId) when the cone needs more than
// `max_leaves` external nets or does not actually drive `root`.
Cut CutFromCone(const Netlist& nl, NetId root,
                std::span<const GateId> cone_gates, size_t max_leaves);

}  // namespace splitlock::atpg
