#include "atpg/fault.hpp"

#include <map>
#include <set>

namespace splitlock::atpg {
namespace {

bool FaultableNet(const Netlist& nl, NetId n) {
  const GateId d = nl.DriverOf(n);
  if (d == kNullId) return false;
  switch (nl.gate(d).op) {
    case GateOp::kDeleted:
    case GateOp::kConst0:
    case GateOp::kConst1:
      return false;
    default:
      return !nl.net(n).sinks.empty();
  }
}

}  // namespace

std::string FaultName(const Netlist& nl, const Fault& f) {
  return nl.net(f.net).name + (f.stuck_at ? "/sa1" : "/sa0");
}

std::vector<Fault> EnumerateStemFaults(const Netlist& nl) {
  std::vector<Fault> faults;
  for (NetId n = 0; n < nl.NumNets(); ++n) {
    if (!FaultableNet(nl, n)) continue;
    faults.push_back(Fault{n, false});
    faults.push_back(Fault{n, true});
  }
  return faults;
}

std::vector<Fault> CollapseFaults(const Netlist& nl,
                                  const std::vector<Fault>& faults) {
  // Union-find over (net, polarity) pairs keyed as 2*net + polarity.
  std::map<uint64_t, uint64_t> parent;
  auto find = [&](uint64_t x) {
    while (parent.count(x) != 0 && parent[x] != x) x = parent[x];
    return x;
  };
  auto unite = [&](uint64_t a, uint64_t b) {
    a = find(a);
    b = find(b);
    if (parent.count(a) == 0) parent[a] = a;
    if (parent.count(b) == 0) parent[b] = b;
    parent[std::max(a, b)] = std::min(a, b);
  };
  auto key = [](NetId n, bool sa) { return 2ULL * n + (sa ? 1 : 0); };

  for (GateId g = 0; g < nl.NumGates(); ++g) {
    const Gate& gate = nl.gate(g);
    if (gate.op == GateOp::kDeleted || gate.out == kNullId) continue;
    // Only apply the single-sink rules when the gate's inputs are not
    // fanout stems (the classical structural-equivalence precondition).
    auto single_sink = [&](NetId n) { return nl.net(n).sinks.size() == 1; };
    switch (gate.op) {
      case GateOp::kBuf:
        if (single_sink(gate.fanins[0])) {
          unite(key(gate.fanins[0], false), key(gate.out, false));
          unite(key(gate.fanins[0], true), key(gate.out, true));
        }
        break;
      case GateOp::kInv:
        if (single_sink(gate.fanins[0])) {
          unite(key(gate.fanins[0], false), key(gate.out, true));
          unite(key(gate.fanins[0], true), key(gate.out, false));
        }
        break;
      case GateOp::kAnd:
      case GateOp::kNand: {
        const bool out_pol = gate.op == GateOp::kNand;
        for (NetId n : gate.fanins) {
          // input s-a-0 == output s-a-(controlled value)
          if (single_sink(n)) unite(key(n, false), key(gate.out, out_pol));
        }
        break;
      }
      case GateOp::kOr:
      case GateOp::kNor: {
        const bool out_pol = gate.op == GateOp::kNor;
        for (NetId n : gate.fanins) {
          if (single_sink(n)) unite(key(n, true), key(gate.out, !out_pol));
        }
        break;
      }
      default:
        break;
    }
  }

  std::set<uint64_t> representatives;
  std::vector<Fault> out;
  for (const Fault& f : faults) {
    const uint64_t rep = find(key(f.net, f.stuck_at));
    if (representatives.insert(rep).second) out.push_back(f);
  }
  return out;
}

}  // namespace splitlock::atpg
