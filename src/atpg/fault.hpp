// Single stuck-at fault model.
//
// Faults are modeled on net stems (the output net of a gate or a primary
// input). Equivalence-based collapsing shrinks the fault list using the
// classical gate-local rules (e.g. any input s-a-0 of an AND is equivalent
// to its output s-a-0; BUF/INV chains transport faults).
#pragma once

#include <string>
#include <vector>

#include "netlist/netlist.hpp"

namespace splitlock::atpg {

struct Fault {
  NetId net = kNullId;
  bool stuck_at = false;  // value the net is stuck at

  friend bool operator==(const Fault&, const Fault&) = default;
};

std::string FaultName(const Netlist& nl, const Fault& f);

// All stem faults (two per live, logic-relevant net).
std::vector<Fault> EnumerateStemFaults(const Netlist& nl);

// Equivalence-collapsed representative set.
std::vector<Fault> CollapseFaults(const Netlist& nl,
                                  const std::vector<Fault>& faults);

}  // namespace splitlock::atpg
