#include "atpg/fault_sim.hpp"

#include <algorithm>
#include <bit>
#include <cassert>

#include "exec/parallel.hpp"
#include "exec/stream_rng.hpp"
#include "util/lanes.hpp"

namespace splitlock::atpg {

SimTopology::SimTopology(const Netlist& nl)
    : topo(nl.TopoOrder()),
      topo_pos(nl.NumGates(), 0),
      level(nl.NumGates(), 0),
      fanout_offset(nl.NumNets() + 1, 0),
      net_observed(nl.NumNets(), 0) {
  for (uint32_t i = 0; i < topo.size(); ++i) topo_pos[topo[i]] = i;

  // Levels: sources sit at 0, every other gate one past its deepest fanin.
  for (GateId g : topo) {
    const Gate& gate = nl.gate(g);
    uint32_t lvl = 0;
    for (NetId n : gate.fanins) {
      lvl = std::max(lvl, level[nl.DriverOf(n)] + 1);
    }
    level[g] = lvl;
    num_levels = std::max(num_levels, lvl + 1);
  }

  // CSR fanout over evaluatable sinks. kOutput observers never propagate
  // further; they are folded into net_observed so DetectMask can accumulate
  // detection the moment an observed net is touched.
  for (NetId n = 0; n < nl.NumNets(); ++n) {
    for (const Pin& p : nl.net(n).sinks) {
      const GateOp op = nl.gate(p.gate).op;
      if (op == GateOp::kOutput) {
        net_observed[n] = 1;
      } else if (op != GateOp::kDeleted) {
        ++fanout_offset[n + 1];
      }
    }
  }
  for (NetId n = 0; n < nl.NumNets(); ++n) {
    fanout_offset[n + 1] += fanout_offset[n];
  }
  fanout_gates.resize(fanout_offset.back());
  std::vector<uint32_t> fill(fanout_offset.begin(), fanout_offset.end() - 1);
  for (NetId n = 0; n < nl.NumNets(); ++n) {
    for (const Pin& p : nl.net(n).sinks) {
      const GateOp op = nl.gate(p.gate).op;
      if (op != GateOp::kOutput && op != GateOp::kDeleted) {
        fanout_gates[fill[n]++] = p.gate;
      }
    }
  }
}

FaultSimulator::FaultSimulator(const Netlist& nl)
    : nl_(&nl),
      owned_topo_(std::make_unique<SimTopology>(nl)),
      topo_(owned_topo_.get()),
      good_(nl.NumNets(), 0),
      faulty_(nl.NumNets(), 0),
      touched_flag_(nl.NumNets(), 0),
      scheduled_(nl.NumGates(), 0),
      buckets_(topo_->num_levels) {}

FaultSimulator::FaultSimulator(const Netlist& nl, const SimTopology& topo)
    : nl_(&nl),
      topo_(&topo),
      good_(nl.NumNets(), 0),
      faulty_(nl.NumNets(), 0),
      touched_flag_(nl.NumNets(), 0),
      scheduled_(nl.NumGates(), 0),
      buckets_(topo.num_levels) {}

void FaultSimulator::LoadPatterns(std::span<const uint64_t> pi_words) {
  assert(pi_words.size() == nl_->inputs().size());
  for (size_t i = 0; i < pi_words.size(); ++i) {
    good_[nl_->gate(nl_->inputs()[i]).out] = pi_words[i];
  }
  uint64_t fanin_words[kMaxFanin];
  for (GateId g : topo_->topo) {
    const Gate& gate = nl_->gate(g);
    switch (gate.op) {
      case GateOp::kInput:
      case GateOp::kKeyIn:  // key inputs default to 0 unless preloaded
      case GateOp::kOutput:
      case GateOp::kDeleted:
        continue;
      default:
        break;
    }
    const size_t n = gate.fanins.size();
    for (size_t i = 0; i < n; ++i) fanin_words[i] = good_[gate.fanins[i]];
    good_[gate.out] =
        EvalGateWord(gate.op, std::span<const uint64_t>(fanin_words, n));
  }
}

void FaultSimulator::LoadRandomPatterns(Rng& rng) {
  std::vector<uint64_t> words(nl_->inputs().size());
  for (uint64_t& w : words) w = rng.NextWord();
  LoadPatterns(words);
}

uint64_t FaultSimulator::DetectMask(const Fault& fault) const {
  last_evals_ = 0;
  // Lanes where the good value already equals the stuck value cannot be
  // affected; if that is all lanes, nothing propagates.
  const uint64_t forced = fault.stuck_at ? ~0ULL : 0ULL;
  if ((good_[fault.net] ^ forced) == 0) return 0;

  const SimTopology& st = *topo_;
  uint64_t detect = 0;
  size_t pending = 0;
  uint32_t min_level = st.num_levels;
  uint32_t max_level = 0;

  const auto touch = [&](NetId net, uint64_t value) {
    faulty_[net] = value;
    touched_flag_[net] = 1;
    touched_.push_back(net);
    if (st.net_observed[net]) detect |= good_[net] ^ value;
    for (uint32_t i = st.fanout_offset[net]; i < st.fanout_offset[net + 1];
         ++i) {
      const GateId g = st.fanout_gates[i];
      if (scheduled_[g]) continue;
      scheduled_[g] = 1;
      const uint32_t lvl = st.level[g];
      buckets_[lvl].push_back(g);
      ++pending;
      min_level = std::min(min_level, lvl);
      max_level = std::max(max_level, lvl);
    }
  };
  touch(fault.net, forced);

  uint64_t fanin_words[kMaxFanin];
  for (uint32_t lvl = min_level; pending > 0 && lvl <= max_level; ++lvl) {
    std::vector<GateId>& bucket = buckets_[lvl];
    // Scheduled sinks always land at strictly higher levels, so this
    // bucket cannot grow while it is being drained.
    for (size_t bi = 0; bi < bucket.size(); ++bi) {
      const GateId g = bucket[bi];
      scheduled_[g] = 0;
      --pending;
      const Gate& gate = nl_->gate(g);
      const size_t n = gate.fanins.size();
      for (size_t k = 0; k < n; ++k) {
        const NetId fn = gate.fanins[k];
        fanin_words[k] = touched_flag_[fn] ? faulty_[fn] : good_[fn];
      }
      const uint64_t v =
          EvalGateWord(gate.op, std::span<const uint64_t>(fanin_words, n));
      ++last_evals_;
      const NetId out = gate.out;
      assert(out != fault.net && "fault-site driver cannot be re-triggered");
      // Level order finalizes every fanin before its sinks run, so each
      // gate is evaluated at most once per fault and `out` is untouched
      // here: the frontier dies at this gate iff v matches the good value.
      if (v != good_[out]) touch(out, v);
    }
    bucket.clear();
    if (detect == ~0ULL && pending > 0) {
      // Every lane already detects; further propagation cannot change the
      // mask. Unschedule the remaining frontier instead of running it.
      for (uint32_t l = lvl + 1; l <= max_level; ++l) {
        for (GateId g : buckets_[l]) scheduled_[g] = 0;
        buckets_[l].clear();
      }
      pending = 0;
    }
  }

  for (NetId n : touched_) touched_flag_[n] = 0;
  touched_.clear();
  return detect;
}

uint64_t FaultSimulator::DetectMaskFull(const Fault& fault) const {
  last_evals_ = 0;
  const uint64_t forced = fault.stuck_at ? ~0ULL : 0ULL;
  const uint64_t excited = good_[fault.net] ^ forced;
  if (excited == 0) return 0;

  // Re-evaluate every gate topologically at or after the fault site,
  // seeding from the forced net. Copy-on-touch into the faulty_ scratch.
  faulty_ = good_;
  faulty_[fault.net] = forced;
  const GateId origin = nl_->DriverOf(fault.net);
  const uint32_t start = origin == kNullId ? 0 : topo_->topo_pos[origin] + 1;

  uint64_t fanin_words[kMaxFanin];
  for (uint32_t i = start; i < topo_->topo.size(); ++i) {
    const Gate& gate = nl_->gate(topo_->topo[i]);
    switch (gate.op) {
      case GateOp::kInput:
      case GateOp::kKeyIn:
      case GateOp::kOutput:
      case GateOp::kDeleted:
        continue;
      default:
        break;
    }
    if (gate.out == fault.net) continue;  // keep the forced value
    const size_t n = gate.fanins.size();
    for (size_t k = 0; k < n; ++k) fanin_words[k] = faulty_[gate.fanins[k]];
    faulty_[gate.out] =
        EvalGateWord(gate.op, std::span<const uint64_t>(fanin_words, n));
    ++last_evals_;
  }

  uint64_t detect = 0;
  for (GateId g : nl_->outputs()) {
    const NetId n = nl_->gate(g).fanins[0];
    detect |= good_[n] ^ faulty_[n];
  }
  return detect;
}

namespace {

// Tile shape for the (fault-block x word-shard) grid. The shape only
// affects scheduling, never results: detection is an OR (and counts a sum)
// over independent (fault, word) cells.
constexpr size_t kFaultsPerBlock = 256;
constexpr size_t kWordsPerShard = 16;

// Runs `visit(fault_index, detect_mask)` for every (fault, word) cell of
// the grid, sharded across the pool. Stimulus for word w comes from the
// counter-based stream (seed, kStimulus, w); the final word's dead lanes
// are masked out. `fold` merges one tile's partial into the global
// accumulator and is invoked sequentially in tile order. All tiles share
// one read-only SimTopology so per-tile setup is O(nets), not O(circuit
// traversal).
template <typename Partial, typename Tile, typename Fold>
void ShardedFaultSweep(const Netlist& nl, const std::vector<Fault>& faults,
                       uint64_t patterns, uint64_t seed, const Tile& tile,
                       const Fold& fold) {
  const uint64_t words = (patterns + 63) / 64;
  if (words == 0 || faults.empty()) return;
  const SimTopology topo(nl);
  const size_t fault_blocks = exec::NumChunks(faults.size(), kFaultsPerBlock);
  const size_t word_shards =
      exec::NumChunks(static_cast<size_t>(words), kWordsPerShard);
  const size_t tiles = fault_blocks * word_shards;
  std::vector<Partial> partials(tiles);
  exec::ParallelFor(tiles, 1, [&](size_t lo, size_t hi) {
    for (size_t t = lo; t < hi; ++t) {
      const size_t fb = t / word_shards;
      const size_t ws = t % word_shards;
      const size_t f_lo = fb * kFaultsPerBlock;
      const size_t f_hi = std::min(faults.size(), f_lo + kFaultsPerBlock);
      const uint64_t w_lo = ws * kWordsPerShard;
      const uint64_t w_hi =
          std::min<uint64_t>(words, w_lo + kWordsPerShard);
      FaultSimulator sim(nl, topo);
      std::vector<uint64_t> stimulus(nl.inputs().size());
      Partial& partial = partials[t];
      for (uint64_t w = w_lo; w < w_hi; ++w) {
        exec::StreamRng rng(seed, exec::StreamDomain::kStimulus, w);
        for (uint64_t& word : stimulus) word = rng.NextWord();
        sim.LoadPatterns(stimulus);
        tile(partial, sim, f_lo, f_hi, LaneMaskForWord(w, words, patterns));
      }
    }
  });
  for (size_t t = 0; t < tiles; ++t) {
    const size_t fb = t / word_shards;
    fold(partials[t], fb * kFaultsPerBlock);
  }
}

}  // namespace

CoverageResult FaultCoverage(const Netlist& nl,
                             const std::vector<Fault>& faults,
                             uint64_t patterns, uint64_t seed) {
  // Tile partial: one detected-bit per fault in the block.
  std::vector<uint8_t> detected(faults.size(), 0);
  ShardedFaultSweep<std::vector<uint8_t>>(
      nl, faults, patterns, seed,
      [&](std::vector<uint8_t>& partial, const FaultSimulator& sim,
          size_t f_lo, size_t f_hi, uint64_t lane_mask) {
        if (partial.empty()) partial.assign(f_hi - f_lo, 0);
        for (size_t f = f_lo; f < f_hi; ++f) {
          if (partial[f - f_lo]) continue;  // already detected in this tile
          if ((sim.DetectMask(faults[f]) & lane_mask) != 0) {
            partial[f - f_lo] = 1;
          }
        }
      },
      [&](const std::vector<uint8_t>& partial, size_t f_lo) {
        for (size_t i = 0; i < partial.size(); ++i) {
          detected[f_lo + i] |= partial[i];
        }
      });
  CoverageResult r;
  r.total_faults = faults.size();
  for (uint8_t d : detected) r.detected += d ? 1 : 0;
  return r;
}

std::vector<uint64_t> DetectionProfile(const Netlist& nl,
                                       const std::vector<Fault>& faults,
                                       uint64_t patterns, uint64_t seed) {
  std::vector<uint64_t> counts(faults.size(), 0);
  ShardedFaultSweep<std::vector<uint64_t>>(
      nl, faults, patterns, seed,
      [&](std::vector<uint64_t>& partial, const FaultSimulator& sim,
          size_t f_lo, size_t f_hi, uint64_t lane_mask) {
        if (partial.empty()) partial.assign(f_hi - f_lo, 0);
        for (size_t f = f_lo; f < f_hi; ++f) {
          partial[f - f_lo] +=
              std::popcount(sim.DetectMask(faults[f]) & lane_mask);
        }
      },
      [&](const std::vector<uint64_t>& partial, size_t f_lo) {
        for (size_t i = 0; i < partial.size(); ++i) {
          counts[f_lo + i] += partial[i];
        }
      });
  return counts;
}

}  // namespace splitlock::atpg
