#include "atpg/fault_sim.hpp"

#include <algorithm>
#include <bit>
#include <cassert>

#include "exec/parallel.hpp"
#include "exec/stream_rng.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/lanes.hpp"

namespace splitlock::atpg {
namespace {

// W-word gate evaluation over contiguous SoA rows, with tight specialized
// loops for the common shapes (mirrors Simulator::RunBatch): each case is a
// straight-line pass over `width` contiguous words that vectorizes.
inline void EvalGateWide(GateOp op, const uint64_t* const* fan, size_t n,
                         size_t width, uint64_t* out) {
  if (n == 2) {
    const uint64_t* a = fan[0];
    const uint64_t* b = fan[1];
    switch (op) {
      case GateOp::kAnd:
        for (size_t w = 0; w < width; ++w) out[w] = a[w] & b[w];
        return;
      case GateOp::kNand:
        for (size_t w = 0; w < width; ++w) out[w] = ~(a[w] & b[w]);
        return;
      case GateOp::kOr:
        for (size_t w = 0; w < width; ++w) out[w] = a[w] | b[w];
        return;
      case GateOp::kNor:
        for (size_t w = 0; w < width; ++w) out[w] = ~(a[w] | b[w]);
        return;
      case GateOp::kXor:
        for (size_t w = 0; w < width; ++w) out[w] = a[w] ^ b[w];
        return;
      case GateOp::kXnor:
        for (size_t w = 0; w < width; ++w) out[w] = ~(a[w] ^ b[w]);
        return;
      default:
        break;
    }
  } else if (n == 1) {
    const uint64_t* a = fan[0];
    if (op == GateOp::kBuf) {
      for (size_t w = 0; w < width; ++w) out[w] = a[w];
      return;
    }
    if (op == GateOp::kInv) {
      for (size_t w = 0; w < width; ++w) out[w] = ~a[w];
      return;
    }
  } else if (n == 3 && op == GateOp::kMux) {
    const uint64_t* s = fan[0];
    const uint64_t* a = fan[1];
    const uint64_t* b = fan[2];
    for (size_t w = 0; w < width; ++w) {
      out[w] = (s[w] & b[w]) | (~s[w] & a[w]);
    }
    return;
  }
  uint64_t fanin_words[kMaxFanin];
  for (size_t w = 0; w < width; ++w) {
    for (size_t i = 0; i < n; ++i) fanin_words[i] = fan[i][w];
    out[w] = EvalGateWord(op, std::span<const uint64_t>(fanin_words, n));
  }
}

}  // namespace

SimTopology::SimTopology(const Netlist& nl)
    : topo(nl.TopoOrder()),
      topo_pos(nl.NumGates(), 0),
      level(nl.NumGates(), 0),
      fanout_offset(nl.NumNets() + 1, 0),
      net_observed(nl.NumNets(), 0) {
  for (uint32_t i = 0; i < topo.size(); ++i) topo_pos[topo[i]] = i;

  // Levels: sources sit at 0, every other gate one past its deepest fanin.
  for (GateId g : topo) {
    const Gate& gate = nl.gate(g);
    uint32_t lvl = 0;
    for (NetId n : gate.fanins) {
      lvl = std::max(lvl, level[nl.DriverOf(n)] + 1);
    }
    level[g] = lvl;
    num_levels = std::max(num_levels, lvl + 1);
  }

  // CSR fanout over evaluatable sinks. kOutput observers never propagate
  // further; they are folded into net_observed so DetectMask can accumulate
  // detection the moment an observed net is touched.
  for (NetId n = 0; n < nl.NumNets(); ++n) {
    for (const Pin& p : nl.net(n).sinks) {
      const GateOp op = nl.gate(p.gate).op;
      if (op == GateOp::kOutput) {
        net_observed[n] = 1;
      } else if (op != GateOp::kDeleted) {
        ++fanout_offset[n + 1];
      }
    }
  }
  for (NetId n = 0; n < nl.NumNets(); ++n) {
    fanout_offset[n + 1] += fanout_offset[n];
  }
  fanout_gates.resize(fanout_offset.back());
  std::vector<uint32_t> fill(fanout_offset.begin(), fanout_offset.end() - 1);
  for (NetId n = 0; n < nl.NumNets(); ++n) {
    for (const Pin& p : nl.net(n).sinks) {
      const GateOp op = nl.gate(p.gate).op;
      if (op != GateOp::kOutput && op != GateOp::kDeleted) {
        fanout_gates[fill[n]++] = p.gate;
      }
    }
  }

  // Flattened evaluation records, one per gate (dead/source/output gates
  // get empty fanin ranges; they are never scheduled, so the uniform layout
  // costs nothing and keeps indexing branch-free).
  const GateId num_gates = static_cast<GateId>(nl.NumGates());
  eval_offset.assign(num_gates + 1, 0);
  eval_out.assign(num_gates, kNullId);
  eval_op.assign(num_gates, GateOp::kDeleted);
  for (GateId g = 0; g < num_gates; ++g) {
    const Gate& gate = nl.gate(g);
    eval_offset[g + 1] =
        eval_offset[g] + static_cast<uint32_t>(gate.fanins.size());
    eval_out[g] = gate.out;
    eval_op[g] = gate.op;
  }
  eval_fanins.resize(eval_offset.back());
  for (GateId g = 0; g < num_gates; ++g) {
    std::copy(nl.gate(g).fanins.begin(), nl.gate(g).fanins.end(),
              eval_fanins.begin() + eval_offset[g]);
  }
}

FaultSimulator::FaultSimulator(const Netlist& nl)
    : nl_(&nl),
      owned_topo_(std::make_unique<SimTopology>(nl)),
      topo_(owned_topo_.get()),
      good_(nl.NumNets(), 0),
      faulty_(nl.NumNets(), 0),
      touched_flag_(nl.NumNets(), 0),
      changed_wide_(nl.NumNets(), 0),
      wide_row_(nl.NumNets(), nullptr),
      scheduled_(nl.NumGates(), 0),
      sched_live_(nl.NumGates(), 0),
      buckets_(topo_->num_levels) {}

FaultSimulator::FaultSimulator(const Netlist& nl, const SimTopology& topo)
    : nl_(&nl),
      topo_(&topo),
      good_(nl.NumNets(), 0),
      faulty_(nl.NumNets(), 0),
      touched_flag_(nl.NumNets(), 0),
      changed_wide_(nl.NumNets(), 0),
      wide_row_(nl.NumNets(), nullptr),
      scheduled_(nl.NumGates(), 0),
      sched_live_(nl.NumGates(), 0),
      buckets_(topo.num_levels) {}

void FaultSimulator::LoadPatterns(std::span<const uint64_t> pi_words) {
  assert(pi_words.size() == nl_->inputs().size());
  for (size_t i = 0; i < pi_words.size(); ++i) {
    good_[nl_->gate(nl_->inputs()[i]).out] = pi_words[i];
  }
  uint64_t fanin_words[kMaxFanin];
  for (GateId g : topo_->topo) {
    const Gate& gate = nl_->gate(g);
    switch (gate.op) {
      case GateOp::kInput:
      case GateOp::kKeyIn:  // key inputs default to 0 unless preloaded
      case GateOp::kOutput:
      case GateOp::kDeleted:
        continue;
      default:
        break;
    }
    const size_t n = gate.fanins.size();
    for (size_t i = 0; i < n; ++i) fanin_words[i] = good_[gate.fanins[i]];
    good_[gate.out] =
        EvalGateWord(gate.op, std::span<const uint64_t>(fanin_words, n));
  }
}

void FaultSimulator::LoadRandomPatterns(Rng& rng) {
  std::vector<uint64_t> words(nl_->inputs().size());
  for (uint64_t& w : words) w = rng.NextWord();
  LoadPatterns(words);
}

void FaultSimulator::LoadPatternsWide(std::span<const uint64_t> pi_words,
                                      size_t width) {
  assert(width > 0 && width <= kMaxSweepWords);
  assert(pi_words.size() == nl_->inputs().size() * width);
  wide_width_ = width;
  // Zero-fill covers undriven nets and key inputs (which default to 0,
  // matching LoadPatterns); every other net is overwritten by the sweep.
  good_wide_.assign(nl_->NumNets() * width, 0);
  const std::vector<GateId>& pis = nl_->inputs();
  for (size_t i = 0; i < pis.size(); ++i) {
    std::copy_n(pi_words.data() + i * width, width,
                good_wide_.begin() + nl_->gate(pis[i]).out * width);
  }
  const uint64_t* fan[kMaxFanin];
  for (GateId g : topo_->topo) {
    const Gate& gate = nl_->gate(g);
    switch (gate.op) {
      case GateOp::kInput:
      case GateOp::kKeyIn:
      case GateOp::kOutput:
      case GateOp::kDeleted:
        continue;
      default:
        break;
    }
    const size_t n = gate.fanins.size();
    for (size_t k = 0; k < n; ++k) {
      fan[k] = good_wide_.data() + gate.fanins[k] * width;
    }
    EvalGateWide(gate.op, fan, n, width,
                 good_wide_.data() + gate.out * width);
  }
  // Pre-size the overlay arena for the worst case (every net touched) so
  // rows handed out during a sweep never move, and point every net's
  // current row at its good row; DetectMasks retargets touched nets to
  // arena rows and restores them on its reset walk.
  wide_arena_.resize(nl_->NumNets() * width);
  const NetId num_nets = static_cast<NetId>(nl_->NumNets());
  for (NetId n = 0; n < num_nets; ++n) {
    wide_row_[n] = good_wide_.data() + n * width;
  }
}

void FaultSimulator::LoadRandomPatternsWide(Rng& rng, size_t width) {
  // (word, input) draw order: word w's stimulus is exactly what the w-th
  // consecutive LoadRandomPatterns call would have drawn, so wide sweeps
  // are directly comparable to per-word sweeps from the same Rng state.
  std::vector<uint64_t> words(nl_->inputs().size() * width);
  for (size_t w = 0; w < width; ++w) {
    for (size_t i = 0; i < nl_->inputs().size(); ++i) {
      words[i * width + w] = rng.NextWord();
    }
  }
  LoadPatternsWide(words, width);
}

uint64_t FaultSimulator::DetectMask(const Fault& fault) const {
  last_evals_ = 0;
  last_visits_ = 0;
  // Lanes where the good value already equals the stuck value cannot be
  // affected; if that is all lanes, nothing propagates.
  const uint64_t forced = fault.stuck_at ? ~0ULL : 0ULL;
  if ((good_[fault.net] ^ forced) == 0) return 0;

  const SimTopology& st = *topo_;
  uint64_t detect = 0;
  size_t pending = 0;
  uint32_t min_level = st.num_levels;
  uint32_t max_level = 0;

  const auto touch = [&](NetId net, uint64_t value) {
    faulty_[net] = value;
    touched_flag_[net] = 1;
    touched_.push_back(net);
    if (st.net_observed[net]) detect |= good_[net] ^ value;
    for (uint32_t i = st.fanout_offset[net]; i < st.fanout_offset[net + 1];
         ++i) {
      const GateId g = st.fanout_gates[i];
      if (scheduled_[g]) continue;
      scheduled_[g] = 1;
      const uint32_t lvl = st.level[g];
      buckets_[lvl].push_back(g);
      ++pending;
      min_level = std::min(min_level, lvl);
      max_level = std::max(max_level, lvl);
    }
  };
  touch(fault.net, forced);

  uint64_t fanin_words[kMaxFanin];
  for (uint32_t lvl = min_level; pending > 0 && lvl <= max_level; ++lvl) {
    std::vector<GateId>& bucket = buckets_[lvl];
    // Scheduled sinks always land at strictly higher levels, so this
    // bucket cannot grow while it is being drained.
    for (size_t bi = 0; bi < bucket.size(); ++bi) {
      const GateId g = bucket[bi];
      scheduled_[g] = 0;
      --pending;
      const Gate& gate = nl_->gate(g);
      const size_t n = gate.fanins.size();
      for (size_t k = 0; k < n; ++k) {
        const NetId fn = gate.fanins[k];
        fanin_words[k] = touched_flag_[fn] ? faulty_[fn] : good_[fn];
      }
      const uint64_t v =
          EvalGateWord(gate.op, std::span<const uint64_t>(fanin_words, n));
      ++last_evals_;
      ++last_visits_;
      const NetId out = gate.out;
      assert(out != fault.net && "fault-site driver cannot be re-triggered");
      // Level order finalizes every fanin before its sinks run, so each
      // gate is evaluated at most once per fault and `out` is untouched
      // here: the frontier dies at this gate iff v matches the good value.
      if (v != good_[out]) touch(out, v);
    }
    bucket.clear();
    if (detect == ~0ULL && pending > 0) {
      // Every lane already detects; further propagation cannot change the
      // mask. Unschedule the remaining frontier instead of running it.
      for (uint32_t l = lvl + 1; l <= max_level; ++l) {
        for (GateId g : buckets_[l]) scheduled_[g] = 0;
        buckets_[l].clear();
      }
      pending = 0;
    }
  }

  for (NetId n : touched_) touched_flag_[n] = 0;
  touched_.clear();
  return detect;
}

void FaultSimulator::DetectMasks(const Fault& fault,
                                 std::span<uint64_t> out) const {
  const size_t width = wide_width_;
  assert(width > 0 && "LoadPatternsWide must run before DetectMasks");
  assert(out.size() == width);
  last_evals_ = 0;
  last_visits_ = 0;
  std::fill(out.begin(), out.end(), 0);
  const uint64_t forced = fault.stuck_at ? ~0ULL : 0ULL;
  const uint64_t* site = good_wide_.data() + fault.net * width;
  // Per-word excitation: only words where the good value differs from the
  // stuck value can propagate anything.
  uint32_t site_changed = 0;
  for (size_t w = 0; w < width; ++w) {
    if (site[w] != forced) site_changed |= 1u << w;
  }
  if (site_changed == 0) return;

  const SimTopology& st = *topo_;
  const uint32_t all_words = (1u << width) - 1;
  size_t pending = 0;
  uint32_t min_level = st.num_levels;
  uint32_t max_level = 0;
  // Words whose detect mask is already all-ones: they retire from the
  // sweep (dropped from every gate's live set), generalizing the
  // single-word all-lanes early exit per word.
  uint32_t done_words = 0;

  // Hands out the overlay row for a net about to be touched — the next
  // dense arena slot, in touch order — and retargets the net's current-row
  // pointer at it (LoadPatternsWide pre-sized the arena, so rows are
  // stable).
  const auto claim_row = [&](NetId net) -> uint64_t* {
    uint64_t* row = wide_arena_.data() + touched_.size() * width;
    wide_row_[net] = row;
    return row;
  };

  // The caller has claimed and written the net's overlay row and
  // changed_wide_ mask; record detection on the changed words and schedule
  // evaluatable sinks.
  const auto touch = [&](NetId net) {
    touched_flag_[net] = 1;
    touched_.push_back(net);
    if (st.net_observed[net]) {
      const uint64_t* fv = wide_row_[net];
      const uint64_t* gv = good_wide_.data() + net * width;
      for (uint32_t m = changed_wide_[net]; m != 0; m &= m - 1) {
        const size_t w = static_cast<size_t>(std::countr_zero(m));
        if (out[w] == ~0ULL) continue;
        out[w] |= gv[w] ^ fv[w];
        if (out[w] == ~0ULL) done_words |= 1u << w;
      }
    }
    // A net is touched at most once per sweep (single driver, gates pop at
    // most once), so `mask` is its final changed-word set: sched_live_[g]
    // accumulates the union of touched-fanin masks and doubles as the
    // scheduled flag (level order guarantees no touch after g pops).
    const uint8_t mask = changed_wide_[net];
    for (uint32_t i = st.fanout_offset[net]; i < st.fanout_offset[net + 1];
         ++i) {
      const GateId g = st.fanout_gates[i];
      uint8_t& live_acc = sched_live_[g];
      if (live_acc == 0) {
        const uint32_t lvl = st.level[g];
        buckets_[lvl].push_back(g);
        ++pending;
        min_level = std::min(min_level, lvl);
        max_level = std::max(max_level, lvl);
      }
      live_acc |= mask;
    }
  };
  std::fill_n(claim_row(fault.net), width, forced);
  changed_wide_[fault.net] = static_cast<uint8_t>(site_changed);
  touch(fault.net);

  const uint64_t* fan[kMaxFanin];
  uint64_t vals[kMaxSweepWords];
  for (uint32_t lvl = min_level; pending > 0 && lvl <= max_level; ++lvl) {
    std::vector<GateId>& bucket = buckets_[lvl];
    // Scheduled sinks always land at strictly higher levels, so this
    // bucket cannot grow while it is being drained.
    for (size_t bi = 0; bi < bucket.size(); ++bi) {
      const GateId g = bucket[bi];
      // Live words: words in which some fanin still differs from the good
      // machine (accumulated into sched_live_ as those fanins were
      // touched), minus retired (all-ones) words. Only these can change
      // the gate's output; a dead pop decides from this hot array alone,
      // never dereferencing the cold Gate record. GateEvals counts live
      // words — the per-word cones a narrow sweep would have walked —
      // though evaluation below always runs all `width` words: one column
      // of a row shares its cache line with the whole row, so the
      // contiguous vectorized pass costs no more memory traffic than a
      // gather and skips the per-column dispatch.
      const uint32_t live = sched_live_[g] & ~done_words;
      sched_live_[g] = 0;
      --pending;
      if (live == 0) continue;
      last_evals_ += static_cast<size_t>(std::popcount(live));
      ++last_visits_;
      const uint32_t fo = st.eval_offset[g];
      const size_t n = st.eval_offset[g + 1] - fo;
      const NetId* fanins = st.eval_fanins.data() + fo;
      if (bi + 1 < bucket.size() &&
          (sched_live_[bucket[bi + 1]] & ~done_words) != 0) {
        // The wide rows (one cache line each at width 8) blow the narrow
        // sweep's L1-resident working set; pull the next live bucket
        // entry's side-input and output rows in while this gate evaluates.
        const GateId ng = bucket[bi + 1];
        const uint32_t nfo = st.eval_offset[ng];
        const uint32_t nfe = st.eval_offset[ng + 1];
        for (uint32_t k = nfo; k < nfe; ++k) {
          __builtin_prefetch(good_wide_.data() + st.eval_fanins[k] * width);
        }
        __builtin_prefetch(good_wide_.data() + st.eval_out[ng] * width);
      }
      const NetId onet = st.eval_out[g];
      assert(onet != fault.net && "fault-site driver cannot be re-triggered");
      const uint64_t* gv = good_wide_.data() + onet * width;
      for (size_t k = 0; k < n; ++k) fan[k] = wide_row_[fanins[k]];
      // Evaluate into a stack row: most visits are frontier deaths, and
      // keeping those out of the arena avoids dirtying a cache line per
      // dead-end gate.
      EvalGateWide(st.eval_op[g], fan, n, width, vals);
      // Words outside `live` evaluate to their good value (their fanins all
      // equal the good machine there), except retired words, whose columns
      // may carry stale values — masking them out of out_changed keeps any
      // stale column inert: it is never read for detection (only changed
      // words are) and never counted live downstream.
      uint32_t out_changed = 0;
      for (size_t w = 0; w < width; ++w) {
        if (vals[w] != gv[w]) out_changed |= 1u << w;
      }
      out_changed &= ~done_words;
      // The frontier dies at this gate (for every live word) iff the output
      // matches the good machine in every live word.
      if (out_changed != 0) {
        std::copy_n(vals, width, claim_row(onet));
        changed_wide_[onet] = static_cast<uint8_t>(out_changed);
        touch(onet);
      }
    }
    bucket.clear();
    if (done_words == all_words && pending > 0) {
      // Every lane of every word already detects; further propagation
      // cannot change any mask. Unschedule the remaining frontier.
      for (uint32_t l = lvl + 1; l <= max_level; ++l) {
        for (GateId g : buckets_[l]) sched_live_[g] = 0;
        buckets_[l].clear();
      }
      pending = 0;
    }
  }

  for (NetId n : touched_) {
    touched_flag_[n] = 0;
    changed_wide_[n] = 0;
    wide_row_[n] = good_wide_.data() + n * width;
  }
  touched_.clear();
}

uint64_t FaultSimulator::DetectMaskFull(const Fault& fault) const {
  last_evals_ = 0;
  last_visits_ = 0;
  const uint64_t forced = fault.stuck_at ? ~0ULL : 0ULL;
  const uint64_t excited = good_[fault.net] ^ forced;
  if (excited == 0) return 0;

  // Re-evaluate every gate topologically at or after the fault site,
  // seeding from the forced net. Copy-on-touch into the faulty_ scratch.
  faulty_ = good_;
  faulty_[fault.net] = forced;
  const GateId origin = nl_->DriverOf(fault.net);
  const uint32_t start = origin == kNullId ? 0 : topo_->topo_pos[origin] + 1;

  uint64_t fanin_words[kMaxFanin];
  for (uint32_t i = start; i < topo_->topo.size(); ++i) {
    const Gate& gate = nl_->gate(topo_->topo[i]);
    switch (gate.op) {
      case GateOp::kInput:
      case GateOp::kKeyIn:
      case GateOp::kOutput:
      case GateOp::kDeleted:
        continue;
      default:
        break;
    }
    if (gate.out == fault.net) continue;  // keep the forced value
    const size_t n = gate.fanins.size();
    for (size_t k = 0; k < n; ++k) fanin_words[k] = faulty_[gate.fanins[k]];
    faulty_[gate.out] =
        EvalGateWord(gate.op, std::span<const uint64_t>(fanin_words, n));
    ++last_evals_;
    ++last_visits_;
  }

  uint64_t detect = 0;
  for (GateId g : nl_->outputs()) {
    const NetId n = nl_->gate(g).fanins[0];
    detect |= good_[n] ^ faulty_[n];
  }
  return detect;
}

namespace {

// Tile shape for the (fault-block x word-shard) grid. The shape only
// affects scheduling, never results: detection is an OR (and counts a sum)
// over independent (fault, word) cells.
constexpr size_t kFaultsPerBlock = 256;
constexpr size_t kWordsPerShard = 16;

// Shared across every ShardedFaultSweep instantiation — the registration
// must live outside the template or each instantiation would re-register
// the name (a hard error by the obs duplicate-name contract).
obs::Counter* SweepTileCounter() {
  static obs::Counter* c =
      obs::Registry::Instance().RegisterCounter("atpg.sweep.tiles");
  return c;
}

// Runs `tile(partial, sim, f_lo, f_hi, lane_masks)` for every (fault-block,
// word-group) cell of the grid, sharded across the pool. Words are loaded
// in groups of up to kMaxSweepWords via LoadPatternsWide, so one
// DetectMasks event sweep per fault covers the whole group; stimulus for
// word w still comes from the counter-based stream (seed, kStimulus, w), so
// the patterns — and therefore the per-word masks, and therefore the folded
// results — are bit-identical to the historical one-word-at-a-time sweep.
// lane_masks[i] masks the dead lanes of group word i (only the final word
// of the sweep can have any). `fold` merges one tile's partial into the
// global accumulator and is invoked sequentially in tile order. All tiles
// share one read-only SimTopology so per-tile setup is O(nets), not
// O(circuit traversal).
template <typename Partial, typename Tile, typename Fold>
void ShardedFaultSweep(const Netlist& nl, const std::vector<Fault>& faults,
                       uint64_t patterns, uint64_t seed, const Tile& tile,
                       const Fold& fold) {
  const uint64_t words = (patterns + 63) / 64;
  if (words == 0 || faults.empty()) return;
  const SimTopology topo(nl);
  const size_t fault_blocks = exec::NumChunks(faults.size(), kFaultsPerBlock);
  const size_t word_shards =
      exec::NumChunks(static_cast<size_t>(words), kWordsPerShard);
  const size_t tiles = fault_blocks * word_shards;
  // Tile count is a pure function of (faults, patterns) — NumChunks
  // ignores the worker count — so the counter is count-class.
  SweepTileCounter()->Add(tiles);
  std::vector<Partial> partials(tiles);
  exec::ParallelFor(tiles, 1, [&](size_t lo, size_t hi) {
    for (size_t t = lo; t < hi; ++t) {
      obs::Span tile_span("atpg.sweep.tile", t);
      const size_t fb = t / word_shards;
      const size_t ws = t % word_shards;
      const size_t f_lo = fb * kFaultsPerBlock;
      const size_t f_hi = std::min(faults.size(), f_lo + kFaultsPerBlock);
      const uint64_t w_lo = ws * kWordsPerShard;
      const uint64_t w_hi =
          std::min<uint64_t>(words, w_lo + kWordsPerShard);
      FaultSimulator sim(nl, topo);
      const size_t num_pis = nl.inputs().size();
      std::vector<uint64_t> stimulus(num_pis * kMaxSweepWords);
      uint64_t lane_masks[kMaxSweepWords];
      Partial& partial = partials[t];
      for (uint64_t base = w_lo; base < w_hi; base += kMaxSweepWords) {
        const size_t group =
            static_cast<size_t>(std::min<uint64_t>(kMaxSweepWords,
                                                   w_hi - base));
        for (size_t w = 0; w < group; ++w) {
          exec::StreamRng rng(seed, exec::StreamDomain::kStimulus, base + w);
          for (size_t i = 0; i < num_pis; ++i) {
            stimulus[i * group + w] = rng.NextWord();
          }
          lane_masks[w] = LaneMaskForWord(base + w, words, patterns);
        }
        sim.LoadPatternsWide(
            std::span<const uint64_t>(stimulus.data(), num_pis * group),
            group);
        tile(partial, sim, f_lo, f_hi,
             std::span<const uint64_t>(lane_masks, group));
      }
    }
  });
  for (size_t t = 0; t < tiles; ++t) {
    const size_t fb = t / word_shards;
    fold(partials[t], fb * kFaultsPerBlock);
  }
}

}  // namespace

CoverageResult FaultCoverage(const Netlist& nl,
                             const std::vector<Fault>& faults,
                             uint64_t patterns, uint64_t seed) {
  // Tile partial: one detected-bit per fault in the block.
  std::vector<uint8_t> detected(faults.size(), 0);
  ShardedFaultSweep<std::vector<uint8_t>>(
      nl, faults, patterns, seed,
      [&](std::vector<uint8_t>& partial, const FaultSimulator& sim,
          size_t f_lo, size_t f_hi, std::span<const uint64_t> lane_masks) {
        if (partial.empty()) partial.assign(f_hi - f_lo, 0);
        uint64_t masks[kMaxSweepWords];
        const std::span<uint64_t> out(masks, lane_masks.size());
        for (size_t f = f_lo; f < f_hi; ++f) {
          if (partial[f - f_lo]) continue;  // already detected in this tile
          sim.DetectMasks(faults[f], out);
          for (size_t w = 0; w < lane_masks.size(); ++w) {
            if ((masks[w] & lane_masks[w]) != 0) {
              partial[f - f_lo] = 1;
              break;
            }
          }
        }
      },
      [&](const std::vector<uint8_t>& partial, size_t f_lo) {
        for (size_t i = 0; i < partial.size(); ++i) {
          detected[f_lo + i] |= partial[i];
        }
      });
  CoverageResult r;
  r.total_faults = faults.size();
  for (uint8_t d : detected) r.detected += d ? 1 : 0;
  return r;
}

std::vector<uint64_t> DetectionProfile(const Netlist& nl,
                                       const std::vector<Fault>& faults,
                                       uint64_t patterns, uint64_t seed) {
  std::vector<uint64_t> counts(faults.size(), 0);
  ShardedFaultSweep<std::vector<uint64_t>>(
      nl, faults, patterns, seed,
      [&](std::vector<uint64_t>& partial, const FaultSimulator& sim,
          size_t f_lo, size_t f_hi, std::span<const uint64_t> lane_masks) {
        if (partial.empty()) partial.assign(f_hi - f_lo, 0);
        uint64_t masks[kMaxSweepWords];
        const std::span<uint64_t> out(masks, lane_masks.size());
        for (size_t f = f_lo; f < f_hi; ++f) {
          sim.DetectMasks(faults[f], out);
          uint64_t count = 0;
          for (size_t w = 0; w < lane_masks.size(); ++w) {
            count += std::popcount(masks[w] & lane_masks[w]);
          }
          partial[f - f_lo] += count;
        }
      },
      [&](const std::vector<uint64_t>& partial, size_t f_lo) {
        for (size_t i = 0; i < partial.size(); ++i) {
          counts[f_lo + i] += partial[i];
        }
      });
  return counts;
}

}  // namespace splitlock::atpg
