#include "atpg/fault_sim.hpp"

#include <cassert>

namespace splitlock::atpg {

FaultSimulator::FaultSimulator(const Netlist& nl)
    : nl_(&nl),
      topo_(nl.TopoOrder()),
      topo_pos_(nl.NumGates(), 0),
      good_(nl.NumNets(), 0),
      faulty_(nl.NumNets(), 0) {
  for (uint32_t i = 0; i < topo_.size(); ++i) topo_pos_[topo_[i]] = i;
}

void FaultSimulator::LoadPatterns(std::span<const uint64_t> pi_words) {
  assert(pi_words.size() == nl_->inputs().size());
  for (size_t i = 0; i < pi_words.size(); ++i) {
    good_[nl_->gate(nl_->inputs()[i]).out] = pi_words[i];
  }
  uint64_t fanin_words[4];
  for (GateId g : topo_) {
    const Gate& gate = nl_->gate(g);
    switch (gate.op) {
      case GateOp::kInput:
      case GateOp::kKeyIn:  // key inputs default to 0 unless preloaded
      case GateOp::kOutput:
      case GateOp::kDeleted:
        continue;
      default:
        break;
    }
    const size_t n = gate.fanins.size();
    for (size_t i = 0; i < n; ++i) fanin_words[i] = good_[gate.fanins[i]];
    good_[gate.out] =
        EvalGateWord(gate.op, std::span<const uint64_t>(fanin_words, n));
  }
}

void FaultSimulator::LoadRandomPatterns(Rng& rng) {
  std::vector<uint64_t> words(nl_->inputs().size());
  for (uint64_t& w : words) w = rng.NextWord();
  LoadPatterns(words);
}

uint64_t FaultSimulator::DetectMask(const Fault& fault) const {
  // Fast exit: lanes where the good value already equals the stuck value
  // cannot be affected; if that is all lanes, nothing propagates.
  const uint64_t forced = fault.stuck_at ? ~0ULL : 0ULL;
  const uint64_t excited = good_[fault.net] ^ forced;
  if (excited == 0) return 0;

  // Re-evaluate only gates topologically at or after the fault site,
  // seeding from the forced net. Copy-on-touch into the faulty_ scratch.
  faulty_ = good_;
  faulty_[fault.net] = forced;
  const GateId origin = nl_->DriverOf(fault.net);
  const uint32_t start = origin == kNullId ? 0 : topo_pos_[origin] + 1;

  uint64_t fanin_words[4];
  for (uint32_t i = start; i < topo_.size(); ++i) {
    const Gate& gate = nl_->gate(topo_[i]);
    switch (gate.op) {
      case GateOp::kInput:
      case GateOp::kKeyIn:
      case GateOp::kOutput:
      case GateOp::kDeleted:
        continue;
      default:
        break;
    }
    if (gate.out == fault.net) continue;  // keep the forced value
    const size_t n = gate.fanins.size();
    for (size_t k = 0; k < n; ++k) fanin_words[k] = faulty_[gate.fanins[k]];
    faulty_[gate.out] =
        EvalGateWord(gate.op, std::span<const uint64_t>(fanin_words, n));
  }

  uint64_t detect = 0;
  for (GateId g : nl_->outputs()) {
    const NetId n = nl_->gate(g).fanins[0];
    detect |= good_[n] ^ faulty_[n];
  }
  return detect;
}

CoverageResult FaultCoverage(const Netlist& nl,
                             const std::vector<Fault>& faults,
                             uint64_t patterns, uint64_t seed) {
  FaultSimulator sim(nl);
  Rng rng(seed);
  std::vector<bool> detected(faults.size(), false);
  const uint64_t words = (patterns + 63) / 64;
  for (uint64_t w = 0; w < words; ++w) {
    sim.LoadRandomPatterns(rng);
    for (size_t f = 0; f < faults.size(); ++f) {
      if (detected[f]) continue;
      if (sim.DetectMask(faults[f]) != 0) detected[f] = true;
    }
  }
  CoverageResult r;
  r.total_faults = faults.size();
  for (bool d : detected) r.detected += d ? 1 : 0;
  return r;
}

}  // namespace splitlock::atpg
