// 64-bit parallel-pattern stuck-at fault simulation.
//
// For a given fault, re-evaluates the downstream cone with the faulty net
// forced and reports the lane mask of patterns whose primary outputs differ
// from the good machine — i.e. the patterns that *detect* (fail under) the
// fault. Aggregate coverage sweeps support the test suite and the locking
// cost model.
//
// The aggregate sweeps (FaultCoverage, DetectionProfile) shard BOTH the
// fault list and the pattern words across the exec thread pool: the
// (fault-block x word-shard) grid is tiled, each tile simulates its words
// from counter-based stimulus streams keyed by (seed, word index) and
// OR/sum-folds per-fault results. Final results are bit-identical for a
// given seed at any thread count (and for any tile shape).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "atpg/fault.hpp"
#include "netlist/netlist.hpp"
#include "util/rng.hpp"

namespace splitlock::atpg {

class FaultSimulator {
 public:
  explicit FaultSimulator(const Netlist& nl);

  // Loads one 64-pattern word per primary input and simulates the good
  // machine.
  void LoadPatterns(std::span<const uint64_t> pi_words);

  // Random-pattern convenience wrapper for LoadPatterns.
  void LoadRandomPatterns(Rng& rng);

  // Lane mask of patterns (within the loaded word) detecting `fault` at any
  // primary output.
  uint64_t DetectMask(const Fault& fault) const;

  // Good-machine value of a net for the loaded word.
  uint64_t GoodValue(NetId net) const { return good_[net]; }

  const Netlist& netlist() const { return *nl_; }

 private:
  const Netlist* nl_;
  std::vector<GateId> topo_;
  std::vector<uint32_t> topo_pos_;  // gate -> index in topo_
  std::vector<uint64_t> good_;
  mutable std::vector<uint64_t> faulty_;  // scratch
};

struct CoverageResult {
  size_t total_faults = 0;
  size_t detected = 0;
  double CoveragePercent() const {
    return total_faults == 0 ? 0.0 : 100.0 * detected / total_faults;
  }
};

// Random-pattern fault coverage over `patterns` patterns, sharded across
// the exec thread pool. Lanes beyond `patterns` in the final word are
// masked out of detection.
CoverageResult FaultCoverage(const Netlist& nl,
                             const std::vector<Fault>& faults,
                             uint64_t patterns, uint64_t seed);

// Per-fault detection counts (number of the `patterns` random patterns that
// detect each fault) — the DetectMask sweep behind random-pattern
// testability profiles. Same sharding and determinism contract as
// FaultCoverage.
std::vector<uint64_t> DetectionProfile(const Netlist& nl,
                                       const std::vector<Fault>& faults,
                                       uint64_t patterns, uint64_t seed);

}  // namespace splitlock::atpg
