// 64-bit parallel-pattern stuck-at fault simulation.
//
// For a given fault, re-evaluates the downstream cone with the faulty net
// forced and reports the lane mask of patterns whose primary outputs differ
// from the good machine — i.e. the patterns that *detect* (fail under) the
// fault. Aggregate coverage sweeps support the test suite and the locking
// cost model.
//
// DetectMask is *event-driven*: starting from the fault site, only gates
// whose fanins actually changed are re-evaluated, in topological-level
// order, and the sweep exits early when the difference frontier dies before
// reaching a primary output. Faulty values live in a touched-net overlay on
// top of the good-machine values; the overlay is reset by walking the
// touched list, never by copying the whole net array. Work per fault is
// O(active fanout cone), not O(circuit). DetectMaskFull keeps the reference
// full-resimulation implementation for equivalence tests and benchmarks;
// both return bit-identical masks.
//
// DetectMasks is the *multi-word* form: LoadPatternsWide loads W words per
// primary input into structure-of-arrays good-value buffers (the W words of
// one net are contiguous), and a single levelized event sweep — one
// topology walk, one touched-list reset, one scheduling pass — then covers
// all W x 64 patterns for a fault at once. A gate joins the frontier when
// ANY of its W output words differs from the good machine, and the W-word
// inner loops are straight-line passes over contiguous memory that
// vectorize. Output is bit-identical to W independent DetectMask calls on
// the same per-word stimulus. W is capped at kMaxSweepWords.
//
// The aggregate sweeps (FaultCoverage, DetectionProfile) shard BOTH the
// fault list and the pattern words across the exec thread pool: the
// (fault-block x word-shard) grid is tiled, each tile loads its words in
// groups of up to kMaxSweepWords from counter-based stimulus streams keyed
// by (seed, word index) and issues ONE multi-word DetectMasks sweep per
// fault per group, OR/sum-folding per-fault results. All tiles share one
// immutable SimTopology (levels + fanout CSR), built once per sweep. Final
// results are bit-identical for a given seed at any thread count (and for
// any tile shape or sweep width), because per-word detect masks are.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "atpg/fault.hpp"
#include "netlist/netlist.hpp"
#include "util/rng.hpp"

namespace splitlock::atpg {

// Cap on the word width of one multi-word event sweep. Beyond ~8 words the
// live-word gate-evaluation cost dominates the once-per-sweep scheduling
// cost the batching amortizes, and the per-net changed-word masks would no
// longer fit a byte; sweeps over more words issue multiple groups.
inline constexpr size_t kMaxSweepWords = 8;

// Immutable levelized-fanout side table for event-driven simulation:
// topological order/positions, per-gate topological levels, and a CSR
// net -> evaluatable-sink-gates map (kOutput observers are folded into
// net_observed instead). Built once per netlist and shared read-only by
// every FaultSimulator of a sweep; the netlist must not change structurally
// while a SimTopology for it is in use.
struct SimTopology {
  explicit SimTopology(const Netlist& nl);

  std::vector<GateId> topo;       // live gates, sources first
  std::vector<uint32_t> topo_pos; // gate -> index in topo
  std::vector<uint32_t> level;    // gate -> topological level (sources = 0)
  uint32_t num_levels = 0;        // max level + 1
  std::vector<uint32_t> fanout_offset; // net -> CSR range [n, n+1)
  std::vector<GateId> fanout_gates;    // evaluatable sink gates per net
  std::vector<uint8_t> net_observed;   // net feeds at least one primary output

  // Flattened gate-evaluation records: everything a sweep needs to evaluate
  // gate g — op, output net, fanin nets — in three contiguous arrays. The
  // Gate records proper scatter each gate's fanin list (and name) across
  // the heap, costing a dependent cache miss per visited gate; the wide
  // sweep reads only this table on its hot path.
  std::vector<uint32_t> eval_offset;  // gate -> eval_fanins range [g, g+1)
  std::vector<NetId> eval_fanins;     // concatenated fanin nets
  std::vector<NetId> eval_out;        // gate -> output net
  std::vector<GateOp> eval_op;        // gate -> op
};

class FaultSimulator {
 public:
  // Builds (and owns) a private SimTopology.
  explicit FaultSimulator(const Netlist& nl);

  // Shares an externally owned SimTopology (must outlive the simulator).
  // Sweeps constructing many simulators over one netlist use this to pay
  // the O(circuit) topology cost once.
  FaultSimulator(const Netlist& nl, const SimTopology& topo);

  // Loads one 64-pattern word per primary input and simulates the good
  // machine.
  void LoadPatterns(std::span<const uint64_t> pi_words);

  // Random-pattern convenience wrapper for LoadPatterns.
  void LoadRandomPatterns(Rng& rng);

  // Loads `width` 64-pattern words per primary input (SoA layout:
  // pi_words[i * width + w] is word w of input i, 1 <= width <=
  // kMaxSweepWords) and simulates the good machine for all words in one
  // sweep. Enables DetectMasks; independent of the single-word state
  // loaded by LoadPatterns.
  void LoadPatternsWide(std::span<const uint64_t> pi_words, size_t width);

  // Random-pattern convenience wrapper for LoadPatternsWide; words are
  // drawn in (word, input) order.
  void LoadRandomPatternsWide(Rng& rng, size_t width);

  size_t sweep_width() const { return wide_width_; }

  // Lane mask of patterns (within the loaded word) detecting `fault` at any
  // primary output. Event-driven: O(active fanout cone) per call.
  uint64_t DetectMask(const Fault& fault) const;

  // Multi-word DetectMask: out[w] is the detect mask of word w of the
  // LoadPatternsWide stimulus (out.size() must equal sweep_width()). One
  // event-driven sweep covers all words: scheduling is shared (a gate runs
  // when ANY word's difference reaches it) but evaluation is per-word
  // sparse — each gate evaluates only the words whose difference is still
  // alive at it, and words whose detect mask is already all-ones retire
  // from the sweep. Bit-identical to sweep_width() independent DetectMask
  // calls.
  void DetectMasks(const Fault& fault, std::span<uint64_t> out) const;

  // Reference implementation of DetectMask: full linear re-simulation of
  // the topological suffix after the fault site. Bit-identical to
  // DetectMask; kept for equivalence tests and old-vs-new benchmarks.
  uint64_t DetectMaskFull(const Fault& fault) const;

  // Total gate evaluations performed by the most recent DetectMask /
  // DetectMasks / DetectMaskFull call, counted per evaluated (gate, word)
  // cell: a gate in a W-word DetectMasks sweep contributes one per word
  // still live at it (words whose difference died earlier, were never
  // excited, or whose detect mask is already all-ones are skipped). 0 when
  // the fault was not excited in any word. Instrumentation for the
  // early-exit tests and the kernel benchmarks; well-defined for
  // multi-word sweeps (the whole sweep's total, not any single word's).
  size_t GateEvals() const { return last_evals_; }

  // Scheduled-gate pops with at least one live word in the most recent
  // DetectMask / DetectMasks call (narrow sweeps visit once per eval).
  // Together with GateEvals this exposes the sharing factor of a wide
  // sweep: evals / visits = average live words per visited gate.
  size_t GateVisits() const { return last_visits_; }

  // Good-machine value of a net for the loaded word.
  uint64_t GoodValue(NetId net) const { return good_[net]; }

  // Good-machine value of a net for word `w` of the wide-loaded stimulus.
  uint64_t GoodValueWide(NetId net, size_t w) const {
    return good_wide_[net * wide_width_ + w];
  }

  const Netlist& netlist() const { return *nl_; }

 private:
  const Netlist* nl_;
  std::unique_ptr<SimTopology> owned_topo_;  // null when sharing
  const SimTopology* topo_;
  std::vector<uint64_t> good_;

  // Multi-word good machine (SoA: good_wide_[net * wide_width_ + w]);
  // sized by LoadPatternsWide. The faulty overlay for DetectMasks lives in
  // wide_arena_: touched nets' rows are handed out in touch order, so one
  // sweep's overlay is a dense cache-resident block no matter how large
  // the netlist is. wide_row_[n] always points at net n's current row —
  // its good row, or its arena row while touched (LoadPatternsWide sizes
  // the arena for the worst case up front, so rows never move) — making
  // the per-fanin row lookup on the sweep's hot path one load, no branch.
  size_t wide_width_ = 0;
  std::vector<uint64_t> good_wide_;
  mutable std::vector<uint64_t> wide_arena_;
  mutable std::vector<const uint64_t*> wide_row_;

  // Event-driven scratch, shared by the single- and multi-word sweeps
  // (calls never interleave). faulty_[n] is meaningful only while
  // touched_flag_[n] is set; DetectMask resets flags by walking touched_,
  // so stale faulty_ values are never observed.
  mutable std::vector<uint64_t> faulty_;
  mutable std::vector<uint8_t> touched_flag_;      // per net
  // Per-net bitmask of words (bit w = word w) whose wide-overlay value
  // differs from the good machine; meaningful only while touched_flag_ is
  // set, reset with it. Lets DetectMasks evaluate only live words.
  mutable std::vector<uint8_t> changed_wide_;      // per net
  mutable std::vector<NetId> touched_;             // reset list
  mutable std::vector<uint8_t> scheduled_;         // per gate (narrow sweep)
  // Wide-sweep scheduling state: nonzero iff the gate sits in a level
  // bucket, and the value is the union of its touched fanins' changed-word
  // masks so far. Lets a popped gate decide its live words from this hot
  // array alone — dead pops never read the (cold) Gate record.
  mutable std::vector<uint8_t> sched_live_;        // per gate (wide sweep)
  mutable std::vector<std::vector<GateId>> buckets_;  // per level
  mutable size_t last_evals_ = 0;
  mutable size_t last_visits_ = 0;
};

struct CoverageResult {
  size_t total_faults = 0;
  size_t detected = 0;
  double CoveragePercent() const {
    return total_faults == 0 ? 0.0 : 100.0 * detected / total_faults;
  }
};

// Random-pattern fault coverage over `patterns` patterns, sharded across
// the exec thread pool. Lanes beyond `patterns` in the final word are
// masked out of detection.
CoverageResult FaultCoverage(const Netlist& nl,
                             const std::vector<Fault>& faults,
                             uint64_t patterns, uint64_t seed);

// Per-fault detection counts (number of the `patterns` random patterns that
// detect each fault) — the DetectMask sweep behind random-pattern
// testability profiles. Same sharding and determinism contract as
// FaultCoverage.
std::vector<uint64_t> DetectionProfile(const Netlist& nl,
                                       const std::vector<Fault>& faults,
                                       uint64_t patterns, uint64_t seed);

}  // namespace splitlock::atpg
