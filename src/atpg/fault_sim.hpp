// 64-bit parallel-pattern stuck-at fault simulation.
//
// For a given fault, re-evaluates the downstream cone with the faulty net
// forced and reports the lane mask of patterns whose primary outputs differ
// from the good machine — i.e. the patterns that *detect* (fail under) the
// fault. Aggregate coverage sweeps support the test suite and the locking
// cost model.
//
// DetectMask is *event-driven*: starting from the fault site, only gates
// whose fanins actually changed are re-evaluated, in topological-level
// order, and the sweep exits early when the difference frontier dies before
// reaching a primary output. Faulty values live in a touched-net overlay on
// top of the good-machine values; the overlay is reset by walking the
// touched list, never by copying the whole net array. Work per fault is
// O(active fanout cone), not O(circuit). DetectMaskFull keeps the reference
// full-resimulation implementation for equivalence tests and benchmarks;
// both return bit-identical masks.
//
// The aggregate sweeps (FaultCoverage, DetectionProfile) shard BOTH the
// fault list and the pattern words across the exec thread pool: the
// (fault-block x word-shard) grid is tiled, each tile simulates its words
// from counter-based stimulus streams keyed by (seed, word index) and
// OR/sum-folds per-fault results. All tiles share one immutable SimTopology
// (levels + fanout CSR), built once per sweep. Final results are
// bit-identical for a given seed at any thread count (and for any tile
// shape).
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "atpg/fault.hpp"
#include "netlist/netlist.hpp"
#include "util/rng.hpp"

namespace splitlock::atpg {

// Immutable levelized-fanout side table for event-driven simulation:
// topological order/positions, per-gate topological levels, and a CSR
// net -> evaluatable-sink-gates map (kOutput observers are folded into
// net_observed instead). Built once per netlist and shared read-only by
// every FaultSimulator of a sweep; the netlist must not change structurally
// while a SimTopology for it is in use.
struct SimTopology {
  explicit SimTopology(const Netlist& nl);

  std::vector<GateId> topo;       // live gates, sources first
  std::vector<uint32_t> topo_pos; // gate -> index in topo
  std::vector<uint32_t> level;    // gate -> topological level (sources = 0)
  uint32_t num_levels = 0;        // max level + 1
  std::vector<uint32_t> fanout_offset; // net -> CSR range [n, n+1)
  std::vector<GateId> fanout_gates;    // evaluatable sink gates per net
  std::vector<uint8_t> net_observed;   // net feeds at least one primary output
};

class FaultSimulator {
 public:
  // Builds (and owns) a private SimTopology.
  explicit FaultSimulator(const Netlist& nl);

  // Shares an externally owned SimTopology (must outlive the simulator).
  // Sweeps constructing many simulators over one netlist use this to pay
  // the O(circuit) topology cost once.
  FaultSimulator(const Netlist& nl, const SimTopology& topo);

  // Loads one 64-pattern word per primary input and simulates the good
  // machine.
  void LoadPatterns(std::span<const uint64_t> pi_words);

  // Random-pattern convenience wrapper for LoadPatterns.
  void LoadRandomPatterns(Rng& rng);

  // Lane mask of patterns (within the loaded word) detecting `fault` at any
  // primary output. Event-driven: O(active fanout cone) per call.
  uint64_t DetectMask(const Fault& fault) const;

  // Reference implementation of DetectMask: full linear re-simulation of
  // the topological suffix after the fault site. Bit-identical to
  // DetectMask; kept for equivalence tests and old-vs-new benchmarks.
  uint64_t DetectMaskFull(const Fault& fault) const;

  // Number of gate evaluations performed by the most recent DetectMask /
  // DetectMaskFull call (0 when the fault was not excited). Instrumentation
  // for the early-exit tests and the kernel benchmarks.
  size_t LastDetectGateEvals() const { return last_evals_; }

  // Good-machine value of a net for the loaded word.
  uint64_t GoodValue(NetId net) const { return good_[net]; }

  const Netlist& netlist() const { return *nl_; }

 private:
  const Netlist* nl_;
  std::unique_ptr<SimTopology> owned_topo_;  // null when sharing
  const SimTopology* topo_;
  std::vector<uint64_t> good_;

  // Event-driven scratch. faulty_[n] is meaningful only while
  // touched_flag_[n] is set; DetectMask resets flags by walking touched_,
  // so stale faulty_ values are never observed.
  mutable std::vector<uint64_t> faulty_;
  mutable std::vector<uint8_t> touched_flag_;      // per net
  mutable std::vector<NetId> touched_;             // reset list
  mutable std::vector<uint8_t> scheduled_;         // per gate
  mutable std::vector<std::vector<GateId>> buckets_;  // per level
  mutable size_t last_evals_ = 0;
};

struct CoverageResult {
  size_t total_faults = 0;
  size_t detected = 0;
  double CoveragePercent() const {
    return total_faults == 0 ? 0.0 : 100.0 * detected / total_faults;
  }
};

// Random-pattern fault coverage over `patterns` patterns, sharded across
// the exec thread pool. Lanes beyond `patterns` in the final word are
// masked out of detection.
CoverageResult FaultCoverage(const Netlist& nl,
                             const std::vector<Fault>& faults,
                             uint64_t patterns, uint64_t seed);

// Per-fault detection counts (number of the `patterns` random patterns that
// detect each fault) — the DetectMask sweep behind random-pattern
// testability profiles. Same sharding and determinism contract as
// FaultCoverage.
std::vector<uint64_t> DetectionProfile(const Netlist& nl,
                                       const std::vector<Fault>& faults,
                                       uint64_t patterns, uint64_t seed);

}  // namespace splitlock::atpg
