#include "atpg/podem.hpp"

#include <cassert>
#include <span>
#include <unordered_map>

namespace splitlock::atpg {
namespace {

uint8_t Not3(uint8_t v) { return v == kVX ? kVX : (v ^ 1); }

uint8_t Eval3(GateOp op, std::span<const uint8_t> f) {
  switch (op) {
    case GateOp::kConst0:
    case GateOp::kTieLo:
      return kV0;
    case GateOp::kConst1:
    case GateOp::kTieHi:
      return kV1;
    case GateOp::kBuf:
      return f[0];
    case GateOp::kInv:
      return Not3(f[0]);
    case GateOp::kAnd:
    case GateOp::kNand: {
      uint8_t v = kV1;
      for (uint8_t x : f) {
        if (x == kV0) {
          v = kV0;
          break;
        }
        if (x == kVX) v = kVX;
      }
      return op == GateOp::kNand ? Not3(v) : v;
    }
    case GateOp::kOr:
    case GateOp::kNor: {
      uint8_t v = kV0;
      for (uint8_t x : f) {
        if (x == kV1) {
          v = kV1;
          break;
        }
        if (x == kVX) v = kVX;
      }
      return op == GateOp::kNor ? Not3(v) : v;
    }
    case GateOp::kXor:
    case GateOp::kXnor: {
      if (f[0] == kVX || f[1] == kVX) return kVX;
      const uint8_t v = f[0] ^ f[1];
      return op == GateOp::kXnor ? (v ^ 1) : v;
    }
    case GateOp::kMux: {
      if (f[0] == kV0) return f[1];
      if (f[0] == kV1) return f[2];
      if (f[1] == f[2] && f[1] != kVX) return f[1];
      return kVX;
    }
    default:
      return kVX;
  }
}

// (controlling value, output inversion) of a gate, where applicable.
bool HasControllingValue(GateOp op, uint8_t* cv) {
  switch (op) {
    case GateOp::kAnd:
    case GateOp::kNand:
      *cv = kV0;
      return true;
    case GateOp::kOr:
    case GateOp::kNor:
      *cv = kV1;
      return true;
    default:
      return false;
  }
}

bool OutputInverts(GateOp op) {
  return op == GateOp::kNand || op == GateOp::kNor || op == GateOp::kInv ||
         op == GateOp::kXnor;
}

class Podem {
 public:
  Podem(const Netlist& nl, const Fault& fault, const PodemOptions& options)
      : nl_(nl),
        fault_(fault),
        options_(options),
        topo_(nl.TopoOrder()),
        good_(nl.NumNets(), kVX),
        faulty_(nl.NumNets(), kVX),
        pi_values_(nl.inputs().size(), kVX) {
    for (size_t i = 0; i < nl_.inputs().size(); ++i) {
      pi_of_net_[nl_.gate(nl_.inputs()[i]).out] = i;
    }
  }

  std::optional<TestPattern> Run(bool* aborted) {
    if (aborted != nullptr) *aborted = false;
    Imply();
    struct Decision {
      size_t pi;
      uint8_t value;
      bool flipped;
    };
    std::vector<Decision> stack;
    uint64_t backtracks = 0;

    for (;;) {
      if (Detected()) {
        TestPattern t;
        t.pi_values = pi_values_;
        return t;
      }
      size_t pi = 0;
      uint8_t value = kVX;
      const bool have_objective = NextObjective(&pi, &value);
      if (have_objective) {
        stack.push_back(Decision{pi, value, false});
        pi_values_[pi] = value;
        Imply();
        continue;
      }
      // No objective reachable: backtrack.
      for (;;) {
        if (stack.empty()) return std::nullopt;  // untestable
        Decision& d = stack.back();
        if (!d.flipped) {
          d.flipped = true;
          pi_values_[d.pi] = d.value ^ 1;
          if (++backtracks > options_.backtrack_limit) {
            if (aborted != nullptr) *aborted = true;
            return std::nullopt;
          }
          Imply();
          break;
        }
        pi_values_[d.pi] = kVX;
        stack.pop_back();
        Imply();
      }
    }
  }

 private:
  void Imply() {
    uint8_t fan[kMaxFanin];
    for (GateId g : topo_) {
      const Gate& gate = nl_.gate(g);
      if (gate.op == GateOp::kOutput || gate.op == GateOp::kDeleted) continue;
      uint8_t gv;
      uint8_t fv;
      if (gate.op == GateOp::kInput) {
        gv = fv = pi_values_[pi_of_net_.at(gate.out)];
      } else if (gate.op == GateOp::kKeyIn) {
        gv = fv = kVX;  // keys are not assignable during test generation
      } else {
        const size_t n = gate.fanins.size();
        for (size_t i = 0; i < n; ++i) fan[i] = good_[gate.fanins[i]];
        gv = Eval3(gate.op, std::span<const uint8_t>(fan, n));
        for (size_t i = 0; i < n; ++i) fan[i] = faulty_[gate.fanins[i]];
        fv = Eval3(gate.op, std::span<const uint8_t>(fan, n));
      }
      good_[gate.out] = gv;
      faulty_[gate.out] =
          gate.out == fault_.net ? (fault_.stuck_at ? kV1 : kV0) : fv;
    }
  }

  bool Detected() const {
    for (GateId g : nl_.outputs()) {
      const NetId n = nl_.gate(g).fanins[0];
      if (good_[n] != kVX && faulty_[n] != kVX && good_[n] != faulty_[n]) {
        return true;
      }
    }
    return false;
  }

  // Chooses the next (net, value) objective and backtraces it to a PI
  // assignment. Returns false when neither excitation nor propagation
  // objectives are available.
  bool NextObjective(size_t* pi, uint8_t* value) {
    // 1) Excite the fault: the good value at the fault site must be the
    //    complement of the stuck-at value.
    const uint8_t want = fault_.stuck_at ? kV0 : kV1;
    if (good_[fault_.net] == kVX) {
      return Backtrace(fault_.net, want, pi, value);
    }
    if (good_[fault_.net] != want) return false;  // fault cannot be excited

    // 2) Propagate: pick a D-frontier gate and set one X side-input to the
    //    non-controlling value.
    for (GateId g : topo_) {
      const Gate& gate = nl_.gate(g);
      if (gate.op == GateOp::kOutput || gate.op == GateOp::kDeleted ||
          IsSourceOp(gate.op)) {
        continue;
      }
      // Output must still be undetermined on at least one machine.
      if (good_[gate.out] != kVX && faulty_[gate.out] != kVX &&
          good_[gate.out] != faulty_[gate.out]) {
        continue;  // already propagated past here
      }
      bool has_d_input = false;
      for (NetId n : gate.fanins) {
        if (good_[n] != kVX && faulty_[n] != kVX && good_[n] != faulty_[n]) {
          has_d_input = true;
          break;
        }
      }
      if (!has_d_input) continue;
      if (good_[gate.out] != kVX && faulty_[gate.out] != kVX) continue;
      // Side inputs to non-controlling value.
      uint8_t cv = kV0;
      const bool has_cv = HasControllingValue(gate.op, &cv);
      for (NetId n : gate.fanins) {
        if (good_[n] != kVX) continue;
        const uint8_t objective = has_cv ? (cv ^ 1) : kV1;
        if (Backtrace(n, objective, pi, value)) return true;
      }
    }
    return false;
  }

  // Walks backwards from (net, v) through X-valued logic to an unassigned
  // primary input; fills the PI index and required value.
  bool Backtrace(NetId net, uint8_t v, size_t* pi, uint8_t* value) {
    for (int depth = 0; depth < 100000; ++depth) {
      const GateId d = nl_.DriverOf(net);
      if (d == kNullId) return false;
      const Gate& gate = nl_.gate(d);
      if (gate.op == GateOp::kInput) {
        const size_t index = pi_of_net_.at(net);
        if (pi_values_[index] != kVX) return false;
        *pi = index;
        *value = v;
        return true;
      }
      if (IsSourceOp(gate.op)) return false;  // constants/keys unassignable
      if (OutputInverts(gate.op)) v = Not3(v);
      // Choose an X-valued fanin to pursue; for XOR/MUX just take any X.
      NetId next = kNullId;
      for (NetId n : gate.fanins) {
        if (good_[n] == kVX) {
          next = n;
          break;
        }
      }
      if (next == kNullId) return false;
      net = next;
    }
    return false;
  }

  const Netlist& nl_;
  const Fault fault_;
  const PodemOptions options_;
  std::vector<GateId> topo_;
  std::vector<uint8_t> good_;
  std::vector<uint8_t> faulty_;
  std::vector<uint8_t> pi_values_;
  std::unordered_map<NetId, size_t> pi_of_net_;
};

}  // namespace

std::optional<TestPattern> GenerateTest(const Netlist& nl, const Fault& fault,
                                        const PodemOptions& options,
                                        bool* aborted) {
  Podem engine(nl, fault, options);
  return engine.Run(aborted);
}

}  // namespace splitlock::atpg
