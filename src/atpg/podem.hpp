// PODEM automatic test pattern generation for single stuck-at faults.
//
// Classic PODEM: decisions are made only on primary inputs; objectives are
// derived from fault excitation and D-frontier propagation and mapped to PI
// assignments by backtracing. Together with the parallel fault simulator
// this forms the library's Atalanta-style ATPG substrate.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "atpg/fault.hpp"
#include "netlist/netlist.hpp"

namespace splitlock::atpg {

// Three-valued logic constant.
inline constexpr uint8_t kV0 = 0;
inline constexpr uint8_t kV1 = 1;
inline constexpr uint8_t kVX = 2;

struct TestPattern {
  // One value (kV0/kV1/kVX) per primary input, in inputs() order. kVX marks
  // a don't-care position.
  std::vector<uint8_t> pi_values;

  size_t CareCount() const {
    size_t n = 0;
    for (uint8_t v : pi_values) n += (v != kVX) ? 1 : 0;
    return n;
  }
};

struct PodemOptions {
  uint64_t backtrack_limit = 20000;
};

// Returns a test detecting `fault`, or nullopt if the fault is untestable
// (redundant) or the backtrack limit is exhausted. `aborted`, when given,
// distinguishes the two (true = limit hit).
std::optional<TestPattern> GenerateTest(const Netlist& nl, const Fault& fault,
                                        const PodemOptions& options = {},
                                        bool* aborted = nullptr);

}  // namespace splitlock::atpg
