#include "attack/engine.hpp"

#include <cstdio>
#include <mutex>
#include <stdexcept>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/hash.hpp"
#include "util/stopwatch.hpp"

namespace splitlock::attack {

namespace internal {
// Defined in engines.cpp. Referencing it from here guarantees the built-in
// adapters' translation unit is pulled out of the static library even when
// a binary only ever dispatches through the registry.
void RegisterBuiltinEngines(EngineRegistry& registry);
}  // namespace internal

// --- AttackConfig -----------------------------------------------------------

AttackConfig AttackConfig::Parse(std::string_view spec) {
  AttackConfig config;
  const size_t colon = spec.find(':');
  config.engine = std::string(spec.substr(0, colon));
  if (config.engine.empty()) {
    throw std::invalid_argument("attack config: empty engine name");
  }
  if (colon == std::string_view::npos) return config;
  std::string_view rest = spec.substr(colon + 1);
  while (!rest.empty()) {
    const size_t comma = rest.find(',');
    const std::string_view pair = rest.substr(0, comma);
    rest = comma == std::string_view::npos ? std::string_view{}
                                           : rest.substr(comma + 1);
    if (pair.empty()) continue;
    const size_t eq = pair.find('=');
    if (eq == std::string_view::npos || eq == 0) {
      throw std::invalid_argument("attack config: expected key=value in '" +
                                  std::string(pair) + "'");
    }
    config.params[std::string(pair.substr(0, eq))] =
        std::string(pair.substr(eq + 1));
  }
  return config;
}

std::string AttackConfig::ToString() const {
  std::string out = engine;
  bool first = true;
  for (const auto& [key, value] : params) {
    out += first ? ':' : ',';
    first = false;
    out += key;
    out += '=';
    out += value;
  }
  return out;
}

uint64_t AttackConfig::Hash() const {
  // FNV-1a over the canonical string form: stable across processes.
  return util::Fnv1a(ToString());
}

uint64_t AttackConfig::GetUint(const std::string& key, uint64_t def) const {
  const auto it = params.find(key);
  return it == params.end() ? def : std::stoull(it->second);
}

double AttackConfig::GetDouble(const std::string& key, double def) const {
  const auto it = params.find(key);
  return it == params.end() ? def : std::stod(it->second);
}

bool AttackConfig::GetBool(const std::string& key, bool def) const {
  const auto it = params.find(key);
  if (it == params.end()) return def;
  const std::string& v = it->second;
  if (v == "1" || v == "true" || v == "yes" || v == "on") return true;
  if (v == "0" || v == "false" || v == "no" || v == "off") return false;
  throw std::invalid_argument("attack config: boolean expected for '" + key +
                              "', got '" + v + "'");
}

std::string AttackConfig::GetString(const std::string& key,
                                    std::string def) const {
  const auto it = params.find(key);
  return it == params.end() ? std::move(def) : it->second;
}

// --- AttackReport -----------------------------------------------------------

namespace {

void AppendJsonString(std::string* out, std::string_view s) {
  out->push_back('"');
  for (const char c : s) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\t':
        *out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

void AppendJsonNumber(std::string* out, double v) {
  char buf[40];
  // %.17g round-trips doubles; integral values print without exponent.
  if (v == static_cast<double>(static_cast<long long>(v)) && v < 1e15 &&
      v > -1e15) {
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
  } else {
    std::snprintf(buf, sizeof(buf), "%.17g", v);
  }
  *out += buf;
}

}  // namespace

std::string JsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  AppendJsonString(&out, s);
  return out;
}

std::string AttackReport::ToJson() const {
  std::string out = "{\"engine\":";
  AppendJsonString(&out, engine);
  out += ",\"config\":";
  AppendJsonString(&out, config);
  out += ",\"ok\":";
  out += ok ? "true" : "false";
  if (!error.empty()) {
    out += ",\"error\":";
    AppendJsonString(&out, error);
  }
  out += ",\"elapsed_s\":";
  AppendJsonNumber(&out, elapsed_s);
  if (!assignment.empty()) {
    out += ",\"assignment_size\":";
    AppendJsonNumber(&out, static_cast<double>(assignment.size()));
  }
  out += ",\"key_found\":";
  out += key_found ? "true" : "false";
  if (key_found) {
    out += ",\"recovered_key\":\"";
    for (const uint8_t b : recovered_key) out += b ? '1' : '0';
    out += '"';
    out += ",\"functionally_correct\":";
    out += functionally_correct ? "true" : "false";
  }
  out += ",\"counters\":{";
  bool first = true;
  for (const auto& [key, value] : counters) {
    if (!first) out += ',';
    first = false;
    AppendJsonString(&out, key);
    out += ':';
    AppendJsonNumber(&out, value);
  }
  out += "},\"phases\":[";
  first = true;
  for (const PhaseStat& phase : phases) {
    if (!first) out += ',';
    first = false;
    out += "{\"name\":";
    AppendJsonString(&out, phase.name);
    out += ",\"wall_ms\":";
    AppendJsonNumber(&out, phase.wall_ms);
    out += ",\"count\":";
    AppendJsonNumber(&out, static_cast<double>(phase.count));
    out += '}';
  }
  out += ']';
  if (!rounds.empty()) {
    out += ",\"rounds\":[";
    first = true;
    for (const RoundStat& round : rounds) {
      if (!first) out += ',';
      first = false;
      out += "{\"conflicts\":";
      AppendJsonNumber(&out, static_cast<double>(round.conflicts));
      out += ",\"solve_ms\":";
      AppendJsonNumber(&out, round.solve_ms);
      out += ",\"encode_ms\":";
      AppendJsonNumber(&out, round.encode_ms);
      out += ",\"oracle_ms\":";
      AppendJsonNumber(&out, round.oracle_ms);
      out += ",\"winner\":";
      AppendJsonNumber(&out, static_cast<double>(round.winner));
      out += ",\"dip_batch\":";
      AppendJsonNumber(&out, static_cast<double>(round.dip_batch));
      out += '}';
    }
    out += ']';
  }
  out += '}';
  return out;
}

// --- EngineRegistry ---------------------------------------------------------

struct EngineRegistry::Impl {
  mutable std::mutex mutex;
  std::map<std::string, EngineFactory> factories;
};

EngineRegistry& EngineRegistry::Instance() {
  static EngineRegistry registry;
  // Outside impl()'s lock: RegisterBuiltinEngines re-enters via Register.
  static std::once_flag builtins_once;
  std::call_once(builtins_once,
                 [] { internal::RegisterBuiltinEngines(registry); });
  return registry;
}

EngineRegistry::Impl& EngineRegistry::impl() const {
  static Impl impl;
  return impl;
}

void EngineRegistry::Register(std::string name, EngineFactory factory) {
  Impl& i = impl();
  const std::lock_guard<std::mutex> lock(i.mutex);
  i.factories[std::move(name)] = std::move(factory);
}

std::unique_ptr<Engine> EngineRegistry::Create(const std::string& name) const {
  Impl& i = impl();
  EngineFactory factory;
  {
    const std::lock_guard<std::mutex> lock(i.mutex);
    const auto it = i.factories.find(name);
    if (it == i.factories.end()) return nullptr;
    factory = it->second;
  }
  return factory();
}

bool EngineRegistry::Has(const std::string& name) const {
  Impl& i = impl();
  const std::lock_guard<std::mutex> lock(i.mutex);
  return i.factories.count(name) > 0;
}

std::vector<std::string> EngineRegistry::Names() const {
  Impl& i = impl();
  const std::lock_guard<std::mutex> lock(i.mutex);
  std::vector<std::string> names;
  names.reserve(i.factories.size());
  for (const auto& [name, factory] : i.factories) names.push_back(name);
  return names;  // std::map iterates sorted
}

// --- RunAttack --------------------------------------------------------------

AttackReport RunAttack(const AttackContext& ctx, const AttackConfig& config) {
  static obs::Counter* runs =
      obs::Registry::Instance().RegisterCounter("attack.engine.runs");
  runs->Add(1);
  obs::Span span("attack.engine");
  AttackReport report;
  report.engine = config.engine;
  report.config = config.ToString();
  const Stopwatch elapsed;
  const std::unique_ptr<Engine> engine =
      EngineRegistry::Instance().Create(config.engine);
  if (!engine) {
    report.error = "unknown attack engine '" + config.engine + "'";
    return report;
  }
  const std::string missing = engine->CheckContext(ctx);
  if (!missing.empty()) {
    report.error = missing;
    return report;
  }
  try {
    report = engine->Run(ctx, config);
    report.engine = config.engine;
    report.config = config.ToString();
    report.ok = report.error.empty();
  } catch (const std::exception& e) {
    report = AttackReport{};
    report.engine = config.engine;
    report.config = config.ToString();
    report.error = e.what();
  }
  report.elapsed_s = elapsed.Seconds();
  if (ctx.telemetry) {
    for (const PhaseStat& phase : report.phases) {
      ctx.telemetry->Phase(report.engine, phase.name, phase.wall_ms,
                           phase.count);
    }
  }
  return report;
}

AttackReport RunAttack(const AttackContext& ctx, std::string_view spec) {
  return RunAttack(ctx, AttackConfig::Parse(spec));
}

}  // namespace splitlock::attack
