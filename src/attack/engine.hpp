// The unified attack-engine API.
//
// The paper's central claim (Sec. II-C, Sec. V) is comparative: the secure
// split flow must hold up against *every* attacker model — proximity, ML,
// oracle-guided SAT, the ideal attacker, oracle-less probing. Each of those
// used to be a bespoke free function with its own options/result structs,
// so only the proximity attack could be driven by the campaign runner and
// the CLI. This header makes the attacker model a first-class value:
//
//  * AttackContext — everything an attack may see: the FEOL view, the
//    locked netlist, optionally the functional oracle (which the
//    split-manufacturing threat model denies — engines that consume it are
//    deliberately violating the model to quantify what the missing oracle
//    is worth), the correct key (for scoring-only engines), a seed for
//    deterministic StreamRng streams, solve budgets and a telemetry sink.
//  * AttackConfig — a serializable (engine name + key=value params)
//    description of one attack run. Hashable, so campaign-level caches can
//    key on it; parseable, so the CLI can accept --engine=name:k=v,k=v.
//  * AttackReport — the uniform result: a layout-level assignment and/or a
//    recovered key, correctness flags, a counter bag and per-phase wall
//    timings. Serializes to JSON for the CLI and bench records.
//  * Engine + EngineRegistry — a polymorphic engine interface with a
//    static self-registering registry; the campaign runner, the CLI and
//    the benches all dispatch through it.
//
// Built-in engines (see engines.cpp): "proximity", "ml", "ideal", "sat",
// "oracle-less", "sat-portfolio".
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "netlist/netlist.hpp"
#include "split/split.hpp"

namespace splitlock::attack {

// Streaming telemetry: engines report named phases as they finish them.
// Implementations must be thread-safe when the context is shared across
// concurrent attacks (the campaign runner runs jobs on the exec pool).
class TelemetrySink {
 public:
  virtual ~TelemetrySink() = default;
  virtual void Phase(std::string_view engine, std::string_view phase,
                     double wall_ms, uint64_t count) = 0;
};

// What the attacker gets to see. Engines declare their needs via
// Engine::CheckContext; unneeded fields may stay null.
struct AttackContext {
  // Layout-level view (proximity-family engines).
  const split::FeolView* feol = nullptr;
  // Netlist-level views (SAT-family engines). `oracle` is the original
  // function — providing it deliberately violates the split-manufacturing
  // threat model (Sec. II-C); engines that consume it exist to demonstrate
  // what an attacker could do IF an oracle existed.
  const Netlist* locked = nullptr;
  const Netlist* oracle = nullptr;
  // The designer's key (scoring-only engines, e.g. the ideal attack).
  std::span<const uint8_t> correct_key;

  // Seed for the engine's deterministic StreamRng streams. An engine's
  // result is a pure function of (context views, seed, config) at any
  // thread count.
  uint64_t seed = 1;
  // Budgets. The conflict budget bounds SAT search deterministically (a
  // cumulative ceiling for both SAT engines). The wall-clock budget (0 =
  // unlimited) is advisory: the SAT engines check it between DIP rounds,
  // engines without an iterative structure ignore it, and it is NOT
  // deterministic — leave it 0 when reproducibility matters.
  uint64_t conflict_budget = 2000000;
  double wall_budget_s = 0.0;
  // Optional streaming telemetry; per-phase stats always land in the
  // report as well.
  TelemetrySink* telemetry = nullptr;
};

// A serializable attack description: engine name + string params. The
// ordered map gives a canonical ToString()/Hash(), so configs can key
// caches and be round-tripped through the CLI.
struct AttackConfig {
  std::string engine;
  std::map<std::string, std::string> params;

  // "name" or "name:key=value,key=value". Throws std::invalid_argument on
  // malformed specs.
  static AttackConfig Parse(std::string_view spec);
  // Canonical form; Parse(ToString()) == *this.
  std::string ToString() const;
  // FNV-1a over the canonical form: stable across processes (campaign
  // cache keys survive restarts).
  uint64_t Hash() const;

  bool Has(const std::string& key) const { return params.count(key) > 0; }
  uint64_t GetUint(const std::string& key, uint64_t def) const;
  double GetDouble(const std::string& key, double def) const;
  bool GetBool(const std::string& key, bool def) const;
  std::string GetString(const std::string& key, std::string def) const;

  bool operator==(const AttackConfig&) const = default;
};

// One named phase of an engine run (timings are measurements; counters are
// deterministic).
struct PhaseStat {
  std::string name;
  double wall_ms = 0.0;
  uint64_t count = 0;
};

// Per-iteration telemetry for round-based engines (the SAT engines' DIP
// rounds). Conflict counts and winner indices are deterministic; the
// wall-clock splits are measurements.
struct RoundStat {
  uint64_t conflicts = 0;
  double solve_ms = 0.0;
  double encode_ms = 0.0;
  double oracle_ms = 0.0;
  int winner = -1;  // portfolio config index; -1 = sequential solve
  uint64_t dip_batch = 0;  // DIPs oracle-queried this round (batch width)
};

// The uniform attack result. Engines fill the sections that apply to their
// attacker model and leave the rest empty.
struct AttackReport {
  std::string engine;       // registry name
  std::string config;       // AttackConfig::ToString() of the run
  bool ok = false;          // engine ran to completion
  std::string error;        // failure reason when !ok

  // Layout-level outcome: a proposed driver net per sink stub (empty when
  // the engine does not produce an assignment).
  split::Assignment assignment;

  // Key-level outcome.
  bool key_found = false;
  std::vector<uint8_t> recovered_key;
  bool functionally_correct = false;

  // Named counters (deterministic) and per-phase timings (measured).
  std::map<std::string, double> counters;
  std::vector<PhaseStat> phases;
  // Per-round telemetry for round-based engines (empty otherwise).
  std::vector<RoundStat> rounds;
  double elapsed_s = 0.0;

  // One JSON object (single line, no trailing newline).
  std::string ToJson() const;
};

// `s` as a quoted, escaped JSON string literal — shared by ToJson and the
// CLI/bench JSON emitters (user-supplied strings like file paths must not
// break the record's syntax).
std::string JsonEscape(std::string_view s);

// An attacker model. Implementations must be stateless across Run calls
// (a registry Create() per run is cheap); all state lives in the context
// and config.
class Engine {
 public:
  virtual ~Engine() = default;
  virtual std::string name() const = 0;
  virtual std::string description() const = 0;
  // Empty string when `ctx` carries everything this engine needs;
  // otherwise the missing requirement (becomes AttackReport::error).
  virtual std::string CheckContext(const AttackContext& ctx) const = 0;
  virtual AttackReport Run(const AttackContext& ctx,
                           const AttackConfig& config) const = 0;
};

using EngineFactory = std::function<std::unique_ptr<Engine>()>;

// Static engine registry. Built-in engines self-register on first use;
// external code may Register additional factories (thread-safe).
class EngineRegistry {
 public:
  static EngineRegistry& Instance();

  void Register(std::string name, EngineFactory factory);
  // nullptr when unknown.
  std::unique_ptr<Engine> Create(const std::string& name) const;
  bool Has(const std::string& name) const;
  std::vector<std::string> Names() const;  // sorted

 private:
  EngineRegistry() = default;
  struct Impl;
  Impl& impl() const;
};

// Dispatches `config` through the registry on `ctx`, handling unknown
// engines, context-requirement failures and exceptions uniformly (they
// come back as !ok reports instead of throwing), and stamping
// engine/config/elapsed_s.
AttackReport RunAttack(const AttackContext& ctx, const AttackConfig& config);

// Convenience: parse + run.
AttackReport RunAttack(const AttackContext& ctx, std::string_view spec);

}  // namespace splitlock::attack
