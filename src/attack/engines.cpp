// Built-in attack engines: thin adapters mapping the uniform
// AttackContext/AttackConfig/AttackReport API onto the five attacker
// models this repo implements, plus the portfolio SAT engine. The legacy
// free functions (RunProximityAttack, RunMlAttack, ...) remain the
// implementation; these adapters own the config-string -> options and
// result -> report conversions so the campaign runner, the CLI and the
// benches all see one shape.
#include <string>

#include "attack/engine.hpp"
#include "attack/ideal.hpp"
#include "attack/ml_attack.hpp"
#include "attack/proximity.hpp"
#include "attack/sat_attack.hpp"

namespace splitlock::attack {
namespace {

// Shared telemetry flattening for the two SAT engines.
void FillSatReport(const SatAttackResult& result, AttackReport* report) {
  report->key_found = result.key_found;
  report->recovered_key = result.recovered_key;
  report->functionally_correct = result.functionally_correct;
  report->counters["finished"] = result.finished ? 1.0 : 0.0;
  report->counters["dips_used"] = static_cast<double>(result.dips_used);
  report->counters["oracle_queries"] =
      static_cast<double>(result.telemetry.oracle_queries);
  report->counters["total_conflicts"] =
      static_cast<double>(result.telemetry.total_conflicts);
  report->counters["rounds"] =
      static_cast<double>(result.telemetry.rounds.size());
  report->counters["mean_dip_batch"] = result.telemetry.MeanDipBatch();
  double solve_ms = 0.0;
  double encode_ms = 0.0;
  double oracle_ms = 0.0;
  for (const SatRoundTelemetry& round : result.telemetry.rounds) {
    solve_ms += round.solve_ms;
    encode_ms += round.encode_ms;
    oracle_ms += round.oracle_ms;
  }
  const uint64_t rounds = result.telemetry.rounds.size();
  report->phases.push_back({"dip_solve", solve_ms, rounds});
  report->phases.push_back({"dip_encode", encode_ms, result.dips_used});
  report->phases.push_back(
      {"oracle", oracle_ms, result.telemetry.oracle_queries});
  report->phases.push_back(
      {"final_solve", result.telemetry.final_solve_ms, 1});
  report->phases.push_back({"verify", result.telemetry.verify_ms, 1});
  report->rounds.reserve(rounds);
  for (const SatRoundTelemetry& round : result.telemetry.rounds) {
    report->rounds.push_back({round.conflicts, round.solve_ms,
                              round.encode_ms, round.oracle_ms, round.winner,
                              round.dip_batch});
  }
}

class ProximityEngine : public Engine {
 public:
  std::string name() const override { return "proximity"; }
  std::string description() const override {
    return "greedy stub-proximity matcher with direction/load/loop/timing "
           "constraints (Wang et al., TVLSI'18 style)";
  }
  std::string CheckContext(const AttackContext& ctx) const override {
    return ctx.feol ? "" : "proximity engine needs an FEOL view";
  }
  AttackReport Run(const AttackContext& ctx,
                   const AttackConfig& config) const override {
    ProximityOptions options;
    options.seed = config.GetUint("seed", ctx.seed);
    options.use_direction_hint =
        config.GetBool("direction", options.use_direction_hint);
    options.use_load_constraint =
        config.GetBool("load", options.use_load_constraint);
    options.use_loop_constraint =
        config.GetBool("loop", options.use_loop_constraint);
    options.use_timing_constraint =
        config.GetBool("timing", options.use_timing_constraint);
    options.postprocess_key_gates =
        config.GetBool("postprocess", options.postprocess_key_gates);
    options.timing_slack_factor =
        config.GetDouble("slack", options.timing_slack_factor);
    options.direction_penalty =
        config.GetDouble("direction_penalty", options.direction_penalty);
    options.max_candidates_per_sink = config.GetUint(
        "max_candidates", options.max_candidates_per_sink);

    const ProximityResult result = RunProximityAttack(*ctx.feol, options);
    AttackReport report;
    report.assignment = result.assignment;
    report.counters["committed_by_proximity"] =
        static_cast<double>(result.committed_by_proximity);
    report.counters["fallback_random"] =
        static_cast<double>(result.fallback_random);
    report.counters["key_gates_reconnected"] =
        static_cast<double>(result.key_gates_reconnected);
    return report;
  }
};

class MlEngine : public Engine {
 public:
  std::string name() const override { return "ml"; }
  std::string description() const override {
    return "logistic-regression matcher trained on the attacker's own "
           "intact FEOL connections (Zhang et al., DAC'18 style)";
  }
  std::string CheckContext(const AttackContext& ctx) const override {
    return ctx.feol ? "" : "ml engine needs an FEOL view";
  }
  AttackReport Run(const AttackContext& ctx,
                   const AttackConfig& config) const override {
    MlAttackOptions options;
    options.seed = config.GetUint("seed", ctx.seed);
    options.max_training_positives =
        config.GetUint("max_positives", options.max_training_positives);
    options.negatives_per_positive =
        config.GetUint("negatives", options.negatives_per_positive);
    options.training_epochs = config.GetUint("epochs", options.training_epochs);
    options.learning_rate = config.GetDouble("lr", options.learning_rate);
    options.postprocess_key_gates =
        config.GetBool("postprocess", options.postprocess_key_gates);

    const MlAttackResult result = RunMlAttack(*ctx.feol, options);
    AttackReport report;
    report.assignment = result.assignment;
    report.counters["training_positives"] =
        static_cast<double>(result.training_positives);
    report.counters["training_accuracy_percent"] =
        result.training_accuracy_percent;
    return report;
  }
};

class IdealEngine : public Engine {
 public:
  std::string name() const override { return "ideal"; }
  std::string description() const override {
    return "Sec. IV-A ideal attacker: every regular net granted, key sinks "
           "guessed uniformly; with locked+oracle+key also runs the "
           "random-guess OER sweep";
  }
  std::string CheckContext(const AttackContext& ctx) const override {
    if (ctx.feol) return "";
    if (ctx.locked && ctx.oracle && !ctx.correct_key.empty()) return "";
    return "ideal engine needs an FEOL view (assignment mode) or "
           "locked+oracle+correct_key (guess-sweep mode)";
  }
  AttackReport Run(const AttackContext& ctx,
                   const AttackConfig& config) const override {
    AttackReport report;
    const uint64_t seed = config.GetUint("seed", ctx.seed);
    if (ctx.feol) {
      report.assignment = IdealAssignment(*ctx.feol, seed);
    }
    if (ctx.locked && ctx.oracle && !ctx.correct_key.empty()) {
      const uint64_t guesses = config.GetUint("guesses", 4096);
      const uint64_t patterns = config.GetUint("patterns_per_guess", 64);
      const IdealAttackResult result = RunIdealAttack(
          *ctx.oracle, *ctx.locked, ctx.correct_key, guesses, patterns, seed);
      report.counters["guesses"] = static_cast<double>(result.guesses);
      report.counters["erroneous_guesses"] =
          static_cast<double>(result.erroneous_guesses);
      report.counters["exact_guesses"] =
          static_cast<double>(result.exact_guesses);
      report.counters["oer_percent"] = result.OerPercent();
    }
    return report;
  }
};

class SatEngine : public Engine {
 public:
  std::string name() const override { return "sat"; }
  std::string description() const override {
    return "oracle-guided DIP attack (Subramanyan et al., HOST'15); "
           "deliberately violates the split-manufacturing threat model";
  }
  std::string CheckContext(const AttackContext& ctx) const override {
    if (!ctx.locked) return "sat engine needs the locked netlist";
    if (!ctx.oracle) {
      return "sat engine needs a functional oracle (the threat model's "
             "whole point is that the attacker has none)";
    }
    return "";
  }
  AttackReport Run(const AttackContext& ctx,
                   const AttackConfig& config) const override {
    SatAttackOptions options;
    options.seed = config.GetUint("seed", ctx.seed);
    options.max_dips = config.GetUint("max_dips", options.max_dips);
    options.dips_per_round =
        config.GetUint("dips_per_round", options.dips_per_round);
    options.conflict_limit_per_solve =
        config.GetUint("conflicts", ctx.conflict_budget);
    options.verify_patterns =
        config.GetUint("verify_patterns", options.verify_patterns);
    options.incremental_dip_encoding =
        config.GetBool("incremental", options.incremental_dip_encoding);
    options.wall_budget_s = config.GetDouble("wall_s", ctx.wall_budget_s);

    const SatAttackResult result =
        RunSatAttack(*ctx.locked, *ctx.oracle, options);
    AttackReport report;
    FillSatReport(result, &report);
    return report;
  }
};

class OracleLessEngine : public Engine {
 public:
  std::string name() const override { return "oracle-less"; }
  std::string description() const override {
    return "FEOL-only key-space probe: samples random keys and counts "
           "observably distinct functions (nothing ranks them, Sec. II-C)";
  }
  std::string CheckContext(const AttackContext& ctx) const override {
    return ctx.locked ? "" : "oracle-less engine needs the locked netlist";
  }
  AttackReport Run(const AttackContext& ctx,
                   const AttackConfig& config) const override {
    const uint64_t seed = config.GetUint("seed", ctx.seed);
    const size_t samples =
        static_cast<size_t>(config.GetUint("samples", 256));
    const uint64_t patterns = config.GetUint("patterns", 2048);
    const OracleLessProbe probe =
        ProbeOracleLessKeySpace(*ctx.locked, samples, patterns, seed);
    AttackReport report;
    report.counters["sampled_keys"] = static_cast<double>(probe.sampled_keys);
    report.counters["distinct_functions"] =
        static_cast<double>(probe.distinct_functions);
    report.counters["distinct_fraction"] = probe.DistinctFraction();
    return report;
  }
};

class PortfolioSatAttackEngine : public Engine {
 public:
  std::string name() const override { return "sat-portfolio"; }
  std::string description() const override {
    return "oracle-guided DIP attack racing N diversified solver clones "
           "per round on the exec pool (deterministic lowest-index winner)";
  }
  std::string CheckContext(const AttackContext& ctx) const override {
    if (!ctx.locked) return "sat-portfolio engine needs the locked netlist";
    if (!ctx.oracle) return "sat-portfolio engine needs a functional oracle";
    return "";
  }
  AttackReport Run(const AttackContext& ctx,
                   const AttackConfig& config) const override {
    PortfolioSatOptions options;
    options.seed = config.GetUint("seed", ctx.seed);
    options.num_configs = config.GetUint("configs", options.num_configs);
    options.max_dips = config.GetUint("max_dips", options.max_dips);
    options.dips_per_round =
        config.GetUint("dips_per_round", options.dips_per_round);
    options.conflicts_per_round =
        config.GetUint("conflicts_per_round", options.conflicts_per_round);
    // The context's conflict budget is a *cumulative* ceiling — the same
    // semantics the "sat" engine gives it — so portfolio-vs-sequential
    // comparisons under one context are apples-to-apples.
    options.total_conflict_budget =
        config.GetUint("conflicts", ctx.conflict_budget);
    options.verify_patterns =
        config.GetUint("verify_patterns", options.verify_patterns);
    options.wall_budget_s = config.GetDouble("wall_s", ctx.wall_budget_s);

    const PortfolioSatResult result =
        RunPortfolioSatAttack(*ctx.locked, *ctx.oracle, options);
    AttackReport report;
    FillSatReport(result.attack, &report);
    report.counters["configs"] = static_cast<double>(options.num_configs);
    for (size_t i = 0; i < result.wins_per_config.size(); ++i) {
      report.counters["wins_config_" + std::to_string(i)] =
          static_cast<double>(result.wins_per_config[i]);
    }
    return report;
  }
};

template <typename E>
void RegisterOne(EngineRegistry& registry) {
  registry.Register(E().name(), [] { return std::make_unique<E>(); });
}

}  // namespace

namespace internal {

void RegisterBuiltinEngines(EngineRegistry& registry) {
  RegisterOne<ProximityEngine>(registry);
  RegisterOne<MlEngine>(registry);
  RegisterOne<IdealEngine>(registry);
  RegisterOne<SatEngine>(registry);
  RegisterOne<OracleLessEngine>(registry);
  RegisterOne<PortfolioSatAttackEngine>(registry);
}

}  // namespace internal

}  // namespace splitlock::attack
