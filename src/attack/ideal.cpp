#include "attack/ideal.hpp"

#include <bit>
#include <cassert>
#include <vector>

#include "attack/proximity.hpp"
#include "sim/simulator.hpp"
#include "util/rng.hpp"

namespace splitlock::attack {

IdealAttackResult RunIdealAttack(const Netlist& original,
                                 const Netlist& locked,
                                 std::span<const uint8_t> correct_key,
                                 uint64_t guesses, uint64_t patterns_per_guess,
                                 uint64_t seed) {
  IdealAttackResult result;
  Rng rng(seed);
  Simulator sim_orig(original);
  Simulator sim_lock(locked);
  const std::vector<GateId> key_inputs = locked.KeyInputs();
  assert(correct_key.size() == key_inputs.size());
  const size_t num_pis = original.inputs().size();
  assert(num_pis == locked.inputs().size());

  std::vector<uint64_t> key_words(key_inputs.size());
  const uint64_t rounds = (guesses + 63) / 64;
  for (uint64_t round = 0; round < rounds; ++round) {
    const uint64_t lanes =
        (round + 1 == rounds && guesses % 64 != 0) ? guesses % 64 : 64;
    const uint64_t lane_mask = lanes == 64 ? ~0ULL : ((1ULL << lanes) - 1);

    // One key guess per lane.
    for (size_t k = 0; k < key_words.size(); ++k) {
      key_words[k] = rng.NextWord();
      sim_lock.SetSourceWord(key_inputs[k], key_words[k]);
    }
    // Count exact hits: lanes whose every key bit matches the correct key.
    uint64_t exact = lane_mask;
    for (size_t k = 0; k < key_words.size(); ++k) {
      exact &= correct_key[k] ? key_words[k] : ~key_words[k];
    }
    result.exact_guesses += std::popcount(exact);

    // Broadcast each input pattern across all lanes; accumulate per-lane
    // mismatch.
    uint64_t lane_error = 0;
    for (uint64_t p = 0; p < patterns_per_guess; ++p) {
      for (size_t i = 0; i < num_pis; ++i) {
        const uint64_t bit = rng.NextBool() ? ~0ULL : 0ULL;
        sim_orig.SetSourceWord(original.inputs()[i], bit);
        sim_lock.SetSourceWord(locked.inputs()[i], bit);
      }
      sim_orig.Run();
      sim_lock.Run();
      for (size_t o = 0; o < original.outputs().size(); ++o) {
        lane_error |= sim_orig.OutputWord(o) ^ sim_lock.OutputWord(o);
      }
      if ((lane_error & lane_mask) == lane_mask) break;  // all lanes failed
    }
    result.erroneous_guesses += std::popcount(lane_error & lane_mask);
    result.guesses += lanes;
  }
  return result;
}

split::Assignment IdealAssignment(const split::FeolView& feol, uint64_t seed) {
  const Netlist& nl = *feol.netlist;
  Rng rng(seed);
  std::vector<NetId> tie_nets;
  for (NetId n = 0; n < nl.NumNets(); ++n) {
    const GateId d = nl.DriverOf(n);
    if (d == kNullId || nl.net(n).sinks.empty()) continue;
    switch (nl.gate(d).op) {
      case GateOp::kTieHi:
      case GateOp::kTieLo:
      case GateOp::kKeyIn:
        tie_nets.push_back(n);
        break;
      default:
        break;
    }
  }

  split::Assignment assignment(feol.sink_stubs.size(), kNullId);
  for (size_t i = 0; i < feol.sink_stubs.size(); ++i) {
    const split::SinkStub& stub = feol.sink_stubs[i];
    if (IsKeyGateSink(feol, stub) && !tie_nets.empty()) {
      assignment[i] = tie_nets[rng.NextUint(tie_nets.size())];
    } else {
      assignment[i] = stub.true_net;  // regular nets granted
    }
  }
  return assignment;
}

}  // namespace splitlock::attack
