// The "ideal proximity attack" experiment (Sec. IV-A).
//
// Most conservative setup: assume the attacker has already inferred every
// regular net correctly and only the key-nets remain. As established by
// Theorem 1, such an attacker can do no better than guessing the key
// uniformly; the experiment draws a large number of random keys and checks
// that every guess still produces output errors (OER stays 100%).
//
// The sweep packs 64 independent key guesses into the 64 simulation lanes:
// primary-input patterns are broadcast across lanes while each lane carries
// its own key, so one simulator pass scores 64 guesses per pattern.
#pragma once

#include <cstdint>

#include "netlist/netlist.hpp"
#include "split/split.hpp"

namespace splitlock::attack {

struct IdealAttackResult {
  uint64_t guesses = 0;
  uint64_t erroneous_guesses = 0;  // guesses causing >= 1 output error
  uint64_t exact_guesses = 0;      // guesses matching the correct key

  double OerPercent() const {
    return guesses == 0 ? 0.0
                        : 100.0 * static_cast<double>(erroneous_guesses) /
                              static_cast<double>(guesses);
  }
};

// `locked` is the keyed netlist (kKeyIn sources); `correct_key` its key.
// Each guess is checked against the original function on
// `patterns_per_guess` random patterns.
IdealAttackResult RunIdealAttack(const Netlist& original,
                                 const Netlist& locked,
                                 std::span<const uint8_t> correct_key,
                                 uint64_t guesses, uint64_t patterns_per_guess,
                                 uint64_t seed);

// Assignment-form ideal attack on a FEOL view: every regular sink gets its
// true net; every key-gate sink gets a uniformly random TIE cell.
split::Assignment IdealAssignment(const split::FeolView& feol, uint64_t seed);

}  // namespace splitlock::attack
