#include "attack/metrics.hpp"

#include <cassert>
#include <vector>

#include "attack/proximity.hpp"

namespace splitlock::attack {
namespace {

// Logic value of a TIE-like source net, if it has one.
bool TieValueOf(const Netlist& nl, NetId n, bool* value) {
  const GateId d = nl.DriverOf(n);
  if (d == kNullId) return false;
  switch (nl.gate(d).op) {
    case GateOp::kTieHi:
    case GateOp::kConst1:
      *value = true;
      return true;
    case GateOp::kTieLo:
    case GateOp::kConst0:
      *value = false;
      return true;
    default:
      return false;
  }
}

}  // namespace

CcrReport ComputeCcr(const split::FeolView& feol,
                     const split::Assignment& assignment) {
  const Netlist& nl = *feol.netlist;
  assert(assignment.size() == feol.sink_stubs.size());
  CcrReport report;
  size_t regular_correct = 0;
  size_t key_physical = 0;
  size_t key_logical = 0;

  for (size_t i = 0; i < feol.sink_stubs.size(); ++i) {
    const split::SinkStub& stub = feol.sink_stubs[i];
    const NetId proposed = assignment[i];
    if (IsKeyGateSink(feol, stub)) {
      ++report.key_connections;
      if (proposed == stub.true_net) ++key_physical;
      bool true_value = false;
      bool guess_value = false;
      if (proposed != kNullId && TieValueOf(nl, stub.true_net, &true_value) &&
          TieValueOf(nl, proposed, &guess_value) &&
          true_value == guess_value) {
        ++key_logical;
      }
    } else {
      ++report.regular_connections;
      if (proposed == stub.true_net) ++regular_correct;
    }
  }
  if (report.regular_connections > 0) {
    report.regular_ccr_percent =
        100.0 * regular_correct / report.regular_connections;
  }
  if (report.key_connections > 0) {
    report.key_physical_ccr_percent =
        100.0 * key_physical / report.key_connections;
    report.key_logical_ccr_percent =
        100.0 * key_logical / report.key_connections;
  }
  return report;
}

double ComputePnrPercent(const split::FeolView& feol,
                         const split::Assignment& assignment) {
  const Netlist& nl = *feol.netlist;
  // Direct correctness: every broken pin of the gate got its true net.
  std::vector<uint8_t> direct_ok(nl.NumGates(), 1);
  for (size_t i = 0; i < feol.sink_stubs.size(); ++i) {
    const split::SinkStub& stub = feol.sink_stubs[i];
    if (assignment[i] != stub.true_net) direct_ok[stub.sink.gate] = 0;
  }
  // Transitive correctness over the fanin cone.
  std::vector<uint8_t> recovered(nl.NumGates(), 0);
  size_t logic_gates = 0;
  size_t recovered_gates = 0;
  for (GateId g : nl.TopoOrder()) {
    const Gate& gate = nl.gate(g);
    if (gate.op == GateOp::kDeleted) continue;
    bool ok = direct_ok[g] != 0;
    for (NetId n : gate.fanins) {
      const GateId d = nl.DriverOf(n);
      if (d != kNullId && recovered[d] == 0) {
        ok = false;
        break;
      }
    }
    recovered[g] = ok ? 1 : 0;
    if (gate.op != GateOp::kInput && gate.op != GateOp::kOutput) {
      ++logic_gates;
      if (ok) ++recovered_gates;
    }
  }
  return logic_gates == 0 ? 0.0 : 100.0 * recovered_gates / logic_gates;
}

AttackScore ScoreAttack(const split::FeolView& feol,
                        const split::Assignment& assignment,
                        uint64_t patterns, uint64_t seed) {
  AttackScore score;
  score.ccr = ComputeCcr(feol, assignment);
  score.pnr_percent = ComputePnrPercent(feol, assignment);
  const Netlist recovered = split::BuildRecoveredNetlist(feol, assignment);
  score.functional =
      CompareFunctional(*feol.netlist, recovered, patterns, seed);
  return score;
}

}  // namespace splitlock::attack
