// Attack scoring: CCR, HD, OER, PNR.
//
// Correct connection rate (CCR) follows Sec. IV-A: regular nets are scored
// by exact-net recovery; key-nets separately by *physical* CCR (the exact
// original TIE instance was found) and *logical* CCR (any TIE of the
// correct logic value was found — the designer's target is ~50%, random
// guessing). HD/OER compare the recovered netlist against the true design
// functionally. PNR (percentage of netlist recovery, after [12]) measures
// structural recovery transitively: a gate counts as recovered only when
// its entire fanin cone is correctly connected.
#pragma once

#include <cstdint>

#include "sim/metrics.hpp"
#include "split/split.hpp"

namespace splitlock::attack {

struct CcrReport {
  size_t regular_connections = 0;
  size_t key_connections = 0;
  double regular_ccr_percent = 0.0;
  double key_logical_ccr_percent = 0.0;
  double key_physical_ccr_percent = 0.0;
};

CcrReport ComputeCcr(const split::FeolView& feol,
                     const split::Assignment& assignment);

// Transitive structural recovery (percentage of logic gates whose full
// fanin cone is correct under `assignment`).
double ComputePnrPercent(const split::FeolView& feol,
                         const split::Assignment& assignment);

struct AttackScore {
  CcrReport ccr;
  double pnr_percent = 0.0;
  FunctionalDiff functional;  // HD / OER vs the true design
};

// Full scorecard: CCR + PNR + HD/OER over `patterns` random patterns.
AttackScore ScoreAttack(const split::FeolView& feol,
                        const split::Assignment& assignment,
                        uint64_t patterns, uint64_t seed);

}  // namespace splitlock::attack
