#include "attack/ml_attack.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <limits>

#include "attack/proximity.hpp"
#include "netlist/libcell.hpp"
#include "util/rng.hpp"

namespace splitlock::attack {
namespace {

constexpr size_t kNumFeatures = 6;
using Features = std::array<double, kNumFeatures>;

struct FeatureScaler {
  double die_hp = 1.0;
  double width = 1.0;
  double height = 1.0;
};

// Features of a candidate (driver at `src` driving `extra_sinks` already,
// sink gate `sink_gate` at `dst`).
Features MakeFeatures(const Netlist& nl, const FeatureScaler& scale,
                      GateId driver, Point src, GateId /*sink_gate*/,
                      Point dst) {
  Features f{};
  f[0] = 1.0;  // bias
  f[1] = ManhattanDistance(src, dst) / scale.die_hp;
  f[2] = std::abs(src.x - dst.x) / scale.width;
  f[3] = std::abs(src.y - dst.y) / scale.height;
  const Gate& dg = nl.gate(driver);
  const size_t fanout =
      dg.out == kNullId ? 0 : nl.net(dg.out).sinks.size();
  f[4] = std::min<double>(1.0, static_cast<double>(fanout) / 8.0);
  if (IsPhysicalOp(dg.op)) {
    const LibCell& cell = CellFor(dg);
    double load = 0.0;
    if (dg.out != kNullId) {
      for (const Pin& p : nl.net(dg.out).sinks) {
        const Gate& s = nl.gate(p.gate);
        if (IsPhysicalOp(s.op)) load += CellFor(s).input_cap_ff;
      }
    }
    f[5] = std::clamp(1.0 - load / cell.max_load_ff, 0.0, 1.0);
  } else {
    f[5] = 1.0;
  }
  return f;
}

double Sigmoid(double z) { return 1.0 / (1.0 + std::exp(-z)); }

double Dot(const Features& f, const std::array<double, kNumFeatures>& w) {
  double z = 0.0;
  for (size_t i = 0; i < kNumFeatures; ++i) z += f[i] * w[i];
  return z;
}

bool IsTieCellGate(const Gate& g) {
  switch (g.op) {
    case GateOp::kTieHi:
    case GateOp::kTieLo:
    case GateOp::kKeyIn:
      return true;
    default:
      return false;
  }
}

}  // namespace

MlAttackResult RunMlAttack(const split::FeolView& feol,
                           const MlAttackOptions& options) {
  const Netlist& nl = *feol.netlist;
  const phys::Layout& layout = *feol.layout;
  Rng rng(options.seed);
  MlAttackResult result;
  result.assignment.assign(feol.sink_stubs.size(), kNullId);
  if (feol.sink_stubs.empty()) return result;

  FeatureScaler scale;
  scale.die_hp = std::max(1e-9, layout.die.HalfPerimeter());
  scale.width = std::max(1e-9, layout.die.Width());
  scale.height = std::max(1e-9, layout.die.Height());

  // ---- Training set: intact connections are labeled positives; random
  // re-pairings of the same sinks are negatives. -------------------------
  struct Sample {
    Features f;
    double label;
  };
  std::vector<Sample> samples;
  std::vector<GateId> all_drivers;
  for (NetId n = 0; n < nl.NumNets(); ++n) {
    const GateId d = nl.DriverOf(n);
    if (d != kNullId && !nl.net(n).sinks.empty() && layout.placed[d]) {
      all_drivers.push_back(d);
    }
  }
  if (all_drivers.empty()) return result;

  for (NetId n = 0;
       n < nl.NumNets() &&
       result.training_positives < options.max_training_positives;
       ++n) {
    if (feol.net_broken[n]) continue;  // only FEOL-visible truth
    const GateId d = nl.DriverOf(n);
    if (d == kNullId || !layout.placed[d]) continue;
    for (const Pin& p : nl.net(n).sinks) {
      if (!layout.placed[p.gate]) continue;
      samples.push_back(Sample{
          MakeFeatures(nl, scale, d, layout.PinOf(d), p.gate,
                       layout.PinOf(p.gate)),
          1.0});
      ++result.training_positives;
      for (size_t neg = 0; neg < options.negatives_per_positive; ++neg) {
        const GateId wrong =
            all_drivers[rng.NextUint(all_drivers.size())];
        if (wrong == d) continue;
        samples.push_back(Sample{
            MakeFeatures(nl, scale, wrong, layout.PinOf(wrong), p.gate,
                         layout.PinOf(p.gate)),
            0.0});
      }
    }
  }
  if (samples.empty()) return result;

  // ---- Logistic regression by plain gradient descent. -------------------
  std::array<double, kNumFeatures> w{};
  for (size_t epoch = 0; epoch < options.training_epochs; ++epoch) {
    std::array<double, kNumFeatures> grad{};
    for (const Sample& s : samples) {
      const double err = Sigmoid(Dot(s.f, w)) - s.label;
      for (size_t i = 0; i < kNumFeatures; ++i) grad[i] += err * s.f[i];
    }
    for (size_t i = 0; i < kNumFeatures; ++i) {
      w[i] -= options.learning_rate * grad[i] /
              static_cast<double>(samples.size());
    }
  }
  size_t correct = 0;
  for (const Sample& s : samples) {
    const bool predicted = Sigmoid(Dot(s.f, w)) >= 0.5;
    if (predicted == (s.label > 0.5)) ++correct;
  }
  result.training_accuracy_percent =
      100.0 * static_cast<double>(correct) /
      static_cast<double>(samples.size());

  // ---- Inference on the broken connections. -----------------------------
  for (size_t si = 0; si < feol.sink_stubs.size(); ++si) {
    const split::SinkStub& stub = feol.sink_stubs[si];
    double best = -std::numeric_limits<double>::max();
    NetId best_net = kNullId;
    for (const split::DriverStub& drv : feol.driver_stubs) {
      const Gate& sink_gate = nl.gate(stub.sink.gate);
      if (sink_gate.out != kNullId && sink_gate.out == drv.net) continue;
      // Use the nearest ascent as the driver-side anchor.
      Point anchor = drv.ascents.front();
      double anchor_dist = std::numeric_limits<double>::max();
      for (const Point& a : drv.ascents) {
        const double d2 = ManhattanDistance(stub.position, a);
        if (d2 < anchor_dist) {
          anchor_dist = d2;
          anchor = a;
        }
      }
      const Features f = MakeFeatures(nl, scale, drv.driver, anchor,
                                      stub.sink.gate, stub.position);
      const double score = Dot(f, w);
      if (score > best) {
        best = score;
        best_net = drv.net;
      }
    }
    result.assignment[si] = best_net;
  }

  // ---- Same key-gate customization as the proximity attack. -------------
  if (options.postprocess_key_gates) {
    std::vector<NetId> tie_nets;
    for (NetId n = 0; n < nl.NumNets(); ++n) {
      const GateId d = nl.DriverOf(n);
      if (d != kNullId && IsTieCellGate(nl.gate(d)) &&
          !nl.net(n).sinks.empty()) {
        tie_nets.push_back(n);
      }
    }
    if (!tie_nets.empty()) {
      for (size_t si = 0; si < feol.sink_stubs.size(); ++si) {
        if (!IsKeyGateSink(feol, feol.sink_stubs[si])) continue;
        const GateId d = nl.DriverOf(result.assignment[si]);
        if (d != kNullId && IsTieCellGate(nl.gate(d))) continue;
        result.assignment[si] = tie_nets[rng.NextUint(tie_nets.size())];
      }
    }
  }
  return result;
}

}  // namespace splitlock::attack
