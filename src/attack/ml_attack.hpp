// Machine-learning-style attack on a split layout.
//
// The paper (footnote 3 and Sec. V) argues its key design stays resilient
// even against learning-based attackers (e.g. Zhang et al., DAC'18),
// because *any* proximity-style attack has to learn from FEOL-level hints,
// and the secure flow leaves none for the key-nets. This module makes that
// claim executable: a logistic-regression matcher is trained on the
// *intact* FEOL connections (driver/sink geometry, fanout, load headroom —
// features the attacker can measure on their own layout), then applied to
// the broken connections. Regular nets, whose placement was optimized by
// the same deterministic tools the model learned from, are predicted well;
// the randomized TIE cells follow no learnable geometry, so key-nets stay
// at coin-flip accuracy.
#pragma once

#include <cstdint>

#include "split/split.hpp"

namespace splitlock::attack {

struct MlAttackOptions {
  uint64_t seed = 1;
  size_t max_training_positives = 20000;
  size_t negatives_per_positive = 2;
  size_t training_epochs = 60;
  double learning_rate = 0.25;
  bool postprocess_key_gates = true;  // same customization as Sec. IV-A
};

struct MlAttackResult {
  split::Assignment assignment;
  size_t training_positives = 0;
  // Model accuracy on held-out intact connections (sanity signal that the
  // learner converged; ~50% would mean it learned nothing).
  double training_accuracy_percent = 0.0;
};

MlAttackResult RunMlAttack(const split::FeolView& feol,
                           const MlAttackOptions& options = {});

}  // namespace splitlock::attack
