#include "attack/proximity.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>
#include <vector>

#include "exec/parallel.hpp"
#include "netlist/libcell.hpp"
#include "util/rng.hpp"

namespace splitlock::attack {
namespace {

bool IsTieCellGate(const Gate& g) {
  switch (g.op) {
    case GateOp::kTieHi:
    case GateOp::kTieLo:
    case GateOp::kKeyIn:
      return true;
    default:
      return false;
  }
}

// Attacker-side timing estimate on the FEOL: forward arrival times with
// broken inputs treated as ready at t=0, backward required paths with
// broken fanouts ignored. Both are lower bounds, which is what an attacker
// pruning impossible pairings would use.
struct TimingEstimate {
  std::vector<double> arrival_ps;   // per net
  std::vector<double> downstream_ps;  // per net: delay to any PO below it
  double clock_ps = 0.0;
};

TimingEstimate EstimateTiming(const split::FeolView& feol) {
  const Netlist& nl = *feol.netlist;
  TimingEstimate t;
  t.arrival_ps.assign(nl.NumNets(), 0.0);
  t.downstream_ps.assign(nl.NumNets(), 0.0);

  // Broken pins, for masking.
  std::vector<std::vector<uint8_t>> pin_broken(nl.NumGates());
  for (const split::SinkStub& s : feol.sink_stubs) {
    auto& mask = pin_broken[s.sink.gate];
    if (mask.empty()) mask.assign(nl.gate(s.sink.gate).fanins.size(), 0);
    mask[s.sink.index] = 1;
  }
  auto broken = [&](GateId g, uint32_t pin) {
    const auto& mask = pin_broken[g];
    return !mask.empty() && mask[pin] != 0;
  };

  const std::vector<GateId> topo = nl.TopoOrder();
  for (GateId g : topo) {
    const Gate& gate = nl.gate(g);
    if (gate.op == GateOp::kOutput || gate.op == GateOp::kDeleted ||
        IsSourceOp(gate.op)) {
      continue;
    }
    double in_arr = 0.0;
    for (uint32_t i = 0; i < gate.fanins.size(); ++i) {
      if (broken(g, i)) continue;
      in_arr = std::max(in_arr, t.arrival_ps[gate.fanins[i]]);
    }
    t.arrival_ps[gate.out] = in_arr + CellFor(gate).intrinsic_delay_ps;
  }
  for (auto it = topo.rbegin(); it != topo.rend(); ++it) {
    const Gate& gate = nl.gate(*it);
    if (gate.op == GateOp::kOutput || gate.op == GateOp::kDeleted ||
        IsSourceOp(gate.op)) {
      continue;
    }
    const double through =
        t.downstream_ps[gate.out] + CellFor(gate).intrinsic_delay_ps;
    for (uint32_t i = 0; i < gate.fanins.size(); ++i) {
      if (broken(*it, i)) continue;
      t.downstream_ps[gate.fanins[i]] =
          std::max(t.downstream_ps[gate.fanins[i]], through);
    }
  }
  for (GateId g : nl.outputs()) {
    t.clock_ps = std::max(t.clock_ps, t.arrival_ps[nl.gate(g).fanins[0]]);
  }
  if (t.clock_ps <= 0.0) t.clock_ps = 1.0;
  return t;
}

}  // namespace

bool IsKeyGateSink(const split::FeolView& feol, const split::SinkStub& stub) {
  // Key-gates are structurally recognizable XOR/XNORs whose *second* pin is
  // fed by the key network (both locking constructions wire the key there).
  // The first pin carries regular data; when that connection breaks it is
  // an ordinary regular-net stub.
  return feol.netlist->gate(stub.sink.gate).HasFlag(kFlagKeyGate) &&
         stub.sink.index == 1;
}

ProximityResult RunProximityAttack(const split::FeolView& feol,
                                   const ProximityOptions& options) {
  const Netlist& nl = *feol.netlist;
  Rng rng(options.seed);
  ProximityResult result;
  result.assignment.assign(feol.sink_stubs.size(), kNullId);
  if (feol.sink_stubs.empty()) return result;

  const TimingEstimate timing =
      options.use_timing_constraint
          ? EstimateTiming(feol)
          : TimingEstimate{std::vector<double>(nl.NumNets(), 0.0),
                           std::vector<double>(nl.NumNets(), 0.0), 1.0};

  // Score candidate (sink, driver) pairs. To keep the candidate set
  // tractable on large designs, each sink considers only the
  // `max_candidates_per_sink` best-scoring drivers (a real attacker prunes
  // the same way: distant candidates are hopeless).
  struct Pair {
    double score;
    uint32_t sink_index;
    uint32_t driver_index;
  };
  // Candidate scoring is independent per sink: shard the sinks across the
  // exec thread pool, keep each sink's pruned candidate list in its own
  // slot, and concatenate in sink order afterwards — the resulting pair
  // list (and thus the greedy commit order) is identical at any thread
  // count.
  std::vector<std::vector<Pair>> sink_candidates(feol.sink_stubs.size());
  exec::ParallelFor(feol.sink_stubs.size(), 8, [&](size_t lo, size_t hi) {
    std::vector<Pair> per_sink;
    for (uint32_t si = static_cast<uint32_t>(lo); si < hi; ++si) {
      const split::SinkStub& stub = feol.sink_stubs[si];
      per_sink.clear();
      for (uint32_t di = 0; di < feol.driver_stubs.size(); ++di) {
        const split::DriverStub& drv = feol.driver_stubs[di];
        // Self-driving is structurally impossible.
        const Gate& sink_gate = nl.gate(stub.sink.gate);
        if (sink_gate.out != kNullId && sink_gate.out == drv.net) continue;
        if (drv.ascents.empty()) continue;
        // Score: stub distance plus a track-alignment term. The missing BEOL
        // piece runs in the hidden layer's preferred direction, so the two
        // stubs of a true pairing are nearly co-linear (share an x or y
        // coordinate); candidates needing a dog-leg on the hidden metal are
        // penalized. (Key-net stubs sit on cell pins with no such geometry —
        // nothing to align on.)
        double dist = std::numeric_limits<double>::max();
        for (const Point& a : drv.ascents) {
          const double dx = std::abs(stub.position.x - a.x);
          const double dy = std::abs(stub.position.y - a.y);
          // Exactly track-aligned pairs (the hidden wire is one straight
          // segment) are strongly preferred; dog-legged candidates carry a
          // flat penalty so they only matter where no aligned candidate
          // exists (e.g. connections hidden above the split in full).
          const double misalignment = std::min(dx, dy);
          const double score =
              misalignment < 0.05 ? dx + dy : 60.0 + dx + dy;
          dist = std::min(dist, score);
        }
        if (options.use_direction_hint &&
            !(stub.hint_toward == stub.position)) {
          // The visible sink fragment runs hint_toward -> position; the
          // missing driver plausibly continues beyond `position`. Penalize
          // candidates lying back toward the sink pin.
          const double frag_dx = stub.position.x - stub.hint_toward.x;
          const double frag_dy = stub.position.y - stub.hint_toward.y;
          const Point& nearest = *std::min_element(
              drv.ascents.begin(), drv.ascents.end(),
              [&](const Point& a, const Point& b) {
                return ManhattanDistance(stub.position, a) <
                       ManhattanDistance(stub.position, b);
              });
          const double cand_dx = nearest.x - stub.position.x;
          const double cand_dy = nearest.y - stub.position.y;
          if (frag_dx * cand_dx + frag_dy * cand_dy < 0.0) {
            dist *= options.direction_penalty;
          }
        }
        per_sink.push_back(Pair{dist, si, di});
      }
      const size_t keep =
          std::min<size_t>(options.max_candidates_per_sink, per_sink.size());
      std::partial_sort(per_sink.begin(), per_sink.begin() + keep,
                        per_sink.end(), [](const Pair& a, const Pair& b) {
                          return a.score < b.score;
                        });
      sink_candidates[si].assign(per_sink.begin(), per_sink.begin() + keep);
    }
  });
  std::vector<Pair> pairs;
  for (const std::vector<Pair>& cands : sink_candidates) {
    pairs.insert(pairs.end(), cands.begin(), cands.end());
  }
  std::sort(pairs.begin(), pairs.end(), [](const Pair& a, const Pair& b) {
    return a.score < b.score;
  });

  // Current load per broken net (committed sinks' pin caps).
  std::vector<double> extra_load_ff(feol.driver_stubs.size(), 0.0);
  // Committed extra edges for the loop check: driver gate -> sink gate.
  std::vector<std::vector<GateId>> extra_fanout(nl.NumGates());

  // DFS: is `target` reachable from `from` following gate fanouts (intact
  // nets + committed proposals)?
  std::vector<uint32_t> visit_mark(nl.NumGates(), 0);
  uint32_t visit_token = 0;
  std::vector<GateId> dfs_stack;
  auto reaches = [&](GateId from, GateId target) {
    ++visit_token;
    dfs_stack.clear();
    dfs_stack.push_back(from);
    visit_mark[from] = visit_token;
    while (!dfs_stack.empty()) {
      const GateId g = dfs_stack.back();
      dfs_stack.pop_back();
      if (g == target) return true;
      const Gate& gate = nl.gate(g);
      if (gate.out != kNullId) {
        for (const Pin& p : nl.net(gate.out).sinks) {
          if (visit_mark[p.gate] != visit_token) {
            visit_mark[p.gate] = visit_token;
            dfs_stack.push_back(p.gate);
          }
        }
      }
      for (GateId s : extra_fanout[g]) {
        if (visit_mark[s] != visit_token) {
          visit_mark[s] = visit_token;
          dfs_stack.push_back(s);
        }
      }
    }
    return false;
  };

  for (const Pair& pair : pairs) {
    if (result.assignment[pair.sink_index] != kNullId) continue;
    const split::SinkStub& stub = feol.sink_stubs[pair.sink_index];
    const split::DriverStub& drv = feol.driver_stubs[pair.driver_index];
    const GateId driver_gate = drv.driver;
    const Gate& driver = nl.gate(driver_gate);

    if (options.use_load_constraint && IsPhysicalOp(driver.op)) {
      const Gate& sink_gate = nl.gate(stub.sink.gate);
      const double sink_cap =
          IsPhysicalOp(sink_gate.op) ? CellFor(sink_gate).input_cap_ff : 0.0;
      const double projected =
          extra_load_ff[pair.driver_index] + sink_cap;
      if (projected > CellFor(driver).max_load_ff) continue;
    }
    if (options.use_loop_constraint) {
      // Connecting driver -> sink creates a cycle iff the driver is
      // reachable from the sink gate.
      if (reaches(stub.sink.gate, driver_gate)) continue;
    }
    if (options.use_timing_constraint) {
      const Gate& sink_gate = nl.gate(stub.sink.gate);
      const double downstream =
          sink_gate.out == kNullId
              ? 0.0
              : CellFor(sink_gate).intrinsic_delay_ps +
                    timing.downstream_ps[sink_gate.out];
      const double wire_ps = pair.score * options.wire_delay_ps_per_um;
      const double path = timing.arrival_ps[drv.net] + wire_ps + downstream;
      if (path > timing.clock_ps * options.timing_slack_factor) continue;
    }

    result.assignment[pair.sink_index] = drv.net;
    ++result.committed_by_proximity;
    if (options.use_load_constraint) {
      const Gate& sink_gate = nl.gate(stub.sink.gate);
      extra_load_ff[pair.driver_index] +=
          IsPhysicalOp(sink_gate.op) ? CellFor(sink_gate).input_cap_ff : 0.0;
    }
    extra_fanout[driver_gate].push_back(stub.sink.gate);
  }

  // Fallback: every remaining sink gets a random broken driver (the
  // attacker must hand back a complete netlist).
  for (uint32_t si = 0; si < feol.sink_stubs.size(); ++si) {
    if (result.assignment[si] != kNullId) continue;
    const split::DriverStub& drv =
        feol.driver_stubs[rng.NextUint(feol.driver_stubs.size())];
    result.assignment[si] = drv.net;
    ++result.fallback_random;
  }

  // Sec. IV-A post-processing: key-gates falsely connected to a regular
  // driver are re-connected to a random TIE cell.
  if (options.postprocess_key_gates) {
    std::vector<NetId> tie_nets;
    for (NetId n = 0; n < nl.NumNets(); ++n) {
      const GateId d = nl.DriverOf(n);
      if (d != kNullId && IsTieCellGate(nl.gate(d)) &&
          !nl.net(n).sinks.empty()) {
        tie_nets.push_back(n);
      }
    }
    if (!tie_nets.empty()) {
      for (uint32_t si = 0; si < feol.sink_stubs.size(); ++si) {
        if (!IsKeyGateSink(feol, feol.sink_stubs[si])) continue;
        const GateId d = nl.DriverOf(result.assignment[si]);
        if (d != kNullId && IsTieCellGate(nl.gate(d))) continue;  // keep
        result.assignment[si] = tie_nets[rng.NextUint(tie_nets.size())];
        ++result.key_gates_reconnected;
      }
    }
  }
  return result;
}

}  // namespace splitlock::attack
