// Proximity attack on a split layout (Wang et al., TVLSI'18 style).
//
// The attacker sees the FEOL: all cells, their placement, intact wiring,
// and the broken connections' stubs. Candidate (driver, sink) pairings are
// scored by stub proximity refined with the routing-direction hint, then
// committed greedily subject to the classic sanity constraints the paper
// enumerates in its proof outline (Sec. II-C):
//   1. physical proximity between stubs,
//   2. FEOL routing direction of the visible fragments,
//   3. load-capacitance limits of the proposed driver,
//   4. acyclicity (no combinational loops),
//   5. timing (the completed path must fit an estimated clock budget).
// The customized attack of Sec. IV-A additionally re-connects any key-gate
// that ended up paired with a regular driver to a randomly chosen TIE cell
// (the attacker can recognize key-gates in the FEOL); footnote 6's ablation
// turns that post-processing off.
#pragma once

#include <cstdint>

#include "split/split.hpp"

namespace splitlock::attack {

struct ProximityOptions {
  uint64_t seed = 1;
  bool use_direction_hint = true;
  bool use_load_constraint = true;
  bool use_loop_constraint = true;
  bool use_timing_constraint = true;
  bool postprocess_key_gates = true;
  // Timing budget: completed paths may exceed the FEOL-estimated critical
  // path by this factor.
  double timing_slack_factor = 1.4;
  // Wire delay estimate for a proposed connection, ps per um of stub
  // distance (attacker-side heuristic).
  double wire_delay_ps_per_um = 0.35;
  // Direction hint: candidates lying behind the visible fragment get their
  // distance inflated by this factor.
  double direction_penalty = 2.0;
  // Per-sink candidate cap (nearest-k pruning; bounds memory and runtime
  // on large designs).
  size_t max_candidates_per_sink = 64;
};

struct ProximityResult {
  split::Assignment assignment;
  size_t committed_by_proximity = 0;  // pairs placed by the greedy matcher
  size_t fallback_random = 0;         // sinks assigned by random fallback
  size_t key_gates_reconnected = 0;   // post-processing reconnections
};

ProximityResult RunProximityAttack(const split::FeolView& feol,
                                   const ProximityOptions& options = {});

// True when the sink stub belongs to a key-gate's key pin — information the
// FEOL hands the attacker (key-gates are structurally recognizable).
bool IsKeyGateSink(const split::FeolView& feol, const split::SinkStub& stub);

}  // namespace splitlock::attack
