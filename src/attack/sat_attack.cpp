#include "attack/sat_attack.hpp"

#include <algorithm>
#include <array>
#include <atomic>
#include <cassert>
#include <memory>
#include <optional>
#include <set>

#include "exec/parallel.hpp"
#include "exec/stream_rng.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "sat/solver.hpp"
#include "util/lanes.hpp"
#include "sat/tseitin.hpp"
#include "sim/metrics.hpp"
#include "sim/simulator.hpp"
#include "util/rng.hpp"
#include "util/stopwatch.hpp"

namespace splitlock::attack {
namespace {

// SAT-attack observability. All four counters are count-class: rounds,
// DIPs and oracle queries are pure functions of the instance + options,
// and conflicts are deterministic by the solver contract (the portfolio
// adopts the lowest-index completing clone, whose trajectory does not
// depend on the interleaving). The dip_batch histogram buckets the
// per-round DIP batch widths the wide-oracle batching produces.
struct SatMetrics {
  obs::Counter* rounds;
  obs::Counter* dips;
  obs::Counter* oracle_queries;
  obs::Counter* conflicts;
  obs::Histogram* dip_batch;
};

SatMetrics& Metrics() {
  static SatMetrics m = [] {
    obs::Registry& r = obs::Registry::Instance();
    return SatMetrics{
        r.RegisterCounter("attack.sat.rounds"),
        r.RegisterCounter("attack.sat.dips"),
        r.RegisterCounter("attack.sat.oracle_queries"),
        r.RegisterCounter("attack.sat.conflicts"),
        r.RegisterHistogram("attack.sat.dip_batch", obs::Pow2Edges(1, 1024)),
    };
  }();
  return m;
}

// Shared scaffolding of the oracle-guided attack: the two-copy miter over
// the locked netlist, the batched oracle frontend and the per-round DIP
// constraint encoding. Both the sequential DIP loop and the portfolio loop
// drive one of these; only the miter-solve step differs.
class MiterAttack {
 public:
  MiterAttack(const Netlist& locked, const Netlist& oracle, bool incremental)
      : locked_(locked),
        enc_(solver_),
        oracle_sim_(oracle),
        num_pis_(locked.inputs().size()),
        num_pos_(locked.outputs().size()),
        num_keys_(locked.KeyInputs().size()),
        incremental_(incremental) {
    x_.resize(num_pis_);
    for (auto& l : x_) l = enc_.FreshLit();
    k1_.resize(num_keys_);
    k2_.resize(num_keys_);
    for (auto& l : k1_) l = enc_.FreshLit();
    for (auto& l : k2_) l = enc_.FreshLit();

    const std::vector<sat::Lit> outs1 = enc_.EncodeNetlist(locked, x_, k1_);
    const std::vector<sat::Lit> outs2 = enc_.EncodeNetlist(locked, x_, k2_);

    // Miter: exists an input where the two key hypotheses disagree.
    std::vector<sat::Lit> diffs;
    for (size_t o = 0; o < num_pos_; ++o) {
      const sat::Lit d = enc_.EncodeOp(
          GateOp::kXor, std::array<sat::Lit, 2>{outs1[o], outs2[o]});
      if (d != enc_.FalseLit()) diffs.push_back(d);
    }
    // diff_any <-> OR(diffs): encode via a fresh selector we can assume.
    diff_any_ = enc_.FreshLit();
    std::vector<sat::Lit> clause{sat::Negate(diff_any_)};
    clause.insert(clause.end(), diffs.begin(), diffs.end());
    solver_.AddClause(clause);  // diff_any -> OR(diffs)

    if (incremental_) dip_enc_.emplace(enc_, locked_);
  }

  sat::Solver& solver() { return solver_; }
  sat::Lit diff_any() const { return diff_any_; }

  // The DIP carried by the model currently held in solver().
  std::vector<uint8_t> ExtractDip() const {
    std::vector<uint8_t> dip(num_pis_);
    for (size_t i = 0; i < num_pis_; ++i) {
      const bool v = solver_.ModelValue(sat::VarOf(x_[i]));
      dip[i] = static_cast<uint8_t>(sat::IsNegated(x_[i]) ? !v : v);
    }
    return dip;
  }

  // Permanently excludes input assignment `dip` from the miter search so a
  // re-solve must surface a *different* DIP. The clause is guarded by the
  // miter selector (¬diff_any ∨ ¬(x = dip)): the final key-extraction
  // solve, which runs without the diff_any assumption, is unaffected, and
  // once the oracle constraints for `dip` are added both key hypotheses
  // agree on it, making the clause implied — so keeping it forever is
  // sound.
  void BlockDip(std::span<const uint8_t> dip) {
    std::vector<sat::Lit> clause;
    clause.reserve(num_pis_ + 1);
    clause.push_back(sat::Negate(diff_any_));
    for (size_t i = 0; i < num_pis_; ++i) {
      clause.push_back(dip[i] ? sat::Negate(x_[i]) : x_[i]);
    }
    solver_.AddClause(std::move(clause));
  }

  // Queries the oracle on the round's whole DIP batch — ONE
  // DipOracle::Flush sweep, one batch column per DIP — and constrains both
  // key hypotheses to agree with every response. Fills the telemetry
  // entry's oracle/encode timings and batch width.
  void ConstrainWithOracle(std::span<const std::vector<uint8_t>> dips,
                           SatRoundTelemetry* round) {
    Metrics().oracle_queries->Add(dips.size());
    Metrics().dip_batch->Observe(dips.size());
    const Stopwatch oracle_sw;
    std::vector<size_t> queries;
    queries.reserve(dips.size());
    {
      obs::Span span("attack.sat.oracle", dips.size());
      for (const std::vector<uint8_t>& dip : dips) {
        queries.push_back(oracle_sim_.Enqueue(dip));
      }
      oracle_sim_.Flush();
    }
    round->oracle_ms = oracle_sw.Ms();
    round->dip_batch = dips.size();

    // Under constant inputs all non-key logic folds to constants; only the
    // key-dependent cone produces CNF. The two paths below emit
    // bit-identical clause streams (see IncrementalDipEncoder); the
    // incremental one skips the per-round full-netlist walks.
    obs::Span encode_span("attack.sat.encode", dips.size());
    const Stopwatch encode_sw;
    std::vector<sat::Lit> const_in;
    for (size_t d = 0; d < dips.size(); ++d) {
      const std::vector<uint8_t>& dip = dips[d];
      if (incremental_) {
        dip_enc_->SetDip(dip);
      } else {
        const_in.resize(num_pis_);
        for (size_t i = 0; i < num_pis_; ++i) {
          const_in[i] = dip[i] ? enc_.TrueLit() : enc_.FalseLit();
        }
      }
      for (const auto& keys : {k1_, k2_}) {
        const std::vector<sat::Lit> outs =
            incremental_ ? dip_enc_->Encode(keys)
                         : enc_.EncodeNetlist(locked_, const_in, keys);
        for (size_t o = 0; o < num_pos_; ++o) {
          const bool want = oracle_sim_.OutputBit(queries[d], o);
          solver_.AddUnit(want ? outs[o] : sat::Negate(outs[o]));
        }
      }
    }
    round->encode_ms = encode_sw.Ms();
  }

  const DipOracle& oracle() const { return oracle_sim_; }

  // All DIPs exhausted: any key satisfying the accumulated IO constraints
  // is functionally correct. Solve once more without the miter assumption.
  void ExtractKey(uint64_t conflict_limit, SatAttackResult* result) {
    obs::Span span("attack.sat.extract_key");
    const Stopwatch final_sw;
    const sat::SolveResult final_sr = solver_.Solve({}, conflict_limit);
    result->telemetry.final_solve_ms = final_sw.Ms();
    if (final_sr != sat::SolveResult::kSat) return;
    result->key_found = true;
    result->recovered_key.resize(num_keys_);
    for (size_t i = 0; i < num_keys_; ++i) {
      const bool v = solver_.ModelValue(sat::VarOf(k1_[i]));
      result->recovered_key[i] =
          static_cast<uint8_t>(sat::IsNegated(k1_[i]) ? !v : v);
    }
  }

 private:
  const Netlist& locked_;
  sat::Solver solver_;  // master solver; declared before the encoder
  sat::StructuralEncoder enc_;
  DipOracle oracle_sim_;
  const size_t num_pis_;
  const size_t num_pos_;
  const size_t num_keys_;
  const bool incremental_;
  std::vector<sat::Lit> x_;
  std::vector<sat::Lit> k1_;
  std::vector<sat::Lit> k2_;
  sat::Lit diff_any_ = 0;
  std::optional<sat::IncrementalDipEncoder> dip_enc_;
};

}  // namespace

DipOracle::DipOracle(const Netlist& oracle)
    : sim_(oracle),
      num_pis_(oracle.inputs().size()),
      num_pos_(oracle.outputs().size()) {}

size_t DipOracle::Enqueue(std::span<const uint8_t> input_bits) {
  assert(input_bits.size() == num_pis_);
  pending_.emplace_back(input_bits.begin(), input_bits.end());
  return responses_.size() + pending_.size() - 1;
}

void DipOracle::Flush() {
  if (pending_.empty()) return;
  const size_t width = pending_.size();
  ++flushes_;
  max_batch_ = std::max(max_batch_, width);
  sim_.BeginBatch(width);
  std::vector<uint64_t> row(width);
  const std::vector<GateId>& pis = sim_.netlist().inputs();
  for (size_t i = 0; i < num_pis_; ++i) {
    for (size_t q = 0; q < width; ++q) {
      row[q] = pending_[q][i] ? ~0ULL : 0ULL;
    }
    sim_.SetSourceBatch(pis[i], row);
  }
  sim_.RunBatch();
  for (size_t q = 0; q < width; ++q) {
    std::vector<uint8_t> response(num_pos_);
    for (size_t o = 0; o < num_pos_; ++o) {
      response[o] = static_cast<uint8_t>(sim_.BatchOutputWord(o, q) & 1);
    }
    responses_.push_back(std::move(response));
  }
  pending_.clear();
}

bool DipOracle::OutputBit(size_t q, size_t po) const {
  assert(q < responses_.size() && "query not flushed");
  return responses_[q][po] != 0;
}

SatAttackResult RunSatAttack(const Netlist& locked, const Netlist& oracle,
                             const SatAttackOptions& options) {
  assert(locked.inputs().size() == oracle.inputs().size());
  assert(locked.outputs().size() == oracle.outputs().size());
  SatAttackResult result;
  const Stopwatch total_sw;

  MiterAttack miter(locked, oracle, options.incremental_dip_encoding);
  sat::Solver& solver = miter.solver();
  const std::vector<sat::Lit> assumptions{miter.diff_any()};

  while (result.dips_used < options.max_dips) {
    if (options.wall_budget_s > 0.0 &&
        total_sw.Ms() >= options.wall_budget_s * 1000.0) {
      break;  // advisory wall budget blown; report as unfinished
    }
    SatRoundTelemetry tel;
    obs::Span round_span("attack.sat.round", result.telemetry.rounds.size());
    Metrics().rounds->Add(1);
    const Stopwatch solve_sw;
    const uint64_t conflicts_before = solver.conflicts();
    sat::SolveResult sr;
    {
      obs::Span span("attack.sat.solve");
      sr = solver.Solve(assumptions, options.conflict_limit_per_solve);
    }
    if (sr == sat::SolveResult::kUnknown) {  // budget blown
      tel.solve_ms = solve_sw.Ms();
      tel.conflicts = solver.conflicts() - conflicts_before;
      Metrics().conflicts->Add(tel.conflicts);
      result.telemetry.rounds.push_back(tel);
      result.telemetry.total_conflicts = solver.conflicts();
      result.telemetry.total_ms = total_sw.Ms();
      return result;
    }
    if (sr == sat::SolveResult::kUnsat) {
      tel.solve_ms = solve_sw.Ms();
      tel.conflicts = solver.conflicts() - conflicts_before;
      Metrics().conflicts->Add(tel.conflicts);
      result.telemetry.rounds.push_back(tel);
      result.finished = true;
      break;
    }
    // Multi-DIP round: keep re-solving under blocking clauses until K
    // distinct DIPs are in hand (or the miter runs dry / the budget
    // blows, either of which just ends the batch early — the next round's
    // plain solve re-establishes the loop invariant).
    const size_t batch_cap =
        std::min(std::max<size_t>(options.dips_per_round, 1),
                 options.max_dips - result.dips_used);
    std::vector<std::vector<uint8_t>> dips;
    dips.push_back(miter.ExtractDip());
    while (dips.size() < batch_cap) {
      miter.BlockDip(dips.back());
      const sat::SolveResult extra =
          solver.Solve(assumptions, options.conflict_limit_per_solve);
      if (extra != sat::SolveResult::kSat) break;
      dips.push_back(miter.ExtractDip());
    }
    tel.solve_ms = solve_sw.Ms();
    tel.conflicts = solver.conflicts() - conflicts_before;
    Metrics().conflicts->Add(tel.conflicts);
    result.telemetry.rounds.push_back(tel);
    result.dips_used += dips.size();
    Metrics().dips->Add(dips.size());
    result.telemetry.oracle_queries += dips.size();
    miter.ConstrainWithOracle(dips, &result.telemetry.rounds.back());
  }
  if (result.finished) {
    miter.ExtractKey(options.conflict_limit_per_solve, &result);
    if (result.key_found) {
      const Stopwatch verify_sw;
      result.functionally_correct =
          RandomPatternsAgree(oracle, locked, options.verify_patterns,
                              options.seed, {}, result.recovered_key);
      result.telemetry.verify_ms = verify_sw.Ms();
    }
  }
  result.telemetry.total_conflicts = solver.conflicts();
  result.telemetry.total_ms = total_sw.Ms();
  return result;
}

sat::SolverConfig PortfolioMemberConfig(uint64_t seed, size_t round,
                                        size_t index) {
  sat::SolverConfig config;
  if (index == 0) return config;  // baseline: the sequential attack's config
  const uint64_t h = exec::Mix64(seed ^ exec::Mix64(round * 8191 + index));
  config.branch_seed = h;
  switch (index % 3) {
    case 0:
      config.polarity = sat::PolarityMode::kTrue;
      break;
    case 1:
      config.polarity = sat::PolarityMode::kRandom;
      break;
    case 2:
      config.polarity = sat::PolarityMode::kFalse;
      break;
  }
  config.random_branch_freq = 0.01 * static_cast<double>(1 + index % 4);
  config.restart_unit = 64ULL << (index % 4);
  return config;
}

PortfolioSatResult RunPortfolioSatAttack(const Netlist& locked,
                                         const Netlist& oracle,
                                         const PortfolioSatOptions& options) {
  assert(locked.inputs().size() == oracle.inputs().size());
  assert(locked.outputs().size() == oracle.outputs().size());
  PortfolioSatResult out;
  const size_t num_configs = std::max<size_t>(options.num_configs, 1);
  out.wins_per_config.assign(num_configs, 0);
  SatAttackResult& result = out.attack;
  const Stopwatch total_sw;

  MiterAttack miter(locked, oracle, /*incremental=*/true);
  sat::Solver& master = miter.solver();
  const std::vector<sat::Lit> assumptions{miter.diff_any()};

  // One race participant. Heap-allocated because std::atomic is immovable.
  struct ConfigRun {
    sat::Solver solver;
    sat::SolveResult result = sat::SolveResult::kUnknown;
    std::atomic<bool> abort{false};
  };

  size_t round = 0;
  while (result.dips_used < options.max_dips) {
    if (options.total_conflict_budget > 0 &&
        master.conflicts() >= options.total_conflict_budget) {
      break;  // cumulative conflict ceiling (deterministic); unfinished
    }
    if (options.wall_budget_s > 0.0 &&
        total_sw.Ms() >= options.wall_budget_s * 1000.0) {
      break;  // advisory wall budget blown; report as unfinished
    }
    SatRoundTelemetry tel;
    obs::Span round_span("attack.sat.round", result.telemetry.rounds.size());
    Metrics().rounds->Add(1);
    const Stopwatch solve_sw;
    const uint64_t conflicts_before = master.conflicts();

    // Phase 1: the baseline configuration runs directly on the master — no
    // clone. Easy rounds (the common case) therefore cost exactly what the
    // sequential attack pays; the diversified race below is reserved for
    // rounds where the baseline stalls.
    master.SetConfig(PortfolioMemberConfig(options.seed, round, 0));
    sat::SolveResult sr;
    {
      obs::Span span("attack.sat.solve");
      sr = master.Solve(assumptions,
                        master.conflicts() + options.conflicts_per_round);
    }
    if (sr != sat::SolveResult::kUnknown) tel.winner = 0;

    if (sr == sat::SolveResult::kUnknown && num_configs > 1) {
      // Phase 2: the probe blew its per-round budget. Race diversified
      // clones of the (probe-enriched) master; each keeps its learnt
      // clauses from phase 1.
      std::vector<std::unique_ptr<ConfigRun>> runs(num_configs);
      for (size_t i = 1; i < num_configs; ++i) {
        runs[i] = std::make_unique<ConfigRun>();
      }
      // Lowest configuration index known to have completed; runs above it
      // can no longer win and may be aborted or skipped outright.
      std::atomic<size_t> best_completed{num_configs};
      exec::TaskGroup group;
      for (size_t i = 1; i < num_configs; ++i) {
        group.Run([&, i] {
          ConfigRun& run = *runs[i];
          if (best_completed.load(std::memory_order_acquire) < i) return;
          run.solver = master.Clone();
          run.solver.SetConfig(PortfolioMemberConfig(options.seed, round, i));
          run.solver.SetAbortFlag(&run.abort);
          run.result = run.solver.Solve(
              assumptions, run.solver.conflicts() + options.conflicts_per_round);
          if (run.result != sat::SolveResult::kUnknown) {
            size_t prev = best_completed.load(std::memory_order_acquire);
            while (i < prev && !best_completed.compare_exchange_weak(
                                   prev, i, std::memory_order_acq_rel)) {
            }
            for (size_t j = i + 1; j < num_configs; ++j) {
              runs[j]->abort.store(true, std::memory_order_release);
            }
          }
        });
      }
      group.Wait();
      // Deterministic winner: lowest index that completed. (An aborted run
      // reports kUnknown; it was aborted only because a lower index
      // completed, so it could not have been the winner anyway.)
      for (size_t i = 1; i < num_configs; ++i) {
        if (runs[i]->result != sat::SolveResult::kUnknown) {
          sr = runs[i]->result;
          tel.winner = static_cast<int>(i);
          // Adopt the winner: its clause database (with this round's learnt
          // clauses), activities and saved phases become the next round's
          // master. The encoder keeps pointing at the same Solver object,
          // and clones never add variables, so literal numbering stays
          // aligned.
          master = std::move(runs[i]->solver);
          master.SetAbortFlag(nullptr);  // the flag dies with this round
          break;
        }
      }
    }
    if (sr == sat::SolveResult::kUnknown) {  // no configuration completed
      tel.solve_ms = solve_sw.Ms();
      tel.conflicts = master.conflicts() - conflicts_before;
      Metrics().conflicts->Add(tel.conflicts);
      result.telemetry.rounds.push_back(tel);
      result.telemetry.total_conflicts = master.conflicts();
      result.telemetry.total_ms = total_sw.Ms();
      return out;
    }
    ++out.wins_per_config[static_cast<size_t>(tel.winner)];
    if (sr == sat::SolveResult::kUnsat) {
      tel.solve_ms = solve_sw.Ms();
      tel.conflicts = master.conflicts() - conflicts_before;
      Metrics().conflicts->Add(tel.conflicts);
      result.telemetry.rounds.push_back(tel);
      result.finished = true;
      break;
    }
    // Multi-DIP round: extra DIPs come from sequential blocking-clause
    // re-solves on the adopted master — a serial, deterministic tail, so
    // the batch is identical at any thread count. Each re-solve gets the
    // usual per-round conflict allowance; a dry miter or a blown budget
    // just ends the batch.
    const size_t batch_cap =
        std::min(std::max<size_t>(options.dips_per_round, 1),
                 options.max_dips - result.dips_used);
    std::vector<std::vector<uint8_t>> dips;
    dips.push_back(miter.ExtractDip());
    while (dips.size() < batch_cap) {
      miter.BlockDip(dips.back());
      const sat::SolveResult extra = master.Solve(
          assumptions, master.conflicts() + options.conflicts_per_round);
      if (extra != sat::SolveResult::kSat) break;
      dips.push_back(miter.ExtractDip());
    }
    tel.solve_ms = solve_sw.Ms();
    tel.conflicts = master.conflicts() - conflicts_before;
    Metrics().conflicts->Add(tel.conflicts);
    result.telemetry.rounds.push_back(tel);
    result.dips_used += dips.size();
    Metrics().dips->Add(dips.size());
    result.telemetry.oracle_queries += dips.size();
    miter.ConstrainWithOracle(dips, &result.telemetry.rounds.back());
    ++round;
  }
  if (result.finished) {
    // Key extraction runs on the adopted master under the baseline config.
    master.SetConfig(sat::SolverConfig{});
    miter.ExtractKey(master.conflicts() + options.conflicts_per_round,
                     &result);
    if (result.key_found) {
      const Stopwatch verify_sw;
      result.functionally_correct =
          RandomPatternsAgree(oracle, locked, options.verify_patterns,
                              options.seed, {}, result.recovered_key);
      result.telemetry.verify_ms = verify_sw.Ms();
    }
  }
  result.telemetry.total_conflicts = master.conflicts();
  result.telemetry.total_ms = total_sw.Ms();
  return out;
}

OracleLessProbe ProbeOracleLessKeySpace(const Netlist& locked, size_t samples,
                                        uint64_t patterns, uint64_t seed) {
  OracleLessProbe probe;
  const std::vector<GateId> keys = locked.KeyInputs();
  const uint64_t words = (patterns + 63) / 64;
  const size_t num_pos = locked.outputs().size();

  // Shared input stimulus across all sampled keys, so fingerprints are
  // comparable. Word w is a pure function of (seed, w): shard boundaries
  // cannot change what any key sees.
  std::vector<std::vector<uint64_t>> stimulus(words);
  for (uint64_t w = 0; w < words; ++w) {
    exec::StreamRng rng(seed, exec::StreamDomain::kStimulus, w);
    stimulus[w].resize(locked.inputs().size());
    for (auto& v : stimulus[w]) v = rng.NextWord();
  }
  // Lanes of the final word beyond `patterns` carry garbage from unused
  // stimulus bits; LaneMaskForWord masks them out of the fingerprint so
  // they cannot split functionally identical keys into distinct
  // fingerprints.

  // Key sampling is sharded across the pool; each sample's key bits come
  // from the counter-based stream (seed, kKeySample, s), so the sampled key
  // set is identical at any thread count. Fingerprints merge through a set,
  // which is order-insensitive.
  constexpr size_t kSamplesPerShard = 8;
  const std::set<std::vector<uint64_t>> fingerprints =
      exec::ParallelReduce<std::set<std::vector<uint64_t>>>(
      samples, kSamplesPerShard, {},
      [&](size_t lo, size_t hi) {
        Simulator sim(locked);
        std::set<std::vector<uint64_t>> local;
        for (size_t s = lo; s < hi; ++s) {
          exec::StreamRng krng(seed, exec::StreamDomain::kKeySample, s);
          std::vector<uint8_t> key(keys.size());
          for (auto& b : key) b = krng.NextBool() ? 1 : 0;
          sim.SetKeyBits(key);
          std::vector<uint64_t> fp;
          fp.reserve(words * num_pos);
          for (uint64_t w = 0; w < words; ++w) {
            sim.SetInputWords(stimulus[w]);
            sim.Run();
            const uint64_t mask = LaneMaskForWord(w, words, patterns);
            for (size_t o = 0; o < num_pos; ++o) {
              fp.push_back(sim.OutputWord(o) & mask);
            }
          }
          local.insert(std::move(fp));
        }
        return local;
      },
      [](std::set<std::vector<uint64_t>> x, std::set<std::vector<uint64_t>> y) {
        x.merge(std::move(y));
        return x;
      });
  probe.sampled_keys = samples;
  probe.distinct_functions = fingerprints.size();
  return probe;
}

}  // namespace splitlock::attack
