#include "attack/sat_attack.hpp"

#include <array>
#include <cassert>
#include <optional>
#include <set>

#include "exec/parallel.hpp"
#include "exec/stream_rng.hpp"
#include "sat/solver.hpp"
#include "util/lanes.hpp"
#include "sat/tseitin.hpp"
#include "sim/metrics.hpp"
#include "sim/simulator.hpp"
#include "util/rng.hpp"

namespace splitlock::attack {

DipOracle::DipOracle(const Netlist& oracle)
    : sim_(oracle),
      num_pis_(oracle.inputs().size()),
      num_pos_(oracle.outputs().size()) {}

size_t DipOracle::Enqueue(std::span<const uint8_t> input_bits) {
  assert(input_bits.size() == num_pis_);
  pending_.emplace_back(input_bits.begin(), input_bits.end());
  return responses_.size() + pending_.size() - 1;
}

void DipOracle::Flush() {
  if (pending_.empty()) return;
  const size_t width = pending_.size();
  sim_.BeginBatch(width);
  std::vector<uint64_t> row(width);
  const std::vector<GateId>& pis = sim_.netlist().inputs();
  for (size_t i = 0; i < num_pis_; ++i) {
    for (size_t q = 0; q < width; ++q) {
      row[q] = pending_[q][i] ? ~0ULL : 0ULL;
    }
    sim_.SetSourceBatch(pis[i], row);
  }
  sim_.RunBatch();
  for (size_t q = 0; q < width; ++q) {
    std::vector<uint8_t> response(num_pos_);
    for (size_t o = 0; o < num_pos_; ++o) {
      response[o] = static_cast<uint8_t>(sim_.BatchOutputWord(o, q) & 1);
    }
    responses_.push_back(std::move(response));
  }
  pending_.clear();
}

bool DipOracle::OutputBit(size_t q, size_t po) const {
  assert(q < responses_.size() && "query not flushed");
  return responses_[q][po] != 0;
}

SatAttackResult RunSatAttack(const Netlist& locked, const Netlist& oracle,
                             const SatAttackOptions& options) {
  assert(locked.inputs().size() == oracle.inputs().size());
  assert(locked.outputs().size() == oracle.outputs().size());
  SatAttackResult result;

  sat::Solver solver;
  sat::StructuralEncoder enc(solver);

  const size_t num_pis = locked.inputs().size();
  const size_t num_pos = locked.outputs().size();
  const size_t num_keys = locked.KeyInputs().size();

  std::vector<sat::Lit> x(num_pis);
  for (auto& l : x) l = enc.FreshLit();
  std::vector<sat::Lit> k1(num_keys);
  std::vector<sat::Lit> k2(num_keys);
  for (auto& l : k1) l = enc.FreshLit();
  for (auto& l : k2) l = enc.FreshLit();

  const std::vector<sat::Lit> outs1 = enc.EncodeNetlist(locked, x, k1);
  const std::vector<sat::Lit> outs2 = enc.EncodeNetlist(locked, x, k2);

  // Miter: exists an input where the two key hypotheses disagree.
  std::vector<sat::Lit> diffs;
  for (size_t o = 0; o < num_pos; ++o) {
    const sat::Lit d = enc.EncodeOp(
        GateOp::kXor, std::array<sat::Lit, 2>{outs1[o], outs2[o]});
    if (d != enc.FalseLit()) diffs.push_back(d);
  }
  // diff_any <-> OR(diffs): encode via a fresh selector we can assume.
  const sat::Lit diff_any = enc.FreshLit();
  {
    std::vector<sat::Lit> clause{sat::Negate(diff_any)};
    clause.insert(clause.end(), diffs.begin(), diffs.end());
    solver.AddClause(clause);  // diff_any -> OR(diffs)
  }

  DipOracle oracle_sim(oracle);
  // Per-round constraint encoder: the locked netlist's topology and
  // key-dependent cone are cached here once, outside the DIP loop.
  std::optional<sat::IncrementalDipEncoder> dip_enc;
  if (options.incremental_dip_encoding) dip_enc.emplace(enc, locked);

  for (size_t round = 0; round < options.max_dips; ++round) {
    const std::vector<sat::Lit> assumptions{diff_any};
    const sat::SolveResult sr =
        solver.Solve(assumptions, options.conflict_limit_per_solve);
    if (sr == sat::SolveResult::kUnknown) return result;  // budget blown
    if (sr == sat::SolveResult::kUnsat) {
      result.finished = true;
      break;
    }
    // Extract the DIP.
    std::vector<uint8_t> dip(num_pis);
    for (size_t i = 0; i < num_pis; ++i) {
      const bool v = solver.ModelValue(sat::VarOf(x[i]));
      dip[i] = static_cast<uint8_t>(sat::IsNegated(x[i]) ? !v : v);
    }
    ++result.dips_used;

    // Oracle response, via the batched SoA path (one query this round;
    // the sweep widens for free when rounds queue several).
    const size_t query = oracle_sim.Enqueue(dip);
    oracle_sim.Flush();

    // Constrain both key hypotheses to agree with the oracle on the DIP.
    // Under constant inputs all non-key logic folds to constants; only the
    // key-dependent cone produces CNF. The two paths below emit
    // bit-identical clause streams (see IncrementalDipEncoder); the
    // incremental one skips the per-round full-netlist walks.
    std::vector<sat::Lit> const_in;
    if (options.incremental_dip_encoding) {
      dip_enc->SetDip(dip);
    } else {
      const_in.resize(num_pis);
      for (size_t i = 0; i < num_pis; ++i) {
        const_in[i] = dip[i] ? enc.TrueLit() : enc.FalseLit();
      }
    }
    for (const auto& keys : {k1, k2}) {
      const std::vector<sat::Lit> outs =
          options.incremental_dip_encoding
              ? dip_enc->Encode(keys)
              : enc.EncodeNetlist(locked, const_in, keys);
      for (size_t o = 0; o < num_pos; ++o) {
        const bool want = oracle_sim.OutputBit(query, o);
        solver.AddUnit(want ? outs[o] : sat::Negate(outs[o]));
      }
    }
  }
  if (!result.finished) return result;

  // All DIPs exhausted: any key satisfying the accumulated IO constraints
  // is functionally correct. Solve once more without the miter assumption.
  const sat::SolveResult final_sr =
      solver.Solve({}, options.conflict_limit_per_solve);
  if (final_sr != sat::SolveResult::kSat) return result;
  result.key_found = true;
  result.recovered_key.resize(num_keys);
  for (size_t i = 0; i < num_keys; ++i) {
    const bool v = solver.ModelValue(sat::VarOf(k1[i]));
    result.recovered_key[i] =
        static_cast<uint8_t>(sat::IsNegated(k1[i]) ? !v : v);
  }
  result.functionally_correct =
      RandomPatternsAgree(oracle, locked, options.verify_patterns,
                          options.seed, {}, result.recovered_key);
  return result;
}

OracleLessProbe ProbeOracleLessKeySpace(const Netlist& locked, size_t samples,
                                        uint64_t patterns, uint64_t seed) {
  OracleLessProbe probe;
  const std::vector<GateId> keys = locked.KeyInputs();
  const uint64_t words = (patterns + 63) / 64;
  const size_t num_pos = locked.outputs().size();

  // Shared input stimulus across all sampled keys, so fingerprints are
  // comparable. Word w is a pure function of (seed, w): shard boundaries
  // cannot change what any key sees.
  std::vector<std::vector<uint64_t>> stimulus(words);
  for (uint64_t w = 0; w < words; ++w) {
    exec::StreamRng rng(seed, exec::StreamDomain::kStimulus, w);
    stimulus[w].resize(locked.inputs().size());
    for (auto& v : stimulus[w]) v = rng.NextWord();
  }
  // Lanes of the final word beyond `patterns` carry garbage from unused
  // stimulus bits; LaneMaskForWord masks them out of the fingerprint so
  // they cannot split functionally identical keys into distinct
  // fingerprints.

  // Key sampling is sharded across the pool; each sample's key bits come
  // from the counter-based stream (seed, kKeySample, s), so the sampled key
  // set is identical at any thread count. Fingerprints merge through a set,
  // which is order-insensitive.
  constexpr size_t kSamplesPerShard = 8;
  const std::set<std::vector<uint64_t>> fingerprints =
      exec::ParallelReduce<std::set<std::vector<uint64_t>>>(
      samples, kSamplesPerShard, {},
      [&](size_t lo, size_t hi) {
        Simulator sim(locked);
        std::set<std::vector<uint64_t>> local;
        for (size_t s = lo; s < hi; ++s) {
          exec::StreamRng krng(seed, exec::StreamDomain::kKeySample, s);
          std::vector<uint8_t> key(keys.size());
          for (auto& b : key) b = krng.NextBool() ? 1 : 0;
          sim.SetKeyBits(key);
          std::vector<uint64_t> fp;
          fp.reserve(words * num_pos);
          for (uint64_t w = 0; w < words; ++w) {
            sim.SetInputWords(stimulus[w]);
            sim.Run();
            const uint64_t mask = LaneMaskForWord(w, words, patterns);
            for (size_t o = 0; o < num_pos; ++o) {
              fp.push_back(sim.OutputWord(o) & mask);
            }
          }
          local.insert(std::move(fp));
        }
        return local;
      },
      [](std::set<std::vector<uint64_t>> x, std::set<std::vector<uint64_t>> y) {
        x.merge(std::move(y));
        return x;
      });
  probe.sampled_keys = samples;
  probe.distinct_functions = fingerprints.size();
  return probe;
}

}  // namespace splitlock::attack
