// SAT-based key extraction (Subramanyan et al., HOST'15) and the
// oracle-less contrast.
//
// The paper argues (Sec. II-C) that SAT attacks on the locked FEOL are
// futile because split manufacturing's threat model provides *no oracle*:
// fabrication is incomplete and the end-user is trusted, so the attacker
// never holds a functioning chip to query. This module makes that argument
// executable in both directions:
//
//  * RunSatAttack: the classical oracle-guided attack. Given the locked
//    netlist AND an oracle (the original function — deliberately violating
//    the split-manufacturing threat model), iteratively find
//    distinguishing input patterns (DIPs), constrain the key space with
//    the oracle's responses, and extract a functionally correct key. This
//    demonstrates what the attacker could do IF an oracle existed — and
//    therefore what the missing oracle is worth.
//
//  * ProbeOracleLessKeySpace: what the FEOL-only attacker actually faces.
//    Samples random keys and checks how many distinct functions they
//    induce: the key space stays functionally rich and nothing in the
//    FEOL distinguishes the correct key, so exhaustive guessing (Theorem 1)
//    is the best available strategy.
#pragma once

#include <cstdint>
#include <vector>

#include "netlist/netlist.hpp"

namespace splitlock::attack {

struct SatAttackResult {
  bool finished = false;   // DIP loop reached UNSAT within the budget
  bool key_found = false;  // a consistent key was extracted
  std::vector<uint8_t> recovered_key;
  // The recovered key need not equal the designer's key bit-for-bit; it
  // must only be functionally correct. Verified by random simulation.
  bool functionally_correct = false;
  size_t dips_used = 0;
};

struct SatAttackOptions {
  size_t max_dips = 4096;
  uint64_t conflict_limit_per_solve = 2000000;
  uint64_t verify_patterns = 4096;
  uint64_t seed = 1;
};

// Oracle-guided SAT attack on `locked` using `oracle` as the black-box
// functional oracle (same PI/PO interface).
SatAttackResult RunSatAttack(const Netlist& locked, const Netlist& oracle,
                             const SatAttackOptions& options = {});

struct OracleLessProbe {
  size_t sampled_keys = 0;
  size_t distinct_functions = 0;  // distinct output behaviours observed
  double DistinctFraction() const {
    return sampled_keys == 0
               ? 0.0
               : static_cast<double>(distinct_functions) /
                     static_cast<double>(sampled_keys);
  }
};

// Samples `samples` random keys and fingerprints the induced functions
// over `patterns` random input patterns. Key sampling is sharded across
// the exec thread pool with counter-based streams: results are
// bit-identical for a given seed at any thread count. When `patterns` is
// not a multiple of 64, the final word's dead lanes are masked out of the
// fingerprint.
OracleLessProbe ProbeOracleLessKeySpace(const Netlist& locked, size_t samples,
                                        uint64_t patterns, uint64_t seed);

}  // namespace splitlock::attack
