// SAT-based key extraction (Subramanyan et al., HOST'15) and the
// oracle-less contrast.
//
// The paper argues (Sec. II-C) that SAT attacks on the locked FEOL are
// futile because split manufacturing's threat model provides *no oracle*:
// fabrication is incomplete and the end-user is trusted, so the attacker
// never holds a functioning chip to query. This module makes that argument
// executable in both directions:
//
//  * RunSatAttack: the classical oracle-guided attack. Given the locked
//    netlist AND an oracle (the original function — deliberately violating
//    the split-manufacturing threat model), iteratively find
//    distinguishing input patterns (DIPs), constrain the key space with
//    the oracle's responses, and extract a functionally correct key. This
//    demonstrates what the attacker could do IF an oracle existed — and
//    therefore what the missing oracle is worth.
//
//  * ProbeOracleLessKeySpace: what the FEOL-only attacker actually faces.
//    Samples random keys and checks how many distinct functions they
//    induce: the key space stays functionally rich and nothing in the
//    FEOL distinguishes the correct key, so exhaustive guessing (Theorem 1)
//    is the best available strategy.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "netlist/netlist.hpp"
#include "sat/solver.hpp"
#include "sim/simulator.hpp"

namespace splitlock::attack {

// Batched functional-oracle frontend. Queries (one input bit-vector each)
// are queued and answered through Simulator::RunBatch: one
// structure-of-arrays sweep per Flush(), one batch column per queued
// query, instead of a full word-at-a-time Run() per query. RunSatAttack
// routes its DIP responses through this; multi-DIP rounds
// (SatAttackOptions::dips_per_round > 1) queue a whole round's DIPs and
// amortize one SoA sweep across them.
class DipOracle {
 public:
  explicit DipOracle(const Netlist& oracle);

  // Queues a query (one bit per primary input, inputs() order); returns
  // its query index.
  size_t Enqueue(std::span<const uint8_t> input_bits);

  // Answers every queued query in one RunBatch sweep.
  void Flush();

  // Output bit `po` (outputs() order) of query `q`; q must be flushed.
  bool OutputBit(size_t q, size_t po) const;

  size_t pending() const { return pending_.size(); }
  size_t answered() const { return responses_.size(); }

  // Batch-width instrumentation: number of non-empty Flush() sweeps and
  // the widest single sweep so far. answered() / flushes() is the mean
  // batch width.
  size_t flushes() const { return flushes_; }
  size_t max_batch() const { return max_batch_; }

 private:
  Simulator sim_;
  size_t num_pis_;
  size_t num_pos_;
  std::vector<std::vector<uint8_t>> pending_;    // queued input vectors
  std::vector<std::vector<uint8_t>> responses_;  // per query: num_pos bits
  size_t flushes_ = 0;
  size_t max_batch_ = 0;
};

// Per-round instrumentation of the DIP loop. One entry is recorded for
// every *miter solve* — including the terminating UNSAT round and a
// budget-blown kUnknown attempt — so `rounds.size()` can exceed
// `SatAttackResult::dips_used` by one. Wall-clock fields are measurements
// (they vary run to run); the conflict counters are deterministic.
struct SatRoundTelemetry {
  uint64_t conflicts = 0;  // conflicts spent by this round's solves (the
                           // decisive miter solve plus any blocking-clause
                           // re-solves that extracted extra DIPs)
  double solve_ms = 0.0;   // miter solve(s) (portfolio: the whole race)
  double encode_ms = 0.0;  // DIP-constraint CNF encoding
  double oracle_ms = 0.0;  // oracle query (batched RunBatch sweep)
  int winner = -1;         // portfolio config index; -1 = sequential solve
  // DIPs extracted and oracle-queried this round — the width of the
  // round's DipOracle::Flush batch (0 on the terminating UNSAT round and
  // on a budget-blown kUnknown attempt).
  size_t dip_batch = 0;
};

struct SatAttackTelemetry {
  std::vector<SatRoundTelemetry> rounds;
  uint64_t oracle_queries = 0;
  uint64_t total_conflicts = 0;  // master solver conflicts at exit
  double final_solve_ms = 0.0;   // key-extraction solve
  double verify_ms = 0.0;        // random-simulation verification
  double total_ms = 0.0;

  // Mean DipOracle batch width over the rounds that queried the oracle
  // (0 when none did). dips_per_round = 1 pins this at exactly 1.
  double MeanDipBatch() const {
    size_t batches = 0;
    size_t dips = 0;
    for (const SatRoundTelemetry& r : rounds) {
      if (r.dip_batch > 0) {
        ++batches;
        dips += r.dip_batch;
      }
    }
    return batches == 0 ? 0.0
                        : static_cast<double>(dips) /
                              static_cast<double>(batches);
  }
};

struct SatAttackResult {
  bool finished = false;   // DIP loop reached UNSAT within the budget
  bool key_found = false;  // a consistent key was extracted
  std::vector<uint8_t> recovered_key;
  // The recovered key need not equal the designer's key bit-for-bit; it
  // must only be functionally correct. Verified by random simulation.
  bool functionally_correct = false;
  size_t dips_used = 0;
  SatAttackTelemetry telemetry;
};

struct SatAttackOptions {
  size_t max_dips = 4096;
  // Distinct DIPs extracted per stalled miter round (clamped to >= 1, and
  // to the remaining max_dips budget). After the round's first DIP, the
  // miter is re-solved under a blocking clause per extracted DIP (guarded
  // by the miter selector, so key extraction is untouched) until K DIPs
  // are in hand or the miter runs dry; the whole batch is oracle-queried
  // in ONE DipOracle::Flush sweep and constrained together. Each blocking
  // clause is implied once its DIP's oracle constraints land, so keeping
  // them is sound. The DIP *sequence* differs from dips_per_round = 1 but
  // the recovered key is always functionally correct, and any fixed value
  // is deterministic at any thread count.
  //
  // Deliberately defaults to 1: wide rounds change the per-run counters
  // (dips_used, oracle_queries) that land in canonical store records, so
  // they are opt-in via config — a different config hash — rather than a
  // silent behaviour change under existing config strings (which would
  // have forced a result-store schema bump).
  size_t dips_per_round = 1;
  uint64_t conflict_limit_per_solve = 2000000;
  uint64_t verify_patterns = 4096;
  uint64_t seed = 1;
  // Advisory wall-clock budget, checked between DIP rounds (0 =
  // unlimited). Unlike the conflict budget this is NOT deterministic:
  // whether the attack finishes may vary run to run. Leave 0 when
  // reproducibility matters.
  double wall_budget_s = 0.0;
  // Encode per-round DIP constraints with sat::IncrementalDipEncoder
  // (O(key cone) CNF work per round) instead of re-encoding the full
  // locked netlist twice per round. Both paths feed the solver a
  // bit-identical clause stream, so results do not depend on this flag;
  // the legacy path is kept for equivalence tests and benchmarks.
  bool incremental_dip_encoding = true;
};

// Oracle-guided SAT attack on `locked` using `oracle` as the black-box
// functional oracle (same PI/PO interface).
SatAttackResult RunSatAttack(const Netlist& locked, const Netlist& oracle,
                             const SatAttackOptions& options = {});

// Portfolio variant of the oracle-guided attack (the ROADMAP's
// mallob-style item). Each DIP round runs in two phases: the baseline
// configuration solves directly on the master (an uncloned sequential
// probe — easy rounds cost exactly what the sequential attack pays), and
// only when that probe blows its per-round conflict budget does the round
// clone the master into `num_configs - 1` diversified configurations
// (restart unit, polarity mode, random-branching seed) raced on the exec
// thread pool.
//
// Determinism contract: the round's winner is the LOWEST-INDEX
// configuration that completed (kSat/kUnsat) within its per-round conflict
// budget — never the first to finish in wall-clock. A configuration may be
// aborted early only once a lower-index one has completed, i.e. only when
// its own result can no longer matter, so the DIP sequence, the recovered
// key and every counter in the report are bit-identical at any thread
// count. The winner's solver state (learnt clauses, activities, saved
// phases) is adopted as the next round's master, so work done by the
// winning configuration carries forward exactly as in a sequential CDCL
// loop.
struct PortfolioSatOptions {
  size_t num_configs = 4;  // diversified configurations per round
  size_t max_dips = 4096;
  // Multi-DIP rounds, as in SatAttackOptions::dips_per_round: after the
  // round's winner (raced or baseline) produces a DIP, extra DIPs are
  // extracted sequentially on the adopted master under blocking clauses —
  // a deterministic serial tail, so thread-count invariance is preserved.
  // Defaults to 1 for the same store-record reason as SatAttackOptions.
  size_t dips_per_round = 1;
  // Conflict budget for each configuration's solve, per round. Unlike
  // SatAttackOptions::conflict_limit_per_solve (a cumulative ceiling on
  // the master solver), this is measured from the start of each solve.
  uint64_t conflicts_per_round = 200000;
  // Cumulative ceiling on the master solver's conflicts (adopted winners
  // included), checked at round start; 0 = unlimited. Deterministic, and
  // directly comparable to SatAttackOptions::conflict_limit_per_solve.
  uint64_t total_conflict_budget = 0;
  uint64_t verify_patterns = 4096;
  uint64_t seed = 1;
  // Advisory wall-clock budget, checked between rounds (0 = unlimited);
  // NOT deterministic — leave 0 when reproducibility matters.
  double wall_budget_s = 0.0;
};

struct PortfolioSatResult {
  SatAttackResult attack;  // uniform with the sequential attack's report
  // Rounds won by each configuration index (size == num_configs).
  std::vector<size_t> wins_per_config;
};

PortfolioSatResult RunPortfolioSatAttack(const Netlist& locked,
                                         const Netlist& oracle,
                                         const PortfolioSatOptions& options = {});

// The diversified configuration raced as portfolio member `index` in round
// `round` (index 0 is always the undiversified baseline). Exposed for the
// determinism tests.
sat::SolverConfig PortfolioMemberConfig(uint64_t seed, size_t round,
                                        size_t index);

struct OracleLessProbe {
  size_t sampled_keys = 0;
  size_t distinct_functions = 0;  // distinct output behaviours observed
  double DistinctFraction() const {
    return sampled_keys == 0
               ? 0.0
               : static_cast<double>(distinct_functions) /
                     static_cast<double>(sampled_keys);
  }
};

// Samples `samples` random keys and fingerprints the induced functions
// over `patterns` random input patterns. Key sampling is sharded across
// the exec thread pool with counter-based streams: results are
// bit-identical for a given seed at any thread count. When `patterns` is
// not a multiple of 64, the final word's dead lanes are masked out of the
// fingerprint.
OracleLessProbe ProbeOracleLessKeySpace(const Netlist& locked, size_t samples,
                                        uint64_t patterns, uint64_t seed);

}  // namespace splitlock::attack
