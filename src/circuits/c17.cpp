#include "circuits/c17.hpp"

namespace splitlock::circuits {

Netlist MakeC17() {
  Netlist nl("c17");
  const NetId g1 = nl.AddInput("G1");
  const NetId g2 = nl.AddInput("G2");
  const NetId g3 = nl.AddInput("G3");
  const NetId g6 = nl.AddInput("G6");
  const NetId g7 = nl.AddInput("G7");
  const NetId g10 = nl.AddGate(GateOp::kNand, {g1, g3}, "G10");
  const NetId g11 = nl.AddGate(GateOp::kNand, {g3, g6}, "G11");
  const NetId g16 = nl.AddGate(GateOp::kNand, {g2, g11}, "G16");
  const NetId g19 = nl.AddGate(GateOp::kNand, {g11, g7}, "G19");
  const NetId g22 = nl.AddGate(GateOp::kNand, {g10, g16}, "G22");
  const NetId g23 = nl.AddGate(GateOp::kNand, {g16, g19}, "G23");
  nl.AddOutput(g22, "G22");
  nl.AddOutput(g23, "G23");
  return nl;
}

}  // namespace splitlock::circuits
