// The exact ISCAS-85 c17 benchmark (6 NAND2 gates).
//
// Used verbatim for the Fig. 4 walkthrough example: the paper demonstrates
// its fault-injection locking on c17 (fault at U12's output, comparator on
// I1..I3, restore XOR on O2).
#pragma once

#include "netlist/netlist.hpp"

namespace splitlock::circuits {

Netlist MakeC17();

}  // namespace splitlock::circuits
