#include "circuits/random_circuit.hpp"

#include <algorithm>
#include <array>
#include <cassert>

#include "util/rng.hpp"

namespace splitlock::circuits {
namespace {

struct OpChoice {
  GateOp op;
  size_t arity;
  double weight;
};

constexpr std::array<OpChoice, 13> kOpMix = {{
    {GateOp::kNand, 2, 0.22},
    {GateOp::kNor, 2, 0.12},
    {GateOp::kAnd, 2, 0.10},
    {GateOp::kOr, 2, 0.09},
    {GateOp::kInv, 1, 0.14},
    {GateOp::kNand, 3, 0.07},
    {GateOp::kNor, 3, 0.04},
    {GateOp::kAnd, 3, 0.04},
    {GateOp::kOr, 3, 0.03},
    {GateOp::kNand, 4, 0.03},
    {GateOp::kXor, 2, 0.05},
    {GateOp::kXnor, 2, 0.03},
    {GateOp::kBuf, 1, 0.04},
}};

}  // namespace

Netlist GenerateCircuit(const CircuitSpec& spec) {
  assert(spec.num_inputs >= 2);
  assert(spec.num_outputs >= 1);
  Netlist nl(spec.name);
  Rng rng(spec.seed);

  std::vector<NetId> nets;
  nets.reserve(spec.num_inputs + spec.num_gates);
  // Independence-approximated signal probability per net, maintained
  // incrementally; used to pick blob leaves whose joint value regions stay
  // reachable (see the blob comment below).
  std::vector<double> prob;
  auto prob_of = [&](NetId n) {
    return n < prob.size() ? prob[n] : 0.5;
  };
  auto record_prob = [&](NetId n, double p) {
    if (prob.size() <= n) prob.resize(n + 1, 0.5);
    prob[n] = p;
  };
  auto est_prob = [&](GateOp op, std::span<const NetId> fanins) {
    auto all = [&](bool ones) {
      double acc = 1.0;
      for (NetId f : fanins) acc *= ones ? prob_of(f) : 1.0 - prob_of(f);
      return acc;
    };
    switch (op) {
      case GateOp::kAnd: return all(true);
      case GateOp::kNand: return 1.0 - all(true);
      case GateOp::kOr: return 1.0 - all(false);
      case GateOp::kNor: return all(false);
      case GateOp::kInv: return 1.0 - prob_of(fanins[0]);
      case GateOp::kBuf: return prob_of(fanins[0]);
      case GateOp::kXor: {
        const double a = prob_of(fanins[0]);
        const double b = prob_of(fanins[1]);
        return a * (1.0 - b) + b * (1.0 - a);
      }
      case GateOp::kXnor: {
        const double a = prob_of(fanins[0]);
        const double b = prob_of(fanins[1]);
        return 1.0 - (a * (1.0 - b) + b * (1.0 - a));
      }
      default: return 0.5;
    }
  };
  // Logic depth per net (0 = primary input), tracked for blob leaf picks.
  std::vector<int> depth;
  auto depth_of = [&](NetId n) {
    return n < depth.size() ? depth[n] : 99;
  };
  auto record_depth = [&](NetId n, int d) {
    if (depth.size() <= n) depth.resize(n + 1, 99);
    depth[n] = d;
  };
  auto make_gate = [&](GateOp op, std::span<const NetId> fanins) {
    const NetId out = nl.AddGate(op, fanins);
    record_prob(out, est_prob(op, fanins));
    int d = 0;
    for (NetId f : fanins) d = std::max(d, depth_of(f));
    record_depth(out, d + 1);
    return out;
  };
  for (size_t i = 0; i < spec.num_inputs; ++i) {
    const NetId in = nl.AddInput(spec.name + "_i" + std::to_string(i));
    record_prob(in, 0.5);
    record_depth(in, 0);
    nets.push_back(in);
  }

  std::vector<double> weights;
  for (const OpChoice& c : kOpMix) weights.push_back(c.weight);

  // Locality-biased fanin pick: mostly recent nets, sometimes anywhere.
  auto pick_fanin = [&]() -> NetId {
    if (rng.NextBernoulli(spec.locality) && nets.size() > 8) {
      const size_t window = std::max<size_t>(8, nets.size() / 10);
      const size_t start = nets.size() - window;
      return nets[start + rng.NextUint(window)];
    }
    return nets[rng.NextUint(nets.size())];
  };
  auto pick_distinct = [&](size_t arity, std::vector<NetId>* out) {
    out->clear();
    for (int attempts = 0; out->size() < arity && attempts < 64; ++attempts) {
      const NetId n = pick_fanin();
      if (std::find(out->begin(), out->end(), n) == out->end()) {
        out->push_back(n);
      }
    }
    while (out->size() < arity) {
      // Degenerate fallback for tiny circuits.
      out->push_back(nets[rng.NextUint(nets.size())]);
    }
  };

  const size_t bias_budget = static_cast<size_t>(
      static_cast<double>(spec.num_gates) * spec.bias_cone_fraction);
  size_t bias_spent = 0;
  size_t made = 0;
  std::vector<NetId> fanins;
  while (made < spec.num_gates) {
    if (bias_spent < bias_budget && rng.NextBernoulli(0.05)) {
      // Redundant conjunction blob: several structurally distinct
      // implementations of the same AND (or OR) over 4-6 leaf nets, merged
      // by an outer OR (resp. AND). The function equals the single shared
      // cube, so the net is strongly biased and its on-set over the leaf
      // cut is one minterm — yet the blob occupies many gates, none of
      // which generic optimization (const-prop/strash/local rules) can
      // remove. This is the kind of logic the paper's fault-injection
      // locking deletes for its area savings: redundancy only exposed by
      // tying the biased net to its likely value.
      const bool and_blob = rng.NextBool();
      const GateOp inner = and_blob ? GateOp::kAnd : GateOp::kOr;
      const GateOp outer = and_blob ? GateOp::kOr : GateOp::kAnd;

      // Distinct leaves, drawn globally (not from the locality window) and
      // kept structurally independent: no leaf may sit in another leaf's
      // shallow fanin cone, otherwise whole regions of the blob's cut
      // space are unreachable and the comparator bits the locking flow
      // derives from it would be functionally dead.
      auto in_shallow_cone = [&](NetId maybe_ancestor, NetId n) {
        // Depth- and node-bounded backward reachability with a visited
        // set (reconvergent fanin makes an unchecked DFS exponential).
        std::vector<std::pair<NetId, int>> stack{{n, 0}};
        std::vector<NetId> visited;
        while (!stack.empty()) {
          const auto [cur, depth] = stack.back();
          stack.pop_back();
          if (cur == maybe_ancestor) return true;
          if (depth >= 8 || visited.size() > 160) continue;
          if (std::find(visited.begin(), visited.end(), cur) !=
              visited.end()) {
            continue;
          }
          visited.push_back(cur);
          const GateId d = nl.DriverOf(cur);
          if (d == kNullId) continue;
          for (NetId f : nl.gate(d).fanins) {
            stack.push_back({f, depth + 1});
          }
        }
        return false;
      };
      std::vector<NetId> leaves;
      const size_t want = 4 + rng.NextUint(2);  // 4..5 leaves
      for (int attempts = 0; leaves.size() < want && attempts < 96;
           ++attempts) {
        const NetId n = nets[rng.NextUint(nets.size())];
        // Shallow, moderate-probability leaves: depth <= 2 nets hanging
        // off the primary inputs are near-independent and near-uniform, so
        // every comparator region of the future fault (all-match and
        // one-literal-flipped) stays reachable with non-negligible
        // probability. Deep random logic correlates too strongly.
        const double p = prob_of(n);
        bool ok = depth_of(n) <= 2 && p >= 0.35 && p <= 0.65 &&
                  std::find(leaves.begin(), leaves.end(), n) == leaves.end();
        for (NetId l : leaves) {
          if (!ok) break;
          if (in_shallow_cone(l, n) || in_shallow_cone(n, l)) ok = false;
        }
        if (ok) leaves.push_back(n);
      }
      if (leaves.size() < 3) continue;

      const size_t terms = 3 + rng.NextUint(3);  // 3..5 redundant terms
      std::vector<NetId> term_nets;
      for (size_t t = 0; t < terms; ++t) {
        // Each term: a randomly-shaped tree over a shuffled leaf order,
        // with occasional NAND+INV detours for structural diversity.
        std::vector<NetId> level = leaves;
        rng.Shuffle(level);
        while (level.size() > 1) {
          std::vector<NetId> next;
          size_t i = 0;
          while (i < level.size()) {
            const size_t take =
                std::min<size_t>(2 + rng.NextUint(2), level.size() - i);
            if (take == 1) {
              next.push_back(level[i]);
              ++i;
              continue;
            }
            NetId combined;
            if (rng.NextBernoulli(0.3)) {
              const GateOp neg =
                  inner == GateOp::kAnd ? GateOp::kNand : GateOp::kNor;
              const NetId n1 = make_gate(
                  neg, std::span<const NetId>(level.data() + i, take));
              combined =
                  make_gate(GateOp::kInv, std::array<NetId, 1>{n1});
              made += 2;
              bias_spent += 2;
            } else {
              combined = make_gate(
                  inner, std::span<const NetId>(level.data() + i, take));
              ++made;
              ++bias_spent;
            }
            next.push_back(combined);
            i += take;
          }
          level = std::move(next);
        }
        term_nets.push_back(level[0]);
      }
      // Combine all terms (chunked by the library's max arity of 4 so no
      // term ever dangles).
      while (term_nets.size() > 1) {
        std::vector<NetId> next;
        for (size_t i = 0; i < term_nets.size(); i += 4) {
          const size_t take = std::min<size_t>(4, term_nets.size() - i);
          if (take == 1) {
            next.push_back(term_nets[i]);
            continue;
          }
          next.push_back(make_gate(
              outer, std::span<const NetId>(term_nets.data() + i, take)));
          ++made;
          ++bias_spent;
        }
        term_nets = std::move(next);
      }
      nets.push_back(term_nets[0]);
      continue;
    }
    const OpChoice& choice = kOpMix[rng.NextWeighted(weights)];
    pick_distinct(choice.arity, &fanins);
    nets.push_back(make_gate(choice.op, fanins));
    ++made;
  }

  // Primary outputs: prefer currently unconsumed nets so little logic
  // dangles; fold any surplus unconsumed nets into a checksum XOR tree on
  // the first output.
  std::vector<NetId> unused;
  for (NetId n : nets) {
    if (nl.net(n).sinks.empty()) unused.push_back(n);
  }
  rng.Shuffle(unused);

  std::vector<NetId> po_nets;
  const size_t direct =
      std::min(unused.size(),
               spec.num_outputs > 0 ? spec.num_outputs - 1 : 0);
  for (size_t i = 0; i < direct; ++i) po_nets.push_back(unused[i]);
  std::vector<NetId> leftovers(unused.begin() + direct, unused.end());
  while (po_nets.size() + 1 < spec.num_outputs) {
    po_nets.push_back(nets[rng.NextUint(nets.size())]);
  }
  // Checksum output absorbs all leftovers (keeps every gate observable).
  NetId checksum;
  if (leftovers.empty()) {
    checksum = nets[rng.NextUint(nets.size())];
  } else {
    checksum = leftovers[0];
    for (size_t i = 1; i < leftovers.size(); ++i) {
      checksum = make_gate(GateOp::kXor,
                           std::array<NetId, 2>{checksum, leftovers[i]});
    }
  }
  po_nets.push_back(checksum);

  for (size_t i = 0; i < po_nets.size(); ++i) {
    nl.AddOutput(po_nets[i], spec.name + "_o" + std::to_string(i));
  }
  assert(nl.outputs().size() == spec.num_outputs);
  return nl;
}

}  // namespace splitlock::circuits
