// Seeded synthetic combinational circuit generator.
//
// Produces layered random logic with a realistic op mix, locality-biased
// fanin selection (mimicking the clustered connectivity of synthesized
// designs), and a tunable fraction of wide AND/OR cones. The wide cones
// create strongly biased internal nets — the candidates ATPG-based locking
// exploits — just as real control logic does. Generation is fully
// deterministic in the spec's seed.
#pragma once

#include <cstdint>
#include <string>

#include "netlist/netlist.hpp"

namespace splitlock::circuits {

struct CircuitSpec {
  std::string name = "random";
  size_t num_inputs = 32;
  size_t num_outputs = 32;
  size_t num_gates = 1000;  // approximate target (+-tree rounding)
  uint64_t seed = 1;
  // Fraction of gate budget spent on wide AND/OR cones (biased nets).
  double bias_cone_fraction = 0.18;
  // Probability that a fanin is drawn from recently created nets.
  double locality = 0.75;
};

Netlist GenerateCircuit(const CircuitSpec& spec);

}  // namespace splitlock::circuits
