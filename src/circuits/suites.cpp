#include "circuits/suites.hpp"

#include <algorithm>
#include <stdexcept>

#include "circuits/c17.hpp"
#include "circuits/random_circuit.hpp"
#include "util/hash.hpp"

namespace splitlock::circuits {
namespace {

uint64_t SeedFromName(const std::string& name) { return util::Fnv1a(name); }

Netlist Synthesize(const BenchmarkInfo& info, double scale) {
  CircuitSpec spec;
  spec.name = info.name;
  spec.num_inputs = info.inputs;
  spec.num_outputs = info.outputs;
  spec.num_gates = std::max<size_t>(
      64, static_cast<size_t>(static_cast<double>(info.gates) * scale));
  spec.seed = SeedFromName(info.name);
  return GenerateCircuit(spec);
}

}  // namespace

const std::vector<BenchmarkInfo>& IscasSuite() {
  static const std::vector<BenchmarkInfo> suite = {
      {"c432", 36, 7, 160},    {"c880", 60, 26, 383},
      {"c1355", 41, 32, 546},  {"c1908", 33, 25, 880},
      {"c3540", 50, 22, 1669}, {"c5315", 178, 123, 2307},
      {"c7552", 207, 108, 3512},
  };
  return suite;
}

const std::vector<BenchmarkInfo>& Itc99Suite() {
  // FF-cut combinational cores: inputs = PIs + FFs, outputs = POs + FFs.
  static const std::vector<BenchmarkInfo> suite = {
      {"b14", 277, 299, 9767},   {"b15", 485, 519, 8367},
      {"b17", 1452, 1512, 30777}, {"b20", 522, 512, 19682},
      {"b21", 522, 512, 20027},  {"b22", 767, 757, 29162},
  };
  return suite;
}

Netlist MakeIscas(const std::string& name) {
  if (name == "c17") return MakeC17();
  for (const BenchmarkInfo& info : IscasSuite()) {
    if (info.name == name) return Synthesize(info, 1.0);
  }
  throw std::invalid_argument("unknown ISCAS benchmark: " + name);
}

Netlist MakeItc99(const std::string& name, double scale) {
  for (const BenchmarkInfo& info : Itc99Suite()) {
    if (info.name == name) return Synthesize(info, scale);
  }
  throw std::invalid_argument("unknown ITC'99 benchmark: " + name);
}

}  // namespace splitlock::circuits
