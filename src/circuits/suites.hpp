// Benchmark suites used in the paper's evaluation.
//
// The real ISCAS-85 and ITC'99 netlists are not redistributable inside this
// repository, so (except for the embedded c17) each benchmark is a seeded
// synthetic equivalent matched to the published PI/PO/gate counts — see
// DESIGN.md's substitution table for why this preserves the evaluation's
// behaviour. ITC'99 designs are their FF-cut combinational cores (flip-flop
// Q pins counted as pseudo-inputs, D pins as pseudo-outputs). The `scale`
// parameter shrinks the ITC gate counts for fast runs (env REPRO_SCALE).
#pragma once

#include <string>
#include <vector>

#include "netlist/netlist.hpp"

namespace splitlock::circuits {

struct BenchmarkInfo {
  std::string name;
  size_t inputs = 0;   // incl. pseudo-PIs for ITC'99
  size_t outputs = 0;  // incl. pseudo-POs for ITC'99
  size_t gates = 0;    // published combinational gate count (approx.)
};

// c432, c880, c1355, c1908, c3540, c5315, c7552 (Table III order).
const std::vector<BenchmarkInfo>& IscasSuite();

// b14, b15, b17, b20, b21, b22 (Tables I/II order).
const std::vector<BenchmarkInfo>& Itc99Suite();

// Builds a suite member by name. c17 is exact; everything else synthesizes
// a matched-size circuit. Unknown names throw std::invalid_argument.
Netlist MakeIscas(const std::string& name);
Netlist MakeItc99(const std::string& name, double scale = 1.0);

}  // namespace splitlock::circuits
