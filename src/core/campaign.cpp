#include "core/campaign.hpp"

#include <exception>

#include "circuits/suites.hpp"
#include "exec/parallel.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "store/artifact_io.hpp"
#include "util/stopwatch.hpp"

namespace splitlock::core {

namespace {

// Campaign-level observability. The job counter is deterministic (one
// per job); the stage time metrics mirror each job's StageTimes so
// `--metrics` exposes the flow breakdown the records carry, summed
// across the whole run.
struct CampaignMetrics {
  obs::Counter* jobs;
  obs::TimeMetric* lock_s;
  obs::TimeMetric* place_s;
  obs::TimeMetric* route_s;
  obs::TimeMetric* lift_s;
  obs::TimeMetric* sta_s;
  obs::TimeMetric* analyze_s;
  obs::TimeMetric* artifact_load_s;
  obs::TimeMetric* artifact_save_s;
  obs::TimeMetric* total_s;
};

CampaignMetrics& Metrics() {
  static CampaignMetrics m = [] {
    obs::Registry& r = obs::Registry::Instance();
    return CampaignMetrics{
        r.RegisterCounter("core.campaign.jobs"),
        r.RegisterTime("flow.stage.lock_s"),
        r.RegisterTime("flow.stage.place_s"),
        r.RegisterTime("flow.stage.route_s"),
        r.RegisterTime("flow.stage.lift_s"),
        r.RegisterTime("flow.stage.sta_s"),
        r.RegisterTime("flow.stage.analyze_s"),
        r.RegisterTime("flow.stage.artifact_load_s"),
        r.RegisterTime("flow.stage.artifact_save_s"),
        r.RegisterTime("flow.stage.total_s"),
    };
  }();
  return m;
}

void MirrorStageTimes(const StageTimes& t) {
  CampaignMetrics& m = Metrics();
  m.lock_s->AddSeconds(t.lock_s);
  m.place_s->AddSeconds(t.place_s);
  m.route_s->AddSeconds(t.route_s);
  m.lift_s->AddSeconds(t.lift_s);
  m.sta_s->AddSeconds(t.sta_s);
  m.analyze_s->AddSeconds(t.analyze_s);
  m.artifact_load_s->AddSeconds(t.artifact_load_s);
  m.artifact_save_s->AddSeconds(t.artifact_save_s);
  m.total_s->AddSeconds(t.total_s);
}

}  // namespace

const attack::AttackReport* CampaignOutcome::AssignmentReport() const {
  // The empty-stub guard keeps key-only engines (whose assignment is
  // legitimately empty) from being mistaken for a layout recovery when the
  // split broke nothing; splitlock_cli applies the same condition.
  if (flow.feol.sink_stubs.empty()) return nullptr;
  for (const attack::AttackReport& report : attacks) {
    if (report.ok && report.assignment.size() == flow.feol.sink_stubs.size()) {
      return &report;
    }
  }
  return nullptr;
}

store::StoreKey CampaignRunner::KeyFor(const CampaignJob& job) const {
  store::StoreKey key;
  key.suite = job.cache_id;
  key.scale = job.cache_scale;
  key.flow_hash = FlowOptionsHash(job.flow);
  std::vector<std::string> configs;
  configs.reserve(job.attacks.size());
  for (const attack::AttackConfig& config : job.attacks) {
    configs.push_back(config.ToString());
  }
  key.attack_hash = store::PortfolioHash(configs, options_.score_patterns,
                                         options_.run_attack);
  return key;
}

store::CampaignRecord MakeCampaignRecord(const CampaignOutcome& outcome,
                                         uint64_t score_patterns) {
  store::CampaignRecord r;
  r.name = outcome.name;
  r.ok = outcome.ok;
  r.error = outcome.error;
  r.broken_connections = outcome.flow.feol.sink_stubs.size();
  r.key_bits = outcome.flow.lock.key.size();
  if (outcome.flow.physical.netlist) {
    r.logic_gates = outcome.flow.physical.netlist->NumLogicGates();
  }
  r.die_area_um2 = outcome.flow.physical.cost.die_area_um2;
  r.power_uw = outcome.flow.physical.cost.power_uw;
  r.critical_path_ps = outcome.flow.physical.cost.critical_path_ps;
  r.regular_ccr_percent = outcome.score.ccr.regular_ccr_percent;
  r.key_logical_ccr_percent = outcome.score.ccr.key_logical_ccr_percent;
  r.key_physical_ccr_percent = outcome.score.ccr.key_physical_ccr_percent;
  r.pnr_percent = outcome.score.pnr_percent;
  r.hd_percent = outcome.score.functional.hd_percent;
  r.oer_percent = outcome.score.functional.oer_percent;
  r.score_patterns =
      outcome.score.functional.patterns > 0 ? score_patterns : 0;
  for (const attack::AttackReport& report : outcome.attacks) {
    store::AttackRecord a;
    a.engine = report.engine;
    a.config = report.config;
    a.ok = report.ok;
    a.error = report.error;
    a.key_found = report.key_found;
    a.functionally_correct = report.functionally_correct;
    a.counters = report.counters;
    a.elapsed_s = report.elapsed_s;
    r.attacks.push_back(std::move(a));
  }
  r.lock_s = outcome.flow.times.lock_s;
  r.place_s = outcome.flow.times.place_s;
  r.route_s = outcome.flow.times.route_s;
  r.lift_s = outcome.flow.times.lift_s;
  r.sta_s = outcome.flow.times.sta_s;
  r.analyze_s = outcome.flow.times.analyze_s;
  r.artifact_load_s = outcome.flow.times.artifact_load_s;
  r.artifact_save_s = outcome.flow.times.artifact_save_s;
  r.elapsed_s = outcome.elapsed_s;
  return r;
}

namespace {

// Surfaces a stored record's scorecard through the legacy outcome fields,
// so record-oblivious consumers read the same numbers either way.
void ScoreFromRecord(const store::CampaignRecord& r, attack::AttackScore* s) {
  s->ccr.regular_ccr_percent = r.regular_ccr_percent;
  s->ccr.key_logical_ccr_percent = r.key_logical_ccr_percent;
  s->ccr.key_physical_ccr_percent = r.key_physical_ccr_percent;
  s->pnr_percent = r.pnr_percent;
  s->functional.hd_percent = r.hd_percent;
  s->functional.oer_percent = r.oer_percent;
  s->functional.patterns = r.score_patterns;
}

}  // namespace

CampaignOutcome CampaignRunner::RunOne(const CampaignJob& job) const {
  Metrics().jobs->Add(1);
  obs::Span job_span("campaign.job");
  CampaignOutcome outcome;
  outcome.name = job.name;
  const Stopwatch start;
  const bool store_addressable = options_.store && !job.cache_id.empty();
  if (store_addressable && !job.force_compute) {
    std::optional<store::CampaignRecord> record =
        options_.store->Lookup(KeyFor(job));
    // Failed records are never inserted (below), but a foreign or stale
    // store could still contain one; retrying the computation beats
    // replaying a failure forever.
    if (record && record->ok) {
      outcome.record = std::move(*record);
      outcome.from_store = true;
      outcome.ok = outcome.record.ok;
      outcome.error = outcome.record.error;
      ScoreFromRecord(outcome.record, &outcome.score);
      outcome.elapsed_s = start.Seconds();
      return outcome;
    }
  }
  try {
    // The oracle netlist is only needed when attacks run; a warm artifact
    // hit otherwise never calls make_netlist at all.
    std::optional<Netlist> original;
    bool from_artifact = false;
    if (store_addressable) {
      // Artifact consult happens on the compute path too (including
      // force_compute, which skips only the *summary* shortcut above):
      // replayed artifacts reproduce the computed flow bit-exactly, so
      // skipping place/route/lift is a pure optimization.
      const store::StoreKey key = KeyFor(job);
      // artifact_load_s covers exactly lookup + decode. The replay that
      // follows reports under sta_s/analyze_s; timing it here too used to
      // double-report the warm window and broke StageSumS() <= total_s.
      std::optional<store::FlowArtifact> art;
      double load_s = 0.0;
      {
        obs::Span span("flow.artifact_load");
        const Stopwatch t_load;
        if (std::optional<std::string> payload =
                options_.store->LookupArtifact(key)) {
          art = store::DecodeFlowArtifact(*payload);
          if (!art) {
            // The envelope checked out but the payload did not decode.
            options_.store->NoteArtifactCorrupt();
          }
        }
        load_s = t_load.Seconds();
      }
      if (art) {
        outcome.flow = ReplayFlowFromArtifacts(
            std::move(art->lock), std::move(art->netlist),
            std::move(art->layout), art->lift, job.flow);
        outcome.flow.times.artifact_load_s = load_s;
        from_artifact = true;
      }
    }
    if (!from_artifact) {
      original.emplace(job.make_netlist());
      outcome.flow = RunSecureFlow(*original, job.flow);
      if (store_addressable) {
        obs::Span span("flow.artifact_save");
        const Stopwatch t_save;
        options_.store->InsertArtifact(
            KeyFor(job),
            store::EncodeFlowArtifact(outcome.flow.lock,
                                      *outcome.flow.physical.netlist,
                                      *outcome.flow.physical.layout,
                                      outcome.flow.physical.lift));
        outcome.flow.times.artifact_save_s = t_save.Seconds();
      }
    }
    if (options_.run_attack) {
      if (!original) original.emplace(job.make_netlist());
      // Everything the engines may see. The oracle (the original function)
      // and the designer key are available for the threat-model-violating
      // and scoring-only engines; layout engines only read the FEOL view.
      attack::AttackContext ctx;
      ctx.feol = &outcome.flow.feol;
      ctx.locked = &outcome.flow.lock.locked;
      ctx.oracle = &*original;
      ctx.correct_key = outcome.flow.lock.key;
      ctx.seed = job.flow.seed;
      outcome.attacks.reserve(job.attacks.size());
      for (const attack::AttackConfig& config : job.attacks) {
        outcome.attacks.push_back(attack::RunAttack(ctx, config));
      }
      if (const attack::AttackReport* report = outcome.AssignmentReport()) {
        outcome.score =
            attack::ScoreAttack(outcome.flow.feol, report->assignment,
                                options_.score_patterns, job.flow.seed);
      }
    }
    outcome.ok = true;
  } catch (const std::exception& e) {
    outcome.error = e.what();
  } catch (...) {
    outcome.error = "unknown error";
  }
  outcome.elapsed_s = start.Seconds();
  // For a campaign job the consistency window is the whole job: every
  // stage interval (including artifact I/O, which falls outside the
  // inner flow/replay windows) is a sub-interval of it.
  outcome.flow.times.total_s = outcome.elapsed_s;
  MirrorStageTimes(outcome.flow.times);
  outcome.record = MakeCampaignRecord(
      outcome, options_.run_attack ? options_.score_patterns : 0);
  // Only completed jobs are persisted: a transient failure (OOM, an
  // interrupted run) must degrade to recomputation next time, never
  // poison the cache for its key.
  if (store_addressable && outcome.ok) {
    options_.store->Insert(KeyFor(job), outcome.record);
  }
  return outcome;
}

std::vector<CampaignOutcome> CampaignRunner::Run(
    const std::vector<CampaignJob>& jobs) const {
  std::vector<CampaignOutcome> outcomes(jobs.size());
  // Grain 1: each job is one pool task; whole-job parallelism dominates and
  // the nested sweeps inside a job soak up idle workers near the tail.
  exec::ParallelFor(jobs.size(), 1, [&](size_t lo, size_t hi) {
    for (size_t i = lo; i < hi; ++i) outcomes[i] = RunOne(jobs[i]);
  });
  return outcomes;
}

std::vector<CampaignJob> IscasCampaignJobs(const FlowOptions& flow) {
  std::vector<CampaignJob> jobs;
  for (const circuits::BenchmarkInfo& info : circuits::IscasSuite()) {
    CampaignJob job;
    job.name = info.name;
    job.make_netlist = [name = info.name] { return circuits::MakeIscas(name); };
    job.flow = flow;
    job.cache_id = "iscas/" + info.name;
    job.cache_scale = store::CanonicalDouble(1.0);  // ISCAS sizes are fixed
    jobs.push_back(std::move(job));
  }
  return jobs;
}

std::vector<CampaignJob> Itc99CampaignJobs(const FlowOptions& flow,
                                           double scale) {
  std::vector<CampaignJob> jobs;
  for (const circuits::BenchmarkInfo& info : circuits::Itc99Suite()) {
    CampaignJob job;
    job.name = info.name;
    job.make_netlist = [name = info.name, scale] {
      return circuits::MakeItc99(name, scale);
    };
    job.flow = flow;
    job.cache_id = "itc/" + info.name;
    job.cache_scale = store::CanonicalDouble(scale);
    jobs.push_back(std::move(job));
  }
  return jobs;
}

}  // namespace splitlock::core
