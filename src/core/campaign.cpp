#include "core/campaign.hpp"

#include <chrono>
#include <exception>

#include "circuits/suites.hpp"
#include "exec/parallel.hpp"

namespace splitlock::core {

const attack::AttackReport* CampaignOutcome::AssignmentReport() const {
  // The empty-stub guard keeps key-only engines (whose assignment is
  // legitimately empty) from being mistaken for a layout recovery when the
  // split broke nothing; splitlock_cli applies the same condition.
  if (flow.feol.sink_stubs.empty()) return nullptr;
  for (const attack::AttackReport& report : attacks) {
    if (report.ok && report.assignment.size() == flow.feol.sink_stubs.size()) {
      return &report;
    }
  }
  return nullptr;
}

CampaignOutcome CampaignRunner::RunOne(const CampaignJob& job) const {
  CampaignOutcome outcome;
  outcome.name = job.name;
  const auto start = std::chrono::steady_clock::now();
  try {
    const Netlist original = job.make_netlist();
    outcome.flow = RunSecureFlow(original, job.flow);
    if (options_.run_attack) {
      // Everything the engines may see. The oracle (the original function)
      // and the designer key are available for the threat-model-violating
      // and scoring-only engines; layout engines only read the FEOL view.
      attack::AttackContext ctx;
      ctx.feol = &outcome.flow.feol;
      ctx.locked = &outcome.flow.lock.locked;
      ctx.oracle = &original;
      ctx.correct_key = outcome.flow.lock.key;
      ctx.seed = job.flow.seed;
      outcome.attacks.reserve(job.attacks.size());
      for (const attack::AttackConfig& config : job.attacks) {
        outcome.attacks.push_back(attack::RunAttack(ctx, config));
      }
      if (const attack::AttackReport* report = outcome.AssignmentReport()) {
        outcome.score =
            attack::ScoreAttack(outcome.flow.feol, report->assignment,
                                options_.score_patterns, job.flow.seed);
      }
    }
    outcome.ok = true;
  } catch (const std::exception& e) {
    outcome.error = e.what();
  } catch (...) {
    outcome.error = "unknown error";
  }
  outcome.elapsed_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  return outcome;
}

std::vector<CampaignOutcome> CampaignRunner::Run(
    const std::vector<CampaignJob>& jobs) const {
  std::vector<CampaignOutcome> outcomes(jobs.size());
  // Grain 1: each job is one pool task; whole-job parallelism dominates and
  // the nested sweeps inside a job soak up idle workers near the tail.
  exec::ParallelFor(jobs.size(), 1, [&](size_t lo, size_t hi) {
    for (size_t i = lo; i < hi; ++i) outcomes[i] = RunOne(jobs[i]);
  });
  return outcomes;
}

std::vector<CampaignJob> IscasCampaignJobs(const FlowOptions& flow) {
  std::vector<CampaignJob> jobs;
  for (const circuits::BenchmarkInfo& info : circuits::IscasSuite()) {
    CampaignJob job;
    job.name = info.name;
    job.make_netlist = [name = info.name] { return circuits::MakeIscas(name); };
    job.flow = flow;
    jobs.push_back(std::move(job));
  }
  return jobs;
}

std::vector<CampaignJob> Itc99CampaignJobs(const FlowOptions& flow,
                                           double scale) {
  std::vector<CampaignJob> jobs;
  for (const circuits::BenchmarkInfo& info : circuits::Itc99Suite()) {
    CampaignJob job;
    job.name = info.name;
    job.make_netlist = [name = info.name, scale] {
      return circuits::MakeItc99(name, scale);
    };
    job.flow = flow;
    jobs.push_back(std::move(job));
  }
  return jobs;
}

}  // namespace splitlock::core
