#include "core/campaign.hpp"

#include <exception>

#include "circuits/suites.hpp"
#include "exec/parallel.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "store/artifact_io.hpp"
#include "util/stopwatch.hpp"

namespace splitlock::core {

namespace {

// Campaign-level observability. The job counter is deterministic (one
// per job); the stage time metrics mirror each job's StageTimes so
// `--metrics` exposes the flow breakdown the records carry, summed
// across the whole run.
struct CampaignMetrics {
  obs::Counter* jobs;
  obs::TimeMetric* lock_s;
  obs::TimeMetric* place_s;
  obs::TimeMetric* route_s;
  obs::TimeMetric* lift_s;
  obs::TimeMetric* sta_s;
  obs::TimeMetric* analyze_s;
  obs::TimeMetric* artifact_load_s;
  obs::TimeMetric* artifact_save_s;
  obs::TimeMetric* total_s;
};

CampaignMetrics& Metrics() {
  static CampaignMetrics m = [] {
    obs::Registry& r = obs::Registry::Instance();
    return CampaignMetrics{
        r.RegisterCounter("core.campaign.jobs"),
        r.RegisterTime("flow.stage.lock_s"),
        r.RegisterTime("flow.stage.place_s"),
        r.RegisterTime("flow.stage.route_s"),
        r.RegisterTime("flow.stage.lift_s"),
        r.RegisterTime("flow.stage.sta_s"),
        r.RegisterTime("flow.stage.analyze_s"),
        r.RegisterTime("flow.stage.artifact_load_s"),
        r.RegisterTime("flow.stage.artifact_save_s"),
        r.RegisterTime("flow.stage.total_s"),
    };
  }();
  return m;
}

void MirrorStageTimes(const StageTimes& t) {
  CampaignMetrics& m = Metrics();
  m.lock_s->AddSeconds(t.lock_s);
  m.place_s->AddSeconds(t.place_s);
  m.route_s->AddSeconds(t.route_s);
  m.lift_s->AddSeconds(t.lift_s);
  m.sta_s->AddSeconds(t.sta_s);
  m.analyze_s->AddSeconds(t.analyze_s);
  m.artifact_load_s->AddSeconds(t.artifact_load_s);
  m.artifact_save_s->AddSeconds(t.artifact_save_s);
  m.total_s->AddSeconds(t.total_s);
}

}  // namespace

const attack::AttackReport* CampaignOutcome::AssignmentReport() const {
  // The empty-stub guard keeps key-only engines (whose assignment is
  // legitimately empty) from being mistaken for a layout recovery when the
  // split broke nothing; splitlock_cli applies the same condition.
  if (flow.feol.sink_stubs.empty()) return nullptr;
  for (const attack::AttackReport& report : attacks) {
    if (report.ok && report.assignment.size() == flow.feol.sink_stubs.size()) {
      return &report;
    }
  }
  return nullptr;
}

store::StoreKey CampaignRunner::KeyFor(const CampaignJob& job) const {
  store::StoreKey key;
  key.suite = job.cache_id;
  key.scale = job.cache_scale;
  key.flow_hash = FlowOptionsHash(job.flow);
  return key;
}

uint64_t CampaignRunner::AttackKeyFor(const attack::AttackConfig& config) const {
  return store::AttackKeyHash(config.ToString(), options_.score_patterns);
}

store::FlowRecord MakeFlowRecord(const CampaignOutcome& outcome) {
  store::FlowRecord r;
  r.name = outcome.name;
  r.ok = outcome.ok;
  r.error = outcome.error;
  r.broken_connections = outcome.flow.feol.sink_stubs.size();
  r.key_bits = outcome.flow.lock.key.size();
  if (outcome.flow.physical.netlist) {
    r.logic_gates = outcome.flow.physical.netlist->NumLogicGates();
  }
  r.die_area_um2 = outcome.flow.physical.cost.die_area_um2;
  r.power_uw = outcome.flow.physical.cost.power_uw;
  r.critical_path_ps = outcome.flow.physical.cost.critical_path_ps;
  r.lock_s = outcome.flow.times.lock_s;
  r.place_s = outcome.flow.times.place_s;
  r.route_s = outcome.flow.times.route_s;
  r.lift_s = outcome.flow.times.lift_s;
  r.sta_s = outcome.flow.times.sta_s;
  r.analyze_s = outcome.flow.times.analyze_s;
  r.artifact_load_s = outcome.flow.times.artifact_load_s;
  r.artifact_save_s = outcome.flow.times.artifact_save_s;
  r.elapsed_s = outcome.elapsed_s;
  return r;
}

namespace {

// Surfaces a record's scorecard through the legacy outcome fields, so
// record-oblivious consumers read the same numbers whether the winning
// score was computed this run or served from a cached attack record.
void ScoreFromRecord(const store::CampaignRecord& r, attack::AttackScore* s) {
  s->ccr.regular_ccr_percent = r.regular_ccr_percent;
  s->ccr.key_logical_ccr_percent = r.key_logical_ccr_percent;
  s->ccr.key_physical_ccr_percent = r.key_physical_ccr_percent;
  s->pnr_percent = r.pnr_percent;
  s->functional.hd_percent = r.hd_percent;
  s->functional.oer_percent = r.oer_percent;
  s->functional.patterns = r.score_patterns;
}

store::AttackRecord MakeAttackRecord(const attack::AttackReport& report) {
  store::AttackRecord a;
  a.engine = report.engine;
  a.config = report.config;
  a.ok = report.ok;
  a.error = report.error;
  a.key_found = report.key_found;
  a.functionally_correct = report.functionally_correct;
  a.counters = report.counters;
  a.elapsed_s = report.elapsed_s;
  return a;
}

}  // namespace

std::optional<store::CampaignRecord> CampaignRunner::LookupAssembled(
    const CampaignJob& job) const {
  if (!options_.store || job.cache_id.empty()) return std::nullopt;
  const store::StoreKey key = KeyFor(job);
  std::optional<store::FlowRecord> flow = options_.store->LookupFlow(key);
  // Failed records are never inserted, but a foreign or stale store could
  // still hold one; an assembled failure is worthless to every caller.
  if (!flow || !flow->ok) return std::nullopt;
  std::vector<store::AttackRecord> attacks;
  if (options_.run_attack) {
    attacks.reserve(job.attacks.size());
    for (const attack::AttackConfig& config : job.attacks) {
      std::optional<store::AttackRecord> a =
          options_.store->LookupAttack(key, AttackKeyFor(config));
      if (!a) return std::nullopt;
      attacks.push_back(std::move(*a));
    }
  }
  return store::ComposeCampaignRecord(*flow, attacks);
}

CampaignOutcome CampaignRunner::RunOne(const CampaignJob& job) const {
  Metrics().jobs->Add(1);
  obs::Span job_span("campaign.job");
  CampaignOutcome outcome;
  outcome.name = job.name;
  const Stopwatch start;
  const bool store_addressable = options_.store && !job.cache_id.empty();
  const store::StoreKey key =
      store_addressable ? KeyFor(job) : store::StoreKey{};

  // One slot per portfolio position, in canonical order. Warm slots carry
  // their cached record through to the compose step; cold slots run their
  // engine on the compute path and publish afterwards.
  struct AttackSlot {
    const attack::AttackConfig* config;
    uint64_t hash;
    std::optional<store::AttackRecord> cached;
  };
  std::vector<AttackSlot> slots;
  if (options_.run_attack) {
    slots.reserve(job.attacks.size());
    for (const attack::AttackConfig& config : job.attacks) {
      slots.push_back(AttackSlot{&config, AttackKeyFor(config), std::nullopt});
    }
  }

  bool flow_from_store = false;
  if (store_addressable && !job.force_compute) {
    std::optional<store::FlowRecord> flow_record =
        options_.store->LookupFlow(key);
    // Failed records are never inserted (below), but a foreign or stale
    // store could still contain one; retrying the computation beats
    // replaying a failure forever.
    if (flow_record && flow_record->ok) {
      flow_from_store = true;
      bool all_cached = true;
      for (AttackSlot& slot : slots) {
        slot.cached = options_.store->LookupAttack(key, slot.hash);
        if (!slot.cached) all_cached = false;
      }
      if (all_cached) {
        // Full hit: every piece is on disk. Assemble without touching the
        // flow, the netlist builder, or any engine.
        std::vector<store::AttackRecord> attacks;
        attacks.reserve(slots.size());
        for (AttackSlot& slot : slots) {
          attacks.push_back(std::move(*slot.cached));
        }
        outcome.record = store::ComposeCampaignRecord(*flow_record, attacks);
        outcome.from_store = true;
        outcome.ok = outcome.record.ok;
        outcome.error = outcome.record.error;
        ScoreFromRecord(outcome.record, &outcome.score);
        outcome.elapsed_s = start.Seconds();
        return outcome;
      }
      // Partial hit: fall through to the compute path with the warm slots
      // pinned. The flow replays from the artifact tier (or recomputes
      // when the blob was evicted — which re-publishes it), only the cold
      // engines run, and only their records are published.
    }
  }

  // Per-attack records in portfolio order, cached and fresh interleaved;
  // what ComposeCampaignRecord merges below. Slots scored *this run* also
  // keep the full in-memory AttackScore: the serialized scorecard is only
  // the headline numbers, and callers of a computed run expect the rich
  // struct (sample counts, per-net CCR breakdowns) the record can't carry.
  std::vector<store::AttackRecord> attack_records;
  std::vector<std::optional<attack::AttackScore>> full_scores;
  try {
    // The oracle netlist is only needed when attacks run; a warm artifact
    // hit otherwise never calls make_netlist at all.
    std::optional<Netlist> original;
    bool from_artifact = false;
    if (store_addressable) {
      // Artifact consult happens on the compute path too (including
      // force_compute, which skips only the *record* shortcut above):
      // replayed artifacts reproduce the computed flow bit-exactly, so
      // skipping place/route/lift is a pure optimization.
      // artifact_load_s covers exactly lookup + decode. The replay that
      // follows reports under sta_s/analyze_s; timing it here too used to
      // double-report the warm window and broke StageSumS() <= total_s.
      std::optional<store::FlowArtifact> art;
      double load_s = 0.0;
      {
        obs::Span span("flow.artifact_load");
        const Stopwatch t_load;
        if (std::optional<std::string> payload =
                options_.store->LookupArtifact(key)) {
          art = store::DecodeFlowArtifact(*payload);
          if (!art) {
            // The envelope checked out but the payload did not decode.
            options_.store->NoteArtifactCorrupt();
          }
        }
        load_s = t_load.Seconds();
      }
      if (art) {
        outcome.flow = ReplayFlowFromArtifacts(
            std::move(art->lock), std::move(art->netlist),
            std::move(art->layout), art->lift, job.flow);
        outcome.flow.times.artifact_load_s = load_s;
        from_artifact = true;
      }
    }
    if (!from_artifact) {
      original.emplace(job.make_netlist());
      outcome.flow = RunSecureFlow(*original, job.flow);
      if (store_addressable) {
        obs::Span span("flow.artifact_save");
        const Stopwatch t_save;
        options_.store->InsertArtifact(
            key, store::EncodeFlowArtifact(outcome.flow.lock,
                                           *outcome.flow.physical.netlist,
                                           *outcome.flow.physical.layout,
                                           outcome.flow.physical.lift));
        outcome.flow.times.artifact_save_s = t_save.Seconds();
      }
    }
    if (options_.run_attack) {
      bool any_cold = false;
      for (const AttackSlot& slot : slots) {
        if (!slot.cached) any_cold = true;
      }
      // Everything the engines may see. The oracle (the original function)
      // and the designer key are available for the threat-model-violating
      // and scoring-only engines; layout engines only read the FEOL view.
      // Built only when an engine actually runs: a partial hit whose cold
      // set is empty (run_attack toggled portfolios) skips the oracle too.
      attack::AttackContext ctx;
      if (any_cold) {
        if (!original) original.emplace(job.make_netlist());
        ctx.feol = &outcome.flow.feol;
        ctx.locked = &outcome.flow.lock.locked;
        ctx.oracle = &*original;
        ctx.correct_key = outcome.flow.lock.key;
        ctx.seed = job.flow.seed;
      }
      attack_records.reserve(slots.size());
      full_scores.resize(slots.size());
      for (AttackSlot& slot : slots) {
        if (slot.cached) {
          attack_records.push_back(std::move(*slot.cached));
          continue;
        }
        attack::AttackReport report = attack::RunAttack(ctx, *slot.config);
        store::AttackRecord rec = MakeAttackRecord(report);
        // Per-attack scorecard, under the same completeness rule
        // AssignmentReport applies: the empty-stub guard keeps key-only
        // engines (whose assignment is legitimately empty) from being
        // mistaken for a layout recovery when the split broke nothing.
        // Scoring every assignment-carrying attack (not just the
        // portfolio's first) makes each record self-contained, so any
        // future portfolio can reproduce its campaign score from cache.
        if (!outcome.flow.feol.sink_stubs.empty() && report.ok &&
            report.assignment.size() == outcome.flow.feol.sink_stubs.size()) {
          const attack::AttackScore score =
              attack::ScoreAttack(outcome.flow.feol, report.assignment,
                                  options_.score_patterns, job.flow.seed);
          rec.has_score = true;
          rec.regular_ccr_percent = score.ccr.regular_ccr_percent;
          rec.key_logical_ccr_percent = score.ccr.key_logical_ccr_percent;
          rec.key_physical_ccr_percent = score.ccr.key_physical_ccr_percent;
          rec.pnr_percent = score.pnr_percent;
          rec.hd_percent = score.functional.hd_percent;
          rec.oer_percent = score.functional.oer_percent;
          rec.score_patterns =
              score.functional.patterns > 0 ? options_.score_patterns : 0;
          full_scores[attack_records.size()] = score;
        }
        outcome.attacks.push_back(std::move(report));
        attack_records.push_back(std::move(rec));
      }
    }
    outcome.ok = true;
  } catch (const std::exception& e) {
    outcome.error = e.what();
  } catch (...) {
    outcome.error = "unknown error";
  }
  outcome.elapsed_s = start.Seconds();
  // For a campaign job the consistency window is the whole job: every
  // stage interval (including artifact I/O, which falls outside the
  // inner flow/replay windows) is a sub-interval of it.
  outcome.flow.times.total_s = outcome.elapsed_s;
  MirrorStageTimes(outcome.flow.times);
  const store::FlowRecord flow_record = MakeFlowRecord(outcome);
  outcome.record = store::ComposeCampaignRecord(flow_record, attack_records);
  // The campaign score is the portfolio's first scorecard. When this run
  // computed it, hand the caller the full in-memory AttackScore; when a
  // cached record supplied it, the serialized headline numbers are all
  // there is (they round-trip bit-exactly via CanonicalDouble).
  ScoreFromRecord(outcome.record, &outcome.score);
  for (size_t i = 0; i < attack_records.size(); ++i) {
    if (!attack_records[i].has_score) continue;
    if (full_scores[i]) outcome.score = *full_scores[i];
    break;
  }
  // Only completed jobs are persisted: a transient failure (OOM, an
  // interrupted run) must degrade to recomputation next time, never
  // poison the cache for its key. Publish only what this run computed:
  // cold attack records always, the flow record only when the store
  // didn't already serve it.
  if (store_addressable && outcome.ok) {
    for (size_t i = 0; i < slots.size(); ++i) {
      if (slots[i].cached.has_value()) continue;
      options_.store->InsertAttack(key, slots[i].hash, attack_records[i]);
    }
    if (!flow_from_store) {
      options_.store->InsertFlow(key, flow_record);
    }
  }
  return outcome;
}

std::vector<CampaignOutcome> CampaignRunner::Run(
    const std::vector<CampaignJob>& jobs) const {
  std::vector<CampaignOutcome> outcomes(jobs.size());
  // Grain 1: each job is one pool task; whole-job parallelism dominates and
  // the nested sweeps inside a job soak up idle workers near the tail.
  exec::ParallelFor(jobs.size(), 1, [&](size_t lo, size_t hi) {
    for (size_t i = lo; i < hi; ++i) outcomes[i] = RunOne(jobs[i]);
  });
  return outcomes;
}

std::vector<CampaignJob> IscasCampaignJobs(const FlowOptions& flow) {
  std::vector<CampaignJob> jobs;
  for (const circuits::BenchmarkInfo& info : circuits::IscasSuite()) {
    CampaignJob job;
    job.name = info.name;
    job.make_netlist = [name = info.name] { return circuits::MakeIscas(name); };
    job.flow = flow;
    job.cache_id = "iscas/" + info.name;
    job.cache_scale = store::CanonicalDouble(1.0);  // ISCAS sizes are fixed
    jobs.push_back(std::move(job));
  }
  return jobs;
}

std::vector<CampaignJob> Itc99CampaignJobs(const FlowOptions& flow,
                                           double scale) {
  std::vector<CampaignJob> jobs;
  for (const circuits::BenchmarkInfo& info : circuits::Itc99Suite()) {
    CampaignJob job;
    job.name = info.name;
    job.make_netlist = [name = info.name, scale] {
      return circuits::MakeItc99(name, scale);
    };
    job.flow = flow;
    job.cache_id = "itc/" + info.name;
    job.cache_scale = store::CanonicalDouble(scale);
    jobs.push_back(std::move(job));
  }
  return jobs;
}

}  // namespace splitlock::core
