// CampaignRunner: concurrent lock -> place/route -> split -> attack
// campaigns over whole circuit suites.
//
// One campaign job is the full per-benchmark evaluation pipeline the bench
// harnesses and the CLI run: build the circuit, run the secure split
// manufacturing flow, split the layout, run a *portfolio of attack engines*
// against the result, score it (CCR / PNR / HD / OER). Jobs are
// independent, so the runner executes them as tasks on the exec thread
// pool; the parallel sweeps inside each job (fault sim, HD/OER, probes,
// portfolio solver races) run as nested parallel regions on the same pool,
// so a single large job still saturates the machine once the queue of
// whole jobs drains. Per-job failures are captured in the outcome instead
// of aborting the campaign. Outcomes keep job order; all per-job randomness
// is seeded from the job's own options, so a campaign's results do not
// depend on thread count or completion order.
//
// Attacks are described by attack::AttackConfig values and dispatched
// through the attack-engine registry (attack/engine.hpp): any registered
// engine — proximity, ml, ideal, sat, oracle-less, sat-portfolio — can run
// per job, not just the proximity attack.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "attack/engine.hpp"
#include "attack/metrics.hpp"
#include "core/flow.hpp"
#include "store/result_store.hpp"

namespace splitlock::core {

struct CampaignJob {
  std::string name;
  // Deferred circuit construction: runs inside the worker task, so
  // suite-scale campaigns also build their (synthetic) benchmarks
  // concurrently.
  std::function<Netlist()> make_netlist;
  FlowOptions flow;
  // Attack portfolio for this job, run in order through the engine
  // registry. Engines see the job's FEOL view, locked netlist, the
  // original as oracle, and the designer key; the scorecard is computed
  // from the first report that carries a complete assignment.
  std::vector<attack::AttackConfig> attacks = {
      attack::AttackConfig{.engine = "proximity"}};

  // Persistent-store identity of the benchmark this job evaluates
  // (e.g. "itc/b14") and the canonical scale string; empty cache_id means
  // the job is not store-addressable (ad-hoc netlists). The flow-level
  // store::StoreKey additionally hashes the flow options
  // (CampaignRunner::KeyFor); each attack in the portfolio is addressed
  // separately under that key (CampaignRunner::AttackKeyFor).
  std::string cache_id;
  std::string cache_scale;
  // Skip the store lookup (still inserts after computing). Consumers that
  // need the in-memory FlowResult — not just the record — set this: a
  // store hit cannot reconstruct netlists or layouts.
  bool force_compute = false;
};

struct CampaignOutcome {
  std::string name;
  bool ok = false;
  std::string error;  // exception text when !ok
  FlowResult flow;
  // One report per attack this run actually executed, in job order. A
  // failed engine run (unknown name, missing context) yields a !ok
  // report; it does not fail the job. On a partial store hit, attacks the
  // store already held do NOT reappear here — only in `record.attacks`.
  std::vector<attack::AttackReport> attacks;
  attack::AttackScore score;  // the record's campaign-level scorecard
  double elapsed_s = 0.0;

  // Serializable summary of this outcome — always filled, assembled by
  // store::ComposeCampaignRecord from the flow summary and the per-attack
  // records (cached or fresh) in canonical portfolio order, so it is
  // byte-identical however the pieces were obtained. On a full store hit
  // it IS the result (from_store=true) and `flow`/`attacks` stay empty;
  // consumers that only read numbers (the CLI suite table, shard tables,
  // the table benches) use the record and never notice the difference.
  store::CampaignRecord record;
  bool from_store = false;

  // The first report with a complete assignment (nullptr when none).
  const attack::AttackReport* AssignmentReport() const;
};

struct CampaignOptions {
  // Random patterns for the attack scorecard's HD/OER estimate.
  uint64_t score_patterns = 4096;
  // Skip the attack portfolio + scorecard (flow-only campaigns).
  bool run_attack = true;
  // Persistent result store (not owned; may be null). Jobs with a
  // cache_id consult it before computing and insert after computing.
  store::ResultStore* store = nullptr;
};

class CampaignRunner {
 public:
  explicit CampaignRunner(CampaignOptions options = {}) : options_(options) {}

  // Runs every job, concurrently, and returns outcomes in job order.
  std::vector<CampaignOutcome> Run(const std::vector<CampaignJob>& jobs) const;

  // Runs a single job on the calling thread. Store-addressable jobs
  // resolve in three temperatures: a *full hit* assembles the record from
  // the flow + every per-attack record without computing anything; a
  // *partial hit* (flow record present, some attacks missing) replays the
  // flow from the artifact tier (or recomputes it when the blob was
  // evicted), runs only the missing engines, and publishes only their
  // records; a *cold* job computes and publishes everything.
  CampaignOutcome RunOne(const CampaignJob& job) const;

  // The flow-level persistent-store address of `job`:
  // (cache_id, cache_scale, FlowOptionsHash(job.flow)). Shared by every
  // attack portfolio over the same flow.
  store::StoreKey KeyFor(const CampaignJob& job) const;

  // The per-attack record address under KeyFor(job):
  // store::AttackKeyHash over the config's canonical string and this
  // runner's score-pattern count.
  uint64_t AttackKeyFor(const attack::AttackConfig& config) const;

  // Store-only assembly: the RunOne full-hit path without the compute
  // fallback. nullopt unless the flow record is present and ok and every
  // attack record exists. Record-only consumers (bench table harnesses)
  // use this instead of reimplementing two-level lookups.
  std::optional<store::CampaignRecord> LookupAssembled(
      const CampaignJob& job) const;

 private:
  CampaignOptions options_;
};

// The runner's flow-summary rule, exposed for tests and for consumers
// that assemble outcomes themselves; the job-level record is then
// store::ComposeCampaignRecord(MakeFlowRecord(outcome), attack records).
store::FlowRecord MakeFlowRecord(const CampaignOutcome& outcome);

// Suite helpers: one job per benchmark, named after it. `scale` follows
// circuits::MakeItc99's REPRO_SCALE semantics.
std::vector<CampaignJob> IscasCampaignJobs(const FlowOptions& flow);
std::vector<CampaignJob> Itc99CampaignJobs(const FlowOptions& flow,
                                           double scale);

}  // namespace splitlock::core
