// CampaignRunner: concurrent lock -> place/route -> split -> attack
// campaigns over whole circuit suites.
//
// One campaign job is the full per-benchmark evaluation pipeline the bench
// harnesses and the CLI run: build the circuit, run the secure split
// manufacturing flow, split the layout, run a *portfolio of attack engines*
// against the result, score it (CCR / PNR / HD / OER). Jobs are
// independent, so the runner executes them as tasks on the exec thread
// pool; the parallel sweeps inside each job (fault sim, HD/OER, probes,
// portfolio solver races) run as nested parallel regions on the same pool,
// so a single large job still saturates the machine once the queue of
// whole jobs drains. Per-job failures are captured in the outcome instead
// of aborting the campaign. Outcomes keep job order; all per-job randomness
// is seeded from the job's own options, so a campaign's results do not
// depend on thread count or completion order.
//
// Attacks are described by attack::AttackConfig values and dispatched
// through the attack-engine registry (attack/engine.hpp): any registered
// engine — proximity, ml, ideal, sat, oracle-less, sat-portfolio — can run
// per job, not just the proximity attack.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "attack/engine.hpp"
#include "attack/metrics.hpp"
#include "core/flow.hpp"

namespace splitlock::core {

struct CampaignJob {
  std::string name;
  // Deferred circuit construction: runs inside the worker task, so
  // suite-scale campaigns also build their (synthetic) benchmarks
  // concurrently.
  std::function<Netlist()> make_netlist;
  FlowOptions flow;
  // Attack portfolio for this job, run in order through the engine
  // registry. Engines see the job's FEOL view, locked netlist, the
  // original as oracle, and the designer key; the scorecard is computed
  // from the first report that carries a complete assignment.
  std::vector<attack::AttackConfig> attacks = {
      attack::AttackConfig{.engine = "proximity"}};
};

struct CampaignOutcome {
  std::string name;
  bool ok = false;
  std::string error;  // exception text when !ok
  FlowResult flow;
  // One report per configured attack, in job order. A failed engine run
  // (unknown name, missing context) yields a !ok report; it does not fail
  // the job.
  std::vector<attack::AttackReport> attacks;
  attack::AttackScore score;  // from the first assignment-carrying report
  double elapsed_s = 0.0;

  // The first report with a complete assignment (nullptr when none).
  const attack::AttackReport* AssignmentReport() const;
};

struct CampaignOptions {
  // Random patterns for the attack scorecard's HD/OER estimate.
  uint64_t score_patterns = 4096;
  // Skip the attack portfolio + scorecard (flow-only campaigns).
  bool run_attack = true;
};

class CampaignRunner {
 public:
  explicit CampaignRunner(CampaignOptions options = {}) : options_(options) {}

  // Runs every job, concurrently, and returns outcomes in job order.
  std::vector<CampaignOutcome> Run(const std::vector<CampaignJob>& jobs) const;

  // Runs a single job on the calling thread.
  CampaignOutcome RunOne(const CampaignJob& job) const;

 private:
  CampaignOptions options_;
};

// Suite helpers: one job per benchmark, named after it. `scale` follows
// circuits::MakeItc99's REPRO_SCALE semantics.
std::vector<CampaignJob> IscasCampaignJobs(const FlowOptions& flow);
std::vector<CampaignJob> Itc99CampaignJobs(const FlowOptions& flow,
                                           double scale);

}  // namespace splitlock::core
