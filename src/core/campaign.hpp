// CampaignRunner: concurrent lock -> place/route -> split -> attack
// campaigns over whole circuit suites.
//
// One campaign job is the full per-benchmark evaluation pipeline the bench
// harnesses and the CLI run: build the circuit, run the secure split
// manufacturing flow, split the layout, run a *portfolio of attack engines*
// against the result, score it (CCR / PNR / HD / OER). Jobs are
// independent, so the runner executes them as tasks on the exec thread
// pool; the parallel sweeps inside each job (fault sim, HD/OER, probes,
// portfolio solver races) run as nested parallel regions on the same pool,
// so a single large job still saturates the machine once the queue of
// whole jobs drains. Per-job failures are captured in the outcome instead
// of aborting the campaign. Outcomes keep job order; all per-job randomness
// is seeded from the job's own options, so a campaign's results do not
// depend on thread count or completion order.
//
// Attacks are described by attack::AttackConfig values and dispatched
// through the attack-engine registry (attack/engine.hpp): any registered
// engine — proximity, ml, ideal, sat, oracle-less, sat-portfolio — can run
// per job, not just the proximity attack.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "attack/engine.hpp"
#include "attack/metrics.hpp"
#include "core/flow.hpp"
#include "store/result_store.hpp"

namespace splitlock::core {

struct CampaignJob {
  std::string name;
  // Deferred circuit construction: runs inside the worker task, so
  // suite-scale campaigns also build their (synthetic) benchmarks
  // concurrently.
  std::function<Netlist()> make_netlist;
  FlowOptions flow;
  // Attack portfolio for this job, run in order through the engine
  // registry. Engines see the job's FEOL view, locked netlist, the
  // original as oracle, and the designer key; the scorecard is computed
  // from the first report that carries a complete assignment.
  std::vector<attack::AttackConfig> attacks = {
      attack::AttackConfig{.engine = "proximity"}};

  // Persistent-store identity of the benchmark this job evaluates
  // (e.g. "itc/b14") and the canonical scale string; empty cache_id means
  // the job is not store-addressable (ad-hoc netlists). The full
  // store::StoreKey additionally hashes the flow options and the attack
  // portfolio — see CampaignRunner::KeyFor.
  std::string cache_id;
  std::string cache_scale;
  // Skip the store lookup (still inserts after computing). Consumers that
  // need the in-memory FlowResult — not just the record — set this: a
  // store hit cannot reconstruct netlists or layouts.
  bool force_compute = false;
};

struct CampaignOutcome {
  std::string name;
  bool ok = false;
  std::string error;  // exception text when !ok
  FlowResult flow;
  // One report per configured attack, in job order. A failed engine run
  // (unknown name, missing context) yields a !ok report; it does not fail
  // the job.
  std::vector<attack::AttackReport> attacks;
  attack::AttackScore score;  // from the first assignment-carrying report
  double elapsed_s = 0.0;

  // Serializable summary of this outcome — always filled. On a store hit
  // it IS the result (from_store=true) and `flow`/`attacks` stay empty;
  // consumers that only read numbers (the CLI suite table, shard tables,
  // the table benches) use the record and never notice the difference.
  store::CampaignRecord record;
  bool from_store = false;

  // The first report with a complete assignment (nullptr when none).
  const attack::AttackReport* AssignmentReport() const;
};

struct CampaignOptions {
  // Random patterns for the attack scorecard's HD/OER estimate.
  uint64_t score_patterns = 4096;
  // Skip the attack portfolio + scorecard (flow-only campaigns).
  bool run_attack = true;
  // Persistent result store (not owned; may be null). Jobs with a
  // cache_id consult it before computing and insert after computing.
  store::ResultStore* store = nullptr;
};

class CampaignRunner {
 public:
  explicit CampaignRunner(CampaignOptions options = {}) : options_(options) {}

  // Runs every job, concurrently, and returns outcomes in job order.
  std::vector<CampaignOutcome> Run(const std::vector<CampaignJob>& jobs) const;

  // Runs a single job on the calling thread.
  CampaignOutcome RunOne(const CampaignJob& job) const;

  // The persistent-store address of `job` under this runner's options:
  // (cache_id, cache_scale, FlowOptionsHash(job.flow),
  //  PortfolioHash(job.attacks, score_patterns, run_attack)).
  store::StoreKey KeyFor(const CampaignJob& job) const;

 private:
  CampaignOptions options_;
};

// The runner's record-building rule, exposed for tests and for consumers
// that assemble outcomes themselves.
store::CampaignRecord MakeCampaignRecord(const CampaignOutcome& outcome,
                                         uint64_t score_patterns);

// Suite helpers: one job per benchmark, named after it. `scale` follows
// circuits::MakeItc99's REPRO_SCALE semantics.
std::vector<CampaignJob> IscasCampaignJobs(const FlowOptions& flow);
std::vector<CampaignJob> Itc99CampaignJobs(const FlowOptions& flow,
                                           double scale);

}  // namespace splitlock::core
