#include "core/flow.hpp"

#include <cstdio>
#include <string>

#include "lock/key.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "phys/placer.hpp"
#include "sim/simulator.hpp"
#include "util/hash.hpp"
#include "util/stopwatch.hpp"

namespace splitlock::core {
namespace {

// Flow-level run counts (deterministic: one per top-level call). The
// per-stage seconds live in StageTimes, which campaign.cpp mirrors into
// the obs time metrics once per job.
obs::Counter* FlowRunCounter() {
  static obs::Counter* c =
      obs::Registry::Instance().RegisterCounter("core.flow.runs");
  return c;
}

obs::Counter* FlowReplayCounter() {
  static obs::Counter* c =
      obs::Registry::Instance().RegisterCounter("core.flow.replays");
  return c;
}

LayoutCost MeasureCost(const PhysicalBundle& bundle) {
  LayoutCost cost;
  cost.die_area_um2 = bundle.layout->DieAreaUm2();
  cost.power_uw = bundle.power.TotalUw();
  cost.critical_path_ps = bundle.timing.critical_path_ps;
  return cost;
}

// The analysis tail shared by the computed flow and the artifact replay:
// STA (timed as sta_s), then toggle-rate + power estimation (analyze_s),
// then the cost rollup. Pure function of (layout, netlist, options), which
// is what makes replaying it on deserialized artifacts bit-identical to
// the flow that produced them.
void AnalyzePhysicalBundle(PhysicalBundle& bundle,
                           const FlowOptions& options) {
  {
    obs::Span span("flow.sta");
    const Stopwatch t_sta;
    bundle.timing = phys::RunSta(*bundle.layout);
    bundle.times.sta_s = t_sta.Seconds();
  }

  {
    obs::Span span("flow.analyze");
    const Stopwatch t_analyze;
    const std::vector<double> toggles = EstimateToggleRates(
        *bundle.netlist, options.power_patterns, options.seed ^ 0x777);
    bundle.power = phys::EstimatePower(*bundle.layout, toggles);
    bundle.times.analyze_s = t_analyze.Seconds();
  }
  bundle.cost = MeasureCost(bundle);
}

}  // namespace

std::string FlowOptionsCanonical(const FlowOptions& options) {
  const auto num = [](double v) {
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    return std::string(buf);
  };
  const auto u64 = [](uint64_t v) { return std::to_string(v); };
  // lock.key_bits/lock.seed are synced from the top-level fields by
  // RunSecureFlow, so they are intentionally absent here.
  std::string s = "v1";
  s += ";key_bits=" + u64(options.key_bits);
  s += ";split_layer=" + std::to_string(options.split_layer);
  s += ";lift_layer=" + std::to_string(options.lift_layer);
  s += ";utilization=" + num(options.utilization);
  s += ";placer_moves_per_cell=" + std::to_string(options.placer_moves_per_cell);
  s += ";seed=" + u64(options.seed);
  s += ";power_patterns=" + u64(options.power_patterns);
  s += ";randomize_tie_placement=" + u64(options.randomize_tie_placement);
  s += ";lift_key_nets=" + u64(options.lift_key_nets);
  s += ";package_mode=" + u64(options.package_mode);
  s += ";lock.max_cut_leaves=" + u64(options.lock.max_cut_leaves);
  s += ";lock.max_minterms=" + u64(options.lock.max_minterms);
  s += ";lock.max_cubes=" + u64(options.lock.max_cubes);
  s += ";lock.partitions=" + u64(options.lock.partitions);
  s += ";lock.min_bias=" + num(options.lock.min_bias);
  s += ";lock.bias_patterns=" + u64(options.lock.bias_patterns);
  s += ";lock.check_patterns=" + u64(options.lock.check_patterns);
  s += ";lock.verify_lec=" + u64(options.lock.verify_lec);
  s += ";lock.require_area_gain=" + u64(options.lock.require_area_gain);
  return s;
}

uint64_t FlowOptionsHash(const FlowOptions& options) {
  return util::Fnv1a(FlowOptionsCanonical(options));
}

CostDelta CompareCost(const LayoutCost& base, const LayoutCost& ours) {
  auto pct = [](double b, double o) {
    return b == 0.0 ? 0.0 : 100.0 * (o - b) / b;
  };
  CostDelta d;
  d.area_percent = pct(base.die_area_um2, ours.die_area_um2);
  d.power_percent = pct(base.power_uw, ours.power_uw);
  d.timing_percent = pct(base.critical_path_ps, ours.critical_path_ps);
  return d;
}

PhysicalBundle BuildPhysical(const Netlist& physical_netlist,
                             const FlowOptions& options) {
  const Stopwatch t_total;
  PhysicalBundle bundle;
  bundle.netlist = std::make_unique<Netlist>(physical_netlist.Compacted());

  phys::PlacerOptions placer;
  placer.utilization = options.utilization;
  placer.seed = options.seed ^ 0x9e3779b9;
  placer.moves_per_cell = options.placer_moves_per_cell;
  placer.randomize_tie_cells = options.randomize_tie_placement;
  placer.key_inputs_as_pads = options.package_mode;
  {
    obs::Span span("flow.place");
    const Stopwatch t_place;
    bundle.layout = std::make_unique<phys::Layout>(phys::PlaceDesign(
        *bundle.netlist, phys::Tech::Nangate45Like(), placer));
    bundle.times.place_s = t_place.Seconds();
  }

  phys::RouterOptions router;
  router.seed = options.seed ^ 0x51ed2701;
  router.route_key_nets_as_regular = !options.lift_key_nets;
  {
    obs::Span span("flow.route");
    const Stopwatch t_route;
    phys::RouteDesign(*bundle.layout, router);
    bundle.times.route_s = t_route.Seconds();
  }

  if (options.lift_key_nets) {
    // Package mode routes the key-nets on the top metal pair out to the
    // pads, independent of the split layer.
    const int lift_layer =
        options.package_mode
            ? bundle.layout->tech.NumLayers() - 1
            : options.EffectiveLiftLayer();
    obs::Span span("flow.lift");
    const Stopwatch t_lift;
    bundle.lift = phys::LiftKeyNets(*bundle.layout, *bundle.netlist,
                                    lift_layer, options.seed ^ 0x1f2e3d4c);
    bundle.times.lift_s = t_lift.Seconds();
  }

  AnalyzePhysicalBundle(bundle, options);
  bundle.times.total_s = t_total.Seconds();
  return bundle;
}

FlowResult RunSecureFlow(const Netlist& original, const FlowOptions& options) {
  FlowRunCounter()->Add(1);
  const Stopwatch t_total;
  FlowResult result;

  {
    obs::Span span("flow.lock");
    const Stopwatch t_lock;
    lock::AtpgLockOptions lock_opts = options.lock;
    lock_opts.key_bits = options.key_bits;
    lock_opts.seed = options.seed;
    result.lock = lock::LockWithAtpg(original, lock_opts);
    result.times.lock_s = t_lock.Seconds();
  }

  // Package mode keeps the kKeyIn sources as pads; otherwise the key is
  // realized as on-die TIE cells.
  const Netlist realized =
      options.package_mode
          ? result.lock.locked
          : lock::RealizeKeyAsTies(result.lock.locked, result.lock.key);

  result.physical = BuildPhysical(realized, options);
  result.times.place_s = result.physical.times.place_s;
  result.times.route_s = result.physical.times.route_s;
  result.times.lift_s = result.physical.times.lift_s;
  result.times.sta_s = result.physical.times.sta_s;
  result.times.analyze_s = result.physical.times.analyze_s;

  result.feol =
      split::SplitLayout(*result.physical.layout, options.split_layer);
  result.times.total_s = t_total.Seconds();
  return result;
}

FlowResult ReplayFlowFromArtifacts(lock::AtpgLockResult lock_result,
                                   std::unique_ptr<Netlist> physical_netlist,
                                   std::unique_ptr<phys::Layout> layout,
                                   const phys::LiftStats& lift,
                                   const FlowOptions& options) {
  FlowReplayCounter()->Add(1);
  obs::Span span("flow.replay");
  const Stopwatch t_total;
  FlowResult result;
  result.lock = std::move(lock_result);
  result.physical.netlist = std::move(physical_netlist);
  result.physical.layout = std::move(layout);
  result.physical.layout->netlist = result.physical.netlist.get();
  result.physical.lift = lift;

  AnalyzePhysicalBundle(result.physical, options);
  result.times.sta_s = result.physical.times.sta_s;
  result.times.analyze_s = result.physical.times.analyze_s;

  result.feol =
      split::SplitLayout(*result.physical.layout, options.split_layer);
  result.times.total_s = t_total.Seconds();
  return result;
}

}  // namespace splitlock::core
