// SecureSplitFlow: the paper's end-to-end physical design flow (Fig. 3).
//
// Synthesis stage: ATPG-based locking embeds exactly k key bits (fault
// injection + restore circuitry, LEC-verified), then the key is realized as
// TIEHI/TIELO cells. Layout stage: TIE cells are randomized and fixed
// (detached from the cost function), the design is placed and routed, and
// the key-nets are lifted to the BEOL through stacked vias with ECO
// re-route. Finally the layout is split: metals <= split_layer go to the
// untrusted FEOL foundry, the key-net connectivity above is the BEOL
// secret.
//
// The same machinery also produces the evaluation baselines: the
// unprotected layout (Fig. 5 baseline) and the "prelift" locked layout
// (regular PD flow with dont-touch TIE cells, no lifting).
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "lock/atpg_lock.hpp"
#include "netlist/netlist.hpp"
#include "phys/layout.hpp"
#include "phys/power.hpp"
#include "phys/router.hpp"
#include "phys/timing.hpp"
#include "split/split.hpp"

namespace splitlock::core {

struct LayoutCost {
  double die_area_um2 = 0.0;
  double power_uw = 0.0;
  double critical_path_ps = 0.0;
};

// Percent deltas of `ours` relative to `base` (the Fig. 5 quantities).
struct CostDelta {
  double area_percent = 0.0;
  double power_percent = 0.0;
  double timing_percent = 0.0;
};
CostDelta CompareCost(const LayoutCost& base, const LayoutCost& ours);

// Wall-clock of each flow phase, from the run that produced the result
// (non-canonical: two runs of the same key agree on everything but this).
// place/route/lift are measured inside BuildPhysical around exactly the
// PlaceDesign / RouteDesign / LiftKeyNets calls, so campaign records expose
// where a job's physical-design time goes (see bench_runtime, bench_phys).
struct StageTimes {
  double lock_s = 0.0;
  double place_s = 0.0;
  double route_s = 0.0;
  double lift_s = 0.0;
  double sta_s = 0.0;      // RunSta alone
  double analyze_s = 0.0;  // toggle-rate + power estimation

  // Artifact-tier I/O (store/artifact_io): zero on a computed flow without
  // a store; a warm flow has artifact_load_s > 0 and place/route/lift == 0.
  // Measures lookup + decode only — the replayed analysis stages report
  // under sta_s/analyze_s, never here, so the stage fields are pairwise
  // non-overlapping intervals.
  double artifact_load_s = 0.0;
  double artifact_save_s = 0.0;

  // End-to-end wall clock of the call that produced this result (flow,
  // replay, or whole campaign job). Because every stage field above is a
  // non-overlapping sub-interval of it, StageSumS() <= total_s (up to
  // clock resolution) — tests assert this on both cold and warm runs.
  double total_s = 0.0;

  // Everything BuildPhysical spends (lock_s is the synthesis stage).
  double LayoutTotalS() const {
    return place_s + route_s + lift_s + sta_s + analyze_s;
  }

  // Sum of all stage intervals, for the total_s consistency check.
  double StageSumS() const {
    return lock_s + place_s + route_s + lift_s + sta_s + analyze_s +
           artifact_load_s + artifact_save_s;
  }
};

struct FlowOptions {
  size_t key_bits = 128;
  int split_layer = 4;   // FEOL keeps metals <= split_layer
  // Lift layer defaults to split_layer + 1 (paper: M5 for M4, M7 for M6).
  int lift_layer = 0;    // 0 = split_layer + 1
  double utilization = 0.70;
  int placer_moves_per_cell = 60;
  uint64_t seed = 1;
  uint64_t power_patterns = 2048;

  // Security knobs (the ablations flip these):
  bool randomize_tie_placement = true;  // Fig. 2(b): randomize + fix TIEs
  bool lift_key_nets = true;            // Fig. 2(c): key-nets to the BEOL

  // Future-work mode (paper Sec. V): instead of on-die TIE cells completed
  // by a trusted BEOL fab, the key-nets run to I/O pads and are tied to
  // fixed logic in the (trusted) package routing. Key inputs stay in the
  // physical netlist as boundary pads and the key-nets are routed on the
  // top metal pair regardless of the split layer.
  bool package_mode = false;

  lock::AtpgLockOptions lock;  // key_bits/seed are synced by the flow

  int EffectiveLiftLayer() const {
    return lift_layer > 0 ? lift_layer : split_layer + 1;
  }
};

// Physical view of one netlist: the flow owns the (mutable) netlist and the
// layout; both live behind stable pointers so the bundle can be moved.
struct PhysicalBundle {
  std::unique_ptr<Netlist> netlist;
  std::unique_ptr<phys::Layout> layout;
  phys::TimingReport timing;
  phys::PowerReport power;
  phys::LiftStats lift;
  LayoutCost cost;
  StageTimes times;  // place_s/route_s/lift_s of this build (lock_s unused)
};

struct FlowResult {
  lock::AtpgLockResult lock;   // locked netlist (kKeyIn form) + correct key
  PhysicalBundle physical;     // TIE-realized netlist + secure layout
  split::FeolView feol;        // references physical.{netlist,layout}
  StageTimes times;
};

// Canonical key=value string over every FlowOptions field that affects the
// flow's result, with the same lock-option sync RunSecureFlow applies
// (lock.key_bits/lock.seed are overridden by the top-level values, so they
// do not participate independently). Versioned ("v1;..."): extend the
// string when FlowOptions grows a field, never reorder it.
std::string FlowOptionsCanonical(const FlowOptions& options);

// FNV-1a of FlowOptionsCanonical: the flow-options component of a
// store::StoreKey. Stable across processes; a golden test pins it so store
// keys cannot silently change across refactors.
uint64_t FlowOptionsHash(const FlowOptions& options);

// The full secure flow on `original`.
FlowResult RunSecureFlow(const Netlist& original,
                         const FlowOptions& options = {});

// Place-and-route of an arbitrary physical netlist (no kKeyIn sources) —
// used for the unprotected baseline and the prelift reference. When
// `options.lift_key_nets` is set and the netlist contains flagged key-nets,
// they are lifted exactly as in the secure flow.
PhysicalBundle BuildPhysical(const Netlist& physical_netlist,
                             const FlowOptions& options);

// Warm-start path: rebuilds a FlowResult from deserialized flow artifacts
// (store/artifact_io) without running place/route/lift. The analysis stages
// (STA, toggle rates, power) and the split are *replayed* — they are cheap,
// deterministic functions of the layout, so the result is bit-identical to
// the computed flow that produced the artifacts. `layout` must reference
// `physical_netlist` (DecodeFlowArtifact guarantees this); lock_s, place_s,
// route_s and lift_s stay zero, which is how callers observe the skip.
FlowResult ReplayFlowFromArtifacts(lock::AtpgLockResult lock_result,
                                   std::unique_ptr<Netlist> physical_netlist,
                                   std::unique_ptr<phys::Layout> layout,
                                   const phys::LiftStats& lift,
                                   const FlowOptions& options);

}  // namespace splitlock::core
