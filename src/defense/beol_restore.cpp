#include <algorithm>
#include <vector>

#include "defense/defenses.hpp"
#include "phys/router.hpp"
#include "util/rng.hpp"

namespace splitlock::defense {
namespace {

// Sink pins eligible for a decoy swap: logic-gate inputs on routed
// logic-driven nets (never I/O pads).
struct SwapPin {
  Pin pin;
  NetId true_net;
};

std::vector<SwapPin> EligiblePins(const Netlist& nl,
                                  const phys::Layout& layout) {
  std::vector<SwapPin> pins;
  for (NetId n = 0; n < nl.NumNets(); ++n) {
    if (!layout.routes[n].routed) continue;
    const GateId d = nl.DriverOf(n);
    if (d == kNullId || nl.gate(d).op == GateOp::kInput) continue;
    for (const Pin& p : nl.net(n).sinks) {
      const Gate& sink = nl.gate(p.gate);
      if (sink.op == GateOp::kOutput) continue;
      pins.push_back(SwapPin{p, n});
    }
  }
  return pins;
}

}  // namespace

DefenseResult ApplyBeolRestore(const Netlist& original,
                               const core::FlowOptions& flow,
                               const BeolRestoreOptions& options) {
  DefenseResult result;
  core::FlowOptions opts = flow;
  opts.lift_key_nets = false;
  result.physical = core::BuildPhysical(original, opts);
  phys::Layout& layout = *result.physical.layout;
  Netlist& nl = *result.physical.netlist;  // mutated into the decoy below
  Rng rng(opts.seed ^ 0xbe015e57);

  // Keep the functional ground truth before introducing decoy wiring.
  result.reference = std::make_unique<Netlist>(nl);

  // Pairwise sink-pin swaps: the FEOL implements the decoy connectivity;
  // the BEOL restores the true one. Each swapped pin's true net is recorded
  // for the split's ground-truth annotation.
  std::vector<SwapPin> pins = EligiblePins(nl, layout);
  rng.Shuffle(pins);
  const size_t swap_pairs = static_cast<size_t>(
      static_cast<double>(pins.size()) * options.lift_fraction *
      options.swap_fraction / 2.0);
  std::vector<SwapPin> swapped;
  std::vector<NetId> lifted_nets;
  for (size_t i = 0; i + 1 < 2 * swap_pairs && i + 1 < pins.size(); i += 2) {
    const SwapPin& a = pins[i];
    const SwapPin& b = pins[i + 1];
    if (a.true_net == b.true_net) continue;
    // A pin must not end up driven by its own gate's output.
    const Gate& ga = nl.gate(a.pin.gate);
    const Gate& gb = nl.gate(b.pin.gate);
    if (ga.out == b.true_net || gb.out == a.true_net) continue;
    // Avoid introducing combinational cycles: only swap when neither
    // proposed decoy edge closes a path back to its driver. Conservatively
    // skip pins whose gates feed each other's nets directly.
    nl.ReplaceFanin(a.pin.gate, a.pin.index, b.true_net);
    nl.ReplaceFanin(b.pin.gate, b.pin.index, a.true_net);
    // A swap that creates a cycle is rolled back.
    bool has_cycle = false;
    {
      // Cheap cycle test: Kahn over the mutated netlist.
      std::vector<uint32_t> pending(nl.NumGates(), 0);
      std::vector<GateId> ready;
      size_t live = 0;
      for (GateId g = 0; g < nl.NumGates(); ++g) {
        if (nl.gate(g).op == GateOp::kDeleted) continue;
        ++live;
        pending[g] = static_cast<uint32_t>(nl.gate(g).fanins.size());
        if (pending[g] == 0) ready.push_back(g);
      }
      size_t seen = 0;
      for (size_t head = 0; head < ready.size(); ++head) {
        const GateId g = ready[head];
        ++seen;
        if (nl.gate(g).out == kNullId) continue;
        for (const Pin& p : nl.net(nl.gate(g).out).sinks) {
          if (--pending[p.gate] == 0) ready.push_back(p.gate);
        }
      }
      has_cycle = seen != live;
    }
    if (has_cycle) {
      nl.ReplaceFanin(a.pin.gate, a.pin.index, a.true_net);
      nl.ReplaceFanin(b.pin.gate, b.pin.index, b.true_net);
      continue;
    }
    swapped.push_back(a);
    swapped.push_back(b);
    lifted_nets.push_back(a.true_net);
    lifted_nets.push_back(b.true_net);
  }

  // Lift the swapped nets plus extra cover nets up to the lift budget.
  std::vector<NetId> eligible;
  for (NetId n = 0; n < nl.NumNets(); ++n) {
    if (!layout.routes[n].routed) continue;
    const GateId d = nl.DriverOf(n);
    if (d == kNullId || nl.gate(d).op == GateOp::kInput) continue;
    if (std::find(lifted_nets.begin(), lifted_nets.end(), n) ==
        lifted_nets.end()) {
      eligible.push_back(n);
    }
  }
  rng.Shuffle(eligible);
  const size_t budget = static_cast<size_t>(
      static_cast<double>(eligible.size() + lifted_nets.size()) *
      options.lift_fraction);
  for (size_t i = 0; i < eligible.size() && lifted_nets.size() < budget;
       ++i) {
    lifted_nets.push_back(eligible[i]);
  }

  phys::LiftNetsAbove(layout, lifted_nets, opts.split_layer + 1,
                      opts.seed ^ 0x5151abcd);
  result.feol = split::SplitLayout(layout, opts.split_layer);

  // Ground truth: swapped pins really belong to their pre-swap nets (the
  // BEOL restores them); fix the annotations the split derived from the
  // decoy netlist.
  for (split::SinkStub& stub : result.feol.sink_stubs) {
    for (const SwapPin& sp : swapped) {
      if (stub.sink == sp.pin) {
        stub.true_net = sp.true_net;
        break;
      }
    }
  }
  return result;
}

}  // namespace splitlock::defense
