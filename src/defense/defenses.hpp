// Simplified re-implementations of the prior-art split-manufacturing
// defenses the paper compares against in Table III. All three are
// *heuristic* layout-level protections (no key), which is precisely the
// contrast the paper draws with its formally keyed scheme.
//
//  [22] Wang et al., ASPDAC'17 — routing perturbation: detour/displace the
//       BEOL ascent points of broken connections so physical proximity
//       misleads the attacker. No nets are hidden beyond what the split
//       already hides, so structural recovery stays high.
//  [12] Patnaik et al., ASPDAC'18 — concerted wire lifting: deliberately
//       re-route a chosen set of regular nets entirely above the split
//       layer (stacked vias on the pins), removing their FEOL hints.
//  [13] Patnaik et al., DAC'18 — restore through BEOL: lift nets *and*
//       swap sink pins pairwise in the FEOL netlist, restoring the true
//       connectivity only in the BEOL. A proximity attacker who recovers
//       the apparent (decoy) wiring recovers the wrong function.
#pragma once

#include <memory>

#include "core/flow.hpp"
#include "netlist/netlist.hpp"
#include "split/split.hpp"

namespace splitlock::defense {

struct DefenseResult {
  core::PhysicalBundle physical;
  split::FeolView feol;
  // Functional ground truth for HD/OER scoring. For [13] this differs from
  // feol.netlist (which carries the decoy wiring); null means feol.netlist
  // is already the truth.
  std::unique_ptr<Netlist> reference;

  const Netlist& Reference() const {
    return reference != nullptr ? *reference : *feol.netlist;
  }
};

struct RoutingPerturbationOptions {
  double perturb_fraction = 0.30;   // share of broken connections detoured
  double max_displacement_um = 15.0;
};

// [22]: perturbs ascent hints of connections crossing the split layer.
DefenseResult ApplyRoutingPerturbation(
    const Netlist& original, const core::FlowOptions& flow,
    const RoutingPerturbationOptions& options = {});

struct WireLiftingOptions {
  double lift_fraction = 0.10;  // share of eligible nets lifted
};

// [12]: lifts a selected set of regular nets fully above the split layer.
DefenseResult ApplyConcertedWireLifting(const Netlist& original,
                                        const core::FlowOptions& flow,
                                        const WireLiftingOptions& options = {});

struct BeolRestoreOptions {
  double lift_fraction = 0.10;
  double swap_fraction = 0.6;  // share of lifted nets paired for pin swaps
};

// [13]: wire lifting plus pairwise sink-pin swaps restored in the BEOL.
DefenseResult ApplyBeolRestore(const Netlist& original,
                               const core::FlowOptions& flow,
                               const BeolRestoreOptions& options = {});

}  // namespace splitlock::defense
