#include <algorithm>

#include "defense/defenses.hpp"
#include "util/rng.hpp"

namespace splitlock::defense {

DefenseResult ApplyRoutingPerturbation(
    const Netlist& original, const core::FlowOptions& flow,
    const RoutingPerturbationOptions& options) {
  DefenseResult result;
  core::FlowOptions opts = flow;
  opts.lift_key_nets = false;  // heuristic defense: no key machinery
  result.physical = core::BuildPhysical(original, opts);
  phys::Layout& layout = *result.physical.layout;
  Rng rng(opts.seed ^ 0xa5117e22);

  const int split = opts.split_layer;
  for (NetId n = 0; n < layout.routes.size(); ++n) {
    for (phys::ConnRoute& conn : layout.routes[n].conns) {
      bool crosses = false;
      for (int l : conn.hop_layers) {
        if (l > split) crosses = true;
      }
      if (!crosses || conn.hop_points.empty()) continue;
      if (!rng.NextBernoulli(options.perturb_fraction)) continue;

      // Displace the driver-side ascent point: the FEOL gets a decoy jog on
      // a low metal before the wire disappears upward, so the stub the
      // attacker measures no longer sits near the true continuation. The
      // displacement is perpendicular to the hidden wire's run direction,
      // which breaks the track alignment proximity attacks key on.
      size_t k = 0;
      while (k < conn.hop_layers.size() && conn.hop_layers[k] <= split) ++k;
      size_t j = conn.hop_layers.size();
      while (j > 0 && conn.hop_layers[j - 1] <= split) --j;
      const Point old_ascent = conn.hop_points[k];
      const Point descent = conn.hop_points[j];
      auto displace = [&](double v) {
        const double mag =
            3.0 + rng.NextDouble() * (options.max_displacement_um - 3.0);
        return v + (rng.NextBool() ? mag : -mag);
      };
      const bool hidden_runs_horizontal =
          std::abs(descent.x - old_ascent.x) >=
          std::abs(descent.y - old_ascent.y);
      Point moved = hidden_runs_horizontal
                        ? Point{old_ascent.x, displace(old_ascent.y)}
                        : Point{displace(old_ascent.x), old_ascent.y};
      // Clamp into the die.
      moved.x = std::clamp(moved.x, layout.die.lo.x, layout.die.hi.x);
      moved.y = std::clamp(moved.y, layout.die.lo.y, layout.die.hi.y);
      conn.hop_points[k] = moved;
      // Parasitic bookkeeping for the decoy jog (routed on M2/M3).
      const int jog_layer = old_ascent.x == moved.x ? 2 : 3;
      conn.segments.push_back(phys::Segment{jog_layer, old_ascent, moved});
      conn.vias.push_back(phys::ViaStack{moved, jog_layer,
                                         std::max(jog_layer, split + 1)});
    }
  }

  result.feol = split::SplitLayout(layout, split);
  return result;
}

}  // namespace splitlock::defense
