#include <vector>

#include "defense/defenses.hpp"
#include "phys/router.hpp"
#include "util/rng.hpp"

namespace splitlock::defense {
namespace {

// Nets eligible for lifting: routed logic-to-logic nets with a placed
// driver (I/O pad nets are left alone, as in the prior art).
std::vector<NetId> EligibleNets(const Netlist& nl,
                                const phys::Layout& layout) {
  std::vector<NetId> nets;
  for (NetId n = 0; n < nl.NumNets(); ++n) {
    if (!layout.routes[n].routed) continue;
    const GateId d = nl.DriverOf(n);
    if (d == kNullId || nl.net(n).sinks.empty()) continue;
    if (nl.gate(d).op == GateOp::kInput) continue;
    nets.push_back(n);
  }
  return nets;
}

}  // namespace

DefenseResult ApplyConcertedWireLifting(const Netlist& original,
                                        const core::FlowOptions& flow,
                                        const WireLiftingOptions& options) {
  DefenseResult result;
  core::FlowOptions opts = flow;
  opts.lift_key_nets = false;
  result.physical = core::BuildPhysical(original, opts);
  phys::Layout& layout = *result.physical.layout;
  const Netlist& nl = *result.physical.netlist;
  Rng rng(opts.seed ^ 0xc0fefe11);

  std::vector<NetId> eligible = EligibleNets(nl, layout);
  rng.Shuffle(eligible);
  const size_t lift_count = static_cast<size_t>(
      static_cast<double>(eligible.size()) * options.lift_fraction);
  eligible.resize(lift_count);

  phys::LiftNetsAbove(layout, eligible, opts.split_layer + 1,
                      opts.seed ^ 0x77aa88bb);
  result.feol = split::SplitLayout(layout, opts.split_layer);
  return result;
}

}  // namespace splitlock::defense
