#include "dist/shard.hpp"

#include <algorithm>
#include <stdexcept>

#include "attack/engine.hpp"  // JsonEscape
#include "util/json.hpp"

namespace splitlock::dist {

namespace {

std::string U64(uint64_t v) { return std::to_string(v); }

uint64_t RequireHexHash(const util::JsonValue& v, const char* key) {
  const std::optional<uint64_t> parsed =
      util::ParseHexU64(v.GetString(key, ""));
  if (!parsed) {
    throw std::runtime_error(std::string("shard table: bad or missing '") +
                             key + "'");
  }
  return *parsed;
}

}  // namespace

std::vector<uint64_t> ShardPlan::Select(uint64_t job_count) const {
  std::vector<uint64_t> owned;
  if (!Valid()) return owned;
  for (uint64_t i = shard_index; i < job_count; i += num_shards) {
    owned.push_back(i);
  }
  return owned;
}

std::string ShardTable::ToJson() const {
  std::string out = "{\"schema_version\":" +
                    U64(store::kResultSchemaVersion) +
                    ",\"suite\":" + attack::JsonEscape(suite) +
                    ",\"scale\":" + attack::JsonEscape(scale) +
                    ",\"flow_hash\":" + attack::JsonEscape(util::HexU64(flow_hash)) +
                    ",\"attack_hash\":" +
                    attack::JsonEscape(util::HexU64(attack_hash)) +
                    ",\"job_count\":" + U64(job_count) +
                    ",\"num_shards\":" + U64(num_shards) +
                    ",\"shard_index\":" + U64(shard_index) + ",\"jobs\":[";
  bool first = true;
  for (const ShardEntry& entry : entries) {
    if (!first) out += ',';
    first = false;
    out += "{\"job_index\":" + U64(entry.job_index) + ",\"record\":" +
           entry.record.ToJson(/*include_timings=*/false) + "}";
  }
  out += "]}\n";
  return out;
}

ShardTable ShardTable::Parse(std::string_view json) {
  const std::optional<util::JsonValue> doc = util::ParseJson(json);
  if (!doc || !doc->IsObject()) {
    throw std::runtime_error("shard table: not a JSON object");
  }
  const int version = static_cast<int>(doc->GetNumber("schema_version", -1.0));
  if (version != store::kResultSchemaVersion) {
    throw std::runtime_error(
        "shard table: schema_version " + std::to_string(version) +
        " (this binary writes " + std::to_string(store::kResultSchemaVersion) +
        ")");
  }
  ShardTable table;
  table.suite = doc->GetString("suite", "");
  table.scale = doc->GetString("scale", "");
  if (table.suite.empty() || table.scale.empty()) {
    throw std::runtime_error("shard table: missing suite/scale");
  }
  table.flow_hash = RequireHexHash(*doc, "flow_hash");
  table.attack_hash = RequireHexHash(*doc, "attack_hash");
  table.job_count = static_cast<uint64_t>(doc->GetNumber("job_count", 0.0));
  table.num_shards = static_cast<uint64_t>(doc->GetNumber("num_shards", 0.0));
  table.shard_index =
      static_cast<uint64_t>(doc->GetNumber("shard_index", 0.0));

  const util::JsonValue* jobs = doc->Get("jobs");
  if (!jobs || !jobs->IsArray()) {
    throw std::runtime_error("shard table: missing 'jobs' array");
  }
  for (const util::JsonValue& jv : jobs->array) {
    if (!jv.IsObject() || !jv.Get("job_index") ||
        !jv.Get("job_index")->IsNumber()) {
      throw std::runtime_error("shard table: malformed job entry");
    }
    ShardEntry entry;
    entry.job_index = static_cast<uint64_t>(jv.GetNumber("job_index", 0.0));
    const util::JsonValue* rec = jv.Get("record");
    std::optional<store::CampaignRecord> record =
        rec ? store::CampaignRecord::FromJson(*rec) : std::nullopt;
    if (!record) {
      throw std::runtime_error("shard table: malformed record for job " +
                               std::to_string(entry.job_index));
    }
    entry.record = std::move(*record);
    table.entries.push_back(std::move(entry));
  }
  return table;
}

ShardTable MergeShards(const std::vector<ShardTable>& shards) {
  if (shards.empty()) {
    throw std::runtime_error("merge: no shard tables given");
  }
  ShardTable merged;
  merged.suite = shards[0].suite;
  merged.scale = shards[0].scale;
  merged.flow_hash = shards[0].flow_hash;
  merged.attack_hash = shards[0].attack_hash;
  merged.job_count = shards[0].job_count;
  merged.num_shards = 1;
  merged.shard_index = 0;

  for (const ShardTable& shard : shards) {
    if (shard.suite != merged.suite || shard.scale != merged.scale ||
        shard.flow_hash != merged.flow_hash ||
        shard.attack_hash != merged.attack_hash ||
        shard.job_count != merged.job_count) {
      throw std::runtime_error(
          "merge: shard tables describe different campaigns (suite/scale/"
          "flow_hash/attack_hash/job_count mismatch)");
    }
    for (const ShardEntry& entry : shard.entries) {
      if (entry.job_index >= merged.job_count) {
        throw std::runtime_error("merge: job index " +
                                 std::to_string(entry.job_index) +
                                 " out of range for job_count " +
                                 std::to_string(merged.job_count));
      }
      merged.entries.push_back(entry);
    }
  }

  std::sort(merged.entries.begin(), merged.entries.end(),
            [](const ShardEntry& a, const ShardEntry& b) {
              return a.job_index < b.job_index;
            });
  for (uint64_t i = 0; i < merged.entries.size(); ++i) {
    if (merged.entries[i].job_index != i) {
      const bool duplicate =
          i > 0 && merged.entries[i].job_index == merged.entries[i - 1].job_index;
      throw std::runtime_error(
          std::string("merge: ") + (duplicate ? "duplicate" : "missing") +
          " job index " +
          std::to_string(duplicate ? merged.entries[i].job_index : i));
    }
  }
  if (merged.entries.size() != merged.job_count) {
    throw std::runtime_error(
        "merge: incomplete campaign: " + std::to_string(merged.entries.size()) +
        " of " + std::to_string(merged.job_count) + " jobs present");
  }
  return merged;
}

}  // namespace splitlock::dist
