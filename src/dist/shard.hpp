// Multi-process campaign sharding.
//
// `CampaignRunner` saturates one machine; the paper-scale sweeps
// (REPRO_SCALE=1.0 ITC'99 x split layers x attack portfolios) want a
// cluster. The unit of distribution is the *campaign job*, and the whole
// design leans on the determinism contract: a job's record is a pure
// function of its key, so WHERE it ran is irrelevant and a merged
// multi-process run is bit-identical to a single-process run.
//
//   ShardPlan   — deterministic round-robin partition of the job-index
//                 space. Every process derives the same plan from
//                 (num_shards, shard_index) alone; no coordinator.
//   ShardTable  — one shard's outcome table: the campaign identity
//                 (suite, scale, flow/attack hashes, total job count) plus
//                 (job_index, CampaignRecord) entries. Serializes to
//                 canonical JSON (timings excluded) so two shards that
//                 computed the same job agree byte-for-byte.
//   MergeShards — validates that shard tables describe the same campaign,
//                 that every job index 0..job_count-1 appears exactly once,
//                 and joins them into the canonical job-ordered table —
//                 the same table a `--shards 1` run emits.
//
// Driving it from the shell:
//   splitlock_cli suite itc --shards 4 --shard-index I --store DIR --out I.json
//   splitlock_cli merge 0.json 1.json 2.json 3.json
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "store/result_store.hpp"

namespace splitlock::dist {

// Round-robin ownership of job indices. Round-robin (rather than
// contiguous blocks) balances suites whose cost grows along the job list
// (the ITC'99 suite is roughly size-ordered).
struct ShardPlan {
  uint64_t num_shards = 1;
  uint64_t shard_index = 0;

  bool Valid() const { return num_shards >= 1 && shard_index < num_shards; }
  bool Owns(uint64_t job_index) const {
    return job_index % num_shards == shard_index;
  }
  // The owned subset of 0..job_count-1, ascending.
  std::vector<uint64_t> Select(uint64_t job_count) const;
};

struct ShardEntry {
  uint64_t job_index = 0;
  store::CampaignRecord record;
};

struct ShardTable {
  std::string suite;  // campaign id, e.g. "itc"
  std::string scale;  // store::CanonicalDouble of the scale in effect
  // Campaign identity for merge validation only. flow_hash is the shared
  // FlowOptionsHash; attack_hash is store::PortfolioHash over the whole
  // attack portfolio. Neither addresses store files — records live under
  // per-attack keys (store::AttackKeyHash) since the two-level split —
  // but two shards may only merge when they agree on both.
  uint64_t flow_hash = 0;
  uint64_t attack_hash = 0;
  uint64_t job_count = 0;  // total jobs in the campaign, across all shards
  uint64_t num_shards = 1;
  uint64_t shard_index = 0;
  std::vector<ShardEntry> entries;  // ascending job_index

  // Canonical JSON (single line + trailing newline): deterministic fields
  // only, entries in job-index order. Parse(ToJson()) round-trips.
  std::string ToJson() const;
  // Throws std::runtime_error with a reason on malformed/mismatched input.
  static ShardTable Parse(std::string_view json);
};

// Joins shard tables into the canonical single-process table
// (num_shards=1, shard_index=0, all entries in job order). Throws
// std::runtime_error when the tables disagree on the campaign identity or
// schema, or when job indices are missing/duplicated.
ShardTable MergeShards(const std::vector<ShardTable>& shards);

}  // namespace splitlock::dist
