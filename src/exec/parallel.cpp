#include "exec/parallel.hpp"

#include <algorithm>

namespace splitlock::exec {

void TaskGroup::Run(std::function<void()> fn) {
  pending_.fetch_add(1, std::memory_order_acq_rel);
  pool_.Submit([this, fn = std::move(fn)] {
    try {
      fn();
    } catch (...) {
      std::lock_guard<std::mutex> lock(mutex_);
      if (!first_error_) first_error_ = std::current_exception();
    }
    if (pending_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      std::lock_guard<std::mutex> lock(mutex_);
      done_cv_.notify_all();
    }
  });
}

void TaskGroup::Wait() {
  while (pending_.load(std::memory_order_acquire) != 0) {
    // Help drain the pool; only sleep when there is nothing to run (our
    // tasks are in flight on other threads).
    if (pool_.TryRunOneTask()) continue;
    std::unique_lock<std::mutex> lock(mutex_);
    if (pending_.load(std::memory_order_acquire) == 0) break;
    // lint:allow(wall-clock) bounded sleep between drain attempts, not a measurement
    done_cv_.wait_for(lock, std::chrono::milliseconds(1));
  }
  std::exception_ptr err;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    std::swap(err, first_error_);
  }
  if (err) std::rethrow_exception(err);
}

void ParallelForChunked(
    size_t n, size_t grain,
    const std::function<void(size_t chunk, size_t lo, size_t hi)>& body) {
  if (grain == 0) grain = 1;
  const size_t chunks = NumChunks(n, grain);
  if (chunks == 0) return;
  if (chunks == 1) {
    body(0, 0, n);
    return;
  }
  TaskGroup group;
  for (size_t c = 0; c < chunks; ++c) {
    const size_t lo = c * grain;
    const size_t hi = std::min(n, lo + grain);
    group.Run([&body, c, lo, hi] { body(c, lo, hi); });
  }
  group.Wait();
}

void ParallelFor(size_t n, size_t grain,
                 const std::function<void(size_t lo, size_t hi)>& body) {
  ParallelForChunked(n, grain,
                     [&body](size_t, size_t lo, size_t hi) { body(lo, hi); });
}

}  // namespace splitlock::exec
