// Deterministic data-parallel primitives over the default thread pool.
//
// Determinism contract (see docs/ARCHITECTURE.md):
//   * The chunking of [0, n) into grains depends only on (n, grain) — never
//     on the thread count or on runtime timing.
//   * Chunk bodies must write only to chunk-indexed (or index-disjoint)
//     state; under that discipline every result is bit-identical at any
//     thread count, including floating-point accumulations, because
//     ParallelReduce combines partials strictly in chunk order on the
//     calling thread.
//   * Randomized chunk bodies must draw from counter-based streams keyed by
//     data index (stream_rng.hpp), never from a shared sequential Rng.
#pragma once

#include <cstddef>
#include <functional>
#include <memory>
#include <vector>

#include "exec/thread_pool.hpp"

namespace splitlock::exec {

// Waits for a group of submitted tasks, helping to drain the pool instead of
// blocking, so parallel regions compose (and work even when the caller IS a
// pool worker).
class TaskGroup {
 public:
  explicit TaskGroup(ThreadPool& pool = ThreadPool::Default()) : pool_(pool) {}

  // Schedules fn on the pool.
  void Run(std::function<void()> fn);

  // Returns once every scheduled task has finished. Rethrows the first
  // exception (by scheduling order is NOT guaranteed — first to be caught).
  void Wait();

 private:
  ThreadPool& pool_;
  std::atomic<size_t> pending_{0};
  std::mutex mutex_;
  std::condition_variable done_cv_;
  std::exception_ptr first_error_;  // guarded by mutex_
};

// Number of chunks ParallelFor/ParallelReduce will use for a range of `n`
// elements at grain `grain` (>= 1). Pure function of (n, grain).
inline size_t NumChunks(size_t n, size_t grain) {
  if (grain == 0) grain = 1;
  return n == 0 ? 0 : (n + grain - 1) / grain;
}

// Calls body(lo, hi) over disjoint sub-ranges covering [0, n), at most
// `grain` elements each, concurrently on the default pool. body must be
// thread-safe with respect to distinct ranges.
void ParallelFor(size_t n, size_t grain,
                 const std::function<void(size_t lo, size_t hi)>& body);

// Like ParallelFor but with an explicit chunk index, for chunk-indexed
// output slots: body(chunk, lo, hi) with chunk in [0, NumChunks(n, grain)).
void ParallelForChunked(
    size_t n, size_t grain,
    const std::function<void(size_t chunk, size_t lo, size_t hi)>& body);

// Maps chunks of [0, n) through `map` concurrently and folds the partial
// results with `combine` IN CHUNK ORDER on the calling thread, seeded with
// `identity`: result = combine(...combine(identity, r0), r1...). Chunk
// order makes the fold bit-deterministic even for non-associative types
// (doubles).
template <typename T>
T ParallelReduce(size_t n, size_t grain, T identity,
                 const std::function<T(size_t lo, size_t hi)>& map,
                 const std::function<T(T, T)>& combine) {
  const size_t chunks = NumChunks(n, grain);
  // Plain array, NOT std::vector<T>: vector<bool> packs results into
  // shared words, which would turn concurrent per-chunk writes into racy
  // read-modify-writes.
  std::unique_ptr<T[]> partial(new T[chunks]());
  ParallelForChunked(n, grain, [&](size_t chunk, size_t lo, size_t hi) {
    partial[chunk] = map(lo, hi);
  });
  T result = std::move(identity);
  for (size_t c = 0; c < chunks; ++c) {
    result = combine(std::move(result), std::move(partial[c]));
  }
  return result;
}

}  // namespace splitlock::exec
