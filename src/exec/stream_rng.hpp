// Counter-based, splittable random streams for sharded Monte-Carlo work.
//
// A StreamRng is a pure function of (seed, domain, stream): any shard that
// knows its data index can reconstruct exactly the random draws belonging to
// that index, so results are bit-identical regardless of how the index space
// is chunked across threads. This is the RNG discipline every parallel sweep
// in the library follows; the sequential util/rng.hpp Rng remains the tool
// for inherently serial algorithms (placement annealing, greedy fallbacks).
//
// Streams within one seed are keyed twice: a `domain` tag separates the
// independent uses inside one algorithm (e.g. input stimulus vs key
// sampling in the oracle-less probe), and `stream` is the data index (word
// index, sample index, shard id). Mixing is SplitMix64 (Steele et al.,
// OOPSLA'14) over the golden-ratio Weyl sequence — the same finalizer the
// JDK and Romu-family generators rely on for stream splitting.
#pragma once

#include <cstdint>

namespace splitlock::exec {

// SplitMix64 finalizer: bijective avalanche mix of a 64-bit value.
inline uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

// Stream domains used by the library's parallel sweeps. Distinct domains
// under the same (seed, stream) yield independent draws.
enum class StreamDomain : uint64_t {
  kStimulus = 0x53,    // per-word primary-input stimulus
  kKeySample = 0x4b,   // per-sample random key bits
  kShard = 0x5a,       // generic per-shard streams
  kPlacerMove = 0x50,  // per-move annealing draws (gate, slot, acceptance)
  kPlacerTie = 0x54,   // per-TIE-cell slot candidates (placement prefix)
  kPlacerInit = 0x49,  // per-slot shuffle keys for the initial placement
  kPlacerTemp = 0x74,  // per-sample draws for temperature estimation
  kRouteNet = 0x52,    // per-net layer-pair / corner draws in RouteDesign
  kLiftNet = 0x4c,     // per-net corner draws when lifting to the BEOL
  kEcoDetour = 0x45,   // per-net detour draws in the ECO re-route
};

class StreamRng {
 public:
  StreamRng(uint64_t seed, StreamDomain domain, uint64_t stream)
      : state_(Mix64(Mix64(seed ^ (static_cast<uint64_t>(domain) << 56)) ^
                     Mix64(stream))) {}

  // 64 independent uniform bits; advances the stream.
  uint64_t NextWord() {
    state_ += 0x9e3779b97f4a7c15ULL;
    return Mix64(state_);
  }

  bool NextBool() { return (NextWord() & 1u) != 0; }

  // Uniform integer in [0, bound), bound > 0. Lemire-style rejection-free
  // multiply-shift is fine here: draws feed Monte-Carlo estimates, not
  // cryptography.
  uint64_t NextUint(uint64_t bound) {
    return static_cast<uint64_t>(
        (static_cast<unsigned __int128>(NextWord()) * bound) >> 64);
  }

  // Uniform double in [0, 1): the top 53 bits of one word scaled by 2^-53
  // (the same portable fill as util/rng.hpp).
  double NextDouble() { return (NextWord() >> 11) * 0x1.0p-53; }

  // Bernoulli draw with probability p of true.
  bool NextBernoulli(double p) { return NextDouble() < p; }

 private:
  uint64_t state_;
};

}  // namespace splitlock::exec
