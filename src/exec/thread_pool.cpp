#include "exec/thread_pool.hpp"

#include <atomic>
#include <cstdlib>
#include <memory>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/stopwatch.hpp"

namespace splitlock::exec {

namespace {

// Pool observability. tasks_run is count-class: every submitted task runs
// exactly once and task counts come from exec::NumChunks / explicit
// Submit sites, which are pure of the worker count. Steals and the
// queue-depth high-water are facts about the interleaving (sched-class);
// busy/idle are wall clocks. Per-worker attribution deliberately comes
// from trace spans (track per worker), not per-worker metric names —
// SetDefaultThreadCount would re-register those on every pool rebuild.
struct PoolMetrics {
  obs::Counter* tasks_run;
  obs::Counter* steals;
  obs::Gauge* queue_depth_hwm;
  obs::TimeMetric* busy_s;
  obs::TimeMetric* idle_s;
};

PoolMetrics& Metrics() {
  static PoolMetrics m = [] {
    obs::Registry& r = obs::Registry::Instance();
    return PoolMetrics{
        r.RegisterCounter("exec.pool.tasks_run"),
        r.RegisterCounter("exec.pool.steals", obs::MetricClass::kSched),
        r.RegisterGauge("exec.pool.queue_depth_hwm"),
        r.RegisterTime("exec.pool.busy_s"),
        r.RegisterTime("exec.pool.idle_s"),
    };
  }();
  return m;
}

void RunInstrumented(std::function<void()>& task) {
  PoolMetrics& m = Metrics();
  const Stopwatch timer;
  {
    obs::Span span("exec.task");
    task();
  }
  // tasks_run is counted at Submit time, not here: TaskGroup's pending
  // counter decrements inside the task body, so a waiter can observe the
  // group as done — and snapshot the registry — microseconds before this
  // epilogue runs. Submit-side counting is synchronous with the caller.
  m.busy_s->AddSeconds(timer.Seconds());
}

}  // namespace

ThreadPool::ThreadPool(size_t threads) {
  if (threads == 0) threads = DefaultThreadCount();
  if (threads == 0) threads = 1;
  queues_.reserve(threads);
  for (size_t i = 0; i < threads; ++i) {
    queues_.push_back(std::make_unique<WorkerQueue>());
  }
  workers_.reserve(threads);
  for (size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(sleep_mutex_);
    stop_.store(true, std::memory_order_relaxed);
  }
  sleep_cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  // Every submitted task runs exactly once, so counting here keeps
  // tasks_run count-class: submission sites (exec::NumChunks fan-outs,
  // explicit Submits) are pure of the worker count, and the increment is
  // synchronous with the submitting thread — a snapshot taken after a
  // parallel region returns always includes the region's full task count.
  Metrics().tasks_run->Add(1);
  const size_t q =
      next_queue_.fetch_add(1, std::memory_order_relaxed) % queues_.size();
  size_t depth = 0;
  {
    std::lock_guard<std::mutex> lock(queues_[q]->mutex);
    queues_[q]->tasks.push_back(std::move(task));
    depth = queues_[q]->tasks.size();
  }
  Metrics().queue_depth_hwm->Set(depth);
  sleep_cv_.notify_one();
}

bool ThreadPool::PopOrSteal(size_t worker_index, std::function<void()>& task) {
  // Own deque first, newest task (LIFO).
  {
    WorkerQueue& own = *queues_[worker_index];
    std::lock_guard<std::mutex> lock(own.mutex);
    if (!own.tasks.empty()) {
      task = std::move(own.tasks.back());
      own.tasks.pop_back();
      return true;
    }
  }
  // Steal the oldest task (FIFO) from the first non-empty sibling.
  for (size_t k = 1; k < queues_.size(); ++k) {
    WorkerQueue& victim = *queues_[(worker_index + k) % queues_.size()];
    std::lock_guard<std::mutex> lock(victim.mutex);
    if (!victim.tasks.empty()) {
      task = std::move(victim.tasks.front());
      victim.tasks.pop_front();
      Metrics().steals->Add(1);
      return true;
    }
  }
  return false;
}

bool ThreadPool::TryRunOneTask() {
  // External threads have no own deque; steal round-robin from slot 0.
  std::function<void()> task;
  if (!PopOrSteal(0, task)) return false;
  RunInstrumented(task);
  return true;
}

void ThreadPool::WorkerLoop(size_t worker_index) {
  obs::Tracer::Instance().RegisterCurrentThread(
      "exec.worker." + std::to_string(worker_index));
  std::function<void()> task;
  for (;;) {
    if (PopOrSteal(worker_index, task)) {
      RunInstrumented(task);
      task = nullptr;
      continue;
    }
    std::unique_lock<std::mutex> lock(sleep_mutex_);
    if (stop_.load(std::memory_order_relaxed)) return;
    // Re-check under the sleep lock: a Submit between our scan and here
    // would have notified before we started waiting.
    bool any = false;
    for (const auto& q : queues_) {
      std::lock_guard<std::mutex> qlock(q->mutex);
      if (!q->tasks.empty()) {
        any = true;
        break;
      }
    }
    if (any) continue;
    const Stopwatch idle;
    // lint:allow(wall-clock) bounded sleep between wakeups, not a measurement
    sleep_cv_.wait_for(lock, std::chrono::milliseconds(50));
    Metrics().idle_s->AddSeconds(idle.Seconds());
    if (stop_.load(std::memory_order_relaxed)) return;
  }
}

namespace {

std::mutex g_default_pool_mutex;
std::unique_ptr<ThreadPool> g_default_pool;  // guarded by g_default_pool_mutex

}  // namespace

ThreadPool& ThreadPool::Default() {
  std::lock_guard<std::mutex> lock(g_default_pool_mutex);
  if (!g_default_pool) {
    g_default_pool = std::make_unique<ThreadPool>(DefaultThreadCount());
  }
  return *g_default_pool;
}

size_t ThreadPool::DefaultThreadCount() {
  if (const char* env = std::getenv("SPLITLOCK_THREADS")) {
    const long v = std::strtol(env, nullptr, 10);
    if (v > 0) return static_cast<size_t>(v);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

void ThreadPool::SetDefaultThreadCount(size_t threads) {
  std::unique_ptr<ThreadPool> fresh =
      std::make_unique<ThreadPool>(threads == 0 ? DefaultThreadCount()
                                                : threads);
  std::lock_guard<std::mutex> lock(g_default_pool_mutex);
  g_default_pool = std::move(fresh);
}

}  // namespace splitlock::exec
