// Work-stealing thread pool for the parallel execution layer.
//
// Each worker owns a deque of tasks: it pops from the back of its own deque
// (LIFO, cache-friendly) and steals from the front of a sibling's deque when
// empty (FIFO, oldest first). External threads submit round-robin. Blocking
// waiters help drain the pool (TryRunOneTask), so nested parallel regions
// cannot deadlock even on a single worker.
//
// The pool carries NO determinism obligations itself — determinism is the
// contract of the exec::ParallelFor / exec::ParallelReduce wrappers (fixed
// chunking, index-ordered reduction) plus counter-based RNG streams (see
// stream_rng.hpp). Which thread runs which chunk is intentionally arbitrary.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace splitlock::exec {

class ThreadPool {
 public:
  // `threads` worker threads; 0 picks DefaultThreadCount().
  explicit ThreadPool(size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t ThreadCount() const { return workers_.size(); }

  // Enqueues one task. Safe from any thread, including pool workers.
  void Submit(std::function<void()> task);

  // Runs one queued task on the calling thread if any is available.
  // Used by waiters to help instead of blocking; returns false when every
  // deque is empty.
  bool TryRunOneTask();

  // The process-wide pool used by ParallelFor/ParallelReduce and every
  // parallel algorithm in the library. Created on first use.
  static ThreadPool& Default();

  // Worker count for Default(): env SPLITLOCK_THREADS when set, otherwise
  // std::thread::hardware_concurrency().
  static size_t DefaultThreadCount();

  // Replaces the default pool with one of `threads` workers (0 restores
  // DefaultThreadCount()). Intended for tests and benchmarks exercising the
  // determinism contract at several widths. Must not be called while a
  // parallel region is running.
  static void SetDefaultThreadCount(size_t threads);

 private:
  struct WorkerQueue {
    std::mutex mutex;
    std::deque<std::function<void()>> tasks;
  };

  void WorkerLoop(size_t worker_index);
  bool PopOrSteal(size_t worker_index, std::function<void()>& task);

  std::vector<std::unique_ptr<WorkerQueue>> queues_;
  std::vector<std::thread> workers_;
  std::mutex sleep_mutex_;
  std::condition_variable sleep_cv_;
  std::atomic<uint64_t> next_queue_{0};
  std::atomic<bool> stop_{false};
};

}  // namespace splitlock::exec
