#include "lec/lec.hpp"

#include <array>
#include <cassert>
#include <unordered_map>

#include "sat/solver.hpp"
#include "sat/tseitin.hpp"
#include "sim/simulator.hpp"
#include "util/rng.hpp"

namespace splitlock {
namespace {

// Number of 64-pattern words used for candidate-equivalence signatures.
constexpr size_t kSigWords = 8;
using Signature = std::array<uint64_t, kSigWords>;

struct SignatureHash {
  size_t operator()(const Signature& s) const {
    size_t h = 0x9e3779b97f4a7c15ULL;
    for (uint64_t w : s) h ^= w + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
    return h;
  }
};

Signature Complement(Signature s) {
  for (uint64_t& w : s) w = ~w;
  return s;
}

// Per-net signatures over shared random input words.
std::vector<Signature> ComputeSignatures(
    const Netlist& nl, const std::vector<std::vector<uint64_t>>& pi_words,
    std::span<const uint8_t> key) {
  Simulator sim(nl);
  if (!key.empty()) sim.SetKeyBits(key);
  std::vector<Signature> sigs(nl.NumNets());
  for (size_t w = 0; w < kSigWords; ++w) {
    sim.SetInputWords(pi_words[w]);
    sim.Run();
    for (NetId n = 0; n < nl.NumNets(); ++n) sigs[n][w] = sim.NetWord(n);
  }
  return sigs;
}

// Proves lit_a == lit_b under the current clause database. Returns true on
// success (adds the equality clauses to help later proofs), false when SAT
// found a difference or the conflict budget ran out (`*budget_blown`).
bool ProveEqual(sat::Solver& solver, sat::Lit a, sat::Lit b,
                uint64_t conflict_limit, bool* budget_blown) {
  const std::array<sat::Lit, 2> case1{a, sat::Negate(b)};
  const sat::SolveResult r1 = solver.Solve(case1, conflict_limit);
  if (r1 == sat::SolveResult::kUnknown) {
    *budget_blown = true;
    return false;
  }
  if (r1 == sat::SolveResult::kSat) return false;
  const std::array<sat::Lit, 2> case2{sat::Negate(a), b};
  const sat::SolveResult r2 = solver.Solve(case2, conflict_limit);
  if (r2 == sat::SolveResult::kUnknown) {
    *budget_blown = true;
    return false;
  }
  if (r2 == sat::SolveResult::kSat) return false;
  // Lock in the equivalence for future propagation.
  solver.AddBinary(sat::Negate(a), b);
  solver.AddBinary(a, sat::Negate(b));
  return true;
}

}  // namespace

LecResult CheckEquivalence(const Netlist& golden, const Netlist& revised,
                           std::span<const uint8_t> golden_key,
                           std::span<const uint8_t> revised_key,
                           uint64_t conflict_limit) {
  assert(golden.inputs().size() == revised.inputs().size());
  assert(golden.outputs().size() == revised.outputs().size());
  LecResult result;

  sat::Solver solver;
  sat::StructuralEncoder enc(solver);

  // Shared primary inputs.
  std::vector<sat::Lit> inputs;
  inputs.reserve(golden.inputs().size());
  for (size_t i = 0; i < golden.inputs().size(); ++i) {
    inputs.push_back(enc.FreshLit());
  }
  auto key_to_lits = [&](std::span<const uint8_t> key) {
    std::vector<sat::Lit> lits;
    lits.reserve(key.size());
    for (uint8_t b : key) lits.push_back(b ? enc.TrueLit() : enc.FalseLit());
    return lits;
  };
  const std::vector<sat::Lit> gk = key_to_lits(golden_key);
  const std::vector<sat::Lit> rk = key_to_lits(revised_key);

  // Shared random stimulus for equivalence candidates.
  Rng rng(0x1ec1ec1ecULL);
  std::vector<std::vector<uint64_t>> pi_words(kSigWords);
  for (auto& w : pi_words) {
    w.resize(golden.inputs().size());
    for (auto& v : w) v = rng.NextWord();
  }
  const std::vector<Signature> golden_sigs =
      ComputeSignatures(golden, pi_words, golden_key);
  const std::vector<Signature> revised_sigs =
      ComputeSignatures(revised, pi_words, revised_key);

  // Encode the golden netlist outright and index its literals by signature.
  const std::vector<sat::Lit> golden_outs =
      enc.EncodeNetlist(golden, inputs, gk);
  std::unordered_map<Signature, sat::Lit, SignatureHash> by_signature;
  {
    std::vector<sat::Lit> net_lit(golden.NumNets(), -1);
    // Recover per-net literals by re-encoding (cache hits make this free).
    for (size_t i = 0; i < golden.inputs().size(); ++i) {
      net_lit[golden.gate(golden.inputs()[i]).out] = inputs[i];
    }
    const std::vector<GateId> gkeys = golden.KeyInputs();
    for (size_t i = 0; i < gkeys.size(); ++i) {
      net_lit[golden.gate(gkeys[i]).out] = gk[i];
    }
    std::vector<sat::Lit> fanin_lits;
    for (GateId g : golden.TopoOrder()) {
      const Gate& gate = golden.gate(g);
      if (gate.op == GateOp::kInput || gate.op == GateOp::kKeyIn ||
          gate.op == GateOp::kOutput || gate.op == GateOp::kDeleted) {
        continue;
      }
      fanin_lits.clear();
      for (NetId n : gate.fanins) fanin_lits.push_back(net_lit[n]);
      const sat::Lit lit = enc.EncodeOp(gate.op, fanin_lits);
      net_lit[gate.out] = lit;
      by_signature.emplace(golden_sigs[gate.out], lit);
    }
  }

  // SAT sweeping over the revised netlist: encode gate by gate; whenever a
  // net's signature matches a golden literal (directly or complemented),
  // try to prove the equivalence and substitute on success. Substitution
  // makes everything downstream of a proven point re-fold structurally,
  // which is what keeps locked-vs-original miters cheap.
  const uint64_t per_proof_limit =
      conflict_limit == 0 ? 200000 : conflict_limit;
  bool budget_blown = false;
  std::vector<sat::Lit> revised_lit(revised.NumNets(), -1);
  for (size_t i = 0; i < revised.inputs().size(); ++i) {
    revised_lit[revised.gate(revised.inputs()[i]).out] = inputs[i];
  }
  const std::vector<GateId> rkeys = revised.KeyInputs();
  for (size_t i = 0; i < rkeys.size(); ++i) {
    revised_lit[revised.gate(rkeys[i]).out] = rk[i];
  }
  std::vector<sat::Lit> fanin_lits;
  for (GateId g : revised.TopoOrder()) {
    const Gate& gate = revised.gate(g);
    if (gate.op == GateOp::kInput || gate.op == GateOp::kKeyIn ||
        gate.op == GateOp::kOutput || gate.op == GateOp::kDeleted) {
      continue;
    }
    fanin_lits.clear();
    for (NetId n : gate.fanins) fanin_lits.push_back(revised_lit[n]);
    sat::Lit lit = enc.EncodeOp(gate.op, fanin_lits);

    // Candidate merge against the golden side.
    const Signature& sig = revised_sigs[gate.out];
    auto it = by_signature.find(sig);
    bool negated_candidate = false;
    if (it == by_signature.end()) {
      it = by_signature.find(Complement(sig));
      negated_candidate = true;
    }
    if (it != by_signature.end()) {
      const sat::Lit target =
          negated_candidate ? sat::Negate(it->second) : it->second;
      if (lit != target &&
          ProveEqual(solver, lit, target, per_proof_limit, &budget_blown)) {
        lit = target;  // substitute: downstream folds onto the golden side
      }
    }
    revised_lit[gate.out] = lit;
  }

  // Final miter over the output literals.
  std::vector<sat::Lit> diffs;
  std::vector<size_t> diff_output_index;
  for (size_t o = 0; o < golden.outputs().size(); ++o) {
    const sat::Lit r_out =
        revised_lit[revised.gate(revised.outputs()[o]).fanins[0]];
    const sat::Lit d = enc.EncodeOp(
        GateOp::kXor, std::array<sat::Lit, 2>{golden_outs[o], r_out});
    if (d == enc.FalseLit()) continue;
    diffs.push_back(d);
    diff_output_index.push_back(o);
  }

  if (diffs.empty()) {
    result.proven = true;
    result.equivalent = true;
    result.conflicts = solver.conflicts();
    return result;
  }
  solver.AddClause(diffs);

  const sat::SolveResult sr = solver.Solve({}, conflict_limit);
  result.conflicts = solver.conflicts();
  if (sr == sat::SolveResult::kUnknown) return result;
  result.proven = true;
  if (sr == sat::SolveResult::kUnsat) {
    result.equivalent = true;
    return result;
  }

  result.equivalent = false;
  result.counterexample.resize(inputs.size());
  for (size_t i = 0; i < inputs.size(); ++i) {
    const bool v = solver.ModelValue(sat::VarOf(inputs[i]));
    result.counterexample[i] =
        static_cast<uint8_t>(sat::IsNegated(inputs[i]) ? !v : v);
  }
  for (size_t d = 0; d < diffs.size(); ++d) {
    const bool v = solver.ModelValue(sat::VarOf(diffs[d]));
    if (sat::IsNegated(diffs[d]) ? !v : v) {
      result.differing_output = diff_output_index[d];
      break;
    }
  }
  return result;
}

}  // namespace splitlock
