// Logic equivalence checking (LEC).
//
// Stand-in for Cadence Conformal LEC in the paper's Fig. 3 flow: the locking
// stage must formally confirm that the locked netlist, with the correct key
// applied, is equivalent to the original netlist ("LEC -> Reject" loop).
// The check builds a structurally-hashed miter over shared primary inputs
// and asks the CDCL solver whether any output can differ.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "netlist/netlist.hpp"

namespace splitlock {

struct LecResult {
  bool proven = false;       // solver finished within the conflict limit
  bool equivalent = false;   // valid when proven
  // For non-equivalence: one distinguishing input pattern (inputs() order)
  // and the index of a differing output.
  std::vector<uint8_t> counterexample;
  size_t differing_output = 0;
  uint64_t conflicts = 0;
};

// Checks functional equivalence of `golden` and `revised` (same PI/PO
// counts, matched by position). Key inputs of either design are bound to the
// given constant key bits (KeyInputs() order). `conflict_limit` bounds the
// SAT effort per check (0 = unlimited).
LecResult CheckEquivalence(const Netlist& golden, const Netlist& revised,
                           std::span<const uint8_t> golden_key = {},
                           std::span<const uint8_t> revised_key = {},
                           uint64_t conflict_limit = 0);

}  // namespace splitlock
