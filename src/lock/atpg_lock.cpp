#include "lock/atpg_lock.hpp"

#include <algorithm>
#include <array>
#include <cassert>
#include <set>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>

#include "atpg/cube.hpp"
#include "atpg/cut.hpp"
#include "lec/lec.hpp"
#include "lock/epic.hpp"
#include "lock/key.hpp"
#include "lock/restore.hpp"
#include "netlist/libcell.hpp"
#include "opt/mffc.hpp"
#include "opt/optimizer.hpp"
#include "sim/metrics.hpp"
#include "sim/simulator.hpp"
#include "util/rng.hpp"

namespace splitlock::lock {
namespace {

struct Candidate {
  NetId net = kNullId;
  bool majority = false;  // stuck-at value (the likely value)
  double score = 0.0;     // bias-weighted removable area
};

// Ranks fault-site candidates on the current netlist.
std::vector<Candidate> RankCandidates(const Netlist& nl,
                                      const AtpgLockOptions& options,
                                      uint64_t seed) {
  const std::vector<double> probs =
      EstimateSignalProbabilities(nl, options.bias_patterns, seed);
  std::vector<Candidate> candidates;
  for (GateId g = 0; g < nl.NumGates(); ++g) {
    const Gate& gate = nl.gate(g);
    if (gate.op == GateOp::kDeleted || gate.HasFlag(kFlagDontTouch) ||
        gate.HasFlag(kFlagRestore) || IsSourceOp(gate.op) ||
        gate.op == GateOp::kOutput) {
      continue;
    }
    const NetId n = gate.out;
    if (nl.net(n).sinks.empty()) continue;
    const double p1 = probs[n];
    const double bias = std::max(p1, 1.0 - p1);
    if (bias < options.min_bias) continue;
    const std::vector<GateId> cone = MffcOf(nl, g);
    const double removable = AreaOfGates(nl, cone);
    if (removable <= 0.0) continue;
    Candidate c;
    c.net = n;
    c.majority = p1 >= 0.5;
    // Stronger bias means a smaller failing-pattern on-set and hence a
    // cheaper comparator; weight the removable area by it.
    c.score = removable * (bias - options.min_bias + 0.05);
    candidates.push_back(c);
  }
  std::sort(candidates.begin(), candidates.end(),
            [](const Candidate& a, const Candidate& b) {
              return a.score > b.score;
            });
  return candidates;
}

// Spreads ranked candidates across `partitions` round-robin buckets and
// re-interleaves them, so accepted faults distribute over the design the
// way the paper's per-partition fault selection does.
std::vector<Candidate> InterleaveByPartition(std::vector<Candidate> ranked,
                                             size_t partitions, Rng& rng) {
  if (partitions <= 1 || ranked.size() <= partitions) return ranked;
  std::vector<std::vector<Candidate>> buckets(partitions);
  // Random balanced assignment, preserving rank inside each bucket.
  std::vector<size_t> slots(ranked.size());
  for (size_t i = 0; i < slots.size(); ++i) slots[i] = i % partitions;
  rng.Shuffle(slots);
  for (size_t i = 0; i < ranked.size(); ++i) {
    buckets[slots[i]].push_back(std::move(ranked[i]));
  }
  std::vector<Candidate> out;
  out.reserve(slots.size());
  for (size_t round = 0; !buckets.empty(); ++round) {
    bool any = false;
    for (auto& b : buckets) {
      if (round < b.size()) {
        out.push_back(b[round]);
        any = true;
      }
    }
    if (!any) break;
  }
  return out;
}

}  // namespace

AtpgLockResult LockWithAtpg(const Netlist& original,
                            const AtpgLockOptions& options) {
  AtpgLockResult result;
  result.locked = original.Compacted();
  result.original_area_um2 = TotalCellArea(result.locked);
  Netlist& nl = result.locked;
  Rng rng(options.seed);

  size_t bits = 0;
  size_t next_key_index = 0;
  bool progress = true;
  // Nets whose fault was tried and rejected; never re-attempted (the
  // rejection reasons — cut size, on-set shape, dead key bits — do not go
  // away as other faults are injected).
  std::set<NetId> rejected;
  const bool trace = std::getenv("SPLITLOCK_TRACE") != nullptr;
  size_t rej_cut = 0, rej_minterms = 0, rej_cubes = 0, rej_degen = 0,
         rej_gain = 0, rej_prescreen = 0, rej_active = 0;
  while (bits < options.key_bits && progress) {
    progress = false;
    if (trace) {
      std::fprintf(stderr, "[lock] round start: bits=%zu rejected=%zu\n",
                   bits, rejected.size());
    }
    std::vector<Candidate> candidates =
        RankCandidates(nl, options, rng.NextWord());
    candidates = InterleaveByPartition(std::move(candidates),
                                       options.partitions, rng);

    // One shared random-sample sweep per round: per-net 64-bit sample
    // words used to pre-screen key-bit activity cheaply before paying for
    // the real apply-and-verify.
    constexpr size_t kSampleWords = 32;
    std::vector<std::array<uint64_t, kSampleWords>> samples(nl.NumNets());
    {
      Simulator sim(nl);
      Rng sample_rng(options.seed ^ 0x5a5a5a5a);
      const std::vector<GateId> keys_now = nl.KeyInputs();
      std::vector<uint8_t> key_now(result.key.begin(), result.key.end());
      for (size_t w = 0; w < kSampleWords; ++w) {
        sim.SetRandomInputs(sample_rng);
        if (!key_now.empty()) sim.SetKeyBits(key_now);
        sim.Run();
        for (NetId n = 0; n < nl.NumNets(); ++n) {
          samples[n][w] = sim.NetWord(n);
        }
      }
    }

    for (const Candidate& cand : candidates) {
      if (bits >= options.key_bits) break;
      if (rejected.count(cand.net) != 0) continue;
      // Re-check liveness: earlier accepted faults may have swept this net.
      const GateId driver = nl.DriverOf(cand.net);
      if (driver == kNullId || nl.gate(driver).op == GateOp::kDeleted ||
          nl.net(cand.net).sinks.empty()) {
        continue;
      }

      // The module boundary is the candidate's MFFC: the comparator's
      // support equals exactly the logic the fault removes, which keeps
      // the failing-pattern set compact (Sec. III-A's per-module ATPG).
      const std::vector<GateId> mffc = MffcOf(nl, driver);
      const atpg::Cut cut =
          atpg::CutFromCone(nl, cand.net, mffc, options.max_cut_leaves);
      if (cut.root == kNullId) {
        rejected.insert(cand.net);
        ++rej_cut;
        continue;
      }

      // Failing patterns: cut assignments on which the cone disagrees with
      // the stuck value.
      const auto minterms = atpg::EnumerateConeMinterms(
          nl, cut, !cand.majority, options.max_minterms);
      if (!minterms || minterms->empty()) {
        rejected.insert(cand.net);
        ++rej_minterms;
        continue;
      }
      const std::vector<atpg::Cube> cubes =
          atpg::MintermsToCubes(*minterms, cut.leaves.size());
      if (cubes.empty() || cubes.size() > options.max_cubes) {
        rejected.insert(cand.net);
        ++rej_cubes;
        continue;
      }
      size_t fault_bits = 0;
      bool degenerate = false;
      for (const atpg::Cube& c : cubes) {
        if (c.CareCount() == 0) degenerate = true;
        fault_bits += static_cast<size_t>(c.CareCount());
      }
      if (degenerate || fault_bits == 0) {
        rejected.insert(cand.net);
        ++rej_degen;
        continue;
      }
      if (bits + fault_bits > options.key_bits) continue;  // retry later

      // Cheap activity pre-screen on the shared samples: flipping any
      // single comparator literal must change the match function on at
      // least one observed (reachable) leaf pattern; otherwise the key
      // bit would be dead (correlated cut signals).
      {
        bool leaves_sampled = true;
        for (NetId leaf : cut.leaves) {
          if (leaf >= samples.size()) leaves_sampled = false;
        }
        if (leaves_sampled) {
          bool all_literals_alive = true;
          // Literal words per cube: literal true iff leaf matches the
          // cube's required value.
          for (size_t ci = 0; ci < cubes.size() && all_literals_alive;
               ++ci) {
            for (size_t li = 0; li < cut.leaves.size(); ++li) {
              if ((cubes[ci].care & (1ULL << li)) == 0) continue;
              bool alive = false;
              for (size_t w = 0; w < kSampleWords && !alive; ++w) {
                uint64_t match = 0;
                uint64_t match_flipped = 0;
                for (size_t cj = 0; cj < cubes.size(); ++cj) {
                  uint64_t cube_word = ~0ULL;
                  uint64_t cube_word_f = ~0ULL;
                  for (size_t lj = 0; lj < cut.leaves.size(); ++lj) {
                    if ((cubes[cj].care & (1ULL << lj)) == 0) continue;
                    const uint64_t leaf_word = samples[cut.leaves[lj]][w];
                    uint64_t lit = ((cubes[cj].value >> lj) & 1)
                                       ? leaf_word
                                       : ~leaf_word;
                    cube_word &= lit;
                    if (cj == ci && lj == li) lit = ~lit;
                    cube_word_f &= lit;
                  }
                  match |= cube_word;
                  match_flipped |= cube_word_f;
                }
                if ((match ^ match_flipped) != 0) alive = true;
              }
              if (!alive) {
                all_literals_alive = false;
                break;
              }
            }
          }
          if (!all_literals_alive) {
            rejected.insert(cand.net);
            ++rej_prescreen;
            continue;
          }
        }
      }

      // Cost check (Sec. III-A): only accept when removing the cone pays
      // for the restore circuitry.
      const std::vector<GateId> cone = MffcOf(nl, driver);
      const double removed = AreaOfGates(nl, cone);
      const LibCell& xor_cell =
          CellFor(Gate{GateOp::kXor, {0, 0}, 0, "", 0, 1});
      const LibCell& tie_cell = CellFor(Gate{GateOp::kTieHi, {}, 0, "", 0, 1});
      const LibCell& and_cell =
          CellFor(Gate{GateOp::kAnd, {0, 0}, 0, "", 0, 1});
      const double added =
          fault_bits * (xor_cell.AreaUm2() + tie_cell.AreaUm2()) +
          (fault_bits + cubes.size()) * 0.5 * and_cell.AreaUm2();
      if (options.require_area_gain && added >= removed) {
        rejected.insert(cand.net);
        ++rej_gain;
        continue;
      }

      // Apply: build restore, swap it in, let optimization sweep the cone.
      // Keep a backup: the fault is rolled back if any of its key bits
      // turns out to be functionally dead.
      const Netlist backup = nl;
      const size_t saved_key_index = next_key_index;
      RestoreResult restore =
          BuildRestore(nl, cut, cand.majority, cubes, rng, next_key_index);
      next_key_index += restore.key_bits_used;
      nl.ReplaceAllUses(cand.net, restore.restored_net);
      OptimizeArea(nl);

      std::vector<uint8_t> key_so_far = result.key;
      key_so_far.insert(key_so_far.end(), restore.key_values.begin(),
                        restore.key_values.end());
      // Fast per-fault sanity check; the construction guarantees
      // equivalence, so a mismatch is a library bug, not a recoverable
      // condition.
      if (!RandomPatternsAgree(original, nl, options.check_patterns,
                               options.seed ^ 0xabcdef, {}, key_so_far)) {
        throw std::logic_error(
            "ATPG lock: restore circuitry for net '" +
            nl.net(cand.net).name + "' broke functional equivalence");
      }

      // Every embedded key bit must actually lock something: flipping it
      // alone must change the circuit function (comparator literals over
      // correlated cut signals can be insensitive because parts of the cut
      // space are unreachable — such faults are rejected).
      bool all_bits_active = true;
      for (size_t b = result.key.size();
           b < key_so_far.size() && all_bits_active; ++b) {
        std::vector<uint8_t> flipped = key_so_far;
        flipped[b] ^= 1;
        if (RandomPatternsAgree(original, nl, options.check_patterns,
                                options.seed ^ (0x51D0 + b), {}, flipped)) {
          all_bits_active = false;
        }
      }
      if (!all_bits_active) {
        nl = backup;
        next_key_index = saved_key_index;
        rejected.insert(cand.net);
        ++rej_active;
        continue;
      }

      result.key = std::move(key_so_far);
      bits += fault_bits;
      InjectedFault record;
      record.net_name = nl.net(cand.net).name;
      record.stuck_value = cand.majority;
      record.cut_leaves = cut.leaves.size();
      record.cubes = cubes.size();
      record.key_bits = fault_bits;
      record.cone_area_removed = removed;
      result.faults.push_back(record);
      result.pattern_bits += fault_bits;
      progress = true;
      if (trace) {
        std::fprintf(stderr, "[lock] accepted %s (+%zu bits -> %zu)\n",
                     record.net_name.c_str(), fault_bits, bits);
      }
    }
  }

  if (trace) {
    std::fprintf(stderr,
                 "[lock] rejections: cut=%zu minterms=%zu cubes=%zu "
                 "degen=%zu gain=%zu prescreen=%zu active=%zu\n",
                 rej_cut, rej_minterms, rej_cubes, rej_degen, rej_gain,
                 rej_prescreen, rej_active);
  }
  // Pad to exactly |K| = k.
  if (bits < options.key_bits) {
    result.padding_bits =
        InsertParityPaddedKeyGates(nl, options.key_bits - bits, rng,
                                   &result.key);
    bits += result.padding_bits;
  }
  assert(bits == options.key_bits);
  assert(result.key.size() == options.key_bits);

  if (options.verify_lec) {
    const LecResult lec = CheckEquivalence(original, nl, {}, result.key);
    result.lec_proven = lec.proven;
    result.lec_equivalent = lec.equivalent;
  }

  result.locked_area_um2 = TotalCellArea(nl);
  return result;
}

}  // namespace splitlock::lock
