// ATPG-based cost-effective locking (re-implementation and extension of
// Sengupta et al., VTS'18, as used by the paper's synthesis stage, Fig. 3).
//
// Flow per accepted fault:
//   1. Candidate selection: nets that are strongly biased toward one value
//      (random-pattern signal probability) and root a sizeable MFFC.
//      Candidates are spread across partitions (round-robin buckets), the
//      in-process analogue of the paper's "hierarchical partitioning" that
//      lets every part of the design receive protection.
//   2. A K-feasible cut is extracted for the candidate net; the failing
//      patterns of "net stuck-at majority-value" are enumerated exactly over
//      the cut and compacted into cubes (the ATPG step, cf. Atalanta-M).
//   3. The circuit is re-synthesized with the fault injected: the fault
//      site's fanin cone is disconnected (and swept by OptimizeArea),
//      removing logic — the source of the paper's area savings.
//   4. Restore circuitry (cube comparators with key-obfuscated literals)
//      re-creates the exact net value; equivalence is verified by random
//      simulation per fault and formal LEC at the end ("LEC -> Reject").
//   5. When failing patterns provide fewer than k key bits, the remainder
//      is padded with parity-constrained EPIC chains.
//
// Cost model (Sec. III-A): each candidate is scored by the area removed
// (its MFFC) minus the area added (comparators + key-gates + TIE cells),
// and candidates are taken best-first subject to |K| = k.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "netlist/netlist.hpp"

namespace splitlock::lock {

struct AtpgLockOptions {
  size_t key_bits = 128;      // |K| = k, exact
  size_t max_cut_leaves = 12; // K-feasible cut bound
  size_t max_minterms = 512;  // on-set bound per fault
  size_t max_cubes = 6;       // comparator budget per fault
  size_t partitions = 8;      // candidate spreading buckets
  double min_bias = 0.75;     // majority-value probability threshold
  uint64_t bias_patterns = 4096;
  uint64_t check_patterns = 2048;  // per-fault random-sim sanity patterns
  bool verify_lec = true;
  // Only accept faults whose removed cone outweighs the restore circuitry
  // (the paper's cost model). Disable for tiny illustration circuits where
  // no fault can pay for its comparator.
  bool require_area_gain = true;
  uint64_t seed = 1;
};

// lint:result-schema(v4) encoded by store/artifact_io (flow artifact) — a
// result-affecting change here needs a kResultSchemaVersion bump.
struct InjectedFault {
  std::string net_name;
  bool stuck_value = false;
  size_t cut_leaves = 0;
  size_t cubes = 0;
  size_t key_bits = 0;
  double cone_area_removed = 0.0;
};

// lint:result-schema(v4) encoded by store/artifact_io (flow artifact) — a
// result-affecting change here needs a kResultSchemaVersion bump.
struct AtpgLockResult {
  Netlist locked;
  std::vector<uint8_t> key;  // correct key, KeyInputs() order
  std::vector<InjectedFault> faults;
  size_t pattern_bits = 0;  // key bits from failing-pattern care literals
  size_t padding_bits = 0;
  double original_area_um2 = 0.0;
  double locked_area_um2 = 0.0;
  bool lec_proven = false;
  bool lec_equivalent = false;

  double AreaDeltaPercent() const {
    return original_area_um2 == 0.0
               ? 0.0
               : 100.0 * (locked_area_um2 - original_area_um2) /
                     original_area_um2;
  }
};

// Locks `original` with exactly options.key_bits key bits.
AtpgLockResult LockWithAtpg(const Netlist& original,
                            const AtpgLockOptions& options = {});

}  // namespace splitlock::lock
