#include "lock/epic.hpp"

#include <cassert>
#include <string>

#include "lock/key.hpp"

namespace splitlock::lock {

std::vector<uint8_t> RandomKey(size_t bits, Rng& rng) {
  std::vector<uint8_t> key(bits);
  for (uint8_t& b : key) b = rng.NextBool() ? 1 : 0;
  return key;
}

NetId AddKeyInput(Netlist& nl, size_t bit_index) {
  const NetId net =
      nl.AddGate(GateOp::kKeyIn, {}, "key_" + std::to_string(bit_index));
  Gate& g = nl.gate(nl.DriverOf(net));
  g.flags |= kFlagTie | kFlagDontTouch;
  g.name = "key_" + std::to_string(bit_index);
  return net;
}

double KeyOnesFraction(const std::vector<uint8_t>& key) {
  if (key.empty()) return 0.0;
  size_t ones = 0;
  for (uint8_t b : key) ones += b;
  return static_cast<double>(ones) / static_cast<double>(key.size());
}

Netlist RealizeKeyAsTies(const Netlist& locked, std::span<const uint8_t> key) {
  Netlist realized = locked;
  const std::vector<GateId> key_inputs = realized.KeyInputs();
  assert(key.size() == key_inputs.size());
  for (size_t i = 0; i < key_inputs.size(); ++i) {
    Gate& g = realized.gate(key_inputs[i]);
    g.op = key[i] ? GateOp::kTieHi : GateOp::kTieLo;
    g.flags |= kFlagTie | kFlagDontTouch;
  }
  return realized;
}

namespace {

// Nets eligible to host a key-gate: driven by plain logic (or a primary
// input), not part of the protected key network, and actually consumed.
std::vector<NetId> EligibleNets(const Netlist& nl) {
  std::vector<NetId> nets;
  for (NetId n = 0; n < nl.NumNets(); ++n) {
    const GateId d = nl.DriverOf(n);
    if (d == kNullId || nl.net(n).sinks.empty()) continue;
    const Gate& g = nl.gate(d);
    if (g.op == GateOp::kDeleted || g.HasFlag(kFlagDontTouch) ||
        g.HasFlag(kFlagKeyGate) || IsSourceOp(g.op) ||
        g.op == GateOp::kOutput) {
      if (g.op != GateOp::kInput) continue;  // allow PI nets
    }
    nets.push_back(n);
  }
  return nets;
}

// Splices one key-gate of `op` onto `net`, rerouting all existing sinks
// through it. Returns the key-gate's output net.
NetId SpliceKeyGate(Netlist& nl, NetId net, GateOp op, NetId key_net) {
  const std::vector<Pin> sinks = nl.net(net).sinks;  // snapshot
  const NetId out = nl.AddGate(op, {net, key_net},
                               nl.net(net).name + "_kg");
  Gate& kg = nl.gate(nl.DriverOf(out));
  kg.flags |= kFlagKeyGate | kFlagDontTouch;
  for (const Pin& p : sinks) nl.ReplaceFanin(p.gate, p.index, out);
  return out;
}

}  // namespace

EpicResult LockWithEpic(const Netlist& original, size_t bits, Rng& rng) {
  EpicResult result;
  result.locked = original;
  Netlist& nl = result.locked;
  size_t next_bit = nl.KeyInputs().size();

  for (size_t i = 0; i < bits; ++i) {
    const std::vector<NetId> nets = EligibleNets(nl);
    assert(!nets.empty());
    const NetId target = nets[rng.NextUint(nets.size())];
    const uint8_t bit = rng.NextBool() ? 1 : 0;
    // Transparent combinations: XOR with key 0, XNOR with key 1.
    const GateOp op = bit != 0 ? GateOp::kXnor : GateOp::kXor;
    const NetId key_net = AddKeyInput(nl, next_bit++);
    SpliceKeyGate(nl, target, op, key_net);
    result.key.push_back(bit);
  }
  return result;
}

size_t InsertParityPaddedKeyGates(Netlist& nl, size_t bits, Rng& rng,
                                  std::vector<uint8_t>* key) {
  if (bits == 0) return 0;
  size_t next_bit = nl.KeyInputs().size();
  size_t inserted = 0;

  // Chain lengths: pairs, with one leading triple when `bits` is odd.
  std::vector<size_t> chains;
  size_t remaining = bits;
  if (remaining % 2 == 1) {
    chains.push_back(remaining >= 3 ? 3 : 1);
    remaining -= chains.back();
  }
  while (remaining > 0) {
    chains.push_back(2);
    remaining -= 2;
  }

  for (size_t len : chains) {
    const std::vector<NetId> nets = EligibleNets(nl);
    assert(!nets.empty());
    NetId host = nets[rng.NextUint(nets.size())];

    // Random gate types; the chain inverts once per XNOR-with-0 or
    // XOR-with-1, so transparency requires
    //   XOR_i (bit_i XOR [type_i == XNOR]) == 0,
    // i.e. the bit parity is fixed by the type parity. Draw all but the
    // last bit uniformly; the last is forced — every bit is still
    // marginally uniform because the free bits are.
    std::vector<GateOp> types(len);
    std::vector<uint8_t> chain_bits(len);
    uint8_t acc = 0;
    for (size_t i = 0; i < len; ++i) {
      types[i] = rng.NextBool() ? GateOp::kXnor : GateOp::kXor;
      if (i + 1 < len) {
        chain_bits[i] = rng.NextBool() ? 1 : 0;
        acc ^= chain_bits[i] ^ (types[i] == GateOp::kXnor ? 1 : 0);
      }
    }
    chain_bits[len - 1] =
        acc ^ (types[len - 1] == GateOp::kXnor ? 1 : 0) ^ 0;

    for (size_t i = 0; i < len; ++i) {
      const NetId key_net = AddKeyInput(nl, next_bit++);
      host = SpliceKeyGate(nl, host, types[i], key_net);
      key->push_back(chain_bits[i]);
      ++inserted;
    }
  }
  return inserted;
}

}  // namespace splitlock::lock
