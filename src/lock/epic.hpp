// EPIC-style random key-gate insertion (Roy et al., DATE'08).
//
// Two entry points:
//  * LockWithEpic: the classic standalone technique — one XOR/XNOR key-gate
//    per key bit inserted on a random net, transparent under the correct
//    key. Note the classic structural leak: a lone XOR key-gate implies key
//    bit 0 and a lone XNOR implies 1. This is provided as the paper's
//    "any locking technique can be applied, including random insertion of
//    key-gates [15]" baseline, and to let the benches quantify that leak.
//  * InsertParityPaddedKeyGates: the padding used by the ATPG-based flow
//    when failing patterns provide fewer than k bits. Key-gates are inserted
//    in chains whose overall transparency constrains only the chain parity,
//    so every padded bit is individually uniform regardless of gate type
//    (see DESIGN.md for the honesty note on pairwise correlation).
#pragma once

#include <cstddef>
#include <vector>

#include "netlist/netlist.hpp"
#include "util/rng.hpp"

namespace splitlock::lock {

struct EpicResult {
  Netlist locked;
  std::vector<uint8_t> key;  // KeyInputs() order
};

// Locks `original` with `bits` randomly placed XOR/XNOR key-gates.
EpicResult LockWithEpic(const Netlist& original, size_t bits, Rng& rng);

// Inserts `bits` key bits into `nl` as parity-constrained chains (pairs,
// plus one triple when `bits` is odd) on random eligible nets. Appends the
// correct key values to `key`. Returns the number of bits inserted.
size_t InsertParityPaddedKeyGates(Netlist& nl, size_t bits, Rng& rng,
                                  std::vector<uint8_t>* key);

}  // namespace splitlock::lock
