// Key bookkeeping shared by the locking techniques.
//
// A locked netlist carries kKeyIn source gates; the *correct key* is the
// bit vector (in Netlist::KeyInputs() order) under which the locked netlist
// is functionally equivalent to the original. At layout time each key input
// is realized as a TIEHI (bit 1) or TIELO (bit 0) cell, and the nets from
// TIE cells to key-gates are the key-nets that get lifted to the BEOL.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "netlist/netlist.hpp"
#include "util/rng.hpp"

namespace splitlock::lock {

// Draws a uniform random key of `bits` bits (the paper's K <-$- {0,1}^k).
std::vector<uint8_t> RandomKey(size_t bits, Rng& rng);

// Creates a named key input in `nl`, flagged as a future TIE cell with
// set_dont_touch semantics, and returns the net it drives.
NetId AddKeyInput(Netlist& nl, size_t bit_index);

// Fraction of ones in a key (TIEHI share); uniform keys sit near 0.5.
double KeyOnesFraction(const std::vector<uint8_t>& key);

// Physical key realization: every kKeyIn source becomes a TIEHI (bit 1) or
// TIELO (bit 0) cell per the key, keeping its dont-touch/TIE flags. This is
// the netlist handed to the layout stage — the FEOL then contains real TIE
// cells whose assignment to key-gates is the BEOL secret.
Netlist RealizeKeyAsTies(const Netlist& locked,
                         std::span<const uint8_t> key);

}  // namespace splitlock::lock
