#include "lock/restore.hpp"

#include <cassert>

#include "lock/key.hpp"

namespace splitlock::lock {
namespace {

NetId BuildTree(Netlist& nl, GateOp op, std::vector<NetId> terms,
                uint16_t flags) {
  assert(!terms.empty());
  while (terms.size() > 1) {
    std::vector<NetId> next;
    size_t i = 0;
    while (i < terms.size()) {
      const size_t take = std::min<size_t>(4, terms.size() - i);
      if (take == 1) {
        next.push_back(terms[i]);
        ++i;
        continue;
      }
      const NetId out = nl.AddGate(
          op, std::span<const NetId>(terms.data() + i, take));
      nl.gate(nl.DriverOf(out)).flags |= flags;
      next.push_back(out);
      i += take;
    }
    terms = std::move(next);
  }
  return terms[0];
}

}  // namespace

NetId BuildAndTree(Netlist& nl, std::vector<NetId> terms, uint16_t flags) {
  return BuildTree(nl, GateOp::kAnd, std::move(terms), flags);
}

NetId BuildOrTree(Netlist& nl, std::vector<NetId> terms, uint16_t flags) {
  return BuildTree(nl, GateOp::kOr, std::move(terms), flags);
}

RestoreResult BuildRestore(Netlist& nl, const atpg::Cut& cut, bool stuck_value,
                           std::span<const atpg::Cube> cubes, Rng& rng,
                           size_t next_key_index) {
  RestoreResult result;
  assert(!cubes.empty());

  std::vector<NetId> cube_nets;
  cube_nets.reserve(cubes.size());
  for (const atpg::Cube& cube : cubes) {
    std::vector<NetId> literals;
    for (size_t i = 0; i < cut.leaves.size(); ++i) {
      if ((cube.care & (1ULL << i)) == 0) continue;
      const bool required = (cube.value >> i) & 1;
      // Uniform key bit; the gate type absorbs the difference:
      //   XNOR(leaf, key)  matches leaf == key
      //   XOR(leaf, key)   matches leaf == !key
      const uint8_t key_bit = rng.NextBool() ? 1 : 0;
      const GateOp op =
          (key_bit != 0) == required ? GateOp::kXnor : GateOp::kXor;
      const NetId key_net = AddKeyInput(nl, next_key_index++);
      const NetId lit =
          nl.AddGate(op, {cut.leaves[i], key_net});
      nl.gate(nl.DriverOf(lit)).flags |=
          kFlagKeyGate | kFlagRestore | kFlagDontTouch;
      literals.push_back(lit);
      result.key_values.push_back(key_bit);
      ++result.key_bits_used;
    }
    assert(!literals.empty());
    cube_nets.push_back(BuildAndTree(nl, std::move(literals), kFlagRestore));
  }

  const NetId match = BuildOrTree(nl, std::move(cube_nets), kFlagRestore);
  if (!stuck_value) {
    // n = 0 XOR match = match.
    result.restored_net = match;
  } else {
    // n = 1 XOR match = NOT match.
    const NetId inv = nl.AddGate(GateOp::kInv, {match});
    nl.gate(nl.DriverOf(inv)).flags |= kFlagRestore;
    result.restored_net = inv;
  }
  return result;
}

}  // namespace splitlock::lock
