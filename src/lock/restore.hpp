// Restore-circuitry synthesis for fault-injection locking.
//
// Given a fault "net n stuck-at v" whose failing patterns over a cut are the
// cubes C_1..C_m, the restore circuitry recomputes n as
//     n = v XOR (C_1 OR ... OR C_m)
// where each cube comparator ANDs one key-obfuscated literal per care bit:
// leaf XNOR key when the (uniformly drawn) key bit equals the required leaf
// value, leaf XOR key otherwise. Either gate type can carry either bit
// value, so the key distribution stays uniform and the gate types leak
// nothing — this is the property Theorem 1's brute-force bound rests on.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "atpg/cube.hpp"
#include "atpg/cut.hpp"
#include "netlist/netlist.hpp"
#include "util/rng.hpp"

namespace splitlock::lock {

struct RestoreResult {
  NetId restored_net = kNullId;  // the re-created value of the fault site
  size_t key_bits_used = 0;
  std::vector<uint8_t> key_values;  // appended in key-input creation order
};

// Builds the comparator network inside `nl` (which already contains the cut
// leaves) and returns the restored net. `next_key_index` numbers the new
// key inputs (key_<index> naming must stay globally unique).
RestoreResult BuildRestore(Netlist& nl, const atpg::Cut& cut, bool stuck_value,
                           std::span<const atpg::Cube> cubes, Rng& rng,
                           size_t next_key_index);

// Builds a balanced AND tree (arity up to 4) over the given nets; gates are
// flagged with `flags`. A single net is returned unchanged.
NetId BuildAndTree(Netlist& nl, std::vector<NetId> terms, uint16_t flags);

// Same for OR.
NetId BuildOrTree(Netlist& nl, std::vector<NetId> terms, uint16_t flags);

}  // namespace splitlock::lock
