#include "netlist/bench_io.hpp"

#include <cctype>
#include <map>
#include <optional>
#include <sstream>
#include <stdexcept>
#include <vector>

namespace splitlock {
namespace {

std::string Trim(const std::string& s) {
  size_t b = 0;
  size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

std::optional<GateOp> OpFromName(std::string op) {
  for (char& c : op) c = static_cast<char>(std::toupper(c));
  if (op == "AND") return GateOp::kAnd;
  if (op == "NAND") return GateOp::kNand;
  if (op == "OR") return GateOp::kOr;
  if (op == "NOR") return GateOp::kNor;
  if (op == "NOT" || op == "INV") return GateOp::kInv;
  if (op == "BUF" || op == "BUFF") return GateOp::kBuf;
  if (op == "XOR") return GateOp::kXor;
  if (op == "XNOR") return GateOp::kXnor;
  if (op == "MUX") return GateOp::kMux;
  if (op == "TIEHI") return GateOp::kTieHi;
  if (op == "TIELO") return GateOp::kTieLo;
  if (op == "KEYIN") return GateOp::kKeyIn;
  if (op == "CONST0") return GateOp::kConst0;
  if (op == "CONST1") return GateOp::kConst1;
  return std::nullopt;
}

struct Statement {
  std::string target;
  GateOp op;
  std::vector<std::string> args;
  int line;
};

[[noreturn]] void Fail(int line, const std::string& msg) {
  throw std::runtime_error(".bench line " + std::to_string(line) + ": " + msg);
}

}  // namespace

Netlist ReadBench(const std::string& text, const std::string& name) {
  std::vector<std::string> input_names;
  std::vector<std::string> output_names;
  std::vector<Statement> stmts;
  // FF-cut bookkeeping: q = DFF(d) becomes pseudo-PI `q` + pseudo-PO on d.
  std::vector<std::pair<std::string, std::string>> flops;  // (q, d)

  std::istringstream in(text);
  std::string raw;
  int line_no = 0;
  while (std::getline(in, raw)) {
    ++line_no;
    const size_t hash = raw.find('#');
    if (hash != std::string::npos) raw.resize(hash);
    const std::string line = Trim(raw);
    if (line.empty()) continue;

    const size_t eq = line.find('=');
    const size_t lp = line.find('(');
    const size_t rp = line.rfind(')');
    if (lp == std::string::npos || rp == std::string::npos || rp < lp) {
      Fail(line_no, "expected '(...)'");
    }
    const std::string head = Trim(line.substr(0, eq == std::string::npos
                                                      ? lp
                                                      : eq));
    const std::string inner = line.substr(lp + 1, rp - lp - 1);
    std::vector<std::string> args;
    std::string cur;
    std::istringstream args_in(inner);
    while (std::getline(args_in, cur, ',')) {
      const std::string a = Trim(cur);
      if (!a.empty()) args.push_back(a);
    }

    if (eq == std::string::npos) {
      std::string kw = head;
      for (char& c : kw) c = static_cast<char>(std::toupper(c));
      if (args.size() != 1) Fail(line_no, "INPUT/OUTPUT take one name");
      if (kw == "INPUT") {
        input_names.push_back(args[0]);
      } else if (kw == "OUTPUT") {
        output_names.push_back(args[0]);
      } else {
        Fail(line_no, "unknown directive '" + head + "'");
      }
      continue;
    }

    const std::string op_name = Trim(line.substr(eq + 1, lp - eq - 1));
    {
      std::string upper = op_name;
      for (char& c : upper) c = static_cast<char>(std::toupper(c));
      if (upper == "DFF") {
        if (args.size() != 1) Fail(line_no, "DFF takes one argument");
        flops.emplace_back(head, args[0]);
        continue;
      }
    }
    const auto op = OpFromName(op_name);
    if (!op) Fail(line_no, "unknown op '" + op_name + "'");
    stmts.push_back(Statement{head, *op, std::move(args), line_no});
  }

  // FF-cut, first half: flop outputs become pseudo primary inputs. (The
  // pseudo primary outputs observing the D nets are added after statement
  // resolution below.)
  for (const auto& [q, d] : flops) input_names.push_back(q);

  Netlist nl(name);
  std::map<std::string, NetId> by_name;
  for (const std::string& n : input_names) {
    if (by_name.count(n) != 0) throw std::runtime_error("duplicate input " + n);
    by_name[n] = nl.AddInput(n);
  }

  // Statements may be in any order; iterate until fixpoint.
  std::vector<bool> done(stmts.size(), false);
  size_t remaining = stmts.size();
  bool progress = true;
  while (remaining > 0 && progress) {
    progress = false;
    for (size_t i = 0; i < stmts.size(); ++i) {
      if (done[i]) continue;
      const Statement& s = stmts[i];
      std::vector<NetId> fanins;
      bool ready = true;
      for (const std::string& a : s.args) {
        auto it = by_name.find(a);
        if (it == by_name.end()) {
          ready = false;
          break;
        }
        fanins.push_back(it->second);
      }
      if (!ready) continue;
      if (by_name.count(s.target) != 0) {
        Fail(s.line, "net '" + s.target + "' defined twice");
      }
      by_name[s.target] = nl.AddGate(s.op, fanins, s.target);
      done[i] = true;
      --remaining;
      progress = true;
    }
  }
  if (remaining > 0) {
    for (size_t i = 0; i < stmts.size(); ++i) {
      if (!done[i]) Fail(stmts[i].line, "undefined fanin (or cycle)");
    }
  }

  for (const std::string& n : output_names) {
    auto it = by_name.find(n);
    if (it == by_name.end()) throw std::runtime_error("undefined output " + n);
    nl.AddOutput(it->second, n);
  }
  // FF-cut, second half: pseudo primary outputs observing each flop's D.
  for (const auto& [q, d] : flops) {
    auto it = by_name.find(d);
    if (it == by_name.end()) {
      throw std::runtime_error("DFF '" + q + "' has undefined D net " + d);
    }
    nl.AddOutput(it->second, q + "__ff_d");
  }
  return nl;
}

std::string WriteBench(const Netlist& nl) {
  std::ostringstream out;
  out << "# " << nl.name() << "\n";
  for (GateId g : nl.inputs()) out << "INPUT(" << nl.gate(g).name << ")\n";
  for (GateId g : nl.outputs()) out << "OUTPUT(" << nl.gate(g).name << ")\n";

  // Primary-output pseudo-gates observe nets directly. If an output name
  // differs from its net name, emit a BUF alias statement.
  for (GateId g : nl.TopoOrder()) {
    const Gate& gate = nl.gate(g);
    if (gate.op == GateOp::kInput || gate.op == GateOp::kOutput ||
        gate.op == GateOp::kDeleted) {
      continue;
    }
    out << nl.net(gate.out).name << " = " << GateOpName(gate.op) << "(";
    for (size_t i = 0; i < gate.fanins.size(); ++i) {
      if (i > 0) out << ", ";
      out << nl.net(gate.fanins[i]).name;
    }
    out << ")\n";
  }
  for (GateId g : nl.outputs()) {
    const Gate& gate = nl.gate(g);
    const std::string& src = nl.net(gate.fanins[0]).name;
    if (src != gate.name) {
      out << gate.name << " = BUF(" << src << ")\n";
    }
  }
  return out.str();
}

}  // namespace splitlock
