// ISCAS-89 style ".bench" reader/writer.
//
// Supported grammar (one statement per line, '#' comments):
//   INPUT(name)
//   OUTPUT(name)
//   name = OP(a, b, ...)      OP in {AND, NAND, OR, NOR, NOT, BUF, XOR,
//                                    XNOR, MUX, TIEHI, TIELO, KEYIN,
//                                    CONST0, CONST1, DFF}
// KEYIN takes no arguments and extends the classical format so locked
// netlists round-trip. Sequential designs (DFF statements, as in the real
// ISCAS-89/ITC'99 releases) are read as their FF-cut combinational cores:
// every `q = DFF(d)` becomes a pseudo primary input `q` plus a pseudo
// primary output observing `d` — the standard gate-level security view
// this library analyzes.
#pragma once

#include <string>

#include "netlist/netlist.hpp"

namespace splitlock {

// Parses `.bench` text. Throws std::runtime_error with a line-numbered
// message on malformed input.
Netlist ReadBench(const std::string& text, const std::string& name = "bench");

// Serializes to `.bench` text (topological statement order).
std::string WriteBench(const Netlist& nl);

}  // namespace splitlock
