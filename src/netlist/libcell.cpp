#include "netlist/libcell.hpp"

#include <array>
#include <cassert>

namespace splitlock {
namespace {

// Index layout: [op-group][arity-variant][drive-index].
// Drive variants scale a base cell: X2 halves drive resistance and adds
// ~50% width; X4 quarters resistance at ~2.5x width.
struct BaseCell {
  const char* name;
  int width_sites;
  double cap;
  double delay;
  double res;
  double leak;
};

LibCell MakeVariant(const BaseCell& b, uint8_t drive) {
  LibCell c;
  c.input_cap_ff = b.cap;
  c.intrinsic_delay_ps = b.delay;
  c.leakage_nw = b.leak;
  switch (drive) {
    case 2:
      c.name = std::string(b.name) + "_X2";
      c.width_sites = b.width_sites + (b.width_sites + 1) / 2;
      c.drive_res_kohm = b.res / 2.0;
      c.leakage_nw = b.leak * 1.6;
      c.input_cap_ff = b.cap * 1.6;  // bigger transistors, bigger gates
      break;
    case 4:
      c.name = std::string(b.name) + "_X4";
      c.width_sites = b.width_sites * 5 / 2 + 1;
      c.drive_res_kohm = b.res / 4.0;
      c.leakage_nw = b.leak * 2.8;
      c.input_cap_ff = b.cap * 2.6;
      break;
    default:
      c.name = std::string(b.name) + "_X1";
      c.width_sites = b.width_sites;
      c.drive_res_kohm = b.res;
      break;
  }
  c.max_load_ff = 60.0 / c.drive_res_kohm * 1.0;  // ~60 ps max output ramp
  return c;
}

constexpr BaseCell kBuf{"BUF", 3, 1.0, 25.0, 1.0, 15.0};
constexpr BaseCell kInv{"INV", 2, 1.4, 10.0, 0.8, 10.0};
constexpr std::array<BaseCell, 3> kAnd{{{"AND2", 4, 1.2, 30.0, 1.2, 20.0},
                                        {"AND3", 5, 1.2, 34.0, 1.3, 24.0},
                                        {"AND4", 6, 1.2, 38.0, 1.4, 28.0}}};
constexpr std::array<BaseCell, 3> kNandC{{{"NAND2", 3, 1.5, 15.0, 1.0, 16.0},
                                          {"NAND3", 4, 1.6, 18.0, 1.1, 20.0},
                                          {"NAND4", 5, 1.7, 21.0, 1.2, 24.0}}};
constexpr std::array<BaseCell, 3> kOrC{{{"OR2", 4, 1.2, 32.0, 1.2, 20.0},
                                        {"OR3", 5, 1.2, 36.0, 1.3, 24.0},
                                        {"OR4", 6, 1.2, 40.0, 1.4, 28.0}}};
constexpr std::array<BaseCell, 3> kNorC{{{"NOR2", 3, 1.5, 18.0, 1.1, 14.0},
                                         {"NOR3", 4, 1.6, 22.0, 1.2, 18.0},
                                         {"NOR4", 5, 1.7, 26.0, 1.3, 22.0}}};
constexpr BaseCell kXorC{"XOR2", 6, 2.2, 40.0, 1.4, 35.0};
constexpr BaseCell kXnorC{"XNOR2", 6, 2.2, 40.0, 1.4, 35.0};
constexpr BaseCell kMuxC{"MUX2", 7, 1.8, 45.0, 1.4, 40.0};
// TIE cells: tiny, weak drivers with no input pins. Their weak drive is
// irrelevant for timing (they define static-only paths, Sec. II-C item 5),
// but max_load matters for how many key-gates one TIE could legally feed.
constexpr BaseCell kTieHiC{"TIEHI", 2, 0.0, 0.0, 8.0, 3.0};
constexpr BaseCell kTieLoC{"TIELO", 2, 0.0, 0.0, 8.0, 3.0};

const LibCell& Lookup(const BaseCell& base, uint8_t drive) {
  // Cache the nine-ish variants lazily; the table is tiny and immutable
  // after first use.
  static std::array<std::array<LibCell, 3>, 16> cache;
  static std::array<std::array<bool, 3>, 16> filled{};
  // Hash base by pointer-identity within our fixed set.
  static const BaseCell* bases[16] = {
      &kBuf,      &kInv,      &kAnd[0],  &kAnd[1],  &kAnd[2],  &kNandC[0],
      &kNandC[1], &kNandC[2], &kOrC[0],  &kOrC[1],  &kOrC[2],  &kNorC[0],
      &kNorC[1],  &kNorC[2],  &kXorC,    &kXnorC};
  int slot = -1;
  for (int i = 0; i < 16; ++i) {
    if (bases[i] == &base) {
      slot = i;
      break;
    }
  }
  const int di = drive == 4 ? 2 : (drive == 2 ? 1 : 0);
  if (slot >= 0) {
    if (!filled[slot][di]) {
      cache[slot][di] = MakeVariant(base, drive);
      filled[slot][di] = true;
    }
    return cache[slot][di];
  }
  // MUX / TIE variants live in their own small cache.
  static std::array<LibCell, 3> mux_cache;
  static std::array<bool, 3> mux_filled{};
  static LibCell tiehi = MakeVariant(kTieHiC, 1);
  static LibCell tielo = MakeVariant(kTieLoC, 1);
  if (&base == &kMuxC) {
    if (!mux_filled[di]) {
      mux_cache[di] = MakeVariant(base, drive);
      mux_filled[di] = true;
    }
    return mux_cache[di];
  }
  if (&base == &kTieHiC) return tiehi;
  return tielo;
}

}  // namespace

bool IsPhysicalOp(GateOp op) {
  switch (op) {
    case GateOp::kInput:
    case GateOp::kOutput:
    case GateOp::kDeleted:
      return false;
    default:
      return true;
  }
}

const LibCell& CellFor(const Gate& gate) {
  const size_t arity = gate.fanins.size();
  switch (gate.op) {
    case GateOp::kBuf: return Lookup(kBuf, gate.drive);
    case GateOp::kInv: return Lookup(kInv, gate.drive);
    case GateOp::kAnd: return Lookup(kAnd[arity - 2], gate.drive);
    case GateOp::kNand: return Lookup(kNandC[arity - 2], gate.drive);
    case GateOp::kOr: return Lookup(kOrC[arity - 2], gate.drive);
    case GateOp::kNor: return Lookup(kNorC[arity - 2], gate.drive);
    case GateOp::kXor: return Lookup(kXorC, gate.drive);
    case GateOp::kXnor: return Lookup(kXnorC, gate.drive);
    case GateOp::kMux: return Lookup(kMuxC, gate.drive);
    case GateOp::kTieHi:
    case GateOp::kConst1:
      return Lookup(kTieHiC, 1);
    case GateOp::kTieLo:
    case GateOp::kConst0:
      return Lookup(kTieLoC, 1);
    case GateOp::kKeyIn:
      // A key input is realized as a TIE cell; use the (identical) TIEHI
      // footprint for sizing before the key value is bound.
      return Lookup(kTieHiC, 1);
    case GateOp::kInput:
    case GateOp::kOutput:
    case GateOp::kDeleted:
      break;
  }
  assert(false && "no library cell for op");
  return Lookup(kBuf, 1);
}

double TotalCellArea(const Netlist& nl) {
  double area = 0.0;
  for (GateId g = 0; g < nl.NumGates(); ++g) {
    const Gate& gate = nl.gate(g);
    if (IsPhysicalOp(gate.op)) area += CellFor(gate).AreaUm2();
  }
  return area;
}

double TotalLeakage(const Netlist& nl) {
  double leak = 0.0;
  for (GateId g = 0; g < nl.NumGates(); ++g) {
    const Gate& gate = nl.gate(g);
    if (IsPhysicalOp(gate.op)) leak += CellFor(gate).leakage_nw;
  }
  return leak;
}

}  // namespace splitlock
