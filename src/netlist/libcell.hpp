// Standard-cell library model (Nangate 45nm OpenCell-like).
//
// The secure flow reports layout cost relative to an unprotected baseline,
// so only the relative magnitudes of these values matter. Units:
//   area         um^2 (site-quantized: width_sites * kSiteWidthUm * kRowHeightUm)
//   input_cap_ff fF per input pin
//   delay_ps     intrinsic cell delay
//   drive_res    kOhm equivalent output resistance (1 kOhm * 1 fF = 1 ps)
//   leakage_nw   nW leakage power
//   max_load_ff  maximum load the cell may legally drive (used both by the
//                physical-design legality checks and by the proximity
//                attack's load-constraint hint)
#pragma once

#include <cstdint>
#include <string>

#include "netlist/netlist.hpp"

namespace splitlock {

inline constexpr double kSiteWidthUm = 0.19;
inline constexpr double kRowHeightUm = 1.4;

struct LibCell {
  std::string name;
  int width_sites = 0;
  double input_cap_ff = 0.0;
  double intrinsic_delay_ps = 0.0;
  double drive_res_kohm = 0.0;
  double leakage_nw = 0.0;
  double max_load_ff = 0.0;

  double WidthUm() const { return width_sites * kSiteWidthUm; }
  double AreaUm2() const { return WidthUm() * kRowHeightUm; }
};

// Returns the library cell implementing `gate` (op + arity + drive).
// kKeyIn maps to a TIE cell footprint (its layout realization).
// Asserts for non-physical ops (kInput/kOutput/kDeleted).
const LibCell& CellFor(const Gate& gate);

// True for ops realized as physical standard cells (excludes the
// kInput/kOutput pseudo-gates).
bool IsPhysicalOp(GateOp op);

// Total standard-cell area of the netlist in um^2.
double TotalCellArea(const Netlist& nl);

// Total leakage power of the netlist in nW.
double TotalLeakage(const Netlist& nl);

}  // namespace splitlock
