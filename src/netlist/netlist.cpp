#include "netlist/netlist.hpp"

#include <algorithm>
#include <cassert>
#include <sstream>
#include <stdexcept>

namespace splitlock {

const char* GateOpName(GateOp op) {
  switch (op) {
    case GateOp::kInput: return "INPUT";
    case GateOp::kOutput: return "OUTPUT";
    case GateOp::kConst0: return "CONST0";
    case GateOp::kConst1: return "CONST1";
    case GateOp::kTieHi: return "TIEHI";
    case GateOp::kTieLo: return "TIELO";
    case GateOp::kKeyIn: return "KEYIN";
    case GateOp::kBuf: return "BUF";
    case GateOp::kInv: return "NOT";
    case GateOp::kAnd: return "AND";
    case GateOp::kNand: return "NAND";
    case GateOp::kOr: return "OR";
    case GateOp::kNor: return "NOR";
    case GateOp::kXor: return "XOR";
    case GateOp::kXnor: return "XNOR";
    case GateOp::kMux: return "MUX";
    case GateOp::kDeleted: return "DELETED";
  }
  return "?";
}

bool IsSourceOp(GateOp op) {
  switch (op) {
    case GateOp::kInput:
    case GateOp::kConst0:
    case GateOp::kConst1:
    case GateOp::kTieHi:
    case GateOp::kTieLo:
    case GateOp::kKeyIn:
      return true;
    default:
      return false;
  }
}

uint64_t EvalGateWord(GateOp op, std::span<const uint64_t> f) {
  switch (op) {
    case GateOp::kConst0:
    case GateOp::kTieLo:
      return 0;
    case GateOp::kConst1:
    case GateOp::kTieHi:
      return ~0ULL;
    case GateOp::kBuf:
    case GateOp::kOutput:
      return f[0];
    case GateOp::kInv:
      return ~f[0];
    case GateOp::kAnd: {
      uint64_t v = f[0];
      for (size_t i = 1; i < f.size(); ++i) v &= f[i];
      return v;
    }
    case GateOp::kNand: {
      uint64_t v = f[0];
      for (size_t i = 1; i < f.size(); ++i) v &= f[i];
      return ~v;
    }
    case GateOp::kOr: {
      uint64_t v = f[0];
      for (size_t i = 1; i < f.size(); ++i) v |= f[i];
      return v;
    }
    case GateOp::kNor: {
      uint64_t v = f[0];
      for (size_t i = 1; i < f.size(); ++i) v |= f[i];
      return ~v;
    }
    case GateOp::kXor:
      return f[0] ^ f[1];
    case GateOp::kXnor:
      return ~(f[0] ^ f[1]);
    case GateOp::kMux:
      return (f[0] & f[2]) | (~f[0] & f[1]);
    case GateOp::kInput:
    case GateOp::kKeyIn:
    case GateOp::kDeleted:
      break;
  }
  assert(false && "gate op not evaluatable");
  return 0;
}

namespace {

bool ArityOk(GateOp op, size_t n) {
  switch (op) {
    case GateOp::kAnd:
    case GateOp::kNand:
    case GateOp::kOr:
    case GateOp::kNor:
      return n >= 2 && n <= 4;
    case GateOp::kXor:
    case GateOp::kXnor:
      return n == 2;
    case GateOp::kMux:
      return n == 3;
    case GateOp::kBuf:
    case GateOp::kInv:
    case GateOp::kOutput:
      return n == 1;
    default:
      return IsSourceOp(op) && n == 0;
  }
}

// Enforced unconditionally: downstream simulation kernels index fixed
// `uint64_t[kMaxFanin]` stack buffers by fanin position.
void CheckMaxFanin(size_t n) {
  if (n > kMaxFanin) {
    throw std::invalid_argument("gate fanin count " + std::to_string(n) +
                                " exceeds kMaxFanin (" +
                                std::to_string(kMaxFanin) + ")");
  }
}

}  // namespace

NetId Netlist::NewNet(std::string name, GateId driver) {
  nets_.push_back(Net{std::move(name), driver, {}});
  return static_cast<NetId>(nets_.size() - 1);
}

NetId Netlist::AddInput(std::string name) {
  const GateId g = static_cast<GateId>(gates_.size());
  gates_.push_back(Gate{GateOp::kInput, {}, kNullId, name, 0, 1});
  gates_.back().out = NewNet(std::move(name), g);
  pis_.push_back(g);
  return gates_.back().out;
}

GateId Netlist::AddOutput(NetId net, std::string name) {
  const GateId g = static_cast<GateId>(gates_.size());
  gates_.push_back(Gate{GateOp::kOutput, {net}, kNullId, std::move(name), 0, 1});
  nets_[net].sinks.push_back(Pin{g, 0});
  pos_.push_back(g);
  return g;
}

NetId Netlist::AddGate(GateOp op, std::span<const NetId> fanins,
                       std::string name) {
  CheckMaxFanin(fanins.size());
  assert(ArityOk(op, fanins.size()) && "bad gate arity");
  const GateId g = static_cast<GateId>(gates_.size());
  Gate gate;
  gate.op = op;
  gate.fanins.assign(fanins.begin(), fanins.end());
  gate.name = name;
  gates_.push_back(std::move(gate));
  for (uint32_t i = 0; i < fanins.size(); ++i) {
    nets_[fanins[i]].sinks.push_back(Pin{g, i});
  }
  if (name.empty()) name = "n" + std::to_string(nets_.size());
  gates_[g].out = NewNet(std::move(name), g);
  return gates_[g].out;
}

NetId Netlist::AddGate(GateOp op, std::initializer_list<NetId> fanins,
                       std::string name) {
  return AddGate(op, std::span<const NetId>(fanins.begin(), fanins.size()),
                 std::move(name));
}

void Netlist::DetachPin(GateId gate, uint32_t index) {
  const NetId old_net = gates_[gate].fanins[index];
  auto& sinks = nets_[old_net].sinks;
  sinks.erase(std::remove(sinks.begin(), sinks.end(), Pin{gate, index}),
              sinks.end());
}

void Netlist::ReplaceFanin(GateId gate, uint32_t index, NetId new_net) {
  DetachPin(gate, index);
  gates_[gate].fanins[index] = new_net;
  nets_[new_net].sinks.push_back(Pin{gate, index});
}

void Netlist::ReplaceAllUses(NetId old_net, NetId new_net) {
  if (old_net == new_net) return;
  // Copy: ReplaceFanin mutates the sink list we are iterating.
  const std::vector<Pin> sinks = nets_[old_net].sinks;
  for (const Pin& p : sinks) ReplaceFanin(p.gate, p.index, new_net);
}

void Netlist::DeleteGate(GateId gate) {
  Gate& g = gates_[gate];
  assert(g.out == kNullId || nets_[g.out].sinks.empty());
  for (uint32_t i = 0; i < g.fanins.size(); ++i) DetachPin(gate, i);
  g.fanins.clear();
  if (g.out != kNullId) nets_[g.out].driver = kNullId;
  g.op = GateOp::kDeleted;
  g.flags = 0;
}

void Netlist::MorphGate(GateId gate, GateOp op,
                        std::span<const NetId> fanins) {
  CheckMaxFanin(fanins.size());
  assert(ArityOk(op, fanins.size()));
  Gate& g = gates_[gate];
  for (uint32_t i = 0; i < g.fanins.size(); ++i) DetachPin(gate, i);
  g.op = op;
  g.fanins.assign(fanins.begin(), fanins.end());
  for (uint32_t i = 0; i < g.fanins.size(); ++i) {
    nets_[g.fanins[i]].sinks.push_back(Pin{gate, i});
  }
}

std::vector<GateId> Netlist::KeyInputs() const {
  std::vector<GateId> keys;
  for (GateId g = 0; g < gates_.size(); ++g) {
    if (gates_[g].op == GateOp::kKeyIn) keys.push_back(g);
  }
  return keys;
}

size_t Netlist::NumLogicGates() const {
  size_t n = 0;
  for (const Gate& g : gates_) {
    if (g.op != GateOp::kDeleted && g.op != GateOp::kInput &&
        g.op != GateOp::kOutput) {
      ++n;
    }
  }
  return n;
}

std::vector<GateId> Netlist::TopoOrder() const {
  std::vector<uint32_t> pending(gates_.size(), 0);
  std::vector<GateId> ready;
  ready.reserve(gates_.size());
  size_t live = 0;
  for (GateId g = 0; g < gates_.size(); ++g) {
    if (gates_[g].op == GateOp::kDeleted) continue;
    ++live;
    pending[g] = static_cast<uint32_t>(gates_[g].fanins.size());
    if (pending[g] == 0) ready.push_back(g);
  }
  std::vector<GateId> order;
  order.reserve(live);
  for (size_t head = 0; head < ready.size(); ++head) {
    const GateId g = ready[head];
    order.push_back(g);
    if (gates_[g].out == kNullId) continue;
    for (const Pin& p : nets_[gates_[g].out].sinks) {
      if (--pending[p.gate] == 0) ready.push_back(p.gate);
    }
  }
  assert(order.size() == live && "combinational cycle detected");
  return order;
}

Netlist Netlist::FromRawParts(std::string name, std::vector<Gate> gates,
                              std::vector<Net> nets, std::vector<GateId> pis,
                              std::vector<GateId> pos) {
  for (const Gate& g : gates) CheckMaxFanin(g.fanins.size());
  Netlist out(std::move(name));
  out.gates_ = std::move(gates);
  out.nets_ = std::move(nets);
  out.pis_ = std::move(pis);
  out.pos_ = std::move(pos);
  return out;
}

std::string Netlist::Validate() const {
  std::ostringstream err;
  for (GateId g = 0; g < gates_.size(); ++g) {
    const Gate& gate = gates_[g];
    if (gate.op == GateOp::kDeleted) continue;
    if (!ArityOk(gate.op, gate.fanins.size())) {
      err << "gate " << g << " (" << GateOpName(gate.op) << ") has "
          << gate.fanins.size() << " fanins";
      return err.str();
    }
    for (uint32_t i = 0; i < gate.fanins.size(); ++i) {
      const NetId n = gate.fanins[i];
      if (n >= nets_.size()) {
        err << "gate " << g << " fanin " << i << " references bad net";
        return err.str();
      }
      const auto& sinks = nets_[n].sinks;
      if (std::find(sinks.begin(), sinks.end(), Pin{g, i}) == sinks.end()) {
        err << "net " << n << " missing sink (gate " << g << " pin " << i
            << ")";
        return err.str();
      }
      if (nets_[n].driver == kNullId) {
        err << "net " << n << " used by gate " << g << " has no driver";
        return err.str();
      }
    }
    if (gate.op != GateOp::kOutput) {
      if (gate.out == kNullId || nets_[gate.out].driver != g) {
        err << "gate " << g << " output net inconsistent";
        return err.str();
      }
    }
  }
  for (NetId n = 0; n < nets_.size(); ++n) {
    for (const Pin& p : nets_[n].sinks) {
      if (p.gate >= gates_.size() || gates_[p.gate].op == GateOp::kDeleted ||
          p.index >= gates_[p.gate].fanins.size() ||
          gates_[p.gate].fanins[p.index] != n) {
        err << "net " << n << " has stale sink";
        return err.str();
      }
    }
  }
  return {};
}

Netlist Netlist::Compacted(std::vector<GateId>* gate_map,
                           std::vector<NetId>* net_map) const {
  Netlist out(name_);
  std::vector<GateId> gmap(gates_.size(), kNullId);
  std::vector<NetId> nmap(nets_.size(), kNullId);

  // Preserve topological constructability by emitting in topo order, except
  // primary outputs which are appended last to keep pos_ order stable.
  const std::vector<GateId> order = TopoOrder();
  for (GateId g : order) {
    const Gate& gate = gates_[g];
    if (gate.op == GateOp::kOutput) continue;
    std::vector<NetId> fanins;
    fanins.reserve(gate.fanins.size());
    for (NetId n : gate.fanins) fanins.push_back(nmap[n]);
    NetId new_out;
    if (gate.op == GateOp::kInput) {
      new_out = out.AddInput(gate.name);
    } else {
      new_out = out.AddGate(gate.op, fanins, nets_[gate.out].name);
    }
    const GateId ng = out.DriverOf(new_out);
    out.gate(ng).flags = gate.flags;
    out.gate(ng).drive = gate.drive;
    out.gate(ng).name = gate.name;
    gmap[g] = ng;
    nmap[gate.out] = new_out;
  }
  for (GateId g : pos_) {
    const Gate& gate = gates_[g];
    gmap[g] = out.AddOutput(nmap[gate.fanins[0]], gate.name);
  }
  if (gate_map != nullptr) *gate_map = std::move(gmap);
  if (net_map != nullptr) *net_map = std::move(nmap);
  return out;
}

}  // namespace splitlock
