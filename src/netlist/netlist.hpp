// Gate-level combinational netlist IR.
//
// The IR models single-output gates connected by nets. Primary inputs and
// outputs are represented as pseudo-gates (kInput / kOutput) so that every
// net has exactly one driver and traversals are uniform. Sequential designs
// (ITC'99) enter the library as FF-cut combinational cores: flip-flop
// outputs become primary inputs, flip-flop inputs become primary outputs,
// which is the standard reduction used by the split-manufacturing security
// literature this library reproduces.
#pragma once

#include <cstdint>
#include <limits>
#include <span>
#include <string>
#include <vector>

namespace splitlock {

using GateId = uint32_t;
using NetId = uint32_t;
inline constexpr uint32_t kNullId = std::numeric_limits<uint32_t>::max();

// Hard upper bound on gate fanin count. Hot simulation loops (sim/simulator,
// atpg/fault_sim, atpg/cube) size fixed stack buffers `uint64_t[kMaxFanin]`
// from this; Netlist::AddGate / MorphGate enforce it unconditionally (even in
// Release builds, where asserts vanish) so an oversized gate fails loudly at
// construction instead of corrupting those stacks.
inline constexpr size_t kMaxFanin = 4;

// Boolean function of a gate. AND/NAND/OR/NOR accept 2..4 fanins; the rest
// have fixed arity. kKeyIn is a key-bit source: it behaves like an input
// during analysis (its value comes from a key assignment) and is implemented
// as a TIEHI/TIELO cell during layout. kDeleted marks dead gates awaiting
// compaction.
enum class GateOp : uint8_t {
  kInput,
  kOutput,
  kConst0,
  kConst1,
  kTieHi,
  kTieLo,
  kKeyIn,
  kBuf,
  kInv,
  kAnd,
  kNand,
  kOr,
  kNor,
  kXor,
  kXnor,
  kMux,  // fanins = {sel, a, b}; out = sel ? b : a
  kDeleted,
};

const char* GateOpName(GateOp op);

// True for ops that take no fanins (value sources).
bool IsSourceOp(GateOp op);

// Evaluate a gate function over 64 parallel patterns.
uint64_t EvalGateWord(GateOp op, std::span<const uint64_t> fanins);

// Gate flags used by the secure flow.
inline constexpr uint16_t kFlagDontTouch = 1u << 0;  // set_dont_touch
inline constexpr uint16_t kFlagKeyGate = 1u << 1;    // consumes a key bit
inline constexpr uint16_t kFlagRestore = 1u << 2;    // part of restore logic
inline constexpr uint16_t kFlagTie = 1u << 3;        // TIE cell instance

// lint:result-schema(v4) encoded by store/artifact_io EncodeNetlist — a
// result-affecting change here needs a kResultSchemaVersion bump.
struct Gate {
  GateOp op = GateOp::kDeleted;
  std::vector<NetId> fanins;
  NetId out = kNullId;  // kNullId for kOutput gates
  std::string name;
  uint16_t flags = 0;
  uint8_t drive = 1;  // drive strength: 1, 2, or 4 (X1/X2/X4)

  bool HasFlag(uint16_t f) const { return (flags & f) != 0; }
};

// A (gate, fanin-index) pair identifying one input pin connection.
// lint:result-schema(v4) encoded by store/artifact_io (net sinks, route
// sink pins) — a result-affecting change here needs a version bump.
struct Pin {
  GateId gate = kNullId;
  uint32_t index = 0;

  friend bool operator==(const Pin& a, const Pin& b) {
    return a.gate == b.gate && a.index == b.index;
  }
};

// lint:result-schema(v4) encoded by store/artifact_io EncodeNetlist — a
// result-affecting change here needs a kResultSchemaVersion bump.
struct Net {
  std::string name;
  GateId driver = kNullId;
  std::vector<Pin> sinks;
};

// Mutable gate-level netlist. Gates and nets are referenced by dense ids;
// deleting a gate marks it kDeleted (ids stay stable) and Compacted() builds
// a renumbered copy.
// lint:result-schema(v4) encoded by store/artifact_io EncodeNetlist /
// rebuilt by FromRawParts — a result-affecting change (ids, ordering,
// serialized fields) needs a kResultSchemaVersion bump.
class Netlist {
 public:
  Netlist() = default;
  explicit Netlist(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }
  void set_name(std::string n) { name_ = std::move(n); }

  // --- Construction -------------------------------------------------------

  // Adds a primary input; returns the net it drives.
  NetId AddInput(std::string name);

  // Adds a primary output observing `net`.
  GateId AddOutput(NetId net, std::string name);

  // Adds a logic gate; returns the net it drives. `fanins` arity must match
  // the op (2..4 for AND/NAND/OR/NOR, 2 for XOR/XNOR, 3 for MUX, 1 for
  // BUF/INV, 0 for sources).
  NetId AddGate(GateOp op, std::span<const NetId> fanins,
                std::string name = {});
  NetId AddGate(GateOp op, std::initializer_list<NetId> fanins,
                std::string name = {});

  // Returns the id of the gate driving `net`.
  GateId DriverOf(NetId net) const { return nets_[net].driver; }

  // Rewires fanin pin `index` of `gate` to `new_net`, updating sink lists.
  void ReplaceFanin(GateId gate, uint32_t index, NetId new_net);

  // Redirects every sink of `old_net` (including primary outputs) to
  // `new_net`. `old_net`'s sink list becomes empty.
  void ReplaceAllUses(NetId old_net, NetId new_net);

  // Marks a gate deleted and detaches its pins. The gate must have no
  // remaining sinks on its output net.
  void DeleteGate(GateId gate);

  // Rewrites a gate in place to a new op/fanin list (keeping its output
  // net), e.g. AND(a, 1, b) -> AND(a, b) during constant propagation.
  void MorphGate(GateId gate, GateOp op, std::span<const NetId> fanins);

  // --- Access -------------------------------------------------------------

  size_t NumGates() const { return gates_.size(); }
  size_t NumNets() const { return nets_.size(); }
  const Gate& gate(GateId id) const { return gates_[id]; }
  Gate& gate(GateId id) { return gates_[id]; }
  const Net& net(NetId id) const { return nets_[id]; }
  Net& net(NetId id) { return nets_[id]; }

  const std::vector<GateId>& inputs() const { return pis_; }
  const std::vector<GateId>& outputs() const { return pos_; }

  // Ids of all kKeyIn gates, in insertion order (key-bit order).
  std::vector<GateId> KeyInputs() const;

  // Number of live gates excluding kInput/kOutput pseudo-gates.
  size_t NumLogicGates() const;

  // --- Analysis -----------------------------------------------------------

  // Topological order over live gates (sources first, outputs last).
  // Asserts on combinational cycles.
  std::vector<GateId> TopoOrder() const;

  // Structural sanity check; returns an empty string when consistent, else
  // a description of the first violation found.
  std::string Validate() const;

  // Renumbered copy without kDeleted gates and unused nets. `gate_map` /
  // `net_map` (optional) receive old-id -> new-id mappings (kNullId if
  // dropped).
  Netlist Compacted(std::vector<GateId>* gate_map = nullptr,
                    std::vector<NetId>* net_map = nullptr) const;

  // Reassembles a netlist from raw component vectors — the deserialization
  // path of store/artifact_io, which reads the components back through the
  // public accessors above. The parts must already be mutually consistent
  // (sink lists matching fanins, drivers matching outs); callers gate
  // acceptance on Validate(), which checks exactly that.
  static Netlist FromRawParts(std::string name, std::vector<Gate> gates,
                              std::vector<Net> nets, std::vector<GateId> pis,
                              std::vector<GateId> pos);

 private:
  NetId NewNet(std::string name, GateId driver);
  void DetachPin(GateId gate, uint32_t index);

  std::string name_;
  std::vector<Gate> gates_;
  std::vector<Net> nets_;
  std::vector<GateId> pis_;
  std::vector<GateId> pos_;
};

}  // namespace splitlock
