// Monotonic timestamp shim for the observability layer.
//
// The determinism contract routes all *duration* measurement through
// util/stopwatch.hpp; trace spans additionally need absolute monotonic
// timestamps (Chrome trace events are (ts, dur) pairs on a shared
// timeline, not isolated durations). This header is the only other file
// allowed to touch <chrono> directly — the splitlock_lint wall-clock
// rule allowlists exactly util/stopwatch.hpp and this shim.
//
// Timestamps are non-canonical by construction: nothing derived from
// MonotonicMicros() may reach a result, a canonical record, or a
// count-class metric. They exist solely for trace export.
#pragma once

#include <chrono>
#include <cstdint>

namespace splitlock::obs {

// Microseconds on the steady (monotonic) clock. The epoch is arbitrary
// but fixed for the process lifetime, so differences between two calls
// are real elapsed time and events from different threads share one
// timeline.
inline uint64_t MonotonicMicros() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace splitlock::obs
