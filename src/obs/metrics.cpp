#include "obs/metrics.hpp"

#include <cstdio>
#include <stdexcept>

namespace splitlock::obs {

namespace {

std::string U64(uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%llu", static_cast<unsigned long long>(v));
  return buf;
}

// Round-trip-exact double formatting, matching store::CanonicalDouble
// (inlined: obs must not depend on store — store depends on obs).
std::string Dbl(double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

std::string Quoted(const std::string& s) {
  // Metric names are `layer.subsystem.metric` identifiers; nothing to
  // escape, but keep the quoting in one place.
  return "\"" + s + "\"";
}

void AppendHistogram(std::string* out, const HistogramSnapshot& h) {
  *out += "{\"edges\":[";
  for (size_t i = 0; i < h.edges.size(); ++i) {
    if (i) *out += ',';
    *out += U64(h.edges[i]);
  }
  *out += "],\"buckets\":[";
  for (size_t i = 0; i < h.buckets.size(); ++i) {
    if (i) *out += ',';
    *out += U64(h.buckets[i]);
  }
  *out += "],\"total\":" + U64(h.total) + ",\"sum\":" + U64(h.sum) + "}";
}

}  // namespace

// --- Histogram --------------------------------------------------------------

Histogram::Histogram(std::vector<uint64_t> edges) : edges_(std::move(edges)) {
  if (edges_.empty()) {
    throw std::logic_error("obs: histogram needs at least one bucket edge");
  }
  for (size_t i = 1; i < edges_.size(); ++i) {
    if (edges_[i] <= edges_[i - 1]) {
      throw std::logic_error("obs: histogram edges must strictly increase");
    }
  }
  buckets_ = std::make_unique<std::atomic<uint64_t>[]>(edges_.size() + 1);
  for (size_t i = 0; i <= edges_.size(); ++i) buckets_[i].store(0);
}

void Histogram::Observe(uint64_t v) { ObserveN(v, 1); }

void Histogram::ObserveN(uint64_t v, uint64_t n) {
  if (n == 0) return;
  size_t i = 0;
  while (i < edges_.size() && v > edges_[i]) ++i;
  buckets_[i].fetch_add(n, std::memory_order_relaxed);
  total_.fetch_add(n, std::memory_order_relaxed);
  sum_.fetch_add(v * n, std::memory_order_relaxed);
}

std::vector<uint64_t> Histogram::BucketCounts() const {
  std::vector<uint64_t> out(edges_.size() + 1);
  for (size_t i = 0; i < out.size(); ++i) {
    out[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  return out;
}

// --- Registry ---------------------------------------------------------------

void Registry::CheckFresh(const std::string& name) const {
  if (entries_.count(name)) {
    throw std::logic_error("obs: metric '" + name + "' registered twice");
  }
}

Counter* Registry::RegisterCounter(const std::string& name, MetricClass cls) {
  if (cls == MetricClass::kTime) {
    throw std::logic_error("obs: counter '" + name +
                           "' cannot be time-class; use RegisterTime");
  }
  std::lock_guard<std::mutex> lock(mu_);
  CheckFresh(name);
  Entry& e = entries_[name];
  e.kind = Kind::kCounter;
  e.cls = cls;
  e.counter = std::make_unique<Counter>();
  return e.counter.get();
}

Gauge* Registry::RegisterGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  CheckFresh(name);
  Entry& e = entries_[name];
  e.kind = Kind::kGauge;
  e.cls = MetricClass::kSched;
  e.gauge = std::make_unique<Gauge>();
  return e.gauge.get();
}

Histogram* Registry::RegisterHistogram(const std::string& name,
                                       std::vector<uint64_t> edges) {
  std::lock_guard<std::mutex> lock(mu_);
  CheckFresh(name);
  Entry& e = entries_[name];
  e.kind = Kind::kHistogram;
  e.cls = MetricClass::kCount;
  e.histogram = std::make_unique<Histogram>(std::move(edges));
  return e.histogram.get();
}

TimeMetric* Registry::RegisterTime(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  CheckFresh(name);
  Entry& e = entries_[name];
  e.kind = Kind::kTime;
  e.cls = MetricClass::kTime;
  e.time = std::make_unique<TimeMetric>();
  return e.time.get();
}

MetricsSnapshot Registry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  MetricsSnapshot snap;
  for (const auto& [name, e] : entries_) {
    switch (e.kind) {
      case Kind::kCounter:
        (e.cls == MetricClass::kCount ? snap.counts : snap.sched)[name] =
            e.counter->Value();
        break;
      case Kind::kGauge:
        snap.sched[name] = e.gauge->HighWater();
        break;
      case Kind::kHistogram: {
        HistogramSnapshot h;
        h.edges = e.histogram->edges();
        h.buckets = e.histogram->BucketCounts();
        h.total = e.histogram->Total();
        h.sum = e.histogram->Sum();
        snap.histograms[name] = std::move(h);
        break;
      }
      case Kind::kTime:
        snap.times[name] = e.time->Seconds();
        break;
    }
  }
  return snap;
}

Registry& Registry::Instance() {
  static Registry* instance = new Registry();  // never destroyed
  return *instance;
}

// --- MetricsSnapshot --------------------------------------------------------

std::string MetricsSnapshot::CountsJson() const {
  std::string out = "{\"counts\":{";
  bool first = true;
  for (const auto& [name, v] : counts) {
    if (!first) out += ',';
    first = false;
    out += Quoted(name) + ":" + U64(v);
  }
  out += "},\"histograms\":{";
  first = true;
  for (const auto& [name, h] : histograms) {
    if (!first) out += ',';
    first = false;
    out += Quoted(name) + ":";
    AppendHistogram(&out, h);
  }
  out += "}}";
  return out;
}

std::string MetricsSnapshot::ToJson() const {
  // Reuse CountsJson for the deterministic half so the two emitters can
  // never drift, then splice the sched/times sections in.
  std::string out = CountsJson();
  out.pop_back();  // trailing '}'
  out += ",\"sched\":{";
  bool first = true;
  for (const auto& [name, v] : sched) {
    if (!first) out += ',';
    first = false;
    out += Quoted(name) + ":" + U64(v);
  }
  out += "},\"times\":{";
  first = true;
  for (const auto& [name, v] : times) {
    if (!first) out += ',';
    first = false;
    out += Quoted(name) + ":" + Dbl(v);
  }
  out += "}}";
  return out;
}

std::string MetricsSnapshot::FlatCountsJson(const std::string& prefix) const {
  std::string out = "{";
  bool first = true;
  auto append = [&](const std::string& name, const std::string& value) {
    if (!first) out += ',';
    first = false;
    out += Quoted(name) + ":" + value;
  };
  for (const auto& [name, v] : counts) {
    if (name.rfind(prefix, 0) == 0) append(name, U64(v));
  }
  for (const auto& [name, h] : histograms) {
    if (name.rfind(prefix, 0) != 0) continue;
    append(name + ".total", U64(h.total));
    append(name + ".sum", U64(h.sum));
  }
  out += '}';
  return out;
}

MetricsSnapshot MetricsSnapshot::Delta(const MetricsSnapshot& before,
                                       const MetricsSnapshot& after) {
  MetricsSnapshot d;
  auto sub = [](uint64_t a, uint64_t b) { return a >= b ? a - b : 0; };
  for (const auto& [name, v] : after.counts) {
    auto it = before.counts.find(name);
    d.counts[name] = sub(v, it == before.counts.end() ? 0 : it->second);
  }
  for (const auto& [name, v] : after.sched) {
    auto it = before.sched.find(name);
    d.sched[name] = sub(v, it == before.sched.end() ? 0 : it->second);
  }
  for (const auto& [name, v] : after.times) {
    auto it = before.times.find(name);
    d.times[name] = v - (it == before.times.end() ? 0.0 : it->second);
  }
  for (const auto& [name, h] : after.histograms) {
    HistogramSnapshot dh = h;
    auto it = before.histograms.find(name);
    if (it != before.histograms.end() && it->second.edges == h.edges) {
      for (size_t i = 0; i < dh.buckets.size(); ++i) {
        dh.buckets[i] = sub(dh.buckets[i], it->second.buckets[i]);
      }
      dh.total = sub(dh.total, it->second.total);
      dh.sum = sub(dh.sum, it->second.sum);
    }
    d.histograms[name] = std::move(dh);
  }
  return d;
}

std::vector<uint64_t> Pow2Edges(uint64_t lo, uint64_t hi) {
  if (lo == 0 || lo > hi) {
    throw std::logic_error("obs: Pow2Edges needs 0 < lo <= hi");
  }
  std::vector<uint64_t> edges;
  for (uint64_t e = lo;; e *= 2) {
    edges.push_back(e);
    if (e >= hi || e > hi / 2) break;  // e*2 would overflow or pass hi
  }
  if (edges.back() < hi) edges.push_back(hi);
  return edges;
}

}  // namespace splitlock::obs
