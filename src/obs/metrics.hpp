// Process-wide metrics registry: named counters, gauges, histograms and
// time accumulators with deterministic registration and an ordered
// snapshot/export API.
//
// Why a registry instead of the scattered ad-hoc telemetry it replaces
// (StageTimes in core/flow, SatRoundTelemetry in attack/sat_attack,
// StoreStats in store): the campaign-service direction needs one place
// to ask "what did this run spend, per subsystem", and tests need one
// place to assert that instrumentation never perturbs results. Those
// structs still exist where they are part of an API; their values are
// now *also* mirrored into the registry so every consumer (CLI
// --metrics, bench JSON records, CI artifacts) sees the same shape.
//
// Determinism classes. Every metric carries a MetricClass and snapshots
// keep the classes segregated, because they have different contracts:
//
//   kCount  Deterministic counts: pure functions of the workload, bit-
//           identical at any thread count / shard count / store
//           temperature-for-a-fixed-disk-state. Examples: tasks run
//           (chunk counts come from exec::NumChunks, which ignores the
//           worker count), SAT rounds, DIPs, fault-sweep tiles, store
//           hits. tests/test_obs.cpp asserts bit-identity of this class
//           at SPLITLOCK_THREADS=1/2/8.
//   kSched  Scheduling-dependent counts: honest integers, but functions
//           of the actual interleaving (steals, queue-depth high-water).
//           Never asserted for identity, never canonical.
//   kTime   Wall-clock accumulators (seconds). Non-canonical by the
//           same rule as every other timing in the repo.
//
// Histograms are always count-class: they bucket deterministic integer
// values (bytes, batch widths), not durations.
//
// Naming convention: `layer.subsystem.metric`, e.g. exec.pool.tasks_run,
// attack.sat.rounds, store.artifact.bytes_written. Registration of a
// duplicate name is a hard std::logic_error — two call sites silently
// sharing (or shadowing) a counter is a bug, and tools/lint's
// obs-metric-once rule audits the same invariant statically.
//
// Thread safety: registration takes the registry mutex (call sites use
// function-local statics, so it happens once); updates on the returned
// handles are lock-free relaxed atomics. Handles are owned by the
// registry and live for the process lifetime — never freed, safe to
// cache in statics.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace splitlock::obs {

enum class MetricClass {
  kCount,  // deterministic: bit-identical at any thread count
  kSched,  // scheduling-dependent count (steals, queue depths)
  kTime,   // wall-clock seconds (non-canonical)
};

// Monotonic integer counter. Relaxed atomics: metric totals need no
// ordering with respect to the work they count.
//
// Sub() is the one sanctioned exception to monotonicity: it exists so an
// already-counted event can be *reclassified* after the fact (the store's
// NoteArtifactCorrupt moves an envelope-level artifact hit to corrupt-miss
// once the payload fails to decode), keeping the obs mirror equal to the
// per-instance stats it shadows. Callers may only subtract events they
// previously added on the same counter, so totals never go negative.
class Counter {
 public:
  void Add(uint64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  void Sub(uint64_t n = 1) { value_.fetch_sub(n, std::memory_order_relaxed); }
  uint64_t Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

// Last-set value plus a monotonic high-water mark. Gauges are always
// sched-class: an instantaneous level (queue depth) is a fact about the
// interleaving, not the workload. Snapshots export the high-water mark —
// for admission-control sizing the peak is the useful number.
class Gauge {
 public:
  void Set(uint64_t v) {
    value_.store(v, std::memory_order_relaxed);
    RaiseTo(v);
  }
  // Raise the high-water mark without touching the last-set value.
  void RaiseTo(uint64_t v) {
    uint64_t cur = high_.load(std::memory_order_relaxed);
    while (v > cur &&
           !high_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }
  uint64_t Value() const { return value_.load(std::memory_order_relaxed); }
  uint64_t HighWater() const { return high_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
  std::atomic<uint64_t> high_{0};
};

// Fixed-bucket histogram over uint64 values. Bucket i counts values
// v <= edges[i] (first matching edge); the final overflow bucket counts
// values beyond the last edge. Edges are fixed at registration so every
// process bucketing the same values produces the same vector — snapshots
// of count-class histograms are part of the bit-identity contract.
class Histogram {
 public:
  explicit Histogram(std::vector<uint64_t> edges);

  void Observe(uint64_t v);
  // Observe the same value `n` times (batch totals).
  void ObserveN(uint64_t v, uint64_t n);

  const std::vector<uint64_t>& edges() const { return edges_; }
  uint64_t Total() const { return total_.load(std::memory_order_relaxed); }
  uint64_t Sum() const { return sum_.load(std::memory_order_relaxed); }
  std::vector<uint64_t> BucketCounts() const;

 private:
  std::vector<uint64_t> edges_;  // strictly increasing, fixed
  std::unique_ptr<std::atomic<uint64_t>[]> buckets_;  // edges_.size() + 1
  std::atomic<uint64_t> total_{0};
  std::atomic<uint64_t> sum_{0};
};

// Wall-clock accumulator. Stores integer microseconds internally so
// concurrent adds are a single fetch_add (no CAS loop over doubles);
// exported as seconds. Feed it from util/stopwatch.hpp measurements.
class TimeMetric {
 public:
  void AddSeconds(double s) {
    if (s <= 0.0) return;
    micros_.fetch_add(static_cast<uint64_t>(s * 1e6 + 0.5),
                      std::memory_order_relaxed);
  }
  double Seconds() const {
    return static_cast<double>(micros_.load(std::memory_order_relaxed)) * 1e-6;
  }

 private:
  std::atomic<uint64_t> micros_{0};
};

struct HistogramSnapshot {
  std::vector<uint64_t> edges;
  std::vector<uint64_t> buckets;  // edges.size() + 1 (overflow last)
  uint64_t total = 0;
  uint64_t sum = 0;

  bool operator==(const HistogramSnapshot&) const = default;
};

// Point-in-time copy of the registry, segregated by class. std::map
// keys give the ordered (name-sorted) export the issue requires; the
// JSON emitters below iterate maps directly so output order is a pure
// function of the metric names.
struct MetricsSnapshot {
  std::map<std::string, uint64_t> counts;               // kCount counters
  std::map<std::string, HistogramSnapshot> histograms;  // count-class
  std::map<std::string, uint64_t> sched;  // kSched counters + gauge HWMs
  std::map<std::string, double> times;    // kTime, seconds

  // Full snapshot as one JSON object:
  //   {"counts":{...},"histograms":{...},"sched":{...},"times":{...}}
  // Key order inside each section is name order (std::map); doubles use
  // store::CanonicalDouble-compatible %.17g formatting.
  std::string ToJson() const;
  // Only the deterministic sections (counts + histograms) — the part of
  // the snapshot the bit-identity tests compare as strings.
  std::string CountsJson() const;
  // Counts + histograms restricted to names starting with `prefix`, as
  // a flat JSON object {"name":value,...} (histograms contribute
  // "<name>.total" and "<name>.sum"). Used by `--store-stats` so the CLI
  // and bench records derive the same stats shape from one source.
  std::string FlatCountsJson(const std::string& prefix) const;

  // after - before, per name (names absent from `before` read as zero).
  // Histogram deltas subtract bucket-wise; edges must match. Lets tests
  // assert on the increments one workload caused even though the global
  // registry accumulates for the process lifetime.
  static MetricsSnapshot Delta(const MetricsSnapshot& before,
                               const MetricsSnapshot& after);
};

class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  // All Register* calls throw std::logic_error on a duplicate name (even
  // across kinds: a counter and a gauge may not share a name). Returned
  // pointers are valid for the registry's lifetime.
  Counter* RegisterCounter(const std::string& name,
                           MetricClass cls = MetricClass::kCount);
  Gauge* RegisterGauge(const std::string& name);
  Histogram* RegisterHistogram(const std::string& name,
                               std::vector<uint64_t> edges);
  TimeMetric* RegisterTime(const std::string& name);

  MetricsSnapshot Snapshot() const;

  // The process-wide registry every production call site uses. Tests
  // that need isolation (duplicate-name behaviour, ordering) construct
  // their own Registry instead.
  static Registry& Instance();

 private:
  enum class Kind { kCounter, kGauge, kHistogram, kTime };
  struct Entry {
    Kind kind;
    MetricClass cls;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
    std::unique_ptr<TimeMetric> time;
  };

  void CheckFresh(const std::string& name) const;  // mu_ held

  mutable std::mutex mu_;
  std::map<std::string, Entry> entries_;
};

// Geometric bucket edges for byte/width histograms: lo, lo*2, ..., hi
// (inclusive). lo must be nonzero and <= hi.
std::vector<uint64_t> Pow2Edges(uint64_t lo, uint64_t hi);

}  // namespace splitlock::obs
