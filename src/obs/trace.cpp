#include "obs/trace.hpp"

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <vector>

#include "obs/clock.hpp"

namespace splitlock::obs {

namespace {

struct TraceEvent {
  const char* name;
  uint64_t start_us;
  uint64_t dur_us;
  uint64_t arg;
  bool has_arg;
};

// One per recording thread. Owned (shared_ptr) by the global registry
// below and referenced by a thread_local, so events survive the thread:
// exec::SetDefaultThreadCount replaces pool workers mid-process, and a
// trace spanning that still exports the dead workers' events.
struct ThreadBuffer {
  std::mutex mu;
  uint64_t tid = 0;
  std::string name;
  uint64_t epoch = 0;  // Start() generation the events belong to
  std::vector<TraceEvent> events;
};

struct BufferRegistry {
  std::mutex mu;
  std::vector<std::shared_ptr<ThreadBuffer>> buffers;
  uint64_t next_tid = 1;
  uint64_t epoch = 0;  // bumped by Start(); stale-epoch events are dropped
};

BufferRegistry& Buffers() {
  static BufferRegistry* r = new BufferRegistry();  // never destroyed
  return *r;
}

ThreadBuffer& LocalBuffer() {
  thread_local std::shared_ptr<ThreadBuffer> local = [] {
    auto buf = std::make_shared<ThreadBuffer>();
    BufferRegistry& reg = Buffers();
    std::lock_guard<std::mutex> lock(reg.mu);
    buf->tid = reg.next_tid++;
    buf->name = "thread." + std::to_string(buf->tid);
    buf->epoch = reg.epoch;
    reg.buffers.push_back(buf);
    return buf;
  }();
  return *local;
}

void AppendJsonString(std::string* out, const std::string& s) {
  out->push_back('"');
  for (char c : s) {
    switch (c) {
      case '"': *out += "\\\""; break;
      case '\\': *out += "\\\\"; break;
      case '\n': *out += "\\n"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

}  // namespace

void Tracer::Start(std::string path) {
  BufferRegistry& reg = Buffers();
  {
    std::lock_guard<std::mutex> lock(reg.mu);
    ++reg.epoch;
    for (auto& buf : reg.buffers) {
      std::lock_guard<std::mutex> blk(buf->mu);
      buf->events.clear();
      buf->epoch = reg.epoch;
    }
  }
  {
    std::lock_guard<std::mutex> lock(path_mu_);
    path_ = std::move(path);
  }
  enabled_.store(true, std::memory_order_relaxed);
}

bool Tracer::ExportAndStop() {
  if (!enabled_.load(std::memory_order_relaxed)) return false;
  enabled_.store(false, std::memory_order_relaxed);

  std::string path;
  {
    std::lock_guard<std::mutex> lock(path_mu_);
    path = path_;
  }

  // Snapshot every buffer under its own lock. Spans still open at this
  // point will append to buffers after the snapshot; they belong to no
  // export and are discarded by the next Start().
  struct Track {
    uint64_t tid;
    std::string name;
    std::vector<TraceEvent> events;
  };
  std::vector<Track> tracks;
  uint64_t epoch = 0;
  {
    BufferRegistry& reg = Buffers();
    std::lock_guard<std::mutex> lock(reg.mu);
    epoch = reg.epoch;
    for (auto& buf : reg.buffers) {
      std::lock_guard<std::mutex> blk(buf->mu);
      if (buf->epoch != epoch) continue;
      tracks.push_back({buf->tid, buf->name, buf->events});
      buf->events.clear();
    }
  }

  std::string out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  char buf[160];
  for (const Track& t : tracks) {
    if (!first) out += ',';
    first = false;
    // Metadata event naming the thread track.
    out += "{\"ph\":\"M\",\"pid\":1,\"tid\":";
    out += std::to_string(t.tid);
    out += ",\"name\":\"thread_name\",\"args\":{\"name\":";
    AppendJsonString(&out, t.name);
    out += "}}";
    for (const TraceEvent& e : t.events) {
      std::snprintf(buf, sizeof(buf),
                    ",{\"ph\":\"X\",\"pid\":1,\"tid\":%llu,\"ts\":%llu,"
                    "\"dur\":%llu,\"name\":",
                    static_cast<unsigned long long>(t.tid),
                    static_cast<unsigned long long>(e.start_us),
                    static_cast<unsigned long long>(e.dur_us));
      out += buf;
      AppendJsonString(&out, e.name);
      if (e.has_arg) {
        std::snprintf(buf, sizeof(buf), ",\"args\":{\"v\":%llu}",
                      static_cast<unsigned long long>(e.arg));
        out += buf;
      }
      out += '}';
    }
  }
  out += "]}\n";

  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (!f) return false;
  const bool wrote = std::fwrite(out.data(), 1, out.size(), f) == out.size();
  return (std::fclose(f) == 0) && wrote;
}

void Tracer::InitFromEnv() {
  const char* path = std::getenv("SPLITLOCK_TRACE");
  if (path && *path) Start(path);
}

void Tracer::RegisterCurrentThread(std::string name) {
  ThreadBuffer& buf = LocalBuffer();
  std::lock_guard<std::mutex> lock(buf.mu);
  buf.name = std::move(name);
}

Tracer& Tracer::Instance() {
  static Tracer* instance = new Tracer();  // never destroyed
  return *instance;
}

// --- Span -------------------------------------------------------------------

Span::Span(const char* name) {
  if (!Tracer::Instance().enabled()) return;
  name_ = name;
  start_us_ = MonotonicMicros();
}

Span::Span(const char* name, uint64_t arg) : Span(name) {
  if (name_) {
    arg_ = arg;
    has_arg_ = true;
  }
}

Span::~Span() {
  if (!name_) return;
  const uint64_t end_us = MonotonicMicros();
  ThreadBuffer& buf = LocalBuffer();
  std::lock_guard<std::mutex> lock(buf.mu);
  buf.events.push_back(
      {name_, start_us_, end_us - start_us_, arg_, has_arg_});
}

}  // namespace splitlock::obs
