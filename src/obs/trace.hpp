// Scoped trace spans with per-thread buffers, exported as Chrome
// trace-event JSON (loadable in chrome://tracing or Perfetto).
//
// Design constraints, in order:
//   1. Near-zero cost when disabled. Span's constructor reads one
//      relaxed atomic flag and does nothing else; no allocation, no
//      clock read, no branch in the destructor beyond a null check.
//      Tracing is off unless `--trace FILE` / SPLITLOCK_TRACE enables
//      it, so the canonical paths pay one load per candidate span.
//   2. Never perturb results. Spans observe; they carry no data into
//      the computation. tests/test_obs.cpp asserts canonical campaign
//      records are byte-identical with tracing on vs. off.
//   3. Survive pool reconfiguration. Buffers are owned by a global
//      registry via shared_ptr and merely *referenced* thread-locally,
//      so events recorded by a worker are still exportable after
//      exec::SetDefaultThreadCount tears that worker down mid-trace.
//
// Span names must be string literals (or otherwise outlive the trace):
// buffers store the pointer, not a copy — recording a span is a clock
// read plus a vector push under an uncontended per-thread mutex.
//
// Nesting needs no explicit bookkeeping: Chrome "complete" events
// (ph:"X") nest by (ts, dur) containment per thread track, so a Span
// inside a Span renders as a child slice.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>

namespace splitlock::obs {

// Process-wide trace collector. All methods are thread-safe.
class Tracer {
 public:
  // Begins collecting into fresh buffers; the export path is remembered
  // until ExportAndStop. Re-Start discards any un-exported events.
  void Start(std::string path);
  // Stops collection, writes the Chrome trace-event JSON to the path
  // given to Start, clears the buffers. False on I/O failure or when
  // tracing was never started.
  bool ExportAndStop();
  // Honors SPLITLOCK_TRACE=<file>: equivalent to Start(file) when the
  // variable is set and non-empty.
  void InitFromEnv();

  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  // Names the calling thread's track in the export (e.g. "main",
  // "exec.worker.3"). Threads that record spans without registering get
  // an automatic "thread.N" name. Safe to call repeatedly; the latest
  // name wins. Cheap enough to call unconditionally at thread start.
  void RegisterCurrentThread(std::string name);

  static Tracer& Instance();

 private:
  std::atomic<bool> enabled_{false};
  // Buffer bookkeeping lives in trace.cpp (file-local registry); the
  // Tracer object itself only carries the flag and the export path.
  friend class Span;
  std::string path_;
  std::mutex path_mu_;
};

// RAII trace span: records [construction, destruction) as one complete
// event on the calling thread's track. When tracing is disabled at
// construction the span is inert (name_ stays null) — a span that
// straddles ExportAndStop records into the dead buffer and is dropped
// with it, never torn.
class Span {
 public:
  explicit Span(const char* name);
  // With one integer argument, exported as args:{"v":arg} — round
  // indices, tile ids, batch widths.
  Span(const char* name, uint64_t arg);
  ~Span();
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  const char* name_ = nullptr;  // null => disabled at construction
  uint64_t start_us_ = 0;
  uint64_t arg_ = 0;
  bool has_arg_ = false;
};

}  // namespace splitlock::obs
