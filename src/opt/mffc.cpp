#include "opt/mffc.hpp"

#include <unordered_map>

#include "netlist/libcell.hpp"

namespace splitlock {
namespace {

bool ConeEligible(const Gate& g) {
  if (g.HasFlag(kFlagDontTouch)) return false;
  switch (g.op) {
    case GateOp::kInput:
    case GateOp::kOutput:
    case GateOp::kKeyIn:
    case GateOp::kTieHi:
    case GateOp::kTieLo:
    case GateOp::kConst0:
    case GateOp::kConst1:
    case GateOp::kDeleted:
      return false;
    default:
      return true;
  }
}

}  // namespace

std::vector<GateId> MffcOf(const Netlist& nl, GateId root) {
  if (!ConeEligible(nl.gate(root))) return {};

  // Virtually dereference the root; any gate whose remaining fanout count
  // reaches zero joins the cone, recursively.
  std::unordered_map<GateId, size_t> remaining;
  std::vector<GateId> cone;
  std::vector<GateId> stack{root};
  std::unordered_map<GateId, bool> in_cone;
  in_cone[root] = true;
  while (!stack.empty()) {
    const GateId g = stack.back();
    stack.pop_back();
    cone.push_back(g);
    for (NetId n : nl.gate(g).fanins) {
      const GateId d = nl.DriverOf(n);
      if (d == kNullId || !ConeEligible(nl.gate(d))) continue;
      if (in_cone.count(d) != 0) continue;
      auto it = remaining.find(d);
      if (it == remaining.end()) {
        // Count distinct sink *pins* of the driver's output net; multiple
        // pins into the same cone gate still all have to be accounted for.
        it = remaining.emplace(d, nl.net(nl.gate(d).out).sinks.size()).first;
      }
      if (--it->second == 0) {
        in_cone[d] = true;
        stack.push_back(d);
      }
    }
  }
  return cone;
}

double AreaOfGates(const Netlist& nl, const std::vector<GateId>& gates) {
  double area = 0.0;
  for (GateId g : gates) {
    const Gate& gate = nl.gate(g);
    if (IsPhysicalOp(gate.op)) area += CellFor(gate).AreaUm2();
  }
  return area;
}

}  // namespace splitlock
