// Maximum fanout-free cone (MFFC) computation.
//
// The MFFC of a gate g is the set of gates all of whose fanout paths pass
// through g; deleting g lets the whole cone be swept away. The ATPG-based
// locking stage selects stuck-at faults at roots of large MFFCs: tying the
// root to a constant removes the entire cone during re-synthesis, which is
// where the paper's area savings come from.
#pragma once

#include <vector>

#include "netlist/netlist.hpp"

namespace splitlock {

// Gates in the MFFC of `root` (included), in no particular order. Source
// gates (inputs, key inputs, TIE/const cells) and don't-touch gates are
// never part of a cone.
std::vector<GateId> MffcOf(const Netlist& nl, GateId root);

// Total standard-cell area of the given gates, in um^2.
double AreaOfGates(const Netlist& nl, const std::vector<GateId>& gates);

}  // namespace splitlock
