#include "opt/optimizer.hpp"

#include <algorithm>
#include <array>
#include <cassert>
#include <map>
#include <optional>
#include <vector>

namespace splitlock {
namespace {

bool IsLogicOp(GateOp op) {
  switch (op) {
    case GateOp::kBuf:
    case GateOp::kInv:
    case GateOp::kAnd:
    case GateOp::kNand:
    case GateOp::kOr:
    case GateOp::kNor:
    case GateOp::kXor:
    case GateOp::kXnor:
    case GateOp::kMux:
      return true;
    default:
      return false;
  }
}

// Constant value carried by a source gate, if any. Unflagged TIE cells fold
// like constants; don't-touch TIE cells (the key implementation) do not.
std::optional<bool> ConstValueOf(const Netlist& nl, NetId net) {
  const GateId d = nl.DriverOf(net);
  if (d == kNullId) return std::nullopt;
  const Gate& g = nl.gate(d);
  if (g.HasFlag(kFlagDontTouch)) return std::nullopt;
  switch (g.op) {
    case GateOp::kConst0:
    case GateOp::kTieLo:
      return false;
    case GateOp::kConst1:
    case GateOp::kTieHi:
      return true;
    default:
      return std::nullopt;
  }
}

// Returns the net holding constant `value`, creating a source if needed.
// May grow the gate vector; callers must not hold Gate references across it.
NetId ConstNet(Netlist& nl, bool value) {
  const GateOp want = value ? GateOp::kConst1 : GateOp::kConst0;
  for (GateId g = 0; g < nl.NumGates(); ++g) {
    if (nl.gate(g).op == want && !nl.gate(g).HasFlag(kFlagDontTouch)) {
      return nl.gate(g).out;
    }
  }
  return nl.AddGate(want, {}, value ? "const1" : "const0");
}

}  // namespace

OptStats ConstantPropagate(Netlist& nl) {
  OptStats stats;
  bool changed = true;
  while (changed) {
    changed = false;
    for (GateId g : nl.TopoOrder()) {
      // Snapshot: mutations below may reallocate the gate vector.
      const GateOp op = nl.gate(g).op;
      if (!IsLogicOp(op) || nl.gate(g).HasFlag(kFlagDontTouch)) continue;
      const std::vector<NetId> fanins = nl.gate(g).fanins;
      const NetId out = nl.gate(g).out;
      // Dead gates (no sinks) are left for SweepDeadLogic; rewriting them
      // would report progress forever.
      if (nl.net(out).sinks.empty()) continue;

      std::vector<NetId> vars;
      std::vector<bool> consts;
      for (NetId n : fanins) {
        if (auto c = ConstValueOf(nl, n)) {
          consts.push_back(*c);
        } else {
          vars.push_back(n);
        }
      }
      if (consts.empty()) continue;

      auto fold_to_const = [&](bool v) {
        nl.ReplaceAllUses(out, ConstNet(nl, v));
        ++stats.folded;
        changed = true;
      };
      auto fold_to = [&](GateOp new_op, std::span<const NetId> new_fanins) {
        nl.MorphGate(g, new_op, new_fanins);
        ++stats.folded;
        changed = true;
      };

      switch (op) {
        case GateOp::kBuf:
          fold_to_const(consts[0]);
          break;
        case GateOp::kInv:
          fold_to_const(!consts[0]);
          break;
        case GateOp::kAnd:
        case GateOp::kNand: {
          const bool invert = op == GateOp::kNand;
          if (std::find(consts.begin(), consts.end(), false) != consts.end()) {
            fold_to_const(invert);
          } else if (vars.empty()) {
            fold_to_const(!invert);
          } else if (vars.size() == 1) {
            fold_to(invert ? GateOp::kInv : GateOp::kBuf, vars);
          } else {
            fold_to(op, vars);
          }
          break;
        }
        case GateOp::kOr:
        case GateOp::kNor: {
          const bool invert = op == GateOp::kNor;
          if (std::find(consts.begin(), consts.end(), true) != consts.end()) {
            fold_to_const(!invert);
          } else if (vars.empty()) {
            fold_to_const(invert);
          } else if (vars.size() == 1) {
            fold_to(invert ? GateOp::kInv : GateOp::kBuf, vars);
          } else {
            fold_to(op, vars);
          }
          break;
        }
        case GateOp::kXor:
        case GateOp::kXnor: {
          bool parity = op == GateOp::kXnor;
          for (bool c : consts) parity ^= c;
          if (vars.empty()) {
            fold_to_const(parity);
          } else {
            fold_to(parity ? GateOp::kInv : GateOp::kBuf, vars);
          }
          break;
        }
        case GateOp::kMux: {
          // fanins = {sel, a, b}
          if (auto sel = ConstValueOf(nl, fanins[0])) {
            const NetId chosen = *sel ? fanins[2] : fanins[1];
            fold_to(GateOp::kBuf, std::array<NetId, 1>{chosen});
          } else {
            auto a = ConstValueOf(nl, fanins[1]);
            auto b = ConstValueOf(nl, fanins[2]);
            if (a && b) {
              if (*a == *b) {
                fold_to_const(*a);
              } else if (!*a && *b) {
                fold_to(GateOp::kBuf, std::array<NetId, 1>{fanins[0]});
              } else {
                fold_to(GateOp::kInv, std::array<NetId, 1>{fanins[0]});
              }
            }
          }
          break;
        }
        default:
          break;
      }
    }
  }
  return stats;
}

OptStats SimplifyLocal(Netlist& nl) {
  OptStats stats;
  bool changed = true;
  while (changed) {
    changed = false;
    for (GateId g : nl.TopoOrder()) {
      const GateOp op = nl.gate(g).op;
      if (!IsLogicOp(op) || nl.gate(g).HasFlag(kFlagDontTouch)) continue;
      const std::vector<NetId> fanins = nl.gate(g).fanins;
      const NetId out = nl.gate(g).out;
      if (nl.net(out).sinks.empty()) continue;  // dead: sweep's job

      auto replace_with_const = [&](bool value) {
        nl.ReplaceAllUses(out, ConstNet(nl, value));
        ++stats.simplified;
        changed = true;
      };

      if (op == GateOp::kBuf) {
        nl.ReplaceAllUses(out, fanins[0]);
        ++stats.simplified;
        changed = true;
        continue;
      }
      if (op == GateOp::kInv) {
        const GateId d = nl.DriverOf(fanins[0]);
        if (d != kNullId && nl.gate(d).op == GateOp::kInv &&
            !nl.gate(d).HasFlag(kFlagDontTouch)) {
          nl.ReplaceAllUses(out, nl.gate(d).fanins[0]);
          ++stats.simplified;
          changed = true;
        }
        continue;
      }
      if (op == GateOp::kAnd || op == GateOp::kNand || op == GateOp::kOr ||
          op == GateOp::kNor) {
        std::vector<NetId> uniq;
        bool has_complement_pair = false;
        for (NetId n : fanins) {
          if (std::find(uniq.begin(), uniq.end(), n) != uniq.end()) continue;
          for (NetId m : uniq) {
            const GateId dm = nl.DriverOf(m);
            const GateId dn = nl.DriverOf(n);
            if ((dm != kNullId && nl.gate(dm).op == GateOp::kInv &&
                 nl.gate(dm).fanins[0] == n) ||
                (dn != kNullId && nl.gate(dn).op == GateOp::kInv &&
                 nl.gate(dn).fanins[0] == m)) {
              has_complement_pair = true;
            }
          }
          uniq.push_back(n);
        }
        const bool is_and_like = op == GateOp::kAnd || op == GateOp::kNand;
        const bool invert = op == GateOp::kNand || op == GateOp::kNor;
        if (has_complement_pair) {
          // a & ~a = 0, a | ~a = 1 (then apply output inversion).
          replace_with_const(is_and_like ? invert : !invert);
        } else if (uniq.size() == 1) {
          nl.MorphGate(g, invert ? GateOp::kInv : GateOp::kBuf, uniq);
          ++stats.simplified;
          changed = true;
        } else if (uniq.size() < fanins.size()) {
          nl.MorphGate(g, op, uniq);
          ++stats.simplified;
          changed = true;
        }
        continue;
      }
      if (op == GateOp::kXor || op == GateOp::kXnor) {
        if (fanins[0] == fanins[1]) {
          replace_with_const(op == GateOp::kXnor);
        }
        continue;
      }
      if (op == GateOp::kMux && fanins[1] == fanins[2]) {
        nl.MorphGate(g, GateOp::kBuf, std::array<NetId, 1>{fanins[1]});
        ++stats.simplified;
        changed = true;
      }
    }
  }
  return stats;
}

OptStats StructuralHash(Netlist& nl) {
  OptStats stats;
  bool changed = true;
  while (changed) {
    changed = false;
    std::map<std::pair<GateOp, std::vector<NetId>>, GateId> seen;
    for (GateId g : nl.TopoOrder()) {
      const Gate& gate = nl.gate(g);
      if (!IsLogicOp(gate.op) || gate.HasFlag(kFlagDontTouch)) continue;
      std::vector<NetId> key_fanins = gate.fanins;
      const bool commutative = gate.op != GateOp::kMux;
      if (commutative) std::sort(key_fanins.begin(), key_fanins.end());
      auto key = std::make_pair(gate.op, std::move(key_fanins));
      auto [it, inserted] = seen.emplace(std::move(key), g);
      if (!inserted) {
        nl.ReplaceAllUses(gate.out, nl.gate(it->second).out);
        ++stats.merged;
        changed = true;
      }
    }
    if (changed) stats += SweepDeadLogic(nl);
  }
  return stats;
}

OptStats SweepDeadLogic(Netlist& nl) {
  OptStats stats;
  bool changed = true;
  while (changed) {
    changed = false;
    for (GateId g = 0; g < nl.NumGates(); ++g) {
      const Gate& gate = nl.gate(g);
      if (gate.op == GateOp::kDeleted || gate.op == GateOp::kInput ||
          gate.op == GateOp::kOutput || gate.op == GateOp::kKeyIn) {
        continue;
      }
      if (gate.HasFlag(kFlagDontTouch)) continue;
      if (gate.out != kNullId && nl.net(gate.out).sinks.empty()) {
        nl.DeleteGate(g);
        ++stats.swept;
        changed = true;
      }
    }
  }
  return stats;
}

OptStats OptimizeArea(Netlist& nl) {
  OptStats total;
  for (int round = 0; round < 10; ++round) {
    OptStats round_stats;
    round_stats += ConstantPropagate(nl);
    round_stats += SimplifyLocal(nl);
    round_stats += StructuralHash(nl);
    round_stats += SweepDeadLogic(nl);
    total += round_stats;
    if (round_stats.Total() == 0) break;
  }
  return total;
}

}  // namespace splitlock
