// Netlist optimization passes (the re-synthesis stand-in for Synopsys DC).
//
// The locking flow injects a stuck-at fault (a net tied to a constant) and
// then "re-synthesizes the circuit to remove the stuck-at logic parts"
// (Sec. III-A). These passes provide exactly that: constant propagation,
// local simplification, structural hashing, and dead-logic sweeping, run to
// a fixpoint by OptimizeArea(). Gates flagged kFlagDontTouch are never
// folded, merged, or removed — the IR-level equivalent of the paper's
// `set_dont_touch` / `set_dont_touch_network` commands on TIE cells and
// key-nets.
#pragma once

#include <cstddef>

#include "netlist/netlist.hpp"

namespace splitlock {

struct OptStats {
  size_t folded = 0;   // gates rewritten by constant propagation
  size_t simplified = 0;
  size_t merged = 0;   // duplicates removed by structural hashing
  size_t swept = 0;    // dead gates removed

  size_t Total() const { return folded + simplified + merged + swept; }
  OptStats& operator+=(const OptStats& o) {
    folded += o.folded;
    simplified += o.simplified;
    merged += o.merged;
    swept += o.swept;
    return *this;
  }
};

// Folds constants (CONST0/1 and unflagged TIE cells) through the logic.
OptStats ConstantPropagate(Netlist& nl);

// Local rules: BUF bypassing, INV(INV(x)) = x, AND(a,a) = a, XOR(a,a) = 0,
// single-input AND/OR collapse, and the like.
OptStats SimplifyLocal(Netlist& nl);

// Merges structurally identical gates (commutative fanins canonicalized).
OptStats StructuralHash(Netlist& nl);

// Deletes logic with no observable fanout. Primary inputs, outputs, key
// inputs, and don't-touch gates survive.
OptStats SweepDeadLogic(Netlist& nl);

// Runs the passes above to a fixpoint (bounded number of rounds).
OptStats OptimizeArea(Netlist& nl);

}  // namespace splitlock
