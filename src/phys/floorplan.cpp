#include "phys/floorplan.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "exec/parallel.hpp"
#include "netlist/libcell.hpp"

namespace splitlock::phys {

namespace {

// Per-chunk tally for the cell census. Combined in chunk order, so the
// width sum is bit-identical at any thread count.
struct CellTally {
  size_t cells = 0;
  double width_um = 0.0;
};

constexpr size_t kFloorplanGrain = 256;

}  // namespace

void BuildFloorplan(Layout& layout, const FloorplanOptions& options) {
  const Netlist& nl = *layout.netlist;

  const CellTally tally = exec::ParallelReduce<CellTally>(
      nl.NumGates(), kFloorplanGrain, CellTally{},
      [&](size_t lo, size_t hi) {
        CellTally t;
        for (GateId g = static_cast<GateId>(lo); g < hi; ++g) {
          const Gate& gate = nl.gate(g);
          if (!IsPhysicalOp(gate.op)) continue;
          ++t.cells;
          t.width_um += CellFor(gate).WidthUm();
        }
        return t;
      },
      [](CellTally a, CellTally b) {
        return CellTally{a.cells + b.cells, a.width_um + b.width_um};
      });
  const size_t num_cells = tally.cells;
  const double total_width_um = tally.width_um;
  assert(num_cells > 0);

  layout.row_height_um = kRowHeightUm;
  layout.slot_width_um = total_width_um / static_cast<double>(num_cells);

  // Capacity at the target utilization, shaped to the aspect ratio:
  //   rows * slots >= num_cells / utilization
  //   rows * row_h ~= aspect * slots * slot_w
  const double capacity =
      static_cast<double>(num_cells) / std::max(0.05, options.utilization);
  const double rows_f = std::sqrt(capacity * options.aspect_ratio *
                                  layout.slot_width_um / layout.row_height_um);
  layout.num_rows = std::max(1, static_cast<int>(std::ceil(rows_f)));
  layout.slots_per_row = std::max(
      1, static_cast<int>(std::ceil(capacity / layout.num_rows)));

  const double width = layout.slots_per_row * layout.slot_width_um;
  const double height = layout.num_rows * layout.row_height_um;
  layout.die = Rect{{0.0, 0.0}, {width, height}};

  layout.position.assign(nl.NumGates(), Point{});
  layout.placed.assign(nl.NumGates(), 0);
  layout.fixed.assign(nl.NumGates(), 0);
  layout.routes.assign(nl.NumNets(), NetRoute{});

  // I/O pads: inputs along the left then top edge, outputs along the right
  // then bottom edge, evenly spaced. Each pad's position is a pure function
  // of its index, and the writes are index-disjoint.
  auto spread = [&](const std::vector<GateId>& pads, bool input_side) {
    const size_t n = pads.size();
    exec::ParallelFor(n, kFloorplanGrain, [&](size_t lo, size_t hi) {
      for (size_t i = lo; i < hi; ++i) {
        const double t =
            (static_cast<double>(i) + 0.5) / static_cast<double>(n);
        Point p;
        if (t < 0.5) {
          const double along = t * 2.0;
          p = input_side ? Point{0.0, along * height}
                         : Point{width, along * height};
        } else {
          const double along = (t - 0.5) * 2.0;
          p = input_side ? Point{along * width, height}
                         : Point{along * width, 0.0};
        }
        layout.position[pads[i]] = p;
        layout.placed[pads[i]] = 1;
        layout.fixed[pads[i]] = 1;
      }
    });
  };
  spread(nl.inputs(), true);
  spread(nl.outputs(), false);
}

}  // namespace splitlock::phys
