// Die floorplanning: rows, slots, I/O pad ring.
//
// The die is sized from total standard-cell area at a target utilization
// (the paper reports area "in terms of die outline" and lowers utilization
// when routing needs it — the secure flow passes a reduced utilization for
// lifted layouts). Cells occupy uniform slots on rows; I/O pads are spread
// along the boundary (inputs left/top, outputs right/bottom).
#pragma once

#include "netlist/netlist.hpp"
#include "phys/layout.hpp"

namespace splitlock::phys {

struct FloorplanOptions {
  double utilization = 0.70;
  double aspect_ratio = 1.0;  // height / width target
};

// Initializes die geometry, the slot grid, and I/O pad positions in
// `layout` (which must already reference the netlist). Logic cells are left
// unplaced; the placer assigns them to slots.
void BuildFloorplan(Layout& layout, const FloorplanOptions& options);

}  // namespace splitlock::phys
