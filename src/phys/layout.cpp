#include "phys/layout.hpp"

#include <algorithm>
#include <bit>

namespace splitlock::phys {
namespace {

// FNV-1a folded 64 bits at a time (byte-at-a-time FNV over megabytes of
// geometry would dominate the fingerprint's cost).
struct Digest {
  uint64_t h = 0xcbf29ce484222325ULL;

  void Mix(uint64_t v) {
    h ^= v;
    h *= 0x100000001b3ULL;
  }
  void Mix(double v) { Mix(std::bit_cast<uint64_t>(v)); }
  void Mix(const Point& p) {
    Mix(p.x);
    Mix(p.y);
  }
};

}  // namespace

int ConnRoute::MaxLayer() const {
  int max_layer = 0;
  for (const Segment& s : segments) max_layer = std::max(max_layer, s.layer);
  for (const ViaStack& v : vias) max_layer = std::max(max_layer, v.to_layer);
  return max_layer;
}

int NetRoute::MaxLayer() const {
  int max_layer = 0;
  for (const ConnRoute& c : conns) max_layer = std::max(max_layer, c.MaxLayer());
  return max_layer;
}

double NetRoute::TotalLength() const {
  double len = 0.0;
  for (const ConnRoute& c : conns) {
    for (const Segment& s : c.segments) len += s.Length();
  }
  return len;
}

double Layout::NetHpwl(NetId n) const {
  const Net& net = netlist->net(n);
  if (net.driver == kNullId || !placed[net.driver]) return 0.0;
  Rect box = Rect::Around(PinOf(net.driver));
  for (const Pin& p : net.sinks) {
    if (placed[p.gate]) box.Expand(PinOf(p.gate));
  }
  return box.HalfPerimeter();
}

double Layout::TotalHpwl() const {
  double total = 0.0;
  for (NetId n = 0; n < netlist->NumNets(); ++n) total += NetHpwl(n);
  return total;
}

double Layout::WirelengthOnLayer(int layer) const {
  double len = 0.0;
  for (const NetRoute& r : routes) {
    for (const ConnRoute& c : r.conns) {
      for (const Segment& s : c.segments) {
        if (s.layer == layer) len += s.Length();
      }
    }
  }
  return len;
}

double Layout::NetWireCapFf(NetId n) const {
  double cap = 0.0;
  for (const ConnRoute& c : routes[n].conns) {
    for (const Segment& s : c.segments) {
      cap += s.Length() * tech.Metal(s.layer).c_ff_per_um;
    }
    for (const ViaStack& v : c.vias) cap += v.Count() * tech.via_c_ff;
  }
  return cap;
}

uint64_t LayoutFingerprint(const Layout& layout) {
  Digest d;
  const size_t num_gates = layout.position.size();
  d.Mix(static_cast<uint64_t>(num_gates));
  for (size_t g = 0; g < num_gates; ++g) {
    d.Mix(static_cast<uint64_t>(layout.placed[g]) << 1 |
          static_cast<uint64_t>(layout.fixed[g]));
    if (layout.placed[g]) d.Mix(layout.position[g]);
  }
  d.Mix(static_cast<uint64_t>(layout.routes.size()));
  for (const NetRoute& route : layout.routes) {
    d.Mix(static_cast<uint64_t>(route.routed));
    d.Mix(static_cast<uint64_t>(route.conns.size()));
    for (const ConnRoute& c : route.conns) {
      d.Mix(static_cast<uint64_t>(c.sink.gate) << 32 |
            static_cast<uint64_t>(c.sink.index));
      for (const Segment& s : c.segments) {
        d.Mix(static_cast<uint64_t>(s.layer));
        d.Mix(s.a);
        d.Mix(s.b);
      }
      for (const ViaStack& v : c.vias) {
        d.Mix(v.at);
        d.Mix(static_cast<uint64_t>(v.from_layer) << 32 |
              static_cast<uint64_t>(v.to_layer));
      }
      for (const Point& p : c.hop_points) d.Mix(p);
      for (int l : c.hop_layers) d.Mix(static_cast<uint64_t>(l));
    }
  }
  return d.h;
}

double Layout::NetWireResKohm(NetId n) const {
  double res = 0.0;
  for (const ConnRoute& c : routes[n].conns) {
    for (const Segment& s : c.segments) {
      res += s.Length() * tech.Metal(s.layer).r_kohm_per_um;
    }
    for (const ViaStack& v : c.vias) res += v.Count() * tech.via_r_kohm;
  }
  return res;
}

}  // namespace splitlock::phys
