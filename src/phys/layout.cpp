#include "phys/layout.hpp"

#include <algorithm>

namespace splitlock::phys {

int ConnRoute::MaxLayer() const {
  int max_layer = 0;
  for (const Segment& s : segments) max_layer = std::max(max_layer, s.layer);
  for (const ViaStack& v : vias) max_layer = std::max(max_layer, v.to_layer);
  return max_layer;
}

int NetRoute::MaxLayer() const {
  int max_layer = 0;
  for (const ConnRoute& c : conns) max_layer = std::max(max_layer, c.MaxLayer());
  return max_layer;
}

double NetRoute::TotalLength() const {
  double len = 0.0;
  for (const ConnRoute& c : conns) {
    for (const Segment& s : c.segments) len += s.Length();
  }
  return len;
}

double Layout::NetHpwl(NetId n) const {
  const Net& net = netlist->net(n);
  if (net.driver == kNullId || !placed[net.driver]) return 0.0;
  Rect box = Rect::Around(PinOf(net.driver));
  for (const Pin& p : net.sinks) {
    if (placed[p.gate]) box.Expand(PinOf(p.gate));
  }
  return box.HalfPerimeter();
}

double Layout::TotalHpwl() const {
  double total = 0.0;
  for (NetId n = 0; n < netlist->NumNets(); ++n) total += NetHpwl(n);
  return total;
}

double Layout::WirelengthOnLayer(int layer) const {
  double len = 0.0;
  for (const NetRoute& r : routes) {
    for (const ConnRoute& c : r.conns) {
      for (const Segment& s : c.segments) {
        if (s.layer == layer) len += s.Length();
      }
    }
  }
  return len;
}

double Layout::NetWireCapFf(NetId n) const {
  double cap = 0.0;
  for (const ConnRoute& c : routes[n].conns) {
    for (const Segment& s : c.segments) {
      cap += s.Length() * tech.Metal(s.layer).c_ff_per_um;
    }
    for (const ViaStack& v : c.vias) cap += v.Count() * tech.via_c_ff;
  }
  return cap;
}

double Layout::NetWireResKohm(NetId n) const {
  double res = 0.0;
  for (const ConnRoute& c : routes[n].conns) {
    for (const Segment& s : c.segments) {
      res += s.Length() * tech.Metal(s.layer).r_kohm_per_um;
    }
    for (const ViaStack& v : c.vias) res += v.Count() * tech.via_r_kohm;
  }
  return res;
}

}  // namespace splitlock::phys
