// Layout data model: placed cells, routed nets, die geometry.
//
// The layout references (does not own) the netlist it was generated for;
// callers keep the netlist alive for the layout's lifetime (the core flow
// bundles both). Placement is slot-based: cells occupy uniform slots on
// standard-cell rows (slot pitch = average cell width), which keeps
// annealing and legalization simple while preserving everything the
// security analysis consumes — relative proximity, row structure, die
// outline, and wirelength. I/O pads sit on the die boundary.
//
// Routes are stored per sink connection (driver pin -> sink pin), because
// splitting must reason about each broken connection individually: where
// the driver-side FEOL fragment ascends above the split layer and where the
// sink-side fragment ends.
#pragma once

#include <cstdint>
#include <vector>

#include "netlist/netlist.hpp"
#include "phys/tech.hpp"
#include "util/geom.hpp"

namespace splitlock::phys {

// One axis-aligned wire piece on a metal layer.
// lint:result-schema(v4) encoded by store/artifact_io EncodeLayout — a
// result-affecting change here needs a kResultSchemaVersion bump.
struct Segment {
  int layer = 1;  // 1-based metal index
  Point a;
  Point b;

  double Length() const { return ManhattanDistance(a, b); }
};

// A vertical stack of vias at one point, spanning [from_layer, to_layer].
// lint:result-schema(v4) encoded by store/artifact_io EncodeLayout — a
// result-affecting change here needs a kResultSchemaVersion bump.
struct ViaStack {
  Point at;
  int from_layer = 1;
  int to_layer = 1;

  int Count() const { return to_layer - from_layer; }
};

// Route of a single driver-to-sink connection. Segments are ordered from
// the driver pin toward the sink pin.
// lint:result-schema(v4) encoded by store/artifact_io EncodeNetRoute — a
// result-affecting change here needs a kResultSchemaVersion bump.
struct ConnRoute {
  Pin sink;
  std::vector<Segment> segments;
  std::vector<ViaStack> vias;

  // Topological hop list used by splitting: hop k runs from hop_points[k]
  // to hop_points[k+1] on metal hop_layers[k] (hop_points has one more
  // entry than hop_layers; the first point is the driver pin, the last the
  // sink pin). Parasitic-only detail (ECO jogs) lives in `segments` alone.
  std::vector<Point> hop_points;
  std::vector<int> hop_layers;

  int MaxLayer() const;
};

// lint:result-schema(v4) encoded by store/artifact_io EncodeNetRoute — a
// result-affecting change here needs a kResultSchemaVersion bump.
struct NetRoute {
  std::vector<ConnRoute> conns;
  bool routed = false;

  int MaxLayer() const;
  double TotalLength() const;
};

// lint:result-schema(v4) encoded by store/artifact_io EncodeLayout (die,
// rows, positions, flags, routes; tech/netlist pointers are rebound on
// decode) — a result-affecting change here needs a kResultSchemaVersion
// bump.
struct Layout {
  const Netlist* netlist = nullptr;
  Tech tech;

  Rect die;
  double row_height_um = 0.0;
  double slot_width_um = 0.0;
  int num_rows = 0;
  int slots_per_row = 0;

  // Placement, indexed by GateId. placed[g] is false for pseudo/deleted
  // gates that occupy no silicon (I/O pads are "placed" on the boundary).
  std::vector<Point> position;   // cell center
  std::vector<uint8_t> placed;
  std::vector<uint8_t> fixed;    // excluded from annealing moves

  // Routing, indexed by NetId.
  std::vector<NetRoute> routes;

  // Cell center; all pins are modeled at the cell center point.
  Point PinOf(GateId g) const { return position[g]; }

  // Half-perimeter wirelength of a net's pin bounding box.
  double NetHpwl(NetId n) const;
  double TotalHpwl() const;

  // Total routed wirelength on a given metal layer, in um.
  double WirelengthOnLayer(int layer) const;

  // Lumped wire capacitance / resistance of a routed net (segments + vias).
  double NetWireCapFf(NetId n) const;
  double NetWireResKohm(NetId n) const;

  // Die outline area in um^2 (the paper's Fig. 5 area metric).
  double DieAreaUm2() const { return die.Area(); }
};

// Order-sensitive 64-bit digest of everything placement and routing
// produced: positions, placed/fixed flags, and the full route geometry
// (segments, vias, hop lists). Two layouts with equal fingerprints are
// bit-identical for every consumer in the library; the parallel-phys tests
// and bench_phys use it to assert the determinism contract.
uint64_t LayoutFingerprint(const Layout& layout);

}  // namespace splitlock::phys
