#include "phys/placer.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <vector>

#include "netlist/libcell.hpp"
#include "phys/floorplan.hpp"
#include "util/rng.hpp"

namespace splitlock::phys {
namespace {

bool IsTieLike(const Gate& g) {
  if (g.HasFlag(kFlagTie)) return true;
  switch (g.op) {
    case GateOp::kTieHi:
    case GateOp::kTieLo:
    case GateOp::kKeyIn:
    case GateOp::kConst0:
    case GateOp::kConst1:
      return true;
    default:
      return false;
  }
}

Point SlotCenter(const Layout& layout, int slot) {
  const int row = slot / layout.slots_per_row;
  const int col = slot % layout.slots_per_row;
  return Point{(col + 0.5) * layout.slot_width_um,
               (row + 0.5) * layout.row_height_um};
}

}  // namespace

Layout PlaceDesign(const Netlist& nl, const Tech& tech,
                   const PlacerOptions& options) {
  Layout layout;
  layout.netlist = &nl;
  layout.tech = tech;
  FloorplanOptions fp;
  fp.utilization = options.utilization;
  BuildFloorplan(layout, fp);
  Rng rng(options.seed);

  // Partition physical gates into TIE-like cells and regular movable cells.
  std::vector<GateId> tie_cells;
  std::vector<GateId> movable;
  std::vector<GateId> key_pads;
  for (GateId g = 0; g < nl.NumGates(); ++g) {
    const Gate& gate = nl.gate(g);
    if (!IsPhysicalOp(gate.op)) continue;
    if (options.key_inputs_as_pads && gate.op == GateOp::kKeyIn) {
      key_pads.push_back(g);
    } else if (IsTieLike(gate)) {
      tie_cells.push_back(g);
    } else {
      movable.push_back(g);
    }
  }

  // Package mode: key inputs are pads spread along the top edge; their tie
  // value lives off-die in the package routing.
  for (size_t i = 0; i < key_pads.size(); ++i) {
    const double t = (static_cast<double>(i) + 0.5) /
                     static_cast<double>(key_pads.size());
    layout.position[key_pads[i]] =
        Point{layout.die.lo.x + t * layout.die.Width(), layout.die.hi.y};
    layout.placed[key_pads[i]] = 1;
    layout.fixed[key_pads[i]] = 1;
  }

  const int num_slots = layout.num_rows * layout.slots_per_row;
  assert(static_cast<size_t>(num_slots) >= tie_cells.size() + movable.size());
  std::vector<GateId> gate_at(num_slots, kNullId);
  std::vector<int> slot_of(nl.NumGates(), -1);

  auto occupy = [&](GateId g, int slot) {
    gate_at[slot] = g;
    slot_of[g] = slot;
    layout.position[g] = SlotCenter(layout, slot);
    layout.placed[g] = 1;
  };

  // Secure flow: TIE cells take uniformly random slots and are frozen.
  // Naive flow: TIE cells join the annealing pool like regular cells.
  std::vector<GateId> anneal_pool = movable;
  if (!options.randomize_tie_cells) {
    anneal_pool.insert(anneal_pool.end(), tie_cells.begin(), tie_cells.end());
  }
  if (options.randomize_tie_cells) {
    for (GateId g : tie_cells) {
      int slot;
      do {
        slot = static_cast<int>(rng.NextUint(num_slots));
      } while (gate_at[slot] != kNullId);
      occupy(g, slot);
      layout.fixed[g] = 1;
    }
  }

  // Random initial placement of the annealing pool.
  {
    std::vector<int> free_slots;
    free_slots.reserve(num_slots);
    for (int s = 0; s < num_slots; ++s) {
      if (gate_at[s] == kNullId) free_slots.push_back(s);
    }
    rng.Shuffle(free_slots);
    assert(free_slots.size() >= anneal_pool.size());
    for (size_t i = 0; i < anneal_pool.size(); ++i) {
      occupy(anneal_pool[i], free_slots[i]);
    }
  }

  // Nets considered by the cost function. In secure mode, nets driven by
  // TIE-like cells are detached (Fig. 3 "Detach TIE cells").
  std::vector<uint8_t> net_active(nl.NumNets(), 0);
  for (NetId n = 0; n < nl.NumNets(); ++n) {
    const GateId d = nl.DriverOf(n);
    if (d == kNullId || nl.net(n).sinks.empty()) continue;
    if (options.randomize_tie_cells && IsTieLike(nl.gate(d))) continue;
    net_active[n] = 1;
  }

  // Nets incident to each gate (its fanin nets + its output net).
  auto nets_of = [&](GateId g, std::vector<NetId>* out) {
    out->clear();
    const Gate& gate = nl.gate(g);
    for (NetId n : gate.fanins) {
      if (net_active[n]) out->push_back(n);
    }
    if (gate.out != kNullId && net_active[gate.out]) {
      out->push_back(gate.out);
    }
    std::sort(out->begin(), out->end());
    out->erase(std::unique(out->begin(), out->end()), out->end());
  };

  if (anneal_pool.empty()) return layout;

  // Simulated annealing over slot assignments.
  std::vector<NetId> touched;
  std::vector<NetId> touched2;
  auto hpwl_of_nets = [&](const std::vector<NetId>& nets) {
    double sum = 0.0;
    for (NetId n : nets) sum += layout.NetHpwl(n);
    return sum;
  };

  // Estimate the initial temperature from the cost spread of random swaps.
  double delta_sum = 0.0;
  int samples = 0;
  for (int i = 0; i < 64; ++i) {
    const GateId g = anneal_pool[rng.NextUint(anneal_pool.size())];
    const int target = static_cast<int>(rng.NextUint(num_slots));
    const GateId other = gate_at[target];
    if (other == g || (other != kNullId && layout.fixed[other])) continue;
    nets_of(g, &touched);
    if (other != kNullId) {
      nets_of(other, &touched2);
      touched.insert(touched.end(), touched2.begin(), touched2.end());
      std::sort(touched.begin(), touched.end());
      touched.erase(std::unique(touched.begin(), touched.end()),
                    touched.end());
    }
    const double before = hpwl_of_nets(touched);
    // Trial swap.
    const int src = slot_of[g];
    const Point gp = layout.position[g];
    layout.position[g] = SlotCenter(layout, target);
    if (other != kNullId) layout.position[other] = gp;
    const double after = hpwl_of_nets(touched);
    layout.position[g] = gp;
    if (other != kNullId) layout.position[other] = SlotCenter(layout, target);
    (void)src;
    delta_sum += std::abs(after - before);
    ++samples;
  }
  double temperature =
      samples == 0 ? 1.0 : 4.0 * delta_sum / std::max(1, samples);
  if (temperature <= 0.0) temperature = 1.0;

  const int64_t total_moves =
      static_cast<int64_t>(options.moves_per_cell) *
      static_cast<int64_t>(anneal_pool.size());
  if (total_moves <= 0) return layout;  // random placement requested
  const int steps = std::max(1, options.temperature_steps);
  const int64_t moves_per_step = std::max<int64_t>(1, total_moves / steps);
  const double cooling =
      std::pow(1e-4, 1.0 / static_cast<double>(steps));  // T -> T * 1e-4

  for (int step = 0; step < steps; ++step) {
    for (int64_t m = 0; m < moves_per_step; ++m) {
      const GateId g = anneal_pool[rng.NextUint(anneal_pool.size())];
      const int target = static_cast<int>(rng.NextUint(num_slots));
      const GateId other = gate_at[target];
      if (other == g) continue;
      if (other != kNullId && layout.fixed[other]) continue;

      nets_of(g, &touched);
      if (other != kNullId) {
        nets_of(other, &touched2);
        touched.insert(touched.end(), touched2.begin(), touched2.end());
        std::sort(touched.begin(), touched.end());
        touched.erase(std::unique(touched.begin(), touched.end()),
                      touched.end());
      }
      const double before = hpwl_of_nets(touched);
      const int src = slot_of[g];
      const Point src_center = layout.position[g];
      const Point dst_center = SlotCenter(layout, target);
      layout.position[g] = dst_center;
      if (other != kNullId) layout.position[other] = src_center;
      const double after = hpwl_of_nets(touched);
      const double delta = after - before;

      bool accept = delta <= 0.0;
      if (!accept && temperature > 0.0) {
        accept = rng.NextDouble() < std::exp(-delta / temperature);
      }
      if (accept) {
        gate_at[src] = other;
        gate_at[target] = g;
        slot_of[g] = target;
        if (other != kNullId) slot_of[other] = src;
      } else {
        layout.position[g] = src_center;
        if (other != kNullId) layout.position[other] = dst_center;
      }
    }
    temperature *= cooling;
  }
  return layout;
}

}  // namespace splitlock::phys
