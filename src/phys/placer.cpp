#include "phys/placer.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <vector>

#include "exec/parallel.hpp"
#include "exec/stream_rng.hpp"
#include "netlist/libcell.hpp"
#include "phys/floorplan.hpp"

namespace splitlock::phys {
namespace {

// A move touches at most the active nets of two gates.
constexpr size_t kMaxTouchedNets = 2 * (kMaxFanin + 1);

// Speculative batch-size bounds and parallel evaluation chunk. Batch size
// has NO effect on the result (clean moves reproduce the sequential
// decision, conflicted moves are re-evaluated in sequential order); it only
// trades snapshot staleness against scheduling overhead. High-acceptance
// batches invalidate most far-ahead speculation (wasted re-evaluation);
// low-acceptance batches leave the snapshot fresh, so long batches amortize
// scheduling. Instead of guessing from the step index, the ramp below is
// steered by the *measured* acceptance rate of each resolved batch: halve
// on hot batches, double on cold ones. The measurement folds into the
// deterministic per-batch state — acceptance decisions come out of the
// serial resolution pass and are bit-identical at any thread count — so
// the batch-size trajectory, like the placement itself, is deterministic.
constexpr int64_t kSpeculativeMinBatch = 32;
constexpr int64_t kSpeculativeMaxBatch = 256;
constexpr size_t kSpeculativeGrain = 16;
// Acceptance-rate thresholds for the adaptive ramp: above kHotAcceptance
// the batch halves, below kColdAcceptance it doubles, in between it holds.
constexpr double kHotAcceptance = 0.5;
constexpr double kColdAcceptance = 0.15;

// Slot candidates pre-drawn per TIE cell by the parallel prefix. At sane
// utilization the chance that all eight are occupied is negligible; the
// serial fallback reconstructs the same stream and keeps drawing.
constexpr size_t kTieDrawBatch = 8;
constexpr size_t kPrefixGrain = 64;

// Per-chunk tally for the initial-temperature estimate; combined in chunk
// order so the delta sum is bit-identical at any thread count.
struct TempTally {
  double delta_sum = 0.0;
  int samples = 0;
};

bool IsTieLike(const Gate& g) {
  if (g.HasFlag(kFlagTie)) return true;
  switch (g.op) {
    case GateOp::kTieHi:
    case GateOp::kTieLo:
    case GateOp::kKeyIn:
    case GateOp::kConst0:
    case GateOp::kConst1:
      return true;
    default:
      return false;
  }
}

Point SlotCenter(const Layout& layout, int slot) {
  const int row = slot / layout.slots_per_row;
  const int col = slot % layout.slots_per_row;
  return Point{(col + 0.5) * layout.slot_width_um,
               (row + 0.5) * layout.row_height_um};
}

// One proposed annealing move: swap `g` from slot `src` with whatever
// occupies `target` (`other`, possibly empty). Draws and evaluation are a
// pure function of (seed, move index, placement state), so a move can be
// proposed speculatively against a frozen snapshot and validated later.
struct SpeculativeMove {
  GateId g = kNullId;
  GateId other = kNullId;
  int src = -1;
  int target = -1;
  double delta = 0.0;
  double u = 0.0;        // acceptance draw, always consumed
  bool viable = false;   // false: self-swap or fixed occupant
  uint32_t num_nets = 0;
  NetId nets[kMaxTouchedNets];
};

// The annealing state PlaceDesign threads through both move loops.
struct AnnealState {
  Layout& layout;
  const Netlist& nl;
  const PlacerOptions& options;
  const std::vector<GateId>& anneal_pool;
  const std::vector<uint8_t>& net_active;
  std::vector<GateId>& gate_at;
  std::vector<int>& slot_of;
  int num_slots;

  // Active nets incident to `g` appended (unsorted) to out; returns count.
  size_t ActiveNetsOf(GateId g, NetId* out) const {
    size_t cnt = 0;
    const Gate& gate = nl.gate(g);
    for (NetId n : gate.fanins) {
      if (net_active[n]) out[cnt++] = n;
    }
    if (gate.out != kNullId && net_active[gate.out]) out[cnt++] = gate.out;
    return cnt;
  }

  // Net HPWL with the move's two positions overridden (read-only: the same
  // bounding-box arithmetic as Layout::NetHpwl, so the sequential and the
  // speculative evaluation produce bit-identical doubles).
  double HpwlWith(NetId n, GateId a, Point pa, GateId b, Point pb) const {
    const Net& net = nl.net(n);
    if (net.driver == kNullId || !layout.placed[net.driver]) return 0.0;
    const auto pos = [&](GateId g) {
      return g == a ? pa : g == b ? pb : layout.position[g];
    };
    Rect box = Rect::Around(pos(net.driver));
    for (const Pin& p : net.sinks) {
      if (layout.placed[p.gate]) box.Expand(pos(p.gate));
    }
    return box.HalfPerimeter();
  }

  // Fills nets/delta of a viable move against the current state; reads only.
  void Evaluate(SpeculativeMove* mv) const {
    size_t cnt = ActiveNetsOf(mv->g, mv->nets);
    if (mv->other != kNullId) {
      cnt += ActiveNetsOf(mv->other, mv->nets + cnt);
    }
    std::sort(mv->nets, mv->nets + cnt);
    cnt = static_cast<size_t>(std::unique(mv->nets, mv->nets + cnt) -
                              mv->nets);
    mv->num_nets = static_cast<uint32_t>(cnt);
    const Point src_center = layout.position[mv->g];
    const Point dst_center = SlotCenter(layout, mv->target);
    double before = 0.0;
    double after = 0.0;
    for (size_t i = 0; i < cnt; ++i) {
      before += layout.NetHpwl(mv->nets[i]);
      after += HpwlWith(mv->nets[i], mv->g, dst_center, mv->other, src_center);
    }
    mv->delta = after - before;
  }

  // Draw + evaluate move `index` against the current state. Each move owns
  // stream (seed, kPlacerMove, index): any thread can reconstruct exactly
  // its draws, which is what makes speculative batching deterministic.
  SpeculativeMove Propose(uint64_t index) const {
    SpeculativeMove mv;
    exec::StreamRng rng(options.seed, exec::StreamDomain::kPlacerMove, index);
    mv.g = anneal_pool[rng.NextUint(anneal_pool.size())];
    mv.target = static_cast<int>(rng.NextUint(num_slots));
    mv.u = rng.NextDouble();
    mv.src = slot_of[mv.g];
    mv.other = gate_at[mv.target];
    if (mv.other == mv.g ||
        (mv.other != kNullId && layout.fixed[mv.other])) {
      return mv;
    }
    mv.viable = true;
    Evaluate(&mv);
    return mv;
  }

  // Re-derives occupancy-dependent fields against the *current* state (the
  // conflicted-move path of the resolution pass).
  void Revalidate(SpeculativeMove* mv) const {
    mv->src = slot_of[mv->g];
    mv->other = gate_at[mv->target];
    mv->num_nets = 0;
    mv->viable = !(mv->other == mv->g ||
                   (mv->other != kNullId && layout.fixed[mv->other]));
    if (mv->viable) Evaluate(mv);
  }

  static bool Accept(double delta, double u, double temperature) {
    return delta <= 0.0 ||
           (temperature > 0.0 && u < std::exp(-delta / temperature));
  }

  void Apply(const SpeculativeMove& mv) {
    const Point src_center = layout.position[mv.g];
    layout.position[mv.g] = SlotCenter(layout, mv.target);
    if (mv.other != kNullId) layout.position[mv.other] = src_center;
    gate_at[mv.src] = mv.other;  // kNullId empties the slot
    gate_at[mv.target] = mv.g;
    slot_of[mv.g] = mv.target;
    if (mv.other != kNullId) slot_of[mv.other] = mv.src;
  }
};

// Marks state touched by applied moves within one speculative batch, so the
// resolution pass can tell which frozen evaluations are still exact.
class DirtyTracker {
 public:
  DirtyTracker(size_t num_gates, size_t num_slots, size_t num_nets)
      : gate_(num_gates, 0), slot_(num_slots, 0), net_(num_nets, 0) {}

  void MarkApplied(const SpeculativeMove& mv) {
    MarkGate(mv.g);
    if (mv.other != kNullId) MarkGate(mv.other);
    MarkSlot(mv.src);
    MarkSlot(mv.target);
    for (uint32_t i = 0; i < mv.num_nets; ++i) {
      if (!net_[mv.nets[i]]) {
        net_[mv.nets[i]] = 1;
        net_log_.push_back(mv.nets[i]);
      }
    }
  }

  // A move is clean when nothing its frozen evaluation read — the two
  // gates, the two slots' occupancy, the touched nets' pin positions —
  // was modified by an earlier applied move of the same batch.
  bool IsClean(const SpeculativeMove& mv) const {
    if (gate_[mv.g] || slot_[mv.target] || slot_[mv.src]) return false;
    if (mv.other != kNullId && gate_[mv.other]) return false;
    for (uint32_t i = 0; i < mv.num_nets; ++i) {
      if (net_[mv.nets[i]]) return false;
    }
    return true;
  }

  void Reset() {
    for (uint32_t g : gate_log_) gate_[g] = 0;
    for (uint32_t s : slot_log_) slot_[s] = 0;
    for (uint32_t n : net_log_) net_[n] = 0;
    gate_log_.clear();
    slot_log_.clear();
    net_log_.clear();
  }

 private:
  void MarkGate(GateId g) {
    if (!gate_[g]) {
      gate_[g] = 1;
      gate_log_.push_back(g);
    }
  }
  void MarkSlot(int s) {
    if (!slot_[s]) {
      slot_[s] = 1;
      slot_log_.push_back(static_cast<uint32_t>(s));
    }
  }

  std::vector<uint8_t> gate_, slot_, net_;
  std::vector<uint32_t> gate_log_, slot_log_, net_log_;
};

}  // namespace

Layout PlaceDesign(const Netlist& nl, const Tech& tech,
                   const PlacerOptions& options) {
  Layout layout;
  layout.netlist = &nl;
  layout.tech = tech;
  FloorplanOptions fp;
  fp.utilization = options.utilization;
  BuildFloorplan(layout, fp);

  // Partition physical gates into TIE-like cells and regular movable cells.
  std::vector<GateId> tie_cells;
  std::vector<GateId> movable;
  std::vector<GateId> key_pads;
  for (GateId g = 0; g < nl.NumGates(); ++g) {
    const Gate& gate = nl.gate(g);
    if (!IsPhysicalOp(gate.op)) continue;
    if (options.key_inputs_as_pads && gate.op == GateOp::kKeyIn) {
      key_pads.push_back(g);
    } else if (IsTieLike(gate)) {
      tie_cells.push_back(g);
    } else {
      movable.push_back(g);
    }
  }

  // Package mode: key inputs are pads spread along the top edge; their tie
  // value lives off-die in the package routing.
  for (size_t i = 0; i < key_pads.size(); ++i) {
    const double t = (static_cast<double>(i) + 0.5) /
                     static_cast<double>(key_pads.size());
    layout.position[key_pads[i]] =
        Point{layout.die.lo.x + t * layout.die.Width(), layout.die.hi.y};
    layout.placed[key_pads[i]] = 1;
    layout.fixed[key_pads[i]] = 1;
  }

  const int num_slots = layout.num_rows * layout.slots_per_row;
  assert(static_cast<size_t>(num_slots) >= tie_cells.size() + movable.size());
  std::vector<GateId> gate_at(num_slots, kNullId);
  std::vector<int> slot_of(nl.NumGates(), -1);

  auto occupy = [&](GateId g, int slot) {
    gate_at[slot] = g;
    slot_of[g] = slot;
    layout.position[g] = SlotCenter(layout, slot);
    layout.placed[g] = 1;
  };

  // Secure flow: TIE cells take uniformly random slots and are frozen.
  // Naive flow: TIE cells join the annealing pool like regular cells.
  std::vector<GateId> anneal_pool = movable;
  if (!options.randomize_tie_cells) {
    anneal_pool.insert(anneal_pool.end(), tie_cells.begin(), tie_cells.end());
  }
  if (options.randomize_tie_cells) {
    // Each TIE cell owns stream (seed, kPlacerTie, index): candidate slots
    // are pre-drawn concurrently, then resolved serially in TIE order
    // against the evolving occupancy. Occupancy only grows here, so a
    // candidate rejected at resolution time could never have been taken —
    // the outcome is a pure function of (seed, tie_cells) at any thread
    // count.
    std::vector<uint32_t> candidates(tie_cells.size() * kTieDrawBatch);
    exec::ParallelFor(tie_cells.size(), kPrefixGrain,
                      [&](size_t lo, size_t hi) {
                        for (size_t i = lo; i < hi; ++i) {
                          exec::StreamRng trng(options.seed,
                                               exec::StreamDomain::kPlacerTie,
                                               i);
                          for (size_t d = 0; d < kTieDrawBatch; ++d) {
                            candidates[i * kTieDrawBatch + d] =
                                static_cast<uint32_t>(
                                    trng.NextUint(num_slots));
                          }
                        }
                      });
    for (size_t i = 0; i < tie_cells.size(); ++i) {
      int slot = -1;
      for (size_t d = 0; d < kTieDrawBatch && slot < 0; ++d) {
        const int s = static_cast<int>(candidates[i * kTieDrawBatch + d]);
        if (gate_at[s] == kNullId) slot = s;
      }
      if (slot < 0) {
        // All pre-drawn candidates taken: reconstruct stream i, skip the
        // batch draws already consumed, continue the rejection loop.
        exec::StreamRng trng(options.seed, exec::StreamDomain::kPlacerTie, i);
        for (size_t d = 0; d < kTieDrawBatch; ++d) trng.NextWord();
        do {
          slot = static_cast<int>(trng.NextUint(num_slots));
        } while (gate_at[slot] != kNullId);
      }
      occupy(tie_cells[i], slot);
      layout.fixed[tie_cells[i]] = 1;
    }
  }

  // Random initial placement of the annealing pool: a deterministic
  // parallel shuffle. Every free slot is keyed by its own counter stream
  // and the slots are sorted by key — unique slot ids break key ties, so
  // the permutation is a pure function of (seed, free-slot set).
  {
    std::vector<int> free_slots;
    free_slots.reserve(num_slots);
    for (int s = 0; s < num_slots; ++s) {
      if (gate_at[s] == kNullId) free_slots.push_back(s);
    }
    assert(free_slots.size() >= anneal_pool.size());
    std::vector<std::pair<uint64_t, int>> keyed(free_slots.size());
    exec::ParallelFor(
        free_slots.size(), kPrefixGrain, [&](size_t lo, size_t hi) {
          for (size_t i = lo; i < hi; ++i) {
            keyed[i] = {
                exec::StreamRng(options.seed,
                                exec::StreamDomain::kPlacerInit,
                                static_cast<uint64_t>(free_slots[i]))
                    .NextWord(),
                free_slots[i]};
          }
        });
    std::sort(keyed.begin(), keyed.end());
    // occupy() writes are disjoint across i (distinct gate, distinct slot).
    exec::ParallelFor(anneal_pool.size(), kPrefixGrain,
                      [&](size_t lo, size_t hi) {
                        for (size_t i = lo; i < hi; ++i) {
                          occupy(anneal_pool[i], keyed[i].second);
                        }
                      });
  }

  // Nets considered by the cost function. In secure mode, nets driven by
  // TIE-like cells are detached (Fig. 3 "Detach TIE cells").
  std::vector<uint8_t> net_active(nl.NumNets(), 0);
  for (NetId n = 0; n < nl.NumNets(); ++n) {
    const GateId d = nl.DriverOf(n);
    if (d == kNullId || nl.net(n).sinks.empty()) continue;
    if (options.randomize_tie_cells && IsTieLike(nl.gate(d))) continue;
    net_active[n] = 1;
  }

  if (anneal_pool.empty()) return layout;

  AnnealState state{layout,     nl,      options, anneal_pool,
                    net_active, gate_at, slot_of, num_slots};

  // Estimate the initial temperature from the cost spread of random swaps
  // (read-only trial evaluations; runs before — and independent of — the
  // move loop, so both move strategies see the same temperature). Each
  // sample owns stream (seed, kPlacerTemp, index), and the chunk-order
  // reduction keeps the delta sum bit-identical at any thread count.
  const TempTally tally = exec::ParallelReduce<TempTally>(
      64, 8, TempTally{},
      [&](size_t lo, size_t hi) {
        TempTally t;
        for (size_t i = lo; i < hi; ++i) {
          exec::StreamRng srng(options.seed, exec::StreamDomain::kPlacerTemp,
                               i);
          SpeculativeMove mv;
          mv.g = anneal_pool[srng.NextUint(anneal_pool.size())];
          mv.target = static_cast<int>(srng.NextUint(num_slots));
          mv.src = slot_of[mv.g];
          mv.other = gate_at[mv.target];
          if (mv.other == mv.g ||
              (mv.other != kNullId && layout.fixed[mv.other])) {
            continue;
          }
          state.Evaluate(&mv);
          t.delta_sum += std::abs(mv.delta);
          ++t.samples;
        }
        return t;
      },
      [](TempTally a, TempTally b) {
        return TempTally{a.delta_sum + b.delta_sum, a.samples + b.samples};
      });
  double temperature = tally.samples == 0
                           ? 1.0
                           : 4.0 * tally.delta_sum / std::max(1, tally.samples);
  if (temperature <= 0.0) temperature = 1.0;

  const int64_t total_moves =
      static_cast<int64_t>(options.moves_per_cell) *
      static_cast<int64_t>(anneal_pool.size());
  if (total_moves <= 0) return layout;  // random placement requested
  const int steps = std::max(1, options.temperature_steps);
  const int64_t moves_per_step = std::max<int64_t>(1, total_moves / steps);
  const double cooling =
      std::pow(1e-4, 1.0 / static_cast<double>(steps));  // T -> T * 1e-4

  if (!options.parallel_moves) {
    // Sequential reference annealer: one move at a time, in move-index
    // order. This is the semantics the speculative path below must (and
    // does) reproduce bit-exactly.
    uint64_t move_index = 0;
    for (int step = 0; step < steps; ++step) {
      for (int64_t m = 0; m < moves_per_step; ++m) {
        SpeculativeMove mv = state.Propose(move_index++);
        if (!mv.viable) continue;
        if (AnnealState::Accept(mv.delta, mv.u, temperature)) {
          state.Apply(mv);
        }
      }
      temperature *= cooling;
    }
    return layout;
  }

  // Speculative batched annealing. Each batch proposes and evaluates
  // kSpeculativeBatch moves concurrently against the frozen batch-entry
  // snapshot, then a serial resolution pass walks them in move-index order:
  // a move whose inputs no earlier applied move touched ("clean") carries
  // its frozen decision over unchanged — it is exactly what the sequential
  // annealer would have computed — and a conflicted move is re-evaluated
  // on the spot against the current state, which again matches the
  // sequential computation. The outcome is therefore bit-identical to the
  // reference path above at every thread count and batch size.
  std::vector<SpeculativeMove> batch(static_cast<size_t>(
      std::min<int64_t>(kSpeculativeMaxBatch, moves_per_step)));
  DirtyTracker dirty(nl.NumGates(), num_slots, nl.NumNets());
  uint64_t move_base = 0;
  // Adaptive ramp state: hot early steps accept most moves and quickly
  // drive the batch to the minimum; as the anneal cools and acceptance
  // drops the batch grows back toward the maximum.
  int64_t batch_moves = kSpeculativeMinBatch;
  for (int step = 0; step < steps; ++step) {
    for (int64_t base = 0; base < moves_per_step;) {
      const size_t bn = static_cast<size_t>(
          std::min<int64_t>(batch_moves, moves_per_step - base));
      exec::ParallelFor(bn, kSpeculativeGrain, [&](size_t lo, size_t hi) {
        for (size_t i = lo; i < hi; ++i) {
          batch[i] = state.Propose(move_base + base + i);
        }
      });
      size_t accepted = 0;
      for (size_t i = 0; i < bn; ++i) {
        SpeculativeMove& mv = batch[i];
        if (!dirty.IsClean(mv)) state.Revalidate(&mv);
        if (mv.viable && AnnealState::Accept(mv.delta, mv.u, temperature)) {
          state.Apply(mv);
          dirty.MarkApplied(mv);
          ++accepted;
        }
      }
      dirty.Reset();
      base += static_cast<int64_t>(bn);
      const double rate =
          static_cast<double>(accepted) / static_cast<double>(bn);
      if (rate > kHotAcceptance) {
        batch_moves = std::max(kSpeculativeMinBatch, batch_moves / 2);
      } else if (rate < kColdAcceptance) {
        batch_moves = std::min(kSpeculativeMaxBatch, batch_moves * 2);
      }
    }
    move_base += moves_per_step;
    temperature *= cooling;
  }
  return layout;
}

}  // namespace splitlock::phys
