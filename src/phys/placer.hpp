// Slot-based simulated-annealing placement.
//
// Implements the layout-stage placement of Fig. 3:
//   * "Randomize and fix TIE cells" — in secure mode, TIE cells get uniform
//     random slots and are frozen (set_dont_touch), and key-nets are
//     *detached* for placement: they contribute nothing to the cost
//     function, so neither TIE cells nor key-gates drift toward each other
//     and no proximity hint is created.
//   * Regular cells are annealed on the slot grid minimizing total HPWL,
//     reproducing the deterministic to-be-connected-cells-end-up-close
//     behaviour of commercial placers that proximity attacks exploit.
// Naive mode (the Fig. 2(a) strawman) treats TIE cells and key-nets like
// any other cell/net, which is what the ablation bench attacks.
#pragma once

#include <cstdint>

#include "netlist/netlist.hpp"
#include "phys/layout.hpp"
#include "phys/tech.hpp"

namespace splitlock::phys {

struct PlacerOptions {
  double utilization = 0.70;
  uint64_t seed = 1;
  int moves_per_cell = 60;
  int temperature_steps = 40;
  bool randomize_tie_cells = true;  // secure flow; false = naive layout
  // Speculative batched move evaluation on the exec pool (the production
  // path): each temperature step proposes chunks of moves concurrently from
  // per-move counter-based streams, evaluates them against the frozen
  // batch-entry snapshot, and a serial lowest-index-wins resolution pass
  // adopts clean decisions and re-evaluates conflicted moves in order. The
  // batch size adapts to each batch's measured acceptance rate (halve when
  // hot, double when cold), which is itself a deterministic product of the
  // serial resolution pass. Bit-identical to the sequential reference
  // annealer (false) at any thread count — a pure performance knob,
  // deliberately absent from core::FlowOptionsCanonical.
  bool parallel_moves = true;
  // Future-work mode (paper Sec. V): key inputs become I/O pads on the die
  // boundary instead of on-die TIE cells; the key is tied to fixed logic
  // in the (trusted) package routing.
  bool key_inputs_as_pads = false;
};

// Places all physical cells of `nl`; returns a layout with positions filled
// and routes empty. The netlist must outlive the layout.
Layout PlaceDesign(const Netlist& nl, const Tech& tech,
                   const PlacerOptions& options);

}  // namespace splitlock::phys
