#include "phys/power.hpp"

#include <cassert>

#include "netlist/libcell.hpp"

namespace splitlock::phys {

PowerReport EstimatePower(const Layout& layout,
                          std::span<const double> toggle_rates) {
  const Netlist& nl = *layout.netlist;
  assert(toggle_rates.size() == nl.NumNets());
  PowerReport report;

  // 0.5 * C[fF] * Vdd^2 * f[GHz]: with fF * GHz = 1e-6 W = 1 uW scale.
  const double dyn_factor = 0.5 * kVddVolts * kVddVolts * kClockGhz;
  for (NetId n = 0; n < nl.NumNets(); ++n) {
    const Net& net = nl.net(n);
    if (net.driver == kNullId || net.sinks.empty()) continue;
    double cap_ff = 0.0;
    if (layout.routes[n].routed) cap_ff += layout.NetWireCapFf(n);
    for (const Pin& p : net.sinks) {
      const Gate& sink = nl.gate(p.gate);
      if (IsPhysicalOp(sink.op)) cap_ff += CellFor(sink).input_cap_ff;
    }
    report.dynamic_uw += dyn_factor * cap_ff * toggle_rates[n];
  }
  report.leakage_uw = TotalLeakage(nl) / 1000.0;  // nW -> uW
  return report;
}

}  // namespace splitlock::phys
