// Power estimation over a placed-and-routed layout.
//
// Dynamic power: 0.5 * C * Vdd^2 * f per unit toggle rate, summed over nets
// (wire capacitance from the routes + sink pin capacitance), with toggle
// rates from random-pattern simulation. Key-nets are static (TIE-driven)
// and contribute no dynamic power — the locked designs' power cost comes
// from the restore logic switching and from ECO detours on regular nets.
// Leakage from the cell library.
#pragma once

#include <span>

#include "phys/layout.hpp"

namespace splitlock::phys {

inline constexpr double kVddVolts = 1.1;
inline constexpr double kClockGhz = 1.0;

struct PowerReport {
  double dynamic_uw = 0.0;
  double leakage_uw = 0.0;

  double TotalUw() const { return dynamic_uw + leakage_uw; }
};

// `toggle_rates` must be indexed by NetId (see EstimateToggleRates).
PowerReport EstimatePower(const Layout& layout,
                          std::span<const double> toggle_rates);

}  // namespace splitlock::phys
