#include "phys/router.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "netlist/libcell.hpp"
#include "util/rng.hpp"

namespace splitlock::phys {
namespace {

bool IsTieLikeOp(const Gate& g) {
  if (g.HasFlag(kFlagTie)) return true;
  switch (g.op) {
    case GateOp::kTieHi:
    case GateOp::kTieLo:
    case GateOp::kKeyIn:
      return true;
    default:
      return false;
  }
}

// Builds an L-shaped connection from `src` to `dst` using the given
// horizontal/vertical metal pair, with via stacks from the pin layer (M1)
// at both endpoints and a corner via between the two metals. Segments are
// ordered driver -> sink.
ConnRoute MakeLRoute(Pin sink, Point src, Point dst, int h_layer, int v_layer,
                     bool corner_at_dst_x) {
  ConnRoute conn;
  conn.sink = sink;
  const int lo = std::min(h_layer, v_layer);
  const int hi = std::max(h_layer, v_layer);
  const bool needs_h = src.x != dst.x;
  const bool needs_v = src.y != dst.y;
  if (!needs_h && !needs_v) {
    // Coincident pins: just a via stack between them on the lower metal.
    conn.vias.push_back(ViaStack{src, 1, lo});
    conn.hop_points = {src, dst};
    conn.hop_layers = {lo};
    return conn;
  }

  if (needs_h && needs_v) {
    const Point corner =
        corner_at_dst_x ? Point{dst.x, src.y} : Point{src.x, dst.y};
    if (corner_at_dst_x) {
      conn.segments.push_back(Segment{h_layer, src, corner});
      conn.segments.push_back(Segment{v_layer, corner, dst});
      conn.vias.push_back(ViaStack{src, 1, h_layer});
      conn.vias.push_back(ViaStack{corner, lo, hi});
      conn.vias.push_back(ViaStack{dst, 1, v_layer});
      conn.hop_points = {src, corner, dst};
      conn.hop_layers = {h_layer, v_layer};
    } else {
      conn.segments.push_back(Segment{v_layer, src, corner});
      conn.segments.push_back(Segment{h_layer, corner, dst});
      conn.vias.push_back(ViaStack{src, 1, v_layer});
      conn.vias.push_back(ViaStack{corner, lo, hi});
      conn.vias.push_back(ViaStack{dst, 1, h_layer});
      conn.hop_points = {src, corner, dst};
      conn.hop_layers = {v_layer, h_layer};
    }
  } else if (needs_h) {
    conn.segments.push_back(Segment{h_layer, src, dst});
    conn.vias.push_back(ViaStack{src, 1, h_layer});
    conn.vias.push_back(ViaStack{dst, 1, h_layer});
    conn.hop_points = {src, dst};
    conn.hop_layers = {h_layer};
  } else {
    conn.segments.push_back(Segment{v_layer, src, dst});
    conn.vias.push_back(ViaStack{src, 1, v_layer});
    conn.vias.push_back(ViaStack{dst, 1, v_layer});
    conn.hop_points = {src, dst};
    conn.hop_layers = {v_layer};
  }
  return conn;
}

// Chooses the (horizontal, vertical) metal pair for a regular net by span.
void LayerPairForSpan(const Tech& tech, const RouterOptions& options,
                      double span, Rng& rng, int* h_layer, int* v_layer) {
  int pair = 0;
  while (pair < 4 && span >= options.span_thresholds[pair]) ++pair;
  if (pair < 4 && rng.NextBernoulli(options.promote_probability)) ++pair;
  // Pair i occupies metals (i+2, i+3).
  const int a = pair + 2;
  const int b = pair + 3;
  assert(b <= tech.NumLayers());
  if (tech.IsHorizontal(a)) {
    *h_layer = a;
    *v_layer = b;
  } else {
    *h_layer = b;
    *v_layer = a;
  }
}

}  // namespace

std::vector<NetId> KeyNetsOf(const Netlist& nl) {
  std::vector<NetId> nets;
  for (NetId n = 0; n < nl.NumNets(); ++n) {
    const GateId d = nl.DriverOf(n);
    if (d == kNullId || nl.net(n).sinks.empty()) continue;
    const Gate& g = nl.gate(d);
    if (!IsTieLikeOp(g) || !g.HasFlag(kFlagDontTouch)) continue;
    // A key-net's sinks are key-gates.
    bool all_key_gates = true;
    for (const Pin& p : nl.net(n).sinks) {
      if (!nl.gate(p.gate).HasFlag(kFlagKeyGate)) {
        all_key_gates = false;
        break;
      }
    }
    if (all_key_gates) nets.push_back(n);
  }
  return nets;
}

void RouteDesign(Layout& layout, const RouterOptions& options) {
  const Netlist& nl = *layout.netlist;
  Rng rng(options.seed);

  std::vector<uint8_t> is_key_net(nl.NumNets(), 0);
  if (!options.route_key_nets_as_regular) {
    for (NetId n : KeyNetsOf(nl)) is_key_net[n] = 1;
  }

  for (NetId n = 0; n < nl.NumNets(); ++n) {
    NetRoute& route = layout.routes[n];
    route = NetRoute{};
    const Net& net = nl.net(n);
    if (net.driver == kNullId || net.sinks.empty()) continue;
    if (!layout.placed[net.driver]) continue;
    if (is_key_net[n]) continue;  // lifted separately

    const Point src = layout.PinOf(net.driver);
    int h_layer = 2;
    int v_layer = 3;
    LayerPairForSpan(layout.tech, options, layout.NetHpwl(n), rng, &h_layer,
                     &v_layer);
    for (const Pin& p : net.sinks) {
      if (!layout.placed[p.gate]) continue;
      route.conns.push_back(MakeLRoute(p, src, layout.PinOf(p.gate), h_layer,
                                       v_layer, rng.NextBool()));
    }
    route.routed = true;
  }
}

void LiftNetsAbove(Layout& layout, std::span<const NetId> nets,
                   int lift_layer, uint64_t seed) {
  const Netlist& nl = *layout.netlist;
  const Tech& tech = layout.tech;
  assert(lift_layer + 1 <= tech.NumLayers());
  Rng rng(seed);
  const int h_layer =
      tech.IsHorizontal(lift_layer) ? lift_layer : lift_layer + 1;
  const int v_layer =
      tech.IsHorizontal(lift_layer) ? lift_layer + 1 : lift_layer;
  for (NetId n : nets) {
    NetRoute& route = layout.routes[n];
    route = NetRoute{};
    const Net& net = nl.net(n);
    if (net.driver == kNullId || !layout.placed[net.driver]) continue;
    const Point src = layout.PinOf(net.driver);
    for (const Pin& p : net.sinks) {
      if (!layout.placed[p.gate]) continue;
      route.conns.push_back(MakeLRoute(p, src, layout.PinOf(p.gate), h_layer,
                                       v_layer, rng.NextBool()));
    }
    route.routed = true;
  }
}

LiftStats LiftKeyNets(Layout& layout, Netlist& mutable_netlist,
                      int lift_layer, uint64_t seed) {
  assert(layout.netlist == &mutable_netlist);
  const Netlist& nl = mutable_netlist;
  const Tech& tech = layout.tech;
  assert(lift_layer + 1 <= tech.NumLayers());
  Rng rng(seed);
  LiftStats stats;

  const int h_layer =
      tech.IsHorizontal(lift_layer) ? lift_layer : lift_layer + 1;
  const int v_layer =
      tech.IsHorizontal(lift_layer) ? lift_layer + 1 : lift_layer;

  const std::vector<NetId> key_nets = KeyNetsOf(nl);
  std::vector<uint8_t> is_key_net(nl.NumNets(), 0);
  for (NetId n : key_nets) is_key_net[n] = 1;

  for (NetId n : key_nets) {
    NetRoute& route = layout.routes[n];
    route = NetRoute{};
    const Net& net = nl.net(n);
    if (!layout.placed[net.driver]) continue;
    const Point src = layout.PinOf(net.driver);
    for (const Pin& p : net.sinks) {
      // Whole connection on the lift pair. The endpoint via stacks
      // (M1 -> lift pair) are exactly the paper's stacked vias on the TIE
      // output pin and the key-gate input pin.
      route.conns.push_back(MakeLRoute(p, src, layout.PinOf(p.gate), h_layer,
                                       v_layer, rng.NextBool()));
      stats.stacked_vias += 2;
    }
    route.routed = true;
    stats.lifted_wirelength_um += route.TotalLength();
  }
  stats.key_nets_lifted = key_nets.size();

  // --- ECO re-route ---------------------------------------------------
  // Key-net corridors consume tracks on the lift pair; regular nets routed
  // there detour with a probability proportional to the consumed fraction
  // of routing capacity on those layers.
  const double track_capacity_um =
      (layout.die.Width() / tech.Metal(h_layer).pitch_um) *
          layout.die.Height() +
      (layout.die.Height() / tech.Metal(v_layer).pitch_um) *
          layout.die.Width();
  const double demand_fraction =
      track_capacity_um <= 0.0
          ? 0.0
          : std::min(1.0, stats.lifted_wirelength_um * 48.0 /
                              track_capacity_um);

  for (NetId n = 0; n < nl.NumNets(); ++n) {
    NetRoute& route = layout.routes[n];
    if (!route.routed || is_key_net[n]) continue;
    for (ConnRoute& conn : route.conns) {
      bool on_lift_pair = false;
      for (const Segment& s : conn.segments) {
        if (s.layer == h_layer || s.layer == v_layer) {
          on_lift_pair = true;
          break;
        }
      }
      if (!on_lift_pair || conn.segments.empty()) continue;
      if (!rng.NextBernoulli(demand_fraction)) continue;

      // Detour: shift the first segment sideways by two pitches, adding two
      // jog segments and two vias. (Copy fields first: the push_backs below
      // invalidate references into the segment vector.)
      const int seg_layer = conn.segments.front().layer;
      const double jog = tech.Metal(seg_layer).pitch_um * 6.0;
      const Point ja = conn.segments.front().a;
      const Point jb = conn.segments.front().b;
      const bool seg_horizontal = ja.y == jb.y;
      const int jog_layer = seg_horizontal ? v_layer : h_layer;
      if (seg_horizontal) {
        conn.segments.front().a.y += jog;
        conn.segments.front().b.y += jog;
        conn.segments.push_back(
            Segment{jog_layer, ja, Point{ja.x, ja.y + jog}});
        conn.segments.push_back(
            Segment{jog_layer, Point{jb.x, jb.y + jog}, jb});
      } else {
        conn.segments.front().a.x += jog;
        conn.segments.front().b.x += jog;
        conn.segments.push_back(
            Segment{jog_layer, ja, Point{ja.x + jog, ja.y}});
        conn.segments.push_back(
            Segment{jog_layer, Point{jb.x + jog, jb.y}, jb});
      }
      conn.vias.push_back(ViaStack{ja, std::min(jog_layer, seg_layer),
                                   std::max(jog_layer, seg_layer)});
      conn.vias.push_back(ViaStack{jb, std::min(jog_layer, seg_layer),
                                   std::max(jog_layer, seg_layer)});
      ++stats.regular_nets_detoured;
    }
  }

  // Driver upsizing: after the detours, any regular driver whose wire +
  // pin load exceeds its max drivable load is bumped one drive step
  // (X1 -> X2 -> X4) — the paper's "upscaling of drivers ... to meet
  // timing (applies only to regular nets, not key-nets)".
  for (NetId n = 0; n < nl.NumNets(); ++n) {
    if (!layout.routes[n].routed || is_key_net[n]) continue;
    const Net& net = nl.net(n);
    if (net.driver == kNullId) continue;
    Gate& driver = mutable_netlist.gate(net.driver);
    if (!IsPhysicalOp(driver.op) || IsTieLikeOp(driver)) continue;
    double load_ff = layout.NetWireCapFf(n);
    for (const Pin& p : net.sinks) {
      const Gate& sink = nl.gate(p.gate);
      if (IsPhysicalOp(sink.op)) load_ff += CellFor(sink).input_cap_ff;
    }
    while (driver.drive < 4 && load_ff > CellFor(driver).max_load_ff) {
      driver.drive = driver.drive == 1 ? 2 : 4;
      ++stats.drivers_upsized;
    }
  }
  return stats;
}

}  // namespace splitlock::phys
