#include "phys/router.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "exec/parallel.hpp"
#include "exec/stream_rng.hpp"
#include "netlist/libcell.hpp"

namespace splitlock::phys {
namespace {

// Per-net work in this file is a handful of geometry pushes; chunk enough
// nets together that task overhead stays negligible.
constexpr size_t kNetGrain = 64;

bool IsTieLikeOp(const Gate& g) {
  if (g.HasFlag(kFlagTie)) return true;
  switch (g.op) {
    case GateOp::kTieHi:
    case GateOp::kTieLo:
    case GateOp::kKeyIn:
      return true;
    default:
      return false;
  }
}

// Builds an L-shaped connection from `src` to `dst` using the given
// horizontal/vertical metal pair, with via stacks from the pin layer (M1)
// at both endpoints and a corner via between the two metals. Segments are
// ordered driver -> sink.
ConnRoute MakeLRoute(Pin sink, Point src, Point dst, int h_layer, int v_layer,
                     bool corner_at_dst_x) {
  ConnRoute conn;
  conn.sink = sink;
  const int lo = std::min(h_layer, v_layer);
  const int hi = std::max(h_layer, v_layer);
  const bool needs_h = src.x != dst.x;
  const bool needs_v = src.y != dst.y;
  if (!needs_h && !needs_v) {
    // Coincident pins: just a via stack between them on the lower metal.
    conn.vias.push_back(ViaStack{src, 1, lo});
    conn.hop_points = {src, dst};
    conn.hop_layers = {lo};
    return conn;
  }

  if (needs_h && needs_v) {
    const Point corner =
        corner_at_dst_x ? Point{dst.x, src.y} : Point{src.x, dst.y};
    if (corner_at_dst_x) {
      conn.segments.push_back(Segment{h_layer, src, corner});
      conn.segments.push_back(Segment{v_layer, corner, dst});
      conn.vias.push_back(ViaStack{src, 1, h_layer});
      conn.vias.push_back(ViaStack{corner, lo, hi});
      conn.vias.push_back(ViaStack{dst, 1, v_layer});
      conn.hop_points = {src, corner, dst};
      conn.hop_layers = {h_layer, v_layer};
    } else {
      conn.segments.push_back(Segment{v_layer, src, corner});
      conn.segments.push_back(Segment{h_layer, corner, dst});
      conn.vias.push_back(ViaStack{src, 1, v_layer});
      conn.vias.push_back(ViaStack{corner, lo, hi});
      conn.vias.push_back(ViaStack{dst, 1, h_layer});
      conn.hop_points = {src, corner, dst};
      conn.hop_layers = {v_layer, h_layer};
    }
  } else if (needs_h) {
    conn.segments.push_back(Segment{h_layer, src, dst});
    conn.vias.push_back(ViaStack{src, 1, h_layer});
    conn.vias.push_back(ViaStack{dst, 1, h_layer});
    conn.hop_points = {src, dst};
    conn.hop_layers = {h_layer};
  } else {
    conn.segments.push_back(Segment{v_layer, src, dst});
    conn.vias.push_back(ViaStack{src, 1, v_layer});
    conn.vias.push_back(ViaStack{dst, 1, v_layer});
    conn.hop_points = {src, dst};
    conn.hop_layers = {v_layer};
  }
  return conn;
}

// Chooses the (horizontal, vertical) metal pair for a regular net by span.
// Draws come from the net's own counter-based stream, so nets are routable
// in any order (and concurrently) with bit-identical results.
void LayerPairForSpan(const Tech& tech, const RouterOptions& options,
                      double span, exec::StreamRng& rng, int* h_layer,
                      int* v_layer) {
  int pair = 0;
  while (pair < 4 && span >= options.span_thresholds[pair]) ++pair;
  if (pair < 4 && rng.NextBernoulli(options.promote_probability)) ++pair;
  // Pair i occupies metals (i+2, i+3).
  const int a = pair + 2;
  const int b = pair + 3;
  assert(b <= tech.NumLayers());
  if (tech.IsHorizontal(a)) {
    *h_layer = a;
    *v_layer = b;
  } else {
    *h_layer = b;
    *v_layer = a;
  }
}

// Index of the first segment of `conn` routed on the lift pair, or -1.
int LiftPairSegmentIndex(const ConnRoute& conn, int h_layer, int v_layer) {
  for (size_t i = 0; i < conn.segments.size(); ++i) {
    const int layer = conn.segments[i].layer;
    if (layer == h_layer || layer == v_layer) return static_cast<int>(i);
  }
  return -1;
}

}  // namespace

std::vector<NetId> KeyNetsOf(const Netlist& nl) {
  std::vector<NetId> nets;
  for (NetId n = 0; n < nl.NumNets(); ++n) {
    const GateId d = nl.DriverOf(n);
    if (d == kNullId || nl.net(n).sinks.empty()) continue;
    const Gate& g = nl.gate(d);
    if (!IsTieLikeOp(g) || !g.HasFlag(kFlagDontTouch)) continue;
    // A key-net's sinks are key-gates.
    bool all_key_gates = true;
    for (const Pin& p : nl.net(n).sinks) {
      if (!nl.gate(p.gate).HasFlag(kFlagKeyGate)) {
        all_key_gates = false;
        break;
      }
    }
    if (all_key_gates) nets.push_back(n);
  }
  return nets;
}

bool ApplyEcoDetour(ConnRoute& conn, const Tech& tech, int h_layer,
                    int v_layer) {
  const int idx = LiftPairSegmentIndex(conn, h_layer, v_layer);
  if (idx < 0) return false;

  // Detour: shift the lift-pair segment sideways by six routing pitches,
  // reconnecting its original endpoints with two jog segments on the
  // *other* lift-pair metal plus a via at each end. (Copy fields first: the
  // push_backs below invalidate references into the segment vector.)
  Segment& seg = conn.segments[idx];
  const int seg_layer = seg.layer;
  const double jog = tech.Metal(seg_layer).pitch_um * 6.0;
  const Point ja = seg.a;
  const Point jb = seg.b;
  if (ja == jb) return false;  // degenerate: nothing to shift
  // Layer direction, not geometry, decides the shift axis: a segment on the
  // pair's horizontal metal jogs vertically and vice versa, so the jogs land
  // on the correctly-oriented partner metal.
  const bool seg_horizontal = seg_layer == h_layer;
  const int jog_layer = seg_horizontal ? v_layer : h_layer;
  if (seg_horizontal) {
    seg.a.y += jog;
    seg.b.y += jog;
    conn.segments.push_back(Segment{jog_layer, ja, Point{ja.x, ja.y + jog}});
    conn.segments.push_back(Segment{jog_layer, Point{jb.x, jb.y + jog}, jb});
  } else {
    seg.a.x += jog;
    seg.b.x += jog;
    conn.segments.push_back(Segment{jog_layer, ja, Point{ja.x + jog, ja.y}});
    conn.segments.push_back(Segment{jog_layer, Point{jb.x + jog, jb.y}, jb});
  }
  conn.vias.push_back(ViaStack{ja, std::min(jog_layer, seg_layer),
                               std::max(jog_layer, seg_layer)});
  conn.vias.push_back(ViaStack{jb, std::min(jog_layer, seg_layer),
                               std::max(jog_layer, seg_layer)});
  return true;
}

void RouteDesign(Layout& layout, const RouterOptions& options) {
  const Netlist& nl = *layout.netlist;

  std::vector<uint8_t> is_key_net(nl.NumNets(), 0);
  if (!options.route_key_nets_as_regular) {
    for (NetId n : KeyNetsOf(nl)) is_key_net[n] = 1;
  }

  // Nets are independent: each writes only its own layout.routes[n] and
  // draws only from its own (seed, kRouteNet, n) stream.
  exec::ParallelFor(nl.NumNets(), kNetGrain, [&](size_t lo, size_t hi) {
    for (NetId n = static_cast<NetId>(lo); n < hi; ++n) {
      NetRoute& route = layout.routes[n];
      route = NetRoute{};
      const Net& net = nl.net(n);
      if (net.driver == kNullId || net.sinks.empty()) continue;
      if (!layout.placed[net.driver]) continue;
      if (is_key_net[n]) continue;  // lifted separately

      exec::StreamRng rng(options.seed, exec::StreamDomain::kRouteNet, n);
      const Point src = layout.PinOf(net.driver);
      int h_layer;
      int v_layer;
      LayerPairForSpan(layout.tech, options, layout.NetHpwl(n), rng, &h_layer,
                       &v_layer);
      for (const Pin& p : net.sinks) {
        if (!layout.placed[p.gate]) continue;
        route.conns.push_back(MakeLRoute(p, src, layout.PinOf(p.gate),
                                         h_layer, v_layer, rng.NextBool()));
      }
      route.routed = true;
    }
  });
}

void LiftNetsAbove(Layout& layout, std::span<const NetId> nets,
                   int lift_layer, uint64_t seed) {
  const Netlist& nl = *layout.netlist;
  const Tech& tech = layout.tech;
  assert(lift_layer + 1 <= tech.NumLayers());
  const int h_layer =
      tech.IsHorizontal(lift_layer) ? lift_layer : lift_layer + 1;
  const int v_layer =
      tech.IsHorizontal(lift_layer) ? lift_layer + 1 : lift_layer;
  exec::ParallelFor(nets.size(), kNetGrain, [&](size_t lo, size_t hi) {
    for (size_t i = lo; i < hi; ++i) {
      const NetId n = nets[i];
      NetRoute& route = layout.routes[n];
      route = NetRoute{};
      const Net& net = nl.net(n);
      if (net.driver == kNullId || !layout.placed[net.driver]) continue;
      exec::StreamRng rng(seed, exec::StreamDomain::kLiftNet, n);
      const Point src = layout.PinOf(net.driver);
      for (const Pin& p : net.sinks) {
        if (!layout.placed[p.gate]) continue;
        route.conns.push_back(MakeLRoute(p, src, layout.PinOf(p.gate),
                                         h_layer, v_layer, rng.NextBool()));
      }
      route.routed = true;
    }
  });
}

LiftStats LiftKeyNets(Layout& layout, Netlist& mutable_netlist,
                      int lift_layer, uint64_t seed) {
  assert(layout.netlist == &mutable_netlist);
  const Netlist& nl = mutable_netlist;
  const Tech& tech = layout.tech;
  assert(lift_layer + 1 <= tech.NumLayers());
  LiftStats stats;

  const int h_layer =
      tech.IsHorizontal(lift_layer) ? lift_layer : lift_layer + 1;
  const int v_layer =
      tech.IsHorizontal(lift_layer) ? lift_layer + 1 : lift_layer;

  const std::vector<NetId> key_nets = KeyNetsOf(nl);
  std::vector<uint8_t> is_key_net(nl.NumNets(), 0);
  for (NetId n : key_nets) is_key_net[n] = 1;

  // Lift every key-net concurrently (per-net routes + per-net streams), then
  // fold the per-net stats serially in key-net order so the floating-point
  // wirelength sum is bit-identical at any thread count.
  std::vector<size_t> vias_of(key_nets.size(), 0);
  std::vector<double> length_of(key_nets.size(), 0.0);
  exec::ParallelFor(key_nets.size(), kNetGrain, [&](size_t lo, size_t hi) {
    for (size_t i = lo; i < hi; ++i) {
      const NetId n = key_nets[i];
      NetRoute& route = layout.routes[n];
      route = NetRoute{};
      const Net& net = nl.net(n);
      if (!layout.placed[net.driver]) continue;
      exec::StreamRng rng(seed, exec::StreamDomain::kLiftNet, n);
      const Point src = layout.PinOf(net.driver);
      for (const Pin& p : net.sinks) {
        // Whole connection on the lift pair. The endpoint via stacks
        // (M1 -> lift pair) are exactly the paper's stacked vias on the TIE
        // output pin and the key-gate input pin.
        route.conns.push_back(MakeLRoute(p, src, layout.PinOf(p.gate),
                                         h_layer, v_layer, rng.NextBool()));
        vias_of[i] += 2;
      }
      route.routed = true;
      length_of[i] = route.TotalLength();
    }
  });
  for (size_t i = 0; i < key_nets.size(); ++i) {
    stats.stacked_vias += vias_of[i];
    stats.lifted_wirelength_um += length_of[i];
  }
  stats.key_nets_lifted = key_nets.size();

  // --- ECO re-route ---------------------------------------------------
  // Key-net corridors consume tracks on the lift pair; regular nets routed
  // there detour with a probability proportional to the consumed fraction
  // of routing capacity on those layers.
  const double track_capacity_um =
      (layout.die.Width() / tech.Metal(h_layer).pitch_um) *
          layout.die.Height() +
      (layout.die.Height() / tech.Metal(v_layer).pitch_um) *
          layout.die.Width();
  const double demand_fraction =
      track_capacity_um <= 0.0
          ? 0.0
          : std::min(1.0, stats.lifted_wirelength_um * 48.0 /
                              track_capacity_um);

  // Two-phase detour. Mark: every net draws from its own (seed, kEcoDetour,
  // n) stream, one Bernoulli per connection touching the lift pair, and
  // records which connections detour. Apply: the marked connections get the
  // geometry edit. Both phases are per-net independent; the split keeps the
  // draws (which define the result) apart from the edits.
  std::vector<std::vector<uint32_t>> marked(nl.NumNets());
  exec::ParallelFor(nl.NumNets(), kNetGrain, [&](size_t lo, size_t hi) {
    for (NetId n = static_cast<NetId>(lo); n < hi; ++n) {
      const NetRoute& route = layout.routes[n];
      if (!route.routed || is_key_net[n]) continue;
      exec::StreamRng rng(seed, exec::StreamDomain::kEcoDetour, n);
      for (uint32_t c = 0; c < route.conns.size(); ++c) {
        if (LiftPairSegmentIndex(route.conns[c], h_layer, v_layer) < 0) {
          continue;
        }
        if (rng.NextBernoulli(demand_fraction)) marked[n].push_back(c);
      }
    }
  });
  exec::ParallelFor(nl.NumNets(), kNetGrain, [&](size_t lo, size_t hi) {
    for (NetId n = static_cast<NetId>(lo); n < hi; ++n) {
      for (uint32_t c : marked[n]) {
        ApplyEcoDetour(layout.routes[n].conns[c], tech, h_layer, v_layer);
      }
    }
  });
  for (NetId n = 0; n < nl.NumNets(); ++n) {
    stats.regular_nets_detoured += marked[n].size();
  }

  // Driver upsizing: after the detours, any regular driver whose wire +
  // pin load exceeds its max drivable load is bumped one drive step
  // (X1 -> X2 -> X4) — the paper's "upscaling of drivers ... to meet
  // timing (applies only to regular nets, not key-nets)". Upsizing a gate
  // raises its input capacitance, which adds load to the nets feeding it,
  // so the mark/apply rounds iterate to a fixpoint; marks are computed
  // against the state at the start of the round, which makes each round —
  // unlike a single in-order sweep — independent of net order.
  std::vector<uint8_t> bump(nl.NumNets(), 0);
  for (;;) {
    exec::ParallelFor(nl.NumNets(), kNetGrain, [&](size_t lo, size_t hi) {
      for (NetId n = static_cast<NetId>(lo); n < hi; ++n) {
        bump[n] = 0;
        if (!layout.routes[n].routed || is_key_net[n]) continue;
        const Net& net = nl.net(n);
        if (net.driver == kNullId) continue;
        const Gate& driver = nl.gate(net.driver);
        if (!IsPhysicalOp(driver.op) || IsTieLikeOp(driver)) continue;
        if (driver.drive >= 4) continue;
        double load_ff = layout.NetWireCapFf(n);
        for (const Pin& p : net.sinks) {
          const Gate& sink = nl.gate(p.gate);
          if (IsPhysicalOp(sink.op)) load_ff += CellFor(sink).input_cap_ff;
        }
        if (load_ff > CellFor(driver).max_load_ff) bump[n] = 1;
      }
    });
    size_t bumped = 0;
    for (NetId n = 0; n < nl.NumNets(); ++n) {
      if (!bump[n]) continue;
      Gate& driver = mutable_netlist.gate(nl.net(n).driver);
      driver.drive = driver.drive == 1 ? 2 : 4;
      ++bumped;
    }
    stats.drivers_upsized += bumped;
    if (bumped == 0) break;
  }
  return stats;
}

}  // namespace splitlock::phys
