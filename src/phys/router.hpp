// Layer-aware pattern routing, key-net lifting, and ECO re-route.
//
// Regular nets are routed as per-sink L-shapes on a layer pair chosen by
// net span — short nets on low metals, long nets on high metals — which is
// the commercial-router behaviour that determines how many regular nets
// break at a given split layer (Table I's regular-net CCR trend).
//
// Key-nets get the paper's treatment (Sec. III-B): the whole net is routed
// strictly above the split layer, entering and leaving through *stacked
// vias* placed directly on the TIE cell's output pin and the key-gate's
// input pin, so the FEOL contains no key-net wiring at all.
//
// After lifting, ECO re-route models the cost the paper measures: regular
// nets that share the lift layers detour around the key-net corridors
// (added wirelength and vias -> power), and drivers that then miss their
// load limit are upsized (area/power).
//
// Every routing pass is per-net independent: randomness comes from
// counter-based streams keyed by net id (exec/stream_rng.hpp), never from a
// shared sequential Rng, and each net writes only its own NetRoute — so the
// passes run as ParallelFor sweeps over the net space with bit-identical
// results at any thread count (the library-wide determinism contract).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "netlist/netlist.hpp"
#include "phys/layout.hpp"

namespace splitlock::phys {

struct RouterOptions {
  uint64_t seed = 1;
  // Net-span thresholds (um) promoting a net to the next layer pair.
  // Pair i covers metals (i+2, i+3) with i in [0, 4]:
  // (M2,M3), (M3,M4), (M4,M5), (M5,M6), (M6,M7).
  double span_thresholds[4] = {10.0, 25.0, 60.0, 140.0};
  double promote_probability = 0.08;  // congestion-style jitter
  bool route_key_nets_as_regular = false;  // naive (unlifted) flow
};

// Nets driven by a TIE-like source feeding key-gates (the key-nets).
std::vector<NetId> KeyNetsOf(const Netlist& nl);

// Routes every placed net; key-nets are left unrouted unless
// route_key_nets_as_regular is set (they are lifted separately).
void RouteDesign(Layout& layout, const RouterOptions& options);

// lint:result-schema(v4) encoded by store/artifact_io (flow artifact) — a
// result-affecting change here needs a kResultSchemaVersion bump.
struct LiftStats {
  size_t key_nets_lifted = 0;
  size_t stacked_vias = 0;
  double lifted_wirelength_um = 0.0;
  size_t regular_nets_detoured = 0;
  size_t drivers_upsized = 0;
};

// Lifts all key-nets so they are routed entirely on metals >= `lift_layer`
// (H/V pair (lift_layer, lift_layer+1)), with stacked vias at both pins,
// then applies ECO re-route to regular nets sharing those layers. Upsized
// drivers are written back through `mutable_netlist`, which must be the
// same object the layout references.
LiftStats LiftKeyNets(Layout& layout, Netlist& mutable_netlist,
                      int lift_layer, uint64_t seed);

// Detours the first segment of `conn` routed on the (h_layer, v_layer) lift
// pair: the segment shifts sideways by six routing pitches and its original
// endpoints are reconnected through two jogs on the pair's other metal plus
// a via at each end. Returns false — leaving `conn` untouched — when no
// segment of the connection is on the pair. Exposed for tests; LiftKeyNets
// applies it to the connections its congestion model marks.
bool ApplyEcoDetour(ConnRoute& conn, const Tech& tech, int h_layer,
                    int v_layer);

// Re-routes the given nets entirely on the (lift_layer, lift_layer+1) pair
// with stacked vias on their pins — the mechanism behind concerted wire
// lifting of *regular* nets ([12]/[13] baselines).
void LiftNetsAbove(Layout& layout, std::span<const NetId> nets,
                   int lift_layer, uint64_t seed);

}  // namespace splitlock::phys
