#include "phys/tech.hpp"

namespace splitlock::phys {

Tech Tech::Nangate45Like() {
  Tech t;
  // name, horizontal, R (kOhm/um), C (fF/um), pitch (um)
  t.layers = {
      {"M1", true, 0.0040, 0.22, 0.19},
      {"M2", false, 0.0035, 0.21, 0.19},
      {"M3", true, 0.0030, 0.21, 0.19},
      {"M4", false, 0.0015, 0.20, 0.28},
      {"M5", true, 0.0012, 0.20, 0.28},
      {"M6", false, 0.0006, 0.19, 0.56},
      {"M7", true, 0.0005, 0.19, 0.56},
      {"M8", false, 0.0004, 0.18, 0.80},
  };
  t.via_r_kohm = 0.005;
  t.via_c_ff = 0.05;
  return t;
}

}  // namespace splitlock::phys
