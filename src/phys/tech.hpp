// Back-end technology model: metal stack, parasitics, vias.
//
// An 8-layer stack patterned on a 45nm node. Lower layers are thin (high
// resistance, tight pitch, used for short nets); upper layers are thick
// (low resistance, coarse pitch, used for long nets). Preferred routing
// direction alternates per layer starting horizontal at M1. Units follow
// libcell.hpp: kOhm, fF, um (1 kOhm * 1 fF = 1 ps).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace splitlock::phys {

struct Layer {
  std::string name;          // "M1".."M8"
  bool horizontal = true;    // preferred routing direction
  double r_kohm_per_um = 0.0;
  double c_ff_per_um = 0.0;
  double pitch_um = 0.0;
};

struct Tech {
  std::vector<Layer> layers;  // layers[i] is M(i+1)
  double via_r_kohm = 0.005;
  double via_c_ff = 0.05;

  int NumLayers() const { return static_cast<int>(layers.size()); }
  // 1-based metal index accessor (layer 1 = M1).
  const Layer& Metal(int m) const { return layers[m - 1]; }
  bool IsHorizontal(int m) const { return Metal(m).horizontal; }

  // Default technology used throughout the experiments.
  static Tech Nangate45Like();
};

}  // namespace splitlock::phys
