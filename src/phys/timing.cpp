#include "phys/timing.hpp"

#include <algorithm>

#include "netlist/libcell.hpp"

namespace splitlock::phys {

TimingReport RunSta(const Layout& layout) {
  const Netlist& nl = *layout.netlist;
  TimingReport report;
  report.net_arrival_ps.assign(nl.NumNets(), 0.0);

  for (GateId g : nl.TopoOrder()) {
    const Gate& gate = nl.gate(g);
    if (gate.op == GateOp::kOutput || gate.op == GateOp::kDeleted) continue;
    if (IsSourceOp(gate.op)) {
      // Primary inputs and constant sources launch at t = 0.
      continue;
    }
    // A gate can lose its output net through netlist surgery (morphing,
    // partially-detached editing state); with no net to annotate there is
    // nothing to time — and nl.net(kNullId) / net_arrival_ps[kNullId] would
    // both be out-of-bounds accesses.
    const NetId out = gate.out;
    if (out == kNullId) continue;
    double input_arrival = 0.0;
    for (NetId n : gate.fanins) {
      input_arrival = std::max(input_arrival, report.net_arrival_ps[n]);
    }
    const LibCell& cell = CellFor(gate);
    double wire_cap = 0.0;
    double wire_res = 0.0;
    if (out < layout.routes.size() && layout.routes[out].routed) {
      wire_cap = layout.NetWireCapFf(out);
      wire_res = layout.NetWireResKohm(out);
    }
    double pin_cap = 0.0;
    for (const Pin& p : nl.net(out).sinks) {
      const Gate& sink = nl.gate(p.gate);
      if (IsPhysicalOp(sink.op)) pin_cap += CellFor(sink).input_cap_ff;
    }
    const double delay = cell.intrinsic_delay_ps +
                         cell.drive_res_kohm * (wire_cap + pin_cap) +
                         0.5 * wire_res * wire_cap;
    report.net_arrival_ps[out] = input_arrival + delay;
  }

  for (GateId g : nl.outputs()) {
    // Driver-less outputs (fanin detached by editing) observe nothing.
    const Gate& po = nl.gate(g);
    if (po.fanins.empty() || po.fanins[0] == kNullId) continue;
    report.critical_path_ps =
        std::max(report.critical_path_ps, report.net_arrival_ps[po.fanins[0]]);
  }
  return report;
}

}  // namespace splitlock::phys
