#include "phys/timing.hpp"

#include <algorithm>

#include "exec/parallel.hpp"
#include "netlist/libcell.hpp"

namespace splitlock::phys {

namespace {

// Below this many gates the level-bucket setup costs more than the serial
// walk it replaces.
constexpr size_t kParallelStaMinGates = 512;
constexpr size_t kStaGrain = 32;

// Times one gate: reads finalized fanin arrivals, writes the arrival of the
// gate's own output net. The single-driver invariant makes the write
// exclusive, so this body runs unchanged (and produces identical doubles)
// under both the serial walk and the per-level ParallelFor sweep.
inline void TimeGate(const Layout& layout, const Netlist& nl, GateId g,
                     std::vector<double>& arrival) {
  const Gate& gate = nl.gate(g);
  if (gate.op == GateOp::kOutput || gate.op == GateOp::kDeleted) return;
  if (IsSourceOp(gate.op)) {
    // Primary inputs and constant sources launch at t = 0.
    return;
  }
  // A gate can lose its output net through netlist surgery (morphing,
  // partially-detached editing state); with no net to annotate there is
  // nothing to time — and nl.net(kNullId) / arrival[kNullId] would both be
  // out-of-bounds accesses.
  const NetId out = gate.out;
  if (out == kNullId) return;
  double input_arrival = 0.0;
  for (NetId n : gate.fanins) {
    input_arrival = std::max(input_arrival, arrival[n]);
  }
  const LibCell& cell = CellFor(gate);
  double wire_cap = 0.0;
  double wire_res = 0.0;
  if (out < layout.routes.size() && layout.routes[out].routed) {
    wire_cap = layout.NetWireCapFf(out);
    wire_res = layout.NetWireResKohm(out);
  }
  double pin_cap = 0.0;
  for (const Pin& p : nl.net(out).sinks) {
    const Gate& sink = nl.gate(p.gate);
    if (IsPhysicalOp(sink.op)) pin_cap += CellFor(sink).input_cap_ff;
  }
  const double delay = cell.intrinsic_delay_ps +
                       cell.drive_res_kohm * (wire_cap + pin_cap) +
                       0.5 * wire_res * wire_cap;
  arrival[out] = input_arrival + delay;
}

// Fixed-order max over primary outputs — the same loop for both engines, so
// critical_path_ps is bit-identical regardless of how arrivals were swept.
double CriticalPath(const Netlist& nl, const std::vector<double>& arrival) {
  double critical = 0.0;
  for (GateId g : nl.outputs()) {
    // Driver-less outputs (fanin detached by editing) observe nothing.
    const Gate& po = nl.gate(g);
    if (po.fanins.empty() || po.fanins[0] == kNullId) continue;
    critical = std::max(critical, arrival[po.fanins[0]]);
  }
  return critical;
}

}  // namespace

TimingReport RunStaSerial(const Layout& layout) {
  const Netlist& nl = *layout.netlist;
  TimingReport report;
  report.net_arrival_ps.assign(nl.NumNets(), 0.0);
  for (GateId g : nl.TopoOrder()) {
    TimeGate(layout, nl, g, report.net_arrival_ps);
  }
  report.critical_path_ps = CriticalPath(nl, report.net_arrival_ps);
  return report;
}

TimingReport RunSta(const Layout& layout) {
  const Netlist& nl = *layout.netlist;
  if (nl.NumGates() < kParallelStaMinGates) return RunStaSerial(layout);

  // Logic levels: level(g) = 1 + max level over fanin drivers. The topo
  // order guarantees drivers are leveled before their sinks, and bucketing
  // in topo order keeps the per-level gate order deterministic.
  const std::vector<GateId> topo = nl.TopoOrder();
  std::vector<uint32_t> level(nl.NumGates(), 0);
  uint32_t max_level = 0;
  for (GateId g : topo) {
    const Gate& gate = nl.gate(g);
    if (gate.op == GateOp::kDeleted) continue;
    uint32_t lvl = 0;
    for (NetId n : gate.fanins) {
      if (n == kNullId) continue;  // detached kOutput observers
      const GateId driver = nl.DriverOf(n);
      if (driver != kNullId) lvl = std::max(lvl, level[driver] + 1);
    }
    level[g] = lvl;
    max_level = std::max(max_level, lvl);
  }
  std::vector<std::vector<GateId>> buckets(max_level + 1);
  for (GateId g : topo) buckets[level[g]].push_back(g);

  TimingReport report;
  report.net_arrival_ps.assign(nl.NumNets(), 0.0);
  for (const std::vector<GateId>& bucket : buckets) {
    // Every fanin of a level-L gate was finalized by level < L, and each
    // gate writes only its own output net: race-free, order-insensitive.
    exec::ParallelFor(bucket.size(), kStaGrain, [&](size_t lo, size_t hi) {
      for (size_t i = lo; i < hi; ++i) {
        TimeGate(layout, nl, bucket[i], report.net_arrival_ps);
      }
    });
  }
  report.critical_path_ps = CriticalPath(nl, report.net_arrival_ps);
  return report;
}

}  // namespace splitlock::phys
