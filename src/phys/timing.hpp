// Static timing analysis over a placed-and-routed layout.
//
// Delay model: gate delay = intrinsic + R_drive * (C_wire + C_sink_pins),
// wire delay = 0.5 * R_wire * C_wire (lumped Elmore), arrival times
// propagated in topological order. TIE cells define static-only paths
// (Sec. II-C item 5) and start at arrival 0; the XOR/XNOR key-gates they
// feed still add their gate delay on the data path, which is where the
// locked designs' timing cost comes from.
#pragma once

#include <vector>

#include "phys/layout.hpp"

namespace splitlock::phys {

struct TimingReport {
  double critical_path_ps = 0.0;
  std::vector<double> net_arrival_ps;  // indexed by NetId
};

// Levelized parallel STA: gates are bucketed by logic level (every fanin
// driver sits on a strictly lower level) and each level is swept with
// ParallelFor — each gate writes only its own output net's arrival, so the
// sweep is race-free and every arrival is computed from exactly the same
// inputs as the serial walk. critical_path_ps is reduced serially in
// primary-output order. Bit-identical to RunStaSerial at any thread count;
// small designs dispatch to the serial walk outright.
TimingReport RunSta(const Layout& layout);

// The reference single-threaded topological walk (also the small-design
// fast path). Exposed for the determinism tests and bench cross-checks.
TimingReport RunStaSerial(const Layout& layout);

}  // namespace splitlock::phys
