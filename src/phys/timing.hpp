// Static timing analysis over a placed-and-routed layout.
//
// Delay model: gate delay = intrinsic + R_drive * (C_wire + C_sink_pins),
// wire delay = 0.5 * R_wire * C_wire (lumped Elmore), arrival times
// propagated in topological order. TIE cells define static-only paths
// (Sec. II-C item 5) and start at arrival 0; the XOR/XNOR key-gates they
// feed still add their gate delay on the data path, which is where the
// locked designs' timing cost comes from.
#pragma once

#include <vector>

#include "phys/layout.hpp"

namespace splitlock::phys {

struct TimingReport {
  double critical_path_ps = 0.0;
  std::vector<double> net_arrival_ps;  // indexed by NetId
};

TimingReport RunSta(const Layout& layout);

}  // namespace splitlock::phys
