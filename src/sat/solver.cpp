#include "sat/solver.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace splitlock::sat {
namespace {

// Luby restart sequence: 1 1 2 1 1 2 4 1 1 2 1 1 2 4 8 ...
uint64_t Luby(uint64_t i) {
  uint64_t size = 1;
  uint64_t seq = 0;
  while (size < i + 1) {
    size = 2 * size + 1;
    ++seq;
  }
  while (size - 1 != i) {
    size = (size - 1) / 2;
    --seq;
    i %= size;
  }
  return 1ULL << seq;
}

constexpr double kVarDecay = 1.0 / 0.95;
constexpr double kActivityRescale = 1e100;

}  // namespace

Solver Solver::Clone() const {
  Solver copy(*this);
  copy.abort_flag_ = nullptr;
  return copy;
}

uint64_t Solver::NextDiversificationWord() {
  if (!div_seeded_) {
    // SplitMix64 finalizer over the seed, so nearby seeds give unrelated
    // streams.
    uint64_t x = config_.branch_seed + 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    div_state_ = x ^ (x >> 31);
    div_seeded_ = true;
  }
  div_state_ += 0x9e3779b97f4a7c15ULL;
  uint64_t x = div_state_;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

Var Solver::NewVar() {
  const Var v = static_cast<Var>(assign_.size());
  assign_.push_back(kUndef);
  model_.push_back(kUndef);
  phase_.push_back(kFalse);
  level_.push_back(0);
  reason_.push_back(kNoReason);
  activity_.push_back(0.0);
  heap_pos_.push_back(-1);
  seen_.push_back(0);
  watches_.emplace_back();
  watches_.emplace_back();
  HeapInsert(v);
  return v;
}

bool Solver::AddClause(std::vector<Lit> lits) {
  if (unsat_at_root_) return false;
  assert(DecisionLevel() == 0);
  // Remove duplicates and satisfied/false literals at root.
  std::sort(lits.begin(), lits.end());
  std::vector<Lit> out;
  out.reserve(lits.size());
  for (size_t i = 0; i < lits.size(); ++i) {
    const Lit l = lits[i];
    if (i + 1 < lits.size() && lits[i + 1] == Negate(l)) return true;  // taut
    if (!out.empty() && out.back() == l) continue;
    if (!out.empty() && out.back() == Negate(l)) return true;  // tautology
    const int8_t v = ValueOfLit(l);
    if (v == kTrue) return true;  // already satisfied
    if (v == kFalse) continue;    // drop falsified literal
    out.push_back(l);
  }
  if (out.empty()) {
    unsat_at_root_ = true;
    return false;
  }
  if (out.size() == 1) {
    Enqueue(out[0], kNoReason);
    if (Propagate() != kNoReason) {
      unsat_at_root_ = true;
      return false;
    }
    return true;
  }
  AttachClause(out);
  return true;
}

Solver::ClauseRef Solver::AttachClause(std::span<const Lit> lits) {
  const ClauseRef ref = static_cast<ClauseRef>(clauses_.size());
  clauses_.push_back(Clause{static_cast<uint32_t>(arena_.size()),
                            static_cast<uint32_t>(lits.size())});
  arena_.insert(arena_.end(), lits.begin(), lits.end());
  const auto cl = LitsOf(ref);
  watches_[Negate(cl[0])].push_back(Watcher{ref, cl[1]});
  watches_[Negate(cl[1])].push_back(Watcher{ref, cl[0]});
  return ref;
}

void Solver::Enqueue(Lit l, ClauseRef reason) {
  const Var v = VarOf(l);
  assert(assign_[v] == kUndef);
  assign_[v] = IsNegated(l) ? kFalse : kTrue;
  level_[v] = DecisionLevel();
  reason_[v] = reason;
  trail_.push_back(l);
}

Solver::ClauseRef Solver::Propagate() {
  while (propagate_head_ < trail_.size()) {
    const Lit p = trail_[propagate_head_++];
    auto& ws = watches_[p];
    size_t keep = 0;
    for (size_t i = 0; i < ws.size(); ++i) {
      const Watcher w = ws[i];
      if (ValueOfLit(w.blocker) == kTrue) {
        ws[keep++] = w;
        continue;
      }
      auto cl = LitsOf(w.clause);
      // Ensure the falsified literal is cl[1].
      const Lit not_p = Negate(p);
      if (cl[0] == not_p) std::swap(cl[0], cl[1]);
      if (ValueOfLit(cl[0]) == kTrue) {
        ws[keep++] = Watcher{w.clause, cl[0]};
        continue;
      }
      // Search a replacement watch.
      bool moved = false;
      for (size_t k = 2; k < cl.size(); ++k) {
        if (ValueOfLit(cl[k]) != kFalse) {
          std::swap(cl[1], cl[k]);
          watches_[Negate(cl[1])].push_back(Watcher{w.clause, cl[0]});
          moved = true;
          break;
        }
      }
      if (moved) continue;
      // Clause is unit or conflicting.
      if (ValueOfLit(cl[0]) == kFalse) {
        // Conflict: restore remaining watchers and report.
        for (size_t j = i; j < ws.size(); ++j) ws[keep++] = ws[j];
        ws.resize(keep);
        return w.clause;
      }
      ws[keep++] = Watcher{w.clause, cl[0]};
      Enqueue(cl[0], w.clause);
    }
    ws.resize(keep);
  }
  return kNoReason;
}

void Solver::BumpVar(Var v) {
  activity_[v] += var_inc_;
  if (activity_[v] > kActivityRescale) {
    for (double& a : activity_) a /= kActivityRescale;
    var_inc_ /= kActivityRescale;
  }
  if (heap_pos_[v] >= 0) HeapDecrease(v);
}

void Solver::DecayActivities() { var_inc_ *= kVarDecay; }

void Solver::Analyze(ClauseRef conflict, std::vector<Lit>* learnt,
                     int* bt_level) {
  learnt->clear();
  learnt->push_back(0);  // slot for the asserting literal
  int counter = 0;
  Lit p = -1;
  size_t trail_index = trail_.size();
  ClauseRef reason = conflict;
  do {
    auto cl = LitsOf(reason);
    const size_t start = (p == -1) ? 0 : 1;
    for (size_t i = start; i < cl.size(); ++i) {
      const Lit q = cl[i];
      const Var v = VarOf(q);
      if (seen_[v] != 0 || level_[v] == 0) continue;
      seen_[v] = 1;
      BumpVar(v);
      if (level_[v] >= DecisionLevel()) {
        ++counter;
      } else {
        learnt->push_back(q);
      }
    }
    // Walk the trail backwards to the next marked literal.
    do {
      --trail_index;
      p = trail_[trail_index];
    } while (seen_[VarOf(p)] == 0);
    seen_[VarOf(p)] = 0;
    reason = reason_[VarOf(p)];
    --counter;
    if (counter > 0) {
      // The reason's first literal is p itself; skip it via start=1 above.
      assert(reason != kNoReason);
      // Move p to the front of its reason clause for the convention above.
      auto rcl = LitsOf(reason);
      if (rcl[0] != p) {
        for (size_t i = 1; i < rcl.size(); ++i) {
          if (rcl[i] == p) {
            std::swap(rcl[0], rcl[i]);
            break;
          }
        }
      }
    }
  } while (counter > 0);
  (*learnt)[0] = Negate(p);

  // Compute the backjump level (second-highest level in the clause).
  *bt_level = 0;
  if (learnt->size() > 1) {
    size_t max_i = 1;
    for (size_t i = 2; i < learnt->size(); ++i) {
      if (level_[VarOf((*learnt)[i])] > level_[VarOf((*learnt)[max_i])]) {
        max_i = i;
      }
    }
    std::swap((*learnt)[1], (*learnt)[max_i]);
    *bt_level = level_[VarOf((*learnt)[1])];
  }
  for (const Lit l : *learnt) seen_[VarOf(l)] = 0;
}

void Solver::BacktrackTo(int target_level) {
  if (DecisionLevel() <= target_level) return;
  const int bound = trail_limits_[target_level];
  for (int i = static_cast<int>(trail_.size()) - 1; i >= bound; --i) {
    const Var v = VarOf(trail_[i]);
    phase_[v] = assign_[v];
    assign_[v] = kUndef;
    reason_[v] = kNoReason;
    if (heap_pos_[v] < 0) HeapInsert(v);
  }
  trail_.resize(bound);
  trail_limits_.resize(target_level);
  propagate_head_ = trail_.size();
}

Lit Solver::PickBranchLit() {
  const auto branch_true = [&](Var v) -> bool {
    switch (config_.polarity) {
      case PolarityMode::kSaved:
        return phase_[v] == kTrue;
      case PolarityMode::kFalse:
        return false;
      case PolarityMode::kTrue:
        return true;
      case PolarityMode::kRandom:
        return (NextDiversificationWord() & 1u) != 0;
    }
    return phase_[v] == kTrue;
  };
  if (config_.random_branch_freq > 0.0 && !heap_.empty()) {
    const double u = static_cast<double>(NextDiversificationWord() >> 11) *
                     0x1p-53;  // uniform in [0, 1)
    if (u < config_.random_branch_freq) {
      // One draw into the VSIDS heap; a hit on an assigned variable simply
      // falls through to the activity order (keeps the stream's draw count
      // a pure function of the search path).
      const Var v = heap_[NextDiversificationWord() % heap_.size()];
      if (assign_[v] == kUndef) return MakeLit(v, !branch_true(v));
    }
  }
  while (!heap_.empty()) {
    const Var v = HeapPop();
    if (assign_[v] == kUndef) {
      return MakeLit(v, !branch_true(v));
    }
  }
  return -1;
}

SolveResult Solver::Solve(std::span<const Lit> assumptions,
                          uint64_t conflict_limit) {
  if (unsat_at_root_) return SolveResult::kUnsat;
  BacktrackTo(0);
  if (Propagate() != kNoReason) {
    unsat_at_root_ = true;
    return SolveResult::kUnsat;
  }

  const uint64_t restart_unit = std::max<uint64_t>(config_.restart_unit, 1);
  uint64_t restart_round = 0;
  uint64_t conflicts_until_restart = Luby(restart_round) * restart_unit;
  uint64_t local_conflicts = 0;
  std::vector<Lit> learnt;

  for (;;) {
    if (abort_flag_ && abort_flag_->load(std::memory_order_relaxed)) {
      BacktrackTo(0);
      return SolveResult::kUnknown;
    }
    const ClauseRef conflict = Propagate();
    if (conflict != kNoReason) {
      ++conflicts_;
      ++local_conflicts;
      if (DecisionLevel() == 0 ||
          DecisionLevel() <= static_cast<int>(assumptions.size())) {
        // Conflict under assumptions (or at root): UNSAT for this query.
        BacktrackTo(0);
        if (DecisionLevel() == 0 && assumptions.empty()) {
          unsat_at_root_ = true;
        }
        return SolveResult::kUnsat;
      }
      int bt_level = 0;
      Analyze(conflict, &learnt, &bt_level);
      // Never backjump into the assumption prefix.
      bt_level = std::max(bt_level, static_cast<int>(assumptions.size()));
      BacktrackTo(bt_level);
      if (learnt.size() == 1) {
        if (DecisionLevel() == 0) {
          Enqueue(learnt[0], kNoReason);
        } else {
          // Asserting unit under assumptions.
          Enqueue(learnt[0], kNoReason);
        }
      } else {
        const ClauseRef ref = AttachClause(learnt);
        Enqueue(learnt[0], ref);
      }
      DecayActivities();
      if (conflict_limit != 0 && conflicts_ >= conflict_limit) {
        BacktrackTo(0);
        return SolveResult::kUnknown;
      }
      if (local_conflicts >= conflicts_until_restart) {
        local_conflicts = 0;
        conflicts_until_restart = Luby(++restart_round) * restart_unit;
        BacktrackTo(static_cast<int>(assumptions.size()));
      }
      continue;
    }

    // Place pending assumptions as decisions.
    if (DecisionLevel() < static_cast<int>(assumptions.size())) {
      const Lit a = assumptions[DecisionLevel()];
      const int8_t v = ValueOfLit(a);
      if (v == kFalse) {
        BacktrackTo(0);
        return SolveResult::kUnsat;
      }
      trail_limits_.push_back(static_cast<int>(trail_.size()));
      if (v == kUndef) Enqueue(a, kNoReason);
      continue;
    }

    const Lit next = PickBranchLit();
    if (next < 0) {
      // Full assignment: record the model.
      model_ = assign_;
      BacktrackTo(0);
      return SolveResult::kSat;
    }
    trail_limits_.push_back(static_cast<int>(trail_.size()));
    Enqueue(next, kNoReason);
  }
}

// --- VSIDS heap -------------------------------------------------------------

void Solver::HeapSwap(int i, int j) {
  std::swap(heap_[i], heap_[j]);
  heap_pos_[heap_[i]] = i;
  heap_pos_[heap_[j]] = j;
}

void Solver::HeapInsert(Var v) {
  heap_.push_back(v);
  int i = static_cast<int>(heap_.size()) - 1;
  heap_pos_[v] = i;
  while (i > 0) {
    const int parent = (i - 1) / 2;
    if (activity_[heap_[parent]] >= activity_[heap_[i]]) break;
    HeapSwap(i, parent);
    i = parent;
  }
}

void Solver::HeapDecrease(Var v) {
  // Activity increased: sift up.
  int i = heap_pos_[v];
  while (i > 0) {
    const int parent = (i - 1) / 2;
    if (activity_[heap_[parent]] >= activity_[heap_[i]]) break;
    HeapSwap(i, parent);
    i = parent;
  }
}

Var Solver::HeapPop() {
  const Var top = heap_[0];
  heap_pos_[top] = -1;
  if (heap_.size() > 1) {
    heap_[0] = heap_.back();
    heap_pos_[heap_[0]] = 0;
  }
  heap_.pop_back();
  // Sift down.
  int i = 0;
  const int n = static_cast<int>(heap_.size());
  for (;;) {
    const int l = 2 * i + 1;
    const int r = 2 * i + 2;
    int best = i;
    if (l < n && activity_[heap_[l]] > activity_[heap_[best]]) best = l;
    if (r < n && activity_[heap_[r]] > activity_[heap_[best]]) best = r;
    if (best == i) break;
    HeapSwap(i, best);
    i = best;
  }
  return top;
}

}  // namespace splitlock::sat
