// A compact CDCL SAT solver.
//
// Feature set: two-watched-literal propagation, first-UIP conflict-clause
// learning with backjumping, VSIDS branching with phase saving, and Luby
// restarts. This is the engine behind the logic-equivalence checker (the
// Cadence Conformal LEC stand-in in the locking flow of Fig. 3) and the
// SAT-based cross-checks in the test suite.
#pragma once

#include <atomic>
#include <cstdint>
#include <span>
#include <vector>

namespace splitlock::sat {

using Var = int32_t;
using Lit = int32_t;  // encoded as 2*var + (negated ? 1 : 0)

inline Lit MakeLit(Var v, bool negated = false) {
  return 2 * v + (negated ? 1 : 0);
}
inline Lit Negate(Lit l) { return l ^ 1; }
inline Var VarOf(Lit l) { return l >> 1; }
inline bool IsNegated(Lit l) { return (l & 1) != 0; }

enum class SolveResult { kSat, kUnsat, kUnknown };

// Decision-polarity policy for PickBranchLit.
enum class PolarityMode : uint8_t {
  kSaved,   // phase saving (default)
  kFalse,   // always branch negative first
  kTrue,    // always branch positive first
  kRandom,  // uniform coin per decision, from the diversification stream
};

// Diversification knobs for portfolio solving. Every knob is deterministic:
// two solvers with identical clause databases and identical configs walk
// identical search trees. Distinct configs explore the space differently,
// which is what a portfolio races (mallob-style).
struct SolverConfig {
  PolarityMode polarity = PolarityMode::kSaved;
  // Probability of replacing a VSIDS decision with a uniformly random
  // unassigned variable. 0 disables the diversification stream entirely.
  double random_branch_freq = 0.0;
  // Seed for the per-solver diversification stream (random decisions and
  // random polarities). Ignored until a random knob is enabled.
  uint64_t branch_seed = 0;
  // Base interval of the Luby restart sequence, in conflicts.
  uint64_t restart_unit = 128;

  bool operator==(const SolverConfig&) const = default;
};

class Solver {
 public:
  Solver() = default;

  // Deep copy: clause database (including learnt clauses), assignment
  // trail, heuristic state (activities, saved phases) and config. A clone
  // with the same config solves future queries identically to the
  // original; diverging behaviour requires diverging configs. The abort
  // flag is NOT inherited — clones start unabortable.
  Solver Clone() const;

  // Diversification knobs. Call between Solve()s (root level). Re-seeds
  // the diversification stream from config.branch_seed.
  void SetConfig(const SolverConfig& config) {
    config_ = config;
    div_seeded_ = false;
  }
  const SolverConfig& config() const { return config_; }

  // Cooperative cancellation: when `flag` becomes true, an in-flight
  // Solve() returns kUnknown at the next conflict/decision boundary.
  // Pass nullptr to detach. The flag must outlive the solve.
  void SetAbortFlag(const std::atomic<bool>* flag) { abort_flag_ = flag; }

  Var NewVar();
  int NumVars() const { return static_cast<int>(assign_.size()); }

  // Adds a clause (empty clause makes the instance trivially UNSAT).
  // Returns false when the formula is already unsatisfiable at root level.
  bool AddClause(std::vector<Lit> lits);

  // Convenience overloads.
  bool AddUnit(Lit a) { return AddClause({a}); }
  bool AddBinary(Lit a, Lit b) { return AddClause({a, b}); }
  bool AddTernary(Lit a, Lit b, Lit c) { return AddClause({a, b, c}); }

  // Solves under optional assumptions. `conflict_limit` bounds the search
  // (0 = unlimited); exceeding it yields kUnknown.
  SolveResult Solve(std::span<const Lit> assumptions = {},
                    uint64_t conflict_limit = 0);

  // Model access, valid after kSat.
  bool ModelValue(Var v) const { return model_[v] == 1; }

  uint64_t conflicts() const { return conflicts_; }

 private:
  enum : int8_t { kUndef = -1, kFalse = 0, kTrue = 1 };

  struct Clause {
    uint32_t offset;  // into literal arena
    uint32_t size;
  };
  using ClauseRef = int32_t;
  static constexpr ClauseRef kNoReason = -1;

  struct Watcher {
    ClauseRef clause;
    Lit blocker;
  };

  int8_t ValueOfLit(Lit l) const {
    const int8_t v = assign_[VarOf(l)];
    if (v == kUndef) return kUndef;
    return IsNegated(l) ? static_cast<int8_t>(1 - v) : v;
  }

  void Enqueue(Lit l, ClauseRef reason);
  ClauseRef Propagate();
  void Analyze(ClauseRef conflict, std::vector<Lit>* learnt, int* bt_level);
  void BacktrackTo(int level);
  Lit PickBranchLit();
  void BumpVar(Var v);
  void DecayActivities();
  ClauseRef AttachClause(std::span<const Lit> lits);
  std::span<Lit> LitsOf(ClauseRef c) {
    return {arena_.data() + clauses_[c].offset, clauses_[c].size};
  }

  // Heap-based VSIDS priority queue.
  void HeapInsert(Var v);
  Var HeapPop();
  void HeapDecrease(Var v);
  void HeapSwap(int i, int j);

  std::vector<Lit> arena_;
  std::vector<Clause> clauses_;
  std::vector<std::vector<Watcher>> watches_;  // indexed by Lit

  std::vector<int8_t> assign_;    // per var
  std::vector<int8_t> model_;     // per var, snapshot at SAT
  std::vector<int8_t> phase_;     // saved phases
  std::vector<int> level_;        // per var
  std::vector<ClauseRef> reason_;  // per var
  std::vector<double> activity_;  // per var

  std::vector<Lit> trail_;
  std::vector<int> trail_limits_;  // decision-level boundaries
  size_t propagate_head_ = 0;

  std::vector<Var> heap_;
  std::vector<int> heap_pos_;  // per var, -1 if absent

  std::vector<int8_t> seen_;  // per var, scratch for Analyze

  // Diversification stream: SplitMix64 over branch_seed, advanced only
  // when a random knob consumes a draw, so kSaved/kFalse/kTrue configs are
  // bit-compatible with the pre-diversification solver.
  uint64_t NextDiversificationWord();

  double var_inc_ = 1.0;
  uint64_t conflicts_ = 0;
  bool unsat_at_root_ = false;
  SolverConfig config_;
  uint64_t div_state_ = 0;
  bool div_seeded_ = false;
  const std::atomic<bool>* abort_flag_ = nullptr;

  int DecisionLevel() const { return static_cast<int>(trail_limits_.size()); }
};

}  // namespace splitlock::sat
