#include "sat/tseitin.hpp"

#include <algorithm>
#include <cassert>

namespace splitlock::sat {

StructuralEncoder::StructuralEncoder(Solver& solver) : solver_(&solver) {
  true_lit_ = MakeLit(solver_->NewVar());
  solver_->AddUnit(true_lit_);
}

Lit StructuralEncoder::Cached(NodeKey key, const std::function<Lit()>& build) {
  auto it = cache_.find(key);
  if (it != cache_.end()) return it->second;
  const Lit out = build();
  cache_.emplace(std::move(key), out);
  return out;
}

Lit StructuralEncoder::EncodeAnd(std::vector<Lit> fanins) {
  // Constant folding and simplification.
  std::sort(fanins.begin(), fanins.end());
  std::vector<Lit> kept;
  for (Lit l : fanins) {
    if (l == FalseLit()) return FalseLit();
    if (l == TrueLit()) continue;
    if (!kept.empty() && kept.back() == l) continue;        // a & a = a
    if (!kept.empty() && kept.back() == Negate(l)) return FalseLit();
    kept.push_back(l);
  }
  if (kept.empty()) return TrueLit();
  if (kept.size() == 1) return kept[0];

  NodeKey key{0, kept};
  return Cached(std::move(key), [&]() {
    const Lit out = MakeLit(solver_->NewVar());
    std::vector<Lit> big;
    big.reserve(kept.size() + 1);
    big.push_back(out);
    for (Lit l : kept) {
      solver_->AddBinary(Negate(out), l);
      big.push_back(Negate(l));
    }
    solver_->AddClause(big);
    return out;
  });
}

Lit StructuralEncoder::EncodeXor(Lit a, Lit b) {
  // Normalize negations into an output parity.
  bool parity = false;
  if (IsNegated(a)) {
    a = Negate(a);
    parity = !parity;
  }
  if (IsNegated(b)) {
    b = Negate(b);
    parity = !parity;
  }
  if (a > b) std::swap(a, b);
  if (a == TrueLit()) {
    // true XOR b = ~b (TrueLit is positive by construction).
    return parity ? b : Negate(b);
  }
  if (a == b) return parity ? TrueLit() : FalseLit();

  NodeKey key{1, {a, b}};
  const Lit out = Cached(std::move(key), [&]() {
    const Lit o = MakeLit(solver_->NewVar());
    solver_->AddTernary(Negate(o), a, b);
    solver_->AddTernary(Negate(o), Negate(a), Negate(b));
    solver_->AddTernary(o, Negate(a), b);
    solver_->AddTernary(o, a, Negate(b));
    return o;
  });
  return parity ? Negate(out) : out;
}

Lit StructuralEncoder::EncodeMux(Lit s, Lit a, Lit b) {
  if (s == TrueLit()) return b;
  if (s == FalseLit()) return a;
  if (a == b) return a;
  if (IsNegated(s)) {
    s = Negate(s);
    std::swap(a, b);
  }
  if (a == Negate(b)) return EncodeXor(s, a);

  NodeKey key{2, {s, a, b}};
  return Cached(std::move(key), [&]() {
    const Lit o = MakeLit(solver_->NewVar());
    // out = s ? b : a
    solver_->AddTernary(Negate(s), Negate(b), o);
    solver_->AddTernary(Negate(s), b, Negate(o));
    solver_->AddTernary(s, Negate(a), o);
    solver_->AddTernary(s, a, Negate(o));
    return o;
  });
}

Lit StructuralEncoder::EncodeOp(GateOp op, std::span<const Lit> f) {
  switch (op) {
    case GateOp::kConst0:
    case GateOp::kTieLo:
      return FalseLit();
    case GateOp::kConst1:
    case GateOp::kTieHi:
      return TrueLit();
    case GateOp::kBuf:
      return f[0];
    case GateOp::kInv:
      return Negate(f[0]);
    case GateOp::kAnd:
      return EncodeAnd({f.begin(), f.end()});
    case GateOp::kNand:
      return Negate(EncodeAnd({f.begin(), f.end()}));
    case GateOp::kOr: {
      std::vector<Lit> inv(f.size());
      for (size_t i = 0; i < f.size(); ++i) inv[i] = Negate(f[i]);
      return Negate(EncodeAnd(std::move(inv)));
    }
    case GateOp::kNor: {
      std::vector<Lit> inv(f.size());
      for (size_t i = 0; i < f.size(); ++i) inv[i] = Negate(f[i]);
      return EncodeAnd(std::move(inv));
    }
    case GateOp::kXor:
      return EncodeXor(f[0], f[1]);
    case GateOp::kXnor:
      return Negate(EncodeXor(f[0], f[1]));
    case GateOp::kMux:
      return EncodeMux(f[0], f[1], f[2]);
    default:
      assert(false && "op not encodable");
      return FalseLit();
  }
}

IncrementalDipEncoder::IncrementalDipEncoder(StructuralEncoder& enc,
                                             const Netlist& nl)
    : enc_(&enc),
      nl_(&nl),
      key_gates_(nl.KeyInputs()),
      key_dep_(nl.NumNets(), 0),
      value_(nl.NumNets(), 0),
      net_lit_(nl.NumNets(), -1) {
  for (GateId g : key_gates_) key_dep_[nl.gate(g).out] = 1;
  for (GateId g : nl.TopoOrder()) {
    const Gate& gate = nl.gate(g);
    if (gate.op == GateOp::kInput || gate.op == GateOp::kKeyIn ||
        gate.op == GateOp::kOutput || gate.op == GateOp::kDeleted) {
      continue;
    }
    bool dep = false;
    for (NetId n : gate.fanins) dep = dep || key_dep_[n] != 0;
    if (dep) {
      key_dep_[gate.out] = 1;
      cone_gates_.push_back(g);
    } else {
      free_gates_.push_back(g);
    }
  }
}

void IncrementalDipEncoder::SetDip(std::span<const uint8_t> dip) {
  assert(dip.size() == nl_->inputs().size());
  for (size_t i = 0; i < dip.size(); ++i) {
    value_[nl_->gate(nl_->inputs()[i]).out] = dip[i] ? ~0ULL : 0ULL;
  }
  uint64_t fanin_words[kMaxFanin];
  for (GateId g : free_gates_) {
    const Gate& gate = nl_->gate(g);
    const size_t n = gate.fanins.size();
    for (size_t i = 0; i < n; ++i) fanin_words[i] = value_[gate.fanins[i]];
    value_[gate.out] =
        EvalGateWord(gate.op, std::span<const uint64_t>(fanin_words, n));
  }
  dip_loaded_ = true;
}

std::vector<Lit> IncrementalDipEncoder::Encode(std::span<const Lit> key_lits) {
  assert(dip_loaded_ && "SetDip must run before Encode");
  assert(key_lits.size() == key_gates_.size());
  for (size_t i = 0; i < key_lits.size(); ++i) {
    net_lit_[nl_->gate(key_gates_[i]).out] = key_lits[i];
  }
  // Constant nets map to True/False exactly as EncodeNetlist's folding
  // would produce; key-dependent nets carry the cone's literals.
  const auto lit_of = [&](NetId n) {
    return key_dep_[n] != 0
               ? net_lit_[n]
               : ((value_[n] & 1) != 0 ? enc_->TrueLit() : enc_->FalseLit());
  };
  std::vector<Lit> fanin_lits;
  for (GateId g : cone_gates_) {
    const Gate& gate = nl_->gate(g);
    fanin_lits.clear();
    for (NetId n : gate.fanins) fanin_lits.push_back(lit_of(n));
    net_lit_[gate.out] = enc_->EncodeOp(gate.op, fanin_lits);
  }
  std::vector<Lit> outs;
  outs.reserve(nl_->outputs().size());
  for (GateId g : nl_->outputs()) {
    outs.push_back(lit_of(nl_->gate(g).fanins[0]));
  }
  return outs;
}

std::vector<Lit> StructuralEncoder::EncodeNetlist(
    const Netlist& nl, std::span<const Lit> input_lits,
    std::span<const Lit> key_lits) {
  assert(input_lits.size() == nl.inputs().size());
  std::vector<Lit> net_lit(nl.NumNets(), -1);
  for (size_t i = 0; i < input_lits.size(); ++i) {
    net_lit[nl.gate(nl.inputs()[i]).out] = input_lits[i];
  }
  const std::vector<GateId> keys = nl.KeyInputs();
  assert(key_lits.size() == keys.size());
  for (size_t i = 0; i < keys.size(); ++i) {
    net_lit[nl.gate(keys[i]).out] = key_lits[i];
  }

  std::vector<Lit> fanin_lits;
  for (GateId g : nl.TopoOrder()) {
    const Gate& gate = nl.gate(g);
    if (gate.op == GateOp::kInput || gate.op == GateOp::kKeyIn ||
        gate.op == GateOp::kOutput || gate.op == GateOp::kDeleted) {
      continue;
    }
    fanin_lits.clear();
    for (NetId n : gate.fanins) {
      assert(net_lit[n] != -1);
      fanin_lits.push_back(net_lit[n]);
    }
    net_lit[gate.out] = EncodeOp(gate.op, fanin_lits);
  }

  std::vector<Lit> outs;
  outs.reserve(nl.outputs().size());
  for (GateId g : nl.outputs()) {
    outs.push_back(net_lit[nl.gate(g).fanins[0]]);
  }
  return outs;
}

}  // namespace splitlock::sat
