// Structurally-hashing Tseitin encoder: netlist -> CNF.
//
// Nets are encoded as *literals* (not variables), so inverters and buffers
// are absorbed for free, OR/NOR normalize to AND-with-negations, and
// structurally identical cones — e.g. the untouched halves of an
// original-vs-locked miter — collapse onto the same CNF variables. This is
// what keeps LEC cheap: after hashing, only the logic actually modified by
// the locking flow remains to be decided by the SAT solver.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <unordered_map>
#include <vector>

#include "netlist/netlist.hpp"
#include "sat/solver.hpp"

namespace splitlock::sat {

class StructuralEncoder {
 public:
  explicit StructuralEncoder(Solver& solver);

  Solver& solver() { return *solver_; }

  // Constant-true literal (its variable is asserted once at construction).
  Lit TrueLit() const { return true_lit_; }
  Lit FalseLit() const { return Negate(true_lit_); }

  // Fresh unconstrained literal (used for shared primary inputs and for
  // free key bits).
  Lit FreshLit() { return MakeLit(solver_->NewVar()); }

  // Encodes one gate function over already-encoded fanin literals; returns
  // the output literal, reusing an existing node when an identical one was
  // encoded before.
  Lit EncodeOp(GateOp op, std::span<const Lit> fanins);

  // Encodes a whole netlist. `input_lits` supplies the literal for each
  // primary input in inputs() order; `key_lits` supplies literals for key
  // inputs in KeyInputs() order (must cover them all; pass constants from
  // TrueLit()/FalseLit() to bind a key). Returns one literal per primary
  // output in outputs() order.
  std::vector<Lit> EncodeNetlist(const Netlist& nl,
                                 std::span<const Lit> input_lits,
                                 std::span<const Lit> key_lits = {});

 private:
  Lit EncodeAnd(std::vector<Lit> fanins);
  Lit EncodeXor(Lit a, Lit b);
  Lit EncodeMux(Lit s, Lit a, Lit b);

  struct NodeKey {
    uint32_t tag;  // 0 = AND, 1 = XOR, 2 = MUX
    std::vector<Lit> fanins;
    bool operator==(const NodeKey&) const = default;
  };
  struct NodeKeyHash {
    size_t operator()(const NodeKey& k) const {
      size_t h = k.tag * 0x9e3779b97f4a7c15ULL;
      for (Lit l : k.fanins) {
        h ^= static_cast<size_t>(l) + 0x9e3779b97f4a7c15ULL + (h << 6) +
             (h >> 2);
      }
      return h;
    }
  };

  Lit Cached(NodeKey key, const std::function<Lit()>& build);

  Solver* solver_;
  Lit true_lit_;
  std::unordered_map<NodeKey, Lit, NodeKeyHash> cache_;
};

// Incremental DIP-round encoder: encodes a netlist's primary outputs under
// CONSTANT primary inputs and symbolic key literals, doing CNF work only
// for the key-dependent cone.
//
// EncodeNetlist already constant-folds non-key logic per call, but it still
// walks (and re-topo-sorts) the whole netlist every round. This encoder
// hoists all the per-round O(circuit) symbolic work out of the DIP loop:
// construction computes, once, the topological order and the key-dependent
// cone; SetDip() constant-folds every non-key-dependent gate with one plain
// 64-lane simulation sweep (no hashing, no CNF); Encode() walks only the
// cached cone. The emitted CNF is bit-identical to
// EncodeNetlist(nl, constants, key_lits) — same literals, same clause
// order, same variable numbering — because constant gates never create
// variables, clauses, or cache entries in the structural encoder, and cone
// gates are visited in the identical topological order with identical
// fanin literals.
class IncrementalDipEncoder {
 public:
  // Caches nl's topology and key cone. The encoder and netlist must
  // outlive this object; the netlist must not change structurally.
  IncrementalDipEncoder(StructuralEncoder& enc, const Netlist& nl);

  // Loads a DIP (one bit per primary input, inputs() order) and simulates
  // all non-key-dependent logic under it.
  void SetDip(std::span<const uint8_t> dip);

  // Encodes the primary outputs under the loaded DIP with `key_lits` bound
  // to the key inputs (KeyInputs() order). O(key cone) CNF work; call
  // repeatedly (e.g. once per key hypothesis) without re-simulating.
  std::vector<Lit> Encode(std::span<const Lit> key_lits);

  // Key-dependent logic gates — the per-round symbolic workload.
  size_t ConeSize() const { return cone_gates_.size(); }

 private:
  StructuralEncoder* enc_;
  const Netlist* nl_;
  std::vector<GateId> free_gates_;  // non-key logic gates, topo order
  std::vector<GateId> cone_gates_;  // key-dependent logic gates, topo order
  std::vector<GateId> key_gates_;   // kKeyIn gates, key-bit order
  std::vector<uint8_t> key_dep_;    // per net: value depends on the key
  std::vector<uint64_t> value_;     // per net: constant value under the DIP
  std::vector<Lit> net_lit_;        // per net: scratch for cone encoding
  bool dip_loaded_ = false;
};

}  // namespace splitlock::sat
