// Structurally-hashing Tseitin encoder: netlist -> CNF.
//
// Nets are encoded as *literals* (not variables), so inverters and buffers
// are absorbed for free, OR/NOR normalize to AND-with-negations, and
// structurally identical cones — e.g. the untouched halves of an
// original-vs-locked miter — collapse onto the same CNF variables. This is
// what keeps LEC cheap: after hashing, only the logic actually modified by
// the locking flow remains to be decided by the SAT solver.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <unordered_map>
#include <vector>

#include "netlist/netlist.hpp"
#include "sat/solver.hpp"

namespace splitlock::sat {

class StructuralEncoder {
 public:
  explicit StructuralEncoder(Solver& solver);

  Solver& solver() { return *solver_; }

  // Constant-true literal (its variable is asserted once at construction).
  Lit TrueLit() const { return true_lit_; }
  Lit FalseLit() const { return Negate(true_lit_); }

  // Fresh unconstrained literal (used for shared primary inputs and for
  // free key bits).
  Lit FreshLit() { return MakeLit(solver_->NewVar()); }

  // Encodes one gate function over already-encoded fanin literals; returns
  // the output literal, reusing an existing node when an identical one was
  // encoded before.
  Lit EncodeOp(GateOp op, std::span<const Lit> fanins);

  // Encodes a whole netlist. `input_lits` supplies the literal for each
  // primary input in inputs() order; `key_lits` supplies literals for key
  // inputs in KeyInputs() order (must cover them all; pass constants from
  // TrueLit()/FalseLit() to bind a key). Returns one literal per primary
  // output in outputs() order.
  std::vector<Lit> EncodeNetlist(const Netlist& nl,
                                 std::span<const Lit> input_lits,
                                 std::span<const Lit> key_lits = {});

 private:
  Lit EncodeAnd(std::vector<Lit> fanins);
  Lit EncodeXor(Lit a, Lit b);
  Lit EncodeMux(Lit s, Lit a, Lit b);

  struct NodeKey {
    uint32_t tag;  // 0 = AND, 1 = XOR, 2 = MUX
    std::vector<Lit> fanins;
    bool operator==(const NodeKey&) const = default;
  };
  struct NodeKeyHash {
    size_t operator()(const NodeKey& k) const {
      size_t h = k.tag * 0x9e3779b97f4a7c15ULL;
      for (Lit l : k.fanins) {
        h ^= static_cast<size_t>(l) + 0x9e3779b97f4a7c15ULL + (h << 6) +
             (h >> 2);
      }
      return h;
    }
  };

  Lit Cached(NodeKey key, const std::function<Lit()>& build);

  Solver* solver_;
  Lit true_lit_;
  std::unordered_map<NodeKey, Lit, NodeKeyHash> cache_;
};

}  // namespace splitlock::sat
