#include "sim/metrics.hpp"

#include <atomic>
#include <bit>
#include <cassert>
#include <vector>

#include "exec/parallel.hpp"
#include "exec/stream_rng.hpp"
#include "sim/simulator.hpp"
#include "util/lanes.hpp"

namespace splitlock {
namespace {

// Words per parallel shard. Each shard constructs its own Simulator pair,
// so the grain must amortize that setup; 16 words = 1024 patterns.
constexpr size_t kWordsPerShard = 16;

// Stimulus for global word `w` is a pure function of (seed, w): shard
// boundaries and thread count cannot change what any pattern looks like.
void FillStimulusRows(uint64_t seed, size_t lo, size_t hi, size_t num_pis,
                      std::vector<std::vector<uint64_t>>& rows) {
  rows.assign(num_pis, std::vector<uint64_t>(hi - lo));
  for (size_t w = lo; w < hi; ++w) {
    exec::StreamRng rng(seed, exec::StreamDomain::kStimulus, w);
    for (size_t i = 0; i < num_pis; ++i) rows[i][w - lo] = rng.NextWord();
  }
}

struct SweepPartial {
  uint64_t bit_mismatches = 0;
  uint64_t erroneous_patterns = 0;
  bool agree = true;
};

// Simulates both netlists over one shard of word indices [lo, hi) and
// accumulates mismatch statistics. `stop` lets agreement checks abandon
// remaining shards once any shard has found a disagreement (the *result*
// stays deterministic: it is a pure AND over all shards).
SweepPartial SweepShard(const Netlist& a, const Netlist& b, uint64_t patterns,
                        uint64_t seed, std::span<const uint8_t> a_key,
                        std::span<const uint8_t> b_key, size_t lo, size_t hi,
                        const std::atomic<bool>* stop) {
  SweepPartial p;
  if (stop != nullptr && stop->load(std::memory_order_relaxed)) return p;
  const size_t num_pis = a.inputs().size();
  const size_t num_pos = a.outputs().size();
  const uint64_t num_words = (patterns + 63) / 64;
  Simulator sim_a(a);
  Simulator sim_b(b);
  const size_t width = hi - lo;
  sim_a.BeginBatch(width);
  sim_b.BeginBatch(width);
  if (!a_key.empty()) sim_a.SetKeyBitsBatch(a_key);
  if (!b_key.empty()) sim_b.SetKeyBitsBatch(b_key);
  std::vector<std::vector<uint64_t>> rows;
  FillStimulusRows(seed, lo, hi, num_pis, rows);
  for (size_t i = 0; i < num_pis; ++i) {
    sim_a.SetSourceBatch(a.inputs()[i], rows[i]);
    sim_b.SetSourceBatch(b.inputs()[i], rows[i]);
  }
  sim_a.RunBatch();
  sim_b.RunBatch();
  for (size_t w = 0; w < width; ++w) {
    const uint64_t lane_mask = LaneMaskForWord(lo + w, num_words, patterns);
    uint64_t any = 0;
    for (size_t o = 0; o < num_pos; ++o) {
      const uint64_t diff =
          (sim_a.BatchOutputWord(o, w) ^ sim_b.BatchOutputWord(o, w)) &
          lane_mask;
      p.bit_mismatches += std::popcount(diff);
      any |= diff;
    }
    p.erroneous_patterns += std::popcount(any);
    if (any != 0) p.agree = false;
  }
  return p;
}

SweepPartial SweepPairsParallel(const Netlist& a, const Netlist& b,
                                uint64_t patterns, uint64_t seed,
                                std::span<const uint8_t> a_key,
                                std::span<const uint8_t> b_key) {
  assert(a.inputs().size() == b.inputs().size());
  assert(a.outputs().size() == b.outputs().size());
  const uint64_t num_words = (patterns + 63) / 64;
  return exec::ParallelReduce<SweepPartial>(
      num_words, kWordsPerShard, SweepPartial{},
      [&](size_t lo, size_t hi) {
        return SweepShard(a, b, patterns, seed, a_key, b_key, lo, hi,
                          /*stop=*/nullptr);
      },
      [](SweepPartial x, SweepPartial y) {
        x.bit_mismatches += y.bit_mismatches;
        x.erroneous_patterns += y.erroneous_patterns;
        x.agree = x.agree && y.agree;
        return x;
      });
}

}  // namespace

FunctionalDiff CompareFunctional(const Netlist& reference,
                                 const Netlist& candidate, uint64_t patterns,
                                 uint64_t seed,
                                 std::span<const uint8_t> reference_key,
                                 std::span<const uint8_t> candidate_key) {
  const SweepPartial p = SweepPairsParallel(reference, candidate, patterns,
                                            seed, reference_key, candidate_key);
  FunctionalDiff d;
  d.patterns = patterns;
  const double total_bits = static_cast<double>(patterns) *
                            static_cast<double>(reference.outputs().size());
  d.hd_percent =
      total_bits == 0.0 ? 0.0 : 100.0 * p.bit_mismatches / total_bits;
  d.oer_percent =
      patterns == 0 ? 0.0
                    : 100.0 * static_cast<double>(p.erroneous_patterns) /
                          static_cast<double>(patterns);
  return d;
}

bool RandomPatternsAgree(const Netlist& reference, const Netlist& candidate,
                         uint64_t patterns, uint64_t seed,
                         std::span<const uint8_t> reference_key,
                         std::span<const uint8_t> candidate_key) {
  std::atomic<bool> stop{false};
  assert(reference.inputs().size() == candidate.inputs().size());
  assert(reference.outputs().size() == candidate.outputs().size());
  const uint64_t num_words = (patterns + 63) / 64;
  const bool agree = exec::ParallelReduce<bool>(
      num_words, kWordsPerShard, true,
      [&](size_t lo, size_t hi) {
        const SweepPartial p =
            SweepShard(reference, candidate, patterns, seed, reference_key,
                       candidate_key, lo, hi, &stop);
        if (!p.agree) stop.store(true, std::memory_order_relaxed);
        return p.agree;
      },
      [](bool x, bool y) { return x && y; });
  return agree;
}

}  // namespace splitlock
