#include "sim/metrics.hpp"

#include <bit>
#include <cassert>

#include "sim/simulator.hpp"
#include "util/rng.hpp"

namespace splitlock {
namespace {

// Runs both simulators over the same random input words and folds the
// per-word output mismatch masks.
template <typename Fold>
void SweepPairs(const Netlist& a, const Netlist& b, uint64_t patterns,
                uint64_t seed, std::span<const uint8_t> a_key,
                std::span<const uint8_t> b_key, Fold&& fold) {
  assert(a.inputs().size() == b.inputs().size());
  assert(a.outputs().size() == b.outputs().size());
  Simulator sim_a(a);
  Simulator sim_b(b);
  if (!a_key.empty()) sim_a.SetKeyBits(a_key);
  if (!b_key.empty()) sim_b.SetKeyBits(b_key);
  Rng rng(seed);
  const size_t num_pis = a.inputs().size();
  const size_t num_pos = a.outputs().size();
  std::vector<uint64_t> words(num_pis);
  const uint64_t num_words = (patterns + 63) / 64;
  for (uint64_t w = 0; w < num_words; ++w) {
    for (size_t i = 0; i < num_pis; ++i) words[i] = rng.NextWord();
    sim_a.SetInputWords(words);
    sim_b.SetInputWords(words);
    sim_a.Run();
    sim_b.Run();
    // Lanes beyond the requested pattern count (final partial word) are
    // masked out.
    const uint64_t lanes = (w + 1 == num_words && (patterns % 64) != 0)
                               ? patterns % 64
                               : 64;
    const uint64_t lane_mask =
        lanes == 64 ? ~0ULL : ((1ULL << lanes) - 1);
    bool stop = false;
    for (size_t o = 0; o < num_pos && !stop; ++o) {
      const uint64_t diff =
          (sim_a.OutputWord(o) ^ sim_b.OutputWord(o)) & lane_mask;
      stop = fold(o, diff, lane_mask);
    }
    if (stop) return;
  }
}

}  // namespace

FunctionalDiff CompareFunctional(const Netlist& reference,
                                 const Netlist& candidate, uint64_t patterns,
                                 uint64_t seed,
                                 std::span<const uint8_t> reference_key,
                                 std::span<const uint8_t> candidate_key) {
  const size_t num_pos = reference.outputs().size();
  uint64_t bit_mismatches = 0;
  uint64_t erroneous_patterns = 0;
  uint64_t current_any = 0;
  size_t outputs_seen = 0;
  SweepPairs(reference, candidate, patterns, seed, reference_key,
             candidate_key,
             [&](size_t /*o*/, uint64_t diff, uint64_t /*mask*/) {
               bit_mismatches += std::popcount(diff);
               current_any |= diff;
               if (++outputs_seen == num_pos) {
                 erroneous_patterns += std::popcount(current_any);
                 current_any = 0;
                 outputs_seen = 0;
               }
               return false;
             });
  FunctionalDiff d;
  d.patterns = patterns;
  const double total_bits = static_cast<double>(patterns) *
                            static_cast<double>(num_pos);
  d.hd_percent = total_bits == 0.0 ? 0.0 : 100.0 * bit_mismatches / total_bits;
  d.oer_percent =
      patterns == 0 ? 0.0
                    : 100.0 * static_cast<double>(erroneous_patterns) /
                          static_cast<double>(patterns);
  return d;
}

bool RandomPatternsAgree(const Netlist& reference, const Netlist& candidate,
                         uint64_t patterns, uint64_t seed,
                         std::span<const uint8_t> reference_key,
                         std::span<const uint8_t> candidate_key) {
  bool agree = true;
  SweepPairs(reference, candidate, patterns, seed, reference_key,
             candidate_key,
             [&](size_t /*o*/, uint64_t diff, uint64_t /*mask*/) {
               if (diff != 0) {
                 agree = false;
                 return true;  // stop sweeping
               }
               return false;
             });
  return agree;
}

}  // namespace splitlock
