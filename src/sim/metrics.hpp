// Functional-difference metrics between two netlists.
//
// Hamming distance (HD) and output error rate (OER) are the paper's
// Table II / Table III metrics: HD is the average fraction of output bits
// that differ between the original netlist and the attacker-recovered one;
// OER is the fraction of input patterns producing at least one wrong output.
//
// Both sweeps shard their pattern words across the exec thread pool in
// batched multi-word simulations. Stimulus is drawn from counter-based
// streams keyed by (seed, word index), so results are bit-identical for a
// given seed at any thread count.
#pragma once

#include <cstdint>
#include <span>

#include "netlist/netlist.hpp"

namespace splitlock {

struct FunctionalDiff {
  double hd_percent = 0.0;   // average per-output-bit mismatch, in %
  double oer_percent = 0.0;  // patterns with >= 1 wrong output, in %
  uint64_t patterns = 0;
};

// Compares `reference` against `candidate` over `patterns` uniform random
// input patterns (inputs matched by position; both netlists must have the
// same PI and PO counts). Key inputs of either netlist, if any, are bound to
// the provided bit vectors (in KeyInputs() order; pass empty spans for
// unkeyed netlists).
FunctionalDiff CompareFunctional(const Netlist& reference,
                                 const Netlist& candidate, uint64_t patterns,
                                 uint64_t seed,
                                 std::span<const uint8_t> reference_key = {},
                                 std::span<const uint8_t> candidate_key = {});

// True when the two netlists agree on every one of `patterns` random
// patterns (a fast pre-filter before formal LEC).
bool RandomPatternsAgree(const Netlist& reference, const Netlist& candidate,
                         uint64_t patterns, uint64_t seed,
                         std::span<const uint8_t> reference_key = {},
                         std::span<const uint8_t> candidate_key = {});

}  // namespace splitlock
