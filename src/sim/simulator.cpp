#include "sim/simulator.hpp"

#include <bit>
#include <cassert>

namespace splitlock {

Simulator::Simulator(const Netlist& nl)
    : nl_(&nl),
      topo_(nl.TopoOrder()),
      key_inputs_(nl.KeyInputs()),
      values_(nl.NumNets(), 0) {}

void Simulator::SetSourceWord(GateId source, uint64_t word) {
  const Gate& g = nl_->gate(source);
  assert(IsSourceOp(g.op));
  values_[g.out] = word;
}

void Simulator::SetInputWords(std::span<const uint64_t> words) {
  assert(words.size() == nl_->inputs().size());
  for (size_t i = 0; i < words.size(); ++i) {
    SetSourceWord(nl_->inputs()[i], words[i]);
  }
}

void Simulator::SetRandomInputs(Rng& rng) {
  for (GateId g : nl_->inputs()) SetSourceWord(g, rng.NextWord());
}

void Simulator::SetKeyBits(std::span<const uint8_t> bits) {
  assert(bits.size() == key_inputs_.size());
  for (size_t i = 0; i < bits.size(); ++i) {
    SetSourceWord(key_inputs_[i], bits[i] ? ~0ULL : 0ULL);
  }
}

void Simulator::Run() {
  uint64_t fanin_words[4];
  for (GateId g : topo_) {
    const Gate& gate = nl_->gate(g);
    switch (gate.op) {
      case GateOp::kInput:
      case GateOp::kKeyIn:
      case GateOp::kOutput:
      case GateOp::kDeleted:
        continue;
      default:
        break;
    }
    const size_t n = gate.fanins.size();
    for (size_t i = 0; i < n; ++i) fanin_words[i] = values_[gate.fanins[i]];
    values_[gate.out] =
        EvalGateWord(gate.op, std::span<const uint64_t>(fanin_words, n));
  }
}

uint64_t Simulator::OutputWord(size_t po_index) const {
  const Gate& po = nl_->gate(nl_->outputs()[po_index]);
  return values_[po.fanins[0]];
}

namespace {

// Shared driver for the two estimators: runs `words` simulation words and
// folds per-net statistics via `fold(net, word)`.
template <typename Fold>
void SweepRandomPatterns(const Netlist& nl, uint64_t patterns, uint64_t seed,
                         std::span<const uint8_t> key_bits, Fold&& fold) {
  Simulator sim(nl);
  Rng rng(seed);
  if (!key_bits.empty()) sim.SetKeyBits(key_bits);
  const uint64_t words = (patterns + 63) / 64;
  for (uint64_t w = 0; w < words; ++w) {
    sim.SetRandomInputs(rng);
    sim.Run();
    for (NetId n = 0; n < nl.NumNets(); ++n) fold(n, sim.NetWord(n));
  }
}

}  // namespace

std::vector<double> EstimateToggleRates(const Netlist& nl, uint64_t patterns,
                                        uint64_t seed,
                                        std::span<const uint8_t> key_bits) {
  std::vector<uint64_t> toggles(nl.NumNets(), 0);
  SweepRandomPatterns(nl, patterns, seed, key_bits,
                      [&](NetId n, uint64_t word) {
                        // Adjacent lanes of a random word are independent
                        // random patterns; count lane-to-lane flips over the
                        // 63 lane pairs.
                        toggles[n] += std::popcount(
                            (word ^ (word >> 1)) & 0x7fffffffffffffffULL);
                      });
  const uint64_t total_pairs = ((patterns + 63) / 64) * 63;
  std::vector<double> rates(nl.NumNets(), 0.0);
  for (NetId n = 0; n < nl.NumNets(); ++n) {
    rates[n] = total_pairs == 0 ? 0.0
                                : static_cast<double>(toggles[n]) /
                                      static_cast<double>(total_pairs);
  }
  return rates;
}

std::vector<double> EstimateSignalProbabilities(const Netlist& nl,
                                                uint64_t patterns,
                                                uint64_t seed) {
  std::vector<uint64_t> ones(nl.NumNets(), 0);
  SweepRandomPatterns(nl, patterns, seed, {},
                      [&](NetId n, uint64_t word) {
                        ones[n] += std::popcount(word);
                      });
  const uint64_t total = ((patterns + 63) / 64) * 64;
  std::vector<double> probs(nl.NumNets(), 0.0);
  for (NetId n = 0; n < nl.NumNets(); ++n) {
    probs[n] = static_cast<double>(ones[n]) / static_cast<double>(total);
  }
  return probs;
}

}  // namespace splitlock
