#include "sim/simulator.hpp"

#include <algorithm>
#include <bit>
#include <cassert>

namespace splitlock {

Simulator::Simulator(const Netlist& nl)
    : nl_(&nl),
      topo_(nl.TopoOrder()),
      key_inputs_(nl.KeyInputs()),
      values_(nl.NumNets(), 0) {}

void Simulator::SetSourceWord(GateId source, uint64_t word) {
  const Gate& g = nl_->gate(source);
  assert(IsSourceOp(g.op));
  values_[g.out] = word;
}

void Simulator::SetInputWords(std::span<const uint64_t> words) {
  assert(words.size() == nl_->inputs().size());
  for (size_t i = 0; i < words.size(); ++i) {
    SetSourceWord(nl_->inputs()[i], words[i]);
  }
}

void Simulator::SetRandomInputs(Rng& rng) {
  for (GateId g : nl_->inputs()) SetSourceWord(g, rng.NextWord());
}

void Simulator::SetKeyBits(std::span<const uint8_t> bits) {
  assert(bits.size() == key_inputs_.size());
  for (size_t i = 0; i < bits.size(); ++i) {
    SetSourceWord(key_inputs_[i], bits[i] ? ~0ULL : 0ULL);
  }
}

void Simulator::Run() {
  uint64_t fanin_words[kMaxFanin];
  for (GateId g : topo_) {
    const Gate& gate = nl_->gate(g);
    switch (gate.op) {
      case GateOp::kInput:
      case GateOp::kKeyIn:
      case GateOp::kOutput:
      case GateOp::kDeleted:
        continue;
      default:
        break;
    }
    const size_t n = gate.fanins.size();
    for (size_t i = 0; i < n; ++i) fanin_words[i] = values_[gate.fanins[i]];
    values_[gate.out] =
        EvalGateWord(gate.op, std::span<const uint64_t>(fanin_words, n));
  }
}

uint64_t Simulator::OutputWord(size_t po_index) const {
  const Gate& po = nl_->gate(nl_->outputs()[po_index]);
  return values_[po.fanins[0]];
}

void Simulator::BeginBatch(size_t width) {
  assert(width > 0);
  batch_width_ = width;
  batch_.assign(nl_->NumNets() * width, 0);
}

void Simulator::SetSourceBatch(GateId source, std::span<const uint64_t> words) {
  const Gate& g = nl_->gate(source);
  assert(IsSourceOp(g.op));
  assert(words.size() == batch_width_);
  std::copy(words.begin(), words.end(),
            batch_.begin() + g.out * batch_width_);
}

void Simulator::SetKeyBitsBatch(std::span<const uint8_t> bits) {
  assert(bits.size() == key_inputs_.size());
  for (size_t i = 0; i < bits.size(); ++i) {
    const NetId out = nl_->gate(key_inputs_[i]).out;
    std::fill_n(batch_.begin() + out * batch_width_, batch_width_,
                bits[i] ? ~0ULL : 0ULL);
  }
}

void Simulator::RunBatch() {
  const size_t width = batch_width_;
  assert(width > 0);
  uint64_t fanin_words[kMaxFanin];
  for (GateId g : topo_) {
    const Gate& gate = nl_->gate(g);
    switch (gate.op) {
      case GateOp::kInput:
      case GateOp::kKeyIn:
      case GateOp::kOutput:
      case GateOp::kDeleted:
        continue;
      default:
        break;
    }
    const size_t n = gate.fanins.size();
    uint64_t* out = batch_.data() + gate.out * width;
    // Tight contiguous loops for the common shapes; generic column-by-column
    // fallback for the rest.
    if (n == 2) {
      const uint64_t* a = batch_.data() + gate.fanins[0] * width;
      const uint64_t* b = batch_.data() + gate.fanins[1] * width;
      switch (gate.op) {
        case GateOp::kAnd:
          for (size_t w = 0; w < width; ++w) out[w] = a[w] & b[w];
          continue;
        case GateOp::kNand:
          for (size_t w = 0; w < width; ++w) out[w] = ~(a[w] & b[w]);
          continue;
        case GateOp::kOr:
          for (size_t w = 0; w < width; ++w) out[w] = a[w] | b[w];
          continue;
        case GateOp::kNor:
          for (size_t w = 0; w < width; ++w) out[w] = ~(a[w] | b[w]);
          continue;
        case GateOp::kXor:
          for (size_t w = 0; w < width; ++w) out[w] = a[w] ^ b[w];
          continue;
        case GateOp::kXnor:
          for (size_t w = 0; w < width; ++w) out[w] = ~(a[w] ^ b[w]);
          continue;
        default:
          break;
      }
    } else if (n == 1) {
      const uint64_t* a = batch_.data() + gate.fanins[0] * width;
      if (gate.op == GateOp::kBuf) {
        for (size_t w = 0; w < width; ++w) out[w] = a[w];
        continue;
      }
      if (gate.op == GateOp::kInv) {
        for (size_t w = 0; w < width; ++w) out[w] = ~a[w];
        continue;
      }
    } else if (n == 3 && gate.op == GateOp::kMux) {
      const uint64_t* s = batch_.data() + gate.fanins[0] * width;
      const uint64_t* a = batch_.data() + gate.fanins[1] * width;
      const uint64_t* b = batch_.data() + gate.fanins[2] * width;
      for (size_t w = 0; w < width; ++w) {
        out[w] = (s[w] & b[w]) | (~s[w] & a[w]);
      }
      continue;
    }
    for (size_t w = 0; w < width; ++w) {
      for (size_t i = 0; i < n; ++i) {
        fanin_words[i] = batch_[gate.fanins[i] * width + w];
      }
      out[w] = EvalGateWord(gate.op, std::span<const uint64_t>(fanin_words, n));
    }
  }
}

uint64_t Simulator::BatchOutputWord(size_t po_index, size_t w) const {
  const Gate& po = nl_->gate(nl_->outputs()[po_index]);
  return batch_[po.fanins[0] * batch_width_ + w];
}

namespace {

// Shared driver for the two estimators: runs `words` simulation words in
// SoA batches and folds per-net statistics via `fold(net, word)`. Draw
// order matches the historical word-at-a-time sweep exactly (per word, one
// draw per primary input), so estimates are bit-identical to the
// pre-batched implementation for a given seed.
template <typename Fold>
void SweepRandomPatterns(const Netlist& nl, uint64_t patterns, uint64_t seed,
                         std::span<const uint8_t> key_bits, Fold&& fold) {
  constexpr size_t kBatchWords = 16;
  Simulator sim(nl);
  Rng rng(seed);
  const uint64_t words = (patterns + 63) / 64;
  const std::vector<GateId>& pis = nl.inputs();
  // One flat SoA stimulus buffer reused across batches (only the final
  // batch can be narrower).
  std::vector<uint64_t> rows(pis.size() * kBatchWords);
  for (uint64_t base = 0; base < words; base += kBatchWords) {
    const size_t width =
        static_cast<size_t>(std::min<uint64_t>(kBatchWords, words - base));
    sim.BeginBatch(width);
    if (!key_bits.empty()) sim.SetKeyBitsBatch(key_bits);
    // Drawn in (word, input) order to match the historical sweep.
    for (size_t w = 0; w < width; ++w) {
      for (size_t i = 0; i < pis.size(); ++i) {
        rows[i * width + w] = rng.NextWord();
      }
    }
    for (size_t i = 0; i < pis.size(); ++i) {
      sim.SetSourceBatch(
          pis[i], std::span<const uint64_t>(rows.data() + i * width, width));
    }
    sim.RunBatch();
    for (NetId n = 0; n < nl.NumNets(); ++n) {
      for (size_t w = 0; w < width; ++w) fold(n, sim.BatchNetWord(n, w));
    }
  }
}

}  // namespace

std::vector<double> EstimateToggleRates(const Netlist& nl, uint64_t patterns,
                                        uint64_t seed,
                                        std::span<const uint8_t> key_bits) {
  std::vector<uint64_t> toggles(nl.NumNets(), 0);
  SweepRandomPatterns(nl, patterns, seed, key_bits,
                      [&](NetId n, uint64_t word) {
                        // Adjacent lanes of a random word are independent
                        // random patterns; count lane-to-lane flips over the
                        // 63 lane pairs.
                        toggles[n] += std::popcount(
                            (word ^ (word >> 1)) & 0x7fffffffffffffffULL);
                      });
  const uint64_t total_pairs = ((patterns + 63) / 64) * 63;
  std::vector<double> rates(nl.NumNets(), 0.0);
  for (NetId n = 0; n < nl.NumNets(); ++n) {
    rates[n] = total_pairs == 0 ? 0.0
                                : static_cast<double>(toggles[n]) /
                                      static_cast<double>(total_pairs);
  }
  return rates;
}

std::vector<double> EstimateSignalProbabilities(const Netlist& nl,
                                                uint64_t patterns,
                                                uint64_t seed) {
  std::vector<uint64_t> ones(nl.NumNets(), 0);
  SweepRandomPatterns(nl, patterns, seed, {},
                      [&](NetId n, uint64_t word) {
                        ones[n] += std::popcount(word);
                      });
  const uint64_t total = ((patterns + 63) / 64) * 64;
  std::vector<double> probs(nl.NumNets(), 0.0);
  for (NetId n = 0; n < nl.NumNets(); ++n) {
    probs[n] = static_cast<double>(ones[n]) / static_cast<double>(total);
  }
  return probs;
}

}  // namespace splitlock
