// 64-bit parallel-pattern logic simulation.
//
// One Run() evaluates 64 input patterns at once (one bit-lane each). This is
// the workhorse behind HD/OER estimation, switching-activity extraction for
// the power model, bias profiling for fault selection, and fault simulation.
//
// The batched API (BeginBatch/RunBatch) evaluates N x 64 patterns in a
// single topological sweep over structure-of-arrays net-value buffers:
// values of one net occupy N contiguous words, so each gate's inner loop is
// a straight-line pass over contiguous memory that vectorizes. The parallel
// sweeps in sim/metrics, atpg/fault_sim and attack/ shard word-batches
// across the exec thread pool, one Simulator per shard; attack::DipOracle
// answers each flushed DIP batch (one batch column per query, width > 1
// under multi-DIP SAT rounds) with one RunBatch sweep.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "netlist/netlist.hpp"
#include "util/rng.hpp"

namespace splitlock {

class Simulator {
 public:
  // Captures the netlist's topological order; the netlist must outlive the
  // simulator and must not change structurally while in use.
  explicit Simulator(const Netlist& nl);

  // Assigns a 64-pattern word to the net driven by a source gate (primary
  // input or key input).
  void SetSourceWord(GateId source, uint64_t word);

  // Assigns words to all primary inputs, in inputs() order.
  void SetInputWords(std::span<const uint64_t> words);

  // Draws uniform random words for all primary inputs.
  void SetRandomInputs(Rng& rng);

  // Binds key-input gates to constant 0/1 lanes, in KeyInputs() order.
  void SetKeyBits(std::span<const uint8_t> bits);

  // Evaluates all gates in topological order. Source nets keep their
  // assigned words; TIE/const gates produce their constants.
  void Run();

  uint64_t NetWord(NetId net) const { return values_[net]; }

  // Word observed by primary output `po_index` (outputs() order).
  uint64_t OutputWord(size_t po_index) const;

  // --- Batched multi-word simulation ---

  // Switches the batch buffers to `width` words per net (width * 64
  // patterns per RunBatch). Contents are undefined until sources are set.
  void BeginBatch(size_t width);

  size_t batch_width() const { return batch_width_; }

  // Assigns the `width` words of a source gate's net (one word per batch
  // column).
  void SetSourceBatch(GateId source, std::span<const uint64_t> words);

  // Binds key-input gates to constant 0/1 across every batch column.
  void SetKeyBitsBatch(std::span<const uint8_t> bits);

  // Evaluates all gates over all batch columns in one topological sweep.
  void RunBatch();

  // Word `w` (batch column) of a net / of primary output `po_index`.
  uint64_t BatchNetWord(NetId net, size_t w) const {
    return batch_[net * batch_width_ + w];
  }
  uint64_t BatchOutputWord(size_t po_index, size_t w) const;

  const Netlist& netlist() const { return *nl_; }

 private:
  const Netlist* nl_;
  std::vector<GateId> topo_;
  std::vector<GateId> key_inputs_;
  std::vector<uint64_t> values_;  // indexed by NetId
  size_t batch_width_ = 0;
  std::vector<uint64_t> batch_;  // SoA: [net * batch_width_ + word]
};

// Per-net toggle rate (fraction of adjacent random-pattern pairs on which
// the net's value flips), estimated over `patterns` random patterns. Used by
// the dynamic-power model. Key inputs are bound to `key_bits` (may be empty
// when the netlist has no key inputs).
std::vector<double> EstimateToggleRates(const Netlist& nl, uint64_t patterns,
                                        uint64_t seed,
                                        std::span<const uint8_t> key_bits = {});

// Per-net probability of logic 1 over `patterns` random patterns. Used to
// find strongly biased nets for fault-injection locking.
std::vector<double> EstimateSignalProbabilities(const Netlist& nl,
                                                uint64_t patterns,
                                                uint64_t seed);

}  // namespace splitlock
