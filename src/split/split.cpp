#include "split/split.hpp"

#include <algorithm>
#include <cassert>

namespace splitlock::split {
namespace {

// True when the connection uses any metal above the split layer.
bool ConnBroken(const phys::ConnRoute& conn, int split_layer) {
  for (int l : conn.hop_layers) {
    if (l > split_layer) return true;
  }
  return false;
}

}  // namespace

FeolView SplitLayout(const phys::Layout& layout, int split_layer) {
  const Netlist& nl = *layout.netlist;
  FeolView feol;
  feol.netlist = &nl;
  feol.layout = &layout;
  feol.split_layer = split_layer;
  feol.net_broken.assign(nl.NumNets(), 0);

  for (NetId n = 0; n < nl.NumNets(); ++n) {
    const phys::NetRoute& route = layout.routes[n];
    if (!route.routed) continue;
    DriverStub driver_stub;
    driver_stub.net = n;
    driver_stub.driver = nl.DriverOf(n);

    for (const phys::ConnRoute& conn : route.conns) {
      if (!ConnBroken(conn, split_layer)) continue;
      feol.net_broken[n] = 1;

      // Driver side: walk hops forward while they stay in the FEOL; the
      // ascent is the first point whose outgoing hop goes above the split.
      size_t k = 0;
      while (k < conn.hop_layers.size() &&
             conn.hop_layers[k] <= split_layer) {
        ++k;
      }
      const Point ascent = conn.hop_points[k];
      if (std::find_if(driver_stub.ascents.begin(), driver_stub.ascents.end(),
                       [&](const Point& p) { return p == ascent; }) ==
          driver_stub.ascents.end()) {
        driver_stub.ascents.push_back(ascent);
      }

      // Sink side: walk hops backward while they stay in the FEOL; the
      // descent is the earliest point reachable from the sink pin below the
      // split. The far end of that visible fragment is the direction hint.
      size_t j = conn.hop_layers.size();
      while (j > 0 && conn.hop_layers[j - 1] <= split_layer) {
        --j;
      }
      SinkStub stub;
      stub.sink = conn.sink;
      stub.position = conn.hop_points[j];
      stub.hint_toward = conn.hop_points.back();
      stub.true_net = n;
      feol.sink_stubs.push_back(stub);
    }
    if (feol.net_broken[n] != 0) {
      feol.driver_stubs.push_back(std::move(driver_stub));
    }
  }
  return feol;
}

Netlist BuildRecoveredNetlist(const FeolView& feol,
                              const Assignment& assignment) {
  assert(assignment.size() == feol.sink_stubs.size());
  Netlist recovered = *feol.netlist;  // copy; ids preserved
  for (size_t i = 0; i < assignment.size(); ++i) {
    const NetId proposed = assignment[i];
    if (proposed == kNullId) continue;
    const Pin& pin = feol.sink_stubs[i].sink;
    recovered.ReplaceFanin(pin.gate, pin.index, proposed);
  }
  return recovered;
}

}  // namespace splitlock::split
