// Splitting a routed layout into FEOL view and BEOL secret.
//
// This realizes the paper's split procedure G : C(x) -> {C(x1,x2), λ(x2)}:
// everything at or below the split layer (cells, wires, via stubs) is the
// FEOL handed to the untrusted foundry; connectivity completed above the
// split layer is the BEOL secret λ(x2). A connection is *broken* when its
// route uses any metal above the split layer; the attacker then sees only
// where the driver-side FEOL fragment ascends (the driver stub) and where
// the sink-side fragment comes down (the sink stub), plus the direction the
// visible fragment was heading — the exact hint set proximity attacks feed
// on. For lifted key-nets both stubs sit directly on the cell pins and no
// FEOL wiring exists at all.
#pragma once

#include <cstdint>
#include <vector>

#include "netlist/netlist.hpp"
#include "phys/layout.hpp"
#include "util/geom.hpp"

namespace splitlock::split {

// One missing sink connection as seen from the FEOL.
struct SinkStub {
  Pin sink;            // the open input pin
  Point position;      // where the sink-side FEOL fragment ends
  Point hint_toward;   // far end of the visible sink fragment (== position
                       // when no FEOL wiring exists, e.g. key-gate pins)
  NetId true_net = kNullId;  // ground truth (not for attacker use)
};

// One broken net's driver-side information.
struct DriverStub {
  NetId net = kNullId;
  GateId driver = kNullId;
  // Ascent points: locations where the driver-side FEOL fragments rise
  // above the split layer (one per broken connection; duplicates merged).
  std::vector<Point> ascents;
};

// The FEOL view: everything the untrusted foundry learns. The referenced
// netlist/layout provide cell identities, placements and intact
// connectivity; the broken connections' pairing is withheld (that pairing
// *is* the BEOL secret, retained in SinkStub::true_net / the netlist for
// scoring only).
struct FeolView {
  const Netlist* netlist = nullptr;
  const phys::Layout* layout = nullptr;
  int split_layer = 4;

  std::vector<uint8_t> net_broken;       // indexed by NetId
  std::vector<DriverStub> driver_stubs;  // one per broken net
  std::vector<SinkStub> sink_stubs;      // one per broken connection
};

// Splits at `split_layer` (FEOL keeps metals <= split_layer).
FeolView SplitLayout(const phys::Layout& layout, int split_layer);

// The attacker's proposal: a driver net for every sink stub (kNullId =
// left unconnected). Indexed like FeolView::sink_stubs.
using Assignment = std::vector<NetId>;

// Rebuilds a full netlist from the FEOL view plus a proposed assignment:
// every broken sink pin is rewired to the proposed driver net. Used to
// score HD/OER/PNR of an attack result.
Netlist BuildRecoveredNetlist(const FeolView& feol,
                              const Assignment& assignment);

}  // namespace splitlock::split
