#include "store/artifact_io.hpp"

#include <cstring>
#include <utility>

namespace splitlock::store {
namespace {

// Accepting an op byte outside the enum would make downstream switch
// statements walk off the table; kDeleted is the last enumerator.
constexpr uint8_t kMaxOpByte = static_cast<uint8_t>(GateOp::kDeleted);

}  // namespace

// --- ArtifactWriter -------------------------------------------------------

void ArtifactWriter::U16(uint16_t v) {
  U8(static_cast<uint8_t>(v));
  U8(static_cast<uint8_t>(v >> 8));
}

void ArtifactWriter::U32(uint32_t v) {
  U16(static_cast<uint16_t>(v));
  U16(static_cast<uint16_t>(v >> 16));
}

void ArtifactWriter::U64(uint64_t v) {
  U32(static_cast<uint32_t>(v));
  U32(static_cast<uint32_t>(v >> 32));
}

void ArtifactWriter::F64(double v) {
  uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  U64(bits);
}

void ArtifactWriter::Str(std::string_view s) {
  U64(s.size());
  out_.append(s.data(), s.size());
}

// --- ArtifactReader -------------------------------------------------------

bool ArtifactReader::Ensure(size_t n) {
  if (!ok_ || data_.size() - pos_ < n) {
    ok_ = false;
    return false;
  }
  return true;
}

uint8_t ArtifactReader::U8() {
  if (!Ensure(1)) return 0;
  return static_cast<uint8_t>(data_[pos_++]);
}

uint16_t ArtifactReader::U16() {
  const uint16_t lo = U8();
  const uint16_t hi = U8();
  return static_cast<uint16_t>(lo | (hi << 8));
}

uint32_t ArtifactReader::U32() {
  const uint32_t lo = U16();
  const uint32_t hi = U16();
  return lo | (hi << 16);
}

uint64_t ArtifactReader::U64() {
  const uint64_t lo = U32();
  const uint64_t hi = U32();
  return lo | (hi << 32);
}

double ArtifactReader::F64() {
  const uint64_t bits = U64();
  double v = 0.0;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

std::string ArtifactReader::Str() {
  const uint64_t n = U64();
  if (!Ensure(n)) return {};
  std::string s(data_.substr(pos_, n));
  pos_ += n;
  return s;
}

size_t ArtifactReader::Count(size_t min_elem_bytes) {
  const uint64_t n = U64();
  if (!ok_) return 0;
  const size_t remaining = data_.size() - pos_;
  const size_t per = min_elem_bytes == 0 ? 1 : min_elem_bytes;
  if (n > remaining / per) {
    ok_ = false;
    return 0;
  }
  return static_cast<size_t>(n);
}

// --- Netlist --------------------------------------------------------------

void EncodeNetlist(ArtifactWriter& w, const Netlist& nl) {
  w.Str(nl.name());
  w.U64(nl.NumGates());
  for (GateId g = 0; g < nl.NumGates(); ++g) {
    const Gate& gate = nl.gate(g);
    w.U8(static_cast<uint8_t>(gate.op));
    w.U8(gate.drive);
    w.U16(gate.flags);
    w.U32(gate.out);
    w.Str(gate.name);
    w.U64(gate.fanins.size());
    for (NetId f : gate.fanins) w.U32(f);
  }
  w.U64(nl.NumNets());
  for (NetId n = 0; n < nl.NumNets(); ++n) {
    const Net& net = nl.net(n);
    w.Str(net.name);
    w.U32(net.driver);
    w.U64(net.sinks.size());
    for (const Pin& p : net.sinks) {
      w.U32(p.gate);
      w.U32(p.index);
    }
  }
  w.U64(nl.inputs().size());
  for (GateId g : nl.inputs()) w.U32(g);
  w.U64(nl.outputs().size());
  for (GateId g : nl.outputs()) w.U32(g);
}

std::optional<Netlist> DecodeNetlist(ArtifactReader& r) {
  std::string name = r.Str();

  const size_t num_gates = r.Count(/*u8 op + u8 drive + u16 flags + u32 out +
                                     u64 name len + u64 fanin count*/ 24);
  std::vector<Gate> gates;
  gates.reserve(num_gates);
  for (size_t i = 0; i < num_gates && r.ok(); ++i) {
    Gate g;
    const uint8_t op = r.U8();
    g.drive = r.U8();
    g.flags = r.U16();
    g.out = r.U32();
    g.name = r.Str();
    const size_t fanins = r.Count(4);
    if (!r.ok() || op > kMaxOpByte || fanins > kMaxFanin) return std::nullopt;
    g.op = static_cast<GateOp>(op);
    g.fanins.reserve(fanins);
    for (size_t f = 0; f < fanins; ++f) g.fanins.push_back(r.U32());
    gates.push_back(std::move(g));
  }

  const size_t num_nets = r.Count(/*name len + driver + sink count*/ 20);
  std::vector<Net> nets;
  nets.reserve(num_nets);
  for (size_t i = 0; i < num_nets && r.ok(); ++i) {
    Net n;
    n.name = r.Str();
    n.driver = r.U32();
    const size_t sinks = r.Count(8);
    n.sinks.reserve(sinks);
    for (size_t s = 0; s < sinks && r.ok(); ++s) {
      Pin p;
      p.gate = r.U32();
      p.index = r.U32();
      n.sinks.push_back(p);
    }
    nets.push_back(std::move(n));
  }

  const size_t num_pis = r.Count(4);
  std::vector<GateId> pis(num_pis);
  for (size_t i = 0; i < num_pis; ++i) pis[i] = r.U32();
  const size_t num_pos = r.Count(4);
  std::vector<GateId> pos(num_pos);
  for (size_t i = 0; i < num_pos; ++i) pos[i] = r.U32();
  if (!r.ok()) return std::nullopt;

  // Bounds-check every cross-reference before handing the parts to
  // Validate(), which assumes ids index into the vectors.
  const auto net_ok = [&](NetId n) { return n == kNullId || n < nets.size(); };
  const auto gate_ok = [&](GateId g) {
    return g == kNullId || g < gates.size();
  };
  for (const Gate& g : gates) {
    if (!net_ok(g.out)) return std::nullopt;
    for (NetId f : g.fanins) {
      if (f == kNullId || !net_ok(f)) return std::nullopt;
    }
  }
  for (const Net& n : nets) {
    if (!gate_ok(n.driver)) return std::nullopt;
    for (const Pin& p : n.sinks) {
      if (p.gate == kNullId || !gate_ok(p.gate)) return std::nullopt;
    }
  }
  for (GateId g : pis) {
    if (g == kNullId || !gate_ok(g)) return std::nullopt;
  }
  for (GateId g : pos) {
    if (g == kNullId || !gate_ok(g)) return std::nullopt;
  }

  Netlist nl = Netlist::FromRawParts(std::move(name), std::move(gates),
                                     std::move(nets), std::move(pis),
                                     std::move(pos));
  if (!nl.Validate().empty()) return std::nullopt;
  return nl;
}

// --- Layout ---------------------------------------------------------------

namespace {

void EncodePoint(ArtifactWriter& w, const Point& p) {
  w.F64(p.x);
  w.F64(p.y);
}

Point DecodePoint(ArtifactReader& r) {
  Point p;
  p.x = r.F64();
  p.y = r.F64();
  return p;
}

void EncodeTech(ArtifactWriter& w, const phys::Tech& tech) {
  w.U64(tech.layers.size());
  for (const phys::Layer& l : tech.layers) {
    w.Str(l.name);
    w.U8(l.horizontal ? 1 : 0);
    w.F64(l.r_kohm_per_um);
    w.F64(l.c_ff_per_um);
    w.F64(l.pitch_um);
  }
  w.F64(tech.via_r_kohm);
  w.F64(tech.via_c_ff);
}

std::optional<phys::Tech> DecodeTech(ArtifactReader& r) {
  phys::Tech tech;
  const size_t layers = r.Count(33);
  tech.layers.reserve(layers);
  for (size_t i = 0; i < layers && r.ok(); ++i) {
    phys::Layer l;
    l.name = r.Str();
    l.horizontal = r.U8() != 0;
    l.r_kohm_per_um = r.F64();
    l.c_ff_per_um = r.F64();
    l.pitch_um = r.F64();
    tech.layers.push_back(std::move(l));
  }
  tech.via_r_kohm = r.F64();
  tech.via_c_ff = r.F64();
  if (!r.ok()) return std::nullopt;
  return tech;
}

}  // namespace

void EncodeNetRoute(ArtifactWriter& w, const phys::NetRoute& route) {
  w.U8(route.routed ? 1 : 0);
  w.U64(route.conns.size());
  for (const phys::ConnRoute& c : route.conns) {
    w.U32(c.sink.gate);
    w.U32(c.sink.index);
    w.U64(c.segments.size());
    for (const phys::Segment& s : c.segments) {
      w.U32(static_cast<uint32_t>(s.layer));
      EncodePoint(w, s.a);
      EncodePoint(w, s.b);
    }
    w.U64(c.vias.size());
    for (const phys::ViaStack& v : c.vias) {
      EncodePoint(w, v.at);
      w.U32(static_cast<uint32_t>(v.from_layer));
      w.U32(static_cast<uint32_t>(v.to_layer));
    }
    w.U64(c.hop_points.size());
    for (const Point& p : c.hop_points) EncodePoint(w, p);
    w.U64(c.hop_layers.size());
    for (int l : c.hop_layers) w.U32(static_cast<uint32_t>(l));
  }
}

std::optional<phys::NetRoute> DecodeNetRoute(ArtifactReader& r) {
  phys::NetRoute route;
  route.routed = r.U8() != 0;
  const size_t conns = r.Count(40);
  route.conns.reserve(conns);
  for (size_t i = 0; i < conns && r.ok(); ++i) {
    phys::ConnRoute c;
    c.sink.gate = r.U32();
    c.sink.index = r.U32();
    const size_t segments = r.Count(36);
    c.segments.reserve(segments);
    for (size_t s = 0; s < segments && r.ok(); ++s) {
      phys::Segment seg;
      seg.layer = static_cast<int>(r.U32());
      seg.a = DecodePoint(r);
      seg.b = DecodePoint(r);
      c.segments.push_back(seg);
    }
    const size_t vias = r.Count(24);
    c.vias.reserve(vias);
    for (size_t v = 0; v < vias && r.ok(); ++v) {
      phys::ViaStack via;
      via.at = DecodePoint(r);
      via.from_layer = static_cast<int>(r.U32());
      via.to_layer = static_cast<int>(r.U32());
      c.vias.push_back(via);
    }
    const size_t hops = r.Count(16);
    c.hop_points.reserve(hops);
    for (size_t h = 0; h < hops && r.ok(); ++h) {
      c.hop_points.push_back(DecodePoint(r));
    }
    const size_t hop_layers = r.Count(4);
    c.hop_layers.reserve(hop_layers);
    for (size_t h = 0; h < hop_layers && r.ok(); ++h) {
      c.hop_layers.push_back(static_cast<int>(r.U32()));
    }
    route.conns.push_back(std::move(c));
  }
  if (!r.ok()) return std::nullopt;
  return route;
}

void EncodeLayout(ArtifactWriter& w, const phys::Layout& layout) {
  EncodeTech(w, layout.tech);
  EncodePoint(w, layout.die.lo);
  EncodePoint(w, layout.die.hi);
  w.F64(layout.row_height_um);
  w.F64(layout.slot_width_um);
  w.U32(static_cast<uint32_t>(layout.num_rows));
  w.U32(static_cast<uint32_t>(layout.slots_per_row));
  w.U64(layout.position.size());
  for (const Point& p : layout.position) EncodePoint(w, p);
  w.U64(layout.placed.size());
  for (uint8_t v : layout.placed) w.U8(v);
  w.U64(layout.fixed.size());
  for (uint8_t v : layout.fixed) w.U8(v);
  w.U64(layout.routes.size());
  for (const phys::NetRoute& route : layout.routes) EncodeNetRoute(w, route);
}

std::optional<phys::Layout> DecodeLayout(ArtifactReader& r) {
  phys::Layout layout;
  auto tech = DecodeTech(r);
  if (!tech) return std::nullopt;
  layout.tech = std::move(*tech);
  layout.die.lo = DecodePoint(r);
  layout.die.hi = DecodePoint(r);
  layout.row_height_um = r.F64();
  layout.slot_width_um = r.F64();
  layout.num_rows = static_cast<int>(r.U32());
  layout.slots_per_row = static_cast<int>(r.U32());
  const size_t positions = r.Count(16);
  layout.position.reserve(positions);
  for (size_t i = 0; i < positions && r.ok(); ++i) {
    layout.position.push_back(DecodePoint(r));
  }
  const size_t placed = r.Count(1);
  layout.placed.reserve(placed);
  for (size_t i = 0; i < placed && r.ok(); ++i) {
    layout.placed.push_back(r.U8());
  }
  const size_t fixed = r.Count(1);
  layout.fixed.reserve(fixed);
  for (size_t i = 0; i < fixed && r.ok(); ++i) {
    layout.fixed.push_back(r.U8());
  }
  const size_t routes = r.Count(9);
  layout.routes.reserve(routes);
  for (size_t i = 0; i < routes && r.ok(); ++i) {
    auto route = DecodeNetRoute(r);
    if (!route) return std::nullopt;
    layout.routes.push_back(std::move(*route));
  }
  if (!r.ok()) return std::nullopt;
  return layout;
}

// --- Whole-flow artifact --------------------------------------------------

std::string EncodeFlowArtifact(const lock::AtpgLockResult& lock,
                               const Netlist& physical_netlist,
                               const phys::Layout& layout,
                               const phys::LiftStats& lift) {
  ArtifactWriter w;
  w.U32(kArtifactFormatVersion);
  EncodeNetlist(w, lock.locked);
  w.U64(lock.key.size());
  for (uint8_t bit : lock.key) w.U8(bit);
  w.U64(lock.faults.size());
  for (const lock::InjectedFault& f : lock.faults) {
    w.Str(f.net_name);
    w.U8(f.stuck_value ? 1 : 0);
    w.U64(f.cut_leaves);
    w.U64(f.cubes);
    w.U64(f.key_bits);
    w.F64(f.cone_area_removed);
  }
  w.U64(lock.pattern_bits);
  w.U64(lock.padding_bits);
  w.F64(lock.original_area_um2);
  w.F64(lock.locked_area_um2);
  w.U8(lock.lec_proven ? 1 : 0);
  w.U8(lock.lec_equivalent ? 1 : 0);
  EncodeNetlist(w, physical_netlist);
  EncodeLayout(w, layout);
  w.U64(lift.key_nets_lifted);
  w.U64(lift.stacked_vias);
  w.F64(lift.lifted_wirelength_um);
  w.U64(lift.regular_nets_detoured);
  w.U64(lift.drivers_upsized);
  return w.Take();
}

std::optional<FlowArtifact> DecodeFlowArtifact(std::string_view payload) {
  ArtifactReader r(payload);
  if (r.U32() != kArtifactFormatVersion || !r.ok()) return std::nullopt;

  FlowArtifact art;
  auto locked = DecodeNetlist(r);
  if (!locked) return std::nullopt;
  art.lock.locked = std::move(*locked);
  const size_t key_bits = r.Count(1);
  art.lock.key.reserve(key_bits);
  for (size_t i = 0; i < key_bits && r.ok(); ++i) {
    art.lock.key.push_back(r.U8());
  }
  const size_t faults = r.Count(38);
  art.lock.faults.reserve(faults);
  for (size_t i = 0; i < faults && r.ok(); ++i) {
    lock::InjectedFault f;
    f.net_name = r.Str();
    f.stuck_value = r.U8() != 0;
    f.cut_leaves = r.U64();
    f.cubes = r.U64();
    f.key_bits = r.U64();
    f.cone_area_removed = r.F64();
    art.lock.faults.push_back(std::move(f));
  }
  art.lock.pattern_bits = r.U64();
  art.lock.padding_bits = r.U64();
  art.lock.original_area_um2 = r.F64();
  art.lock.locked_area_um2 = r.F64();
  art.lock.lec_proven = r.U8() != 0;
  art.lock.lec_equivalent = r.U8() != 0;
  if (!r.ok()) return std::nullopt;

  auto physical = DecodeNetlist(r);
  if (!physical) return std::nullopt;
  art.netlist = std::make_unique<Netlist>(std::move(*physical));

  auto layout = DecodeLayout(r);
  if (!layout) return std::nullopt;
  art.layout = std::make_unique<phys::Layout>(std::move(*layout));
  art.layout->netlist = art.netlist.get();
  // A layout whose per-gate/per-net vectors disagree with the netlist it is
  // about to reference would index out of range downstream.
  if (art.layout->position.size() != art.netlist->NumGates() ||
      art.layout->placed.size() != art.netlist->NumGates() ||
      art.layout->fixed.size() != art.netlist->NumGates() ||
      art.layout->routes.size() != art.netlist->NumNets()) {
    return std::nullopt;
  }

  art.lift.key_nets_lifted = r.U64();
  art.lift.stacked_vias = r.U64();
  art.lift.lifted_wirelength_um = r.F64();
  art.lift.regular_nets_detoured = r.U64();
  art.lift.drivers_upsized = r.U64();
  if (!r.AtEnd()) return std::nullopt;
  return art;
}

}  // namespace splitlock::store
