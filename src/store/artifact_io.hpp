// Versioned binary serialization of physical-flow artifacts.
//
// The result store's summary records answer "what score did this flow get";
// the artifact tier answers "give me the flow's in-memory state back" — the
// locked netlist, the physical (compacted) netlist, the placed-and-routed
// layout, and the lift statistics — so a warm store skips place/route/lift
// entirely and replays only the cheap analysis stages.
//
// Encoding is length-prefixed little-endian throughout: every integer is
// written byte-by-byte with explicit shifts (no memcpy of host structs), so
// blobs are portable across endianness and padding rules, and
// serialize(deserialize(x)) is byte-identical because reads and writes walk
// the same accessors in the same order. The blob starts with
// kArtifactFormatVersion; the store envelope (result_store) adds its own
// schema version, key echo, and content checksum on top. Decoders are
// bounds-checked and return nullopt on any malformed input — corruption is a
// cache miss, never a crash or a stale layout.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <string_view>

#include "lock/atpg_lock.hpp"
#include "netlist/netlist.hpp"
#include "phys/layout.hpp"
#include "phys/router.hpp"

namespace splitlock::store {

// Bumped whenever the payload layout below changes shape. A mismatch makes
// the whole blob a miss (recompute), never a partial parse.
inline constexpr uint32_t kArtifactFormatVersion = 1;

// Everything RunSecureFlow needs to resume after place/route/lift: the lock
// result (locked netlist + key + fault metadata), the physical netlist the
// layout references, the layout itself, and the lift stats. `layout->netlist`
// is re-pointed at `netlist` by DecodeFlowArtifact.
struct FlowArtifact {
  lock::AtpgLockResult lock;
  std::unique_ptr<Netlist> netlist;
  std::unique_ptr<phys::Layout> layout;
  phys::LiftStats lift;
};

// --- Byte-stream primitives (exposed for tests) ---------------------------

class ArtifactWriter {
 public:
  void U8(uint8_t v) { out_.push_back(static_cast<char>(v)); }
  void U16(uint16_t v);
  void U32(uint32_t v);
  void U64(uint64_t v);
  void F64(double v);
  void Str(std::string_view s);  // u64 length + bytes

  const std::string& bytes() const { return out_; }
  std::string Take() { return std::move(out_); }

 private:
  std::string out_;
};

class ArtifactReader {
 public:
  explicit ArtifactReader(std::string_view data) : data_(data) {}

  uint8_t U8();
  uint16_t U16();
  uint32_t U32();
  uint64_t U64();
  double F64();
  std::string Str();

  // Reads a u64 element count, rejecting counts that could not possibly fit
  // in the remaining bytes (each element takes >= `min_elem_bytes`). Guards
  // vector reserves against corrupt counts.
  size_t Count(size_t min_elem_bytes);

  bool ok() const { return ok_; }
  bool AtEnd() const { return ok_ && pos_ == data_.size(); }

 private:
  bool Ensure(size_t n);

  std::string_view data_;
  size_t pos_ = 0;
  bool ok_ = true;
};

// --- Granular codecs (exposed for tests) ----------------------------------

void EncodeNetlist(ArtifactWriter& w, const Netlist& nl);
std::optional<Netlist> DecodeNetlist(ArtifactReader& r);

void EncodeNetRoute(ArtifactWriter& w, const phys::NetRoute& route);
std::optional<phys::NetRoute> DecodeNetRoute(ArtifactReader& r);

// Layout geometry + tech; `netlist` pointer is NOT serialized — the decoded
// layout's pointer is null until the caller re-attaches it.
void EncodeLayout(ArtifactWriter& w, const phys::Layout& layout);
std::optional<phys::Layout> DecodeLayout(ArtifactReader& r);

// --- Whole-flow artifact --------------------------------------------------

std::string EncodeFlowArtifact(const lock::AtpgLockResult& lock,
                               const Netlist& physical_netlist,
                               const phys::Layout& layout,
                               const phys::LiftStats& lift);

// Returns nullopt on any structural problem: truncation, trailing bytes,
// format-version mismatch, or a decoded netlist that fails Validate().
std::optional<FlowArtifact> DecodeFlowArtifact(std::string_view payload);

}  // namespace splitlock::store
