// The one sanctioned filesystem-clock read in the repo.
//
// The artifact-tier GC policy (ResultStore::CollectArtifactGarbage) orders
// eviction candidates by file modification time, oldest first — mtimes are
// the only signal for "least recently produced" that survives process
// restarts and multi-process stores. That is a wall-clock input by nature,
// which the determinism contract otherwise bans from product code: the
// chrono-confinement lint rule (tools/lint/rules.cpp, kClockHomes) rejects
// any `std::chrono` use outside the clock homes, and this header is
// allowlisted there for exactly this purpose.
//
// Why the exception is sound: GC never participates in canonical results.
// Evicting a blob only changes *where* a flow is rebuilt from (artifact
// replay vs recompute) — both produce bit-identical flows — so eviction
// order can depend on clocks without weakening any byte-identity contract.
// Do not read clocks here (or anywhere) for a value that feeds a record.
#pragma once

#include <chrono>
#include <cstdint>
#include <filesystem>
#include <limits>

namespace splitlock::store {

// Modification time of `path` in nanoseconds of file_time_type's native
// epoch. Only ordering is meaningful — the epoch is implementation-
// defined — which is all GC needs. Stat failures return INT64_MIN so an
// unreadable blob sorts oldest and is evicted first.
inline int64_t FileMtimeNanos(const std::filesystem::path& path) {
  std::error_code ec;
  const std::filesystem::file_time_type t =
      std::filesystem::last_write_time(path, ec);
  if (ec) return std::numeric_limits<int64_t>::min();
  return static_cast<int64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          t.time_since_epoch())
          .count());
}

}  // namespace splitlock::store
