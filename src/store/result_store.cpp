#include "store/result_store.hpp"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <filesystem>
#include <stdexcept>

#include "attack/engine.hpp"  // JsonEscape
#include "obs/metrics.hpp"
#include "store/artifact_io.hpp"  // ArtifactWriter/Reader for blob envelopes
#include "store/fs_clock.hpp"     // eviction ordering needs file mtimes
#include "util/hash.hpp"

#ifdef _WIN32
#include <process.h>
#define SPLITLOCK_GETPID _getpid
#else
#include <unistd.h>
#define SPLITLOCK_GETPID getpid
#endif

namespace splitlock::store {

namespace {

void AppendKv(std::string* out, const char* key, const std::string& value,
              bool* first) {
  if (!*first) out->push_back(',');
  *first = false;
  *out += '"';
  *out += key;
  *out += "\":";
  *out += value;
}

std::string Quoted(std::string_view s) { return attack::JsonEscape(s); }

std::string U64(uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%llu", static_cast<unsigned long long>(v));
  return buf;
}

uint64_t GetU64(const util::JsonValue& v, const std::string& key) {
  const double d = v.GetNumber(key, 0.0);
  return d <= 0.0 ? 0 : static_cast<uint64_t>(d);
}

// First four bytes of every artifact blob ("SLAR" little-endian), so a
// record JSON accidentally renamed to .art fails at byte 0.
constexpr uint32_t kArtifactMagic = 0x52414c53u;

// Process-wide mirrors of the per-instance stats, one set per tier
// (store.record.* / store.artifact.*). All count-class: what a store
// serves is a function of the workload and the disk state, never of the
// thread count. The byte histograms bucket per-operation sizes; their
// sums are the per-tier byte totals `--store-stats` reports.
struct TierMetrics {
  obs::Counter* hits;
  obs::Counter* misses;
  obs::Counter* inserts;
  obs::Counter* insert_errors;
  obs::Counter* corrupt;
  obs::Histogram* bytes_read;
  obs::Histogram* bytes_written;
};

TierMetrics MakeTierMetrics(const std::string& prefix) {
  obs::Registry& r = obs::Registry::Instance();
  return TierMetrics{
      r.RegisterCounter(prefix + ".hits"),
      r.RegisterCounter(prefix + ".misses"),
      r.RegisterCounter(prefix + ".inserts"),
      r.RegisterCounter(prefix + ".insert_errors"),
      r.RegisterCounter(prefix + ".corrupt"),
      r.RegisterHistogram(prefix + ".bytes_read",
                          obs::Pow2Edges(64, 1ULL << 30)),
      r.RegisterHistogram(prefix + ".bytes_written",
                          obs::Pow2Edges(64, 1ULL << 30)),
  };
}

TierMetrics& RecordTier() {
  static TierMetrics m = MakeTierMetrics("store.record");
  return m;
}

TierMetrics& ArtifactTier() {
  static TierMetrics m = MakeTierMetrics("store.artifact");
  return m;
}

// GC activity is artifact-tier only, so it lives outside TierMetrics.
// Count-class like the rest of the store: evictions are a function of the
// disk state and the budget, never of thread count.
struct GcMetrics {
  obs::Counter* evictions;
  obs::Counter* evicted_bytes;
};

GcMetrics& ArtifactGc() {
  static GcMetrics m = [] {
    obs::Registry& r = obs::Registry::Instance();
    return GcMetrics{
        r.RegisterCounter("store.artifact.evictions"),
        r.RegisterCounter("store.artifact.evicted_bytes"),
    };
  }();
  return m;
}

// Shared envelope validation for both record kinds: schema version, kind
// marker, and the key echo — a record must describe the key it is filed
// under, so a filename collision or a copied/tampered file reads as
// corrupt, not as a wrong answer. `attack_hash` is checked only for
// attack records (null for flow records).
bool EnvelopeMatches(const util::JsonValue& doc, const char* kind,
                     const StoreKey& key, const uint64_t* attack_hash) {
  if (static_cast<int>(doc.GetNumber("schema_version", -1.0)) !=
      kResultSchemaVersion) {
    return false;
  }
  if (doc.GetString("kind", "") != kind) return false;
  const util::JsonValue* k = doc.Get("key");
  if (!k || !k->IsObject() || k->GetString("suite", "") != key.suite ||
      k->GetString("scale", "") != key.scale ||
      util::ParseHexU64(k->GetString("flow_hash", "")) != key.flow_hash) {
    return false;
  }
  if (attack_hash &&
      util::ParseHexU64(k->GetString("attack_hash", "")) != *attack_hash) {
    return false;
  }
  return true;
}

std::string KeyEchoJson(const StoreKey& key, const uint64_t* attack_hash) {
  std::string out = "{\"suite\":" + Quoted(key.suite) +
                    ",\"scale\":" + Quoted(key.scale) +
                    ",\"flow_hash\":" + Quoted(util::HexU64(key.flow_hash));
  if (attack_hash) {
    out += ",\"attack_hash\":" + Quoted(util::HexU64(*attack_hash));
  }
  out += '}';
  return out;
}

}  // namespace

std::string CanonicalDouble(double value) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  return buf;
}

std::string StoreKey::Stem() const {
  std::string suite_part = suite;
  for (char& c : suite_part) {
    const bool safe = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                      (c >= '0' && c <= '9') || c == '-' || c == '.';
    if (!safe) c = '_';
  }
  std::string scale_part = scale;
  for (char& c : scale_part) {
    if (!((c >= '0' && c <= '9') || c == '.')) c = '_';
  }
  return suite_part + "-s" + scale_part + "-f" + util::HexU64(flow_hash);
}

std::string StoreKey::FlowFilename() const { return Stem() + ".flow.json"; }

std::string StoreKey::AttackFilename(uint64_t attack_hash) const {
  return Stem() + "-a" + util::HexU64(attack_hash) + ".json";
}

std::string StoreKey::ArtifactFilename() const { return Stem() + ".art"; }

uint64_t AttackKeyHash(const std::string& config_string,
                       uint64_t score_patterns) {
  // The per-attack scorecard (HD/OER over random patterns) depends on the
  // pattern count, so it is part of the attack identity: the same config
  // scored under a different pattern budget is a different record.
  std::string canonical = "v1;patterns=";
  canonical += U64(score_patterns);
  canonical += ';';
  canonical += config_string;
  return util::Fnv1a(canonical);
}

uint64_t PortfolioHash(const std::vector<std::string>& config_strings,
                       uint64_t score_patterns, bool run_attack) {
  std::string canonical = "v1;run_attack=";
  canonical += run_attack ? '1' : '0';
  canonical += ";patterns=";
  canonical += U64(score_patterns);
  for (const std::string& config : config_strings) {
    canonical += ';';
    canonical += config;
  }
  return util::Fnv1a(canonical);
}

// --- AttackRecord -----------------------------------------------------------

std::string AttackRecord::ToJson(bool include_timings) const {
  std::string out = "{";
  bool first = true;
  AppendKv(&out, "engine", Quoted(engine), &first);
  AppendKv(&out, "config", Quoted(config), &first);
  AppendKv(&out, "ok", ok ? "true" : "false", &first);
  AppendKv(&out, "error", Quoted(error), &first);
  AppendKv(&out, "key_found", key_found ? "true" : "false", &first);
  AppendKv(&out, "functionally_correct",
           functionally_correct ? "true" : "false", &first);
  std::string counters_json = "{";
  bool fc = true;
  for (const auto& [cname, cvalue] : counters) {
    if (!fc) counters_json += ',';
    fc = false;
    counters_json += Quoted(cname) + ":" + CanonicalDouble(cvalue);
  }
  counters_json += '}';
  AppendKv(&out, "counters", counters_json, &first);
  AppendKv(&out, "has_score", has_score ? "true" : "false", &first);
  if (has_score) {
    std::string score =
        "{\"regular_ccr_percent\":" + CanonicalDouble(regular_ccr_percent) +
        ",\"key_logical_ccr_percent\":" +
        CanonicalDouble(key_logical_ccr_percent) +
        ",\"key_physical_ccr_percent\":" +
        CanonicalDouble(key_physical_ccr_percent) +
        ",\"pnr_percent\":" + CanonicalDouble(pnr_percent) +
        ",\"hd_percent\":" + CanonicalDouble(hd_percent) +
        ",\"oer_percent\":" + CanonicalDouble(oer_percent) +
        ",\"score_patterns\":" + U64(score_patterns) + "}";
    AppendKv(&out, "score", score, &first);
  }
  if (include_timings) {
    AppendKv(&out, "elapsed_s", CanonicalDouble(elapsed_s), &first);
  }
  out += '}';
  return out;
}

std::optional<AttackRecord> AttackRecord::FromJson(const util::JsonValue& v) {
  if (!v.IsObject()) return std::nullopt;
  const util::JsonValue* engine = v.Get("engine");
  const util::JsonValue* ok = v.Get("ok");
  if (!engine || !engine->IsString() || !ok || !ok->IsBool()) {
    return std::nullopt;
  }
  AttackRecord a;
  a.engine = engine->string;
  a.config = v.GetString("config", "");
  a.ok = ok->boolean;
  a.error = v.GetString("error", "");
  a.key_found = v.GetBool("key_found", false);
  a.functionally_correct = v.GetBool("functionally_correct", false);
  if (const util::JsonValue* counters = v.Get("counters");
      counters && counters->IsObject()) {
    for (const auto& [cname, cvalue] : counters->object) {
      if (cvalue.IsNumber()) a.counters[cname] = cvalue.number;
    }
  }
  a.has_score = v.GetBool("has_score", false);
  if (const util::JsonValue* score = v.Get("score");
      score && score->IsObject()) {
    a.regular_ccr_percent = score->GetNumber("regular_ccr_percent", 0.0);
    a.key_logical_ccr_percent =
        score->GetNumber("key_logical_ccr_percent", 0.0);
    a.key_physical_ccr_percent =
        score->GetNumber("key_physical_ccr_percent", 0.0);
    a.pnr_percent = score->GetNumber("pnr_percent", 0.0);
    a.hd_percent = score->GetNumber("hd_percent", 0.0);
    a.oer_percent = score->GetNumber("oer_percent", 0.0);
    a.score_patterns = GetU64(*score, "score_patterns");
  }
  a.elapsed_s = v.GetNumber("elapsed_s", 0.0);
  return a;
}

// --- FlowRecord -------------------------------------------------------------

std::string FlowRecord::ToJson(bool include_timings) const {
  std::string out = "{";
  bool first = true;
  AppendKv(&out, "name", Quoted(name), &first);
  AppendKv(&out, "ok", ok ? "true" : "false", &first);
  AppendKv(&out, "error", Quoted(error), &first);
  AppendKv(&out, "broken_connections", U64(broken_connections), &first);
  AppendKv(&out, "key_bits", U64(key_bits), &first);
  AppendKv(&out, "logic_gates", U64(logic_gates), &first);
  std::string cost = "{\"die_area_um2\":" + CanonicalDouble(die_area_um2) +
                     ",\"power_uw\":" + CanonicalDouble(power_uw) +
                     ",\"critical_path_ps\":" +
                     CanonicalDouble(critical_path_ps) + "}";
  AppendKv(&out, "cost", cost, &first);
  if (include_timings) {
    std::string times = "{\"lock_s\":" + CanonicalDouble(lock_s) +
                        ",\"place_s\":" + CanonicalDouble(place_s) +
                        ",\"route_s\":" + CanonicalDouble(route_s) +
                        ",\"lift_s\":" + CanonicalDouble(lift_s) +
                        ",\"sta_s\":" + CanonicalDouble(sta_s) +
                        ",\"analyze_s\":" + CanonicalDouble(analyze_s) +
                        ",\"artifact_load_s\":" + CanonicalDouble(artifact_load_s) +
                        ",\"artifact_save_s\":" + CanonicalDouble(artifact_save_s) +
                        "}";
    AppendKv(&out, "times", times, &first);
    AppendKv(&out, "elapsed_s", CanonicalDouble(elapsed_s), &first);
  }
  out += '}';
  return out;
}

std::optional<FlowRecord> FlowRecord::FromJson(const util::JsonValue& v) {
  if (!v.IsObject()) return std::nullopt;
  const util::JsonValue* name = v.Get("name");
  const util::JsonValue* ok = v.Get("ok");
  if (!name || !name->IsString() || !ok || !ok->IsBool()) return std::nullopt;
  FlowRecord r;
  r.name = name->string;
  r.ok = ok->boolean;
  r.error = v.GetString("error", "");
  r.broken_connections = GetU64(v, "broken_connections");
  r.key_bits = GetU64(v, "key_bits");
  r.logic_gates = GetU64(v, "logic_gates");
  if (const util::JsonValue* cost = v.Get("cost"); cost && cost->IsObject()) {
    r.die_area_um2 = cost->GetNumber("die_area_um2", 0.0);
    r.power_uw = cost->GetNumber("power_uw", 0.0);
    r.critical_path_ps = cost->GetNumber("critical_path_ps", 0.0);
  }
  if (const util::JsonValue* times = v.Get("times");
      times && times->IsObject()) {
    r.lock_s = times->GetNumber("lock_s", 0.0);
    r.place_s = times->GetNumber("place_s", 0.0);
    r.route_s = times->GetNumber("route_s", 0.0);
    r.lift_s = times->GetNumber("lift_s", 0.0);
    r.sta_s = times->GetNumber("sta_s", 0.0);
    r.analyze_s = times->GetNumber("analyze_s", 0.0);
    r.artifact_load_s = times->GetNumber("artifact_load_s", 0.0);
    r.artifact_save_s = times->GetNumber("artifact_save_s", 0.0);
  }
  r.elapsed_s = v.GetNumber("elapsed_s", 0.0);
  return r;
}

// --- CampaignRecord ---------------------------------------------------------

std::string CampaignRecord::ToJson(bool include_timings) const {
  std::string out = "{";
  bool first = true;
  AppendKv(&out, "name", Quoted(name), &first);
  AppendKv(&out, "ok", ok ? "true" : "false", &first);
  AppendKv(&out, "error", Quoted(error), &first);
  AppendKv(&out, "broken_connections", U64(broken_connections), &first);
  AppendKv(&out, "key_bits", U64(key_bits), &first);
  AppendKv(&out, "logic_gates", U64(logic_gates), &first);

  std::string cost = "{\"die_area_um2\":" + CanonicalDouble(die_area_um2) +
                     ",\"power_uw\":" + CanonicalDouble(power_uw) +
                     ",\"critical_path_ps\":" + CanonicalDouble(critical_path_ps) +
                     "}";
  AppendKv(&out, "cost", cost, &first);

  std::string score =
      "{\"regular_ccr_percent\":" + CanonicalDouble(regular_ccr_percent) +
      ",\"key_logical_ccr_percent\":" + CanonicalDouble(key_logical_ccr_percent) +
      ",\"key_physical_ccr_percent\":" + CanonicalDouble(key_physical_ccr_percent) +
      ",\"pnr_percent\":" + CanonicalDouble(pnr_percent) +
      ",\"hd_percent\":" + CanonicalDouble(hd_percent) +
      ",\"oer_percent\":" + CanonicalDouble(oer_percent) +
      ",\"score_patterns\":" + U64(score_patterns) + "}";
  AppendKv(&out, "score", score, &first);

  std::string attacks_json = "[";
  bool first_attack = true;
  for (const AttackRecord& a : attacks) {
    if (!first_attack) attacks_json += ',';
    first_attack = false;
    // One serializer for attack entries everywhere: the composed record's
    // attacks array is byte-for-byte the per-attack record files' bodies.
    attacks_json += a.ToJson(include_timings);
  }
  attacks_json += ']';
  AppendKv(&out, "attacks", attacks_json, &first);

  if (include_timings) {
    std::string times = "{\"lock_s\":" + CanonicalDouble(lock_s) +
                        ",\"place_s\":" + CanonicalDouble(place_s) +
                        ",\"route_s\":" + CanonicalDouble(route_s) +
                        ",\"lift_s\":" + CanonicalDouble(lift_s) +
                        ",\"sta_s\":" + CanonicalDouble(sta_s) +
                        ",\"analyze_s\":" + CanonicalDouble(analyze_s) +
                        ",\"artifact_load_s\":" + CanonicalDouble(artifact_load_s) +
                        ",\"artifact_save_s\":" + CanonicalDouble(artifact_save_s) +
                        "}";
    AppendKv(&out, "times", times, &first);
    AppendKv(&out, "elapsed_s", CanonicalDouble(elapsed_s), &first);
  }
  out += '}';
  return out;
}

std::optional<CampaignRecord> CampaignRecord::FromJson(
    const util::JsonValue& v) {
  if (!v.IsObject()) return std::nullopt;
  const util::JsonValue* name = v.Get("name");
  const util::JsonValue* ok = v.Get("ok");
  if (!name || !name->IsString() || !ok || !ok->IsBool()) return std::nullopt;

  CampaignRecord r;
  r.name = name->string;
  r.ok = ok->boolean;
  r.error = v.GetString("error", "");
  r.broken_connections = GetU64(v, "broken_connections");
  r.key_bits = GetU64(v, "key_bits");
  r.logic_gates = GetU64(v, "logic_gates");

  if (const util::JsonValue* cost = v.Get("cost"); cost && cost->IsObject()) {
    r.die_area_um2 = cost->GetNumber("die_area_um2", 0.0);
    r.power_uw = cost->GetNumber("power_uw", 0.0);
    r.critical_path_ps = cost->GetNumber("critical_path_ps", 0.0);
  }
  if (const util::JsonValue* score = v.Get("score");
      score && score->IsObject()) {
    r.regular_ccr_percent = score->GetNumber("regular_ccr_percent", 0.0);
    r.key_logical_ccr_percent =
        score->GetNumber("key_logical_ccr_percent", 0.0);
    r.key_physical_ccr_percent =
        score->GetNumber("key_physical_ccr_percent", 0.0);
    r.pnr_percent = score->GetNumber("pnr_percent", 0.0);
    r.hd_percent = score->GetNumber("hd_percent", 0.0);
    r.oer_percent = score->GetNumber("oer_percent", 0.0);
    r.score_patterns = GetU64(*score, "score_patterns");
  }
  if (const util::JsonValue* attacks = v.Get("attacks");
      attacks && attacks->IsArray()) {
    for (const util::JsonValue& av : attacks->array) {
      std::optional<AttackRecord> a = AttackRecord::FromJson(av);
      if (!a) return std::nullopt;
      r.attacks.push_back(std::move(*a));
    }
  }
  if (const util::JsonValue* times = v.Get("times");
      times && times->IsObject()) {
    r.lock_s = times->GetNumber("lock_s", 0.0);
    r.place_s = times->GetNumber("place_s", 0.0);
    r.route_s = times->GetNumber("route_s", 0.0);
    r.lift_s = times->GetNumber("lift_s", 0.0);
    r.sta_s = times->GetNumber("sta_s", 0.0);
    r.analyze_s = times->GetNumber("analyze_s", 0.0);
    r.artifact_load_s = times->GetNumber("artifact_load_s", 0.0);
    r.artifact_save_s = times->GetNumber("artifact_save_s", 0.0);
  }
  r.elapsed_s = v.GetNumber("elapsed_s", 0.0);
  return r;
}

CampaignRecord ComposeCampaignRecord(const FlowRecord& flow,
                                     const std::vector<AttackRecord>& attacks) {
  CampaignRecord r;
  r.name = flow.name;
  r.ok = flow.ok;
  r.error = flow.error;
  r.broken_connections = flow.broken_connections;
  r.key_bits = flow.key_bits;
  r.logic_gates = flow.logic_gates;
  r.die_area_um2 = flow.die_area_um2;
  r.power_uw = flow.power_uw;
  r.critical_path_ps = flow.critical_path_ps;
  // Campaign score: the first attack in portfolio order carrying a
  // scorecard — the same "first complete assignment wins" rule the
  // compute path has always applied, now reproducible from cached pieces.
  for (const AttackRecord& a : attacks) {
    if (!a.has_score) continue;
    r.regular_ccr_percent = a.regular_ccr_percent;
    r.key_logical_ccr_percent = a.key_logical_ccr_percent;
    r.key_physical_ccr_percent = a.key_physical_ccr_percent;
    r.pnr_percent = a.pnr_percent;
    r.hd_percent = a.hd_percent;
    r.oer_percent = a.oer_percent;
    r.score_patterns = a.score_patterns;
    break;
  }
  r.attacks = attacks;
  r.lock_s = flow.lock_s;
  r.place_s = flow.place_s;
  r.route_s = flow.route_s;
  r.lift_s = flow.lift_s;
  r.sta_s = flow.sta_s;
  r.analyze_s = flow.analyze_s;
  r.artifact_load_s = flow.artifact_load_s;
  r.artifact_save_s = flow.artifact_save_s;
  r.elapsed_s = flow.elapsed_s;
  return r;
}

// --- ResultStore ------------------------------------------------------------

ResultStore::ResultStore(std::string dir) : dir_(std::move(dir)) {
  std::error_code ec;
  std::filesystem::create_directories(dir_, ec);
  if (ec || !std::filesystem::is_directory(dir_)) {
    throw std::runtime_error("result store: cannot create directory " + dir_);
  }
}

void ResultStore::CountRecordMiss(bool corrupt) {
  RecordTier().misses->Add(1);
  if (corrupt) RecordTier().corrupt->Add(1);
  std::lock_guard<std::mutex> lock(mu_);
  ++stats_.misses;
  if (corrupt) ++stats_.corrupt;
}

void ResultStore::CountRecordHit(size_t bytes) {
  RecordTier().hits->Add(1);
  RecordTier().bytes_read->Observe(bytes);
  std::lock_guard<std::mutex> lock(mu_);
  ++stats_.hits;
  stats_.bytes_read += bytes;
}

// Reads and parses one record file. Counts the miss (absent file) or
// corrupt miss (unparseable) itself; on success the caller finishes
// validation and counts exactly one hit or corrupt miss.
std::optional<util::JsonValue> ResultStore::ReadRecordDoc(
    const std::string& path, size_t* bytes) {
  std::string text;
  {
    std::FILE* f = std::fopen(path.c_str(), "rb");
    if (!f) {
      CountRecordMiss(/*corrupt=*/false);
      return std::nullopt;
    }
    char buf[4096];
    size_t n;
    while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) text.append(buf, n);
    std::fclose(f);
  }
  *bytes = text.size();
  std::optional<util::JsonValue> doc = util::ParseJson(text);
  if (!doc || !doc->IsObject()) {
    CountRecordMiss(/*corrupt=*/true);
    return std::nullopt;
  }
  return doc;
}

std::optional<FlowRecord> ResultStore::LookupFlow(const StoreKey& key) {
  size_t bytes = 0;
  std::optional<util::JsonValue> doc =
      ReadRecordDoc(dir_ + "/" + key.FlowFilename(), &bytes);
  if (!doc) return std::nullopt;
  std::optional<FlowRecord> record;
  if (EnvelopeMatches(*doc, "flow", key, /*attack_hash=*/nullptr)) {
    if (const util::JsonValue* rec = doc->Get("record")) {
      record = FlowRecord::FromJson(*rec);
    }
  }
  if (!record) {
    CountRecordMiss(/*corrupt=*/true);
    return std::nullopt;
  }
  CountRecordHit(bytes);
  return record;
}

bool ResultStore::InsertFlow(const StoreKey& key, const FlowRecord& record) {
  const std::string doc =
      "{\"schema_version\":" + std::to_string(kResultSchemaVersion) +
      ",\"kind\":\"flow\",\"key\":" + KeyEchoJson(key, nullptr) +
      ",\"record\":" + record.ToJson(/*include_timings=*/true) + "}\n";
  return PublishFile(dir_ + "/" + key.FlowFilename(), doc,
                     /*record_tier=*/true);
}

std::optional<AttackRecord> ResultStore::LookupAttack(const StoreKey& key,
                                                      uint64_t attack_hash) {
  size_t bytes = 0;
  std::optional<util::JsonValue> doc =
      ReadRecordDoc(dir_ + "/" + key.AttackFilename(attack_hash), &bytes);
  if (!doc) return std::nullopt;
  std::optional<AttackRecord> record;
  if (EnvelopeMatches(*doc, "attack", key, &attack_hash)) {
    if (const util::JsonValue* rec = doc->Get("record")) {
      record = AttackRecord::FromJson(*rec);
    }
  }
  if (!record) {
    CountRecordMiss(/*corrupt=*/true);
    return std::nullopt;
  }
  CountRecordHit(bytes);
  return record;
}

bool ResultStore::InsertAttack(const StoreKey& key, uint64_t attack_hash,
                               const AttackRecord& record) {
  const std::string doc =
      "{\"schema_version\":" + std::to_string(kResultSchemaVersion) +
      ",\"kind\":\"attack\",\"key\":" + KeyEchoJson(key, &attack_hash) +
      ",\"record\":" + record.ToJson(/*include_timings=*/true) + "}\n";
  return PublishFile(dir_ + "/" + key.AttackFilename(attack_hash), doc,
                     /*record_tier=*/true);
}

// Unique temp name in the same directory (rename must not cross
// filesystems), then atomic publish. Shared by both tiers; only the
// stats they count differ.
bool ResultStore::PublishFile(const std::string& path, const std::string& doc,
                              bool record_tier) {
  static std::atomic<uint64_t> counter{0};
  const std::string tmp = path + ".tmp." +
                          std::to_string(SPLITLOCK_GETPID()) + "." +
                          std::to_string(counter.fetch_add(1));
  TierMetrics& tier = record_tier ? RecordTier() : ArtifactTier();

  const auto fail = [&]() {
    std::remove(tmp.c_str());
    tier.insert_errors->Add(1);
    std::lock_guard<std::mutex> lock(mu_);
    ++(record_tier ? stats_.insert_errors : artifact_stats_.insert_errors);
    return false;
  };

  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (!f) return fail();
  const bool wrote = std::fwrite(doc.data(), 1, doc.size(), f) == doc.size();
  const bool closed = std::fclose(f) == 0;
  if (!wrote || !closed) return fail();
  if (std::rename(tmp.c_str(), path.c_str()) != 0) return fail();

  tier.inserts->Add(1);
  tier.bytes_written->Observe(doc.size());
  std::lock_guard<std::mutex> lock(mu_);
  if (record_tier) {
    ++stats_.inserts;
    stats_.bytes_written += doc.size();
  } else {
    ++artifact_stats_.inserts;
    artifact_stats_.bytes_written += doc.size();
  }
  return true;
}

// --- Artifact tier ----------------------------------------------------------

std::string ResultStore::ArtifactPathFor(const StoreKey& key) const {
  return dir_ + "/" + key.ArtifactFilename();
}

std::optional<std::string> ResultStore::LookupArtifact(const StoreKey& key) {
  std::string blob;
  {
    std::FILE* f = std::fopen(ArtifactPathFor(key).c_str(), "rb");
    if (!f) {
      ArtifactTier().misses->Add(1);
      std::lock_guard<std::mutex> lock(mu_);
      ++artifact_stats_.misses;
      return std::nullopt;
    }
    char buf[1 << 16];
    size_t n;
    while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) blob.append(buf, n);
    std::fclose(f);
  }

  const auto corrupt_miss = [&]() -> std::optional<std::string> {
    ArtifactTier().misses->Add(1);
    ArtifactTier().corrupt->Add(1);
    std::lock_guard<std::mutex> lock(mu_);
    ++artifact_stats_.misses;
    ++artifact_stats_.corrupt;
    return std::nullopt;
  };

  ArtifactReader r(blob);
  if (r.U32() != kArtifactMagic) return corrupt_miss();
  if (static_cast<int>(r.U32()) != kResultSchemaVersion) return corrupt_miss();
  // Key echo, mirroring the record path: a renamed or collided file reads
  // as corrupt, never as somebody else's layout.
  if (r.Str() != key.suite || r.Str() != key.scale ||
      r.U64() != key.flow_hash || !r.ok()) {
    return corrupt_miss();
  }
  const size_t payload_size = r.Count(1);
  const uint64_t checksum = r.U64();
  if (!r.ok()) return corrupt_miss();
  std::string payload = r.Str();
  // Str() re-reads the length prefix Count() validated; the two must agree
  // and the payload must end the blob exactly.
  if (!r.AtEnd() || payload.size() != payload_size ||
      util::Fnv1a(payload) != checksum) {
    return corrupt_miss();
  }

  ArtifactTier().hits->Add(1);
  ArtifactTier().bytes_read->Observe(blob.size());
  std::lock_guard<std::mutex> lock(mu_);
  ++artifact_stats_.hits;
  artifact_stats_.bytes_read += blob.size();
  return payload;
}

bool ResultStore::InsertArtifact(const StoreKey& key,
                                 std::string_view payload) {
  ArtifactWriter w;
  w.U32(kArtifactMagic);
  w.U32(static_cast<uint32_t>(kResultSchemaVersion));
  w.Str(key.suite);
  w.Str(key.scale);
  w.U64(key.flow_hash);
  w.U64(payload.size());
  w.U64(util::Fnv1a(payload));
  w.Str(payload);

  const bool published =
      PublishFile(ArtifactPathFor(key), w.bytes(), /*record_tier=*/false);
  // Auto-GC: keep the tier under budget as it grows. Running after the
  // publish means the budget is enforced on the state that includes the
  // new blob — which may itself be evicted when it is the best candidate.
  if (published && artifact_budget_ > 0) {
    CollectArtifactGarbage(artifact_budget_);
  }
  return published;
}

void ResultStore::NoteArtifactCorrupt() {
  // The lookup counted an envelope-level hit; the payload turned out to be
  // undecodable, so reclassify it as a corrupt miss — in the per-instance
  // stats and the obs mirror alike (Counter::Sub exists for exactly this
  // path), so the two never disagree.
  ArtifactTier().hits->Sub(1);
  ArtifactTier().misses->Add(1);
  ArtifactTier().corrupt->Add(1);
  std::lock_guard<std::mutex> lock(mu_);
  if (artifact_stats_.hits > 0) --artifact_stats_.hits;
  ++artifact_stats_.misses;
  ++artifact_stats_.corrupt;
}

GcResult ResultStore::CollectArtifactGarbage(uint64_t budget_bytes) {
  namespace fs = std::filesystem;
  struct Blob {
    std::string name;
    uint64_t size;
    int64_t mtime_ns;
  };
  std::vector<Blob> blobs;
  uint64_t total = 0;
  std::error_code ec;
  for (fs::directory_iterator it(dir_, ec), end; !ec && it != end;
       it.increment(ec)) {
    std::error_code fec;
    if (!it->is_regular_file(fec) || fec) continue;
    std::string name = it->path().filename().string();
    // Only sealed blobs: records (.json) are never GC candidates, and
    // in-flight ".art.tmp.<pid>.<n>" temp files don't match the suffix.
    if (name.size() < 4 || name.compare(name.size() - 4, 4, ".art") != 0) {
      continue;
    }
    const uint64_t size = static_cast<uint64_t>(it->file_size(fec));
    if (fec) continue;
    const int64_t mtime = FileMtimeNanos(it->path());
    total += size;
    blobs.push_back(Blob{std::move(name), size, mtime});
  }

  GcResult out;
  out.scanned_blobs = blobs.size();
  out.scanned_bytes = total;
  if (total <= budget_bytes) return out;

  // Eviction order: oldest first (a cold blob's flow is the least likely
  // to be replayed again), largest first among equal mtimes (fewest
  // evictions to fit the budget), filename as the final deterministic
  // tiebreak so same-second bulk fills evict identically everywhere.
  std::sort(blobs.begin(), blobs.end(), [](const Blob& a, const Blob& b) {
    if (a.mtime_ns != b.mtime_ns) return a.mtime_ns < b.mtime_ns;
    if (a.size != b.size) return a.size > b.size;
    return a.name < b.name;
  });

  for (const Blob& blob : blobs) {
    if (total <= budget_bytes) break;
    if (std::remove((dir_ + "/" + blob.name).c_str()) != 0) {
      ++out.errors;
      continue;
    }
    total -= blob.size;
    ++out.evicted_blobs;
    out.evicted_bytes += blob.size;
  }

  if (out.evicted_blobs > 0) {
    ArtifactGc().evictions->Add(out.evicted_blobs);
    ArtifactGc().evicted_bytes->Add(out.evicted_bytes);
    std::lock_guard<std::mutex> lock(mu_);
    artifact_stats_.evictions += out.evicted_blobs;
    artifact_stats_.evicted_bytes += out.evicted_bytes;
  }
  return out;
}

StoreStats ResultStore::Stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

ArtifactStats ResultStore::ArtifactTierStats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return artifact_stats_;
}

}  // namespace splitlock::store
