#include "store/result_store.hpp"

#include <atomic>
#include <cstdio>
#include <filesystem>
#include <stdexcept>

#include "attack/engine.hpp"  // JsonEscape
#include "obs/metrics.hpp"
#include "store/artifact_io.hpp"  // ArtifactWriter/Reader for blob envelopes
#include "util/hash.hpp"

#ifdef _WIN32
#include <process.h>
#define SPLITLOCK_GETPID _getpid
#else
#include <unistd.h>
#define SPLITLOCK_GETPID getpid
#endif

namespace splitlock::store {

namespace {

void AppendKv(std::string* out, const char* key, const std::string& value,
              bool* first) {
  if (!*first) out->push_back(',');
  *first = false;
  *out += '"';
  *out += key;
  *out += "\":";
  *out += value;
}

std::string Quoted(std::string_view s) { return attack::JsonEscape(s); }

std::string U64(uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%llu", static_cast<unsigned long long>(v));
  return buf;
}

uint64_t GetU64(const util::JsonValue& v, const std::string& key) {
  const double d = v.GetNumber(key, 0.0);
  return d <= 0.0 ? 0 : static_cast<uint64_t>(d);
}

// First four bytes of every artifact blob ("SLAR" little-endian), so a
// record JSON accidentally renamed to .art fails at byte 0.
constexpr uint32_t kArtifactMagic = 0x52414c53u;

// Process-wide mirrors of the per-instance stats, one set per tier
// (store.record.* / store.artifact.*). All count-class: what a store
// serves is a function of the workload and the disk state, never of the
// thread count. The byte histograms bucket per-operation sizes; their
// sums are the per-tier byte totals `--store-stats` reports.
struct TierMetrics {
  obs::Counter* hits;
  obs::Counter* misses;
  obs::Counter* inserts;
  obs::Counter* insert_errors;
  obs::Counter* corrupt;
  obs::Histogram* bytes_read;
  obs::Histogram* bytes_written;
};

TierMetrics MakeTierMetrics(const std::string& prefix) {
  obs::Registry& r = obs::Registry::Instance();
  return TierMetrics{
      r.RegisterCounter(prefix + ".hits"),
      r.RegisterCounter(prefix + ".misses"),
      r.RegisterCounter(prefix + ".inserts"),
      r.RegisterCounter(prefix + ".insert_errors"),
      r.RegisterCounter(prefix + ".corrupt"),
      r.RegisterHistogram(prefix + ".bytes_read",
                          obs::Pow2Edges(64, 1ULL << 30)),
      r.RegisterHistogram(prefix + ".bytes_written",
                          obs::Pow2Edges(64, 1ULL << 30)),
  };
}

TierMetrics& RecordTier() {
  static TierMetrics m = MakeTierMetrics("store.record");
  return m;
}

TierMetrics& ArtifactTier() {
  static TierMetrics m = MakeTierMetrics("store.artifact");
  return m;
}

}  // namespace

std::string CanonicalDouble(double value) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  return buf;
}

std::string StoreKey::Filename() const {
  std::string suite_part = suite;
  for (char& c : suite_part) {
    const bool safe = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                      (c >= '0' && c <= '9') || c == '-' || c == '.';
    if (!safe) c = '_';
  }
  std::string scale_part = scale;
  for (char& c : scale_part) {
    if (!((c >= '0' && c <= '9') || c == '.')) c = '_';
  }
  return suite_part + "-s" + scale_part + "-f" + util::HexU64(flow_hash) +
         "-a" + util::HexU64(attack_hash) + ".json";
}

std::string StoreKey::ArtifactFilename() const {
  // Reuse Filename()'s sanitization, then drop the attack-hash component:
  // artifacts are keyed by (suite, scale, flow) only.
  const std::string record = Filename();
  const size_t attack_pos = record.rfind("-a");
  return record.substr(0, attack_pos) + ".art";
}

uint64_t PortfolioHash(const std::vector<std::string>& config_strings,
                       uint64_t score_patterns, bool run_attack) {
  std::string canonical = "v1;run_attack=";
  canonical += run_attack ? '1' : '0';
  canonical += ";patterns=";
  canonical += U64(score_patterns);
  for (const std::string& config : config_strings) {
    canonical += ';';
    canonical += config;
  }
  return util::Fnv1a(canonical);
}

// --- CampaignRecord ---------------------------------------------------------

std::string CampaignRecord::ToJson(bool include_timings) const {
  std::string out = "{";
  bool first = true;
  AppendKv(&out, "name", Quoted(name), &first);
  AppendKv(&out, "ok", ok ? "true" : "false", &first);
  AppendKv(&out, "error", Quoted(error), &first);
  AppendKv(&out, "broken_connections", U64(broken_connections), &first);
  AppendKv(&out, "key_bits", U64(key_bits), &first);
  AppendKv(&out, "logic_gates", U64(logic_gates), &first);

  std::string cost = "{\"die_area_um2\":" + CanonicalDouble(die_area_um2) +
                     ",\"power_uw\":" + CanonicalDouble(power_uw) +
                     ",\"critical_path_ps\":" + CanonicalDouble(critical_path_ps) +
                     "}";
  AppendKv(&out, "cost", cost, &first);

  std::string score =
      "{\"regular_ccr_percent\":" + CanonicalDouble(regular_ccr_percent) +
      ",\"key_logical_ccr_percent\":" + CanonicalDouble(key_logical_ccr_percent) +
      ",\"key_physical_ccr_percent\":" + CanonicalDouble(key_physical_ccr_percent) +
      ",\"pnr_percent\":" + CanonicalDouble(pnr_percent) +
      ",\"hd_percent\":" + CanonicalDouble(hd_percent) +
      ",\"oer_percent\":" + CanonicalDouble(oer_percent) +
      ",\"score_patterns\":" + U64(score_patterns) + "}";
  AppendKv(&out, "score", score, &first);

  std::string attacks_json = "[";
  bool first_attack = true;
  for (const AttackRecord& a : attacks) {
    if (!first_attack) attacks_json += ',';
    first_attack = false;
    attacks_json += "{";
    bool fa = true;
    AppendKv(&attacks_json, "engine", Quoted(a.engine), &fa);
    AppendKv(&attacks_json, "config", Quoted(a.config), &fa);
    AppendKv(&attacks_json, "ok", a.ok ? "true" : "false", &fa);
    AppendKv(&attacks_json, "error", Quoted(a.error), &fa);
    AppendKv(&attacks_json, "key_found", a.key_found ? "true" : "false", &fa);
    AppendKv(&attacks_json, "functionally_correct",
             a.functionally_correct ? "true" : "false", &fa);
    std::string counters = "{";
    bool fc = true;
    for (const auto& [cname, cvalue] : a.counters) {
      if (!fc) counters += ',';
      fc = false;
      counters += Quoted(cname) + ":" + CanonicalDouble(cvalue);
    }
    counters += '}';
    AppendKv(&attacks_json, "counters", counters, &fa);
    if (include_timings) {
      AppendKv(&attacks_json, "elapsed_s", CanonicalDouble(a.elapsed_s), &fa);
    }
    attacks_json += '}';
  }
  attacks_json += ']';
  AppendKv(&out, "attacks", attacks_json, &first);

  if (include_timings) {
    std::string times = "{\"lock_s\":" + CanonicalDouble(lock_s) +
                        ",\"place_s\":" + CanonicalDouble(place_s) +
                        ",\"route_s\":" + CanonicalDouble(route_s) +
                        ",\"lift_s\":" + CanonicalDouble(lift_s) +
                        ",\"sta_s\":" + CanonicalDouble(sta_s) +
                        ",\"analyze_s\":" + CanonicalDouble(analyze_s) +
                        ",\"artifact_load_s\":" + CanonicalDouble(artifact_load_s) +
                        ",\"artifact_save_s\":" + CanonicalDouble(artifact_save_s) +
                        "}";
    AppendKv(&out, "times", times, &first);
    AppendKv(&out, "elapsed_s", CanonicalDouble(elapsed_s), &first);
  }
  out += '}';
  return out;
}

std::optional<CampaignRecord> CampaignRecord::FromJson(
    const util::JsonValue& v) {
  if (!v.IsObject()) return std::nullopt;
  const util::JsonValue* name = v.Get("name");
  const util::JsonValue* ok = v.Get("ok");
  if (!name || !name->IsString() || !ok || !ok->IsBool()) return std::nullopt;

  CampaignRecord r;
  r.name = name->string;
  r.ok = ok->boolean;
  r.error = v.GetString("error", "");
  r.broken_connections = GetU64(v, "broken_connections");
  r.key_bits = GetU64(v, "key_bits");
  r.logic_gates = GetU64(v, "logic_gates");

  if (const util::JsonValue* cost = v.Get("cost"); cost && cost->IsObject()) {
    r.die_area_um2 = cost->GetNumber("die_area_um2", 0.0);
    r.power_uw = cost->GetNumber("power_uw", 0.0);
    r.critical_path_ps = cost->GetNumber("critical_path_ps", 0.0);
  }
  if (const util::JsonValue* score = v.Get("score");
      score && score->IsObject()) {
    r.regular_ccr_percent = score->GetNumber("regular_ccr_percent", 0.0);
    r.key_logical_ccr_percent =
        score->GetNumber("key_logical_ccr_percent", 0.0);
    r.key_physical_ccr_percent =
        score->GetNumber("key_physical_ccr_percent", 0.0);
    r.pnr_percent = score->GetNumber("pnr_percent", 0.0);
    r.hd_percent = score->GetNumber("hd_percent", 0.0);
    r.oer_percent = score->GetNumber("oer_percent", 0.0);
    r.score_patterns = GetU64(*score, "score_patterns");
  }
  if (const util::JsonValue* attacks = v.Get("attacks");
      attacks && attacks->IsArray()) {
    for (const util::JsonValue& av : attacks->array) {
      if (!av.IsObject()) return std::nullopt;
      AttackRecord a;
      a.engine = av.GetString("engine", "");
      a.config = av.GetString("config", "");
      a.ok = av.GetBool("ok", false);
      a.error = av.GetString("error", "");
      a.key_found = av.GetBool("key_found", false);
      a.functionally_correct = av.GetBool("functionally_correct", false);
      if (const util::JsonValue* counters = av.Get("counters");
          counters && counters->IsObject()) {
        for (const auto& [cname, cvalue] : counters->object) {
          if (cvalue.IsNumber()) a.counters[cname] = cvalue.number;
        }
      }
      a.elapsed_s = av.GetNumber("elapsed_s", 0.0);
      r.attacks.push_back(std::move(a));
    }
  }
  if (const util::JsonValue* times = v.Get("times");
      times && times->IsObject()) {
    r.lock_s = times->GetNumber("lock_s", 0.0);
    r.place_s = times->GetNumber("place_s", 0.0);
    r.route_s = times->GetNumber("route_s", 0.0);
    r.lift_s = times->GetNumber("lift_s", 0.0);
    r.sta_s = times->GetNumber("sta_s", 0.0);
    r.analyze_s = times->GetNumber("analyze_s", 0.0);
    r.artifact_load_s = times->GetNumber("artifact_load_s", 0.0);
    r.artifact_save_s = times->GetNumber("artifact_save_s", 0.0);
  }
  r.elapsed_s = v.GetNumber("elapsed_s", 0.0);
  return r;
}

// --- ResultStore ------------------------------------------------------------

ResultStore::ResultStore(std::string dir) : dir_(std::move(dir)) {
  std::error_code ec;
  std::filesystem::create_directories(dir_, ec);
  if (ec || !std::filesystem::is_directory(dir_)) {
    throw std::runtime_error("result store: cannot create directory " + dir_);
  }
}

std::string ResultStore::PathFor(const StoreKey& key) const {
  return dir_ + "/" + key.Filename();
}

std::optional<CampaignRecord> ResultStore::Lookup(const StoreKey& key) {
  std::string text;
  {
    std::FILE* f = std::fopen(PathFor(key).c_str(), "rb");
    if (!f) {
      RecordTier().misses->Add(1);
      std::lock_guard<std::mutex> lock(mu_);
      ++stats_.misses;
      return std::nullopt;
    }
    char buf[4096];
    size_t n;
    while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) text.append(buf, n);
    std::fclose(f);
  }

  const auto corrupt_miss = [&]() -> std::optional<CampaignRecord> {
    RecordTier().misses->Add(1);
    RecordTier().corrupt->Add(1);
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.misses;
    ++stats_.corrupt;
    return std::nullopt;
  };

  const std::optional<util::JsonValue> doc = util::ParseJson(text);
  if (!doc || !doc->IsObject()) return corrupt_miss();
  if (static_cast<int>(doc->GetNumber("schema_version", -1.0)) !=
      kResultSchemaVersion) {
    return corrupt_miss();
  }
  // Key echo: a record must describe the key it is filed under, so a
  // filename collision or a copied/tampered file reads as corrupt, not as
  // a wrong answer.
  const util::JsonValue* k = doc->Get("key");
  if (!k || !k->IsObject() || k->GetString("suite", "") != key.suite ||
      k->GetString("scale", "") != key.scale ||
      util::ParseHexU64(k->GetString("flow_hash", "")) != key.flow_hash ||
      util::ParseHexU64(k->GetString("attack_hash", "")) != key.attack_hash) {
    return corrupt_miss();
  }
  const util::JsonValue* rec = doc->Get("record");
  if (!rec) return corrupt_miss();
  std::optional<CampaignRecord> record = CampaignRecord::FromJson(*rec);
  if (!record) return corrupt_miss();

  RecordTier().hits->Add(1);
  RecordTier().bytes_read->Observe(text.size());
  std::lock_guard<std::mutex> lock(mu_);
  ++stats_.hits;
  stats_.bytes_read += text.size();
  return record;
}

bool ResultStore::Insert(const StoreKey& key, const CampaignRecord& record) {
  std::string doc = "{\"schema_version\":" + std::to_string(kResultSchemaVersion) +
                    ",\"key\":{\"suite\":" + Quoted(key.suite) +
                    ",\"scale\":" + Quoted(key.scale) +
                    ",\"flow_hash\":" + Quoted(util::HexU64(key.flow_hash)) +
                    ",\"attack_hash\":" + Quoted(util::HexU64(key.attack_hash)) +
                    "},\"record\":" + record.ToJson(/*include_timings=*/true) +
                    "}\n";

  // Unique temp name in the same directory (rename must not cross
  // filesystems), then atomic publish.
  static std::atomic<uint64_t> counter{0};
  const std::string path = PathFor(key);
  const std::string tmp = path + ".tmp." +
                          std::to_string(SPLITLOCK_GETPID()) + "." +
                          std::to_string(counter.fetch_add(1));

  const auto fail = [&]() {
    std::remove(tmp.c_str());
    RecordTier().insert_errors->Add(1);
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.insert_errors;
    return false;
  };

  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (!f) return fail();
  const bool wrote = std::fwrite(doc.data(), 1, doc.size(), f) == doc.size();
  const bool closed = std::fclose(f) == 0;
  if (!wrote || !closed) return fail();
  if (std::rename(tmp.c_str(), path.c_str()) != 0) return fail();

  RecordTier().inserts->Add(1);
  RecordTier().bytes_written->Observe(doc.size());
  std::lock_guard<std::mutex> lock(mu_);
  ++stats_.inserts;
  stats_.bytes_written += doc.size();
  return true;
}

// --- Artifact tier ----------------------------------------------------------

std::string ResultStore::ArtifactPathFor(const StoreKey& key) const {
  return dir_ + "/" + key.ArtifactFilename();
}

std::optional<std::string> ResultStore::LookupArtifact(const StoreKey& key) {
  std::string blob;
  {
    std::FILE* f = std::fopen(ArtifactPathFor(key).c_str(), "rb");
    if (!f) {
      ArtifactTier().misses->Add(1);
      std::lock_guard<std::mutex> lock(mu_);
      ++artifact_stats_.misses;
      return std::nullopt;
    }
    char buf[1 << 16];
    size_t n;
    while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) blob.append(buf, n);
    std::fclose(f);
  }

  const auto corrupt_miss = [&]() -> std::optional<std::string> {
    ArtifactTier().misses->Add(1);
    ArtifactTier().corrupt->Add(1);
    std::lock_guard<std::mutex> lock(mu_);
    ++artifact_stats_.misses;
    ++artifact_stats_.corrupt;
    return std::nullopt;
  };

  ArtifactReader r(blob);
  if (r.U32() != kArtifactMagic) return corrupt_miss();
  if (static_cast<int>(r.U32()) != kResultSchemaVersion) return corrupt_miss();
  // Key echo, mirroring the record path: a renamed or collided file reads
  // as corrupt, never as somebody else's layout.
  if (r.Str() != key.suite || r.Str() != key.scale ||
      r.U64() != key.flow_hash || !r.ok()) {
    return corrupt_miss();
  }
  const size_t payload_size = r.Count(1);
  const uint64_t checksum = r.U64();
  if (!r.ok()) return corrupt_miss();
  std::string payload = r.Str();
  // Str() re-reads the length prefix Count() validated; the two must agree
  // and the payload must end the blob exactly.
  if (!r.AtEnd() || payload.size() != payload_size ||
      util::Fnv1a(payload) != checksum) {
    return corrupt_miss();
  }

  ArtifactTier().hits->Add(1);
  ArtifactTier().bytes_read->Observe(blob.size());
  std::lock_guard<std::mutex> lock(mu_);
  ++artifact_stats_.hits;
  artifact_stats_.bytes_read += blob.size();
  return payload;
}

bool ResultStore::InsertArtifact(const StoreKey& key,
                                 std::string_view payload) {
  ArtifactWriter w;
  w.U32(kArtifactMagic);
  w.U32(static_cast<uint32_t>(kResultSchemaVersion));
  w.Str(key.suite);
  w.Str(key.scale);
  w.U64(key.flow_hash);
  w.U64(payload.size());
  w.U64(util::Fnv1a(payload));
  w.Str(payload);
  const std::string& doc = w.bytes();

  static std::atomic<uint64_t> counter{0};
  const std::string path = ArtifactPathFor(key);
  const std::string tmp = path + ".tmp." +
                          std::to_string(SPLITLOCK_GETPID()) + "." +
                          std::to_string(counter.fetch_add(1));

  const auto fail = [&]() {
    std::remove(tmp.c_str());
    ArtifactTier().insert_errors->Add(1);
    std::lock_guard<std::mutex> lock(mu_);
    ++artifact_stats_.insert_errors;
    return false;
  };

  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (!f) return fail();
  const bool wrote = std::fwrite(doc.data(), 1, doc.size(), f) == doc.size();
  const bool closed = std::fclose(f) == 0;
  if (!wrote || !closed) return fail();
  if (std::rename(tmp.c_str(), path.c_str()) != 0) return fail();

  ArtifactTier().inserts->Add(1);
  ArtifactTier().bytes_written->Observe(doc.size());
  std::lock_guard<std::mutex> lock(mu_);
  ++artifact_stats_.inserts;
  artifact_stats_.bytes_written += doc.size();
  return true;
}

void ResultStore::NoteArtifactCorrupt() {
  // obs mirror: the reclassification adds a corrupt miss; the envelope-
  // level obs hit from LookupArtifact is monotonic and stays (see the
  // Stats() contract in the header).
  ArtifactTier().misses->Add(1);
  ArtifactTier().corrupt->Add(1);
  std::lock_guard<std::mutex> lock(mu_);
  // The lookup already counted a hit for the envelope; the payload turned
  // out to be undecodable, so reclassify it.
  if (artifact_stats_.hits > 0) --artifact_stats_.hits;
  ++artifact_stats_.misses;
  ++artifact_stats_.corrupt;
}

StoreStats ResultStore::Stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

ArtifactStats ResultStore::ArtifactTierStats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return artifact_stats_;
}

}  // namespace splitlock::store
