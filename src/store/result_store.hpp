// Persistent, content-addressed campaign-result store.
//
// The paper's tables are suite-scale sweeps; every bench/CI run used to
// recompute identical lock -> place/route -> split -> attack pipelines
// because the only cache was an in-process map. This store persists the
// *deterministic summary* of one campaign job — the scorecard, layout
// cost, broken-connection count, per-attack verdicts — as one JSON file
// per key in a cache directory, so repeated runs (and the shards of a
// distributed run, see dist/shard.hpp) skip straight to the answer.
//
// Keying. A record is addressed by the quadruple the determinism contract
// guarantees results are a pure function of:
//     (suite member, scale, flow-options hash, attack-portfolio hash)
// The hashes are FNV-1a over canonical strings (core::FlowOptionsHash,
// attack::AttackConfig::Hash composed by PortfolioHash), stable across
// processes and pinned by golden tests — a silent hash change would
// repartition the cache, so tests fail loudly instead.
//
// Durability. Writes go to a unique temp file in the same directory and
// are published with rename(2), so readers only ever observe absent or
// complete records — a shard killed mid-insert leaves no torn JSON behind.
// Reads are corruption-tolerant: unparseable files, schema-version
// mismatches and key-echo mismatches count as misses (and bump the
// `corrupt` stat) rather than erroring, so a damaged cache degrades to
// recomputation, never to a failed campaign.
//
// The JSON records deliberately do NOT contain netlists or layouts — those
// live in the *artifact tier*: per-flow binary blobs (store/artifact_io)
// filed next to the records under the same suite/scale/flow-hash key (the
// attack hash is excluded — artifacts capture the flow output, which every
// attack portfolio over the same FEOL shares). Consumers that need the
// physical state back (`force_compute` recomputes, ablation benches,
// report portfolios) deserialize instead of re-running place/route/lift;
// consumers that need numbers are served from the JSON records. Artifact
// blobs ride the same temp-file + rename publish path and the same
// corruption-tolerance policy: a damaged blob is a miss, never a crash.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "util/json.hpp"

namespace splitlock::store {

// Version of the on-disk record layout AND of every CLI/bench JSON
// emitter's envelope ("schema_version" field). Bump on any incompatible
// change; old records then read as misses and old shard tables refuse to
// merge with new ones. v2: portable in-repo RNG draws + per-net/per-move
// stream restructure changed every seed-dependent result, and the stage
// timings gained analyze_s — v1 records are unreproducible by v2 binaries.
// v3: the floorplan/initial-placement prefix moved to counter-based
// StreamRng draws and floorplan sizing to a chunked parallel reduction,
// changing every seed-dependent placement; stage timings gained sta_s /
// artifact_load_s / artifact_save_s and the artifact tier was introduced.
inline constexpr int kResultSchemaVersion = 3;

// Canonical double formatting for record JSON: round-trip exact (%.17g),
// so re-serializing a parsed record is bit-identical.
std::string CanonicalDouble(double value);

// Address of one campaign-job result.
struct StoreKey {
  std::string suite;   // suite member id, e.g. "itc/b14"
  std::string scale;   // CanonicalDouble of the REPRO_SCALE in effect
  uint64_t flow_hash = 0;    // core::FlowOptionsHash
  uint64_t attack_hash = 0;  // PortfolioHash over the job's attack configs

  // Filesystem-safe record filename ('/' in suite ids becomes '_').
  std::string Filename() const;
  // Artifact-blob filename for the same key. Deliberately omits the attack
  // hash: the blob captures the flow output, which is shared by every
  // attack portfolio over the same (suite, scale, flow) triple.
  std::string ArtifactFilename() const;
  bool operator==(const StoreKey&) const = default;
};

// Hash of one attack portfolio + its scoring parameters. Composes each
// config's canonical string with the score-pattern count (scores depend on
// it) so any change to what would be computed changes the key.
uint64_t PortfolioHash(const std::vector<std::string>& config_strings,
                       uint64_t score_patterns, bool run_attack);

// Summary of one attack-engine run inside a job (subset of
// attack::AttackReport that is serializable and small).
// lint:result-schema(v3) persisted in the canonical record JSON — a
// result-affecting change here needs a kResultSchemaVersion bump.
struct AttackRecord {
  std::string engine;
  std::string config;
  bool ok = false;
  std::string error;
  bool key_found = false;
  bool functionally_correct = false;
  std::map<std::string, double> counters;  // deterministic
  double elapsed_s = 0.0;                  // timing: non-canonical
};

// The deterministic summary of one campaign job, plus (non-canonical)
// timings from the run that produced it.
// lint:result-schema(v3) the canonical record layout itself — any change
// to serialized fields IS the schema; bump kResultSchemaVersion.
struct CampaignRecord {
  std::string name;
  bool ok = false;
  std::string error;

  uint64_t broken_connections = 0;
  uint64_t key_bits = 0;
  uint64_t logic_gates = 0;

  // Layout cost (core::LayoutCost fields, inlined to keep the store
  // dependency-free).
  double die_area_um2 = 0.0;
  double power_uw = 0.0;
  double critical_path_ps = 0.0;

  // Attack scorecard (attack::AttackScore fields).
  double regular_ccr_percent = 0.0;
  double key_logical_ccr_percent = 0.0;
  double key_physical_ccr_percent = 0.0;
  double pnr_percent = 0.0;
  double hd_percent = 0.0;
  double oer_percent = 0.0;
  uint64_t score_patterns = 0;

  std::vector<AttackRecord> attacks;

  // Timings from the producing run (excluded from canonical JSON: two
  // processes computing the same key agree on everything above, never on
  // wall clocks).
  double lock_s = 0.0;
  double place_s = 0.0;
  double route_s = 0.0;
  double lift_s = 0.0;
  double sta_s = 0.0;      // RunSta alone
  double analyze_s = 0.0;  // toggle-rate + power estimation
  double artifact_load_s = 0.0;  // artifact-tier deserialize (warm path)
  double artifact_save_s = 0.0;  // artifact-tier serialize + publish
  double elapsed_s = 0.0;

  // One JSON object. Canonical form omits every timing field and is
  // bit-identical across processes/thread counts for the same key — the
  // merge determinism contract builds on it. The full form (what the
  // store persists) appends the timings.
  std::string ToJson(bool include_timings) const;
  // nullopt when `v` is not a record object. Absent timing fields read
  // as 0 (canonical-form input is valid).
  static std::optional<CampaignRecord> FromJson(const util::JsonValue& v);
};

struct StoreStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t inserts = 0;
  uint64_t insert_errors = 0;
  uint64_t corrupt = 0;  // present-but-unusable files (counted as misses too)
  // Byte totals, mirroring the artifact tier so `--store-stats` reports
  // the same shape for both cache populations: bytes_read counts
  // validated records returned to callers (hits), bytes_written counts
  // published record files.
  uint64_t bytes_read = 0;
  uint64_t bytes_written = 0;
};

// Counters for the artifact tier, kept separate from the summary-record
// stats so `--store-stats` can show both cache populations independently.
struct ArtifactStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t inserts = 0;
  uint64_t insert_errors = 0;
  uint64_t corrupt = 0;  // envelope- or payload-level failures (misses too)
  uint64_t bytes_read = 0;
  uint64_t bytes_written = 0;
};

// The on-disk store. Thread-safe: campaign workers look up and insert
// concurrently; distinct keys map to distinct files and same-key races are
// resolved by atomic rename (last writer wins with an identical record).
class ResultStore {
 public:
  // Creates `dir` (and parents) if needed. Throws std::runtime_error when
  // the directory cannot be created.
  explicit ResultStore(std::string dir);

  std::optional<CampaignRecord> Lookup(const StoreKey& key);
  // False on I/O failure (counted in stats, never throws).
  bool Insert(const StoreKey& key, const CampaignRecord& record);

  // --- Artifact tier ------------------------------------------------------
  // Blobs are opaque payloads (store/artifact_io encodings) wrapped in an
  // envelope carrying magic, schema version, key echo, payload length, and
  // an FNV-1a content checksum. Lookup validates the whole envelope before
  // returning the payload; anything malformed is a corrupt miss.

  std::optional<std::string> LookupArtifact(const StoreKey& key);
  // False on I/O failure (counted in stats, never throws).
  bool InsertArtifact(const StoreKey& key, std::string_view payload);
  // Callers that fail to *decode* a payload the envelope vouched for (e.g.
  // a format-version mismatch inside artifact_io) report it here so the
  // blob is reclassified from hit to corrupt miss.
  void NoteArtifactCorrupt();

  // Per-instance counters. Every update site also mirrors into the
  // process-wide obs registry (store.record.* / store.artifact.*), which
  // is what `--store-stats` and bench records export. One deliberate
  // divergence: the obs store.artifact.hits counter is envelope-level
  // (monotonic), so a NoteArtifactCorrupt reclassification — which
  // decrements ArtifactStats::hits — leaves the obs hit count one higher
  // than ArtifactStats reports; the obs corrupt/miss counters still
  // record the reclassification.
  StoreStats Stats() const;
  ArtifactStats ArtifactTierStats() const;
  const std::string& dir() const { return dir_; }

 private:
  std::string PathFor(const StoreKey& key) const;
  std::string ArtifactPathFor(const StoreKey& key) const;

  std::string dir_;
  mutable std::mutex mu_;
  StoreStats stats_;
  ArtifactStats artifact_stats_;
};

}  // namespace splitlock::store
