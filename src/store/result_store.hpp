// Persistent, content-addressed campaign-result store.
//
// The paper's tables are suite-scale sweeps; every bench/CI run used to
// recompute identical lock -> place/route -> split -> attack pipelines
// because the only cache was an in-process map. This store persists the
// *deterministic summary* of one campaign job as JSON files in a cache
// directory, so repeated runs (and the shards of a distributed run, see
// dist/shard.hpp) skip straight to the answer.
//
// Two-level keying. Results are cached at the granularity they are
// actually shared, not at the granularity a job happens to batch them:
//
//   FlowRecord    one file per (suite member, scale, flow-options hash) —
//                 the flow summary every attack portfolio over the same
//                 FEOL shares: layout cost, broken-connection count,
//                 key/gate counts.
//   AttackRecord  one file per (flow key, attack hash) — one engine's
//                 verdict, counters and (when it recovered a complete
//                 assignment) its scorecard.
//
// A campaign job's CampaignRecord is *assembled* from those pieces
// (ComposeCampaignRecord), so a `{sat, proximity}` run reuses the
// AttackRecord a `{sat}` run already paid for and computes only the
// proximity engine — the partial-hit path in core::CampaignRunner::RunOne.
// The hashes are FNV-1a over canonical strings (core::FlowOptionsHash,
// AttackKeyHash over AttackConfig::ToString; PortfolioHash identifies a
// whole portfolio for shard tables), stable across processes and pinned
// by golden tests — a silent hash change would repartition the cache, so
// tests fail loudly instead.
//
// Durability. Writes go to a unique temp file in the same directory and
// are published with rename(2), so readers only ever observe absent or
// complete records — a shard killed mid-insert leaves no torn JSON behind.
// Reads are corruption-tolerant: unparseable files, schema-version
// mismatches and key-echo mismatches count as misses (and bump the
// `corrupt` stat) rather than erroring, so a damaged cache degrades to
// recomputation, never to a failed campaign.
//
// The JSON records deliberately do NOT contain netlists or layouts — those
// live in the *artifact tier*: per-flow binary blobs (store/artifact_io)
// filed next to the records under the same flow key (attack identities are
// excluded — artifacts capture the flow output, which every attack
// portfolio over the same FEOL shares). Consumers that need the physical
// state back (`force_compute` recomputes, ablation benches, the
// partial-hit replay) deserialize instead of re-running place/route/lift;
// consumers that need numbers are served from the JSON records. Artifact
// blobs ride the same temp-file + rename publish path and the same
// corruption-tolerance policy: a damaged blob is a miss, never a crash.
//
// Artifact GC. Blobs are orders of magnitude larger than records, so the
// artifact tier is bounded: CollectArtifactGarbage(budget) evicts blobs —
// oldest mtime first, largest first among equals — until the tier fits the
// byte budget. Records are never touched, so eviction only downgrades a
// warm replay to a recompute (which re-publishes the blob); canonical
// output is unaffected. A concurrent reader of an evicted blob sees an
// ordinary miss.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "util/json.hpp"

namespace splitlock::store {

// Version of the on-disk record layout AND of every CLI/bench JSON
// emitter's envelope ("schema_version" field). Bump on any incompatible
// change; old records then read as misses and old shard tables refuse to
// merge with new ones. v2: portable in-repo RNG draws + per-net/per-move
// stream restructure changed every seed-dependent result, and the stage
// timings gained analyze_s — v1 records are unreproducible by v2 binaries.
// v3: the floorplan/initial-placement prefix moved to counter-based
// StreamRng draws and floorplan sizing to a chunked parallel reduction,
// changing every seed-dependent placement; stage timings gained sta_s /
// artifact_load_s / artifact_save_s and the artifact tier was introduced.
// v4: the record tier split into two levels — per-flow FlowRecord files
// plus one AttackRecord file per (flow, attack) with per-attack
// scorecards — replacing the single per-(flow, portfolio) record, and
// campaign records are now assembled from those pieces.
inline constexpr int kResultSchemaVersion = 4;

// Canonical double formatting for record JSON: round-trip exact (%.17g),
// so re-serializing a parsed record is bit-identical.
std::string CanonicalDouble(double value);

// Flow-level address: everything under one key describes the same flow
// output (FlowRecord, the artifact blob) or hangs attack identities off
// it (AttackRecord files).
struct StoreKey {
  std::string suite;   // suite member id, e.g. "itc/b14"
  std::string scale;   // CanonicalDouble of the REPRO_SCALE in effect
  uint64_t flow_hash = 0;  // core::FlowOptionsHash

  // Filesystem-safe filename stem "<suite>-s<scale>-f<hex>" ('/' in suite
  // ids becomes '_'). Every file under this key starts with it.
  std::string Stem() const;
  std::string FlowFilename() const;  // Stem() + ".flow.json"
  // One record file per attack identity under this flow.
  std::string AttackFilename(uint64_t attack_hash) const;  // -a<hex>.json
  // Artifact-blob filename. Deliberately carries no attack identity: the
  // blob captures the flow output, which is shared by every attack
  // portfolio over the same (suite, scale, flow) triple.
  std::string ArtifactFilename() const;  // Stem() + ".art"
  bool operator==(const StoreKey&) const = default;
};

// Address of one attack's record under a flow key: one engine config plus
// the scoring parameters its per-attack scorecard depends on. Anything
// that changes what would be computed changes the hash.
uint64_t AttackKeyHash(const std::string& config_string,
                       uint64_t score_patterns);

// Hash of one whole attack portfolio + its scoring parameters: the
// *campaign* identity shard tables carry (dist/shard.hpp) and merge
// validation compares. Record files are no longer addressed by it — the
// per-attack AttackKeyHash is — but two shard tables still refuse to
// merge unless they ran the same portfolio.
uint64_t PortfolioHash(const std::vector<std::string>& config_strings,
                       uint64_t score_patterns, bool run_attack);

// Summary of one attack-engine run (subset of attack::AttackReport that
// is serializable and small), stored one file per (flow key, attack
// hash). When the engine recovered a complete assignment the record also
// carries the scorecard computed from it, so a later portfolio containing
// this attack can reproduce the campaign-level score without re-running
// anything.
// lint:result-schema(v4) persisted in the canonical record JSON — a
// result-affecting change here needs a kResultSchemaVersion bump.
struct AttackRecord {
  std::string engine;
  std::string config;
  bool ok = false;
  std::string error;
  bool key_found = false;
  bool functionally_correct = false;
  std::map<std::string, double> counters;  // deterministic

  // Scorecard from this attack's recovered assignment (attack::AttackScore
  // fields). has_score is false for engines that recover keys but no
  // layout assignment (e.g. sat) and when the split broke nothing.
  bool has_score = false;
  double regular_ccr_percent = 0.0;
  double key_logical_ccr_percent = 0.0;
  double key_physical_ccr_percent = 0.0;
  double pnr_percent = 0.0;
  double hd_percent = 0.0;
  double oer_percent = 0.0;
  uint64_t score_patterns = 0;  // 0 when !has_score

  double elapsed_s = 0.0;  // timing: non-canonical

  // Canonical form omits elapsed_s; the store persists the full form.
  std::string ToJson(bool include_timings) const;
  // nullopt when `v` is not an attack-record object.
  static std::optional<AttackRecord> FromJson(const util::JsonValue& v);
};

// The deterministic per-flow summary every portfolio over the same FEOL
// shares, plus (non-canonical) timings from the run that produced it.
// lint:result-schema(v4) persisted in the canonical record JSON — a
// result-affecting change here needs a kResultSchemaVersion bump.
struct FlowRecord {
  std::string name;
  bool ok = false;
  std::string error;

  uint64_t broken_connections = 0;
  uint64_t key_bits = 0;
  uint64_t logic_gates = 0;

  // Layout cost (core::LayoutCost fields, inlined to keep the store
  // dependency-free).
  double die_area_um2 = 0.0;
  double power_uw = 0.0;
  double critical_path_ps = 0.0;

  // Timings from the producing run (excluded from canonical JSON: two
  // processes computing the same key agree on everything above, never on
  // wall clocks).
  double lock_s = 0.0;
  double place_s = 0.0;
  double route_s = 0.0;
  double lift_s = 0.0;
  double sta_s = 0.0;      // RunSta alone
  double analyze_s = 0.0;  // toggle-rate + power estimation
  double artifact_load_s = 0.0;  // artifact-tier deserialize (warm path)
  double artifact_save_s = 0.0;  // artifact-tier serialize + publish
  double elapsed_s = 0.0;        // the producing job's whole duration

  std::string ToJson(bool include_timings) const;
  static std::optional<FlowRecord> FromJson(const util::JsonValue& v);
};

// The deterministic summary of one campaign job. No longer persisted as
// one file: it is assembled (ComposeCampaignRecord) from a FlowRecord and
// the job's AttackRecords, and what shard tables / the CLI serialize.
// lint:result-schema(v4) the canonical record layout itself — any change
// to serialized fields IS the schema; bump kResultSchemaVersion.
struct CampaignRecord {
  std::string name;
  bool ok = false;
  std::string error;

  uint64_t broken_connections = 0;
  uint64_t key_bits = 0;
  uint64_t logic_gates = 0;

  // Layout cost (core::LayoutCost fields).
  double die_area_um2 = 0.0;
  double power_uw = 0.0;
  double critical_path_ps = 0.0;

  // Campaign-level attack scorecard: the first attack in portfolio order
  // that carries one (AttackRecord::has_score).
  double regular_ccr_percent = 0.0;
  double key_logical_ccr_percent = 0.0;
  double key_physical_ccr_percent = 0.0;
  double pnr_percent = 0.0;
  double hd_percent = 0.0;
  double oer_percent = 0.0;
  uint64_t score_patterns = 0;

  std::vector<AttackRecord> attacks;

  // Timings from the producing run (excluded from canonical JSON).
  double lock_s = 0.0;
  double place_s = 0.0;
  double route_s = 0.0;
  double lift_s = 0.0;
  double sta_s = 0.0;
  double analyze_s = 0.0;
  double artifact_load_s = 0.0;
  double artifact_save_s = 0.0;
  double elapsed_s = 0.0;

  // One JSON object. Canonical form omits every timing field and is
  // bit-identical across processes/thread counts/store temperatures for
  // the same key — the merge determinism contract builds on it. The full
  // form appends the timings.
  std::string ToJson(bool include_timings) const;
  // nullopt when `v` is not a record object. Absent timing fields read
  // as 0 (canonical-form input is valid).
  static std::optional<CampaignRecord> FromJson(const util::JsonValue& v);
};

// Assembles the job-level record from its two-level pieces. `attacks`
// must be in canonical portfolio order — the composed record (and
// therefore suite stdout and merge output) is byte-identical whether the
// pieces came from the store or were just computed, which is the
// partial-hit path's whole contract. Campaign score = the first attack
// carrying one. Timings (including elapsed_s) are copied from `flow`.
CampaignRecord ComposeCampaignRecord(const FlowRecord& flow,
                                     const std::vector<AttackRecord>& attacks);

struct StoreStats {
  // One count per record *file* operation: a job touches one flow record
  // plus one record per attack in its portfolio.
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t inserts = 0;
  uint64_t insert_errors = 0;
  uint64_t corrupt = 0;  // present-but-unusable files (counted as misses too)
  // Byte totals, mirroring the artifact tier so `--store-stats` reports
  // the same shape for both cache populations: bytes_read counts
  // validated records returned to callers (hits), bytes_written counts
  // published record files.
  uint64_t bytes_read = 0;
  uint64_t bytes_written = 0;
};

// Counters for the artifact tier, kept separate from the summary-record
// stats so `--store-stats` can show both cache populations independently.
struct ArtifactStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t inserts = 0;
  uint64_t insert_errors = 0;
  uint64_t corrupt = 0;  // envelope- or payload-level failures (misses too)
  uint64_t bytes_read = 0;
  uint64_t bytes_written = 0;
  // GC activity (CollectArtifactGarbage, including auto-GC on insert).
  uint64_t evictions = 0;
  uint64_t evicted_bytes = 0;
};

// One CollectArtifactGarbage pass, summarized.
struct GcResult {
  uint64_t scanned_blobs = 0;
  uint64_t scanned_bytes = 0;  // artifact-tier size before the pass
  uint64_t evicted_blobs = 0;
  uint64_t evicted_bytes = 0;
  uint64_t errors = 0;  // blobs that could not be removed
};

// The on-disk store. Thread-safe: campaign workers look up and insert
// concurrently; distinct keys map to distinct files and same-key races are
// resolved by atomic rename (last writer wins with an identical record).
class ResultStore {
 public:
  // Creates `dir` (and parents) if needed. Throws std::runtime_error when
  // the directory cannot be created.
  explicit ResultStore(std::string dir);

  // --- Record tier --------------------------------------------------------

  std::optional<FlowRecord> LookupFlow(const StoreKey& key);
  // False on I/O failure (counted in stats, never throws).
  bool InsertFlow(const StoreKey& key, const FlowRecord& record);

  std::optional<AttackRecord> LookupAttack(const StoreKey& key,
                                           uint64_t attack_hash);
  bool InsertAttack(const StoreKey& key, uint64_t attack_hash,
                    const AttackRecord& record);

  // --- Artifact tier ------------------------------------------------------
  // Blobs are opaque payloads (store/artifact_io encodings) wrapped in an
  // envelope carrying magic, schema version, key echo, payload length, and
  // an FNV-1a content checksum. Lookup validates the whole envelope before
  // returning the payload; anything malformed is a corrupt miss.

  std::optional<std::string> LookupArtifact(const StoreKey& key);
  // False on I/O failure (counted in stats, never throws). When an
  // artifact budget is set (set_artifact_budget), a successful publish
  // triggers an auto-GC pass over the tier.
  bool InsertArtifact(const StoreKey& key, std::string_view payload);
  // Callers that fail to *decode* a payload the envelope vouched for (e.g.
  // a format-version mismatch inside artifact_io) report it here so the
  // blob is reclassified from hit to corrupt miss — in the per-instance
  // stats AND the obs mirror, which stay in agreement.
  void NoteArtifactCorrupt();

  // Evicts artifact blobs until the tier's byte total fits `budget_bytes`.
  // Deterministic eviction order: oldest mtime first, then largest first,
  // then lexicographic filename — so equal-mtime ties (same-second bulk
  // fills) still evict identically everywhere. Summary records are never
  // touched. Safe against concurrent readers: an evicted blob simply
  // reads as a miss and the flow recomputes (then re-warms the blob).
  GcResult CollectArtifactGarbage(uint64_t budget_bytes);

  // Auto-GC budget for InsertArtifact; 0 (the default) disables auto-GC.
  void set_artifact_budget(uint64_t budget_bytes) {
    artifact_budget_ = budget_bytes;
  }
  uint64_t artifact_budget() const { return artifact_budget_; }

  // Per-instance counters. Every update site also mirrors into the
  // process-wide obs registry (store.record.* / store.artifact.*), which
  // is what `--store-stats` and bench records export; the two always
  // agree (NoteArtifactCorrupt reclassifies in both).
  StoreStats Stats() const;
  ArtifactStats ArtifactTierStats() const;
  const std::string& dir() const { return dir_; }

 private:
  std::optional<util::JsonValue> ReadRecordDoc(const std::string& path,
                                               size_t* bytes);
  bool PublishFile(const std::string& path, const std::string& doc,
                   bool record_tier);
  void CountRecordMiss(bool corrupt);
  void CountRecordHit(size_t bytes);

  std::string ArtifactPathFor(const StoreKey& key) const;

  std::string dir_;
  uint64_t artifact_budget_ = 0;
  mutable std::mutex mu_;
  StoreStats stats_;
  ArtifactStats artifact_stats_;
};

}  // namespace splitlock::store
