#include "util/env.hpp"

#include <algorithm>
#include <cstdlib>
#include <string>

namespace splitlock {
namespace {

double EnvDouble(const char* name, double fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  char* end = nullptr;
  const double parsed = std::strtod(v, &end);
  return (end == v) ? fallback : parsed;
}

uint64_t EnvUint(const char* name, uint64_t fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  char* end = nullptr;
  const unsigned long long parsed = std::strtoull(v, &end, 10);
  return (end == v) ? fallback : static_cast<uint64_t>(parsed);
}

}  // namespace

double ReproScale() {
  return std::clamp(EnvDouble("REPRO_SCALE", 0.25), 0.01, 1.0);
}

uint64_t ReproPatterns() {
  return std::max<uint64_t>(64, EnvUint("REPRO_PATTERNS", 100000));
}

uint64_t ReproGuesses() {
  return std::max<uint64_t>(64, EnvUint("REPRO_GUESSES", 100000));
}

}  // namespace splitlock
