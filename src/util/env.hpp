// Environment knobs controlling experiment scale.
//
// The paper ran 5-18h jobs on a 128-core Xeon; the default configuration here
// scales the ITC'99 design sizes and pattern counts down so the full table
// suite regenerates in minutes. Setting REPRO_SCALE=1.0 restores the
// published gate counts.
#pragma once

#include <cstdint>

namespace splitlock {

// Multiplier applied to ITC'99 synthetic gate counts (env REPRO_SCALE,
// default 0.25, clamped to [0.01, 1.0]).
double ReproScale();

// Number of random patterns for HD/OER estimation (env REPRO_PATTERNS,
// default 100000; the paper used 1M).
uint64_t ReproPatterns();

// Number of random key guesses for the ideal-attack experiment
// (env REPRO_GUESSES, default 100000; the paper used 1M).
uint64_t ReproGuesses();

}  // namespace splitlock
