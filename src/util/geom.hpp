// Planar geometry primitives shared by placement, routing, and attacks.
//
// Coordinates are in micrometers (um) throughout the physical-design stack.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>

namespace splitlock {

struct Point {
  double x = 0.0;
  double y = 0.0;

  friend bool operator==(const Point& a, const Point& b) {
    return a.x == b.x && a.y == b.y;
  }
};

inline double ManhattanDistance(const Point& a, const Point& b) {
  return std::abs(a.x - b.x) + std::abs(a.y - b.y);
}

inline double EuclideanDistance(const Point& a, const Point& b) {
  const double dx = a.x - b.x;
  const double dy = a.y - b.y;
  return std::sqrt(dx * dx + dy * dy);
}

// Axis-aligned rectangle; lo is bottom-left, hi is top-right.
struct Rect {
  Point lo;
  Point hi;

  double Width() const { return hi.x - lo.x; }
  double Height() const { return hi.y - lo.y; }
  double Area() const { return Width() * Height(); }
  double HalfPerimeter() const { return Width() + Height(); }

  bool Contains(const Point& p) const {
    return p.x >= lo.x && p.x <= hi.x && p.y >= lo.y && p.y <= hi.y;
  }

  // Grow the rectangle to include p.
  void Expand(const Point& p) {
    lo.x = std::min(lo.x, p.x);
    lo.y = std::min(lo.y, p.y);
    hi.x = std::max(hi.x, p.x);
    hi.y = std::max(hi.y, p.y);
  }

  static Rect Around(const Point& p) { return Rect{p, p}; }
};

}  // namespace splitlock
