// The one FNV-1a implementation.
//
// Every stable identity in the system — AttackConfig::Hash, the
// flow-options hash, store::PortfolioHash, synthetic-benchmark seeds —
// is FNV-1a over a canonical string, and those values partition the
// persistent result store and gate shard merges. Keeping a single
// definition makes "identical across processes, platforms and call
// sites" a property of the code rather than a convention; the golden
// tests in test_store.cpp pin the resulting values.
#pragma once

#include <cstdint>
#include <string_view>

namespace splitlock::util {

inline constexpr uint64_t Fnv1a(std::string_view s) {
  uint64_t h = 0xcbf29ce484222325ULL;
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

}  // namespace splitlock::util
