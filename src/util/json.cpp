#include "util/json.hpp"

#include <cstdio>
#include <cstdlib>

namespace splitlock::util {

const JsonValue* JsonValue::Get(const std::string& key) const {
  if (type != Type::kObject) return nullptr;
  const auto it = object.find(key);
  return it == object.end() ? nullptr : &it->second;
}

double JsonValue::GetNumber(const std::string& key, double def) const {
  const JsonValue* v = Get(key);
  return v && v->IsNumber() ? v->number : def;
}

bool JsonValue::GetBool(const std::string& key, bool def) const {
  const JsonValue* v = Get(key);
  return v && v->IsBool() ? v->boolean : def;
}

std::string JsonValue::GetString(const std::string& key,
                                 std::string def) const {
  const JsonValue* v = Get(key);
  return v && v->IsString() ? v->string : std::move(def);
}

namespace {

// Recursive-descent parser over a cursor; every production returns false on
// malformed input and the top level converts that to nullopt.
class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  bool ParseDocument(JsonValue* out) {
    SkipWs();
    if (!ParseValue(out, /*depth=*/0)) return false;
    SkipWs();
    return pos_ == text_.size();
  }

 private:
  static constexpr int kMaxDepth = 64;

  void SkipWs() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  bool Peek(char* c) const {
    if (pos_ >= text_.size()) return false;
    *c = text_[pos_];
    return true;
  }

  bool Consume(char expected) {
    if (pos_ >= text_.size() || text_[pos_] != expected) return false;
    ++pos_;
    return true;
  }

  bool ConsumeLiteral(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  bool ParseValue(JsonValue* out, int depth) {
    if (depth > kMaxDepth) return false;
    char c;
    if (!Peek(&c)) return false;
    switch (c) {
      case '{':
        return ParseObject(out, depth);
      case '[':
        return ParseArray(out, depth);
      case '"':
        out->type = JsonValue::Type::kString;
        return ParseString(&out->string);
      case 't':
        out->type = JsonValue::Type::kBool;
        out->boolean = true;
        return ConsumeLiteral("true");
      case 'f':
        out->type = JsonValue::Type::kBool;
        out->boolean = false;
        return ConsumeLiteral("false");
      case 'n':
        out->type = JsonValue::Type::kNull;
        return ConsumeLiteral("null");
      default:
        return ParseNumber(out);
    }
  }

  bool ParseObject(JsonValue* out, int depth) {
    out->type = JsonValue::Type::kObject;
    if (!Consume('{')) return false;
    SkipWs();
    char c;
    if (Peek(&c) && c == '}') return Consume('}');
    while (true) {
      SkipWs();
      std::string key;
      if (!ParseString(&key)) return false;
      SkipWs();
      if (!Consume(':')) return false;
      SkipWs();
      JsonValue value;
      if (!ParseValue(&value, depth + 1)) return false;
      out->object[std::move(key)] = std::move(value);
      SkipWs();
      if (Consume('}')) return true;
      if (!Consume(',')) return false;
    }
  }

  bool ParseArray(JsonValue* out, int depth) {
    out->type = JsonValue::Type::kArray;
    if (!Consume('[')) return false;
    SkipWs();
    char c;
    if (Peek(&c) && c == ']') return Consume(']');
    while (true) {
      SkipWs();
      JsonValue value;
      if (!ParseValue(&value, depth + 1)) return false;
      out->array.push_back(std::move(value));
      SkipWs();
      if (Consume(']')) return true;
      if (!Consume(',')) return false;
    }
  }

  bool ParseString(std::string* out) {
    if (!Consume('"')) return false;
    out->clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return true;
      if (static_cast<unsigned char>(c) < 0x20) return false;  // raw control
      if (c != '\\') {
        out->push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) return false;
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out->push_back('"'); break;
        case '\\': out->push_back('\\'); break;
        case '/': out->push_back('/'); break;
        case 'b': out->push_back('\b'); break;
        case 'f': out->push_back('\f'); break;
        case 'n': out->push_back('\n'); break;
        case 'r': out->push_back('\r'); break;
        case 't': out->push_back('\t'); break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return false;
          uint32_t cp = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            cp <<= 4;
            if (h >= '0' && h <= '9') cp |= static_cast<uint32_t>(h - '0');
            else if (h >= 'a' && h <= 'f') cp |= static_cast<uint32_t>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') cp |= static_cast<uint32_t>(h - 'A' + 10);
            else return false;
          }
          // The writers only emit \u00XX for control bytes; encode the
          // general case as UTF-8 anyway so foreign records round-trip.
          if (cp < 0x80) {
            out->push_back(static_cast<char>(cp));
          } else if (cp < 0x800) {
            out->push_back(static_cast<char>(0xc0 | (cp >> 6)));
            out->push_back(static_cast<char>(0x80 | (cp & 0x3f)));
          } else {
            out->push_back(static_cast<char>(0xe0 | (cp >> 12)));
            out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3f)));
            out->push_back(static_cast<char>(0x80 | (cp & 0x3f)));
          }
          break;
        }
        default:
          return false;
      }
    }
    return false;  // unterminated
  }

  bool ParseNumber(JsonValue* out) {
    const size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if ((c >= '0' && c <= '9') || c == '.' || c == 'e' || c == 'E' ||
          c == '+' || c == '-') {
        ++pos_;
      } else {
        break;
      }
    }
    if (pos_ == start) return false;
    const std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    const double value = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size()) return false;
    out->type = JsonValue::Type::kNumber;
    out->number = value;
    return true;
  }

  std::string_view text_;
  size_t pos_ = 0;
};

}  // namespace

std::optional<JsonValue> ParseJson(std::string_view text) {
  JsonValue value;
  if (!Parser(text).ParseDocument(&value)) return std::nullopt;
  return value;
}

std::string HexU64(uint64_t value) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(value));
  return buf;
}

std::optional<uint64_t> ParseHexU64(std::string_view hex) {
  if (hex.empty() || hex.size() > 16) return std::nullopt;
  uint64_t value = 0;
  for (const char c : hex) {
    value <<= 4;
    if (c >= '0' && c <= '9') value |= static_cast<uint64_t>(c - '0');
    else if (c >= 'a' && c <= 'f') value |= static_cast<uint64_t>(c - 'a' + 10);
    else if (c >= 'A' && c <= 'F') value |= static_cast<uint64_t>(c - 'A' + 10);
    else return std::nullopt;
  }
  return value;
}

}  // namespace splitlock::util
