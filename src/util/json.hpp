// Minimal JSON reader for the result store and the shard-merge path.
//
// The repo's JSON has always been write-only (attack reports, bench
// records); the persistent result store and `splitlock_cli merge` need the
// other direction: parse records that may have been produced by another
// process, an older binary, or a run that died mid-write. The parser is
// therefore strict but non-throwing — any syntax error yields nullopt and
// the caller treats the input as a cache miss / corrupt shard, never a
// crash.
//
// Scope: the subset the store emits. Objects, arrays, strings (with the
// escapes JsonEscape produces, incl. \uXXXX for control characters),
// doubles via strtod, true/false/null. Numbers are stored as double —
// every integer the records carry (counts, indices, versions) is well
// under 2^53; 64-bit hashes travel as hex strings for exactness.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace splitlock::util {

class JsonValue {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  Type type = Type::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<JsonValue> array;
  std::map<std::string, JsonValue> object;

  bool IsObject() const { return type == Type::kObject; }
  bool IsArray() const { return type == Type::kArray; }
  bool IsString() const { return type == Type::kString; }
  bool IsNumber() const { return type == Type::kNumber; }
  bool IsBool() const { return type == Type::kBool; }

  // Object member lookup; nullptr when absent or not an object.
  const JsonValue* Get(const std::string& key) const;

  // Typed member accessors with defaults (missing or mistyped -> default).
  double GetNumber(const std::string& key, double def) const;
  bool GetBool(const std::string& key, bool def) const;
  std::string GetString(const std::string& key, std::string def) const;
};

// Parses exactly one JSON document (trailing non-whitespace is an error).
// nullopt on any malformed input.
std::optional<JsonValue> ParseJson(std::string_view text);

// 64-bit value <-> fixed-width lowercase hex ("%016x"): how the store and
// shard tables carry hashes without double-precision loss.
std::string HexU64(uint64_t value);
std::optional<uint64_t> ParseHexU64(std::string_view hex);

}  // namespace splitlock::util
