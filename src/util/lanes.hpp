// Lane masks for 64-pattern simulation words.
//
// Sweeps that process `patterns` patterns in 64-lane words must exclude the
// final word's dead lanes (stimulus exists there but was never requested)
// from every statistic and fingerprint. Each parallel sweep masks through
// these helpers so a missed-mask bug cannot recur per call site.
#pragma once

#include <cstdint>

namespace splitlock {

// Mask of live lanes in the FINAL word of a `patterns`-pattern sweep
// (all-ones when patterns is a multiple of 64).
inline uint64_t TailLaneMask(uint64_t patterns) {
  return (patterns % 64) != 0 ? ((1ULL << (patterns % 64)) - 1) : ~0ULL;
}

// Mask of live lanes in word `word_index` of ceil(patterns/64) words.
inline uint64_t LaneMaskForWord(uint64_t word_index, uint64_t num_words,
                                uint64_t patterns) {
  return word_index + 1 == num_words ? TailLaneMask(patterns) : ~0ULL;
}

}  // namespace splitlock
