// Deterministic random number generation for all randomized stages.
//
// Every randomized algorithm in the library takes an explicit seed (or an
// Rng&) so experiments are reproducible run-to-run and machine-to-machine.
// The draw shapes are implemented in-repo (Lemire-style multiply-shift for
// bounded ints, a fixed 53-bit mantissa fill for doubles) rather than via
// std::uniform_*_distribution, whose output is implementation-defined —
// stdlib-dependent draws would silently break the machine-to-machine
// promise and the cross-process shard/merge bit-identity contract.
#pragma once

#include <cstdint>
#include <random>
#include <span>
#include <vector>

namespace splitlock {

// Thin wrapper over std::mt19937_64 (whose raw output IS specified by the
// standard) with the handful of draw shapes the library needs. Copyable so
// callers can fork independent streams.
class Rng {
 public:
  explicit Rng(uint64_t seed) : engine_(seed) {}

  // Uniform integer in [0, bound). bound must be > 0. Lemire multiply-shift:
  // draws feed Monte-Carlo estimates, not cryptography, so the rejection
  // step is omitted.
  uint64_t NextUint(uint64_t bound) {
    return static_cast<uint64_t>(
        (static_cast<unsigned __int128>(engine_()) * bound) >> 64);
  }

  // Uniform integer in [lo, hi] inclusive.
  int64_t NextInt(int64_t lo, int64_t hi) {
    const uint64_t width =
        static_cast<uint64_t>(hi) - static_cast<uint64_t>(lo) + 1;
    // width == 0 means the full 64-bit range: every word is in range.
    return width == 0 ? static_cast<int64_t>(engine_())
                      : lo + static_cast<int64_t>(NextUint(width));
  }

  // Uniform double in [0, 1): the top 53 bits of one word scaled by 2^-53.
  double NextDouble() { return (engine_() >> 11) * 0x1.0p-53; }

  bool NextBool() { return (engine_() & 1u) != 0; }

  // Bernoulli draw with probability p of true.
  bool NextBernoulli(double p) { return NextDouble() < p; }

  // 64 independent uniform bits (one parallel-simulation word).
  uint64_t NextWord() { return engine_(); }

  // Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>& v) {
    for (size_t i = v.size(); i > 1; --i) {
      std::swap(v[i - 1], v[NextUint(i)]);
    }
  }

  // Draw an index according to non-negative weights (at least one positive).
  size_t NextWeighted(std::span<const double> weights) {
    double total = 0.0;
    for (double w : weights) total += w;
    double r = NextDouble() * total;
    for (size_t i = 0; i < weights.size(); ++i) {
      r -= weights[i];
      if (r <= 0.0) return i;
    }
    return weights.size() - 1;
  }

  // Derive an independent child stream; advances this stream.
  Rng Fork() { return Rng(engine_() ^ 0x9e3779b97f4a7c15ULL); }

 private:
  std::mt19937_64 engine_;
};

}  // namespace splitlock
