// Deterministic random number generation for all randomized stages.
//
// Every randomized algorithm in the library takes an explicit seed (or an
// Rng&) so experiments are reproducible run-to-run and machine-to-machine.
#pragma once

#include <cstdint>
#include <random>
#include <span>
#include <vector>

namespace splitlock {

// Thin wrapper over std::mt19937_64 with the handful of draw shapes the
// library needs. Copyable so callers can fork independent streams.
class Rng {
 public:
  explicit Rng(uint64_t seed) : engine_(seed) {}

  // Uniform integer in [0, bound). bound must be > 0.
  uint64_t NextUint(uint64_t bound) {
    return std::uniform_int_distribution<uint64_t>(0, bound - 1)(engine_);
  }

  // Uniform integer in [lo, hi] inclusive.
  int64_t NextInt(int64_t lo, int64_t hi) {
    return std::uniform_int_distribution<int64_t>(lo, hi)(engine_);
  }

  // Uniform double in [0, 1).
  double NextDouble() {
    return std::uniform_real_distribution<double>(0.0, 1.0)(engine_);
  }

  bool NextBool() { return (engine_() & 1u) != 0; }

  // Bernoulli draw with probability p of true.
  bool NextBernoulli(double p) { return NextDouble() < p; }

  // 64 independent uniform bits (one parallel-simulation word).
  uint64_t NextWord() { return engine_(); }

  // Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>& v) {
    for (size_t i = v.size(); i > 1; --i) {
      std::swap(v[i - 1], v[NextUint(i)]);
    }
  }

  // Draw an index according to non-negative weights (at least one positive).
  size_t NextWeighted(std::span<const double> weights) {
    double total = 0.0;
    for (double w : weights) total += w;
    double r = NextDouble() * total;
    for (size_t i = 0; i < weights.size(); ++i) {
      r -= weights[i];
      if (r <= 0.0) return i;
    }
    return weights.size() - 1;
  }

  // Derive an independent child stream; advances this stream.
  Rng Fork() { return Rng(engine_() ^ 0x9e3779b97f4a7c15ULL); }

 private:
  std::mt19937_64 engine_;
};

}  // namespace splitlock
