// Monotonic wall-clock stopwatch, started at construction. One shared
// helper for the timing idiom the flow, attack and bench layers all need;
// the unit is explicit in the accessor name to keep ms/s mix-ups out of
// call sites.
#pragma once

#include <chrono>

namespace splitlock {

class Stopwatch {
 public:
  Stopwatch() : start_(std::chrono::steady_clock::now()) {}

  double Ms() const {
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - start_)
        .count();
  }

  double Seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

}  // namespace splitlock
