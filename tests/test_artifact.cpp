// The artifact tier: binary codec round-trips (byte-identical re-encode),
// envelope corruption tolerance (truncated / bit-flipped / wrong-version /
// mis-keyed blobs read as misses, never crash or serve stale state), and
// the campaign warm-start path (a second run replays the stored artifacts,
// skips place/route/lift, and reproduces the cold run bit-exactly).
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>

#include "circuits/random_circuit.hpp"
#include "core/campaign.hpp"
#include "core/flow.hpp"
#include "lock/atpg_lock.hpp"
#include "lock/key.hpp"
#include "phys/placer.hpp"
#include "phys/router.hpp"
#include "store/artifact_io.hpp"
#include "store/result_store.hpp"

namespace splitlock::store {
namespace {

namespace fs = std::filesystem;

Netlist TestCircuit(uint64_t seed, size_t gates = 400) {
  circuits::CircuitSpec spec;
  spec.num_inputs = 20;
  spec.num_outputs = 10;
  spec.num_gates = gates;
  spec.seed = seed;
  return circuits::GenerateCircuit(spec);
}

// A locked+realized netlist: TIE cells, key-gates, flagged key-nets — the
// richest gate/net shapes the codec must carry.
Netlist LockedRealized(uint64_t seed) {
  const Netlist original = TestCircuit(seed);
  lock::AtpgLockOptions opts;
  opts.key_bits = 16;
  opts.seed = seed;
  opts.verify_lec = false;
  opts.require_area_gain = false;
  const lock::AtpgLockResult r = lock::LockWithAtpg(original, opts);
  return lock::RealizeKeyAsTies(r.locked, r.key);
}

// Small-but-complete flow options: fast enough for a unit test, still
// exercising lock -> place -> route -> lift -> analyze -> split.
core::FlowOptions SmallFlowOptions() {
  core::FlowOptions options;
  options.key_bits = 16;
  options.seed = 7;
  options.placer_moves_per_cell = 10;
  options.power_patterns = 256;
  options.lock.verify_lec = false;
  options.lock.require_area_gain = false;
  return options;
}

StoreKey SampleKey() {
  StoreKey key;
  key.suite = "test/toy";
  key.scale = CanonicalDouble(1.0);
  key.flow_hash = 0x0123456789abcdefULL;
  return key;
}

// Fresh per-test store directory under the system temp dir.
class ArtifactStoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = (fs::temp_directory_path() /
            ("splitlock_artifact_test_" +
             std::string(::testing::UnitTest::GetInstance()
                             ->current_test_info()
                             ->name())))
               .string();
    fs::remove_all(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  std::string ArtifactPath(const StoreKey& key) const {
    return dir_ + "/" + key.ArtifactFilename();
  }
  std::string ReadFile(const std::string& path) const {
    std::ifstream in(path, std::ios::binary);
    return std::string((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
  }
  void WriteFile(const std::string& path, const std::string& bytes) const {
    std::ofstream(path, std::ios::binary | std::ios::trunc) << bytes;
  }

  std::string dir_;
};

// --- Codec round-trips ------------------------------------------------------

TEST(ArtifactCodec, NetlistRoundTripIsByteIdentical) {
  const Netlist nl = LockedRealized(1);
  ArtifactWriter w;
  EncodeNetlist(w, nl);
  const std::string bytes = w.bytes();

  ArtifactReader r(bytes);
  std::optional<Netlist> back = DecodeNetlist(r);
  ASSERT_TRUE(back.has_value());
  EXPECT_TRUE(r.AtEnd());
  EXPECT_EQ(back->name(), nl.name());
  EXPECT_EQ(back->NumGates(), nl.NumGates());
  EXPECT_EQ(back->NumNets(), nl.NumNets());
  EXPECT_EQ(back->NumLogicGates(), nl.NumLogicGates());
  EXPECT_TRUE(back->Validate().empty());

  // serialize(deserialize(x)) must be byte-identical: the decoder walked
  // every field the encoder wrote and nothing else.
  ArtifactWriter w2;
  EncodeNetlist(w2, *back);
  EXPECT_EQ(w2.bytes(), bytes);
}

TEST(ArtifactCodec, LayoutRoundTripIsByteIdentical) {
  const Netlist nl = LockedRealized(2);
  phys::PlacerOptions popts;
  popts.seed = 22;
  popts.moves_per_cell = 10;
  phys::Layout layout = phys::PlaceDesign(nl, phys::Tech::Nangate45Like(), popts);
  phys::RouterOptions ropts;
  ropts.seed = 22;
  phys::RouteDesign(layout, ropts);

  ArtifactWriter w;
  EncodeLayout(w, layout);
  const std::string bytes = w.bytes();

  ArtifactReader r(bytes);
  std::optional<phys::Layout> back = DecodeLayout(r);
  ASSERT_TRUE(back.has_value());
  EXPECT_TRUE(r.AtEnd());
  EXPECT_EQ(back->netlist, nullptr);  // pointer is never serialized
  back->netlist = &nl;
  EXPECT_EQ(phys::LayoutFingerprint(*back), phys::LayoutFingerprint(layout));

  ArtifactWriter w2;
  EncodeLayout(w2, *back);
  EXPECT_EQ(w2.bytes(), bytes);
}

TEST(ArtifactCodec, TruncatedAndGarbageBytesDecodeToNullopt) {
  const Netlist nl = LockedRealized(3);
  ArtifactWriter w;
  EncodeNetlist(w, nl);
  const std::string bytes = w.bytes();
  // Every proper prefix must fail cleanly (no crash, no partial netlist).
  for (const size_t cut : {size_t{0}, size_t{5}, bytes.size() / 2,
                           bytes.size() - 1}) {
    ArtifactReader r(std::string_view(bytes).substr(0, cut));
    EXPECT_FALSE(DecodeNetlist(r).has_value()) << "prefix " << cut;
  }
  // A corrupt element count must not drive a giant reserve/loop.
  const std::string garbage =
      std::string("\x04\x00\x00\x00\x00\x00\x00\x00"
                  "name",
                  12) +
      std::string(8, '\xff');  // gate count = 2^64-1
  ArtifactReader r(garbage);
  EXPECT_FALSE(DecodeNetlist(r).has_value());
}

TEST(ArtifactCodec, FlowArtifactReplayMatchesComputedFlow) {
  const Netlist original = TestCircuit(4);
  const core::FlowOptions options = SmallFlowOptions();
  const core::FlowResult cold = core::RunSecureFlow(original, options);

  const std::string payload =
      EncodeFlowArtifact(cold.lock, *cold.physical.netlist,
                         *cold.physical.layout, cold.physical.lift);
  std::optional<FlowArtifact> art = DecodeFlowArtifact(payload);
  ASSERT_TRUE(art.has_value());
  ASSERT_NE(art->netlist, nullptr);
  ASSERT_NE(art->layout, nullptr);
  EXPECT_EQ(art->layout->netlist, art->netlist.get());

  // Round trip through the decoded artifact is byte-identical.
  EXPECT_EQ(EncodeFlowArtifact(art->lock, *art->netlist, *art->layout,
                               art->lift),
            payload);

  const core::FlowResult warm = core::ReplayFlowFromArtifacts(
      std::move(art->lock), std::move(art->netlist), std::move(art->layout),
      art->lift, options);

  // The replay skips place/route/lift (the warm-start contract)...
  EXPECT_EQ(warm.times.lock_s, 0.0);
  EXPECT_EQ(warm.times.place_s, 0.0);
  EXPECT_EQ(warm.times.route_s, 0.0);
  EXPECT_EQ(warm.times.lift_s, 0.0);

  // ...and reproduces the computed flow bit-exactly.
  EXPECT_EQ(warm.lock.key, cold.lock.key);
  EXPECT_EQ(phys::LayoutFingerprint(*warm.physical.layout),
            phys::LayoutFingerprint(*cold.physical.layout));
  EXPECT_EQ(warm.physical.cost.die_area_um2, cold.physical.cost.die_area_um2);
  EXPECT_EQ(warm.physical.cost.power_uw, cold.physical.cost.power_uw);
  EXPECT_EQ(warm.physical.cost.critical_path_ps,
            cold.physical.cost.critical_path_ps);
  ASSERT_EQ(warm.physical.timing.net_arrival_ps.size(),
            cold.physical.timing.net_arrival_ps.size());
  for (size_t n = 0; n < warm.physical.timing.net_arrival_ps.size(); ++n) {
    EXPECT_EQ(warm.physical.timing.net_arrival_ps[n],
              cold.physical.timing.net_arrival_ps[n])
        << "net " << n;
  }
  EXPECT_EQ(warm.feol.sink_stubs.size(), cold.feol.sink_stubs.size());
  EXPECT_EQ(warm.physical.lift.key_nets_lifted,
            cold.physical.lift.key_nets_lifted);
}

// --- Store envelope ---------------------------------------------------------

TEST_F(ArtifactStoreTest, InsertThenLookupRoundTrips) {
  ResultStore store(dir_);
  const StoreKey key = SampleKey();
  // Payloads are opaque to the envelope; embedded NULs must survive.
  const std::string payload("binary\0blob\xff payload", 20);

  EXPECT_FALSE(store.LookupArtifact(key).has_value());  // cold
  EXPECT_TRUE(store.InsertArtifact(key, payload));
  const auto hit = store.LookupArtifact(key);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(*hit, payload);

  const ArtifactStats stats = store.ArtifactTierStats();
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.inserts, 1u);
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.corrupt, 0u);
  // I/O counters measure whole envelope files, so both exceed the payload.
  EXPECT_GT(stats.bytes_read, payload.size());
  EXPECT_GT(stats.bytes_written, payload.size());

  // A second store over the same directory sees the blob (persistence).
  ResultStore reopened(dir_);
  EXPECT_TRUE(reopened.LookupArtifact(key).has_value());

  // The flow hash partitions the tier. (Attack identities don't exist at
  // the flow-level key at all since the two-level split — every portfolio
  // over the same (suite, scale, flow) shares this blob structurally.)
  StoreKey other_flow = key;
  other_flow.flow_hash ^= 1;
  EXPECT_FALSE(store.LookupArtifact(other_flow).has_value());
}

TEST_F(ArtifactStoreTest, TruncatedBlobReadsAsCorruptMiss) {
  ResultStore store(dir_);
  const StoreKey key = SampleKey();
  EXPECT_TRUE(store.InsertArtifact(key, "the artifact payload"));
  const std::string bytes = ReadFile(ArtifactPath(key));
  ASSERT_GT(bytes.size(), 16u);
  WriteFile(ArtifactPath(key), bytes.substr(0, 16));  // crashed writer shape

  EXPECT_FALSE(store.LookupArtifact(key).has_value());
  EXPECT_EQ(store.ArtifactTierStats().corrupt, 1u);
  // The store recovers by overwriting.
  EXPECT_TRUE(store.InsertArtifact(key, "the artifact payload"));
  EXPECT_TRUE(store.LookupArtifact(key).has_value());
}

TEST_F(ArtifactStoreTest, BitFlippedPayloadFailsChecksum) {
  ResultStore store(dir_);
  const StoreKey key = SampleKey();
  EXPECT_TRUE(store.InsertArtifact(key, "checksummed content"));
  std::string bytes = ReadFile(ArtifactPath(key));
  bytes.back() ^= 0x01;  // last byte is inside the payload
  WriteFile(ArtifactPath(key), bytes);

  EXPECT_FALSE(store.LookupArtifact(key).has_value());
  EXPECT_EQ(store.ArtifactTierStats().corrupt, 1u);
}

TEST_F(ArtifactStoreTest, SchemaVersionMismatchReadsAsMiss) {
  ResultStore store(dir_);
  const StoreKey key = SampleKey();
  EXPECT_TRUE(store.InsertArtifact(key, "versioned content"));
  std::string bytes = ReadFile(ArtifactPath(key));
  // Envelope layout: magic u32 at [0,4), schema version u32 at [4,8).
  ASSERT_GT(bytes.size(), 8u);
  bytes[4] = static_cast<char>(bytes[4] ^ 0x7f);
  WriteFile(ArtifactPath(key), bytes);

  EXPECT_FALSE(store.LookupArtifact(key).has_value());
  EXPECT_EQ(store.ArtifactTierStats().corrupt, 1u);
}

TEST_F(ArtifactStoreTest, KeyEchoMismatchReadsAsCorrupt) {
  ResultStore store(dir_);
  const StoreKey key = SampleKey();
  EXPECT_TRUE(store.InsertArtifact(key, "keyed content"));
  // Blob copied/renamed under a different key: must not be served.
  StoreKey other = key;
  other.flow_hash ^= 0xff;
  fs::copy_file(ArtifactPath(key), ArtifactPath(other));

  EXPECT_FALSE(store.LookupArtifact(other).has_value());
  EXPECT_EQ(store.ArtifactTierStats().corrupt, 1u);
  // The original is untouched.
  EXPECT_TRUE(store.LookupArtifact(key).has_value());
}

TEST_F(ArtifactStoreTest, NoteArtifactCorruptReclassifiesHit) {
  ResultStore store(dir_);
  const StoreKey key = SampleKey();
  EXPECT_TRUE(store.InsertArtifact(key, "envelope ok, payload undecodable"));
  ASSERT_TRUE(store.LookupArtifact(key).has_value());
  EXPECT_EQ(store.ArtifactTierStats().hits, 1u);

  store.NoteArtifactCorrupt();
  const ArtifactStats stats = store.ArtifactTierStats();
  EXPECT_EQ(stats.hits, 0u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.corrupt, 1u);
}

// --- Artifact GC ------------------------------------------------------------

TEST_F(ArtifactStoreTest, GcRespectsBudgetAndNeverTouchesRecords) {
  ResultStore store(dir_);
  StoreKey key = SampleKey();
  // Four blobs of ~equal size plus a record file that must survive.
  for (uint64_t i = 0; i < 4; ++i) {
    key.flow_hash = i;
    EXPECT_TRUE(store.InsertArtifact(key, std::string(1000, 'a' + static_cast<char>(i))));
  }
  FlowRecord record;
  record.name = "toy";
  record.ok = true;
  EXPECT_TRUE(store.InsertFlow(key, record));

  uint64_t blob_bytes = 0;
  for (const auto& entry : fs::directory_iterator(dir_)) {
    if (entry.path().extension() == ".art") {
      blob_bytes += static_cast<uint64_t>(entry.file_size());
    }
  }
  const uint64_t per_blob = blob_bytes / 4;

  // Budget for two blobs: exactly two must go.
  const GcResult gc = store.CollectArtifactGarbage(2 * per_blob);
  EXPECT_EQ(gc.scanned_blobs, 4u);
  EXPECT_EQ(gc.scanned_bytes, blob_bytes);
  EXPECT_EQ(gc.evicted_blobs, 2u);
  EXPECT_EQ(gc.evicted_bytes, 2 * per_blob);
  EXPECT_EQ(gc.errors, 0u);

  size_t art = 0, json = 0;
  for (const auto& entry : fs::directory_iterator(dir_)) {
    if (entry.path().extension() == ".art") ++art;
    if (entry.path().extension() == ".json") ++json;
  }
  EXPECT_EQ(art, 2u);
  EXPECT_EQ(json, 1u);  // records are never GC candidates
  EXPECT_TRUE(store.LookupFlow(key).has_value());

  const ArtifactStats stats = store.ArtifactTierStats();
  EXPECT_EQ(stats.evictions, 2u);
  EXPECT_EQ(stats.evicted_bytes, 2 * per_blob);

  // Already under budget: a second pass is a no-op.
  const GcResult again = store.CollectArtifactGarbage(2 * per_blob);
  EXPECT_EQ(again.evicted_blobs, 0u);
  EXPECT_EQ(again.scanned_blobs, 2u);
}

TEST_F(ArtifactStoreTest, GcEvictionOrderIsDeterministicForEqualMtimes) {
  ResultStore store(dir_);
  StoreKey key = SampleKey();
  // Blobs with distinct sizes; force identical mtimes by copying one
  // file's timestamp onto the others, simulating a same-second bulk fill.
  std::vector<std::string> paths;
  for (uint64_t i = 0; i < 3; ++i) {
    key.flow_hash = i;
    EXPECT_TRUE(store.InsertArtifact(
        key, std::string(100 * (i + 1), static_cast<char>('a' + i))));
    paths.push_back(ArtifactPath(key));
  }
  const auto stamp = fs::last_write_time(paths[0]);
  for (const std::string& p : paths) fs::last_write_time(p, stamp);

  // Budget below total: equal mtimes fall through to size (largest first),
  // so the i=2 blob (largest) must be the one evicted.
  uint64_t total = 0;
  for (const std::string& p : paths) {
    total += static_cast<uint64_t>(fs::file_size(p));
  }
  const uint64_t largest = static_cast<uint64_t>(fs::file_size(paths[2]));
  const GcResult gc = store.CollectArtifactGarbage(total - 1);
  EXPECT_EQ(gc.evicted_blobs, 1u);
  EXPECT_EQ(gc.evicted_bytes, largest);
  EXPECT_FALSE(fs::exists(paths[2]));
  EXPECT_TRUE(fs::exists(paths[0]));
  EXPECT_TRUE(fs::exists(paths[1]));
}

TEST_F(ArtifactStoreTest, AutoGcOnInsertKeepsTierUnderBudget) {
  ResultStore store(dir_);
  StoreKey key = SampleKey();
  key.flow_hash = 0;
  EXPECT_TRUE(store.InsertArtifact(key, std::string(1000, 'x')));
  const uint64_t per_blob = [&] {
    uint64_t b = 0;
    for (const auto& entry : fs::directory_iterator(dir_)) {
      if (entry.path().extension() == ".art") {
        b = static_cast<uint64_t>(entry.file_size());
      }
    }
    return b;
  }();

  // Budget for one blob; each further insert must evict down to one.
  store.set_artifact_budget(per_blob);
  for (uint64_t i = 1; i < 4; ++i) {
    key.flow_hash = i;
    EXPECT_TRUE(store.InsertArtifact(key, std::string(1000, 'x')));
    size_t art = 0;
    for (const auto& entry : fs::directory_iterator(dir_)) {
      if (entry.path().extension() == ".art") ++art;
    }
    EXPECT_EQ(art, 1u) << "after insert " << i;
  }
  EXPECT_GE(store.ArtifactTierStats().evictions, 3u);
}

// --- Campaign warm start ----------------------------------------------------

core::CampaignJob ToyJob() {
  core::CampaignJob job;
  job.name = "toy";
  job.make_netlist = [] { return TestCircuit(9); };
  job.flow = SmallFlowOptions();
  job.cache_id = "test/toy";
  job.cache_scale = CanonicalDouble(1.0);
  // Consumers that need the in-memory FlowResult always force-compute;
  // the artifact tier is what makes their warm runs cheap anyway.
  job.force_compute = true;
  return job;
}

core::CampaignOptions ToyCampaignOptions(ResultStore* store) {
  core::CampaignOptions options;
  options.score_patterns = 256;
  options.store = store;
  return options;
}

TEST_F(ArtifactStoreTest, WarmCampaignRunSkipsPhysicalStagesBitExactly) {
  ResultStore store(dir_);
  const core::CampaignRunner runner(ToyCampaignOptions(&store));
  const core::CampaignJob job = ToyJob();

  const core::CampaignOutcome cold = runner.RunOne(job);
  ASSERT_TRUE(cold.ok) << cold.error;
  EXPECT_FALSE(cold.from_store);
  EXPECT_GT(cold.flow.times.lock_s + cold.flow.times.place_s +
                cold.flow.times.route_s,
            0.0);
  EXPECT_GT(cold.flow.times.artifact_save_s, 0.0);
  EXPECT_EQ(store.ArtifactTierStats().inserts, 1u);

  const core::CampaignOutcome warm = runner.RunOne(job);
  ASSERT_TRUE(warm.ok) << warm.error;
  EXPECT_FALSE(warm.from_store);  // artifact hits are computed-path results
  EXPECT_EQ(store.ArtifactTierStats().hits, 1u);

  // The warm run never ran lock/place/route/lift...
  EXPECT_EQ(warm.flow.times.lock_s, 0.0);
  EXPECT_EQ(warm.flow.times.place_s, 0.0);
  EXPECT_EQ(warm.flow.times.route_s, 0.0);
  EXPECT_EQ(warm.flow.times.lift_s, 0.0);
  EXPECT_GT(warm.flow.times.artifact_load_s, 0.0);

  // ...yet its canonical record is byte-identical to the cold run's.
  EXPECT_EQ(warm.record.ToJson(false), cold.record.ToJson(false));

  // Same attack trajectory: every engine proposes the identical assignment.
  ASSERT_EQ(warm.attacks.size(), cold.attacks.size());
  for (size_t i = 0; i < warm.attacks.size(); ++i) {
    EXPECT_EQ(warm.attacks[i].ok, cold.attacks[i].ok);
    EXPECT_EQ(warm.attacks[i].assignment, cold.attacks[i].assignment)
        << "attack " << i;
    EXPECT_EQ(warm.attacks[i].key_found, cold.attacks[i].key_found);
  }
  EXPECT_EQ(phys::LayoutFingerprint(*warm.flow.physical.layout),
            phys::LayoutFingerprint(*cold.flow.physical.layout));
}

TEST_F(ArtifactStoreTest, CorruptArtifactFallsBackToRecompute) {
  ResultStore store(dir_);
  const core::CampaignRunner runner(ToyCampaignOptions(&store));
  const core::CampaignJob job = ToyJob();
  const StoreKey key = runner.KeyFor(job);

  const core::CampaignOutcome cold = runner.RunOne(job);
  ASSERT_TRUE(cold.ok) << cold.error;

  // Truncate the blob: the envelope no longer parses.
  const std::string bytes = ReadFile(ArtifactPath(key));
  ASSERT_GT(bytes.size(), 32u);
  WriteFile(ArtifactPath(key), bytes.substr(0, 32));

  const core::CampaignOutcome recomputed = runner.RunOne(job);
  ASSERT_TRUE(recomputed.ok) << recomputed.error;
  EXPECT_GT(recomputed.flow.times.place_s, 0.0);  // really recomputed
  EXPECT_EQ(recomputed.record.ToJson(false), cold.record.ToJson(false));
  EXPECT_GE(store.ArtifactTierStats().corrupt, 1u);

  // The recompute re-published a good blob: the next run is warm again.
  const core::CampaignOutcome warm = runner.RunOne(job);
  ASSERT_TRUE(warm.ok) << warm.error;
  EXPECT_EQ(warm.flow.times.place_s, 0.0);
  EXPECT_GT(warm.flow.times.artifact_load_s, 0.0);
}

TEST_F(ArtifactStoreTest, UndecodablePayloadRecomputes) {
  ResultStore store(dir_);
  const core::CampaignRunner runner(ToyCampaignOptions(&store));
  const core::CampaignJob job = ToyJob();
  const StoreKey key = runner.KeyFor(job);

  // A valid envelope around garbage: the store's checksum vouches for it,
  // so only DecodeFlowArtifact can reject it — via NoteArtifactCorrupt.
  EXPECT_TRUE(store.InsertArtifact(key, "not a flow artifact"));

  const core::CampaignOutcome outcome = runner.RunOne(job);
  ASSERT_TRUE(outcome.ok) << outcome.error;
  EXPECT_GT(outcome.flow.times.place_s, 0.0);  // fell back to computing
  EXPECT_GE(store.ArtifactTierStats().corrupt, 1u);
  EXPECT_EQ(store.ArtifactTierStats().hits, 0u);  // reclassified

  // The garbage was overwritten with the real artifact.
  const core::CampaignOutcome warm = runner.RunOne(job);
  ASSERT_TRUE(warm.ok) << warm.error;
  EXPECT_EQ(warm.flow.times.place_s, 0.0);
  EXPECT_EQ(warm.record.ToJson(false), outcome.record.ToJson(false));
}

TEST_F(ArtifactStoreTest, EvictedArtifactDegradesToRecomputeThenRewarms) {
  ResultStore store(dir_);
  const core::CampaignRunner runner(ToyCampaignOptions(&store));
  const core::CampaignJob job = ToyJob();
  const StoreKey key = runner.KeyFor(job);

  const core::CampaignOutcome cold = runner.RunOne(job);
  ASSERT_TRUE(cold.ok) << cold.error;
  ASSERT_TRUE(fs::exists(ArtifactPath(key)));

  // GC under a zero budget: the blob is evicted, records stay.
  const GcResult gc = store.CollectArtifactGarbage(0);
  EXPECT_EQ(gc.evicted_blobs, 1u);
  EXPECT_FALSE(fs::exists(ArtifactPath(key)));
  EXPECT_TRUE(store.LookupFlow(key).has_value());
  EXPECT_EQ(store.ArtifactTierStats().evictions, 1u);

  // An eviction is an ordinary miss: the flow recomputes, byte-identically.
  const core::CampaignOutcome recomputed = runner.RunOne(job);
  ASSERT_TRUE(recomputed.ok) << recomputed.error;
  EXPECT_GT(recomputed.flow.times.place_s, 0.0);
  EXPECT_EQ(recomputed.record.ToJson(false), cold.record.ToJson(false));

  // ...and re-publishes the blob, so the tier re-warms itself.
  ASSERT_TRUE(fs::exists(ArtifactPath(key)));
  const core::CampaignOutcome warm = runner.RunOne(job);
  ASSERT_TRUE(warm.ok) << warm.error;
  EXPECT_EQ(warm.flow.times.place_s, 0.0);
  EXPECT_GT(warm.flow.times.artifact_load_s, 0.0);
}

}  // namespace
}  // namespace splitlock::store
