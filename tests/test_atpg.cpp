#include <gtest/gtest.h>

#include "atpg/fault.hpp"
#include "atpg/fault_sim.hpp"
#include "atpg/podem.hpp"
#include "circuits/c17.hpp"
#include "circuits/random_circuit.hpp"

namespace splitlock::atpg {
namespace {

TEST(Faults, EnumerationCoversLiveNets) {
  const Netlist nl = circuits::MakeC17();
  const std::vector<Fault> faults = EnumerateStemFaults(nl);
  // c17: 5 PI nets + 6 gate nets, all consumed -> 22 stem faults.
  EXPECT_EQ(faults.size(), 22u);
}

TEST(Faults, CollapseShrinksList) {
  const Netlist nl = circuits::MakeC17();
  const std::vector<Fault> all = EnumerateStemFaults(nl);
  const std::vector<Fault> collapsed = CollapseFaults(nl, all);
  EXPECT_LT(collapsed.size(), all.size());
  EXPECT_GE(collapsed.size(), 8u);  // sanity lower bound
}

TEST(FaultSim, DetectsStuckOutputDirectly) {
  // y = a AND b; y/sa0 is detected by (1,1); y/sa1 by anything else.
  Netlist nl("f");
  const NetId a = nl.AddInput("a");
  const NetId b = nl.AddInput("b");
  const NetId y = nl.AddGate(GateOp::kAnd, {a, b});
  nl.AddOutput(y, "y");
  FaultSimulator sim(nl);
  // Lanes: 00, 01, 10, 11 for (a,b).
  const std::vector<uint64_t> words = {0b1100, 0b1010};
  sim.LoadPatterns(words);
  EXPECT_EQ(sim.DetectMask(Fault{y, false}) & 0xF, 0b1000u);
  EXPECT_EQ(sim.DetectMask(Fault{y, true}) & 0xF, 0b0111u);
}

TEST(FaultSim, PropagationThroughMaskingGate) {
  // y = (a AND b) OR c: a/sa0 detected only when a=1, b=1 and c=0.
  Netlist nl("f");
  const NetId a = nl.AddInput("a");
  const NetId b = nl.AddInput("b");
  const NetId c = nl.AddInput("c");
  const NetId x = nl.AddGate(GateOp::kAnd, {a, b});
  const NetId y = nl.AddGate(GateOp::kOr, {x, c});
  nl.AddOutput(y, "y");
  FaultSimulator sim(nl);
  // Lane i encodes the 3-bit pattern i = (c b a).
  std::vector<uint64_t> words(3, 0);
  for (int lane = 0; lane < 8; ++lane) {
    if (lane & 1) words[0] |= 1ULL << lane;  // a
    if (lane & 2) words[1] |= 1ULL << lane;  // b
    if (lane & 4) words[2] |= 1ULL << lane;  // c
  }
  sim.LoadPatterns(words);
  // a=1,b=1,c=0 is lane 3 only.
  EXPECT_EQ(sim.DetectMask(Fault{a, false}) & 0xFF, 1u << 3);
}

TEST(FaultSim, RandomPatternCoverageOnC17IsHigh) {
  const Netlist nl = circuits::MakeC17();
  const std::vector<Fault> faults =
      CollapseFaults(nl, EnumerateStemFaults(nl));
  const CoverageResult cov = FaultCoverage(nl, faults, 1024, 3);
  // c17 is fully testable and tiny: random patterns catch everything.
  EXPECT_EQ(cov.detected, cov.total_faults);
}

TEST(Podem, FindsTestForC17Faults) {
  const Netlist nl = circuits::MakeC17();
  FaultSimulator fsim(nl);
  for (const Fault& f : CollapseFaults(nl, EnumerateStemFaults(nl))) {
    bool aborted = false;
    const auto test = GenerateTest(nl, f, {}, &aborted);
    ASSERT_TRUE(test.has_value()) << FaultName(nl, f);
    EXPECT_FALSE(aborted);
    // Validate with the fault simulator: fill don't-cares with 0.
    std::vector<uint64_t> words;
    for (uint8_t v : test->pi_values) {
      words.push_back(v == kV1 ? ~0ULL : 0);
    }
    fsim.LoadPatterns(words);
    EXPECT_NE(fsim.DetectMask(f) & 1, 0u) << FaultName(nl, f);
  }
}

TEST(Podem, DetectsRedundantFault) {
  // y = a OR (a AND b): the AND is redundant; x/sa0 is untestable.
  Netlist nl("red");
  const NetId a = nl.AddInput("a");
  const NetId b = nl.AddInput("b");
  const NetId x = nl.AddGate(GateOp::kAnd, {a, b});
  const NetId y = nl.AddGate(GateOp::kOr, {a, x});
  nl.AddOutput(y, "y");
  bool aborted = false;
  const auto test = GenerateTest(nl, Fault{x, false}, {}, &aborted);
  EXPECT_FALSE(test.has_value());
  EXPECT_FALSE(aborted);
}

TEST(Podem, DontCaresAreMarked) {
  // Wide OR: testing input0/sa0 needs input0=1 and the OTHER or-inputs 0,
  // but unrelated inputs stay X.
  Netlist nl("dc");
  std::vector<NetId> ins;
  for (int i = 0; i < 6; ++i) {
    ins.push_back(nl.AddInput("i" + std::to_string(i)));
  }
  const NetId o1 = nl.AddGate(GateOp::kOr, {ins[0], ins[1]});
  nl.AddOutput(o1, "y1");
  nl.AddOutput(ins[5], "y2");  // keeps i5 alive but irrelevant
  const auto test = GenerateTest(nl, Fault{ins[0], false});
  ASSERT_TRUE(test.has_value());
  EXPECT_EQ(test->pi_values[0], kV1);
  EXPECT_EQ(test->pi_values[1], kV0);
  // Inputs 2..5 are unconstrained.
  EXPECT_EQ(test->pi_values[2], kVX);
  EXPECT_EQ(test->pi_values[4], kVX);
}

// Property sweep: on random circuits, every PODEM-generated test is
// validated by fault simulation; "untestable" verdicts are sanity-checked
// with random patterns.
class PodemProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(PodemProperty, TestsValidatedByFaultSim) {
  circuits::CircuitSpec spec;
  spec.num_inputs = 12;
  spec.num_outputs = 6;
  spec.num_gates = 120;
  spec.seed = GetParam();
  const Netlist nl = circuits::GenerateCircuit(spec);
  const std::vector<Fault> faults =
      CollapseFaults(nl, EnumerateStemFaults(nl));
  FaultSimulator fsim(nl);
  Rng rng(GetParam() ^ 0x5555);

  size_t tested = 0;
  for (size_t i = 0; i < faults.size(); i += 7) {  // sample every 7th fault
    const Fault& f = faults[i];
    bool aborted = false;
    const auto test = GenerateTest(nl, f, {}, &aborted);
    if (aborted) continue;
    if (test.has_value()) {
      std::vector<uint64_t> words;
      for (uint8_t v : test->pi_values) {
        // Fill don't-cares randomly in every lane; detection must hold in
        // lane 0 regardless (PODEM guarantees the care bits suffice).
        words.push_back(v == kV1 ? ~0ULL
                                 : (v == kV0 ? 0 : rng.NextWord()));
      }
      fsim.LoadPatterns(words);
      EXPECT_NE(fsim.DetectMask(f), 0u) << FaultName(nl, f);
      ++tested;
    } else {
      // Claimed untestable: random patterns must not detect it either.
      Rng check_rng(GetParam());
      for (int w = 0; w < 8; ++w) {
        fsim.LoadRandomPatterns(check_rng);
        EXPECT_EQ(fsim.DetectMask(f), 0u) << FaultName(nl, f);
      }
    }
  }
  EXPECT_GT(tested, 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PodemProperty,
                         ::testing::Range<uint64_t>(1, 9));

}  // namespace
}  // namespace splitlock::atpg
