#include <gtest/gtest.h>

#include <memory>

#include "attack/ideal.hpp"
#include "attack/metrics.hpp"
#include "attack/proximity.hpp"
#include "circuits/random_circuit.hpp"
#include "core/flow.hpp"
#include "lock/atpg_lock.hpp"

namespace splitlock::attack {
namespace {

Netlist TestCircuit(uint64_t seed, size_t gates = 700) {
  circuits::CircuitSpec spec;
  spec.num_inputs = 24;
  spec.num_outputs = 12;
  spec.num_gates = gates;
  spec.seed = seed;
  spec.bias_cone_fraction = 0.15;
  return circuits::GenerateCircuit(spec);
}

core::FlowResult SecureFlow(uint64_t seed, bool randomize_ties = true,
                            bool lift = true, size_t key_bits = 32) {
  const Netlist original = TestCircuit(seed);
  core::FlowOptions opts;
  opts.key_bits = key_bits;
  opts.seed = seed;
  opts.split_layer = 4;
  opts.randomize_tie_placement = randomize_ties;
  opts.lift_key_nets = lift;
  opts.placer_moves_per_cell = 25;
  return core::RunSecureFlow(original, opts);
}

TEST(ProximityAttack, ProducesCompleteAssignment) {
  const core::FlowResult flow = SecureFlow(1);
  const ProximityResult r = RunProximityAttack(flow.feol);
  ASSERT_EQ(r.assignment.size(), flow.feol.sink_stubs.size());
  for (NetId n : r.assignment) EXPECT_NE(n, kNullId);
}

TEST(ProximityAttack, SecureFlowKeyCcrNearRandomGuessing) {
  const core::FlowResult flow = SecureFlow(2);
  const ProximityResult r = RunProximityAttack(flow.feol);
  const CcrReport ccr = ComputeCcr(flow.feol, r.assignment);
  ASSERT_GT(ccr.key_connections, 0u);
  // Physical CCR ~ 1/#TIE-cells: with 32 TIE cells, anything clearly below
  // 20% shows the exact assignment is not recoverable.
  EXPECT_LT(ccr.key_physical_ccr_percent, 20.0);
  // Logical CCR should hover around random guessing (50%).
  EXPECT_GT(ccr.key_logical_ccr_percent, 20.0);
  EXPECT_LT(ccr.key_logical_ccr_percent, 80.0);
}

TEST(ProximityAttack, NaiveTiePlacementLeaksKey) {
  // Fig. 2(a) strawman: TIE cells annealed next to their key-gates and
  // key-nets routed (and broken) like regular nets. At a high split layer
  // most key-nets do not even break; those that do sit right next to their
  // key-gates. The attack recovers far more than random guessing.
  const core::FlowResult naive = SecureFlow(3, /*randomize_ties=*/false,
                                            /*lift=*/false);
  const core::FlowResult secure = SecureFlow(3, true, true);
  ProximityOptions opts;
  const ProximityResult naive_r = RunProximityAttack(naive.feol, opts);
  const ProximityResult secure_r = RunProximityAttack(secure.feol, opts);

  // Count key bits readable by the naive adversary: unbroken key-nets are
  // read straight from the FEOL, broken ones via the attack.
  const std::vector<NetId> naive_keys =
      phys::KeyNetsOf(*naive.physical.netlist);
  size_t naive_exposed = 0;
  for (NetId kn : naive_keys) {
    if (!naive.feol.net_broken[kn]) ++naive_exposed;
  }
  const CcrReport naive_ccr = ComputeCcr(naive.feol, naive_r.assignment);
  const CcrReport secure_ccr = ComputeCcr(secure.feol, secure_r.assignment);
  const double naive_total_keys = static_cast<double>(naive_keys.size());
  const double naive_recovered =
      naive_exposed + naive_ccr.key_logical_ccr_percent / 100.0 *
                          naive_ccr.key_connections;
  // Naive flow: most of the key is exposed. Secure flow: ~half (random).
  EXPECT_GT(naive_recovered / naive_total_keys, 0.75);
  EXPECT_LT(secure_ccr.key_logical_ccr_percent, 80.0);
}

TEST(ProximityAttack, PostprocessingConnectsKeyGatesToTies) {
  const core::FlowResult flow = SecureFlow(4);
  ProximityOptions with_pp;
  with_pp.postprocess_key_gates = true;
  const ProximityResult r = RunProximityAttack(flow.feol, with_pp);
  const Netlist& nl = *flow.feol.netlist;
  for (size_t i = 0; i < flow.feol.sink_stubs.size(); ++i) {
    if (!IsKeyGateSink(flow.feol, flow.feol.sink_stubs[i])) continue;
    const GateId d = nl.DriverOf(r.assignment[i]);
    const GateOp op = nl.gate(d).op;
    EXPECT_TRUE(op == GateOp::kTieHi || op == GateOp::kTieLo)
        << "key-gate still connected to a regular driver";
  }
}

TEST(ProximityAttack, Footnote6WithoutPostprocessingLogicalCcrDrops) {
  const core::FlowResult flow = SecureFlow(5);
  ProximityOptions with_pp;
  with_pp.postprocess_key_gates = true;
  ProximityOptions without_pp;
  without_pp.postprocess_key_gates = false;
  const CcrReport with_ccr =
      ComputeCcr(flow.feol, RunProximityAttack(flow.feol, with_pp).assignment);
  const CcrReport without_ccr = ComputeCcr(
      flow.feol, RunProximityAttack(flow.feol, without_pp).assignment);
  EXPECT_LE(without_ccr.key_logical_ccr_percent,
            with_ccr.key_logical_ccr_percent);
}

TEST(ProximityAttack, RespectsAcyclicity) {
  const core::FlowResult flow = SecureFlow(6);
  ProximityOptions opts;
  opts.postprocess_key_gates = false;
  const ProximityResult r = RunProximityAttack(flow.feol, opts);
  const Netlist recovered =
      split::BuildRecoveredNetlist(flow.feol, r.assignment);
  // TopoOrder asserts on cycles; Validate plus a successful topo pass is
  // the acyclicity check. (Random fallback assignments may create cycles
  // in principle; the greedy phase must not. Verify overall sanity.)
  EXPECT_EQ(recovered.Validate(), "");
}

TEST(AttackMetrics, TruthAssignmentScoresPerfect) {
  const core::FlowResult flow = SecureFlow(7);
  split::Assignment truth(flow.feol.sink_stubs.size());
  for (size_t i = 0; i < truth.size(); ++i) {
    truth[i] = flow.feol.sink_stubs[i].true_net;
  }
  const AttackScore score = ScoreAttack(flow.feol, truth, 1024, 7);
  EXPECT_DOUBLE_EQ(score.ccr.regular_ccr_percent, 100.0);
  EXPECT_DOUBLE_EQ(score.ccr.key_physical_ccr_percent, 100.0);
  EXPECT_DOUBLE_EQ(score.ccr.key_logical_ccr_percent, 100.0);
  EXPECT_DOUBLE_EQ(score.pnr_percent, 100.0);
  EXPECT_DOUBLE_EQ(score.functional.hd_percent, 0.0);
  EXPECT_DOUBLE_EQ(score.functional.oer_percent, 0.0);
}

TEST(AttackMetrics, LogicalVsPhysicalCcrDiffer) {
  const core::FlowResult flow = SecureFlow(8);
  const Netlist& nl = *flow.feol.netlist;
  // Assign every key sink to a *different* TIE cell of the same value:
  // logical CCR 100, physical CCR < 100.
  split::Assignment a(flow.feol.sink_stubs.size());
  std::vector<NetId> hi_nets;
  std::vector<NetId> lo_nets;
  for (NetId n = 0; n < nl.NumNets(); ++n) {
    const GateId d = nl.DriverOf(n);
    if (d == kNullId || nl.net(n).sinks.empty()) continue;
    if (nl.gate(d).op == GateOp::kTieHi) hi_nets.push_back(n);
    if (nl.gate(d).op == GateOp::kTieLo) lo_nets.push_back(n);
  }
  ASSERT_GT(hi_nets.size(), 1u);
  ASSERT_GT(lo_nets.size(), 1u);
  for (size_t i = 0; i < a.size(); ++i) {
    const split::SinkStub& stub = flow.feol.sink_stubs[i];
    if (!IsKeyGateSink(flow.feol, stub)) {
      a[i] = stub.true_net;
      continue;
    }
    const GateOp true_op = nl.gate(nl.DriverOf(stub.true_net)).op;
    const std::vector<NetId>& pool =
        true_op == GateOp::kTieHi ? hi_nets : lo_nets;
    // Pick a same-value TIE that is not the true one.
    NetId pick = pool[0] == stub.true_net ? pool[1] : pool[0];
    a[i] = pick;
  }
  const CcrReport ccr = ComputeCcr(flow.feol, a);
  EXPECT_DOUBLE_EQ(ccr.key_logical_ccr_percent, 100.0);
  EXPECT_LT(ccr.key_physical_ccr_percent, 50.0);
}

TEST(IdealAttack, OerStaysAt100Percent) {
  const Netlist original = TestCircuit(9);
  lock::AtpgLockOptions lopts;
  lopts.key_bits = 32;
  lopts.seed = 9;
  lopts.verify_lec = false;
  const lock::AtpgLockResult lock = lock::LockWithAtpg(original, lopts);
  const IdealAttackResult r =
      RunIdealAttack(original, lock.locked, lock.key, 4096, 512, 9);
  EXPECT_EQ(r.guesses, 4096u);
  // With 32 key bits, random guesses are essentially never exactly right,
  // and (paper Sec. IV-A) every wrong guess must produce output errors.
  // Sampling-based OER can miss rare difference sets (the locked cones are
  // deliberately biased), hence the tolerance.
  EXPECT_GE(r.OerPercent(), 95.0);
}

TEST(IdealAttack, CorrectKeyGuessProducesNoError) {
  // Degenerate check: a 1-bit key is guessed right half the time; those
  // guesses cause no errors.
  Netlist original("t");
  const NetId a = original.AddInput("a");
  original.AddOutput(a, "y");
  Netlist locked("tl");
  const NetId la = locked.AddInput("a");
  const NetId k = locked.AddGate(GateOp::kKeyIn, {}, "key_0");
  locked.AddOutput(locked.AddGate(GateOp::kXor, {la, k}), "y");
  const std::vector<uint8_t> key = {0};
  const IdealAttackResult r = RunIdealAttack(original, locked, key, 2048, 16, 3);
  EXPECT_NEAR(r.OerPercent(), 50.0, 5.0);
  EXPECT_NEAR(static_cast<double>(r.exact_guesses), 1024.0, 100.0);
}

TEST(IdealAttack, AssignmentGrantsRegularNets) {
  const core::FlowResult flow = SecureFlow(10);
  const split::Assignment a = IdealAssignment(flow.feol, 10);
  const CcrReport ccr = ComputeCcr(flow.feol, a);
  EXPECT_DOUBLE_EQ(ccr.regular_ccr_percent, 100.0);
  EXPECT_GT(ccr.key_connections, 0u);
}

TEST(Pnr, TransitiveErrorPropagation) {
  const core::FlowResult flow = SecureFlow(11);
  // Truth everywhere scores 100; scrambling keys only must drag PNR well
  // below 100 because downstream cones become unrecovered.
  split::Assignment a(flow.feol.sink_stubs.size());
  for (size_t i = 0; i < a.size(); ++i) {
    a[i] = flow.feol.sink_stubs[i].true_net;
  }
  const double perfect = ComputePnrPercent(flow.feol, a);
  EXPECT_DOUBLE_EQ(perfect, 100.0);
  // Misassign all key sinks.
  const Netlist& nl = *flow.feol.netlist;
  NetId some_regular = kNullId;
  for (NetId n = 0; n < nl.NumNets(); ++n) {
    const GateId d = nl.DriverOf(n);
    if (d != kNullId && nl.gate(d).op == GateOp::kNand &&
        !nl.net(n).sinks.empty()) {
      some_regular = n;
      break;
    }
  }
  ASSERT_NE(some_regular, kNullId);
  for (size_t i = 0; i < a.size(); ++i) {
    if (IsKeyGateSink(flow.feol, flow.feol.sink_stubs[i])) {
      a[i] = some_regular;
    }
  }
  const double degraded = ComputePnrPercent(flow.feol, a);
  EXPECT_LT(degraded, perfect);
}

}  // namespace
}  // namespace splitlock::attack
