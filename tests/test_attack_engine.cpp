// Attack-engine API contract tests: config parsing/hashing, the registry,
// the five adapter engines against their legacy free functions, the
// campaign runner's attack portfolios, and — the load-bearing guarantee —
// the portfolio SAT attack's bit-identical results at 1, 2 and 8 threads.
#include <gtest/gtest.h>

#include "attack/engine.hpp"
#include "attack/proximity.hpp"
#include "attack/sat_attack.hpp"
#include "circuits/c17.hpp"
#include "circuits/random_circuit.hpp"
#include "core/campaign.hpp"
#include "core/flow.hpp"
#include "exec/thread_pool.hpp"
#include "lock/atpg_lock.hpp"
#include "lock/epic.hpp"

namespace splitlock::attack {
namespace {

// Restores the default pool width when a test body returns.
struct PoolWidthGuard {
  ~PoolWidthGuard() { exec::ThreadPool::SetDefaultThreadCount(0); }
};

Netlist TestCircuit(uint64_t seed, size_t gates = 400, size_t inputs = 16,
                    size_t outputs = 8) {
  circuits::CircuitSpec spec;
  spec.num_inputs = inputs;
  spec.num_outputs = outputs;
  spec.num_gates = gates;
  spec.seed = seed;
  spec.bias_cone_fraction = 0.15;
  return circuits::GenerateCircuit(spec);
}

lock::AtpgLockResult LockedCircuit(uint64_t seed, size_t key_bits = 24) {
  const Netlist original = TestCircuit(seed);
  lock::AtpgLockOptions opts;
  opts.key_bits = key_bits;
  opts.seed = seed;
  opts.verify_lec = false;
  return lock::LockWithAtpg(original, opts);
}

core::FlowResult SecureFlow(uint64_t seed) {
  const Netlist original = TestCircuit(seed, 700, 24, 12);
  core::FlowOptions opts;
  opts.key_bits = 32;
  opts.seed = seed;
  opts.split_layer = 4;
  opts.placer_moves_per_cell = 25;
  return core::RunSecureFlow(original, opts);
}

// --- AttackConfig -----------------------------------------------------------

TEST(AttackConfig, ParseRoundtrip) {
  const AttackConfig plain = AttackConfig::Parse("proximity");
  EXPECT_EQ(plain.engine, "proximity");
  EXPECT_TRUE(plain.params.empty());
  EXPECT_EQ(plain.ToString(), "proximity");

  const AttackConfig full =
      AttackConfig::Parse("sat-portfolio:configs=8,max_dips=64");
  EXPECT_EQ(full.engine, "sat-portfolio");
  EXPECT_EQ(full.GetUint("configs", 0), 8u);
  EXPECT_EQ(full.GetUint("max_dips", 0), 64u);
  // Canonical form sorts params (ordered map) and round-trips.
  EXPECT_EQ(AttackConfig::Parse(full.ToString()), full);
}

TEST(AttackConfig, MalformedSpecsThrow) {
  EXPECT_THROW(AttackConfig::Parse(""), std::invalid_argument);
  EXPECT_THROW(AttackConfig::Parse("sat:no_equals"), std::invalid_argument);
  EXPECT_THROW(AttackConfig::Parse("sat:=value"), std::invalid_argument);
}

TEST(AttackConfig, HashIsStableAndDiscriminates) {
  const AttackConfig a = AttackConfig::Parse("sat:max_dips=64");
  const AttackConfig b = AttackConfig::Parse("sat:max_dips=64");
  const AttackConfig c = AttackConfig::Parse("sat:max_dips=65");
  EXPECT_EQ(a.Hash(), b.Hash());
  EXPECT_NE(a.Hash(), c.Hash());
  // Param order in the spec does not matter (canonicalized by the map).
  EXPECT_EQ(AttackConfig::Parse("sat:a=1,b=2").Hash(),
            AttackConfig::Parse("sat:b=2,a=1").Hash());
}

TEST(AttackConfig, TypedGetters) {
  const AttackConfig config = AttackConfig::Parse("x:n=42,f=0.5,b=true");
  EXPECT_EQ(config.GetUint("n", 0), 42u);
  EXPECT_DOUBLE_EQ(config.GetDouble("f", 0.0), 0.5);
  EXPECT_TRUE(config.GetBool("b", false));
  EXPECT_EQ(config.GetUint("missing", 7), 7u);
  EXPECT_THROW(config.GetBool("n", false), std::invalid_argument);
}

// --- Registry ---------------------------------------------------------------

TEST(EngineRegistry, ListsAllBuiltinEngines) {
  const std::vector<std::string> names = EngineRegistry::Instance().Names();
  for (const char* expected : {"proximity", "ml", "ideal", "sat",
                               "oracle-less", "sat-portfolio"}) {
    EXPECT_NE(std::find(names.begin(), names.end(), expected), names.end())
        << "missing engine " << expected;
  }
}

TEST(EngineRegistry, UnknownEngineYieldsErrorReport) {
  EXPECT_EQ(EngineRegistry::Instance().Create("no-such-engine"), nullptr);
  const AttackReport report =
      RunAttack(AttackContext{}, AttackConfig{.engine = "no-such-engine"});
  EXPECT_FALSE(report.ok);
  EXPECT_NE(report.error.find("unknown attack engine"), std::string::npos);
}

TEST(EngineRegistry, MissingContextYieldsErrorReportNotThrow) {
  // A SAT engine without an oracle must fail gracefully: the threat-model
  // check is an error report, not an exception or a crash.
  const Netlist original = circuits::MakeC17();
  AttackContext ctx;
  ctx.locked = &original;
  const AttackReport report = RunAttack(ctx, "sat");
  EXPECT_FALSE(report.ok);
  EXPECT_NE(report.error.find("oracle"), std::string::npos);
}

TEST(EngineRegistry, ExternalRegistration) {
  class FakeEngine : public Engine {
   public:
    std::string name() const override { return "fake"; }
    std::string description() const override { return "test double"; }
    std::string CheckContext(const AttackContext&) const override {
      return "";
    }
    AttackReport Run(const AttackContext&,
                     const AttackConfig&) const override {
      AttackReport report;
      report.counters["ran"] = 1.0;
      return report;
    }
  };
  EngineRegistry::Instance().Register(
      "fake", [] { return std::make_unique<FakeEngine>(); });
  const AttackReport report = RunAttack(AttackContext{}, "fake");
  EXPECT_TRUE(report.ok);
  EXPECT_EQ(report.counters.at("ran"), 1.0);
}

// --- Adapter equivalence ----------------------------------------------------

TEST(EngineAdapters, ProximityMatchesFreeFunction) {
  const core::FlowResult flow = SecureFlow(3);
  AttackContext ctx;
  ctx.feol = &flow.feol;
  const AttackReport report = RunAttack(ctx, "proximity");
  ASSERT_TRUE(report.ok) << report.error;
  const ProximityResult direct = RunProximityAttack(flow.feol);
  EXPECT_EQ(report.assignment, direct.assignment);
  EXPECT_EQ(report.counters.at("committed_by_proximity"),
            static_cast<double>(direct.committed_by_proximity));
}

TEST(EngineAdapters, ProximityParamsReachTheAttack) {
  const core::FlowResult flow = SecureFlow(4);
  AttackContext ctx;
  ctx.feol = &flow.feol;
  const AttackReport with_pp = RunAttack(ctx, "proximity");
  const AttackReport without_pp =
      RunAttack(ctx, "proximity:postprocess=false");
  ASSERT_TRUE(with_pp.ok);
  ASSERT_TRUE(without_pp.ok);
  EXPECT_EQ(without_pp.counters.at("key_gates_reconnected"), 0.0);
  EXPECT_NE(with_pp.assignment, without_pp.assignment);
}

TEST(EngineAdapters, SatEngineRecoversEpicKey) {
  const Netlist original = circuits::MakeC17();
  Rng rng(1);
  const lock::EpicResult locked = lock::LockWithEpic(original, 6, rng);
  AttackContext ctx;
  ctx.locked = &locked.locked;
  ctx.oracle = &original;
  const AttackReport report = RunAttack(ctx, "sat");
  ASSERT_TRUE(report.ok) << report.error;
  EXPECT_TRUE(report.key_found);
  EXPECT_TRUE(report.functionally_correct);
  EXPECT_GT(report.counters.at("dips_used"), 0.0);
  // Per-round telemetry: one entry per miter solve, conflicts summing to
  // at most the total.
  EXPECT_EQ(report.rounds.size(), report.counters.at("rounds"));
  EXPECT_FALSE(report.phases.empty());
}

TEST(EngineAdapters, OracleLessMatchesFreeFunction) {
  const lock::AtpgLockResult locked = LockedCircuit(5);
  AttackContext ctx;
  ctx.locked = &locked.locked;
  ctx.seed = 5;
  const AttackReport report =
      RunAttack(ctx, "oracle-less:samples=64,patterns=512");
  ASSERT_TRUE(report.ok) << report.error;
  const OracleLessProbe direct =
      ProbeOracleLessKeySpace(locked.locked, 64, 512, 5);
  EXPECT_EQ(report.counters.at("sampled_keys"),
            static_cast<double>(direct.sampled_keys));
  EXPECT_EQ(report.counters.at("distinct_functions"),
            static_cast<double>(direct.distinct_functions));
}

TEST(EngineAdapters, IdealEngineBothModes) {
  const core::FlowResult flow = SecureFlow(6);
  // Assignment mode: FEOL only.
  AttackContext layout_ctx;
  layout_ctx.feol = &flow.feol;
  layout_ctx.seed = 6;
  const AttackReport layout = RunAttack(layout_ctx, "ideal");
  ASSERT_TRUE(layout.ok) << layout.error;
  EXPECT_EQ(layout.assignment.size(), flow.feol.sink_stubs.size());

  // Guess-sweep mode: locked + oracle + key.
  const Netlist original = TestCircuit(7);
  lock::AtpgLockOptions opts;
  opts.key_bits = 24;
  opts.seed = 7;
  opts.verify_lec = false;
  const lock::AtpgLockResult locked = lock::LockWithAtpg(original, opts);
  AttackContext key_ctx;
  key_ctx.locked = &locked.locked;
  key_ctx.oracle = &original;
  key_ctx.correct_key = locked.key;
  key_ctx.seed = 7;
  const AttackReport sweep =
      RunAttack(key_ctx, "ideal:guesses=512,patterns_per_guess=64");
  ASSERT_TRUE(sweep.ok) << sweep.error;
  EXPECT_EQ(sweep.counters.at("guesses"), 512.0);
  EXPECT_GE(sweep.counters.at("oer_percent"), 95.0);
}

// --- Portfolio attack -------------------------------------------------------

TEST(PortfolioSat, RecoversFunctionallyCorrectKey) {
  const Netlist original = TestCircuit(8);
  lock::AtpgLockOptions opts;
  opts.key_bits = 24;
  opts.seed = 8;
  opts.verify_lec = false;
  const lock::AtpgLockResult locked = lock::LockWithAtpg(original, opts);
  PortfolioSatOptions popts;
  popts.num_configs = 4;
  const PortfolioSatResult r =
      RunPortfolioSatAttack(locked.locked, original, popts);
  EXPECT_TRUE(r.attack.finished);
  ASSERT_TRUE(r.attack.key_found);
  EXPECT_TRUE(r.attack.functionally_correct);
  // Every decided round was won by someone.
  size_t wins = 0;
  for (const size_t w : r.wins_per_config) wins += w;
  EXPECT_EQ(wins, r.attack.telemetry.rounds.size());
}

TEST(PortfolioSat, BitIdenticalAcrossThreadCounts) {
  PoolWidthGuard guard;
  const Netlist original = TestCircuit(9);
  lock::AtpgLockOptions opts;
  opts.key_bits = 24;
  opts.seed = 9;
  opts.verify_lec = false;
  const lock::AtpgLockResult locked = lock::LockWithAtpg(original, opts);
  PortfolioSatOptions popts;
  popts.num_configs = 4;
  popts.seed = 9;

  std::vector<PortfolioSatResult> results;
  for (const size_t threads : {1u, 2u, 8u}) {
    exec::ThreadPool::SetDefaultThreadCount(threads);
    results.push_back(RunPortfolioSatAttack(locked.locked, original, popts));
  }
  const PortfolioSatResult& ref = results[0];
  ASSERT_TRUE(ref.attack.key_found);
  for (size_t i = 1; i < results.size(); ++i) {
    const PortfolioSatResult& r = results[i];
    EXPECT_EQ(r.attack.finished, ref.attack.finished) << "width " << i;
    EXPECT_EQ(r.attack.key_found, ref.attack.key_found) << "width " << i;
    EXPECT_EQ(r.attack.recovered_key, ref.attack.recovered_key)
        << "width " << i;
    EXPECT_EQ(r.attack.dips_used, ref.attack.dips_used) << "width " << i;
    EXPECT_EQ(r.attack.functionally_correct, ref.attack.functionally_correct)
        << "width " << i;
    EXPECT_EQ(r.wins_per_config, ref.wins_per_config) << "width " << i;
    // Winner sequence and per-round conflict counts are part of the
    // determinism contract (wall-clock timings are not).
    ASSERT_EQ(r.attack.telemetry.rounds.size(),
              ref.attack.telemetry.rounds.size())
        << "width " << i;
    for (size_t round = 0; round < ref.attack.telemetry.rounds.size();
         ++round) {
      EXPECT_EQ(r.attack.telemetry.rounds[round].winner,
                ref.attack.telemetry.rounds[round].winner)
          << "width " << i << " round " << round;
      EXPECT_EQ(r.attack.telemetry.rounds[round].conflicts,
                ref.attack.telemetry.rounds[round].conflicts)
          << "width " << i << " round " << round;
    }
  }
}

TEST(PortfolioSat, MultiDipRoundsBitIdenticalAcrossThreadCounts) {
  // Wide rounds extract extra DIPs serially on the deterministically
  // adopted master, so the full determinism contract — key, DIP count,
  // winner sequence, per-round batch widths — must hold at any pool width.
  PoolWidthGuard guard;
  const Netlist original = TestCircuit(12);
  lock::AtpgLockOptions opts;
  opts.key_bits = 24;
  opts.seed = 12;
  opts.verify_lec = false;
  const lock::AtpgLockResult locked = lock::LockWithAtpg(original, opts);
  PortfolioSatOptions popts;
  popts.num_configs = 4;
  popts.seed = 12;
  popts.dips_per_round = 4;

  std::vector<PortfolioSatResult> results;
  for (const size_t threads : {1u, 2u, 8u}) {
    exec::ThreadPool::SetDefaultThreadCount(threads);
    results.push_back(RunPortfolioSatAttack(locked.locked, original, popts));
  }
  const PortfolioSatResult& ref = results[0];
  ASSERT_TRUE(ref.attack.key_found);
  EXPECT_TRUE(ref.attack.functionally_correct);
  for (size_t i = 1; i < results.size(); ++i) {
    const PortfolioSatResult& r = results[i];
    EXPECT_EQ(r.attack.recovered_key, ref.attack.recovered_key)
        << "width " << i;
    EXPECT_EQ(r.attack.dips_used, ref.attack.dips_used) << "width " << i;
    EXPECT_EQ(r.wins_per_config, ref.wins_per_config) << "width " << i;
    ASSERT_EQ(r.attack.telemetry.rounds.size(),
              ref.attack.telemetry.rounds.size())
        << "width " << i;
    for (size_t round = 0; round < ref.attack.telemetry.rounds.size();
         ++round) {
      EXPECT_EQ(r.attack.telemetry.rounds[round].dip_batch,
                ref.attack.telemetry.rounds[round].dip_batch)
          << "width " << i << " round " << round;
      EXPECT_EQ(r.attack.telemetry.rounds[round].winner,
                ref.attack.telemetry.rounds[round].winner)
          << "width " << i << " round " << round;
    }
  }
}

TEST(PortfolioSat, SingleConfigDegeneratesToSequentialShape) {
  const Netlist original = circuits::MakeC17();
  Rng rng(2);
  const lock::EpicResult locked = lock::LockWithEpic(original, 6, rng);
  PortfolioSatOptions popts;
  popts.num_configs = 1;
  const PortfolioSatResult r =
      RunPortfolioSatAttack(locked.locked, original, popts);
  EXPECT_TRUE(r.attack.finished);
  EXPECT_TRUE(r.attack.key_found);
  EXPECT_TRUE(r.attack.functionally_correct);
  ASSERT_EQ(r.wins_per_config.size(), 1u);
}

TEST(PortfolioSat, EngineAdapterMatchesDirectCall) {
  const Netlist original = circuits::MakeC17();
  Rng rng(3);
  const lock::EpicResult locked = lock::LockWithEpic(original, 6, rng);
  AttackContext ctx;
  ctx.locked = &locked.locked;
  ctx.oracle = &original;
  ctx.seed = 3;
  const AttackReport report = RunAttack(ctx, "sat-portfolio:configs=4");
  ASSERT_TRUE(report.ok) << report.error;
  PortfolioSatOptions popts;
  popts.num_configs = 4;
  popts.seed = 3;
  const PortfolioSatResult direct =
      RunPortfolioSatAttack(locked.locked, original, popts);
  EXPECT_EQ(report.recovered_key, direct.attack.recovered_key);
  EXPECT_EQ(report.counters.at("dips_used"),
            static_cast<double>(direct.attack.dips_used));
}

// --- Campaign portfolios ----------------------------------------------------

TEST(CampaignPortfolio, RunsMultipleEnginesPerJob) {
  core::CampaignJob job;
  job.name = "engine-portfolio";
  job.make_netlist = [] { return TestCircuit(10, 700, 24, 12); };
  job.flow.key_bits = 32;
  job.flow.seed = 10;
  job.flow.placer_moves_per_cell = 25;
  job.attacks = {AttackConfig::Parse("proximity"),
                 AttackConfig::Parse("ideal"),
                 AttackConfig::Parse("oracle-less:samples=32,patterns=256")};
  core::CampaignOptions options;
  options.score_patterns = 512;
  const core::CampaignOutcome outcome =
      core::CampaignRunner(options).RunOne(job);
  ASSERT_TRUE(outcome.ok) << outcome.error;
  ASSERT_EQ(outcome.attacks.size(), 3u);
  for (const AttackReport& report : outcome.attacks) {
    EXPECT_TRUE(report.ok) << report.engine << ": " << report.error;
  }
  // The scorecard comes from the first assignment-carrying report
  // (proximity), and the oracle-less probe contributed counters.
  ASSERT_NE(outcome.AssignmentReport(), nullptr);
  EXPECT_EQ(outcome.AssignmentReport()->engine, "proximity");
  EXPECT_GT(outcome.attacks[2].counters.at("distinct_functions"), 1.0);
  EXPECT_GT(outcome.score.ccr.key_connections, 0u);
}

TEST(CampaignPortfolio, FailedEngineDoesNotFailTheJob) {
  core::CampaignJob job;
  job.name = "bad-engine";
  job.make_netlist = [] { return TestCircuit(11, 700, 24, 12); };
  job.flow.key_bits = 32;
  job.flow.seed = 11;
  job.flow.placer_moves_per_cell = 25;
  job.attacks = {AttackConfig::Parse("no-such-engine"),
                 AttackConfig::Parse("proximity")};
  core::CampaignOptions options;
  options.score_patterns = 512;
  const core::CampaignOutcome outcome =
      core::CampaignRunner(options).RunOne(job);
  ASSERT_TRUE(outcome.ok) << outcome.error;
  ASSERT_EQ(outcome.attacks.size(), 2u);
  EXPECT_FALSE(outcome.attacks[0].ok);
  EXPECT_TRUE(outcome.attacks[1].ok);
  ASSERT_NE(outcome.AssignmentReport(), nullptr);
  EXPECT_EQ(outcome.AssignmentReport()->engine, "proximity");
}

// --- Report serialization ---------------------------------------------------

TEST(AttackReport, JsonContainsCoreFields) {
  AttackReport report;
  report.engine = "sat";
  report.config = "sat:max_dips=4";
  report.ok = true;
  report.key_found = true;
  report.recovered_key = {1, 0, 1};
  report.functionally_correct = true;
  report.counters["dips_used"] = 3;
  report.phases.push_back({"dip_solve", 1.5, 3});
  report.rounds.push_back({42, 1.0, 0.25, 0.125, 2});
  const std::string json = report.ToJson();
  EXPECT_NE(json.find("\"engine\":\"sat\""), std::string::npos);
  EXPECT_NE(json.find("\"recovered_key\":\"101\""), std::string::npos);
  EXPECT_NE(json.find("\"dips_used\":3"), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"dip_solve\""), std::string::npos);
  EXPECT_NE(json.find("\"conflicts\":42"), std::string::npos);
  EXPECT_NE(json.find("\"winner\":2"), std::string::npos);
}

}  // namespace
}  // namespace splitlock::attack
