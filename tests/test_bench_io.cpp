#include <gtest/gtest.h>

#include <stdexcept>

#include "circuits/c17.hpp"
#include "circuits/random_circuit.hpp"
#include "netlist/bench_io.hpp"
#include "sim/metrics.hpp"

namespace splitlock {
namespace {

constexpr const char* kC17Bench = R"(# c17
INPUT(G1)
INPUT(G2)
INPUT(G3)
INPUT(G6)
INPUT(G7)
OUTPUT(G22)
OUTPUT(G23)
G10 = NAND(G1, G3)
G11 = NAND(G3, G6)
G16 = NAND(G2, G11)
G19 = NAND(G11, G7)
G22 = NAND(G10, G16)
G23 = NAND(G16, G19)
)";

// Round-trip property over generated circuits.
class BenchRoundTrip : public ::testing::TestWithParam<uint64_t> {};

TEST_P(BenchRoundTrip, WriteReadPreservesFunction) {
  circuits::CircuitSpec spec;
  spec.num_inputs = 14;
  spec.num_outputs = 7;
  spec.num_gates = 200;
  spec.seed = GetParam();
  const Netlist original = circuits::GenerateCircuit(spec);
  const Netlist reparsed = ReadBench(WriteBench(original), "rt");
  EXPECT_EQ(reparsed.Validate(), "");
  EXPECT_EQ(reparsed.inputs().size(), original.inputs().size());
  EXPECT_EQ(reparsed.outputs().size(), original.outputs().size());
  EXPECT_TRUE(RandomPatternsAgree(original, reparsed, 512, GetParam()));
}

INSTANTIATE_TEST_SUITE_P(Seeds, BenchRoundTrip,
                         ::testing::Range<uint64_t>(1, 9));

TEST(BenchIo, ParsesC17) {
  const Netlist nl = ReadBench(kC17Bench, "c17");
  EXPECT_EQ(nl.Validate(), "");
  EXPECT_EQ(nl.inputs().size(), 5u);
  EXPECT_EQ(nl.outputs().size(), 2u);
  EXPECT_EQ(nl.NumLogicGates(), 6u);
}

TEST(BenchIo, ParsedC17MatchesEmbedded) {
  const Netlist parsed = ReadBench(kC17Bench, "c17");
  const Netlist embedded = circuits::MakeC17();
  EXPECT_TRUE(RandomPatternsAgree(embedded, parsed, 64, 1));
}

TEST(BenchIo, RoundTripPreservesFunction) {
  const Netlist original = circuits::MakeC17();
  const std::string text = WriteBench(original);
  const Netlist reparsed = ReadBench(text, "c17rt");
  EXPECT_EQ(reparsed.Validate(), "");
  EXPECT_EQ(reparsed.inputs().size(), original.inputs().size());
  EXPECT_EQ(reparsed.outputs().size(), original.outputs().size());
  EXPECT_TRUE(RandomPatternsAgree(original, reparsed, 64, 2));
}

TEST(BenchIo, OutOfOrderStatementsResolve) {
  const Netlist nl = ReadBench(
      "INPUT(a)\nOUTPUT(y)\ny = NOT(m)\nm = AND(a, a2)\nINPUT(a2)\n");
  EXPECT_EQ(nl.Validate(), "");
  EXPECT_EQ(nl.NumLogicGates(), 2u);
}

TEST(BenchIo, SupportsExtendedOps) {
  const Netlist nl = ReadBench(
      "INPUT(a)\nOUTPUT(y)\nk = KEYIN()\nhi = TIEHI()\n"
      "x = XOR(a, k)\ny = MUX(hi, a, x)\n");
  EXPECT_EQ(nl.Validate(), "");
  EXPECT_EQ(nl.KeyInputs().size(), 1u);
}

TEST(BenchIo, CommentsAndBlanksIgnored) {
  const Netlist nl = ReadBench(
      "# header\n\nINPUT(a) # trailing\n  \nOUTPUT(y)\ny = BUF(a)\n");
  EXPECT_EQ(nl.Validate(), "");
}

TEST(BenchIo, RejectsUnknownOp) {
  EXPECT_THROW(ReadBench("INPUT(a)\nOUTPUT(y)\ny = FROB(a)\n"),
               std::runtime_error);
}

TEST(BenchIo, RejectsUndefinedFanin) {
  EXPECT_THROW(ReadBench("INPUT(a)\nOUTPUT(y)\ny = AND(a, ghost)\n"),
               std::runtime_error);
}

TEST(BenchIo, RejectsDuplicateDefinition) {
  EXPECT_THROW(
      ReadBench("INPUT(a)\nOUTPUT(y)\ny = BUF(a)\ny = NOT(a)\n"),
      std::runtime_error);
}

TEST(BenchIo, RejectsUndefinedOutput) {
  EXPECT_THROW(ReadBench("INPUT(a)\nOUTPUT(ghost)\n"), std::runtime_error);
}

TEST(BenchIo, RejectsCombinationalCycle) {
  EXPECT_THROW(ReadBench("INPUT(a)\nOUTPUT(y)\n"
                         "p = AND(a, q)\nq = AND(a, p)\ny = BUF(p)\n"),
               std::runtime_error);
}

TEST(BenchIo, DffReadAsFfCut) {
  // s27-like shape: 3 flops become 3 pseudo-PIs and 3 pseudo-POs.
  const Netlist nl = ReadBench(
      "INPUT(a)\nOUTPUT(y)\n"
      "q1 = DFF(d1)\nq2 = DFF(d2)\nq3 = DFF(d3)\n"
      "d1 = AND(a, q2)\nd2 = OR(q1, q3)\nd3 = NOT(q2)\n"
      "y = NAND(q1, a)\n");
  EXPECT_EQ(nl.Validate(), "");
  EXPECT_EQ(nl.inputs().size(), 4u);   // a + q1..q3
  EXPECT_EQ(nl.outputs().size(), 4u);  // y + 3 pseudo-POs
  EXPECT_EQ(nl.NumLogicGates(), 4u);   // the combinational core only
}

TEST(BenchIo, DffUndefinedDNetRejected) {
  EXPECT_THROW(ReadBench("INPUT(a)\nOUTPUT(a)\nq = DFF(ghost)\n"),
               std::runtime_error);
}

TEST(BenchIo, FfCutKeepsCombinationalCoreFunction) {
  // The FF-cut core treats flop outputs as free inputs; the logic between
  // them must be preserved verbatim.
  const Netlist nl = ReadBench(
      "INPUT(a)\nOUTPUT(y)\nq = DFF(d)\nd = NOT(a)\ny = AND(a, q)\n");
  Netlist expected("exp");
  const NetId a = expected.AddInput("a");
  const NetId q = expected.AddInput("q");
  const NetId y = expected.AddGate(GateOp::kAnd, {a, q});
  const NetId d = expected.AddGate(GateOp::kInv, {a});
  expected.AddOutput(y, "y");
  expected.AddOutput(d, "q__ff_d");
  EXPECT_TRUE(RandomPatternsAgree(expected, nl, 256, 1));
}

TEST(BenchIo, KeyedNetlistRoundTrips) {
  const Netlist nl = ReadBench(
      "INPUT(a)\nOUTPUT(y)\nk0 = KEYIN()\ny = XNOR(a, k0)\n");
  const Netlist rt = ReadBench(WriteBench(nl), "rt");
  EXPECT_EQ(rt.KeyInputs().size(), 1u);
  const std::vector<uint8_t> key = {1};
  EXPECT_TRUE(RandomPatternsAgree(nl, rt, 64, 3, key, key));
}

}  // namespace
}  // namespace splitlock
