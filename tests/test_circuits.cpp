#include <gtest/gtest.h>

#include <stdexcept>

#include "circuits/c17.hpp"
#include "circuits/random_circuit.hpp"
#include "circuits/suites.hpp"
#include "sim/metrics.hpp"
#include "sim/simulator.hpp"

namespace splitlock::circuits {
namespace {

TEST(C17, ExactStructure) {
  const Netlist nl = MakeC17();
  EXPECT_EQ(nl.Validate(), "");
  EXPECT_EQ(nl.inputs().size(), 5u);
  EXPECT_EQ(nl.outputs().size(), 2u);
  EXPECT_EQ(nl.NumLogicGates(), 6u);
  for (GateId g = 0; g < nl.NumGates(); ++g) {
    const Gate& gate = nl.gate(g);
    if (gate.op != GateOp::kInput && gate.op != GateOp::kOutput) {
      EXPECT_EQ(gate.op, GateOp::kNand);
    }
  }
}

TEST(C17, FullTruthTable) {
  // Reference model evaluated for all 32 input patterns.
  const Netlist nl = MakeC17();
  Simulator sim(nl);
  // Lanes 0..31 enumerate (G1, G2, G3, G6, G7).
  std::vector<uint64_t> words(5, 0);
  for (int m = 0; m < 32; ++m) {
    for (int b = 0; b < 5; ++b) {
      if ((m >> b) & 1) words[b] |= 1ULL << m;
    }
  }
  sim.SetInputWords(words);
  sim.Run();
  for (int m = 0; m < 32; ++m) {
    const bool g1 = m & 1;
    const bool g2 = (m >> 1) & 1;
    const bool g3 = (m >> 2) & 1;
    const bool g6 = (m >> 3) & 1;
    const bool g7 = (m >> 4) & 1;
    const bool g10 = !(g1 && g3);
    const bool g11 = !(g3 && g6);
    const bool g16 = !(g2 && g11);
    const bool g19 = !(g11 && g7);
    const bool g22 = !(g10 && g16);
    const bool g23 = !(g16 && g19);
    EXPECT_EQ((sim.OutputWord(0) >> m) & 1, g22 ? 1u : 0u) << "m=" << m;
    EXPECT_EQ((sim.OutputWord(1) >> m) & 1, g23 ? 1u : 0u) << "m=" << m;
  }
}

TEST(Suites, IscasTableMatchesPublishedCounts) {
  const auto& suite = IscasSuite();
  ASSERT_EQ(suite.size(), 7u);
  EXPECT_EQ(suite[0].name, "c432");
  EXPECT_EQ(suite[0].inputs, 36u);
  EXPECT_EQ(suite[0].outputs, 7u);
  EXPECT_EQ(suite.back().name, "c7552");
  EXPECT_EQ(suite.back().inputs, 207u);
}

TEST(Suites, Itc99TableOrder) {
  const auto& suite = Itc99Suite();
  ASSERT_EQ(suite.size(), 6u);
  EXPECT_EQ(suite[0].name, "b14");
  EXPECT_EQ(suite.back().name, "b22");
}

TEST(Suites, SynthesizedIscasMatchesDeclaredInterface) {
  for (const BenchmarkInfo& info : IscasSuite()) {
    const Netlist nl = MakeIscas(info.name);
    EXPECT_EQ(nl.Validate(), "") << info.name;
    EXPECT_EQ(nl.inputs().size(), info.inputs) << info.name;
    EXPECT_EQ(nl.outputs().size(), info.outputs) << info.name;
    // Gate budget is approximate (tree rounding, checksum fold).
    EXPECT_GT(nl.NumLogicGates(), info.gates * 8 / 10) << info.name;
    EXPECT_LT(nl.NumLogicGates(), info.gates * 13 / 10) << info.name;
  }
}

TEST(Suites, ScaleShrinksItc99) {
  const Netlist full = MakeItc99("b14", 0.2);
  const Netlist small = MakeItc99("b14", 0.05);
  EXPECT_GT(full.NumLogicGates(), 2 * small.NumLogicGates());
  EXPECT_EQ(full.inputs().size(), small.inputs().size());
}

TEST(Suites, UnknownNamesThrow) {
  EXPECT_THROW(MakeIscas("c9999"), std::invalid_argument);
  EXPECT_THROW(MakeItc99("b99"), std::invalid_argument);
}

TEST(Suites, GenerationIsDeterministic) {
  const Netlist a = MakeIscas("c880");
  const Netlist b = MakeIscas("c880");
  EXPECT_EQ(a.NumGates(), b.NumGates());
  EXPECT_TRUE(RandomPatternsAgree(a, b, 512, 1));
}

TEST(Generator, EveryGateReachesAnOutput) {
  CircuitSpec spec;
  spec.num_inputs = 16;
  spec.num_outputs = 8;
  spec.num_gates = 300;
  spec.seed = 42;
  const Netlist nl = GenerateCircuit(spec);
  // Walk back from outputs; every logic gate must be visited (the
  // checksum output guarantees observability).
  std::vector<bool> reached(nl.NumGates(), false);
  std::vector<GateId> stack;
  for (GateId g : nl.outputs()) stack.push_back(g);
  while (!stack.empty()) {
    const GateId g = stack.back();
    stack.pop_back();
    if (reached[g]) continue;
    reached[g] = true;
    for (NetId n : nl.gate(g).fanins) stack.push_back(nl.DriverOf(n));
  }
  for (GateId g = 0; g < nl.NumGates(); ++g) {
    if (nl.gate(g).op == GateOp::kInput || nl.gate(g).op == GateOp::kOutput ||
        nl.gate(g).op == GateOp::kDeleted) {
      continue;
    }
    EXPECT_TRUE(reached[g]) << "dangling gate " << g;
  }
}

TEST(Generator, BiasConesCreateBiasedNets) {
  CircuitSpec spec;
  spec.num_inputs = 24;
  spec.num_outputs = 8;
  spec.num_gates = 600;
  spec.seed = 7;
  spec.bias_cone_fraction = 0.2;
  const Netlist nl = GenerateCircuit(spec);
  const std::vector<double> probs = EstimateSignalProbabilities(nl, 8192, 7);
  size_t strongly_biased = 0;
  for (NetId n = 0; n < nl.NumNets(); ++n) {
    const GateId d = nl.DriverOf(n);
    if (d == kNullId || IsSourceOp(nl.gate(d).op)) continue;
    if (std::max(probs[n], 1.0 - probs[n]) > 0.9) ++strongly_biased;
  }
  EXPECT_GT(strongly_biased, 10u);
}

TEST(Generator, RespectsDifferentSeeds) {
  CircuitSpec spec;
  spec.num_inputs = 12;
  spec.num_outputs = 6;
  spec.num_gates = 150;
  spec.seed = 1;
  const Netlist a = GenerateCircuit(spec);
  spec.seed = 2;
  const Netlist b = GenerateCircuit(spec);
  EXPECT_FALSE(RandomPatternsAgree(a, b, 256, 3));
}

}  // namespace
}  // namespace splitlock::circuits
