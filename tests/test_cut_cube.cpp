#include <gtest/gtest.h>

#include <algorithm>

#include "atpg/cube.hpp"
#include "atpg/cut.hpp"
#include "circuits/random_circuit.hpp"
#include "sim/simulator.hpp"

namespace splitlock::atpg {
namespace {

TEST(Cut, TrivialConeOfSingleGate) {
  Netlist nl("t");
  const NetId a = nl.AddInput("a");
  const NetId b = nl.AddInput("b");
  const NetId y = nl.AddGate(GateOp::kAnd, {a, b});
  nl.AddOutput(y, "y");
  const Cut cut = ExtractCut(nl, y, 4);
  ASSERT_EQ(cut.root, y);
  EXPECT_EQ(cut.leaves.size(), 2u);
  EXPECT_EQ(cut.cone.size(), 1u);
}

TEST(Cut, ExpandsThroughTree) {
  Netlist nl("t");
  const NetId a = nl.AddInput("a");
  const NetId b = nl.AddInput("b");
  const NetId c = nl.AddInput("c");
  const NetId d = nl.AddInput("d");
  const NetId l = nl.AddGate(GateOp::kAnd, {a, b});
  const NetId r = nl.AddGate(GateOp::kOr, {c, d});
  const NetId root = nl.AddGate(GateOp::kXor, {l, r});
  nl.AddOutput(root, "y");
  const Cut cut = ExtractCut(nl, root, 4);
  ASSERT_EQ(cut.root, root);
  EXPECT_EQ(cut.leaves.size(), 4u);
  EXPECT_EQ(cut.cone.size(), 3u);
}

TEST(Cut, RespectsLeafBound) {
  circuits::CircuitSpec spec;
  spec.num_inputs = 20;
  spec.num_outputs = 8;
  spec.num_gates = 400;
  spec.seed = 77;
  const Netlist nl = circuits::GenerateCircuit(spec);
  for (NetId n = 0; n < nl.NumNets(); n += 13) {
    const Cut cut = ExtractCut(nl, n, 8);
    if (cut.root == kNullId) continue;
    EXPECT_LE(cut.leaves.size(), 8u);
    EXPECT_FALSE(cut.cone.empty());
  }
}

TEST(Cut, ConeIsTopologicallyOrdered) {
  circuits::CircuitSpec spec;
  spec.num_inputs = 16;
  spec.num_outputs = 4;
  spec.num_gates = 200;
  spec.seed = 5;
  const Netlist nl = circuits::GenerateCircuit(spec);
  const std::vector<GateId> topo = nl.TopoOrder();
  std::vector<size_t> pos(nl.NumGates());
  for (size_t i = 0; i < topo.size(); ++i) pos[topo[i]] = i;
  for (NetId n = 0; n < nl.NumNets(); n += 17) {
    const Cut cut = ExtractCut(nl, n, 10);
    if (cut.root == kNullId) continue;
    for (size_t i = 1; i < cut.cone.size(); ++i) {
      EXPECT_LT(pos[cut.cone[i - 1]], pos[cut.cone[i]]);
    }
  }
}

TEST(Cube, CoversSemantics) {
  // Cube over 4 vars: x1=1, x3=0 (vars 0 and 2 free).
  const Cube c{0b1010, 0b0010};
  EXPECT_TRUE(c.Covers(0b0010));
  EXPECT_TRUE(c.Covers(0b0111));
  EXPECT_FALSE(c.Covers(0b0000));
  EXPECT_FALSE(c.Covers(0b1010));
  EXPECT_EQ(c.CareCount(), 2);
}

TEST(Cube, MintermsToCubesMergesAdjacent) {
  // Minterms {0, 1} over 2 vars = cube "x1=0" (1 care bit).
  const std::vector<uint64_t> minterms = {0, 1};
  const std::vector<Cube> cubes = MintermsToCubes(minterms, 2);
  ASSERT_EQ(cubes.size(), 1u);
  EXPECT_EQ(cubes[0].care, 0b10u);
  EXPECT_EQ(cubes[0].value, 0b00u);
  EXPECT_TRUE(CubesCoverExactly(cubes, minterms, 2));
}

TEST(Cube, FullSpaceCollapsesToEmptyCube) {
  const std::vector<uint64_t> minterms = {0, 1, 2, 3};
  const std::vector<Cube> cubes = MintermsToCubes(minterms, 2);
  ASSERT_EQ(cubes.size(), 1u);
  EXPECT_EQ(cubes[0].care, 0u);
}

TEST(Cube, DisjointMintermsStaySeparate) {
  const std::vector<uint64_t> minterms = {0b000, 0b111};
  const std::vector<Cube> cubes = MintermsToCubes(minterms, 3);
  EXPECT_EQ(cubes.size(), 2u);
  EXPECT_TRUE(CubesCoverExactly(cubes, minterms, 3));
}

TEST(ConeMinterms, MatchesDirectEvaluationOnAndTree) {
  // y = a & b & c & d: on-set of polarity 1 is exactly one minterm.
  Netlist nl("t");
  const NetId a = nl.AddInput("a");
  const NetId b = nl.AddInput("b");
  const NetId c = nl.AddInput("c");
  const NetId d = nl.AddInput("d");
  const NetId y = nl.AddGate(GateOp::kAnd, {a, b, c, d});
  nl.AddOutput(y, "y");
  const Cut cut = ExtractCut(nl, y, 6);
  ASSERT_EQ(cut.root, y);
  const auto ones = EnumerateConeMinterms(nl, cut, true, 1024);
  ASSERT_TRUE(ones.has_value());
  ASSERT_EQ(ones->size(), 1u);
  const auto zeros = EnumerateConeMinterms(nl, cut, false, 1024);
  ASSERT_TRUE(zeros.has_value());
  EXPECT_EQ(zeros->size(), 15u);
}

TEST(ConeMinterms, LimitRejectsLargeOnsets) {
  Netlist nl("t");
  const NetId a = nl.AddInput("a");
  const NetId b = nl.AddInput("b");
  const NetId y = nl.AddGate(GateOp::kOr, {a, b});
  nl.AddOutput(y, "y");
  const Cut cut = ExtractCut(nl, y, 4);
  const auto capped = EnumerateConeMinterms(nl, cut, true, 2);
  EXPECT_FALSE(capped.has_value());  // 3 minterms > limit 2
}

// Property: for random cones, enumerated minterms + compacted cubes agree
// with direct cone simulation over the cut.
class ConeCubeProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ConeCubeProperty, CubesExactlyMatchConeFunction) {
  circuits::CircuitSpec spec;
  spec.num_inputs = 12;
  spec.num_outputs = 6;
  spec.num_gates = 150;
  spec.seed = GetParam();
  const Netlist nl = circuits::GenerateCircuit(spec);

  size_t checked = 0;
  for (NetId n = 0; n < nl.NumNets() && checked < 6; n += 11) {
    const Cut cut = ExtractCut(nl, n, 10);
    if (cut.root == kNullId || cut.leaves.size() < 2) continue;
    const auto minterms = EnumerateConeMinterms(nl, cut, true, 4096);
    if (!minterms.has_value()) continue;
    const std::vector<Cube> cubes =
        MintermsToCubes(*minterms, cut.leaves.size());
    EXPECT_TRUE(CubesCoverExactly(cubes, *minterms, cut.leaves.size()));

    // Cross-check a few assignments against full-netlist simulation.
    Simulator sim(nl);
    Rng rng(GetParam() ^ n);
    for (int trial = 0; trial < 4; ++trial) {
      sim.SetRandomInputs(rng);
      sim.Run();
      uint64_t leaf_pattern = 0;
      for (size_t i = 0; i < cut.leaves.size(); ++i) {
        leaf_pattern |= (sim.NetWord(cut.leaves[i]) & 1) << i;
      }
      bool covered = false;
      for (const Cube& c : cubes) {
        if (c.Covers(leaf_pattern)) covered = true;
      }
      EXPECT_EQ(covered, (sim.NetWord(cut.root) & 1) != 0);
    }
    ++checked;
  }
  EXPECT_GT(checked, 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ConeCubeProperty,
                         ::testing::Range<uint64_t>(1, 11));

}  // namespace
}  // namespace splitlock::atpg
