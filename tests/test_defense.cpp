#include <gtest/gtest.h>

#include "attack/metrics.hpp"
#include "attack/proximity.hpp"
#include "circuits/random_circuit.hpp"
#include "defense/defenses.hpp"
#include "sim/metrics.hpp"

namespace splitlock::defense {
namespace {

Netlist TestCircuit(uint64_t seed) {
  circuits::CircuitSpec spec;
  spec.num_inputs = 24;
  spec.num_outputs = 12;
  spec.num_gates = 700;
  spec.seed = seed;
  return circuits::GenerateCircuit(spec);
}

core::FlowOptions Opts(uint64_t seed) {
  core::FlowOptions opts;
  opts.seed = seed;
  opts.split_layer = 4;
  opts.placer_moves_per_cell = 25;
  return opts;
}

TEST(RoutingPerturbation, ProducesValidFeol) {
  const Netlist original = TestCircuit(1);
  const DefenseResult r = ApplyRoutingPerturbation(original, Opts(1));
  EXPECT_GT(r.feol.sink_stubs.size(), 0u);
  EXPECT_EQ(r.feol.netlist->Validate(), "");
  EXPECT_EQ(r.reference.get(), nullptr);  // function unchanged
}

TEST(RoutingPerturbation, DegradesAttackVsUndefended) {
  const Netlist original = TestCircuit(2);
  // Undefended layout = perturbation with fraction 0.
  RoutingPerturbationOptions none;
  none.perturb_fraction = 0.0;
  RoutingPerturbationOptions strong;
  strong.perturb_fraction = 0.9;
  strong.max_displacement_um = 40.0;
  const DefenseResult undefended =
      ApplyRoutingPerturbation(original, Opts(2), none);
  const DefenseResult defended =
      ApplyRoutingPerturbation(original, Opts(2), strong);
  const auto attack_ccr = [](const DefenseResult& d) {
    const attack::ProximityResult r = attack::RunProximityAttack(d.feol);
    return attack::ComputeCcr(d.feol, r.assignment).regular_ccr_percent;
  };
  EXPECT_LT(attack_ccr(defended), attack_ccr(undefended));
}

TEST(WireLifting, LiftedNetsLoseFeolHints) {
  const Netlist original = TestCircuit(3);
  WireLiftingOptions wopts;
  wopts.lift_fraction = 0.30;
  const DefenseResult r =
      ApplyConcertedWireLifting(original, Opts(3), wopts);
  // Lifting must break many more connections than the undefended split.
  WireLiftingOptions none;
  none.lift_fraction = 0.0;
  const DefenseResult base =
      ApplyConcertedWireLifting(original, Opts(3), none);
  EXPECT_GT(r.feol.sink_stubs.size(), base.feol.sink_stubs.size());
}

TEST(WireLifting, FunctionUnchanged) {
  const Netlist original = TestCircuit(4);
  const DefenseResult r = ApplyConcertedWireLifting(original, Opts(4));
  // Truth assignment reproduces the original function.
  split::Assignment truth(r.feol.sink_stubs.size());
  for (size_t i = 0; i < truth.size(); ++i) {
    truth[i] = r.feol.sink_stubs[i].true_net;
  }
  const Netlist recovered = split::BuildRecoveredNetlist(r.feol, truth);
  EXPECT_TRUE(RandomPatternsAgree(r.Reference(), recovered, 1024, 4));
}

TEST(BeolRestore, DecoyDiffersFromReference) {
  const Netlist original = TestCircuit(5);
  const DefenseResult r = ApplyBeolRestore(original, Opts(5));
  ASSERT_NE(r.reference.get(), nullptr);
  // The FEOL netlist (decoy) must NOT compute the reference function.
  EXPECT_FALSE(
      RandomPatternsAgree(*r.reference, *r.feol.netlist, 2048, 5));
}

TEST(BeolRestore, TruthAssignmentRestoresFunction) {
  const Netlist original = TestCircuit(6);
  const DefenseResult r = ApplyBeolRestore(original, Opts(6));
  split::Assignment truth(r.feol.sink_stubs.size());
  for (size_t i = 0; i < truth.size(); ++i) {
    truth[i] = r.feol.sink_stubs[i].true_net;
  }
  const Netlist recovered = split::BuildRecoveredNetlist(r.feol, truth);
  EXPECT_EQ(recovered.Validate(), "");
  EXPECT_TRUE(RandomPatternsAgree(r.Reference(), recovered, 2048, 6));
}

TEST(BeolRestore, AttackRecoversWrongFunction) {
  const Netlist original = TestCircuit(7);
  const DefenseResult r = ApplyBeolRestore(original, Opts(7));
  const attack::ProximityResult pr = attack::RunProximityAttack(r.feol);
  const Netlist recovered =
      split::BuildRecoveredNetlist(r.feol, pr.assignment);
  const FunctionalDiff d =
      CompareFunctional(r.Reference(), recovered, 4096, 7);
  EXPECT_GT(d.oer_percent, 50.0);
}

TEST(AllDefenses, NoKeyMachineryInvolved) {
  const Netlist original = TestCircuit(8);
  for (int which = 0; which < 3; ++which) {
    DefenseResult r;
    switch (which) {
      case 0:
        r = ApplyRoutingPerturbation(original, Opts(8));
        break;
      case 1:
        r = ApplyConcertedWireLifting(original, Opts(8));
        break;
      default:
        r = ApplyBeolRestore(original, Opts(8));
        break;
    }
    EXPECT_TRUE(r.feol.netlist->KeyInputs().empty());
    for (const split::SinkStub& stub : r.feol.sink_stubs) {
      EXPECT_FALSE(attack::IsKeyGateSink(r.feol, stub));
    }
  }
}

}  // namespace
}  // namespace splitlock::defense
