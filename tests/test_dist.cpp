// Multi-process campaign sharding: deterministic shard plans, shard-table
// serialization, merge validation, and the headline contract — a merged
// N-shard campaign is bit-identical to the single-process run, and a warm
// result store serves repeat runs with zero recomputation.
#include <gtest/gtest.h>

#include <filesystem>
#include <string>
#include <vector>

#include "attack/engine.hpp"
#include "circuits/random_circuit.hpp"
#include "core/campaign.hpp"
#include "dist/shard.hpp"
#include "exec/thread_pool.hpp"
#include "obs/metrics.hpp"
#include "store/result_store.hpp"

namespace splitlock::dist {
namespace {

namespace fs = std::filesystem;

// Restores the configured default pool width when a test exits.
struct PoolWidthGuard {
  ~PoolWidthGuard() { exec::ThreadPool::SetDefaultThreadCount(0); }
};

uint64_t Count(const obs::MetricsSnapshot& snap, const std::string& name) {
  const auto it = snap.counts.find(name);
  return it == snap.counts.end() ? 0 : it->second;
}

// --- ShardPlan --------------------------------------------------------------

TEST(ShardPlan, PartitionsJobsExactlyOnce) {
  for (const uint64_t shards : {1u, 2u, 3u, 4u, 7u}) {
    std::vector<int> seen(10, 0);
    for (uint64_t index = 0; index < shards; ++index) {
      const ShardPlan plan{shards, index};
      ASSERT_TRUE(plan.Valid());
      for (const uint64_t job : plan.Select(10)) {
        ASSERT_LT(job, 10u);
        ++seen[job];
        EXPECT_TRUE(plan.Owns(job));
      }
    }
    for (const int count : seen) EXPECT_EQ(count, 1) << shards << " shards";
  }
}

TEST(ShardPlan, RoundRobinInterleaves) {
  const ShardPlan plan{3, 1};
  EXPECT_EQ(plan.Select(8), (std::vector<uint64_t>{1, 4, 7}));
  EXPECT_TRUE(plan.Select(1).empty());  // more shards than jobs
}

TEST(ShardPlan, InvalidPlansRejected) {
  EXPECT_FALSE((ShardPlan{0, 0}).Valid());
  EXPECT_FALSE((ShardPlan{2, 2}).Valid());
  EXPECT_TRUE((ShardPlan{2, 2}).Select(10).empty());
}

// --- ShardTable serialization ----------------------------------------------

ShardTable SmallTable() {
  ShardTable table;
  table.suite = "testsuite";
  table.scale = store::CanonicalDouble(1.0);
  table.flow_hash = 0xaabbccdd00112233ULL;
  table.attack_hash = 0x99887766554433ffULL;
  table.job_count = 2;
  for (uint64_t i = 0; i < 2; ++i) {
    ShardEntry entry;
    entry.job_index = i;
    entry.record.name = "job" + std::to_string(i);
    entry.record.ok = true;
    entry.record.hd_percent = 12.5 + static_cast<double>(i);
    table.entries.push_back(entry);
  }
  return table;
}

TEST(ShardTable, JsonRoundTripIsExact) {
  const ShardTable table = SmallTable();
  const std::string json = table.ToJson();
  const ShardTable back = ShardTable::Parse(json);
  EXPECT_EQ(back.ToJson(), json);
  EXPECT_EQ(back.suite, "testsuite");
  EXPECT_EQ(back.flow_hash, table.flow_hash);
  ASSERT_EQ(back.entries.size(), 2u);
  EXPECT_DOUBLE_EQ(back.entries[1].record.hd_percent, 13.5);
}

TEST(ShardTable, ParseRejectsBadInput) {
  EXPECT_THROW(ShardTable::Parse("not json"), std::runtime_error);
  EXPECT_THROW(ShardTable::Parse("{}"), std::runtime_error);
  std::string wrong_version = SmallTable().ToJson();
  const std::string needle =
      "\"schema_version\":" + std::to_string(store::kResultSchemaVersion);
  const size_t pos = wrong_version.find(needle);
  ASSERT_NE(pos, std::string::npos);
  wrong_version.replace(pos, needle.size(), "\"schema_version\":0");
  EXPECT_THROW(ShardTable::Parse(wrong_version), std::runtime_error);
}

// --- Merge validation -------------------------------------------------------

TEST(MergeShards, RejectsMismatchedCampaigns) {
  ShardTable a = SmallTable();
  ShardTable b = SmallTable();
  b.flow_hash ^= 1;
  EXPECT_THROW(MergeShards({a, b}), std::runtime_error);
  b = SmallTable();
  b.scale = store::CanonicalDouble(0.5);
  EXPECT_THROW(MergeShards({a, b}), std::runtime_error);
  EXPECT_THROW(MergeShards({}), std::runtime_error);
}

TEST(MergeShards, RejectsMissingDuplicateAndOutOfRangeJobs) {
  ShardTable full = SmallTable();
  ShardTable missing = full;
  missing.entries.pop_back();
  EXPECT_THROW(MergeShards({missing}), std::runtime_error);

  ShardTable duplicated = full;
  duplicated.entries.push_back(full.entries[0]);
  EXPECT_THROW(MergeShards({duplicated}), std::runtime_error);

  ShardTable out_of_range = full;
  out_of_range.entries[1].job_index = 7;
  EXPECT_THROW(MergeShards({out_of_range}), std::runtime_error);

  EXPECT_NO_THROW(MergeShards({full}));
}

// --- End-to-end: sharded campaign == single-process campaign ----------------

core::CampaignJob TestJob(int index) {
  circuits::CircuitSpec spec;
  spec.num_inputs = 24;
  spec.num_outputs = 12;
  spec.num_gates = 380;
  spec.seed = 100 + static_cast<uint64_t>(index);
  spec.bias_cone_fraction = 0.15;

  core::CampaignJob job;
  job.name = "j" + std::to_string(index);
  job.make_netlist = [spec] { return circuits::GenerateCircuit(spec); };
  job.flow.key_bits = 16;
  job.flow.seed = 7;
  job.flow.split_layer = 4;
  job.flow.placer_moves_per_cell = 12;
  job.cache_id = "testsuite/" + job.name;
  job.cache_scale = store::CanonicalDouble(1.0);
  return job;
}

std::vector<core::CampaignJob> TestJobs() {
  std::vector<core::CampaignJob> jobs;
  for (int i = 0; i < 3; ++i) jobs.push_back(TestJob(i));
  return jobs;
}

core::CampaignOptions TestCampaignOptions(store::ResultStore* store) {
  core::CampaignOptions options;
  options.score_patterns = 512;
  options.store = store;
  return options;
}

// The CLI's sharded-suite loop, distilled: run the plan-owned subset of
// `jobs` and table the records under the campaign's identity hashes.
ShardTable RunShard(const std::vector<core::CampaignJob>& jobs,
                    const ShardPlan& plan, store::ResultStore* store) {
  ShardTable table;
  table.suite = "testsuite";
  table.scale = store::CanonicalDouble(1.0);
  table.flow_hash = core::FlowOptionsHash(jobs[0].flow);
  table.attack_hash =
      store::PortfolioHash({"proximity"}, 512, /*run_attack=*/true);
  table.job_count = jobs.size();
  table.num_shards = plan.num_shards;
  table.shard_index = plan.shard_index;
  std::vector<core::CampaignJob> owned_jobs;
  const std::vector<uint64_t> owned = plan.Select(jobs.size());
  for (const uint64_t index : owned) owned_jobs.push_back(jobs[index]);
  const std::vector<core::CampaignOutcome> outcomes =
      core::CampaignRunner(TestCampaignOptions(store)).Run(owned_jobs);
  for (size_t i = 0; i < outcomes.size(); ++i) {
    EXPECT_TRUE(outcomes[i].ok) << outcomes[i].error;
    table.entries.push_back(ShardEntry{owned[i], outcomes[i].record});
  }
  return table;
}

TEST(ShardedCampaign, MergedShardsBitIdenticalToSingleProcessRun) {
  const std::vector<core::CampaignJob> jobs = TestJobs();

  // Reference: the whole campaign in one "process", no store.
  const ShardTable single = RunShard(jobs, ShardPlan{1, 0}, nullptr);
  const std::string golden = MergeShards({single}).ToJson();

  // Two shards, recomputed independently (cold, no store) — exactly what
  // two worker processes on two machines would do — then merged in
  // arbitrary shard order.
  const ShardTable half0 = RunShard(jobs, ShardPlan{2, 0}, nullptr);
  const ShardTable half1 = RunShard(jobs, ShardPlan{2, 1}, nullptr);
  EXPECT_EQ(MergeShards({half1, half0}).ToJson(), golden);

  // Warm persistent store: seed it from one full run, then 1- and 4-shard
  // passes must be pure store hits (zero flow/attack recomputation) and
  // still merge to the same bytes. Four shards over three jobs leaves one
  // shard empty — that must merge fine too.
  const std::string dir =
      (fs::temp_directory_path() / "splitlock_dist_test_store").string();
  fs::remove_all(dir);
  {
    store::ResultStore store(dir);
    const ShardTable seeded = RunShard(jobs, ShardPlan{1, 0}, &store);
    EXPECT_EQ(MergeShards({seeded}).ToJson(), golden);
    // One flow record plus one attack record per job.
    EXPECT_EQ(store.Stats().inserts, 2 * jobs.size());
    EXPECT_EQ(store.Stats().hits, 0u);
  }
  {
    store::ResultStore store(dir);
    const ShardTable warm = RunShard(jobs, ShardPlan{1, 0}, &store);
    EXPECT_EQ(MergeShards({warm}).ToJson(), golden);
    EXPECT_EQ(store.Stats().hits, 2 * jobs.size());  // 100% store hits
    EXPECT_EQ(store.Stats().misses, 0u);
    EXPECT_EQ(store.Stats().inserts, 0u);            // zero recomputation

    std::vector<ShardTable> quarters;
    for (uint64_t i = 0; i < 4; ++i) {
      quarters.push_back(RunShard(jobs, ShardPlan{4, i}, &store));
    }
    EXPECT_TRUE(quarters[3].entries.empty());
    EXPECT_EQ(MergeShards(quarters).ToJson(), golden);
  }
  fs::remove_all(dir);
}

TEST(ShardedCampaign, ForceComputeBypassesWarmStoreLookup) {
  const std::string dir =
      (fs::temp_directory_path() / "splitlock_dist_force_store").string();
  fs::remove_all(dir);
  store::ResultStore store(dir);
  const core::CampaignRunner runner(TestCampaignOptions(&store));

  core::CampaignJob job = TestJob(0);
  const core::CampaignOutcome computed = runner.RunOne(job);
  ASSERT_TRUE(computed.ok) << computed.error;
  EXPECT_FALSE(computed.from_store);
  ASSERT_NE(computed.flow.physical.netlist, nullptr);

  // Warm hit: record only, no flow artifacts.
  const core::CampaignOutcome hit = runner.RunOne(job);
  ASSERT_TRUE(hit.ok) << hit.error;
  EXPECT_TRUE(hit.from_store);
  EXPECT_EQ(hit.flow.physical.netlist, nullptr);
  EXPECT_EQ(hit.record.ToJson(false), computed.record.ToJson(false));
  EXPECT_DOUBLE_EQ(hit.score.functional.hd_percent,
                   computed.score.functional.hd_percent);

  // force_compute: consumers that need the in-memory FlowResult always
  // get one, warm store or not — but the record is still (re)inserted.
  job.force_compute = true;
  const core::CampaignOutcome forced = runner.RunOne(job);
  ASSERT_TRUE(forced.ok) << forced.error;
  EXPECT_FALSE(forced.from_store);
  EXPECT_NE(forced.flow.physical.netlist, nullptr);
  EXPECT_EQ(forced.record.ToJson(false), computed.record.ToJson(false));
  fs::remove_all(dir);
}

TEST(ShardedCampaign, FailedOutcomesAreNeverPersistedOrServed) {
  const std::string dir =
      (fs::temp_directory_path() / "splitlock_dist_failed_store").string();
  fs::remove_all(dir);
  store::ResultStore store(dir);
  const core::CampaignRunner runner(TestCampaignOptions(&store));

  // A transiently failing job must not poison the cache for its key.
  core::CampaignJob bad = TestJob(0);
  bad.make_netlist = []() -> Netlist {
    throw std::runtime_error("transient failure");
  };
  const core::CampaignOutcome failed = runner.RunOne(bad);
  EXPECT_FALSE(failed.ok);
  EXPECT_EQ(store.Stats().inserts, 0u);

  // A failed flow record planted by a foreign/stale store is retried, not
  // replayed — and the successful recompute overwrites it.
  const core::CampaignJob good = TestJob(0);
  store::FlowRecord poison;
  poison.name = good.name;
  poison.ok = false;
  poison.error = "stale failure";
  ASSERT_TRUE(store.InsertFlow(runner.KeyFor(good), poison));
  const core::CampaignOutcome recomputed = runner.RunOne(good);
  EXPECT_TRUE(recomputed.ok) << recomputed.error;
  EXPECT_FALSE(recomputed.from_store);
  const auto healed = store.LookupFlow(runner.KeyFor(good));
  ASSERT_TRUE(healed.has_value());
  EXPECT_TRUE(healed->ok);
  fs::remove_all(dir);
}

TEST(ShardedCampaign, PartialHitRunsOnlyMissingEnginesBitExactly) {
  PoolWidthGuard guard;

  // Cold, storeless reference for the superset portfolio.
  core::CampaignJob superset = TestJob(0);
  superset.attacks = {attack::AttackConfig{.engine = "sat"},
                      attack::AttackConfig{.engine = "proximity"}};
  const core::CampaignOutcome golden =
      core::CampaignRunner(TestCampaignOptions(nullptr)).RunOne(superset);
  ASSERT_TRUE(golden.ok) << golden.error;

  const std::string dir =
      (fs::temp_directory_path() / "splitlock_dist_partial_store").string();
  for (const size_t threads : {size_t{1}, size_t{2}, size_t{8}}) {
    exec::ThreadPool::SetDefaultThreadCount(threads);
    fs::remove_all(dir);
    store::ResultStore store(dir);
    const core::CampaignRunner runner(TestCampaignOptions(&store));

    // Warm the subset portfolio: the flow record, the flow artifact, and
    // the sat attack record land in the store.
    core::CampaignJob subset = TestJob(0);
    subset.attacks = {attack::AttackConfig{.engine = "sat"}};
    const core::CampaignOutcome warm = runner.RunOne(subset);
    ASSERT_TRUE(warm.ok) << warm.error;
    EXPECT_EQ(store.Stats().inserts, 2u);  // flow + sat

    // Superset run: flow and sat records hit; only proximity is cold.
    const obs::MetricsSnapshot before = obs::Registry::Instance().Snapshot();
    const core::CampaignOutcome partial = runner.RunOne(superset);
    const obs::MetricsSnapshot delta = obs::MetricsSnapshot::Delta(
        before, obs::Registry::Instance().Snapshot());
    ASSERT_TRUE(partial.ok) << partial.error;
    EXPECT_FALSE(partial.from_store);  // one cold engine ⇒ computed path

    EXPECT_EQ(Count(delta, "store.record.hits"), 2u)
        << "flow + sat records should both hit";
    EXPECT_EQ(Count(delta, "store.record.misses"), 1u);   // proximity
    EXPECT_EQ(Count(delta, "store.record.inserts"), 1u);  // proximity only
    EXPECT_EQ(Count(delta, "attack.engine.runs"), 1u)
        << "only the missing engine may run";
    EXPECT_EQ(Count(delta, "attack.sat.rounds"), 0u);  // sat never re-ran
    EXPECT_EQ(partial.flow.times.place_s, 0.0);  // flow replayed, not re-run
    ASSERT_EQ(partial.attacks.size(), 1u);  // only the fresh engine's report
    EXPECT_EQ(partial.attacks[0].engine, "proximity");

    // The assembled record is byte-identical to the cold superset run.
    EXPECT_EQ(partial.record.ToJson(false), golden.record.ToJson(false));

    // And the partial run published the missing piece: the next superset
    // run is a pure full hit with the same bytes.
    const core::CampaignOutcome full = runner.RunOne(superset);
    ASSERT_TRUE(full.ok) << full.error;
    EXPECT_TRUE(full.from_store);
    EXPECT_EQ(full.record.ToJson(false), golden.record.ToJson(false));
  }
  fs::remove_all(dir);
}

}  // namespace
}  // namespace splitlock::dist
