// Equivalence and regression coverage for the event-driven hot paths:
// the fanout-cone DetectMask rewrite (vs the reference full re-simulation)
// and the incremental DIP-round encoder (vs full EncodeNetlist), plus the
// batched DipOracle frontend.
#include <gtest/gtest.h>

#include <bit>
#include <span>
#include <vector>

#include "atpg/fault.hpp"
#include "atpg/fault_sim.hpp"
#include "attack/sat_attack.hpp"
#include "exec/stream_rng.hpp"
#include "exec/thread_pool.hpp"
#include "circuits/c17.hpp"
#include "circuits/random_circuit.hpp"
#include "lock/atpg_lock.hpp"
#include "lock/epic.hpp"
#include "sat/solver.hpp"
#include "sat/tseitin.hpp"
#include "sim/simulator.hpp"
#include "util/rng.hpp"

namespace splitlock {
namespace {

Netlist RandomCircuit(uint64_t seed, size_t gates = 300, size_t inputs = 14,
                      size_t outputs = 8) {
  circuits::CircuitSpec spec;
  spec.num_inputs = inputs;
  spec.num_outputs = outputs;
  spec.num_gates = gates;
  spec.seed = seed;
  return circuits::GenerateCircuit(spec);
}

// --- Event-driven DetectMask ------------------------------------------------

class EventDetect : public ::testing::TestWithParam<uint64_t> {};

TEST_P(EventDetect, MatchesFullResimOnRandomCircuits) {
  const Netlist nl = RandomCircuit(GetParam());
  const std::vector<atpg::Fault> faults =
      atpg::CollapseFaults(nl, atpg::EnumerateStemFaults(nl));
  ASSERT_FALSE(faults.empty());
  atpg::FaultSimulator sim(nl);
  Rng rng(GetParam() ^ 0xD1CE);
  for (int word = 0; word < 4; ++word) {
    sim.LoadRandomPatterns(rng);
    for (const atpg::Fault& f : faults) {
      const uint64_t full = sim.DetectMaskFull(f);
      const uint64_t event = sim.DetectMask(f);
      ASSERT_EQ(event, full) << atpg::FaultName(nl, f) << " word " << word;
    }
  }
}

TEST_P(EventDetect, SharedTopologyMatchesOwned) {
  const Netlist nl = RandomCircuit(GetParam(), 200);
  const atpg::SimTopology topo(nl);
  atpg::FaultSimulator owned(nl);
  atpg::FaultSimulator shared(nl, topo);
  const std::vector<atpg::Fault> faults =
      atpg::CollapseFaults(nl, atpg::EnumerateStemFaults(nl));
  Rng rng(GetParam());
  std::vector<uint64_t> words(nl.inputs().size());
  for (uint64_t& w : words) w = rng.NextWord();
  owned.LoadPatterns(words);
  shared.LoadPatterns(words);
  for (const atpg::Fault& f : faults) {
    ASSERT_EQ(owned.DetectMask(f), shared.DetectMask(f));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EventDetect,
                         ::testing::Range<uint64_t>(1, 11));

TEST(EventDetect, AggregateSweepsMatchC17Reference) {
  const Netlist nl = circuits::MakeC17();
  const std::vector<atpg::Fault> faults =
      atpg::CollapseFaults(nl, atpg::EnumerateStemFaults(nl));
  const atpg::CoverageResult cov = atpg::FaultCoverage(nl, faults, 1024, 3);
  EXPECT_EQ(cov.detected, cov.total_faults);
}

TEST(EventDetect, FrontierDiesBeforeOutputsEarlyExit) {
  // y = (a AND b) OR c. With b=0 and c=1 the fault a/sa1 is excited but the
  // difference dies at the AND (b=0 masks) — and even if it got through,
  // c=1 masks at the OR. The event sweep must stop after evaluating the
  // AND gate alone; the reference resim walks the whole suffix.
  Netlist nl("mask");
  const NetId a = nl.AddInput("a");
  const NetId b = nl.AddInput("b");
  const NetId c = nl.AddInput("c");
  const NetId x = nl.AddGate(GateOp::kAnd, {a, b});
  const NetId y = nl.AddGate(GateOp::kOr, {x, c});
  nl.AddOutput(y, "y");
  atpg::FaultSimulator sim(nl);
  sim.LoadPatterns(std::vector<uint64_t>{0, 0, ~0ULL});  // a=0 b=0 c=1
  const atpg::Fault f{a, true};  // a stuck-at-1: excited in every lane
  EXPECT_EQ(sim.DetectMaskFull(f), 0u);
  const size_t full_evals = sim.GateEvals();
  EXPECT_EQ(sim.DetectMask(f), 0u);
  const size_t event_evals = sim.GateEvals();
  EXPECT_EQ(event_evals, 1u);  // only the AND ran; frontier died there
  EXPECT_GT(full_evals, event_evals);
}

TEST(EventDetect, UnexcitedFaultDoesNoWork) {
  Netlist nl("unexcited");
  const NetId a = nl.AddInput("a");
  const NetId y = nl.AddGate(GateOp::kBuf, {a});
  nl.AddOutput(y, "y");
  atpg::FaultSimulator sim(nl);
  sim.LoadPatterns(std::vector<uint64_t>{~0ULL});
  EXPECT_EQ(sim.DetectMask(atpg::Fault{a, true}), 0u);  // a already 1
  EXPECT_EQ(sim.GateEvals(), 0u);
}

TEST(EventDetect, OversizedGateFailsLoudly) {
  Netlist nl("overfanin");
  std::vector<NetId> ins;
  for (int i = 0; i < 5; ++i) {
    ins.push_back(nl.AddInput("i" + std::to_string(i)));
  }
  EXPECT_THROW(nl.AddGate(GateOp::kAnd, std::span<const NetId>(ins)),
               std::invalid_argument);
}

// --- Multi-word DetectMasks -------------------------------------------------

struct PoolWidthGuard {
  ~PoolWidthGuard() { exec::ThreadPool::SetDefaultThreadCount(0); }
};

class WideDetect : public ::testing::TestWithParam<uint64_t> {};

TEST_P(WideDetect, MatchesPerWordDetectMaskAndFull) {
  const Netlist nl = RandomCircuit(GetParam());
  const std::vector<atpg::Fault> faults =
      atpg::CollapseFaults(nl, atpg::EnumerateStemFaults(nl));
  ASSERT_FALSE(faults.empty());
  const atpg::SimTopology topo(nl);
  for (const size_t width : {size_t{1}, size_t{2}, size_t{4}, size_t{8}}) {
    atpg::FaultSimulator wide(nl, topo);
    atpg::FaultSimulator narrow(nl, topo);
    // Same Rng state: word w of the wide load is exactly what the w-th
    // consecutive LoadRandomPatterns call draws.
    Rng wide_rng(GetParam() ^ (width << 8));
    Rng narrow_rng(GetParam() ^ (width << 8));
    wide.LoadRandomPatternsWide(wide_rng, width);
    ASSERT_EQ(wide.sweep_width(), width);
    std::vector<std::vector<uint64_t>> expected(
        faults.size(), std::vector<uint64_t>(width));
    for (size_t w = 0; w < width; ++w) {
      narrow.LoadRandomPatterns(narrow_rng);
      for (size_t f = 0; f < faults.size(); ++f) {
        expected[f][w] = narrow.DetectMask(faults[f]);
        ASSERT_EQ(narrow.DetectMaskFull(faults[f]), expected[f][w])
            << atpg::FaultName(nl, faults[f]) << " W=" << width
            << " word " << w;
      }
    }
    std::vector<uint64_t> got(width);
    for (size_t f = 0; f < faults.size(); ++f) {
      wide.DetectMasks(faults[f], got);
      ASSERT_EQ(got, expected[f])
          << atpg::FaultName(nl, faults[f]) << " W=" << width;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, WideDetect, ::testing::Range<uint64_t>(1, 6));

TEST(WideDetect, GateEvalsCountPerGateWordTotal) {
  // y = (a AND b) OR c, as in FrontierDiesBeforeOutputsEarlyExit.
  Netlist nl("wide_evals");
  const NetId a = nl.AddInput("a");
  const NetId b = nl.AddInput("b");
  const NetId c = nl.AddInput("c");
  const NetId x = nl.AddGate(GateOp::kAnd, {a, b});
  const NetId y = nl.AddGate(GateOp::kOr, {x, c});
  nl.AddOutput(y, "y");
  atpg::FaultSimulator sim(nl);
  const atpg::Fault f{a, true};
  uint64_t masks[2];

  // Both words: a=0 b=0 c=1 — the difference dies at the AND in every
  // word, so the shared frontier evaluates one gate. GateEvals is the
  // per evaluated (gate, word) total for the whole sweep: 1 gate x 2
  // live words.
  sim.LoadPatternsWide(std::vector<uint64_t>{0, 0, 0, 0, ~0ULL, ~0ULL}, 2);
  sim.DetectMasks(f, std::span<uint64_t>(masks, 2));
  EXPECT_EQ(masks[0], 0u);
  EXPECT_EQ(masks[1], 0u);
  EXPECT_EQ(sim.GateEvals(), 2u);

  // Word 1 propagates (b=1, c=0) but word 0's difference dies at the AND:
  // the OR is scheduled once for both words, yet only word 1 is still live
  // there — 2 words at the AND + 1 word at the OR.
  sim.LoadPatternsWide(std::vector<uint64_t>{0, 0, 0, ~0ULL, ~0ULL, 0}, 2);
  sim.DetectMasks(f, std::span<uint64_t>(masks, 2));
  EXPECT_EQ(masks[0], 0u);
  EXPECT_EQ(masks[1], ~0ULL);
  EXPECT_EQ(sim.GateEvals(), 3u);
}

TEST(WideDetect, UnexcitedInAllWordsDoesNoWork) {
  Netlist nl("wide_unexcited");
  const NetId a = nl.AddInput("a");
  const NetId y = nl.AddGate(GateOp::kBuf, {a});
  nl.AddOutput(y, "y");
  atpg::FaultSimulator sim(nl);
  sim.LoadPatternsWide(std::vector<uint64_t>{~0ULL, ~0ULL, ~0ULL}, 3);
  uint64_t masks[3];
  sim.DetectMasks(atpg::Fault{a, true}, std::span<uint64_t>(masks, 3));
  EXPECT_EQ(masks[0], 0u);
  EXPECT_EQ(masks[1], 0u);
  EXPECT_EQ(masks[2], 0u);
  EXPECT_EQ(sim.GateEvals(), 0u);
}

TEST(AggregateSweep, TailWordMaskAndRetilingMatchSerialReference) {
  const Netlist nl = RandomCircuit(3, 300);
  const std::vector<atpg::Fault> faults =
      atpg::CollapseFaults(nl, atpg::EnumerateStemFaults(nl));
  ASSERT_FALSE(faults.empty());
  const uint64_t patterns = 173;  // 2 full words + a 45-lane tail word
  const uint64_t seed = 11;
  // Serial reference: one word at a time from the same counter-based
  // stimulus streams the sharded sweep uses, dead tail lanes masked out.
  const uint64_t words = (patterns + 63) / 64;
  std::vector<uint64_t> expected(faults.size(), 0);
  atpg::FaultSimulator sim(nl);
  std::vector<uint64_t> stim(nl.inputs().size());
  for (uint64_t w = 0; w < words; ++w) {
    exec::StreamRng rng(seed, exec::StreamDomain::kStimulus, w);
    for (uint64_t& s : stim) s = rng.NextWord();
    sim.LoadPatterns(stim);
    const uint64_t live = patterns - w * 64;
    const uint64_t lane_mask = live >= 64 ? ~0ULL : (1ULL << live) - 1;
    for (size_t f = 0; f < faults.size(); ++f) {
      expected[f] += static_cast<uint64_t>(
          std::popcount(sim.DetectMask(faults[f]) & lane_mask));
    }
  }
  EXPECT_EQ(atpg::DetectionProfile(nl, faults, patterns, seed), expected);
  const atpg::CoverageResult cov =
      atpg::FaultCoverage(nl, faults, patterns, seed);
  size_t detected = 0;
  for (const uint64_t count : expected) detected += count > 0 ? 1 : 0;
  EXPECT_EQ(cov.detected, detected);
  EXPECT_EQ(cov.total_faults, faults.size());
}

TEST(AggregateSweep, BitIdenticalAcrossThreadCounts) {
  PoolWidthGuard guard;
  const Netlist nl = RandomCircuit(4, 400);
  const std::vector<atpg::Fault> faults =
      atpg::CollapseFaults(nl, atpg::EnumerateStemFaults(nl));
  // 2100 patterns = 33 words: multiple word shards including a tail word,
  // so the result folds across a real (fault-block x word-shard) grid.
  std::vector<std::vector<uint64_t>> profiles;
  for (const size_t threads : {1u, 2u, 8u}) {
    exec::ThreadPool::SetDefaultThreadCount(threads);
    profiles.push_back(atpg::DetectionProfile(nl, faults, 2100, 13));
  }
  EXPECT_EQ(profiles[1], profiles[0]);
  EXPECT_EQ(profiles[2], profiles[0]);
}

// --- Incremental DIP encoder ------------------------------------------------

class IncrementalDip : public ::testing::TestWithParam<uint64_t> {};

TEST_P(IncrementalDip, BitIdenticalToFullEncodeNetlist) {
  const Netlist original = RandomCircuit(GetParam(), 250);
  Rng lock_rng(GetParam());
  const lock::EpicResult locked =
      lock::LockWithEpic(original, 12, lock_rng);
  const Netlist& nl = locked.locked;
  const size_t num_pis = nl.inputs().size();
  const size_t num_keys = nl.KeyInputs().size();
  ASSERT_GT(num_keys, 0u);

  // Two fresh solver/encoder pairs receive the same call sequence; the
  // incremental path must leave them in bit-identical states: same
  // variable count and literal-identical output vectors, round after
  // round (cache reuse across rounds included).
  sat::Solver full_solver, inc_solver;
  sat::StructuralEncoder full_enc(full_solver), inc_enc(inc_solver);
  std::vector<sat::Lit> full_keys(num_keys), inc_keys(num_keys);
  for (auto& l : full_keys) l = full_enc.FreshLit();
  for (auto& l : inc_keys) l = inc_enc.FreshLit();
  ASSERT_EQ(full_keys, inc_keys);

  sat::IncrementalDipEncoder dip_enc(inc_enc, nl);
  EXPECT_LT(dip_enc.ConeSize(), nl.NumLogicGates());

  Rng rng(GetParam() ^ 0xD1F);
  for (int round = 0; round < 6; ++round) {
    std::vector<uint8_t> dip(num_pis);
    for (auto& b : dip) b = rng.NextBool() ? 1 : 0;
    std::vector<sat::Lit> const_in(num_pis);
    for (size_t i = 0; i < num_pis; ++i) {
      const_in[i] = dip[i] ? full_enc.TrueLit() : full_enc.FalseLit();
    }
    const std::vector<sat::Lit> full_outs =
        full_enc.EncodeNetlist(nl, const_in, full_keys);
    dip_enc.SetDip(dip);
    const std::vector<sat::Lit> inc_outs = dip_enc.Encode(inc_keys);
    ASSERT_EQ(inc_outs, full_outs) << "round " << round;
    ASSERT_EQ(inc_solver.NumVars(), full_solver.NumVars())
        << "round " << round;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, IncrementalDip,
                         ::testing::Range<uint64_t>(1, 7));

TEST(IncrementalDip, HandlesKeylessNetlist) {
  const Netlist nl = circuits::MakeC17();
  sat::Solver solver;
  sat::StructuralEncoder enc(solver);
  sat::IncrementalDipEncoder dip_enc(enc, nl);
  EXPECT_EQ(dip_enc.ConeSize(), 0u);
  std::vector<uint8_t> dip(nl.inputs().size(), 1);
  dip_enc.SetDip(dip);
  const std::vector<sat::Lit> outs = dip_enc.Encode({});
  // Everything folds: outputs are constants matching plain simulation.
  Simulator sim(nl);
  std::vector<uint64_t> words(nl.inputs().size(), ~0ULL);
  sim.SetInputWords(words);
  sim.Run();
  ASSERT_EQ(outs.size(), nl.outputs().size());
  for (size_t o = 0; o < outs.size(); ++o) {
    const sat::Lit want =
        (sim.OutputWord(o) & 1) != 0 ? enc.TrueLit() : enc.FalseLit();
    EXPECT_EQ(outs[o], want);
  }
}

TEST(SatAttackPaths, IncrementalAndLegacyResultsAreBitIdentical) {
  const Netlist original = RandomCircuit(42, 350, 16, 8);
  lock::AtpgLockOptions opts;
  opts.key_bits = 16;
  opts.seed = 42;
  opts.verify_lec = false;
  const lock::AtpgLockResult locked = lock::LockWithAtpg(original, opts);

  attack::SatAttackOptions incremental, legacy;
  incremental.incremental_dip_encoding = true;
  legacy.incremental_dip_encoding = false;
  const attack::SatAttackResult a =
      attack::RunSatAttack(locked.locked, original, incremental);
  const attack::SatAttackResult b =
      attack::RunSatAttack(locked.locked, original, legacy);
  EXPECT_EQ(a.finished, b.finished);
  EXPECT_EQ(a.key_found, b.key_found);
  EXPECT_EQ(a.dips_used, b.dips_used);
  EXPECT_EQ(a.recovered_key, b.recovered_key);
  EXPECT_EQ(a.functionally_correct, b.functionally_correct);
}

// --- Batched oracle ---------------------------------------------------------

TEST(DipOracle, BatchedResponsesMatchSequentialSimulation) {
  const Netlist nl = RandomCircuit(7, 200, 12, 6);
  attack::DipOracle oracle(nl);
  Simulator reference(nl);
  Rng rng(7);
  constexpr size_t kQueries = 9;
  std::vector<std::vector<uint8_t>> queries;
  for (size_t q = 0; q < kQueries; ++q) {
    std::vector<uint8_t> bits(nl.inputs().size());
    for (auto& b : bits) b = rng.NextBool() ? 1 : 0;
    EXPECT_EQ(oracle.Enqueue(bits), q);
    queries.push_back(std::move(bits));
  }
  EXPECT_EQ(oracle.pending(), kQueries);
  oracle.Flush();  // one SoA sweep answers all queries
  EXPECT_EQ(oracle.pending(), 0u);
  EXPECT_EQ(oracle.answered(), kQueries);
  EXPECT_EQ(oracle.flushes(), 1u);
  EXPECT_EQ(oracle.max_batch(), kQueries);
  for (size_t q = 0; q < kQueries; ++q) {
    for (size_t i = 0; i < queries[q].size(); ++i) {
      reference.SetSourceWord(nl.inputs()[i], queries[q][i] ? ~0ULL : 0ULL);
    }
    reference.Run();
    for (size_t o = 0; o < nl.outputs().size(); ++o) {
      EXPECT_EQ(oracle.OutputBit(q, o), (reference.OutputWord(o) & 1) != 0)
          << "query " << q << " po " << o;
    }
  }
}

}  // namespace
}  // namespace splitlock
