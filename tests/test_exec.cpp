// Exec-layer contract tests: the thread pool runs what it is given, the
// deterministic primitives cover their ranges exactly once, counter-based
// streams reproduce, and — the load-bearing guarantee — every parallel
// sweep in the library (fault coverage, HD/OER, oracle-less probe,
// proximity scoring) is bit-identical at 1, 2 and 8 threads.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

#include "atpg/fault.hpp"
#include "atpg/fault_sim.hpp"
#include "attack/proximity.hpp"
#include "attack/sat_attack.hpp"
#include "circuits/c17.hpp"
#include "circuits/random_circuit.hpp"
#include "core/flow.hpp"
#include "exec/parallel.hpp"
#include "exec/stream_rng.hpp"
#include "exec/thread_pool.hpp"
#include "lock/epic.hpp"
#include "sim/metrics.hpp"
#include "sim/simulator.hpp"

namespace splitlock {
namespace {

// Restores the default pool width when a test body returns.
struct PoolWidthGuard {
  ~PoolWidthGuard() { exec::ThreadPool::SetDefaultThreadCount(0); }
};

TEST(ThreadPool, RunsEverySubmittedTask) {
  exec::ThreadPool pool(4);
  std::atomic<int> count{0};
  exec::TaskGroup group(pool);
  for (int i = 0; i < 100; ++i) {
    group.Run([&count] { count.fetch_add(1); });
  }
  group.Wait();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, TaskGroupPropagatesExceptions) {
  exec::ThreadPool pool(2);
  exec::TaskGroup group(pool);
  group.Run([] { throw std::runtime_error("boom"); });
  EXPECT_THROW(group.Wait(), std::runtime_error);
}

TEST(ParallelFor, CoversRangeExactlyOnce) {
  PoolWidthGuard guard;
  for (size_t threads : {1u, 2u, 8u}) {
    exec::ThreadPool::SetDefaultThreadCount(threads);
    std::vector<std::atomic<int>> hits(1000);
    exec::ParallelFor(1000, 7, [&](size_t lo, size_t hi) {
      for (size_t i = lo; i < hi; ++i) hits[i].fetch_add(1);
    });
    for (size_t i = 0; i < hits.size(); ++i) {
      ASSERT_EQ(hits[i].load(), 1) << "index " << i << " @ " << threads;
    }
  }
}

TEST(ParallelFor, NestedRegionsDoNotDeadlock) {
  PoolWidthGuard guard;
  exec::ThreadPool::SetDefaultThreadCount(2);
  std::atomic<int> total{0};
  exec::ParallelFor(8, 1, [&](size_t lo, size_t hi) {
    for (size_t i = lo; i < hi; ++i) {
      exec::ParallelFor(8, 1,
                        [&](size_t l, size_t h) {
                          total.fetch_add(static_cast<int>(h - l));
                        });
    }
  });
  EXPECT_EQ(total.load(), 64);
}

TEST(ParallelReduce, FloatSumIsBitIdenticalAcrossWidths) {
  PoolWidthGuard guard;
  std::vector<double> values(10000);
  for (size_t i = 0; i < values.size(); ++i) {
    values[i] = 1.0 / static_cast<double>(i + 1);
  }
  std::vector<double> results;
  for (size_t threads : {1u, 2u, 8u}) {
    exec::ThreadPool::SetDefaultThreadCount(threads);
    results.push_back(exec::ParallelReduce<double>(
        values.size(), 64, 0.0,
        [&](size_t lo, size_t hi) {
          return std::accumulate(values.begin() + lo, values.begin() + hi,
                                 0.0);
        },
        [](double x, double y) { return x + y; }));
  }
  EXPECT_EQ(results[0], results[1]);  // bitwise, not approximate
  EXPECT_EQ(results[0], results[2]);
}

TEST(StreamRng, ReproducibleAndStreamIndependent) {
  exec::StreamRng a(42, exec::StreamDomain::kStimulus, 7);
  exec::StreamRng b(42, exec::StreamDomain::kStimulus, 7);
  exec::StreamRng c(42, exec::StreamDomain::kStimulus, 8);
  exec::StreamRng d(42, exec::StreamDomain::kKeySample, 7);
  bool diff_stream = false;
  bool diff_domain = false;
  for (int i = 0; i < 64; ++i) {
    const uint64_t va = a.NextWord();
    EXPECT_EQ(va, b.NextWord());
    diff_stream = diff_stream || va != c.NextWord();
    diff_domain = diff_domain || va != d.NextWord();
  }
  EXPECT_TRUE(diff_stream);
  EXPECT_TRUE(diff_domain);
}

TEST(Simulator, RunBatchMatchesRepeatedSingleWordRuns) {
  circuits::CircuitSpec spec;
  spec.num_inputs = 12;
  spec.num_outputs = 6;
  spec.num_gates = 300;
  spec.seed = 9;
  const Netlist nl = circuits::GenerateCircuit(spec);

  constexpr size_t kWidth = 5;
  Rng rng(123);
  std::vector<std::vector<uint64_t>> rows(
      nl.inputs().size(), std::vector<uint64_t>(kWidth));
  for (auto& row : rows) {
    for (uint64_t& w : row) w = rng.NextWord();
  }

  Simulator batch(nl);
  batch.BeginBatch(kWidth);
  for (size_t i = 0; i < nl.inputs().size(); ++i) {
    batch.SetSourceBatch(nl.inputs()[i], rows[i]);
  }
  batch.RunBatch();

  Simulator single(nl);
  for (size_t w = 0; w < kWidth; ++w) {
    for (size_t i = 0; i < nl.inputs().size(); ++i) {
      single.SetSourceWord(nl.inputs()[i], rows[i][w]);
    }
    single.Run();
    for (NetId n = 0; n < nl.NumNets(); ++n) {
      ASSERT_EQ(single.NetWord(n), batch.BatchNetWord(n, w))
          << "net " << n << " word " << w;
    }
    for (size_t o = 0; o < nl.outputs().size(); ++o) {
      ASSERT_EQ(single.OutputWord(o), batch.BatchOutputWord(o, w));
    }
  }
}

TEST(Simulator, RunBatchHonorsKeyBits) {
  const Netlist original = circuits::MakeC17();
  Rng lock_rng(4);
  const lock::EpicResult locked = lock::LockWithEpic(original, 4, lock_rng);
  const Netlist& nl = locked.locked;

  Simulator batch(nl);
  batch.BeginBatch(3);
  batch.SetKeyBitsBatch(locked.key);
  std::vector<uint64_t> row(3);
  Rng rng(5);
  for (GateId pi : nl.inputs()) {
    for (uint64_t& w : row) w = rng.NextWord();
    batch.SetSourceBatch(pi, row);
  }
  batch.RunBatch();  // smoke: correct key must not crash and produces words
  (void)batch.BatchOutputWord(0, 2);
}

// The determinism contract of the ISSUE: the same seed must give
// bit-identical results at ANY thread count for every sharded sweep.
TEST(ThreadInvariance, FaultCoverageHdOerProbeAndProximity) {
  PoolWidthGuard guard;

  circuits::CircuitSpec spec;
  spec.num_inputs = 14;
  spec.num_outputs = 7;
  spec.num_gates = 350;
  spec.seed = 21;
  const Netlist nl = circuits::GenerateCircuit(spec);
  const std::vector<atpg::Fault> faults =
      atpg::CollapseFaults(nl, atpg::EnumerateStemFaults(nl));

  Rng lock_rng(6);
  const lock::EpicResult locked = lock::LockWithEpic(nl, 8, lock_rng);
  std::vector<uint8_t> wrong_key = locked.key;
  wrong_key[0] ^= 1;

  // 2500 patterns: not a multiple of 64, so tail-lane masking is exercised
  // in every sweep.
  constexpr uint64_t kPatterns = 2500;

  struct Snapshot {
    size_t detected = 0;
    std::vector<uint64_t> profile;
    double hd = 0.0, oer = 0.0;
    bool agree_right = false, agree_wrong = false;
    size_t distinct = 0;
  };
  std::vector<Snapshot> snaps;
  for (size_t threads : {1u, 2u, 8u}) {
    exec::ThreadPool::SetDefaultThreadCount(threads);
    Snapshot s;
    s.detected = atpg::FaultCoverage(nl, faults, kPatterns, 77).detected;
    s.profile = atpg::DetectionProfile(nl, faults, kPatterns, 77);
    const FunctionalDiff d = CompareFunctional(
        nl, locked.locked, kPatterns, 77, {}, wrong_key);
    s.hd = d.hd_percent;
    s.oer = d.oer_percent;
    s.agree_right =
        RandomPatternsAgree(nl, locked.locked, kPatterns, 77, {}, locked.key);
    s.agree_wrong =
        RandomPatternsAgree(nl, locked.locked, kPatterns, 77, {}, wrong_key);
    s.distinct =
        attack::ProbeOracleLessKeySpace(locked.locked, 40, kPatterns, 77)
            .distinct_functions;
    snaps.push_back(std::move(s));
  }
  for (size_t i = 1; i < snaps.size(); ++i) {
    EXPECT_EQ(snaps[0].detected, snaps[i].detected);
    EXPECT_EQ(snaps[0].profile, snaps[i].profile);
    EXPECT_EQ(snaps[0].hd, snaps[i].hd);  // bitwise
    EXPECT_EQ(snaps[0].oer, snaps[i].oer);
    EXPECT_EQ(snaps[0].agree_right, snaps[i].agree_right);
    EXPECT_EQ(snaps[0].agree_wrong, snaps[i].agree_wrong);
    EXPECT_EQ(snaps[0].distinct, snaps[i].distinct);
  }
  EXPECT_TRUE(snaps[0].agree_right);
  EXPECT_FALSE(snaps[0].agree_wrong);
  EXPECT_GT(snaps[0].detected, 0u);
}

TEST(ThreadInvariance, ProximityAttackAssignment) {
  PoolWidthGuard guard;
  circuits::CircuitSpec spec;
  spec.num_inputs = 12;
  spec.num_outputs = 6;
  spec.num_gates = 250;
  spec.seed = 33;
  const Netlist original = circuits::GenerateCircuit(spec);
  core::FlowOptions options;
  options.key_bits = 16;
  options.seed = 33;
  const core::FlowResult flow = core::RunSecureFlow(original, options);

  std::vector<split::Assignment> assignments;
  for (size_t threads : {1u, 2u, 8u}) {
    exec::ThreadPool::SetDefaultThreadCount(threads);
    assignments.push_back(attack::RunProximityAttack(flow.feol).assignment);
  }
  EXPECT_EQ(assignments[0], assignments[1]);
  EXPECT_EQ(assignments[0], assignments[2]);
}

// Regression for the tail-word fingerprint bug: with patterns == 1 the
// probe must fingerprint ONE lane. The circuit's key only changes the
// output for input pattern (a=1, b=0); when the single live pattern is not
// (1,0) both keys induce the same observed function, so exactly one
// distinct fingerprint must be counted. The unmasked implementation leaked
// the other 63 (dead) lanes into the fingerprint and counted two.
TEST(OracleLessProbe, TailWordLanesAreMasked) {
  Netlist nl("tail");
  const NetId a = nl.AddInput("a");
  const NetId b = nl.AddInput("b");
  const NetId k = nl.AddGate(GateOp::kKeyIn, {}, "k");
  const NetId not_b = nl.AddGate(GateOp::kInv, {b});
  const NetId a_nb = nl.AddGate(GateOp::kAnd, {a, not_b});
  const NetId flip = nl.AddGate(GateOp::kAnd, {k, a_nb});
  const NetId base = nl.AddGate(GateOp::kAnd, {a, b});
  const NetId out = nl.AddGate(GateOp::kXor, {base, flip});
  nl.AddOutput(out, "y");

  // Find a seed whose first stimulus lane is NOT (a=1, b=0), so the two key
  // values agree on the only live pattern.
  uint64_t seed = 0;
  for (uint64_t s = 1; s < 64; ++s) {
    exec::StreamRng rng(s, exec::StreamDomain::kStimulus, 0);
    const uint64_t wa = rng.NextWord();
    const uint64_t wb = rng.NextWord();
    if (!((wa & 1) == 1 && (wb & 1) == 0)) {
      seed = s;
      break;
    }
  }
  ASSERT_NE(seed, 0u);

  // Enough samples that both key values certainly occur.
  const attack::OracleLessProbe probe =
      attack::ProbeOracleLessKeySpace(nl, 32, /*patterns=*/1, seed);
  EXPECT_EQ(probe.sampled_keys, 32u);
  EXPECT_EQ(probe.distinct_functions, 1u);
}

}  // namespace
}  // namespace splitlock
