#include <gtest/gtest.h>

#include "attack/metrics.hpp"
#include "attack/proximity.hpp"
#include "circuits/random_circuit.hpp"
#include "core/flow.hpp"
#include "lec/lec.hpp"
#include "lock/key.hpp"
#include "phys/router.hpp"
#include "sim/metrics.hpp"

namespace splitlock::core {
namespace {

Netlist TestCircuit(uint64_t seed, size_t gates = 800) {
  circuits::CircuitSpec spec;
  spec.num_inputs = 28;
  spec.num_outputs = 14;
  spec.num_gates = gates;
  spec.seed = seed;
  spec.bias_cone_fraction = 0.15;
  return circuits::GenerateCircuit(spec);
}

FlowOptions SmallOptions(uint64_t seed) {
  FlowOptions opts;
  opts.key_bits = 32;
  opts.seed = seed;
  opts.split_layer = 4;
  opts.placer_moves_per_cell = 25;
  return opts;
}

TEST(SecureFlow, EndToEndProducesAllArtifacts) {
  const Netlist original = TestCircuit(1);
  const FlowResult flow = RunSecureFlow(original, SmallOptions(1));
  // Lock stage.
  EXPECT_EQ(flow.lock.key.size(), 32u);
  EXPECT_TRUE(flow.lock.lec_equivalent);
  // Physical stage.
  ASSERT_NE(flow.physical.netlist, nullptr);
  ASSERT_NE(flow.physical.layout, nullptr);
  EXPECT_TRUE(flow.physical.netlist->KeyInputs().empty());  // realized
  EXPECT_GT(flow.physical.cost.die_area_um2, 0.0);
  EXPECT_GT(flow.physical.cost.power_uw, 0.0);
  EXPECT_GT(flow.physical.cost.critical_path_ps, 0.0);
  EXPECT_EQ(flow.physical.lift.key_nets_lifted, 32u);
  // Split stage.
  EXPECT_EQ(flow.feol.split_layer, 4);
  EXPECT_GT(flow.feol.sink_stubs.size(), 0u);
  EXPECT_EQ(flow.feol.netlist, flow.physical.netlist.get());
}

TEST(SecureFlow, RealizedNetlistComputesOriginalFunction) {
  const Netlist original = TestCircuit(2);
  const FlowResult flow = RunSecureFlow(original, SmallOptions(2));
  EXPECT_TRUE(
      RandomPatternsAgree(original, *flow.physical.netlist, 2048, 2));
}

TEST(SecureFlow, AllKeyNetsBrokenAtSplit) {
  const Netlist original = TestCircuit(3);
  const FlowResult flow = RunSecureFlow(original, SmallOptions(3));
  for (NetId kn : phys::KeyNetsOf(*flow.physical.netlist)) {
    EXPECT_TRUE(flow.feol.net_broken[kn]);
  }
}

TEST(SecureFlow, LiftLayerDefaultsToSplitPlusOne) {
  FlowOptions opts = SmallOptions(4);
  opts.split_layer = 6;
  EXPECT_EQ(opts.EffectiveLiftLayer(), 7);
  opts.lift_layer = 5;
  EXPECT_EQ(opts.EffectiveLiftLayer(), 5);
}

TEST(SecureFlow, CostDeltasAgainstBaseline) {
  const Netlist original = TestCircuit(5, 1000);
  FlowOptions opts = SmallOptions(5);
  // Unprotected baseline.
  const PhysicalBundle baseline = BuildPhysical(original, opts);
  const FlowResult secure = RunSecureFlow(original, opts);
  const CostDelta delta = CompareCost(baseline.cost, secure.physical.cost);
  // Sanity: deltas are finite percentages in a plausible band.
  EXPECT_GT(delta.area_percent, -60.0);
  EXPECT_LT(delta.area_percent, 60.0);
  EXPECT_GT(delta.power_percent, -60.0);
  EXPECT_LT(delta.power_percent, 150.0);
  EXPECT_GT(delta.timing_percent, -60.0);
  EXPECT_LT(delta.timing_percent, 150.0);
}

TEST(SecureFlow, PreliftReferenceFlow) {
  // Prelift = locked netlist through a *regular* PD flow: TIE cells
  // annealed (not randomized), no lifting.
  const Netlist original = TestCircuit(6);
  FlowOptions opts = SmallOptions(6);
  const lock::AtpgLockResult lock = lock::LockWithAtpg(original, [&] {
    lock::AtpgLockOptions lo = opts.lock;
    lo.key_bits = opts.key_bits;
    lo.seed = opts.seed;
    return lo;
  }());
  const Netlist realized = lock::RealizeKeyAsTies(lock.locked, lock.key);
  FlowOptions prelift = opts;
  prelift.randomize_tie_placement = false;
  prelift.lift_key_nets = false;
  const PhysicalBundle bundle = BuildPhysical(realized, prelift);
  EXPECT_EQ(bundle.lift.key_nets_lifted, 0u);
  // Key-nets are routed like regular nets in the prelift flow.
  size_t routed_key_nets = 0;
  for (NetId kn : phys::KeyNetsOf(*bundle.netlist)) {
    if (bundle.layout->routes[kn].routed) ++routed_key_nets;
  }
  EXPECT_EQ(routed_key_nets, opts.key_bits);
}

TEST(SecureFlow, DeterministicForFixedSeed) {
  const Netlist original = TestCircuit(7);
  const FlowResult a = RunSecureFlow(original, SmallOptions(7));
  const FlowResult b = RunSecureFlow(original, SmallOptions(7));
  EXPECT_EQ(a.lock.key, b.lock.key);
  EXPECT_EQ(a.feol.sink_stubs.size(), b.feol.sink_stubs.size());
  EXPECT_DOUBLE_EQ(a.physical.cost.die_area_um2,
                   b.physical.cost.die_area_um2);
}

TEST(SecureFlow, EndToEndSecurityStory) {
  // The headline property, end to end: attack the secure layout and check
  // the key stays hidden while OER stays total.
  const Netlist original = TestCircuit(8);
  const FlowResult flow = RunSecureFlow(original, SmallOptions(8));
  const attack::ProximityResult pr =
      attack::RunProximityAttack(flow.feol, {});
  const attack::AttackScore score =
      attack::ScoreAttack(flow.feol, pr.assignment, 4096, 8);
  EXPECT_LT(score.ccr.key_physical_ccr_percent, 25.0);
  EXPECT_GT(score.functional.oer_percent, 50.0);
}

TEST(SecureFlow, StageTimesPopulated) {
  const Netlist original = TestCircuit(9, 400);
  const FlowResult flow = RunSecureFlow(original, SmallOptions(9));
  EXPECT_GT(flow.times.lock_s, 0.0);
  EXPECT_GT(flow.times.place_s, 0.0);
}

}  // namespace
}  // namespace splitlock::core
